package minato

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/workload"
)

// mnWorkload is a shortened speech workload for multi-node API tests.
func mnWorkload(iters int) Workload {
	w := workload.Speech(1, 3*time.Second)
	w.Dataset = SubsetDataset(w.Dataset, 4000)
	return w.WithIterations(iters)
}

func TestTrainMultiNodeDefaults(t *testing.T) {
	rep, err := TrainMultiNodeWorkload(mnWorkload(12), WithGPUs(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 2 {
		t.Fatalf("default node count = %d, want 2", rep.Nodes)
	}
	if len(rep.PerNode) != 2 {
		t.Fatalf("PerNode = %d entries, want 2", len(rep.PerNode))
	}
	if rep.Steps == 0 || rep.StepTime() == 0 {
		t.Fatalf("no synchronized steps recorded: %+v", rep)
	}
	if rep.NetworkBytes == 0 {
		t.Fatal("default remote-store cluster moved no fabric bytes")
	}
}

func TestTrainMultiNodeByWorkloadName(t *testing.T) {
	rep, err := TrainMultiNode("speech-3s",
		WithNodes(2), WithGPUs(1), WithIterations(10))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "speech-3s" || rep.Nodes != 2 {
		t.Fatalf("unexpected report identity: %+v", rep)
	}
	if _, err := TrainMultiNode("no-such-workload", WithNodes(2)); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestTrainMultiNodeDeterministic(t *testing.T) {
	run := func() *MultiNodeReport {
		rep, err := TrainMultiNodeWorkload(mnWorkload(10),
			WithTopology(Topology{Nodes: 2, StragglerNode: 1, StragglerFactor: 4}),
			WithGPUs(1))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("nondeterministic TrainMultiNode:\n run1: %+v\n run2: %+v", r1, r2)
	}
}

func TestTrainMultiNodeStragglerScenario(t *testing.T) {
	// The README scenario: a core-starved node drags the synchronous
	// cluster, and MinatoLoader's preprocessing overlap wins on
	// whole-cluster step time.
	topo := Topology{Nodes: 2, StragglerNode: 1, StragglerFactor: 8}
	pt, err := TrainMultiNodeWorkload(mnWorkload(12),
		WithTopology(topo), WithGPUs(1), WithLoader("pytorch"))
	if err != nil {
		t.Fatal(err)
	}
	mn, err := TrainMultiNodeWorkload(mnWorkload(12),
		WithTopology(topo), WithGPUs(1), WithLoader("minato"))
	if err != nil {
		t.Fatal(err)
	}
	if mn.StepTime() >= pt.StepTime() {
		t.Fatalf("minato cluster step %v not faster than pytorch %v under straggler",
			mn.StepTime(), pt.StepTime())
	}
}

func TestTopologyOptionsRejectedElsewhere(t *testing.T) {
	var ce *ConfigError

	if _, err := Train("speech-3s", WithNodes(2)); !errors.As(err, &ce) {
		t.Fatalf("Train with WithNodes: %v, want *ConfigError", err)
	}
	if _, err := Open(tenantCorpus{n: 64}, WithNodes(2)); !errors.As(err, &ce) {
		t.Fatalf("Open with WithNodes: %v, want *ConfigError", err)
	}
	cl, err := NewCluster()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Open(tenantCorpus{n: 64}, WithTopology(Topology{Nodes: 2})); !errors.As(err, &ce) {
		t.Fatalf("Cluster.Open with WithTopology: %v, want *ConfigError", err)
	}
}

func TestTrainMultiNodeRejectsInvalidTopology(t *testing.T) {
	var ce *ConfigError
	cases := []Topology{
		{Nodes: -1},
		{Nodes: 2, StragglerNode: 5, StragglerFactor: 4},
		{Nodes: 2, DegradedNode: -1, DegradedFactor: 2},
		{Nodes: 2, StragglerNode: 0, StragglerFactor: 0.5},
	}
	for i, topo := range cases {
		if _, err := TrainMultiNode("speech-3s", WithTopology(topo)); !errors.As(err, &ce) {
			t.Errorf("case %d: %v, want *ConfigError", i, err)
		}
	}
	// Single-machine-only options are refused too.
	if _, err := TrainMultiNode("speech-3s", WithNodes(2), WithPriority(2)); !errors.As(err, &ce) {
		t.Errorf("WithPriority on TrainMultiNode: want *ConfigError")
	}
	if _, err := TrainMultiNode("speech-3s", WithNodes(2), WithRuntime(NewVirtualRuntime())); !errors.As(err, &ce) {
		t.Errorf("WithRuntime on TrainMultiNode: want *ConfigError")
	}
}

func TestTrainMultiNodeHeterogeneousMix(t *testing.T) {
	rep, err := TrainMultiNodeWorkload(mnWorkload(8),
		WithTopology(Topology{Mix: []HardwareConfig{ConfigA(), ConfigB()}}),
		WithGPUs(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 2 {
		t.Fatalf("mix run nodes = %d, want 2", rep.Nodes)
	}
	if rep.PerNode[0].Hardware == rep.PerNode[1].Hardware {
		t.Fatalf("mix nodes identical hardware: %q", rep.PerNode[0].Hardware)
	}
}

func TestWithGPUsDoesNotMutateCallerMix(t *testing.T) {
	mix := []HardwareConfig{ConfigA(), ConfigB()}
	topo := Topology{Mix: mix}
	if _, err := TrainMultiNodeWorkload(mnWorkload(6), WithTopology(topo), WithGPUs(1)); err != nil {
		t.Fatal(err)
	}
	if mix[0].GPUCount != ConfigA().GPUCount || mix[1].GPUCount != ConfigB().GPUCount {
		t.Fatalf("caller's Mix mutated: %d/%d GPUs", mix[0].GPUCount, mix[1].GPUCount)
	}
}
