module github.com/minatoloader/minato

go 1.23
