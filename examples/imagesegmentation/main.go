// Image segmentation end-to-end: the paper's 3D-UNet/KiTS19 workload on
// the Config B testbed (8×V100), comparing all four data loaders — a
// programmatic version of the artifact's run_all.sh (E1).
//
//	go run ./examples/imagesegmentation
package main

import (
	"fmt"
	"log"
)

import "github.com/minatoloader/minato"

func main() {
	cfg := minato.ConfigB() // 8×V100, 7 GB/s NVMe
	w := minato.ImageSegmentationWorkload(1).WithEpochs(10)

	fmt.Printf("3D-UNet on %d×%s, %d epochs of KiTS19 (%d volumes)\n\n",
		cfg.GPUCount, cfg.GPUArch.Name, w.Epochs, w.Dataset.Len())
	fmt.Println("loader    train(s)  tput(MB/s)  GPU%   CPU%")
	fmt.Println("--------  --------  ----------  -----  -----")

	var pytorchTime, minatoTime float64
	for _, f := range minato.AllFactories() {
		if f.Name == "pecan" {
			continue // identical to PyTorch here: pipeline already ordered
		}
		rep, err := minato.Simulate(cfg, w, f, minato.Params{Collect: true})
		if err != nil {
			log.Fatalf("%s: %v", f.Name, err)
		}
		fmt.Printf("%-8s  %8.1f  %10.1f  %4.1f  %4.1f\n",
			rep.Loader, rep.TrainTime.Seconds(), rep.Throughput(),
			rep.AvgGPUUtil, rep.AvgCPUUtil)
		switch rep.Loader {
		case "pytorch":
			pytorchTime = rep.TrainTime.Seconds()
		case "minato":
			minatoTime = rep.TrainTime.Seconds()
		}
	}
	fmt.Printf("\nMinatoLoader speedup over PyTorch DataLoader: %.2fx\n", pytorchTime/minatoTime)
	fmt.Println("(the paper's artifact reports 210 s / 151 s / 81 s on real V100 hardware)")
}
