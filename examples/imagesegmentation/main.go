// Image segmentation end-to-end: the paper's 3D-UNet/KiTS19 workload on
// the Config B testbed (8×V100), comparing data loaders resolved through
// the v2 registry — a programmatic version of the artifact's run_all.sh
// (E1).
//
//	go run ./examples/imagesegmentation
package main

import (
	"fmt"
	"log"

	"github.com/minatoloader/minato"
)

func main() {
	cfg := minato.ConfigB() // 8×V100, 7 GB/s NVMe
	const epochs = 10

	w, ok := minato.WorkloadByName("img-seg", 1)
	if !ok {
		log.Fatal("img-seg workload not registered")
	}
	fmt.Printf("3D-UNet on %d×%s, %d epochs of KiTS19 (%d volumes)\n\n",
		cfg.GPUCount, cfg.GPUArch.Name, epochs, w.Dataset.Len())
	fmt.Println("loader    train(s)  tput(MB/s)  GPU%   CPU%")
	fmt.Println("--------  --------  ----------  -----  -----")

	times := map[string]float64{}
	// Sweep the paper's comparison order; every name resolves through the
	// loader registry, so a backend added via minato.RegisterLoader joins
	// this comparison by appending its name here.
	for _, name := range []string{"pytorch", "dali", "minato"} {
		// pecan is skipped: identical to pytorch here (pipeline already
		// ordered).
		rep, err := minato.Train("img-seg",
			minato.WithLoader(name),
			minato.WithHardware(cfg),
			minato.WithEpochs(epochs),
			minato.WithSeed(1),
			minato.WithParams(minato.Params{Collect: true}),
		)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-8s  %8.1f  %10.1f  %4.1f  %4.1f\n",
			rep.Loader, rep.TrainTime.Seconds(), rep.Throughput(),
			rep.AvgGPUUtil, rep.AvgCPUUtil)
		times[rep.Loader] = rep.TrainTime.Seconds()
	}
	fmt.Printf("\nMinatoLoader speedup over PyTorch DataLoader: %.2fx\n", times["pytorch"]/times["minato"])
	fmt.Println("(the paper's artifact reports 210 s / 151 s / 81 s on real V100 hardware)")
}
