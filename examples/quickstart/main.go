// Quickstart: embed MinatoLoader around a custom dataset and preprocessing
// pipeline, and watch it classify slow samples on the fly.
//
// The dataset here is deliberately adversarial: most samples preprocess in
// ~20 ms, but every 8th takes ~800 ms. A conventional loader would stall
// whole batches on the slow ones; MinatoLoader keeps batches flowing and
// folds slow samples in as they finish.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"time"

	"github.com/minatoloader/minato"
)

// toyDataset implements minato.Dataset: 512 samples of 1 MB each, with
// every 8th sample flagged heavy.
type toyDataset struct{}

func (toyDataset) Name() string { return "toy" }
func (toyDataset) Len() int     { return 512 }
func (toyDataset) Sample(epoch, i int) *minato.Sample {
	return &minato.Sample{
		Index: i, Epoch: epoch,
		Key:      fmt.Sprintf("toy/%d", i),
		RawBytes: 1 << 20, Bytes: 1 << 20,
		Features: minato.Features{Heavy: i%8 == 7},
	}
}

func main() {
	// The runtime: virtual time, so this demo is instant and exact. Swap
	// in minato.NewRealRuntime(1) to run against the wall clock.
	rt := minato.NewVirtualRuntime()

	// A two-step pipeline: a fast decode plus an augmentation that is 40×
	// slower on heavy samples.
	decode := minato.NewTransform("Decode",
		func(*minato.Sample) time.Duration { return 10 * time.Millisecond }, nil)
	augment := minato.NewTransform("Augment",
		func(s *minato.Sample) time.Duration {
			if s.Features.Heavy {
				return 790 * time.Millisecond
			}
			return 10 * time.Millisecond
		}, nil)
	pipeline := minato.NewPipeline("toy", decode, augment)

	rt.Run(func() {
		env := minato.NewEnv(rt, minato.EnvConfig{Cores: 8})

		cfg := minato.DefaultConfig()
		cfg.WarmupSamples = 24
		ld := minato.New(env, minato.Spec{
			Dataset:    toyDataset{},
			Pipeline:   pipeline,
			BatchSize:  8,
			Iterations: 32,
			Seed:       42,
		}, cfg)

		if err := ld.Start(context.Background()); err != nil {
			log.Fatal(err)
		}

		fmt.Println("batch  t(ms)   gap(ms)  slow-samples  timeout(ms)")
		var last time.Duration
		for i := 0; ; i++ {
			b, err := ld.Next(context.Background(), 0)
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			gap := b.CreatedAt - last
			last = b.CreatedAt
			tout := "warmup"
			if d := ld.Timeout(); d < time.Hour {
				tout = fmt.Sprintf("%.0f", float64(d)/float64(time.Millisecond))
			}
			fmt.Printf("%5d  %6.0f  %7.0f  %12d  %s\n",
				i, b.CreatedAt.Seconds()*1000, gap.Seconds()*1000, b.SlowCount(), tout)
		}
		ld.Stop()
		_ = env.WG.Wait(context.Background())

		fmt.Printf("\nall 32 batches delivered in %.2fs of simulated time\n", rt.Now().Seconds())
		fmt.Println("note how delivery gaps stay small after warmup: heavy samples")
		fmt.Println("preprocess in the background instead of stalling batches.")
	})
}
