// Quickstart: embed MinatoLoader around a custom dataset and preprocessing
// pipeline with the v2 session API, and watch it classify slow samples on
// the fly.
//
// The dataset here is deliberately adversarial: most samples preprocess in
// ~20 ms, but every 8th takes ~800 ms. A conventional loader would stall
// whole batches on the slow ones; MinatoLoader keeps batches flowing and
// folds slow samples in as they finish.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/minatoloader/minato"
)

// toyDataset implements minato.Dataset: 512 samples of 1 MB each, with
// every 8th sample flagged heavy.
type toyDataset struct{}

func (toyDataset) Name() string { return "toy" }
func (toyDataset) Len() int     { return 512 }
func (toyDataset) Sample(epoch, i int) *minato.Sample {
	return &minato.Sample{
		Index: i, Epoch: epoch,
		Key:      minato.Key{Space: "toy", Index: int64(i)},
		RawBytes: 1 << 20, Bytes: 1 << 20,
		Features: minato.Features{Heavy: i%8 == 7},
	}
}

func main() {
	// A two-step pipeline: a fast decode plus an augmentation that is 40×
	// slower on heavy samples.
	decode := minato.NewTransform("Decode",
		func(*minato.Sample) time.Duration { return 10 * time.Millisecond }, nil)
	augment := minato.NewTransform("Augment",
		func(s *minato.Sample) time.Duration {
			if s.Features.Heavy {
				return 790 * time.Millisecond
			}
			return 10 * time.Millisecond
		}, nil)

	// Shorten the profiler warmup so the timeout kicks in within this
	// small run; everything else keeps the paper's defaults.
	cfg := minato.DefaultConfig()
	cfg.WarmupSamples = 24

	// The session owns the runtime (deterministic virtual time, so this
	// demo is instant and exact — pass minato.WithRuntime(
	// minato.NewRealRuntime(1)) to run against the wall clock instead),
	// the environment, and the loader.
	sess, err := minato.Open(toyDataset{},
		minato.WithPipeline(minato.NewPipeline("toy", decode, augment)),
		minato.WithBatchSize(8),
		minato.WithIterations(32),
		minato.WithSeed(42),
		minato.WithEnv(minato.EnvConfig{Cores: 8}),
		minato.WithLoaderConfig(cfg),
	)
	if err != nil {
		log.Fatal(err)
	}
	ld := sess.Loader().(*minato.Loader) // for timeout diagnostics

	fmt.Println("batch  t(ms)   gap(ms)  slow-samples  timeout(ms)")
	var last time.Duration
	i := 0
	for b, err := range sess.Batches(context.Background()) {
		if err != nil {
			log.Fatal(err)
		}
		gap := b.CreatedAt - last
		last = b.CreatedAt
		tout := "warmup"
		if d := ld.Timeout(); d < time.Hour {
			tout = fmt.Sprintf("%.0f", float64(d)/float64(time.Millisecond))
		}
		fmt.Printf("%5d  %6.0f  %7.0f  %12d  %s\n",
			i, b.CreatedAt.Seconds()*1000, gap.Seconds()*1000, b.SlowCount(), tout)
		i++
	}

	rep, err := sess.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall %d batches delivered in %.2fs of simulated time\n",
		rep.Batches, rep.TrainTime.Seconds())
	fmt.Println("note how delivery gaps stay small after warmup: heavy samples")
	fmt.Println("preprocess in the background instead of stalling batches.")
}
