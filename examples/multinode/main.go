// Multinode: a four-node data-parallel cluster with one straggler node —
// the scenario where loader quality compounds with scale.
//
// Each node is a full simulated testbed (CPU pool, GPUs, page cache)
// running its own loader over a deterministic shard of the dataset.
// Gradient all-reduce runs as ring-reduce flows over a simulated 200 Gb/s
// interconnect, and cold shard reads are fetched from a shared storage
// server over the same NICs, so data and gradient traffic contend. Node 1
// is a straggler (an eighth of its CPU cores): every synchronous step, the
// whole cluster waits for its preprocessing.
//
// The demo trains the straggler cluster with the PyTorch-model loader and
// with MinatoLoader, prints per-node stall attribution (own input, the
// barrier, the network), and proves determinism by running the Minato
// configuration twice and requiring bit-identical reports — and, with
// tracing attached, a bit-identical Chrome trace export (written to
// multinode-trace.json; load it in Perfetto or chrome://tracing).
//
//	go run ./examples/multinode
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"time"

	"github.com/minatoloader/minato"
)

func train(loader string, extra ...minato.Option) *minato.MultiNodeReport {
	opts := []minato.Option{
		minato.WithTopology(minato.Topology{
			Nodes:           4,
			StragglerNode:   1,
			StragglerFactor: 8,
		}),
		minato.WithLoader(loader),
		minato.WithGPUs(1),
		minato.WithIterations(60),
	}
	opts = append(opts, extra...)
	rep, err := minato.TrainMultiNode("speech-3s", opts...)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

// tracedExport reruns the minato configuration with a trace sink attached
// and returns the Chrome trace-event export bytes.
func tracedExport() []byte {
	sink := minato.NewTraceSink()
	train("minato", minato.WithTracing(sink))
	var buf bytes.Buffer
	if err := sink.WriteChrome(&buf); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

func printReport(rep *minato.MultiNodeReport) {
	fmt.Printf("\n%s: %d synchronized steps, %.0f ms whole-cluster step, GPU %.1f%%, %.1f GB over the fabric\n",
		rep.Loader, rep.Steps, rep.StepTime().Seconds()*1000, rep.AvgGPUUtil,
		float64(rep.NetworkBytes)/1e9)
	fmt.Printf("  %-6s %-12s %8s %12s %14s %14s %8s\n",
		"node", "hardware", "samples", "data_stall", "barrier_stall", "net_stall", "gpu")
	for _, n := range rep.PerNode {
		fmt.Printf("  %-6d %-12s %8d %11.1fs %13.1fs %13.1fs %7.1f%%\n",
			n.Node, n.Hardware, n.Samples,
			n.DataStall.Seconds(), n.BarrierStall.Seconds(), n.NetworkStall.Seconds(),
			n.GPUUtil)
	}
}

func main() {
	traceOut := flag.String("out", "multinode-trace.json", "Chrome trace-event JSON output path")
	flag.Parse()
	start := time.Now()

	pt := train("pytorch")
	mn := train("minato")
	printReport(pt)
	printReport(mn)

	speedup := float64(pt.StepTime()) / float64(mn.StepTime())
	fmt.Printf("\nwhole-cluster step time: pytorch %.0f ms vs minato %.0f ms — %.2fx speedup under a straggler\n",
		pt.StepTime().Seconds()*1000, mn.StepTime().Seconds()*1000, speedup)

	// Determinism proof: the same topology and seed must reproduce the
	// multi-node report bit-for-bit, per-node stall timings included.
	again := train("minato")
	if !reflect.DeepEqual(mn, again) {
		fmt.Println("\nDETERMINISM FAILURE: multi-node reports diverged between runs")
		fmt.Printf("run 1: %+v\nrun 2: %+v\n", mn, again)
		os.Exit(1)
	}
	fmt.Println("4 nodes × 2 runs: multi-node reports bit-identical (deterministic)")

	// The same proof for the full trace: two traced runs must export
	// byte-identical Chrome trace-event JSON (every span stamped from the
	// virtual clock, lane labels canonicalized).
	t1, t2 := tracedExport(), tracedExport()
	if !bytes.Equal(t1, t2) {
		fmt.Println("\nDETERMINISM FAILURE: trace exports diverged between runs")
		os.Exit(1)
	}
	if err := os.WriteFile(*traceOut, t1, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %s (%d bytes, bit-identical across runs) — open in Perfetto\n", *traceOut, len(t1))
	fmt.Printf("wall time: %s\n", time.Since(start).Round(time.Millisecond))
}
