// Curriculum learning (§6): some training regimes need samples in a strict
// global order (easy examples before hard ones). MinatoLoader's
// order-preserving mode guarantees sampler order at the cost of the
// reordering advantage — this example measures that trade-off with two v2
// sessions and verifies the ordering guarantee.
//
//	go run ./examples/curriculum
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/minatoloader/minato"
)

func run(ordered bool) (elapsed, maxGap time.Duration, inOrder bool) {
	cfg := minato.DefaultConfig()
	cfg.OrderPreserving = ordered

	sess, err := minato.Open(
		minato.SubsetDataset(minato.LibriSpeech(1, 5), 2000),
		minato.WithPipeline(speechPipeline()),
		minato.WithBatchSize(8),
		minato.WithIterations(60),
		minato.WithSeed(7),
		minato.WithEnv(minato.EnvConfig{Cores: 16, DiskBandwidth: 5e9, CacheBytes: 16 << 30}),
		minato.WithLoaderConfig(cfg),
	)
	if err != nil {
		log.Fatal(err)
	}

	inOrder = true
	var prev int64 = -1
	var lastAt time.Duration
	i := 0
	for b, err := range sess.Batches(context.Background()) {
		if err != nil {
			log.Fatal(err)
		}
		// Skip warmup batches when sizing stalls.
		if i > 10 {
			if g := b.CreatedAt - lastAt; g > maxGap {
				maxGap = g
			}
		}
		lastAt = b.CreatedAt
		for _, s := range b.Samples {
			if s.OriginalOrder != prev+1 {
				inOrder = false
			}
			prev = s.OriginalOrder
		}
		i++
	}
	rep, err := sess.Close()
	if err != nil {
		log.Fatal(err)
	}
	return rep.TrainTime, maxGap, inOrder
}

func speechPipeline() *minato.Pipeline {
	light := minato.NewTransform("Light",
		func(*minato.Sample) time.Duration { return 100 * time.Millisecond }, nil)
	heavy := minato.NewTransform("Heavy",
		func(s *minato.Sample) time.Duration {
			if s.Features.Heavy {
				return 1500 * time.Millisecond
			}
			return 0
		}, nil)
	return minato.NewPipeline("curriculum", light, heavy)
}

func main() {
	fmt.Println("MinatoLoader order-preserving mode (§6): curriculum learning")
	fmt.Println()

	tDefault, gapDefault, _ := run(false)
	tOrdered, gapOrdered, ok := run(true)

	fmt.Printf("default (reordering):   total %6.1fs   worst delivery stall %5.0f ms\n",
		tDefault.Seconds(), gapDefault.Seconds()*1000)
	fmt.Printf("order-preserving:       total %6.1fs   worst delivery stall %5.0f ms   (sampler order kept: %v)\n",
		tOrdered.Seconds(), gapOrdered.Seconds()*1000, ok)
	fmt.Println()
	fmt.Println("Strict ordering makes batch assembly wait on the slowest outstanding")
	fmt.Println("sample — visible as delivery stalls — which is the price of")
	fmt.Println("correctness when sample order is semantic (§6).")
	if !ok {
		log.Fatal("BUG: order-preserving mode broke sampler order")
	}
	if gapOrdered <= gapDefault {
		fmt.Println("(note: with ample CPU headroom the stall difference can vanish)")
	}
}
