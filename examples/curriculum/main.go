// Curriculum learning (§6): some training regimes need samples in a strict
// global order (easy examples before hard ones). MinatoLoader's
// order-preserving mode guarantees sampler order at the cost of the
// reordering advantage — this example measures that trade-off and verifies
// the ordering guarantee.
//
//	go run ./examples/curriculum
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"time"

	"github.com/minatoloader/minato"
)

func run(ordered bool) (elapsed, maxGap time.Duration, inOrder bool) {
	rt := minato.NewVirtualRuntime()
	inOrder = true
	rt.Run(func() {
		env := minato.NewEnv(rt, minato.EnvConfig{Cores: 16, DiskBandwidth: 5e9, CacheBytes: 16 << 30})
		cfg := minato.DefaultConfig()
		cfg.OrderPreserving = ordered
		spec := minato.Spec{
			Dataset:    minato.SubsetDataset(minato.LibriSpeech(1, 5), 2000),
			Pipeline:   speechPipeline(),
			BatchSize:  8,
			Iterations: 60,
			Seed:       7,
		}
		ld := minato.New(env, spec, cfg)
		if err := ld.Start(context.Background()); err != nil {
			log.Fatal(err)
		}
		var prev int64 = -1
		var lastAt time.Duration
		for i := 0; ; i++ {
			b, err := ld.Next(context.Background(), 0)
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			// Skip warmup batches when sizing stalls.
			if i > 10 {
				if g := b.CreatedAt - lastAt; g > maxGap {
					maxGap = g
				}
			}
			lastAt = b.CreatedAt
			for _, s := range b.Samples {
				if s.OriginalOrder != prev+1 {
					inOrder = false
				}
				prev = s.OriginalOrder
			}
		}
		elapsed = rt.Now()
		ld.Stop()
		_ = env.WG.Wait(context.Background())
	})
	return elapsed, maxGap, inOrder
}

func speechPipeline() *minato.Pipeline {
	light := minato.NewTransform("Light",
		func(*minato.Sample) time.Duration { return 100 * time.Millisecond }, nil)
	heavy := minato.NewTransform("Heavy",
		func(s *minato.Sample) time.Duration {
			if s.Features.Heavy {
				return 1500 * time.Millisecond
			}
			return 0
		}, nil)
	return minato.NewPipeline("curriculum", light, heavy)
}

func main() {
	fmt.Println("MinatoLoader order-preserving mode (§6): curriculum learning")
	fmt.Println()

	tDefault, gapDefault, _ := run(false)
	tOrdered, gapOrdered, ok := run(true)

	fmt.Printf("default (reordering):   total %6.1fs   worst delivery stall %5.0f ms\n",
		tDefault.Seconds(), gapDefault.Seconds()*1000)
	fmt.Printf("order-preserving:       total %6.1fs   worst delivery stall %5.0f ms   (sampler order kept: %v)\n",
		tOrdered.Seconds(), gapOrdered.Seconds()*1000, ok)
	fmt.Println()
	fmt.Println("Strict ordering makes batch assembly wait on the slowest outstanding")
	fmt.Println("sample — visible as delivery stalls — which is the price of")
	fmt.Println("correctness when sample order is semantic (§6).")
	if !ok {
		log.Fatal("BUG: order-preserving mode broke sampler order")
	}
	if gapOrdered <= gapDefault {
		fmt.Println("(note: with ample CPU headroom the stall difference can vanish)")
	}
}
