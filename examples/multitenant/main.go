// Multitenant: sixteen concurrent loading sessions sharing one
// minato.Cluster — the "many jobs, one machine" deployment the Cluster API
// exists for.
//
// One ConfigA testbed hosts every tenant: they share the CPU worker pool
// (fairly arbitrated, weighted by WithPriority), the page cache (per-tenant
// hit attribution, single-flight fills), and the sample pool. Admission
// control caps concurrency; the demo opens one session more than the cap
// to show ErrClusterSaturated.
//
// The whole run is deterministic: virtual time, fixed seeds. To prove it,
// the schedule runs twice on two fresh clusters and the per-tenant reports
// are required to be bit-identical — batches, samples, bytes, delivery
// time, and cache attribution.
//
//	go run ./examples/multitenant
//	go run -race ./examples/multitenant
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"github.com/minatoloader/minato"
)

const tenants = 16

// corpus is one tenant's dataset. Key spaces are per-tenant here so each
// report is independent of sibling scheduling; share the space across
// tenants (one corpus, many readers) and the cluster shares warm-up reads
// through the cache instead.
type corpus struct {
	name string
	n    int
}

func (d corpus) Name() string { return d.name }
func (d corpus) Len() int     { return d.n }
func (d corpus) Sample(epoch, i int) *minato.Sample {
	s := &minato.Sample{}
	d.FillSample(epoch, i, s)
	return s
}
func (d corpus) FillSample(epoch, i int, s *minato.Sample) {
	s.Index, s.Epoch = i, epoch
	s.Key = minato.Key{Space: d.name, Index: int64(i)}
	s.RawBytes, s.Bytes = 1<<20, 1<<20
}

// tenantReport is the deterministic core of one tenant's outcome.
type tenantReport struct {
	workload  string
	loader    string
	batches   int64
	samples   int64
	bytes     int64
	trainTime time.Duration
	hits      int64
	misses    int64
	quota     int
}

// runSchedule opens every tenant on a fresh cluster, streams them
// concurrently, and returns the per-tenant reports.
func runSchedule() ([tenants]tenantReport, error) {
	var out [tenants]tenantReport
	cluster, err := minato.NewCluster(
		minato.WithHardware(minato.ConfigA()),
		minato.WithMaxSessions(tenants),
		minato.WithAdmission(minato.AdmitReject),
	)
	if err != nil {
		return out, err
	}
	defer cluster.Close()

	pipeline := minato.NewPipeline("decode",
		minato.NewTransform("Decode",
			func(*minato.Sample) time.Duration { return 500 * time.Microsecond }, nil))

	sessions := make([]*minato.Session, tenants)
	for t := range sessions {
		// Tenants 0-3 are high priority (weight 4): they buy a 4× share of
		// the preprocessing workers.
		weight := 1.0
		if t < 4 {
			weight = 4
		}
		sessions[t], err = cluster.Open(corpus{name: fmt.Sprintf("tenant-%02d", t), n: 2048},
			minato.WithPipeline(pipeline),
			minato.WithBatchSize(32),
			minato.WithIterations(40),
			minato.WithGPUs(1),
			minato.WithSeed(uint64(t+1)),
			minato.WithPriority(weight),
		)
		if err != nil {
			return out, err
		}
	}

	// The cluster is at capacity: one more open must be rejected.
	if _, err := cluster.Open(corpus{name: "overflow", n: 64}); !errors.Is(err, minato.ErrClusterSaturated) {
		return out, fmt.Errorf("expected ErrClusterSaturated, got %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for t, sess := range sessions {
		t, sess := t, sess
		out[t].quota = sess.Stats().WorkerQuota
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, err := range sess.Batches(context.Background()) {
				if err != nil {
					errs <- fmt.Errorf("tenant %d: %w", t, err)
					return
				}
			}
			rep, err := sess.Close()
			if err != nil {
				errs <- fmt.Errorf("tenant %d close: %w", t, err)
				return
			}
			out[t] = tenantReport{
				workload: rep.Workload, loader: rep.Loader,
				batches: rep.Batches, samples: rep.Samples, bytes: rep.TrainedBytes,
				trainTime: rep.TrainTime,
				hits:      rep.CacheStats.Hits, misses: rep.CacheStats.Misses,
				quota: out[t].quota,
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return out, err
	}
	return out, nil
}

func main() {
	start := time.Now()
	first, err := runSchedule()
	if err != nil {
		log.Fatal(err)
	}
	second, err := runSchedule()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %5s %6s %8s %10s %7s %7s %6s\n",
		"tenant", "prio", "quota", "batches", "samples", "t(s)", "misses", "hits")
	for t, rep := range first {
		prio := 1
		if t < 4 {
			prio = 4
		}
		fmt.Printf("%-10s %5d %6d %8d %10d %7.2f %7d %6d\n",
			rep.workload, prio, rep.quota, rep.batches, rep.samples,
			rep.trainTime.Seconds(), rep.misses, rep.hits)
	}

	if first != second {
		fmt.Println("\nDETERMINISM FAILURE: per-tenant reports diverged between runs")
		for t := range first {
			if first[t] != second[t] {
				fmt.Printf("tenant %d:\n  run 1: %+v\n  run 2: %+v\n", t, first[t], second[t])
			}
		}
		os.Exit(1)
	}
	fmt.Printf("\n16 tenants × 2 runs: per-tenant reports bit-identical (deterministic)\n")
	fmt.Printf("wall time: %s\n", time.Since(start).Round(time.Millisecond))
}
