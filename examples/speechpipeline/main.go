// Speech pipeline deep-dive: sweep the fraction of slow samples in the
// RNN-T workload (the paper's Fig 12 scenario) and watch MinatoLoader's
// profiler pick timeouts and its scheduler resize the worker pool.
//
// The sweep workload is parameterized by slow fraction, so it is built
// directly and run through minato.TrainWorkload; the baseline resolves by
// name through the loader registry.
//
//	go run ./examples/speechpipeline
package main

import (
	"fmt"
	"log"

	"github.com/minatoloader/minato"
	"github.com/minatoloader/minato/internal/workload"
)

func main() {
	cfg := minato.ConfigA().WithGPUs(2)

	fmt.Println("Speech-3s with varying slow-sample fraction, 2×A100, 300 iterations")
	fmt.Println()
	fmt.Println("slow%   pytorch(s)  minato(s)  speedup  minato-GPU%  peak-workers")
	fmt.Println("-----   ----------  ---------  -------  -----------  ------------")

	for _, frac := range []float64{0, 0.25, 0.50, 0.75, 1.0} {
		w := workload.SpeechSlowFraction(1, frac)

		ptRep, err := minato.TrainWorkload(w,
			minato.WithLoader("pytorch"),
			minato.WithHardware(cfg),
			minato.WithIterations(300),
		)
		if err != nil {
			log.Fatal(err)
		}

		// Instrumented Minato run: collect the worker-count series.
		mnRep, err := minato.TrainWorkload(w,
			minato.WithLoader("minato"),
			minato.WithHardware(cfg),
			minato.WithIterations(300),
			minato.WithParams(minato.Params{Collect: true}),
		)
		if err != nil {
			log.Fatal(err)
		}
		peak := 0.0
		if ts := mnRep.Series["minato_workers"]; ts != nil {
			peak = ts.Max()
		}
		fmt.Printf("%4.0f%%   %10.1f  %9.1f  %6.2fx  %10.1f%%  %12.0f\n",
			frac*100,
			ptRep.TrainTime.Seconds(), mnRep.TrainTime.Seconds(),
			ptRep.TrainTime.Seconds()/mnRep.TrainTime.Seconds(),
			mnRep.AvgGPUUtil, peak)
	}

	fmt.Println()
	fmt.Println("The gains concentrate where per-sample variability exists (§5.6);")
	fmt.Println("the scheduler grows the pool as heavy samples demand more CPU.")
}
