// Disaggregated: one preprocessing fleet feeding remote training clients
// over the simulated network — the minato.Serve / minato.Dial deployment
// where the CPU-heavy preprocessing tier and the GPU training tier scale
// independently.
//
// Two 8-core clusters serve the same published corpus on one fabric: a
// primary and a replica. Three plain clients stream from the primary and
// compete for its workers; a fourth client hedges the primary against the
// replica — whenever its next batch stalls past the hedge delay, it
// re-requests from the replica and takes whichever answer lands first.
// The server is token-gated, so the demo also shows a dial without
// credentials bouncing off with minato.ErrUnauthorized.
//
// The whole topology runs on the virtual clock. To prove it, the schedule
// runs twice on two fresh fabrics and every client-observable quantity —
// batches, samples, bytes, stream span, wait/step p99, hedge and
// duplicate counters, server totals, fabric totals — is required to be
// bit-identical.
//
//	go run ./examples/disaggregated
//	go run -race ./examples/disaggregated
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/minatoloader/minato"
)

const (
	plainClients = 3
	plainIters   = 12
	hedgedIters  = 24
	clients      = plainClients + 1
)

// corpus is the published dataset: pooled fills, 1 MiB samples, one key
// space shared by every client of a server so warm cache hits cross
// client boundaries.
type corpus struct{ n int }

func (d corpus) Name() string { return "shared-corpus" }
func (d corpus) Len() int     { return d.n }
func (d corpus) Sample(epoch, i int) *minato.Sample {
	s := &minato.Sample{}
	d.FillSample(epoch, i, s)
	return s
}
func (d corpus) FillSample(epoch, i int, s *minato.Sample) {
	s.Index, s.Epoch = i, epoch
	s.Key = minato.Key{Space: "shared-corpus", Index: int64(i)}
	s.RawBytes, s.Bytes = 1<<20, 1<<20
}

func pipeline() *minato.Pipeline {
	return minato.NewPipeline("decode",
		minato.NewTransform("Decode",
			func(*minato.Sample) time.Duration { return 500 * time.Microsecond }, nil))
}

// clientReport is the deterministic core of one client's outcome.
type clientReport struct {
	batches int64
	samples int64
	bytes   int64
	span    time.Duration
	waitP99 time.Duration
	stepP99 time.Duration
	hedges  int64
	dups    int64
}

// fingerprint is everything one topology run produces that must be
// bit-identical across repeats.
type fingerprint struct {
	clients      [clients]clientReport
	streams      int64
	batchesSent  int64
	unauthorized int64
	netBytes     int64
	netFlows     int64
}

// runTopology builds a fresh fabric, two servers, and four clients, runs
// the schedule, and returns its fingerprint.
func runTopology() (fingerprint, error) {
	var fp fingerprint
	net := minato.NewServiceNet(nil, minato.ServiceNetConfig{})
	newServer := func() (*minato.Cluster, *minato.ServerAddr, error) {
		cl, err := minato.NewCluster(
			minato.WithRuntime(net.Runtime()),
			minato.WithEnv(minato.EnvConfig{Cores: 8, GPUs: 1}),
		)
		if err != nil {
			return nil, nil, err
		}
		addr, err := minato.Serve(cl,
			minato.WithServiceNet(net),
			minato.WithToken("team-a", minato.TokenQuota{MaxStreams: 8}),
			minato.Publish("shared-corpus", corpus{n: 2048}, pipeline()),
		)
		if err != nil {
			cl.Close()
			return nil, nil, err
		}
		return cl, addr, nil
	}
	primaryCl, primary, err := newServer()
	if err != nil {
		return fp, err
	}
	defer primaryCl.Close()
	defer primary.Close()
	replicaCl, replica, err := newServer()
	if err != nil {
		return fp, err
	}
	defer replicaCl.Close()
	defer replica.Close()

	// The server is token-gated: no credentials, no stream.
	if _, err := minato.Dial(primary, minato.WithAuthToken("intruder")); !errors.Is(err, minato.ErrUnauthorized) {
		return fp, fmt.Errorf("expected ErrUnauthorized for a bad token, got %v", err)
	}

	sessions := make([]*minato.RemoteSession, clients)
	for c := 0; c < plainClients; c++ {
		sessions[c], err = minato.Dial(primary,
			minato.WithAuthToken("team-a"),
			minato.WithBatchSize(32),
			minato.WithIterations(plainIters),
			minato.WithSeed(uint64(c+1)),
			minato.WithPrefetch(4),
		)
		if err != nil {
			return fp, err
		}
	}
	// The hedged client outlives its neighbors: while they contend for the
	// primary's workers its head-of-line batches stall, the hedge fires,
	// and the idle replica answers first.
	sessions[plainClients], err = minato.Dial(primary,
		minato.WithAuthToken("team-a"),
		minato.WithBatchSize(32),
		minato.WithIterations(hedgedIters),
		minato.WithSeed(uint64(clients)),
		minato.WithPrefetch(4),
		minato.WithHedge(replica, 10*time.Millisecond),
		minato.WithDialRetry(2, 50*time.Millisecond),
	)
	if err != nil {
		return fp, err
	}

	errs := make([]error, clients)
	minato.StreamAll(context.Background(), sessions, func(i int, s *minato.RemoteSession) {
		var last *minato.Batch
		for b, err := range s.Batches(context.Background()) {
			if err != nil {
				errs[i] = err
				return
			}
			last = b
		}
		// The final batch is consumer-owned; recycle it.
		if last != nil {
			last.Release()
		}
	})
	for i, err := range errs {
		if err != nil {
			return fp, fmt.Errorf("client %d: %w", i, err)
		}
	}

	for i, s := range sessions {
		cs := s.Stats()
		rep, err := s.Close()
		if err != nil {
			return fp, fmt.Errorf("client %d close: %w", i, err)
		}
		fp.clients[i] = clientReport{
			batches: rep.Batches, samples: rep.Samples, bytes: rep.TrainedBytes,
			span: rep.TrainTime, waitP99: cs.WaitP99, stepP99: cs.StepP99,
			hedges: cs.Hedges, dups: cs.Duplicates,
		}
	}
	for _, srv := range []*minato.ServerAddr{primary, replica} {
		ss := srv.Stats()
		fp.streams += ss.StreamsTotal
		fp.batchesSent += ss.BatchesSent
		fp.unauthorized += ss.RejectedUnauthorized
		if err := srv.Close(); err != nil {
			return fp, err
		}
	}
	ns := net.Stats()
	fp.netBytes, fp.netFlows = ns.BytesMoved, ns.FlowsCompleted
	return fp, nil
}

func main() {
	start := time.Now()
	first, err := runTopology()
	if err != nil {
		log.Fatal(err)
	}
	second, err := runTopology()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-9s %8s %10s %8s %9s %9s %7s %5s\n",
		"client", "batches", "samples", "span(s)", "wait99", "step99", "hedges", "dups")
	for i, c := range first.clients {
		name := fmt.Sprintf("plain-%d", i)
		if i == plainClients {
			name = "hedged"
		}
		fmt.Printf("%-9s %8d %10d %8.2f %9s %9s %7d %5d\n",
			name, c.batches, c.samples, c.span.Seconds(),
			c.waitP99.Round(time.Microsecond), c.stepP99.Round(time.Microsecond),
			c.hedges, c.dups)
	}
	fmt.Printf("servers: %d streams, %d batches sent, %d unauthorized dial rejected; fabric: %.1f MiB in %d flows\n",
		first.streams, first.batchesSent, first.unauthorized,
		float64(first.netBytes)/(1<<20), first.netFlows)

	if first != second {
		fmt.Println("\nDETERMINISM FAILURE: topology fingerprints diverged between runs")
		fmt.Printf("run 1: %+v\nrun 2: %+v\n", first, second)
		os.Exit(1)
	}
	fmt.Printf("\n%d clients × 2 runs: reports bit-identical (deterministic)\n", clients)
	fmt.Printf("wall time: %s\n", time.Since(start).Round(time.Millisecond))
}
