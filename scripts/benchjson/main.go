// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark record, so every PR can commit a BENCH_<date>.json snapshot and
// CI can diff perf against the previous baseline.
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./scripts/benchjson -label post-PR -out BENCH_2026-07-29.json
//
// Standard units (ns/op, B/op, allocs/op) become top-level fields; anything
// else (the experiment suite's speedup_x, samples/sec_wall, ...) lands under
// "metrics". When a benchmark appears more than once on stdin (-count=N),
// the fastest run wins — wall noise on a shared machine is one-sided.
//
// The diff subcommand compares two snapshots and fails (exit 1) when any
// benchmark present in both regresses allocs/op — or a samples/sec
// throughput metric — by more than the threshold. Allocation counts are
// deterministic enough to gate tightly; throughput is wall-clock and
// machine-dependent, so its gate exists to catch collapses (a lost
// consolidation win, an accidental O(n²)), not single-digit noise:
//
//	go run ./scripts/benchjson diff BENCH_old.json BENCH_new.json
//	go run ./scripts/benchjson diff -max-allocs-regress 0.15 old.json new.json
//	go run ./scripts/benchjson diff -max-throughput-regress 0.15 old.json new.json
//
// The overhead subcommand gates an instrumented benchmark against its
// uninstrumented twin within one snapshot: the instrumented variant may
// cost at most -max-wall-regress extra wall time (default 5%), and every
// custom metric the two report in common must be bit-identical — an
// observer records, it does not perturb. With -baseline it additionally
// pins the uninstrumented benchmark's allocs/op to the committed baseline:
// any increase with tracing off fails, because the disabled fast path is
// supposed to be a nil check, not an allocation.
//
//	go run ./scripts/benchjson overhead BENCH.json BenchmarkHeadlineSpeedup BenchmarkHeadlineSpeedupTraced
//	go run ./scripts/benchjson overhead -baseline BENCH_old.json new.json Base Traced
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Record is the whole file.
type Record struct {
	Label      string            `json:"label,omitempty"`
	Go         string            `json:"go,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(runDiff(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "overhead" {
		os.Exit(runOverhead(os.Args[2:]))
	}
	var (
		label = flag.String("label", "", "free-form snapshot label (e.g. pre-PR, post-PR)")
		out   = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	rec := Record{Label: *label, Go: runtime.Version(), Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if name, res, ok := parseLine(sc.Text()); ok {
			// Repeated lines for one benchmark (-count=N) fold to the
			// fastest run: wall-clock noise on a shared machine is
			// one-sided — contention only ever adds time — so min-of-N
			// estimates the uncontended cost the gates care about.
			if prev, exists := rec.Benchmarks[name]; !exists || res.NsPerOp < prev.NsPerOp {
				rec.Benchmarks[name] = res
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	buf, err := marshalStable(rec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rec.Benchmarks), *out)
}

// runDiff implements `benchjson diff [-max-allocs-regress F] old.json
// new.json`: a perf gate over two committed snapshots. Only allocs/op is
// enforced — it is a property of the code, not the machine — while ns/op
// and B/op movements are printed for context. Benchmarks missing from
// either side are reported but never fatal, so adding or retiring a
// benchmark does not break the gate.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	maxRegress := fs.Float64("max-allocs-regress", 0.15,
		"maximum allowed fractional allocs/op increase per benchmark")
	maxThroughputRegress := fs.Float64("max-throughput-regress", 0.15,
		"maximum allowed fractional samples/sec decrease per benchmark")
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson diff [-max-allocs-regress F] old.json new.json")
		return 2
	}
	oldRec, err := loadRecord(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	newRec, err := loadRecord(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}

	names := make([]string, 0, len(oldRec.Benchmarks))
	for n := range oldRec.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)

	failed := 0
	for _, n := range names {
		o := oldRec.Benchmarks[n]
		nw, ok := newRec.Benchmarks[n]
		if !ok {
			fmt.Printf("%-50s missing from %s (skipped)\n", n, fs.Arg(1))
			continue
		}
		fmt.Printf("%-50s ns/op %s  B/op %s  allocs/op %s\n",
			n, delta(o.NsPerOp, nw.NsPerOp), delta(o.BytesPerOp, nw.BytesPerOp),
			delta(o.AllocsPerOp, nw.AllocsPerOp))
		if o.AllocsPerOp > 0 && nw.AllocsPerOp > o.AllocsPerOp*(1+*maxRegress) {
			fmt.Printf("  FAIL: allocs/op regressed %.1f%% (%.0f -> %.0f), budget %.0f%%\n",
				100*(nw.AllocsPerOp/o.AllocsPerOp-1), o.AllocsPerOp, nw.AllocsPerOp,
				100**maxRegress)
			failed++
		}
		for metric, ov := range o.Metrics {
			if !isThroughputMetric(metric) || ov <= 0 {
				continue
			}
			nv, ok := nw.Metrics[metric]
			if !ok {
				continue
			}
			fmt.Printf("  %-48s %s (%s)\n", metric, delta(ov, nv), "throughput")
			if nv < ov*(1-*maxThroughputRegress) {
				fmt.Printf("  FAIL: %s regressed %.1f%% (%.0f -> %.0f), budget %.0f%%\n",
					metric, 100*(1-nv/ov), ov, nv, 100**maxThroughputRegress)
				failed++
			}
		}
	}
	for n := range newRec.Benchmarks {
		if _, ok := oldRec.Benchmarks[n]; !ok {
			fmt.Printf("%-50s new benchmark (no baseline)\n", n)
		}
	}
	if failed > 0 {
		fmt.Printf("benchjson diff: %d benchmark(s) over the allocs/op budget\n", failed)
		return 1
	}
	fmt.Println("benchjson diff: allocs/op within budget for all compared benchmarks")
	return 0
}

// runOverhead implements `benchjson overhead [-max-wall-regress F]
// [-baseline old.json] snapshot.json base traced`: the tracing-overhead
// gate. Three checks, all within one machine's run so wall times are
// comparable:
//
//  1. traced ns/op ≤ base ns/op × (1 + max-wall-regress) — observability
//     must stay cheap enough to leave on;
//  2. every custom metric reported by both benchmarks is exactly equal —
//     the simulated outcome (speedups, GPU util) must not notice the
//     observer;
//  3. with -baseline, the base benchmark's allocs/op must not exceed the
//     committed baseline's — with tracing off, the instrumentation's cost
//     is one nil check and zero allocations, so any increase is a leak.
func runOverhead(args []string) int {
	fs := flag.NewFlagSet("overhead", flag.ExitOnError)
	maxWall := fs.Float64("max-wall-regress", 0.05,
		"maximum allowed fractional wall-time (ns/op) overhead of traced over base")
	baselinePath := fs.String("baseline", "",
		"committed snapshot to pin the base benchmark's allocs/op against")
	_ = fs.Parse(args)
	if fs.NArg() != 3 {
		fmt.Fprintln(os.Stderr,
			"usage: benchjson overhead [-max-wall-regress F] [-baseline old.json] snapshot.json base traced")
		return 2
	}
	rec, err := loadRecord(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	baseName, tracedName := fs.Arg(1), fs.Arg(2)
	base, ok := rec.Benchmarks[baseName]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: %s missing from %s\n", baseName, fs.Arg(0))
		return 1
	}
	traced, ok := rec.Benchmarks[tracedName]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: %s missing from %s\n", tracedName, fs.Arg(0))
		return 1
	}

	failed := 0
	overhead := traced.NsPerOp/base.NsPerOp - 1
	fmt.Printf("%-50s wall overhead %+.1f%% (%.0f -> %.0f ns/op), budget %.0f%%\n",
		tracedName, 100*overhead, base.NsPerOp, traced.NsPerOp, 100**maxWall)
	if base.NsPerOp <= 0 || traced.NsPerOp > base.NsPerOp*(1+*maxWall) {
		fmt.Printf("  FAIL: tracing costs more than the wall budget\n")
		failed++
	}
	shared := make([]string, 0, len(base.Metrics))
	for m := range base.Metrics {
		if _, ok := traced.Metrics[m]; ok && !isThroughputMetric(m) {
			shared = append(shared, m)
		}
	}
	sort.Strings(shared)
	for _, m := range shared {
		bv, tv := base.Metrics[m], traced.Metrics[m]
		if bv != tv {
			fmt.Printf("  FAIL: %s differs under tracing: %v (base) vs %v (traced)\n", m, bv, tv)
			failed++
		} else {
			fmt.Printf("  %-48s %v (identical under tracing)\n", m, bv)
		}
	}
	if *baselinePath != "" {
		old, err := loadRecord(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 1
		}
		if ob, ok := old.Benchmarks[baseName]; !ok {
			fmt.Printf("%-50s missing from %s (allocs pin skipped)\n", baseName, *baselinePath)
		} else if base.AllocsPerOp > ob.AllocsPerOp {
			fmt.Printf("  FAIL: %s allocs/op grew with tracing off: %.0f -> %.0f\n",
				baseName, ob.AllocsPerOp, base.AllocsPerOp)
			failed++
		} else {
			fmt.Printf("  %-48s allocs/op %.0f (baseline %.0f, tracing off)\n",
				baseName, base.AllocsPerOp, ob.AllocsPerOp)
		}
	}
	if failed > 0 {
		fmt.Printf("benchjson overhead: %d check(s) failed\n", failed)
		return 1
	}
	fmt.Println("benchjson overhead: within budget, metrics identical under tracing")
	return 0
}

// isThroughputMetric reports whether a custom-metric key is a samples/sec
// throughput the diff gate enforces ("samples/sec_wall", "samples_per_sec",
// ...).
func isThroughputMetric(name string) bool {
	return strings.HasPrefix(name, "samples/sec") || strings.HasPrefix(name, "samples_per_sec")
}

func loadRecord(path string) (*Record, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(buf, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &rec, nil
}

// delta renders old→new movement as a signed percentage.
func delta(old, new float64) string {
	switch {
	case old == 0 && new == 0:
		return "      —"
	case old == 0:
		return "   +new"
	default:
		return fmt.Sprintf("%+6.1f%%", 100*(new/old-1))
	}
}

// parseLine handles `BenchmarkName-8  123  456 ns/op  7 B/op  1 allocs/op
// 2.5 custom_metric` lines. Fields after the iteration count come in
// value-unit pairs.
func parseLine(line string) (string, Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return name, res, true
}

// marshalStable renders the record with sorted benchmark names so committed
// snapshots diff cleanly.
func marshalStable(rec Record) ([]byte, error) {
	names := make([]string, 0, len(rec.Benchmarks))
	for n := range rec.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	if rec.Label != "" {
		fmt.Fprintf(&b, "  %q: %q,\n", "label", rec.Label)
	}
	if rec.Go != "" {
		fmt.Fprintf(&b, "  %q: %q,\n", "go", rec.Go)
	}
	b.WriteString("  \"benchmarks\": {\n")
	for i, n := range names {
		body, err := json.Marshal(rec.Benchmarks[n])
		if err != nil {
			return nil, err
		}
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		fmt.Fprintf(&b, "    %q: %s%s\n", n, body, comma)
	}
	b.WriteString("  }\n}\n")
	return []byte(b.String()), nil
}
