// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark record, so every PR can commit a BENCH_<date>.json snapshot and
// CI can diff perf against the previous baseline.
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./scripts/benchjson -label post-PR -out BENCH_2026-07-29.json
//
// Standard units (ns/op, B/op, allocs/op) become top-level fields; anything
// else (the experiment suite's speedup_x, samples/sec_wall, ...) lands under
// "metrics".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Record is the whole file.
type Record struct {
	Label      string            `json:"label,omitempty"`
	Go         string            `json:"go,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		label = flag.String("label", "", "free-form snapshot label (e.g. pre-PR, post-PR)")
		out   = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	rec := Record{Label: *label, Go: runtime.Version(), Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if name, res, ok := parseLine(sc.Text()); ok {
			rec.Benchmarks[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	buf, err := marshalStable(rec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rec.Benchmarks), *out)
}

// parseLine handles `BenchmarkName-8  123  456 ns/op  7 B/op  1 allocs/op
// 2.5 custom_metric` lines. Fields after the iteration count come in
// value-unit pairs.
func parseLine(line string) (string, Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return name, res, true
}

// marshalStable renders the record with sorted benchmark names so committed
// snapshots diff cleanly.
func marshalStable(rec Record) ([]byte, error) {
	names := make([]string, 0, len(rec.Benchmarks))
	for n := range rec.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	if rec.Label != "" {
		fmt.Fprintf(&b, "  %q: %q,\n", "label", rec.Label)
	}
	if rec.Go != "" {
		fmt.Fprintf(&b, "  %q: %q,\n", "go", rec.Go)
	}
	b.WriteString("  \"benchmarks\": {\n")
	for i, n := range names {
		body, err := json.Marshal(rec.Benchmarks[n])
		if err != nil {
			return nil, err
		}
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		fmt.Fprintf(&b, "    %q: %s%s\n", n, body, comma)
	}
	b.WriteString("  }\n}\n")
	return []byte(b.String()), nil
}
