#!/usr/bin/env bash
# bench.sh — run the perf-tracking benchmark set and emit a BENCH_<date>.json
# snapshot (benchmark name → ns/op, allocs/op, custom metrics) so future PRs
# have a baseline to compare against.
#
#   scripts/bench.sh                    # full run, writes BENCH_YYYY-MM-DD.json
#   scripts/bench.sh --short            # CI smoke: 1 iteration per benchmark
#   scripts/bench.sh --out my.json      # explicit output path
#   BENCH='BenchmarkHeadline.*' scripts/bench.sh   # custom pattern
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="3x"
MICROTIME="100000x"
OUT="BENCH_$(date +%F).json"
LABEL="$(git rev-parse --short HEAD 2>/dev/null || echo unversioned)"

while [ $# -gt 0 ]; do
  case "$1" in
    --short) BENCHTIME="1x"; MICROTIME="1000x"; shift ;;
    --out)   OUT="$2"; shift 2 ;;
    --label) LABEL="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

# The perf-tracking set: end-to-end session throughput, kernel fixed cost,
# the headline experiment (simulated-time metrics must stay stable) plus its
# traced twin (tracing overhead must stay under budget), and the hot-path
# microbenchmarks.
BENCH="${BENCH:-BenchmarkLoaderSessionThroughput|BenchmarkSimulateSmallSession|BenchmarkHeadlineSpeedup|BenchmarkPipelineCostModel|BenchmarkFleetSession|BenchmarkClusterTenants|BenchmarkMultiNode\$|BenchmarkChurn|BenchmarkWarmEpoch|BenchmarkServe}"
MICRO="${MICRO:-BenchmarkVirtualSleep|BenchmarkSelectorWakeWait|BenchmarkVirtualSameDeadlineSleepers|BenchmarkProfilerRecord|BenchmarkPoolSharedContention}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" . | tee "$tmp"
go test -run '^$' -bench "$MICRO" -benchmem -benchtime "$MICROTIME" \
  ./internal/simtime ./internal/core ./internal/data | tee -a "$tmp"

# The tracing-overhead gate below compares wall times, which a shared
# machine perturbs one-sidedly; rerun the headline pair a few more times so
# benchjson's min-of-N folding converges on the uncontended cost.
go test -run '^$' -bench 'BenchmarkHeadlineSpeedup' -benchmem \
  -benchtime "$BENCHTIME" -count 4 . | tee -a "$tmp"

go run ./scripts/benchjson -label "$LABEL" -out "$OUT" <"$tmp"
echo "wrote $OUT"

# Tracing-overhead gate: the traced headline run may cost at most 5% extra
# wall time over the untraced one, and the simulated-time metrics the two
# share must be bit-identical (tracing records; it must not perturb).
if grep -q '"BenchmarkHeadlineSpeedupTraced"' "$OUT"; then
  go run ./scripts/benchjson overhead "$OUT" \
    BenchmarkHeadlineSpeedup BenchmarkHeadlineSpeedupTraced
fi
