package minato

import (
	"fmt"
	"strings"
	"sync"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/device"
	"github.com/minatoloader/minato/internal/gpu"
	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/matcache"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/storage"
	"github.com/minatoloader/minato/internal/trace"
	"github.com/minatoloader/minato/internal/trainer"
)

// clusterShare is a tenant's worker-quota handle in the cluster's fair
// arbitration.
type clusterShare = loader.Share

// AdmissionPolicy decides what Cluster.Open and Cluster.Train do when the
// cluster already hosts WithMaxSessions sessions.
type AdmissionPolicy int

const (
	// AdmitReject fails saturated opens immediately with
	// ErrClusterSaturated (the default).
	AdmitReject AdmissionPolicy = iota
	// AdmitQueue blocks saturated opens until a session slot frees
	// (approximately FIFO) or the cluster closes (ErrClusterClosed).
	AdmitQueue
)

// clusterOptions accumulates NewCluster's functional options.
type clusterOptions struct {
	hw          *HardwareConfig
	env         *EnvConfig
	gpus        int
	rt          Runtime
	maxSessions int
	admission   AdmissionPolicy
	matBytes    int64
	trace       *trace.Recorder
}

// WithMaxSessions caps how many sessions the cluster hosts concurrently.
// Zero (the default) means unlimited. What happens to opens beyond the cap
// is decided by WithAdmission.
func WithMaxSessions(n int) ClusterOption {
	return clusterOption(func(o *clusterOptions) { o.maxSessions = n })
}

// WithAdmission sets the policy for opens arriving while the cluster is at
// WithMaxSessions capacity: AdmitReject (default) or AdmitQueue.
func WithAdmission(p AdmissionPolicy) ClusterOption {
	return clusterOption(func(o *clusterOptions) { o.admission = p })
}

// Cluster is a long-lived, shared machine hosting many concurrent loading
// and training sessions: one runtime, one CPU worker pool, one GPU set, one
// disk, one page cache, and one sample pool, multiplexed across tenants.
//
//	cluster, err := minato.NewCluster(
//	    minato.WithHardware(minato.ConfigA()),
//	    minato.WithMaxSessions(16),
//	    minato.WithAdmission(minato.AdmitQueue),
//	)
//	sess, err := cluster.Open(dataset, minato.WithPriority(2))
//
// Arbitration: preprocessing workers are shared fairly across tenant
// sessions, weighted by WithPriority — quotas rebalance whenever a session
// opens or closes, and each MinatoLoader's adaptive scheduler tracks its
// quota at the next tick. The page cache is shared with per-tenant
// attribution and soft capacity partitioning, so one tenant's working set
// cannot silently evict everyone else's, and each session's Report counts
// its own cache hits. Admission control (WithMaxSessions + WithAdmission)
// bounds the tenant count.
//
// A Cluster is safe for concurrent use. Open, Train, and Stats may be
// called from any goroutine; sessions stream independently. Close marks
// the cluster closed (new opens fail, queued opens release with
// ErrClusterClosed) and reclaims the shared substrate once the last
// session has closed.
//
// A Cluster multiplexes many tenants over ONE machine. For the opposite
// shape — one training job spread data-parallel across MANY machines
// connected by a simulated interconnect — see TrainMultiNode and Topology.
type Cluster struct {
	rt     Runtime
	ownsRT bool
	cpu    *device.Device
	gpus   []*gpu.GPU
	disk   *storage.Disk
	cache  *storage.PageCache
	mat    *matcache.Cache
	store  *storage.Store
	pool   *data.Pool
	shares *loader.FairShare
	tr     *trace.Recorder

	maxSessions int
	admission   AdmissionPolicy

	mu            sync.Mutex
	closed        bool
	reclaimed     bool
	active        int
	nextTenant    int
	waiters       []chan struct{}
	openedTotal   int64
	rejectedTotal int64
	sessions      map[*Session]struct{}
	// gpuLoad counts sessions placed on each GPU; placement picks the
	// least-loaded devices so tenants spread across the cluster's GPUs
	// instead of stacking on a prefix.
	gpuLoad []int
}

// NewCluster builds a shared testbed for concurrent sessions. Hardware
// options (WithHardware, WithEnv, WithGPUs, WithRuntime) size the shared
// substrate exactly as they would a standalone Open; WithMaxSessions and
// WithAdmission configure tenancy. Defaults: an 8-core single-GPU
// environment on a fresh deterministic virtual runtime, unlimited
// sessions.
func NewCluster(opts ...ClusterOption) (*Cluster, error) {
	co := &clusterOptions{}
	for _, opt := range opts {
		opt.applyCluster(co)
	}
	return newCluster(co)
}

func newCluster(co *clusterOptions) (*Cluster, error) {
	if co.hw != nil && co.env != nil {
		return nil, configErr("WithHardware/WithEnv", "mutually exclusive")
	}
	if co.gpus < 0 {
		return nil, configErr("WithGPUs", fmt.Sprintf("GPU count %d < 0", co.gpus))
	}
	if co.maxSessions < 0 {
		return nil, configErr("WithMaxSessions", fmt.Sprintf("session cap %d < 0", co.maxSessions))
	}
	rt := co.rt
	ownsRT := rt == nil
	if ownsRT {
		rt = simtime.NewVirtual()
	}
	c := &Cluster{
		rt: rt, ownsRT: ownsRT,
		maxSessions: co.maxSessions,
		admission:   co.admission,
		pool:        data.NewPool(),
		sessions:    make(map[*Session]struct{}),
	}
	if co.hw != nil {
		cfg := *co.hw
		if co.gpus > 0 {
			cfg = cfg.WithGPUs(co.gpus)
		}
		tb := hardware.NewTestbed(rt, cfg)
		c.cpu, c.gpus, c.disk, c.cache, c.store = tb.CPU, tb.GPUs, tb.Disk, tb.Cache, tb.Store
	} else {
		ec := EnvConfig{}
		if co.env != nil {
			ec = *co.env
		}
		if co.gpus > 0 {
			ec.GPUs = co.gpus
		}
		env, disk, cache := buildEnv(rt, ec)
		c.cpu, c.gpus, c.disk, c.cache = env.CPU, env.GPUs, disk, cache
		c.store = env.Store
	}
	if co.matBytes < 0 {
		return nil, configErr("WithMaterializedCache", fmt.Sprintf("capacity %d < 0", co.matBytes))
	}
	if co.matBytes > 0 {
		if c.cache == nil {
			return nil, configErr("WithMaterializedCache", "requires a page cache to carve capacity from")
		}
		// The materialized layer shares the machine's memory with the page
		// cache: carve its capacity out explicitly so the two layers never
		// double-count the same simulated bytes. Validate before reserving —
		// ReserveCapacity is a permanent, evicting shrink, and a failed
		// construction must not leave a caller-supplied testbed's page cache
		// mutilated.
		if pageCap := c.cache.Capacity(); co.matBytes > pageCap {
			return nil, configErr("WithMaterializedCache",
				fmt.Sprintf("capacity %d exceeds the page cache's %d", co.matBytes, pageCap))
		}
		c.cache.ReserveCapacity(co.matBytes)
		c.mat = matcache.New(co.matBytes)
	}
	if co.trace != nil {
		c.tr = co.trace
		// GPU kernel occupancy is recorded at the device; the per-tenant
		// step anatomy comes from consumer-side spans, so the device spans
		// carry tenant 0 and the GPU index as Key.
		for _, g := range c.gpus {
			g.EnableTrace(co.trace, 0, 0)
		}
		if c.store != nil {
			cp := *c.store
			cp.Trace = co.trace
			c.store = &cp
		}
	}
	c.shares = loader.NewFairShare(int(c.cpu.Capacity()))
	c.gpuLoad = make([]int, len(c.gpus))
	return c, nil
}

// Runtime returns the runtime shared by every session of the cluster.
func (c *Cluster) Runtime() Runtime { return c.rt }

// Open starts a data-loading session on the cluster's shared substrate.
// It accepts the session-level options of the standalone Open (pipeline,
// batch size, loader, budget, seed, priority); the hardware-shaping
// options are cluster-owned and return a *ConfigError here. WithGPUs
// selects how many of the cluster's GPUs the session shards delivery
// across (default: all of them).
//
// When the cluster is at WithMaxSessions capacity, Open rejects with
// ErrClusterSaturated or — under AdmitQueue — blocks until a slot frees.
// Queued opens are released with ErrClusterClosed if the cluster closes
// first. Open must be called from ordinary (untracked) goroutines, not
// from inside a virtual-kernel task.
func (c *Cluster) Open(dataset Dataset, opts ...Option) (*Session, error) {
	o := buildOptions(opts)
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := o.rejectClusterOwned(); err != nil {
		return nil, err
	}
	return c.open(dataset, o, false)
}

// open wires a session; o must already be validated and carry no
// cluster-owned options.
func (c *Cluster) open(dataset Dataset, o *sessionOptions, ownsCluster bool) (*Session, error) {
	if dataset == nil {
		return nil, configErr("Open", "requires a dataset")
	}
	f, err := o.resolveFactory()
	if err != nil {
		return nil, err
	}
	script, err := o.resolveChaos(0)
	if err != nil {
		return nil, err
	}
	gpuCount, err := c.sessionGPUs(o.gpus)
	if err != nil {
		return nil, err
	}

	pipeline := o.pipeline
	if pipeline == nil {
		pipeline = NewPipeline("identity")
	}
	batchSize := o.batchSize
	if batchSize == 0 {
		batchSize = 32
	}
	epochs := o.epochs
	if o.iterations == 0 && epochs == 0 {
		epochs = 1
	}
	spec := Spec{
		Dataset:    dataset,
		Pipeline:   pipeline,
		BatchSize:  batchSize,
		Epochs:     epochs,
		Iterations: o.iterations,
		Seed:       o.seed,
		Skip:       o.skip,
	}
	if spec.BatchesPerEpoch() == 0 {
		return nil, configErr("WithBatchSize", fmt.Sprintf("batch size %d exceeds dataset %q size %d",
			batchSize, dataset.Name(), dataset.Len()))
	}

	tenantID, err := c.admit()
	if err != nil {
		return nil, err
	}
	share := c.shares.Join(o.weight)
	cacheTenant := 0
	if c.cache != nil {
		cacheTenant = c.cache.JoinTenant()
	}
	if c.mat != nil {
		// The materialized cache shares the page cache's tenant ids, so one
		// id routes a session's traffic through both layers.
		c.mat.JoinTenant(cacheTenant)
	}
	gpuIdxs := c.acquireGPUs(gpuCount)
	env := c.sessionEnv(gpuIdxs, cacheTenant, share)

	ld := f.New(env, spec)
	name := f.Name
	if name == "" {
		name = ld.Name()
	}
	s := &Session{
		cl:          c,
		ownsCluster: ownsCluster,
		tenantID:    tenantID,
		cacheTenant: cacheTenant,
		share:       share,
		gpuIdxs:     gpuIdxs,
		weight:      o.weight,
		rt:          c.rt,
		env:         env,
		ld:          ld,
		factory:     f,
		name:        name,
		spec:        spec,
		retain:      o.retain,
		script:      script,
	}
	c.mu.Lock()
	c.sessions[s] = struct{}{}
	c.mu.Unlock()
	return s, nil
}

// Train runs a full training session — loader plus simulated GPU consumers
// — for a registered workload on the cluster's shared substrate, under the
// same admission control and worker arbitration as Open:
//
//	rep, err := cluster.Train("speech-3s", minato.WithPriority(2))
//
// It blocks until the training run completes and occupies one session slot
// for the duration.
func (c *Cluster) Train(workloadName string, opts ...Option) (*Report, error) {
	o := buildOptions(opts)
	w, ok := WorkloadByName(workloadName, o.seed)
	if !ok {
		return nil, configErr("Train", fmt.Sprintf("unknown workload %q (registered: %s)",
			workloadName, strings.Join(Workloads(), ", ")))
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := o.rejectClusterOwned(); err != nil {
		return nil, err
	}
	return c.train(w, o)
}

// TrainWorkload is Cluster.Train for a workload value built directly.
func (c *Cluster) TrainWorkload(w Workload, opts ...Option) (*Report, error) {
	o := buildOptions(opts)
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := o.rejectClusterOwned(); err != nil {
		return nil, err
	}
	return c.train(w, o)
}

// train runs one training session; o must already be validated and carry
// no cluster-owned options.
func (c *Cluster) train(w Workload, o *sessionOptions) (*Report, error) {
	if o.pipeline != nil {
		return nil, configErr("WithPipeline", "workloads carry their own pipeline; WithPipeline applies to Open")
	}
	if o.retain {
		return nil, configErr("WithRetainBatches", "training consumers own and recycle their batches; WithRetainBatches applies to Open")
	}
	f, err := o.resolveFactory()
	if err != nil {
		return nil, err
	}
	script, err := o.resolveChaos(0)
	if err != nil {
		return nil, err
	}
	o.params.Chaos = script
	gpuCount, err := c.sessionGPUs(o.gpus)
	if err != nil {
		return nil, err
	}
	if o.batchSize > 0 {
		w.BatchSize = o.batchSize
	}
	if o.epochs > 0 {
		w = w.WithEpochs(o.epochs)
	}
	if o.iterations > 0 {
		w = w.WithIterations(o.iterations)
	}
	// Same guard as Open: with drop-last semantics a batch larger than the
	// dataset yields zero batches per epoch, which would spin the index
	// source forever instead of terminating.
	if w.Spec().BatchesPerEpoch() == 0 {
		return nil, configErr("WithBatchSize", fmt.Sprintf("batch size %d exceeds dataset %q size %d",
			w.BatchSize, w.Dataset.Name(), w.Dataset.Len()))
	}

	if _, err := c.admit(); err != nil {
		return nil, err
	}
	share := c.shares.Join(o.weight)
	cacheTenant := 0
	if c.cache != nil {
		cacheTenant = c.cache.JoinTenant()
	}
	if c.mat != nil {
		c.mat.JoinTenant(cacheTenant)
	}
	gpuIdxs := c.acquireGPUs(gpuCount)
	defer func() {
		c.releaseGPUs(gpuIdxs)
		share.Leave()
		if c.cache != nil {
			c.cache.LeaveTenant(cacheTenant)
		}
		if c.mat != nil {
			c.mat.LeaveTenant(cacheTenant)
		}
		c.release()
	}()

	if c.tr != nil {
		o.params.Trace = c.tr
	}
	env := c.sessionEnv(gpuIdxs, cacheTenant, share)
	var rep *Report
	if v, ok := c.rt.(*simtime.Virtual); ok {
		v.Run(func() {
			rep, err = trainer.RunEnv(env, c.disk, c.cache, w, f, o.params)
		})
	} else {
		rep, err = trainer.RunEnv(env, c.disk, c.cache, w, f, o.params)
	}
	return rep, err
}

// sessionGPUs validates how many of the cluster's GPUs a session may use.
func (c *Cluster) sessionGPUs(requested int) (int, error) {
	if requested == 0 {
		return len(c.gpus), nil
	}
	if requested > len(c.gpus) {
		return 0, configErr("WithGPUs", fmt.Sprintf("session requests %d GPUs but the cluster has %d",
			requested, len(c.gpus)))
	}
	return requested, nil
}

// acquireGPUs places a session on the n least-loaded GPUs (ties broken by
// device index, so placement is deterministic for a deterministic open
// order) and returns the chosen indices. releaseGPUs undoes the placement.
func (c *Cluster) acquireGPUs(n int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	idxs := make([]int, 0, n)
	taken := make([]bool, len(c.gpuLoad))
	for len(idxs) < n {
		best := -1
		for i, load := range c.gpuLoad {
			if taken[i] {
				continue
			}
			if best < 0 || load < c.gpuLoad[best] {
				best = i
			}
		}
		taken[best] = true
		c.gpuLoad[best]++
		idxs = append(idxs, best)
	}
	return idxs
}

func (c *Cluster) releaseGPUs(idxs []int) {
	c.mu.Lock()
	for _, i := range idxs {
		c.gpuLoad[i]--
	}
	c.mu.Unlock()
}

// sessionEnv assembles a session's view of the shared substrate: shared
// runtime, CPU, the placed GPUs, disk, cache (tenant-routed), and pool; a
// private WaitGroup for teardown; the tenant's worker-quota governor.
func (c *Cluster) sessionEnv(gpuIdxs []int, cacheTenant int, share *clusterShare) *Env {
	gpus := make([]*gpu.GPU, len(gpuIdxs))
	for i, g := range gpuIdxs {
		gpus[i] = c.gpus[g]
	}
	return &Env{
		RT:    c.rt,
		CPU:   c.cpu,
		GPUs:  gpus,
		Store: c.store.WithTenant(cacheTenant),
		WG:    simtime.NewWaitGroup(c.rt),
		Pool:  c.pool,
		Gov:   share,
		Mat:   c.mat,
		Trace: c.tr,
	}
}

// admit takes one session slot, applying the admission policy, and returns
// the tenant sequence number.
func (c *Cluster) admit() (int, error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return 0, ErrClusterClosed
		}
		if c.maxSessions <= 0 || c.active < c.maxSessions {
			break
		}
		if c.admission == AdmitReject {
			c.rejectedTotal++
			c.mu.Unlock()
			return 0, ErrClusterSaturated
		}
		ch := make(chan struct{})
		c.waiters = append(c.waiters, ch)
		c.mu.Unlock()
		<-ch
		c.mu.Lock()
	}
	c.active++
	c.openedTotal++
	c.nextTenant++
	id := c.nextTenant
	c.mu.Unlock()
	return id, nil
}

// release frees one session slot, admitting the longest-queued waiter.
func (c *Cluster) release() {
	c.mu.Lock()
	c.active--
	var wake chan struct{}
	if len(c.waiters) > 0 {
		wake = c.waiters[0]
		c.waiters = c.waiters[1:]
	}
	reclaim := c.closed && c.active == 0 && !c.reclaimed
	if reclaim {
		c.reclaimed = true
	}
	c.mu.Unlock()
	if wake != nil {
		close(wake)
	}
	if reclaim {
		c.reclaim()
	}
}

// releaseSession ends a session's tenancy: quota rebalance, cache tenant
// departure, slot release.
func (c *Cluster) releaseSession(s *Session) {
	c.mu.Lock()
	delete(c.sessions, s)
	c.mu.Unlock()
	c.releaseGPUs(s.gpuIdxs)
	if s.share != nil {
		s.share.Leave()
	}
	if c.cache != nil {
		c.cache.LeaveTenant(s.cacheTenant)
	}
	if c.mat != nil {
		c.mat.LeaveTenant(s.cacheTenant)
	}
	c.release()
}

func (c *Cluster) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// reclaim drains the cluster-owned virtual kernel and recycles the shared
// cache storage. Runs at most once, after close with no active sessions.
func (c *Cluster) reclaim() {
	if v, ok := c.rt.(*simtime.Virtual); ok && c.ownsRT {
		v.Drain()
	}
	if c.cache != nil {
		c.cache.Recycle()
	}
	if c.mat != nil {
		c.mat.Recycle()
	}
}

// Close marks the cluster closed: new opens fail with ErrClusterClosed and
// queued opens release with the same error. The shared substrate (kernel
// tasks, cache storage) is reclaimed once the last active session closes —
// immediately, when none is. Close is idempotent and safe to call
// concurrently with session activity.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		reclaimNow := c.active == 0 && !c.reclaimed
		if reclaimNow {
			c.reclaimed = true
		}
		c.mu.Unlock()
		if reclaimNow {
			c.reclaim()
		}
		return nil
	}
	c.closed = true
	ws := c.waiters
	c.waiters = nil
	reclaimNow := c.active == 0 && !c.reclaimed
	if reclaimNow {
		c.reclaimed = true
	}
	c.mu.Unlock()
	for _, ch := range ws {
		close(ch)
	}
	if reclaimNow {
		c.reclaim()
	}
	return nil
}

// ClusterStats is a live snapshot of a cluster's tenancy and shared
// resources.
type ClusterStats struct {
	// MaxSessions is the configured cap (0 = unlimited); ActiveSessions the
	// current tenant count; QueuedOpens how many AdmitQueue opens are
	// waiting for a slot.
	MaxSessions    int
	ActiveSessions int
	QueuedOpens    int
	// OpenedTotal and RejectedTotal count admissions and AdmitReject
	// refusals over the cluster's lifetime.
	OpenedTotal   int64
	RejectedTotal int64
	// WorkerCapacity is the CPU worker capacity being arbitrated across
	// tenants.
	WorkerCapacity int
	// Cache and Pool snapshot the shared page cache (whole-cache view) and
	// sample pool; MatCache the materialized preprocessed-sample cache
	// (zero when WithMaterializedCache is not enabled).
	Cache    CacheStats
	MatCache MatCacheStats
	Pool     PoolStats
	// Sessions holds a live SessionStats per open loading session, in no
	// particular order. Training runs (Cluster.Train) occupy session slots
	// — they are counted in ActiveSessions — but stream through no public
	// Session, so they do not appear here.
	Sessions []SessionStats
}

// SessionStats is a live snapshot of one session — see Session.Stats.
type SessionStats struct {
	// Tenant is the session's admission sequence number (1-based).
	Tenant  int
	Dataset string
	Loader  string
	// Priority is the WithPriority weight; WorkerQuota the current fair
	// share of preprocessing workers it buys.
	Priority    float64
	WorkerQuota int
	// State is "open" (not yet consumed), "streaming", or "closed".
	State string
	// Batches, Samples, Bytes count deliveries so far.
	Batches int64
	Samples int64
	Bytes   int64
	// Cache is the session's attributable slice of the shared page cache;
	// MatCache its slice of the materialized preprocessed-sample cache
	// (zero when WithMaterializedCache is not enabled).
	Cache    CacheStats
	MatCache MatCacheStats
}

// Stats returns a live snapshot of the cluster: tenancy counters, the
// shared cache and pool, and per-session statistics. Safe to call from any
// goroutine while sessions stream.
func (c *Cluster) Stats() ClusterStats {
	c.mu.Lock()
	st := ClusterStats{
		MaxSessions:    c.maxSessions,
		ActiveSessions: c.active,
		QueuedOpens:    len(c.waiters),
		OpenedTotal:    c.openedTotal,
		RejectedTotal:  c.rejectedTotal,
		WorkerCapacity: c.shares.Capacity(),
	}
	sessions := make([]*Session, 0, len(c.sessions))
	for s := range c.sessions {
		sessions = append(sessions, s)
	}
	c.mu.Unlock()
	if c.cache != nil {
		st.Cache = c.cache.Stats()
	}
	if c.mat != nil {
		st.MatCache = c.mat.Stats()
	}
	st.Pool = c.pool.Stats()
	for _, s := range sessions {
		st.Sessions = append(st.Sessions, s.Stats())
	}
	return st
}
