package minato

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"strings"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/storage"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

// ErrSessionConsumed is returned when Batches is ranged over a second
// time: a session streams its batch budget exactly once.
var ErrSessionConsumed = errors.New("minato: session batches already consumed")

// ErrSessionClosed is returned when Batches is called after Close.
var ErrSessionClosed = errors.New("minato: session closed")

// sessionOptions accumulates the functional options of Open, Train, and
// TrainWorkload. Fields left at their zero value take the documented
// defaults.
type sessionOptions struct {
	pipeline   *Pipeline
	batchSize  int
	loaderName string
	factory    *Factory
	loaderCfg  *Config
	hw         *HardwareConfig
	env        *EnvConfig
	gpus       int
	rt         Runtime
	iterations int
	epochs     int
	seed       uint64
	params     Params
	retain     bool
}

// Option configures a Session (Open) or a training run (Train,
// TrainWorkload).
type Option func(*sessionOptions)

// WithPipeline sets the preprocessing pipeline samples flow through.
// Open-only (training workloads carry their own pipeline); the default is
// an empty pipeline that delivers samples unchanged.
func WithPipeline(p *Pipeline) Option { return func(o *sessionOptions) { o.pipeline = p } }

// WithBatchSize sets how many samples each delivered batch holds. Open
// defaults to 32; Train defaults to the workload's Table 3 value.
func WithBatchSize(n int) Option { return func(o *sessionOptions) { o.batchSize = n } }

// WithLoader selects the data loader backend by registered name
// (RegisterLoader; "pytorch", "pecan", "dali", and "minato" are built in).
// The default is "minato".
func WithLoader(name string) Option { return func(o *sessionOptions) { o.loaderName = name } }

// WithLoaderFactory bypasses the registry and uses the given factory
// directly — for one-off configurations not worth registering.
func WithLoaderFactory(f Factory) Option { return func(o *sessionOptions) { o.factory = &f } }

// WithLoaderConfig runs MinatoLoader with a custom Config instead of the
// paper's defaults. It conflicts with selecting a non-minato loader.
func WithLoaderConfig(cfg Config) Option { return func(o *sessionOptions) { o.loaderCfg = &cfg } }

// WithHardware runs the session on one of the simulated testbeds
// (ConfigA, ConfigB, or a custom HardwareConfig). Without it, Open sizes a
// lightweight environment via WithEnv defaults and Train uses ConfigA.
func WithHardware(cfg HardwareConfig) Option { return func(o *sessionOptions) { o.hw = &cfg } }

// WithEnv sizes a custom embedder environment (cores, disk, cache) for
// Open. It conflicts with WithHardware.
func WithEnv(cfg EnvConfig) Option { return func(o *sessionOptions) { o.env = &cfg } }

// WithGPUs overrides the GPU (consumer) count of the testbed or
// environment.
func WithGPUs(n int) Option { return func(o *sessionOptions) { o.gpus = n } }

// WithRuntime runs the session on an existing runtime — e.g.
// NewRealRuntime to stream against the wall clock, or a shared virtual
// kernel. Open-only; the default is a fresh virtual runtime.
func WithRuntime(rt Runtime) Option { return func(o *sessionOptions) { o.rt = rt } }

// WithIterations bounds the session to n delivered batches, wrapping
// epochs as needed. It takes precedence over WithEpochs.
func WithIterations(n int) Option { return func(o *sessionOptions) { o.iterations = n } }

// WithEpochs bounds the session to n full passes over the dataset
// (drop-last semantics). The default budget is one epoch.
func WithEpochs(n int) Option { return func(o *sessionOptions) { o.epochs = n } }

// WithSeed keys every random draw of the session (shuffling, synthetic
// sample properties). Identical seeds reproduce runs exactly. Default 1.
func WithSeed(seed uint64) Option { return func(o *sessionOptions) { o.seed = seed } }

// WithParams tunes what a training run records (time series, batch
// composition, per-sample traces). Train/TrainWorkload only.
func WithParams(p Params) Option { return func(o *sessionOptions) { o.params = p } }

// WithRetainBatches disables the session's batch recycling: every batch
// yielded by Batches stays valid indefinitely, at the cost of allocating
// fresh samples for every draw. Without it, a yielded batch (and the
// samples inside it) is recycled when the loop takes the next step, so
// callers that keep references across iterations must either copy what
// they need or set this option. Open-only.
func WithRetainBatches() Option { return func(o *sessionOptions) { o.retain = true } }

func buildOptions(opts []Option) *sessionOptions {
	o := &sessionOptions{seed: 1}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

func (o *sessionOptions) validate() error {
	if o.batchSize < 0 {
		return fmt.Errorf("minato: batch size %d < 0", o.batchSize)
	}
	if o.iterations < 0 {
		return fmt.Errorf("minato: iteration budget %d < 0", o.iterations)
	}
	if o.epochs < 0 {
		return fmt.Errorf("minato: epoch budget %d < 0", o.epochs)
	}
	if o.gpus < 0 {
		return fmt.Errorf("minato: GPU count %d < 0", o.gpus)
	}
	if o.hw != nil && o.env != nil {
		return errors.New("minato: WithHardware and WithEnv are mutually exclusive")
	}
	if o.factory != nil && o.loaderName != "" {
		return errors.New("minato: WithLoader and WithLoaderFactory are mutually exclusive")
	}
	if o.loaderCfg != nil && o.loaderName != "" && o.loaderName != "minato" {
		return fmt.Errorf("minato: WithLoaderConfig configures the minato loader, but %q is selected", o.loaderName)
	}
	if o.loaderCfg != nil && o.factory != nil {
		return errors.New("minato: WithLoaderConfig and WithLoaderFactory are mutually exclusive")
	}
	return nil
}

// resolveFactory picks the loader factory: an explicit factory first, then
// a custom-configured MinatoLoader, then the registry by name, defaulting
// to "minato".
func (o *sessionOptions) resolveFactory() (Factory, error) {
	if o.factory != nil {
		return *o.factory, nil
	}
	name := o.loaderName
	if name == "" {
		name = "minato"
	}
	if o.loaderCfg != nil {
		return loaders.Minato(*o.loaderCfg), nil
	}
	f, ok := loaders.ByName(name)
	if !ok {
		return Factory{}, fmt.Errorf("minato: unknown loader %q (registered: %s)",
			name, strings.Join(loaders.Names(), ", "))
	}
	return f, nil
}

type sessionState int

const (
	sessionNew sessionState = iota
	sessionConsumed
	sessionClosed
)

// Session is one data-loading run: a dataset flowing through a
// preprocessing pipeline into batches, delivered by a pluggable loader
// backend over a simulated (or real) runtime.
//
// Lifecycle: Open configures and wires the session, Batches streams the
// configured batch budget exactly once, Close tears down and returns the
// session's Report. Sessions are not safe for concurrent use.
type Session struct {
	rt     Runtime
	ownsRT bool
	env    *Env
	ld     DataLoader
	name   string
	spec   Spec
	disk   *storage.Disk
	cache  *storage.PageCache

	state   sessionState
	retain  bool
	err     error
	startAt time.Duration
	endAt   time.Duration
	batches int64
	samples int64
	bytes   int64
}

// Open starts a data-loading session over dataset, configured by
// functional options:
//
//	sess, err := minato.Open(dataset,
//	    minato.WithPipeline(pipeline),
//	    minato.WithBatchSize(64),
//	    minato.WithLoader("minato"),
//	    minato.WithIterations(1000),
//	)
//
// Defaults: the MinatoLoader backend, batch size 32, a one-epoch budget,
// seed 1, an 8-core single-GPU environment (see EnvConfig), and a fresh
// deterministic virtual runtime. The loader's background tasks launch on
// the first Batches call, so an Open session costs nothing until consumed.
func Open(dataset Dataset, opts ...Option) (*Session, error) {
	if dataset == nil {
		return nil, errors.New("minato: Open requires a dataset")
	}
	o := buildOptions(opts)
	if err := o.validate(); err != nil {
		return nil, err
	}
	f, err := o.resolveFactory()
	if err != nil {
		return nil, err
	}

	rt := o.rt
	if rt == nil {
		rt = simtime.NewVirtual()
	}

	var (
		env   *Env
		disk  *storage.Disk
		cache *storage.PageCache
	)
	if o.hw != nil {
		cfg := *o.hw
		if o.gpus > 0 {
			cfg = cfg.WithGPUs(o.gpus)
		}
		tb := hardware.NewTestbed(rt, cfg)
		env = &Env{RT: rt, CPU: tb.CPU, GPUs: tb.GPUs, Store: tb.Store, WG: simtime.NewWaitGroup(rt)}
		disk, cache = tb.Disk, tb.Cache
	} else {
		ec := EnvConfig{}
		if o.env != nil {
			ec = *o.env
		}
		if o.gpus > 0 {
			ec.GPUs = o.gpus
		}
		env, disk, cache = buildEnv(rt, ec)
	}
	if env.Pool == nil {
		env.Pool = data.NewPool()
	}

	pipeline := o.pipeline
	if pipeline == nil {
		pipeline = NewPipeline("identity")
	}
	batchSize := o.batchSize
	if batchSize == 0 {
		batchSize = 32
	}
	epochs := o.epochs
	if o.iterations == 0 && epochs == 0 {
		epochs = 1
	}
	spec := Spec{
		Dataset:    dataset,
		Pipeline:   pipeline,
		BatchSize:  batchSize,
		Epochs:     epochs,
		Iterations: o.iterations,
		Seed:       o.seed,
	}
	if spec.BatchesPerEpoch() == 0 {
		return nil, fmt.Errorf("minato: batch size %d exceeds dataset %q size %d",
			batchSize, dataset.Name(), dataset.Len())
	}

	ld := f.New(env, spec)
	name := f.Name
	if name == "" {
		name = ld.Name()
	}
	return &Session{
		rt:     rt,
		ownsRT: o.rt == nil,
		env:    env,
		ld:     ld,
		name:   name,
		spec:   spec,
		disk:   disk,
		cache:  cache,
		retain: o.retain,
	}, nil
}

// Batches returns a single-use iterator over the session's batches:
//
//	for batch, err := range sess.Batches(ctx) {
//	    if err != nil { ... }
//	    // consume batch
//	}
//
// The iterator starts the loader on first use, yields exactly the
// configured budget (iterations, or epochs × batches-per-epoch), and then
// ends — the io.EOF that loaders use internally is absorbed into normal
// loop termination. Breaking out early stops the loader and abandons
// pending work; a ctx cancellation is yielded once as the error and ends
// the stream. In every case the loader's background tasks are fully torn
// down before the loop statement completes, so Close never blocks.
//
// Batch lifetime: the yielded batch and its samples are owned by the loop
// body only until it takes the next iteration step — at that point the
// session recycles them for upcoming draws (the zero-allocation steady
// state). Copy anything that must outlive the step, or open the session
// with WithRetainBatches to keep every batch alive. The final batch (and a
// batch the loop breaks on) is never recycled.
func (s *Session) Batches(ctx context.Context) iter.Seq2[*Batch, error] {
	return func(yield func(*Batch, error) bool) {
		switch s.state {
		case sessionClosed:
			yield(nil, ErrSessionClosed)
			return
		case sessionConsumed:
			yield(nil, ErrSessionConsumed)
			return
		}
		s.state = sessionConsumed
		s.runOnKernel(func() {
			if err := ctx.Err(); err != nil {
				s.err = err
				yield(nil, err)
				return
			}
			s.startAt = s.rt.Now()
			s.endAt = s.startAt
			if err := s.ld.Start(ctx); err != nil {
				s.err = err
				yield(nil, err)
				return
			}
			defer s.teardown()

			// Loaders shard delivery across per-GPU consumer queues;
			// drain them round-robin until each reports end-of-data.
			n := len(s.env.GPUs)
			done := make([]bool, n)
			remaining := n
			var prev *Batch
			var prevGen uint32
			for g := 0; remaining > 0; g = (g + 1) % n {
				if done[g] {
					continue
				}
				b, err := s.ld.Next(ctx, g)
				if errors.Is(err, io.EOF) {
					done[g] = true
					remaining--
					continue
				}
				if err != nil {
					s.err = err
					yield(nil, err)
					return
				}
				s.batches++
				s.samples += int64(b.Size())
				s.bytes += b.Bytes()
				s.endAt = s.rt.Now()
				// The previously yielded batch is out of its validity window
				// once the loop asks for the next one: recycle it — unless
				// the loop body already released it itself (the generation
				// guard leaves a batch we no longer own alone).
				if prev != nil && !s.retain {
					prev.ReleaseIfOwned(prevGen)
				}
				prev, prevGen = b, b.Generation()
				if !yield(b, nil) {
					return
				}
			}
		})
	}
}

// runOnKernel executes fn as a tracked task of a virtual runtime (whose
// time only advances while tracked tasks are parked), or inline on a real
// one.
func (s *Session) runOnKernel(fn func()) {
	if v, ok := s.rt.(*simtime.Virtual); ok {
		v.Run(fn)
		return
	}
	fn()
}

// teardown stops the loader and waits for its background tasks. Called
// from inside the kernel task driving Batches.
func (s *Session) teardown() {
	s.ld.Stop()
	_ = s.env.WG.Wait(context.Background())
}

// Loader exposes the underlying loader for diagnostics; MinatoLoader
// embedders can assert it to *minato.Loader for Timeout, Workers, etc.
func (s *Session) Loader() DataLoader { return s.ld }

// Runtime returns the runtime the session runs on.
func (s *Session) Runtime() Runtime { return s.rt }

// Close finalizes the session and returns its Report: batches, samples,
// and bytes delivered, delivery time (TrainTime), and storage statistics.
// The returned error is the first error the batch stream hit, if any.
// Close is idempotent; loader teardown already happened when the Batches
// loop ended, so Close only waits (briefly) for a session-owned virtual
// kernel to confirm every task has fully exited.
func (s *Session) Close() (*Report, error) {
	first := s.state != sessionClosed
	s.state = sessionClosed
	if v, ok := s.rt.(*simtime.Virtual); ok && s.ownsRT {
		v.Drain()
	}
	rep := &Report{
		Workload:     s.spec.Dataset.Name(),
		Loader:       s.name,
		GPUs:         len(s.env.GPUs),
		TrainTime:    s.endAt - s.startAt,
		Batches:      s.batches,
		Samples:      s.samples,
		TrainedBytes: s.bytes,
	}
	if s.disk != nil {
		rep.DiskBytes = s.disk.BytesRead()
	}
	if s.cache != nil {
		rep.CacheStats = s.cache.Stats()
		if first {
			s.cache.Recycle()
		}
	}
	return rep, s.err
}

// Train runs a full training session — loader plus simulated GPU
// consumers — for a registered workload, resolving both the workload and
// the loader through the registries:
//
//	rep, err := minato.Train("speech-3s",
//	    minato.WithLoader("pytorch"),
//	    minato.WithHardware(minato.ConfigA()),
//	    minato.WithIterations(200),
//	)
//
// Defaults: the MinatoLoader backend, the ConfigA testbed, the workload's
// Table 3 budgets, and seed 1.
func Train(workloadName string, opts ...Option) (*Report, error) {
	o := buildOptions(opts)
	w, ok := workload.ByName(workloadName, o.seed)
	if !ok {
		return nil, fmt.Errorf("minato: unknown workload %q (registered: %s)",
			workloadName, strings.Join(workload.Names(), ", "))
	}
	return trainOpts(w, o)
}

// TrainWorkload is Train for a workload value built directly (custom or
// parameterized workloads that are not registered by name).
func TrainWorkload(w Workload, opts ...Option) (*Report, error) {
	return trainOpts(w, buildOptions(opts))
}

func trainOpts(w Workload, o *sessionOptions) (*Report, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.env != nil {
		return nil, errors.New("minato: WithEnv applies to Open; training sessions use WithHardware")
	}
	if o.rt != nil {
		return nil, errors.New("minato: training sessions own their runtime; WithRuntime applies to Open")
	}
	if o.pipeline != nil {
		return nil, errors.New("minato: workloads carry their own pipeline; WithPipeline applies to Open")
	}
	if o.retain {
		return nil, errors.New("minato: training consumers own and recycle their batches; WithRetainBatches applies to Open")
	}
	f, err := o.resolveFactory()
	if err != nil {
		return nil, err
	}
	if o.batchSize > 0 {
		w.BatchSize = o.batchSize
	}
	if o.epochs > 0 {
		w = w.WithEpochs(o.epochs)
	}
	if o.iterations > 0 {
		w = w.WithIterations(o.iterations)
	}
	// Same guard as Open: with drop-last semantics a batch larger than the
	// dataset yields zero batches per epoch, which would spin the index
	// source forever instead of terminating.
	if w.Spec().BatchesPerEpoch() == 0 {
		return nil, fmt.Errorf("minato: batch size %d exceeds dataset %q size %d",
			w.BatchSize, w.Dataset.Name(), w.Dataset.Len())
	}
	hw := hardware.ConfigA()
	if o.hw != nil {
		hw = *o.hw
	}
	if o.gpus > 0 {
		hw = hw.WithGPUs(o.gpus)
	}
	return trainer.Simulate(hw, w, f, o.params)
}
