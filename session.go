package minato

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"strings"
	"sync/atomic"
	"time"

	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/trace"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

// sessionOptions accumulates the functional options of Open, Train,
// TrainWorkload, Cluster.Open, and Cluster.Train. Fields left at their zero
// value take the documented defaults.
type sessionOptions struct {
	pipeline    *Pipeline
	batchSize   int
	loaderName  string
	factory     *Factory
	loaderCfg   *Config
	hw          *HardwareConfig
	env         *EnvConfig
	gpus        int
	rt          Runtime
	iterations  int
	epochs      int
	seed        uint64
	params      Params
	retain      bool
	weight      float64
	prioritySet bool
	seedSet     bool
	topo        *Topology
	matBytes    int64
	chaos       *ChaosScript
	chaosName   string
	trace       *trace.Recorder
	// skip fast-forwards a session past its first batches — set only by
	// Resume, never by a public option.
	skip int
}

// Option configures a session: Open and Cluster.Open, or a training run
// (Train, TrainWorkload, Cluster.Train). Options that size hardware
// (WithHardware, WithEnv, WithGPUs, WithRuntime) are SharedOptions — on a
// standalone Open/Train they configure the implicit cluster; on an explicit
// Cluster they belong to NewCluster instead.
type Option interface{ applySession(*sessionOptions) }

// ClusterOption configures a Cluster (NewCluster): the shared testbed, the
// session capacity, and the admission policy.
type ClusterOption interface{ applyCluster(*clusterOptions) }

// SharedOption is accepted by both NewCluster and the standalone
// Open/Train entry points.
type SharedOption interface {
	Option
	ClusterOption
}

type sessionOption func(*sessionOptions)

func (f sessionOption) applySession(o *sessionOptions) { f(o) }

type clusterOption func(*clusterOptions)

func (f clusterOption) applyCluster(o *clusterOptions) { f(o) }

type sharedOption struct {
	session func(*sessionOptions)
	cluster func(*clusterOptions)
}

func (o sharedOption) applySession(s *sessionOptions) { o.session(s) }
func (o sharedOption) applyCluster(c *clusterOptions) { o.cluster(c) }

// WithPipeline sets the preprocessing pipeline samples flow through.
// Open-only (training workloads carry their own pipeline); the default is
// an empty pipeline that delivers samples unchanged.
func WithPipeline(p *Pipeline) Option {
	return sessionOption(func(o *sessionOptions) { o.pipeline = p })
}

// WithBatchSize sets how many samples each delivered batch holds. Open
// defaults to 32; Train defaults to the workload's Table 3 value.
func WithBatchSize(n int) StreamOption {
	return streamOption{
		session: func(o *sessionOptions) { o.batchSize = n },
		dial:    func(o *dialOptions) { o.batchSize = n },
	}
}

// WithLoader selects the data loader backend by registered name
// (RegisterLoader; "pytorch", "pecan", "dali", and "minato" are built in).
// The default is "minato".
func WithLoader(name string) Option {
	return sessionOption(func(o *sessionOptions) { o.loaderName = name })
}

// WithLoaderFactory bypasses the registry and uses the given factory
// directly — for one-off configurations not worth registering.
func WithLoaderFactory(f Factory) Option {
	return sessionOption(func(o *sessionOptions) { o.factory = &f })
}

// WithLoaderConfig runs MinatoLoader with a custom Config instead of the
// paper's defaults. It conflicts with selecting a non-minato loader.
func WithLoaderConfig(cfg Config) Option {
	return sessionOption(func(o *sessionOptions) { o.loaderCfg = &cfg })
}

// WithHardware runs on one of the simulated testbeds (ConfigA, ConfigB, or
// a custom HardwareConfig). As a NewCluster option it sizes the shared
// testbed; on a standalone Open/Train it sizes the implicit cluster.
// Sessions opened on an explicit Cluster cannot carry it — the hardware is
// cluster-owned.
func WithHardware(cfg HardwareConfig) SharedOption {
	return sharedOption{
		session: func(o *sessionOptions) { o.hw = &cfg },
		cluster: func(o *clusterOptions) { o.hw = &cfg },
	}
}

// WithEnv sizes a custom embedder environment (cores, disk, cache) instead
// of a paper testbed. It conflicts with WithHardware and, like it, belongs
// to the cluster level.
func WithEnv(cfg EnvConfig) SharedOption {
	return sharedOption{
		session: func(o *sessionOptions) { o.env = &cfg },
		cluster: func(o *clusterOptions) { o.env = &cfg },
	}
}

// WithGPUs overrides the GPU (consumer) count. As a NewCluster option it
// sizes the shared testbed; on a session opened on an explicit Cluster it
// selects how many of the cluster's GPUs the session's delivery shards
// across (at most the cluster's count).
func WithGPUs(n int) SharedOption {
	return sharedOption{
		session: func(o *sessionOptions) { o.gpus = n },
		cluster: func(o *clusterOptions) { o.gpus = n },
	}
}

// WithRuntime runs on an existing runtime — e.g. NewRealRuntime to stream
// against the wall clock, or a shared virtual kernel. Cluster-level; the
// default is a fresh deterministic virtual runtime per cluster.
func WithRuntime(rt Runtime) SharedOption {
	return sharedOption{
		session: func(o *sessionOptions) { o.rt = rt },
		cluster: func(o *clusterOptions) { o.rt = rt },
	}
}

// WithMaterializedCache enables the materialized preprocessed-sample cache
// with the given byte capacity: epoch 1 materializes every preprocessed
// sample, epoch 2+ — and co-tenant sessions of the same cluster — hit the
// cache and skip preprocessing entirely ("warm epochs"; see DESIGN.md's
// cache hierarchy). The capacity is carved out of the page cache's, so the
// machine's total simulated memory stays constant; asking for more than the
// page cache holds is a *ConfigError. Entries are keyed by (sample key,
// pipeline signature) and evicted cost-aware — least preprocessing-seconds
// saved per byte first. The cache serves the MinatoLoader backend; baseline
// loaders ignore it.
//
// Like the other substrate options it is cluster-owned: pass it to
// NewCluster (or a standalone Open/Train, which configures the implicit
// cluster); sessions of an explicit cluster cannot carry it.
func WithMaterializedCache(bytes int64) SharedOption {
	return sharedOption{
		session: func(o *sessionOptions) { o.matBytes = bytes },
		cluster: func(o *clusterOptions) { o.matBytes = bytes },
	}
}

// WithIterations bounds the session to n delivered batches, wrapping
// epochs as needed. It takes precedence over WithEpochs.
func WithIterations(n int) StreamOption {
	return streamOption{
		session: func(o *sessionOptions) { o.iterations = n },
		dial:    func(o *dialOptions) { o.iterations = n },
	}
}

// WithEpochs bounds the session to n full passes over the dataset
// (drop-last semantics). The default budget is one epoch.
func WithEpochs(n int) StreamOption {
	return streamOption{
		session: func(o *sessionOptions) { o.epochs = n },
		dial:    func(o *dialOptions) { o.epochs = n },
	}
}

// WithSeed keys every random draw of the session (shuffling, synthetic
// sample properties). Identical seeds reproduce runs exactly. Default 1.
func WithSeed(seed uint64) StreamOption {
	return streamOption{
		session: func(o *sessionOptions) { o.seed = seed; o.seedSet = true },
		dial:    func(o *dialOptions) { o.seed = seed },
	}
}

// WithParams tunes what a training run records (time series, batch
// composition, per-sample traces). Train/TrainWorkload only.
func WithParams(p Params) Option {
	return sessionOption(func(o *sessionOptions) { o.params = p })
}

// WithRetainBatches disables the session's batch recycling: every batch
// yielded by Batches stays valid indefinitely, at the cost of allocating
// fresh samples for every draw. Without it, a yielded batch (and the
// samples inside it) is recycled when the loop takes the next step, so
// callers that keep references across iterations must either copy what
// they need or set this option. Open and Dial.
func WithRetainBatches() StreamOption {
	return streamOption{
		session: func(o *sessionOptions) { o.retain = true },
		dial:    func(o *dialOptions) { o.retain = true },
	}
}

// WithPriority weights the session in the cluster's fair arbitration of
// preprocessing workers: a weight-2 tenant receives twice the worker quota
// of a weight-1 tenant (always at least one worker). The default weight is
// 1. Weights must be positive.
func WithPriority(weight float64) Option {
	return sessionOption(func(o *sessionOptions) { o.weight = weight; o.prioritySet = true })
}

func buildOptions(opts []Option) *sessionOptions {
	o := &sessionOptions{seed: 1, weight: 1}
	for _, opt := range opts {
		opt.applySession(o)
	}
	return o
}

// validate checks option values and conflicts. Every failure is a
// *ConfigError so callers can errors.As on misuse.
func (o *sessionOptions) validate() error {
	if o.batchSize < 0 {
		return configErr("WithBatchSize", fmt.Sprintf("batch size %d < 0", o.batchSize))
	}
	if o.iterations < 0 {
		return configErr("WithIterations", fmt.Sprintf("iteration budget %d < 0", o.iterations))
	}
	if o.epochs < 0 {
		return configErr("WithEpochs", fmt.Sprintf("epoch budget %d < 0", o.epochs))
	}
	if o.gpus < 0 {
		return configErr("WithGPUs", fmt.Sprintf("GPU count %d < 0", o.gpus))
	}
	if o.prioritySet && o.weight <= 0 {
		return configErr("WithPriority", fmt.Sprintf("weight %g must be positive", o.weight))
	}
	if o.matBytes < 0 {
		return configErr("WithMaterializedCache", fmt.Sprintf("capacity %d < 0", o.matBytes))
	}
	if o.hw != nil && o.env != nil {
		return configErr("WithHardware/WithEnv", "mutually exclusive")
	}
	if o.factory != nil && o.loaderName != "" {
		return configErr("WithLoader/WithLoaderFactory", "mutually exclusive")
	}
	if o.loaderCfg != nil && o.loaderName != "" && o.loaderName != "minato" {
		return configErr("WithLoaderConfig",
			fmt.Sprintf("WithLoaderConfig configures the minato loader, but %q is selected", o.loaderName))
	}
	if o.loaderCfg != nil && o.factory != nil {
		return configErr("WithLoaderConfig/WithLoaderFactory", "mutually exclusive")
	}
	return nil
}

// rejectClusterOwned refuses the hardware-shaping options on sessions of an
// explicit cluster, where the substrate is cluster-owned.
func (o *sessionOptions) rejectClusterOwned() error {
	switch {
	case o.hw != nil:
		return configErr("WithHardware", "cluster-owned: size the testbed on NewCluster")
	case o.env != nil:
		return configErr("WithEnv", "cluster-owned: size the environment on NewCluster")
	case o.rt != nil:
		return configErr("WithRuntime", "cluster-owned: the runtime belongs to NewCluster")
	case o.matBytes != 0:
		return configErr("WithMaterializedCache", "cluster-owned: enable the cache on NewCluster")
	case o.trace != nil:
		return configErr("WithTracing", "cluster-owned: attach the sink on NewCluster")
	}
	return o.rejectTopology()
}

// rejectTopology refuses the multi-node options on single-machine entry
// points.
func (o *sessionOptions) rejectTopology() error {
	if o.topo != nil {
		return configErr("WithNodes/WithTopology", "multi-node clusters train through TrainMultiNode")
	}
	return nil
}

// resolveFactory picks the loader factory: an explicit factory first, then
// a custom-configured MinatoLoader, then the registry by name, defaulting
// to "minato".
func (o *sessionOptions) resolveFactory() (Factory, error) {
	if o.factory != nil {
		return *o.factory, nil
	}
	name := o.loaderName
	if name == "" {
		name = "minato"
	}
	if o.loaderCfg != nil {
		return loaders.Minato(*o.loaderCfg), nil
	}
	f, ok := loaders.ByName(name)
	if !ok {
		return Factory{}, configErr("WithLoader", fmt.Sprintf("unknown loader %q (registered: %s)",
			name, strings.Join(loaders.Names(), ", ")))
	}
	return f, nil
}

const (
	sessionNew int32 = iota
	sessionConsumed
	sessionClosed
)

// Session is one data-loading run: a dataset flowing through a
// preprocessing pipeline into batches, delivered by a pluggable loader
// backend over a simulated (or real) runtime.
//
// Lifecycle: Open (or Cluster.Open) configures and wires the session,
// Batches streams the configured batch budget exactly once, Close tears
// down and returns the session's Report. The Batches iterator itself is
// single-consumer, but sessions are safe to run concurrently with sibling
// sessions of the same Cluster: cross-session state — the page cache, the
// sample pool, the worker arbitration — lives behind the cluster. Stats may
// be called from any goroutine while the session streams.
type Session struct {
	cl          *Cluster
	ownsCluster bool
	tenantID    int
	cacheTenant int
	share       *clusterShare
	gpuIdxs     []int
	weight      float64

	rt      Runtime
	env     *Env
	ld      DataLoader
	name    string
	spec    Spec
	factory Factory
	retain  bool
	script  ChaosScript
	// cst replays the session's chaos script against the Batches stream
	// and keeps the SLO bookkeeping (step-interval histogram, fault
	// windows); created when the stream starts.
	cst *trainer.ChaosState
	// resumedAt marks a session created by Resume; recoveredIn is the time
	// from the resume to its first delivered batch.
	resumedAt   time.Duration
	recoveredIn time.Duration

	state    atomic.Int32
	released atomic.Bool
	err      error
	startAt  atomic.Int64 // time.Duration
	endAt    atomic.Int64 // time.Duration
	batches  atomic.Int64
	samples  atomic.Int64
	bytes    atomic.Int64
	// final snapshots the session's storage attribution at first Close,
	// before its cache-tenant slot is released (and possibly reused by a
	// later session) — Stats and repeat Closes read the snapshot instead
	// of a slot that no longer belongs to this session.
	final atomic.Pointer[sessionFinal]
}

// sessionFinal is the storage attribution frozen at first Close.
type sessionFinal struct {
	cache CacheStats
	mat   MatCacheStats
	disk  int64
}

// Open starts a standalone data-loading session over dataset, configured by
// functional options:
//
//	sess, err := minato.Open(dataset,
//	    minato.WithPipeline(pipeline),
//	    minato.WithBatchSize(64),
//	    minato.WithLoader("minato"),
//	    minato.WithIterations(1000),
//	)
//
// Defaults: the MinatoLoader backend, batch size 32, a one-epoch budget,
// seed 1, an 8-core single-GPU environment (see EnvConfig), and a fresh
// deterministic virtual runtime. The loader's background tasks launch on
// the first Batches call, so an Open session costs nothing until consumed.
//
// Open is a thin wrapper over an implicit single-session Cluster: the
// hardware-shaping options configure that cluster, and closing the session
// closes it. To run many concurrent sessions against one machine, build
// the Cluster explicitly with NewCluster and use Cluster.Open.
func Open(dataset Dataset, opts ...Option) (*Session, error) {
	o := buildOptions(opts)
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := o.rejectTopology(); err != nil {
		return nil, err
	}
	cl, err := newCluster(&clusterOptions{hw: o.hw, env: o.env, gpus: o.gpus, rt: o.rt,
		matBytes: o.matBytes, trace: o.trace})
	if err != nil {
		return nil, err
	}
	o.hw, o.env, o.rt, o.gpus, o.matBytes, o.trace = nil, nil, nil, 0, 0, nil
	sess, err := cl.open(dataset, o, true)
	if err != nil {
		_ = cl.Close()
		return nil, err
	}
	return sess, nil
}

// Batches returns a single-use iterator over the session's batches:
//
//	for batch, err := range sess.Batches(ctx) {
//	    if err != nil { ... }
//	    // consume batch
//	}
//
// The iterator starts the loader on first use, yields exactly the
// configured budget (iterations, or epochs × batches-per-epoch), and then
// ends — the io.EOF that loaders use internally is absorbed into normal
// loop termination. Breaking out early stops the loader and abandons
// pending work; a ctx cancellation is yielded once as the error and ends
// the stream. In every case the loader's background tasks are fully torn
// down before the loop statement completes, so Close never blocks.
//
// Batch lifetime: the yielded batch and its samples are owned by the loop
// body only until it takes the next iteration step — at that point the
// session recycles them for upcoming draws (the zero-allocation steady
// state). Copy anything that must outlive the step, or open the session
// with WithRetainBatches to keep every batch alive. The final batch (and a
// batch the loop breaks on) is never recycled.
func (s *Session) Batches(ctx context.Context) iter.Seq2[*Batch, error] {
	return func(yield func(*Batch, error) bool) {
		switch {
		case s.state.Load() == sessionClosed:
			yield(nil, ErrSessionClosed)
			return
		case s.cl.isClosed():
			yield(nil, ErrClusterClosed)
			return
		case !s.state.CompareAndSwap(sessionNew, sessionConsumed):
			yield(nil, ErrSessionConsumed)
			return
		}
		s.runOnKernel(func() {
			if err := ctx.Err(); err != nil {
				s.err = err
				yield(nil, err)
				return
			}
			now := int64(s.rt.Now())
			s.startAt.Store(now)
			s.endAt.Store(now)
			if err := s.ld.Start(ctx); err != nil {
				s.err = err
				yield(nil, err)
				return
			}
			s.cst = trainer.StartChaos(s.rt, s.env, s.cl.disk, s.env.WG, s.script, len(s.env.GPUs))
			defer s.teardown()

			// Loaders shard delivery across per-GPU consumer queues;
			// drain them round-robin until each reports end-of-data.
			n := len(s.env.GPUs)
			done := make([]bool, n)
			remaining := n
			var prev *Batch
			var prevGen uint32
			for g := 0; remaining > 0; g = (g + 1) % n {
				if done[g] {
					continue
				}
				// Preemption gate: park here while a chaos script holds the
				// session paused; a terminal preemption ends the stream with
				// ErrPreempted (checkpoint and Resume to continue warm).
				if err := s.cst.Gate(ctx); err != nil {
					s.err = err
					yield(nil, err)
					return
				}
				b, err := s.ld.Next(ctx, g)
				if errors.Is(err, io.EOF) {
					done[g] = true
					remaining--
					continue
				}
				if err != nil {
					s.err = err
					yield(nil, err)
					return
				}
				s.batches.Add(1)
				s.samples.Add(int64(b.Size()))
				s.bytes.Add(b.Bytes())
				now := s.rt.Now()
				s.endAt.Store(int64(now))
				s.cst.NoteStep(g, now)
				if s.resumedAt > 0 && s.recoveredIn == 0 {
					// First batch of a checkpoint-restored session: the
					// measured recovery time of the resume.
					s.recoveredIn = now - s.resumedAt
				}
				// The previously yielded batch is out of its validity window
				// once the loop asks for the next one: recycle it — unless
				// the loop body already released it itself (the generation
				// guard leaves a batch we no longer own alone).
				if prev != nil && !s.retain {
					prev.ReleaseIfOwned(prevGen)
				}
				prev, prevGen = b, b.Generation()
				if !yield(b, nil) {
					return
				}
			}
		})
	}
}

// runOnKernel executes fn as a tracked task of a virtual runtime (whose
// time only advances while tracked tasks are parked), or inline on a real
// one.
func (s *Session) runOnKernel(fn func()) {
	if v, ok := s.rt.(*simtime.Virtual); ok {
		v.Run(fn)
		return
	}
	fn()
}

// teardown stops the chaos replay and the loader, then waits for the
// session's background tasks. Called from inside the kernel task driving
// Batches.
func (s *Session) teardown() {
	s.cst.Stop()
	s.ld.Stop()
	_ = s.env.WG.Wait(context.Background())
}

// Loader exposes the underlying loader for diagnostics; MinatoLoader
// embedders can assert it to *minato.Loader for Timeout, Workers, etc.
func (s *Session) Loader() DataLoader { return s.ld }

// Runtime returns the runtime the session runs on.
func (s *Session) Runtime() Runtime { return s.rt }

// Cluster returns the cluster hosting the session (the implicit one for
// standalone Open).
func (s *Session) Cluster() *Cluster { return s.cl }

// Stats returns a live snapshot of the session: delivered batches, samples
// and bytes so far, its tenancy (priority weight, current worker quota),
// and its attributable slice of the shared page cache. Safe to call from
// any goroutine while the session streams.
func (s *Session) Stats() SessionStats {
	st := SessionStats{
		Tenant:   s.tenantID,
		Dataset:  s.spec.Dataset.Name(),
		Loader:   s.name,
		Priority: s.weight,
		State:    sessionStateString(s.state.Load()),
		Batches:  s.batches.Load(),
		Samples:  s.samples.Load(),
		Bytes:    s.bytes.Load(),
	}
	if s.share != nil {
		st.WorkerQuota = s.share.WorkerQuota()
	}
	if fin := s.final.Load(); fin != nil {
		st.Cache = fin.cache
		st.MatCache = fin.mat
	} else {
		if s.cl.cache != nil {
			st.Cache = s.cl.cache.TenantStats(s.cacheTenant)
		}
		if s.cl.mat != nil {
			st.MatCache = s.cl.mat.TenantStats(s.cacheTenant)
		}
	}
	return st
}

func sessionStateString(st int32) string {
	switch st {
	case sessionNew:
		return "open"
	case sessionConsumed:
		return "streaming"
	default:
		return "closed"
	}
}

// Close finalizes the session and returns its Report: batches, samples,
// and bytes delivered, delivery time (TrainTime), and storage statistics —
// cache hits and disk bytes attributed to this session's own traffic when
// the substrate is shared, not the cluster-wide totals. The
// returned error is the first error the batch stream hit, if any. Close is
// idempotent; loader teardown already happened when the Batches loop
// ended. Closing releases the session's slot (admitting a queued sibling,
// rebalancing worker quotas); cache reclamation is cluster-owned and
// happens when the cluster itself closes, never here, so sibling sessions
// sharing the cache are undisturbed.
func (s *Session) Close() (*Report, error) {
	s.state.Store(sessionClosed)
	rep := &Report{
		Workload:     s.spec.Dataset.Name(),
		Loader:       s.name,
		GPUs:         len(s.env.GPUs),
		TrainTime:    time.Duration(s.endAt.Load() - s.startAt.Load()),
		Batches:      s.batches.Load(),
		Samples:      s.samples.Load(),
		TrainedBytes: s.bytes.Load(),
	}
	if s.released.CompareAndSwap(false, true) {
		// Freeze storage attribution before releasing the tenancy: the
		// cache-tenant slot may be reused by a later session.
		fin := &sessionFinal{}
		if s.cl.cache != nil {
			fin.cache = s.cl.cache.TenantStats(s.cacheTenant)
			fin.disk = s.cl.cache.TenantDiskBytes(s.cacheTenant)
		} else if s.cl.disk != nil {
			fin.disk = s.cl.disk.BytesRead()
		}
		if s.cl.mat != nil {
			fin.mat = s.cl.mat.TenantStats(s.cacheTenant)
		}
		s.final.Store(fin)
		s.cl.releaseSession(s)
	}
	if fin := s.final.Load(); fin != nil {
		rep.CacheStats = fin.cache
		rep.MatCacheStats = fin.mat
		rep.DiskBytes = fin.disk
	}
	if s.cst != nil {
		// The chaos bookkeeping doubles as the SLO view: step-interval
		// quantiles, preemption stall, and per-fault windows.
		s.cst.Finish(rep)
	}
	if s.resumedAt > 0 {
		// A checkpoint-restored session records its own recovery as a
		// resume fault window, so RecoveryTime() covers restores too.
		rep.Faults = append(rep.Faults, FaultStat{
			Event:     ChaosEvent{At: s.resumedAt, Kind: ChaosResume},
			AppliedAt: s.resumedAt,
			Recovery:  s.recoveredIn,
		})
	}
	if s.ownsCluster {
		_ = s.cl.Close()
	}
	return rep, s.err
}

// Train runs a full training session — loader plus simulated GPU
// consumers — for a registered workload, resolving both the workload and
// the loader through the registries:
//
//	rep, err := minato.Train("speech-3s",
//	    minato.WithLoader("pytorch"),
//	    minato.WithHardware(minato.ConfigA()),
//	    minato.WithIterations(200),
//	)
//
// Defaults: the MinatoLoader backend, the ConfigA testbed, the workload's
// Table 3 budgets, and seed 1. Like Open, Train is a thin wrapper over an
// implicit single-session cluster; co-running training jobs share one
// machine through NewCluster and Cluster.Train.
func Train(workloadName string, opts ...Option) (*Report, error) {
	o := buildOptions(opts)
	w, ok := workload.ByName(workloadName, o.seed)
	if !ok {
		return nil, configErr("Train", fmt.Sprintf("unknown workload %q (registered: %s)",
			workloadName, strings.Join(workload.Names(), ", ")))
	}
	return trainOpts(w, o)
}

// TrainWorkload is Train for a workload value built directly (custom or
// parameterized workloads that are not registered by name).
func TrainWorkload(w Workload, opts ...Option) (*Report, error) {
	return trainOpts(w, buildOptions(opts))
}

func trainOpts(w Workload, o *sessionOptions) (*Report, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := o.rejectTopology(); err != nil {
		return nil, err
	}
	if o.env != nil {
		return nil, configErr("WithEnv", "applies to Open; training sessions use WithHardware")
	}
	if o.rt != nil {
		return nil, configErr("WithRuntime", "training sessions own their runtime; WithRuntime applies to Open")
	}
	hw := ConfigA()
	if o.hw != nil {
		hw = *o.hw
	}
	cl, err := newCluster(&clusterOptions{hw: &hw, gpus: o.gpus, matBytes: o.matBytes, trace: o.trace})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	o.hw, o.gpus, o.matBytes, o.trace = nil, 0, 0, nil
	return cl.train(w, o)
}
