package dist

import (
	"math"
	"testing"
)

func TestUniformDeterministicAndInRange(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		v := Uniform(1, 2, i)
		if v <= 0 || v >= 1 {
			t.Fatalf("Uniform(1,2,%d) = %v, want (0,1)", i, v)
		}
		if v != Uniform(1, 2, i) {
			t.Fatalf("Uniform not deterministic at i=%d", i)
		}
	}
	if Uniform(1, 2, 3) == Uniform(1, 2, 4) {
		t.Fatal("consecutive draws collide")
	}
	if Uniform(1, 2, 3) == Uniform(1, 3, 3) {
		t.Fatal("streams not independent")
	}
	if Uniform(1, 2, 3) == Uniform(2, 2, 3) {
		t.Fatal("seeds not independent")
	}
}

func TestUniformMean(t *testing.T) {
	const n = 100000
	sum := 0.0
	for i := uint64(0); i < n; i++ {
		sum += Uniform(7, 1, i)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ≈0.5", mean)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

func TestProbit(t *testing.T) {
	// Known quantiles of the standard normal.
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.84134474, 1.0},
		{0.999, 3.090232},
		{0.001, -3.090232},
	}
	for _, c := range cases {
		if got := Probit(c.p); math.Abs(got-c.z) > 1e-4 {
			t.Errorf("Probit(%v) = %v, want %v", c.p, got, c.z)
		}
	}
	if !math.IsInf(Probit(0), -1) || !math.IsInf(Probit(1), 1) {
		t.Error("Probit endpoints")
	}
	if !math.IsNaN(Probit(-0.1)) || !math.IsNaN(Probit(1.1)) || !math.IsNaN(Probit(math.NaN())) {
		t.Error("Probit out-of-domain")
	}
}

func TestNormalClamped(t *testing.T) {
	for i := uint64(0); i < 1000; i++ {
		v := NormalClamped(1, 1, i, 0.5, 0.2, 0.1, 0.9)
		if v < 0.1 || v > 0.9 {
			t.Fatalf("NormalClamped out of bounds: %v", v)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	const n = 20000
	below := 0
	for i := uint64(0); i < n; i++ {
		if LogNormalMedian(3, 1, i, 120, 0.4) < 120 {
			below++
		}
	}
	// The median parameterization puts half the mass below the median.
	if frac := float64(below) / n; math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("%.3f of draws below the median, want ≈0.5", frac)
	}
}

func TestPermutationIsPermutation(t *testing.T) {
	for _, n := range []int{0, 1, 2, 97, 3000} {
		p := Permutation(1, 1000, n)
		if len(p) != n {
			t.Fatalf("len = %d, want %d", len(p), n)
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("invalid permutation of %d: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermutationDeterministicAndKeyed(t *testing.T) {
	a := Permutation(1, 5, 100)
	b := Permutation(1, 5, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Permutation not deterministic")
		}
	}
	c := Permutation(1, 6, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different streams produced identical permutations")
	}
}

func TestPermutationShuffles(t *testing.T) {
	p := Permutation(1, 1, 1000)
	fixed := 0
	for i, v := range p {
		if i == v {
			fixed++
		}
	}
	// A uniform shuffle of 1000 elements has ≈1 fixed point on average.
	if fixed > 20 {
		t.Fatalf("%d fixed points: barely shuffled", fixed)
	}
}
