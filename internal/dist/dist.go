// Package dist provides deterministic, seed-keyed random distributions.
// Every draw is a pure function of (seed, stream, index): datasets and
// loaders can materialize per-sample properties on demand without storing
// them, identical seeds reproduce identical runs bit-for-bit, and draws
// from different streams are statistically independent.
//
// The underlying generator is a SplitMix64-style finalizer over the mixed
// key, which passes the avalanche requirements these distributions need
// without carrying generator state.
package dist

import (
	"fmt"
	"math"
	"sync"
)

// mix64 is the SplitMix64 finalizer: a bijective mixer with full avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const golden = 0x9e3779b97f4a7c15

// key mixes (seed, stream, i) into one well-distributed 64-bit value.
func key(seed, stream, i uint64) uint64 {
	h := mix64(seed + golden)
	h = mix64(h ^ (stream * 0xd6e8feb86659fd93))
	h = mix64(h ^ (i * golden))
	return h
}

// Uniform returns a deterministic draw in the open interval (0, 1) for
// (seed, stream, i). The interval excludes the endpoints so the value can
// feed Probit directly.
func Uniform(seed, stream, i uint64) float64 {
	return (float64(key(seed, stream, i)>>11) + 0.5) / (1 << 53)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Probit is the inverse standard normal CDF: Probit(p) = z such that
// Φ(z) = p, for p in (0, 1). It uses Acklam's rational approximation
// (relative error below 1.15e-9 over the full domain), which is more than
// enough for the synthetic cost models built on it.
func Probit(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}

	// Coefficients for the central and tail rational approximations.
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	const pLow, pHigh = 0.02425, 1 - 0.02425

	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Normal returns a deterministic standard normal draw scaled to
// (mean, stddev) for (seed, stream, i).
func Normal(seed, stream, i uint64, mean, stddev float64) float64 {
	return mean + stddev*Probit(Uniform(seed, stream, i))
}

// NormalClamped returns a normal draw clamped to [lo, hi].
func NormalClamped(seed, stream, i uint64, mean, stddev, lo, hi float64) float64 {
	return Clamp(Normal(seed, stream, i, mean, stddev), lo, hi)
}

// LogNormalMedian returns a deterministic lognormal draw parameterized by
// its median: median·e^(σ·z) with z standard normal. The median
// parameterization matches how dataset size distributions are calibrated.
func LogNormalMedian(seed, stream, i uint64, median, sigma float64) float64 {
	return median * math.Exp(sigma*Probit(Uniform(seed, stream, i)))
}

// Permutation returns a deterministic pseudo-random permutation of
// [0, n): the Fisher–Yates shuffle driven by per-step keyed draws, so the
// result depends only on (seed, stream, n).
func Permutation(seed, stream uint64, n int) []int {
	if n < 0 {
		panic(fmt.Sprintf("dist: Permutation length %d < 0", n))
	}
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	base := mix64(seed + stream*golden)
	for i := n - 1; i > 0; i-- {
		j := int(mix64(base^mix64(uint64(i))) % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// permCache memoizes Permutation results. Epoch permutations of large
// datasets are megabytes each and every loader of a comparison run asks for
// the same ones, so the sessions of a process share a small keyed cache
// instead of re-shuffling (and re-allocating) per session. Entries are
// evicted in insertion order beyond a fixed bound on retained ints.
var permCache = struct {
	sync.Mutex
	entries map[permKey][]int
	order   []permKey
	ints    int
}{entries: make(map[permKey][]int)}

type permKey struct {
	seed, stream uint64
	n            int
}

// permCacheMaxInts bounds the cache's retained memory (≈64 MB of ints).
const permCacheMaxInts = 8 << 20

// PermutationCached returns Permutation(seed, stream, n) from a process-wide
// memo. The returned slice is shared: callers must treat it as read-only.
func PermutationCached(seed, stream uint64, n int) []int {
	k := permKey{seed, stream, n}
	permCache.Lock()
	defer permCache.Unlock()
	if p, ok := permCache.entries[k]; ok {
		return p
	}
	p := Permutation(seed, stream, n)
	for permCache.ints+n > permCacheMaxInts && len(permCache.order) > 0 {
		old := permCache.order[0]
		permCache.order = permCache.order[1:]
		permCache.ints -= old.n
		delete(permCache.entries, old)
	}
	permCache.entries[k] = p
	permCache.order = append(permCache.order, k)
	permCache.ints += n
	return p
}
