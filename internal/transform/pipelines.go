// Concrete preprocessing pipelines for the paper's three workloads
// (Table 1), with cost models calibrated to the per-sample preprocessing
// statistics of Table 2. See DESIGN.md ("Calibration notes").
package transform

import (
	"math"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/dist"
)

// funcTransform implements Transform from closures.
type funcTransform struct {
	name    string
	cost    func(s *data.Sample) time.Duration
	size    func(s *data.Sample) float64
	barrier bool
}

func (t *funcTransform) Name() string { return t.name }
func (t *funcTransform) Cost(s *data.Sample) time.Duration {
	if t.cost == nil {
		return 0
	}
	return t.cost(s)
}
func (t *funcTransform) SizeFactor(s *data.Sample) float64 {
	if t.size == nil {
		return 1
	}
	return t.size(s)
}
func (t *funcTransform) Barrier() bool { return t.barrier }

// NewTransform builds a Transform from a name, cost function, and size
// function (nil means zero cost / size factor 1). It is the extension point
// for user-defined pipelines.
func NewTransform(name string, cost func(*data.Sample) time.Duration, size func(*data.Sample) float64) Transform {
	return &funcTransform{name: name, cost: cost, size: size}
}

// NewBarrier builds a zero-cost barrier transform that blocks reordering
// across it (Pecan §2.1).
func NewBarrier(name string) Transform {
	return &funcTransform{name: name, barrier: true}
}

func ms(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }

func mb(b int64) float64 { return float64(b) / (1 << 20) }

// ---------------------------------------------------------------------------
// Image segmentation (KiTS19 → 3D-UNet):
//   RandomCrop → RandomFlip → RandomBrightness → GaussianNoise → Cast
//
// Cost scales with the sample's current size (3D volumes), multiplied by a
// per-sample lognormal factor derived from the hidden complexity feature.
// This reproduces §3.2's finding that image size is a *good* predictor here.
// Calibration target (Table 2, ms): avg 500, med 470, P75 630, P90 750,
// min–max–std 10–2230–197.
// ---------------------------------------------------------------------------

// imgSegNoise converts the uniform complexity feature into a mean-one
// lognormal multiplier, clamped so extremes match Table 2's min/max. A
// small fraction of samples draw a near-trivial crop (randomized
// augmentation skipped), producing the paper's 10 ms minimum.
func imgSegNoise(s *data.Sample) float64 {
	if s.Features.AugmentDraw < 0.03 {
		return 0.025
	}
	z := dist.Probit(dist.Clamp(s.Features.Complexity, 1e-9, 1-1e-9))
	return dist.Clamp(math.Exp(0.30*z-0.045), 0.30, 1.70)
}

func imgSegCost(perMB float64) func(*data.Sample) time.Duration {
	return func(s *data.Sample) time.Duration {
		return ms(perMB * mb(s.Bytes) * imgSegNoise(s))
	}
}

// ImageSegmentationPipeline returns the 3D-UNet preprocessing pipeline.
func ImageSegmentationPipeline() *Pipeline {
	const processedBytes = 10 << 20 // all samples standardized to 10 MB (§2.2)
	return NewPipeline("image-segmentation",
		&funcTransform{name: "RandomCrop", cost: imgSegCost(2.72),
			size: func(*data.Sample) float64 { return 0.35 }},
		&funcTransform{name: "RandomFlip", cost: imgSegCost(0.55)},
		&funcTransform{name: "RandomBrightness", cost: imgSegCost(1.30)},
		&funcTransform{name: "GaussianNoise", cost: imgSegCost(1.55)},
		// Cast standardizes dtype and size; a dtype change is a natural
		// reorder barrier, which also keeps this pipeline fixed under
		// AutoOrder (§5.1: img-seg is already optimally ordered).
		&funcTransform{name: "Cast", cost: imgSegCost(0.33), barrier: true,
			size: func(s *data.Sample) float64 { return processedBytes / float64(s.Bytes) }},
	)
}

// ---------------------------------------------------------------------------
// Object detection (COCO → Mask R-CNN):
//   Resize → RandomHorizontalFlip → ToTensor → Normalize
//
// Total cost is a three-tier mixture *independent of sample size* — §3.2
// shows a 408 KB image can preprocess in 13 ms while a 220 KB one takes
// 155 ms. Calibration target (Table 2, ms): avg 31, med 28, P75 30, P90 35,
// min–max–std 11–176–19.
// ---------------------------------------------------------------------------

// objDetTotal returns the sample's total pipeline cost in ms.
func objDetTotal(s *data.Sample) float64 {
	u := s.Features.AugmentDraw
	c := s.Features.Complexity
	switch {
	case u < 0.90: // common case: tight normal around the median
		z := dist.Probit(dist.Clamp(c, 1e-9, 1-1e-9))
		return dist.Clamp(27.5+3.0*z, 11, 34)
	case u < 0.98: // randomized augmentations triggered on a subset (§3.1)
		return 35 + 45*c
	default: // rare heavy tail
		return 80 + 96*c
	}
}

func objDetCost(share, perMB float64) func(*data.Sample) time.Duration {
	return func(s *data.Sample) time.Duration {
		return ms(share*objDetTotal(s) + perMB*mb(s.Bytes))
	}
}

// ObjectDetectionPipeline returns the Mask R-CNN preprocessing pipeline.
func ObjectDetectionPipeline() *Pipeline {
	return NewPipeline("object-detection",
		// Resize standardizes resolution: deflationary for large inputs,
		// inflationary for small ones — exactly the dynamic case Pecan's
		// AutoOrder handles per sample (§5.1).
		&funcTransform{name: "Resize", cost: objDetCost(0.45, 0),
			size: func(s *data.Sample) float64 {
				return dist.Clamp(0.62/mb(s.Bytes), 0.5, 2.0)
			}},
		&funcTransform{name: "RandomHorizontalFlip", cost: objDetCost(0.08, 0)},
		// ToTensor and Normalize have a small size-dependent component, so
		// transformation reordering has the paper's observed "limited"
		// (~3%) effect rather than none.
		&funcTransform{name: "ToTensor", cost: objDetCost(0.22, 0.4),
			size: func(*data.Sample) float64 { return 11 }},
		&funcTransform{name: "Normalize", cost: objDetCost(0.25, 0.3)},
	)
}

// ---------------------------------------------------------------------------
// Speech recognition (LibriSpeech → RNN-T):
//   Pad → SpecAugment → FilterBank → FrameSplicing → PermuteAudio →
//   LightStep (0.5s) → HeavyStep (3s | 10s, heavy samples only)
//
// Base transforms are a few ms; LightStep is 0.5 s for every sample;
// HeavyStep applies only to heavy samples. Calibration (Table 2): a heavy
// Speech-3s sample totals ≈3.0 s and Speech-10s ≈10.0 s, so HeavyStep's own
// cost is the nominal duration minus LightStep (see DESIGN.md).
// ---------------------------------------------------------------------------

// LightStepDuration is the paper's lightweight-preprocessing simulation.
const LightStepDuration = 500 * time.Millisecond

// HeavyStepCost returns the HeavyStep transform cost such that a heavy
// sample's total pipeline time ≈ nominal (3 s or 10 s, Table 2).
func HeavyStepCost(nominal time.Duration) time.Duration {
	return nominal - LightStepDuration - 8*time.Millisecond
}

func speechJitter(s *data.Sample) float64 { return 0.7 + 0.6*s.Features.Complexity }

func speechBase(msCost float64) func(*data.Sample) time.Duration {
	return func(s *data.Sample) time.Duration { return ms(msCost * speechJitter(s)) }
}

// SpeechPipeline returns the RNN-T preprocessing pipeline with the given
// nominal HeavyStep duration (3 s for Speech-3s, 10 s for Speech-10s).
// Heavy samples are those with Features.Heavy set (the dataset decides:
// every 5th sample by default, or a configurable fraction for Fig 12).
func SpeechPipeline(heavyNominal time.Duration) *Pipeline {
	heavy := HeavyStepCost(heavyNominal)
	return NewPipeline("speech-recognition",
		&funcTransform{name: "Pad", cost: speechBase(1.5),
			size: func(*data.Sample) float64 { return 1.12 }},
		&funcTransform{name: "SpecAugment", cost: speechBase(1.5)},
		&funcTransform{name: "FilterBank", cost: speechBase(2.0),
			size: func(*data.Sample) float64 { return 12 }},
		&funcTransform{name: "FrameSplicing", cost: speechBase(1.5),
			size: func(*data.Sample) float64 { return 1.5 }},
		&funcTransform{name: "PermuteAudio", cost: speechBase(1.0)},
		&funcTransform{name: "LightStep", cost: func(*data.Sample) time.Duration { return LightStepDuration }},
		&funcTransform{name: "HeavyStep", cost: func(s *data.Sample) time.Duration {
			if s.Features.Heavy {
				return heavy
			}
			return 0
		}},
	)
}
