package transform

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/minatoloader/minato/internal/data"
)

// Property: for any pipeline and any budget, ApplyBudget followed by Apply
// performs at least the pipeline's nominal work, consumes exactly the
// budget on interruption, and leaves the sample fully processed; the
// overhead versus a straight Apply is bounded by one transform's cost (the
// re-executed partial, Algorithm 1).
func TestQuickBudgetResumeInvariants(t *testing.T) {
	f := func(costsRaw []uint8, budgetRaw uint16) bool {
		costs := costsRaw
		if len(costs) == 0 {
			costs = []uint8{10}
		}
		if len(costs) > 8 {
			costs = costs[:8]
		}
		ts := make([]Transform, len(costs))
		var nominal time.Duration
		for i, c := range costs {
			d := time.Duration(c%50+1) * time.Millisecond
			nominal += d
			ts[i] = constQuick(d)
		}
		p := NewPipeline("q", ts...)
		budget := time.Duration(budgetRaw%300) * time.Millisecond

		s := &data.Sample{Key: data.KeyOf("q", 0), RawBytes: 1 << 20, Bytes: 1 << 20}
		ex := &recordingExec{}
		err := p.ApplyBudget(context.Background(), ex, s, budget)
		switch {
		case err == nil:
			// Completed within budget: work == nominal, everything done.
			return ex.total == nominal && s.NextTransform == len(ts)
		case errors.Is(err, ErrInterrupted):
			if ex.total != budget {
				return false // must consume exactly the budget
			}
			idx := s.NextTransform
			if idx < 0 || idx >= len(ts) {
				return false
			}
			// Background completion.
			if err := p.Apply(context.Background(), ex, s); err != nil {
				return false
			}
			if s.NextTransform != len(ts) {
				return false
			}
			// Total work = nominal + wasted partial; waste < interrupted
			// transform's full cost ≤ max transform cost.
			waste := ex.total - nominal
			return waste >= 0 && waste <= 51*time.Millisecond
		default:
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: AutoOrder is a permutation and never moves a transform across
// a barrier.
func TestQuickAutoOrderPermutationAndBarriers(t *testing.T) {
	f := func(kinds []uint8) bool {
		if len(kinds) > 10 {
			kinds = kinds[:10]
		}
		ts := make([]Transform, len(kinds))
		for i, k := range kinds {
			switch k % 4 {
			case 0:
				ts[i] = NewTransform("defl", nil, func(*data.Sample) float64 { return 0.5 })
			case 1:
				ts[i] = NewTransform("neut", nil, nil)
			case 2:
				ts[i] = NewTransform("infl", nil, func(*data.Sample) float64 { return 2 })
			default:
				ts[i] = NewBarrier("barrier")
			}
		}
		s := &data.Sample{Bytes: 1 << 20, RawBytes: 1 << 20}
		got := AutoOrder(ts, s)
		if len(got) != len(ts) {
			return false
		}
		// Permutation: count by identity.
		seen := map[Transform]int{}
		for _, tr := range ts {
			seen[tr]++
		}
		for _, tr := range got {
			seen[tr]--
		}
		for _, c := range seen {
			if c != 0 {
				return false
			}
		}
		// Barriers keep their positions.
		for i := range ts {
			if ts[i].Barrier() != got[i].Barrier() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func constQuick(d time.Duration) Transform {
	return NewTransform("t", func(*data.Sample) time.Duration { return d }, nil)
}

type recordingExec struct{ total time.Duration }

func (r *recordingExec) Run(_ context.Context, w time.Duration) error {
	r.total += w
	return nil
}
