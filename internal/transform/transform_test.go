package transform

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/device"
	"github.com/minatoloader/minato/internal/simtime"
)

// fakeExec records work without a device.
type fakeExec struct{ total time.Duration }

func (f *fakeExec) Run(_ context.Context, w time.Duration) error {
	f.total += w
	return nil
}

func constTransform(name string, cost time.Duration, factor float64) Transform {
	return NewTransform(name,
		func(*data.Sample) time.Duration { return cost },
		func(*data.Sample) float64 { return factor })
}

func testSample(raw int64) *data.Sample {
	return &data.Sample{Index: 0, Key: data.KeyOf("t", 0), RawBytes: raw, Bytes: raw}
}

func TestApplyRunsAllTransformsAndUpdatesSize(t *testing.T) {
	p := NewPipeline("p",
		constTransform("a", 10*time.Millisecond, 0.5),
		constTransform("b", 20*time.Millisecond, 4),
	)
	s := testSample(100 << 20)
	ex := &fakeExec{}
	if err := p.Apply(context.Background(), ex, s); err != nil {
		t.Fatal(err)
	}
	if ex.total != 30*time.Millisecond {
		t.Errorf("work = %v, want 30ms", ex.total)
	}
	if s.Bytes != 200<<20 {
		t.Errorf("Bytes = %d, want 200MB", s.Bytes>>20)
	}
	if s.NextTransform != 2 || s.PreprocCost != 30*time.Millisecond {
		t.Errorf("NextTransform=%d PreprocCost=%v", s.NextTransform, s.PreprocCost)
	}
}

func TestApplyBudgetInterruptsMidTransform(t *testing.T) {
	p := NewPipeline("p",
		constTransform("fast", 10*time.Millisecond, 1),
		constTransform("slow", 100*time.Millisecond, 1),
		constTransform("tail", 5*time.Millisecond, 1),
	)
	s := testSample(1 << 20)
	ex := &fakeExec{}
	err := p.ApplyBudget(context.Background(), ex, s, 30*time.Millisecond)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	// Consumed exactly the budget: 10ms (fast) + 20ms partial slow.
	if ex.total != 30*time.Millisecond {
		t.Errorf("work = %v, want 30ms (budget)", ex.total)
	}
	// Resume index points at the interrupted transform, to be re-executed.
	if s.NextTransform != 1 {
		t.Errorf("NextTransform = %d, want 1", s.NextTransform)
	}

	// Background completion re-executes "slow" in full.
	ex2 := &fakeExec{}
	if err := p.Apply(context.Background(), ex2, s); err != nil {
		t.Fatal(err)
	}
	if ex2.total != 105*time.Millisecond {
		t.Errorf("resume work = %v, want 105ms (full slow + tail)", ex2.total)
	}
	if s.NextTransform != 3 {
		t.Errorf("NextTransform = %d, want 3", s.NextTransform)
	}
}

func TestApplyBudgetCompletesWithinBudget(t *testing.T) {
	p := NewPipeline("p", constTransform("a", 10*time.Millisecond, 1))
	s := testSample(1 << 20)
	ex := &fakeExec{}
	if err := p.ApplyBudget(context.Background(), ex, s, 50*time.Millisecond); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if ex.total != 10*time.Millisecond {
		t.Errorf("work = %v", ex.total)
	}
}

func TestApplyBudgetZeroBudgetInterruptsImmediately(t *testing.T) {
	p := NewPipeline("p", constTransform("a", 10*time.Millisecond, 1))
	s := testSample(1 << 20)
	ex := &fakeExec{}
	err := p.ApplyBudget(context.Background(), ex, s, 0)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v", err)
	}
	if ex.total != 0 || s.NextTransform != 0 {
		t.Errorf("work=%v next=%d", ex.total, s.NextTransform)
	}
}

func TestTotalCostDoesNotMutateSample(t *testing.T) {
	p := ImageSegmentationPipeline()
	s := testSample(136 << 20)
	before := *s
	_ = p.TotalCost(s)
	if *s != before {
		t.Fatal("TotalCost mutated the sample")
	}
}

func TestPipelineOnRealDevice(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		cpu := device.New(k, "cpu", 2)
		p := NewPipeline("p",
			constTransform("a", 1*time.Second, 1),
			constTransform("b", 2*time.Second, 1),
		)
		s := testSample(1 << 20)
		start := k.Now()
		if err := p.Apply(context.Background(), cpu, s); err != nil {
			t.Fatal(err)
		}
		if got := (k.Now() - start).Seconds(); got < 3 || got > 3.01 {
			t.Errorf("elapsed = %.3fs, want ≈3s", got)
		}
	})
}

func TestAutoOrderPartitionsWithinBarriers(t *testing.T) {
	defl := constTransform("defl", 0, 0.5)
	neut := constTransform("neut", 0, 1)
	infl := constTransform("infl", 0, 2)
	barrier := NewBarrier("barrier")
	s := testSample(1 << 20)

	got := AutoOrder([]Transform{infl, neut, defl}, s)
	wantNames := []string{"defl", "neut", "infl"}
	for i, w := range wantNames {
		if got[i].Name() != w {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, got[i].Name(), w, names(got))
		}
	}

	// Reordering must not cross barriers.
	got = AutoOrder([]Transform{infl, barrier, defl, infl}, s)
	want := []string{"infl", "barrier", "defl", "infl"}
	for i, w := range want {
		if got[i].Name() != w {
			t.Fatalf("barrier order = %v, want %v", names(got), want)
		}
	}
}

func TestAutoOrderSpeechMovesPadToEnd(t *testing.T) {
	p := SpeechPipeline(3 * time.Second)
	s := testSample(200 << 10)
	got := AutoOrder(p.Transforms(), s)
	// Pad is inflationary: it must come after all neutral transforms.
	padPos, lightPos := -1, -1
	for i, tr := range got {
		switch tr.Name() {
		case "Pad":
			padPos = i
		case "LightStep":
			lightPos = i
		}
	}
	if padPos < lightPos {
		t.Fatalf("Pad at %d before LightStep at %d: %v", padPos, lightPos, names(got))
	}
}

func TestAutoOrderResizeDynamicClassification(t *testing.T) {
	p := ObjectDetectionPipeline()
	big := testSample(1 << 20)     // 1 MB: Resize deflates → stays early
	small := testSample(200 << 10) // 0.2 MB: Resize inflates → moves late
	gotBig := AutoOrder(p.Transforms(), big)
	gotSmall := AutoOrder(p.Transforms(), small)
	if gotBig[0].Name() != "Resize" {
		t.Errorf("big sample order = %v, want Resize first", names(gotBig))
	}
	if gotSmall[len(gotSmall)-1].Name() != "Resize" &&
		gotSmall[len(gotSmall)-2].Name() != "Resize" {
		t.Errorf("small sample order = %v, want Resize late", names(gotSmall))
	}
}

func TestImageSegmentationIsOptimallyOrdered(t *testing.T) {
	// §5.1: AutoOrder leaves the image segmentation pipeline unchanged
	// (deflationary RandomCrop already first).
	p := ImageSegmentationPipeline()
	s := testSample(136 << 20)
	got := AutoOrder(p.Transforms(), s)
	for i, tr := range p.Transforms() {
		if got[i].Name() != tr.Name() {
			t.Fatalf("AutoOrder changed img-seg pipeline: %v", names(got))
		}
	}
}

func TestScaledExecutor(t *testing.T) {
	ex := &fakeExec{}
	sc := ScaledExecutor{Exec: ex, Speedup: 10}
	if err := sc.Run(context.Background(), time.Second); err != nil {
		t.Fatal(err)
	}
	if ex.total != 100*time.Millisecond {
		t.Errorf("work = %v, want 100ms", ex.total)
	}
}

func TestHeavyStepAppliesOnlyToHeavySamples(t *testing.T) {
	p := SpeechPipeline(3 * time.Second)
	light := testSample(200 << 10)
	heavy := testSample(200 << 10)
	heavy.Features.Heavy = true
	lc, hc := p.TotalCost(light), p.TotalCost(heavy)
	if lc > 600*time.Millisecond {
		t.Errorf("light sample cost = %v, want ≈0.51s", lc)
	}
	if hc < 2900*time.Millisecond || hc > 3100*time.Millisecond {
		t.Errorf("heavy sample cost = %v, want ≈3s", hc)
	}
}

func names(ts []Transform) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name()
	}
	return out
}
