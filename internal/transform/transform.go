// Package transform implements the preprocessing pipelines of the paper's
// Table 1 as cost-model transforms, and the Pipeline execution engine with
// the budget/resume semantics of Algorithm 1.
//
// A Transform declares, for a sample in its current state, how much
// full-speed compute it needs (Cost) and how it changes the sample's size
// (SizeFactor). Executing a transform occupies an Executor (a CPU pool or a
// GPU) for the cost duration under that device's contention model. The
// pipeline can run with a budget: if a transform would exceed the remaining
// budget, the worker consumes exactly the remaining budget (the partially
// applied transform of Algorithm 1) and returns with the sample's
// NextTransform pointing at the interrupted transform, which a background
// worker later re-executes in full.
package transform

import (
	"context"
	"errors"
	"time"

	"github.com/minatoloader/minato/internal/data"
)

// Executor is where transform compute runs. *device.Device implements it.
type Executor interface {
	Run(ctx context.Context, work time.Duration) error
}

// Transform is one preprocessing step.
type Transform interface {
	// Name identifies the transform (Table 1 names).
	Name() string
	// Cost returns the full-speed compute this transform needs for s in its
	// current state. It must be deterministic in s.
	Cost(s *data.Sample) time.Duration
	// SizeFactor returns the multiplicative effect on s.Bytes.
	SizeFactor(s *data.Sample) float64
	// Barrier reports whether reordering may cross this transform
	// (Pecan §2.1: sections are delimited by barrier transforms).
	Barrier() bool
}

// ErrInterrupted is returned by ApplyBudget when the budget expired
// mid-transform; the sample's NextTransform records the resume point.
var ErrInterrupted = errors.New("transform: interrupted by budget")

// Validator is an optional Transform extension for rejecting samples before
// compute is spent on them — the cost-model analogue of a decode or schema
// failure on a corrupt sample. When a transform implements it, Validate runs
// before the transform executes; a non-nil error aborts the sample's
// preprocessing with that error (no panic). Loaders treat such failures as
// per-sample faults: the sample is abandoned and counted, the worker keeps
// serving.
type Validator interface {
	Validate(s *data.Sample) error
}

// Pipeline is an ordered list of transforms.
type Pipeline struct {
	name string
	ts   []Transform
	sig  uint64
	// vals[i] is ts[i]'s Validator, nil when not implemented — resolved at
	// construction to keep the execution loop free of type assertions.
	vals []Validator
}

// NewPipeline returns a pipeline with the given transforms.
func NewPipeline(name string, ts ...Transform) *Pipeline {
	vals := make([]Validator, len(ts))
	for i, t := range ts {
		if v, ok := t.(Validator); ok {
			vals[i] = v
		}
	}
	return &Pipeline{name: name, ts: ts, sig: signature(ts), vals: vals}
}

// Name returns the pipeline name.
func (p *Pipeline) Name() string { return p.name }

// Signature returns a stable hash identifying what the pipeline computes,
// for keying caches of preprocessed outputs across sessions and tenants.
//
// Two pipelines share a signature exactly when they apply the same multiset
// of transforms (identified by Name) within each barrier-delimited section,
// with sections and barriers in the same order. Reorderings that the Pecan
// policies may legally produce — permutations within a section — therefore
// preserve the signature (Reordered and AutoOrder outputs hash equal to
// their source pipeline), while adding, removing, or substituting a
// transform, or moving one across a barrier, changes it. The pipeline name
// is deliberately excluded: it labels, it does not compute.
//
// The hash is pure FNV-1a over transform names, commutatively summed within
// a section and chained across sections, so it is stable across processes
// and runs. Custom transforms must give semantically different steps
// different names for signatures to distinguish them.
func (p *Pipeline) Signature() uint64 { return p.sig }

// signature implements the hash documented on Signature: per-section
// commutative sums of each transform's FNV-1a name hash, mixed in section
// order, with barrier transforms chained as section delimiters.
func signature(ts []Transform) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	nameHash := func(s string) uint64 {
		h := uint64(offset64)
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime64
		}
		return h
	}
	h := uint64(offset64)
	mix := func(v uint64) {
		for shift := 0; shift < 64; shift += 8 {
			h = (h ^ (v >> shift & 0xff)) * prime64
		}
	}
	var section uint64
	open := false
	for _, t := range ts {
		if t.Barrier() {
			if open {
				mix(section)
				section, open = 0, false
			}
			mix(nameHash(t.Name()) ^ 1) // tagged so a barrier never hashes like a 1-transform section
			continue
		}
		section += nameHash(t.Name())
		open = true
	}
	if open {
		mix(section)
	}
	return h
}

// Transforms returns the transform list (not a copy; do not mutate).
func (p *Pipeline) Transforms() []Transform { return p.ts }

// Len returns the number of transforms.
func (p *Pipeline) Len() int { return len(p.ts) }

// TotalCost returns the full pipeline compute cost for a fresh sample,
// simulating the size changes along the way, without executing anything.
// Used by profilers and tests.
func (p *Pipeline) TotalCost(s *data.Sample) time.Duration {
	c := s.Clone()
	var total time.Duration
	for _, t := range p.ts {
		total += t.Cost(c)
		c.Bytes = int64(float64(c.Bytes) * t.SizeFactor(c))
	}
	return total
}

// Apply runs every remaining transform of s (from s.NextTransform) to
// completion on exec.
func (p *Pipeline) Apply(ctx context.Context, exec Executor, s *data.Sample) error {
	_, err := p.run(ctx, exec, s, -1)
	return err
}

// ApplyBudget runs remaining transforms with a compute budget. If the
// pipeline completes within the budget it returns nil. If a transform would
// exceed the remaining budget, the executor is occupied for exactly the
// remaining budget (the partial application) and ErrInterrupted is
// returned; s.NextTransform then indexes the transform to re-execute.
func (p *Pipeline) ApplyBudget(ctx context.Context, exec Executor, s *data.Sample, budget time.Duration) error {
	_, err := p.run(ctx, exec, s, budget)
	return err
}

// run executes the remaining transforms. Costs and size effects are pure
// functions of the sample, so the walk first accounts each step and then
// occupies the executor once for the accumulated compute — one device park
// per Apply instead of one per transform, with identical virtual-time
// occupancy (the per-step executions it replaces were back-to-back on the
// same device at the same per-task rate).
func (p *Pipeline) run(ctx context.Context, exec Executor, s *data.Sample, budget time.Duration) (time.Duration, error) {
	var spent time.Duration
	for i := s.NextTransform; i < len(p.ts); i++ {
		t := p.ts[i]
		if v := p.vals[i]; v != nil {
			if err := v.Validate(s); err != nil {
				// Occupy the executor for the steps that ran before the
				// rejection, then surface the fault.
				if rerr := p.occupy(ctx, exec, spent); rerr != nil {
					return spent, rerr
				}
				return spent, err
			}
		}
		c := t.Cost(s)
		if budget >= 0 && spent+c > budget {
			// Partially apply: consume the remaining budget, then park the
			// sample for background completion. The interrupted transform
			// will be re-executed in full (Algorithm 1, lines 11 & 16-17).
			partial := budget - spent
			if err := p.occupy(ctx, exec, spent+partial); err != nil {
				return spent, err
			}
			s.PreprocCost += partial
			s.NextTransform = i
			return spent + partial, ErrInterrupted
		}
		spent += c
		s.PreprocCost += c
		s.Bytes = int64(float64(s.Bytes) * t.SizeFactor(s))
		s.NextTransform = i + 1
	}
	return spent, p.occupy(ctx, exec, spent)
}

// occupy runs the accumulated compute on the executor.
func (p *Pipeline) occupy(ctx context.Context, exec Executor, work time.Duration) error {
	if work <= 0 {
		return nil
	}
	return exec.Run(ctx, work)
}

// Reordered returns a new pipeline with the given transform order. The
// transforms must be a permutation of the pipeline's own.
func (p *Pipeline) Reordered(ts []Transform) *Pipeline {
	return NewPipeline(p.name+"+reordered", ts...)
}

// Classification of a transform's effect on data volume (Pecan §2.1).
type Classification int

const (
	// Deflationary transforms reduce data volume (sampling, cropping).
	Deflationary Classification = iota
	// Neutral transforms keep the volume unchanged.
	Neutral
	// Inflationary transforms increase data volume (padding, one-hot).
	Inflationary
)

// Classify categorizes a transform for a sample in a given state.
func Classify(t Transform, s *data.Sample) Classification {
	f := t.SizeFactor(s)
	switch {
	case f < 0.999:
		return Deflationary
	case f > 1.001:
		return Inflationary
	default:
		return Neutral
	}
}

// AutoOrder implements Pecan's AutoOrder policy: within each section
// delimited by barrier transforms, deflationary transforms move earlier and
// inflationary transforms move later, preserving relative order within each
// class. Classification is per-sample, using the sample's raw state (the
// paper classifies Resize dynamically by whether it inflates the input).
func AutoOrder(ts []Transform, s *data.Sample) []Transform {
	out := make([]Transform, 0, len(ts))
	section := make([]Transform, 0, len(ts))
	flush := func() {
		var defl, neut, infl []Transform
		for _, t := range section {
			switch Classify(t, s) {
			case Deflationary:
				defl = append(defl, t)
			case Inflationary:
				infl = append(infl, t)
			default:
				neut = append(neut, t)
			}
		}
		out = append(out, defl...)
		out = append(out, neut...)
		out = append(out, infl...)
		section = section[:0]
	}
	for _, t := range ts {
		if t.Barrier() {
			flush()
			out = append(out, t)
			continue
		}
		section = append(section, t)
	}
	flush()
	return out
}

// ScaledExecutor wraps an executor, dividing all work by Speedup. It models
// DALI's GPU-accelerated transforms, which the paper measured to be 10×
// faster than their CPU counterparts (§5.1).
type ScaledExecutor struct {
	Exec    Executor
	Speedup float64
}

// Run implements Executor.
func (e ScaledExecutor) Run(ctx context.Context, work time.Duration) error {
	return e.Exec.Run(ctx, time.Duration(float64(work)/e.Speedup))
}
