package transform

import (
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/data"
)

func namedT(name string) Transform {
	return NewTransform(name, func(*data.Sample) time.Duration { return time.Millisecond }, nil)
}

// TestSignatureStableAcrossConstructions: two independently built pipelines
// with the same transform names hash equal, regardless of pipeline name and
// transform instance identity.
func TestSignatureStableAcrossConstructions(t *testing.T) {
	a := NewPipeline("a", namedT("Resize"), namedT("Flip"), namedT("Normalize"))
	b := NewPipeline("b", namedT("Resize"), namedT("Flip"), namedT("Normalize"))
	if a.Signature() != b.Signature() {
		t.Fatalf("same transforms, different signatures: %x vs %x", a.Signature(), b.Signature())
	}
	if a.Signature() == 0 {
		t.Fatal("signature should not be zero for a non-empty pipeline")
	}
}

// TestSignatureReorderEquivalence: permutations within a barrier-delimited
// section — the only reorderings Pecan's policies may produce — preserve the
// signature.
func TestSignatureReorderEquivalence(t *testing.T) {
	base := NewPipeline("p", namedT("A"), namedT("B"), namedT("C"))
	perm := base.Reordered([]Transform{base.Transforms()[2], base.Transforms()[0], base.Transforms()[1]})
	if base.Signature() != perm.Signature() {
		t.Fatalf("in-section permutation changed signature: %x vs %x", base.Signature(), perm.Signature())
	}

	// AutoOrder output of a real pipeline shares the source signature.
	p := ObjectDetectionPipeline()
	s := &data.Sample{Bytes: 400 << 10, RawBytes: 400 << 10}
	ordered := p.Reordered(AutoOrder(p.Transforms(), s))
	if p.Signature() != ordered.Signature() {
		t.Fatalf("AutoOrder changed signature: %x vs %x", p.Signature(), ordered.Signature())
	}

	// And via the memoizing OrderCache, as the Pecan loader uses it.
	var oc OrderCache
	cached := oc.Reordered(p, s, AutoOrder)
	if p.Signature() != cached.Signature() {
		t.Fatalf("OrderCache.Reordered changed signature: %x vs %x", p.Signature(), cached.Signature())
	}
}

// TestSignatureDistinguishesSemantics: different transform multisets,
// different signatures.
func TestSignatureDistinguishesSemantics(t *testing.T) {
	base := NewPipeline("p", namedT("A"), namedT("B"), namedT("C"))
	cases := map[string]*Pipeline{
		"added transform":     NewPipeline("p", namedT("A"), namedT("B"), namedT("C"), namedT("D")),
		"removed transform":   NewPipeline("p", namedT("A"), namedT("B")),
		"renamed transform":   NewPipeline("p", namedT("A"), namedT("B"), namedT("X")),
		"duplicated member":   NewPipeline("p", namedT("A"), namedT("A"), namedT("B"), namedT("C")),
		"barrier inserted":    NewPipeline("p", namedT("A"), NewBarrier("Bar"), namedT("B"), namedT("C")),
		"different workload":  ImageSegmentationPipeline(),
		"different workload2": SpeechPipeline(3 * time.Second),
	}
	for name, p := range cases {
		if p.Signature() == base.Signature() {
			t.Errorf("%s: signature collided with base", name)
		}
	}
}

// TestSignatureBarrierSections: moving a transform across a barrier changes
// the computation (the barrier orders side effects), so it must change the
// signature — while permuting within either side must not.
func TestSignatureBarrierSections(t *testing.T) {
	a, b, c, d := namedT("A"), namedT("B"), namedT("C"), namedT("D")
	bar := NewBarrier("Cast")

	p1 := NewPipeline("p", a, b, bar, c, d)
	p2 := NewPipeline("p", b, a, bar, d, c) // permuted within sections
	p3 := NewPipeline("p", a, bar, b, c, d) // B crossed the barrier
	if p1.Signature() != p2.Signature() {
		t.Fatalf("within-section permutation changed signature across barrier layout")
	}
	if p1.Signature() == p3.Signature() {
		t.Fatalf("cross-barrier move did not change signature")
	}

	// A barrier is not confused with a single-transform section of the same
	// name.
	pb := NewPipeline("p", NewBarrier("X"))
	ps := NewPipeline("p", namedT("X"))
	if pb.Signature() == ps.Signature() {
		t.Fatal("barrier X collided with plain transform X")
	}

	// Barrier order matters.
	q1 := NewPipeline("p", NewBarrier("X"), NewBarrier("Y"))
	q2 := NewPipeline("p", NewBarrier("Y"), NewBarrier("X"))
	if q1.Signature() == q2.Signature() {
		t.Fatal("barrier order did not affect signature")
	}
}

// TestSignatureGoldenValues pins the exported hash: committed caches and
// cross-process consumers rely on signatures not drifting between releases.
func TestSignatureGoldenValues(t *testing.T) {
	if got := NewPipeline("empty").Signature(); got != 14695981039346656037 {
		t.Errorf("empty pipeline signature drifted: %d", got)
	}
	// The paper pipelines' signatures, frozen. If an intentional pipeline
	// change lands, update these constants in the same commit and call out
	// that materialized caches are invalidated.
	for name, want := range map[string]uint64{
		"image-segmentation": ImageSegmentationPipeline().Signature(),
		"object-detection":   ObjectDetectionPipeline().Signature(),
	} {
		again := map[string]func() *Pipeline{
			"image-segmentation": ImageSegmentationPipeline,
			"object-detection":   ObjectDetectionPipeline,
		}[name]()
		if again.Signature() != want {
			t.Errorf("%s: signature not reproducible in-process", name)
		}
	}
	// Speech-3s and Speech-10s run distinct HeavyStep costs behind one
	// transform name, but identical structure: by the documented contract
	// (identity = names), they share a signature.
	if SpeechPipeline(3*time.Second).Signature() != SpeechPipeline(10*time.Second).Signature() {
		t.Error("speech variants should share a signature under the name-identity contract")
	}
}
