package transform

import (
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/stats"
)

// Table 2 of the paper, in milliseconds.
var table2 = map[string]stats.Summary{
	"obj-det":    {Avg: 31, Med: 28, P75: 30, P90: 35, Min: 11, Max: 176, Std: 19},
	"img-seg":    {Avg: 500, Med: 470, P75: 630, P90: 750, Min: 10, Max: 2230, Std: 197},
	"speech-3s":  {Avg: 998, Med: 508, P75: 509, P90: 3008, Min: 502, Max: 3017, Std: 992},
	"speech-10s": {Avg: 2351, Med: 508, P75: 509, P90: 10008, Min: 502, Max: 10014, Std: 3757},
}

func sampleCosts(t *testing.T, ds dataset.Dataset, p *Pipeline, n int) stats.Summary {
	t.Helper()
	if n > ds.Len() {
		n = ds.Len()
	}
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		s := ds.Sample(0, i)
		vals = append(vals, float64(p.TotalCost(s))/float64(time.Millisecond))
	}
	return stats.Summarize(vals)
}

func within(t *testing.T, name, stat string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		return
	}
	rel := (got - want) / want
	if rel < -tol || rel > tol {
		t.Errorf("%s %s = %.1f, want %.1f ±%.0f%%", name, stat, got, want, tol*100)
	}
}

// TestCalibrationAgainstTable2 checks that the synthetic cost models
// reproduce the paper's per-sample preprocessing time distributions.
// Tolerances are loose: the goal is the *shape* (who is slow, how heavy the
// tail is), not exact numbers.
func TestCalibrationAgainstTable2(t *testing.T) {
	const seed = 1

	cases := []struct {
		name string
		sum  stats.Summary
	}{
		{"img-seg", sampleCosts(t, dataset.NewKiTS19(seed), ImageSegmentationPipeline(), 210)},
		{"obj-det", sampleCosts(t, dataset.NewCOCO(seed), ObjectDetectionPipeline(), 20000)},
		{"speech-3s", sampleCosts(t, dataset.NewLibriSpeech(seed, 5), SpeechPipeline(3*time.Second), 20000)},
		{"speech-10s", sampleCosts(t, dataset.NewLibriSpeech(seed, 5), SpeechPipeline(10*time.Second), 20000)},
	}

	for _, c := range cases {
		want := table2[c.name]
		got := c.sum
		t.Logf("%-10s got: %s", c.name, got)
		t.Logf("%-10s want: %s", c.name, want)
		within(t, c.name, "avg", got.Avg, want.Avg, 0.20)
		within(t, c.name, "med", got.Med, want.Med, 0.20)
		within(t, c.name, "p75", got.P75, want.P75, 0.25)
		within(t, c.name, "p90", got.P90, want.P90, 0.30)
		within(t, c.name, "std", got.Std, want.Std, 0.45)
		if got.Min > want.Min*3 {
			t.Errorf("%s min = %.1f, want ≲%.1f", c.name, got.Min, want.Min*3)
		}
		if got.Max < want.Max*0.5 || got.Max > want.Max*1.5 {
			t.Errorf("%s max = %.1f, want ≈%.1f", c.name, got.Max, want.Max)
		}
	}
}

// TestSizeCorrelationMatchesPaper pins §3.2: size predicts cost for image
// segmentation but not for object detection.
func TestSizeCorrelationMatchesPaper(t *testing.T) {
	corr := func(ds dataset.Dataset, p *Pipeline, n int) float64 {
		var sx, sy, sxx, syy, sxy float64
		for i := 0; i < n; i++ {
			s := ds.Sample(0, i)
			x := float64(s.RawBytes)
			y := float64(p.TotalCost(s))
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
		}
		nf := float64(n)
		cov := sxy/nf - (sx/nf)*(sy/nf)
		vx := sxx/nf - (sx/nf)*(sx/nf)
		vy := syy/nf - (sy/nf)*(sy/nf)
		if vx <= 0 || vy <= 0 {
			return 0
		}
		return cov / (sqrt(vx) * sqrt(vy))
	}

	if r := corr(dataset.NewKiTS19(1), ImageSegmentationPipeline(), 210); r < 0.55 {
		t.Errorf("img-seg size↔cost correlation = %.2f, want strong (>0.55)", r)
	}
	if r := corr(dataset.NewCOCO(1), ObjectDetectionPipeline(), 5000); r > 0.25 {
		t.Errorf("obj-det size↔cost correlation = %.2f, want weak (<0.25)", r)
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// TestProcessedSizesMatchPaper pins §2.2's post-preprocessing sizes.
func TestProcessedSizesMatchPaper(t *testing.T) {
	apply := func(ds dataset.Dataset, p *Pipeline, n int) (minMB, avgMB, maxMB float64) {
		var w stats.Welford
		for i := 0; i < n; i++ {
			s := ds.Sample(0, i)
			c := s.Clone()
			for _, tr := range p.Transforms() {
				c.Bytes = int64(float64(c.Bytes) * tr.SizeFactor(c))
			}
			w.Add(float64(c.Bytes) / (1 << 20))
		}
		return w.Min(), w.Mean(), w.Max()
	}

	// Image segmentation: all samples standardized to 10 MB.
	mn, av, mx := apply(dataset.NewKiTS19(1), ImageSegmentationPipeline(), 210)
	if mn < 9.9 || mx > 10.1 {
		t.Errorf("img-seg processed sizes = [%.1f, %.1f] MB, want 10 MB uniform", mn, mx)
	}

	// Object detection: ≈4–12 MB, average ≈7 MB.
	mn, av, mx = apply(dataset.NewCOCO(1), ObjectDetectionPipeline(), 5000)
	if av < 4 || av > 10 {
		t.Errorf("obj-det processed avg = %.1f MB, want ≈7", av)
	}
	if mn < 0.5 || mx > 16 {
		t.Errorf("obj-det processed range = [%.1f, %.1f] MB", mn, mx)
	}

	// Speech: ≈0.4–9 MB, average ≈4 MB.
	mn, av, mx = apply(dataset.NewLibriSpeech(1, 5), SpeechPipeline(3*time.Second), 5000)
	if av < 2.5 || av > 6 {
		t.Errorf("speech processed avg = %.1f MB, want ≈4", av)
	}
	if mx > 11 {
		t.Errorf("speech processed max = %.1f MB, want ≲9", mx)
	}
	_ = mn
}
