package transform

import (
	"sync"

	"github.com/minatoloader/minato/internal/data"
)

// OrderCache memoizes per-sample pipeline reorderings. Reorder policies in
// the Pecan family are pure functions of each transform's volume
// classification for the sample (Classify), so two samples with the same
// classification signature get byte-identical orders — there is no reason
// to re-run the policy and rebuild a Pipeline per sample, which is exactly
// what the uncached path did (§2.1 runs AutoOrder on every sample).
//
// The contract for cached policies: the returned order must depend on the
// sample only through Classify(t, s) of each transform. Pipelines with more
// than 32 transforms (or policies that need richer sample state) bypass the
// cache by signature overflow.
//
// The zero value is ready to use. OrderCache is safe for concurrent use.
type OrderCache struct {
	mu sync.RWMutex
	m  map[uint64]*Pipeline
}

// Reordered returns p rearranged by policy for s, memoized by s's
// classification signature.
func (c *OrderCache) Reordered(p *Pipeline, s *data.Sample, policy func([]Transform, *data.Sample) []Transform) *Pipeline {
	ts := p.Transforms()
	sig, ok := classSignature(ts, s)
	if !ok {
		return p.Reordered(policy(ts, s))
	}
	c.mu.RLock()
	rp := c.m[sig]
	c.mu.RUnlock()
	if rp != nil {
		return rp
	}
	rp = p.Reordered(policy(ts, s))
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[uint64]*Pipeline)
	}
	if prev, ok := c.m[sig]; ok {
		rp = prev // another worker computed it first; converge on one value
	} else {
		c.m[sig] = rp
	}
	c.mu.Unlock()
	return rp
}

// classSignature packs each transform's classification for s into two bits.
// ok is false when the pipeline is too long to sign.
func classSignature(ts []Transform, s *data.Sample) (uint64, bool) {
	if len(ts) > 32 {
		return 0, false
	}
	var sig uint64
	for i, t := range ts {
		sig |= uint64(Classify(t, s)+1) << (2 * i)
	}
	return sig, true
}
