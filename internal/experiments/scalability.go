package experiments

import (
	"fmt"

	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/report"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

func init() {
	register("fig9", "Training time vs number of GPUs (Fig 9)", runFig9)
	register("e1", "Artifact experiment E1: 8×V100, 10 epochs, 3D-UNet", runE1)
}

func runFig9(o Options) (*Result, error) {
	type testbed struct {
		cfg    hardware.Config
		counts []int
	}
	tbs := []testbed{
		{hardware.ConfigA(), []int{1, 2, 3, 4}},
		{hardware.ConfigB(), []int{2, 4, 6, 8}},
	}
	if o.Quick {
		tbs[0].counts = []int{1, 4}
		tbs[1].counts = []int{2, 8}
	}

	t := report.Table{
		Title:  "Training time (s) vs number of GPUs",
		Header: []string{"testbed", "workload", "gpus", "pytorch", "pecan", "dali", "minato"},
	}
	var csvRows [][]string
	for _, tb := range tbs {
		for _, w := range workload.All(o.seed()) {
			w := scaleWorkload(w, o.Quick)
			for _, n := range tb.counts {
				row := []string{tb.cfg.Name, w.Name, fmt.Sprint(n)}
				for _, f := range loaders.Defaults() {
					rep, err := trainer.Simulate(tb.cfg.WithGPUs(n), w, f, trainer.Params{})
					if err != nil {
						return nil, fmt.Errorf("fig9 %s/%s/%d/%s: %w", tb.cfg.Name, w.Name, n, f.Name, err)
					}
					row = append(row, report.Seconds(rep.TrainTime))
				}
				t.Rows = append(t.Rows, row)
				csvRows = append(csvRows, row)
			}
		}
	}
	res := &Result{ID: "fig9", Title: "Fig 9", Tables: []report.Table{t},
		Notes: []string{
			"MinatoLoader outperforms at every GPU count and stays competitive at 1 GPU vs baselines at 4 (§5.4)",
		}}
	if o.OutDir != "" {
		if err := report.WriteCSV(o.OutDir, "fig9", t.Header, csvRows); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func runE1(o Options) (*Result, error) {
	cfg := hardware.ConfigB()
	w := workload.ImageSegmentation(o.seed()).WithEpochs(10)
	if o.Quick {
		w = w.WithEpochs(3)
	}
	t := report.Table{
		Title:  "Artifact E1: 3D-UNet, 10 epochs, 8×V100",
		Header: append([]string{"system"}, loaderHeader...),
	}
	var times = map[string]float64{}
	for _, name := range []string{"pytorch", "dali", "minato"} {
		f, _ := loaders.ByName(name)
		rep, err := trainer.Simulate(cfg, w, f, trainer.Params{Collect: true})
		if err != nil {
			return nil, fmt.Errorf("e1 %s: %w", name, err)
		}
		times[name] = rep.TrainTime.Seconds()
		t.Rows = append(t.Rows, append([]string{name}, loaderRow(rep)...))
		if err := writeSeries(o, "e1_"+name, rep, "cpu", "gpu"); err != nil {
			return nil, err
		}
	}
	res := &Result{ID: "e1", Title: "Artifact E1", Tables: []report.Table{t},
		Notes: []string{
			fmt.Sprintf("speedups: %.2fx over PyTorch, %.2fx over DALI (paper: 2.6x, 1.9x on the authors' hardware)",
				times["pytorch"]/times["minato"], times["dali"]/times["minato"]),
			"paper wall-clock targets: PyTorch ≈210 s, DALI ≈151 s, Minato ≈81 s",
		}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "e1", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}
