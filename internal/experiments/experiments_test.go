package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table/figure of the paper's evaluation plus the artifact run
	// and the design ablations must be registered.
	want := []string{
		"table1", "table2", "table3",
		"fig1b", "fig2", "fig3", "fig4", "fig7", "fig8", "fig9", "fig10",
		"fig11a", "fig11b", "fig11c", "fig12", "e1",
		"abl-timeout", "abl-workers", "abl-resume", "abl-order",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d entries, want ≥%d", len(All()), len(want))
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown ID resolved")
	}
}

func TestIDsSorted(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
}

// TestQuickSmoke runs the cheap experiments end to end in Quick mode and
// checks they produce renderable tables and CSV output.
func TestQuickSmoke(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"table1", "table2", "table3", "fig2", "fig1b", "e1"} {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		res, err := r.Run(Options{Seed: 1, Quick: true, OutDir: dir})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		if out := res.Render(); !strings.Contains(out, id) {
			t.Fatalf("%s render missing ID header", id)
		}
	}
	// CSVs landed.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV output written")
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".csv" {
			t.Fatalf("unexpected output file %s", e.Name())
		}
	}
}

// TestAllExperimentsQuick runs the entire registry in Quick mode — every
// table, figure, and ablation must complete and produce tables. This is
// the harness's integration test (≈40 s); -short skips it.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry smoke (slow)")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			res, err := r.Run(Options{Seed: 1, Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s: no tables", r.ID)
			}
			for _, tbl := range res.Tables {
				if len(tbl.Rows) == 0 {
					t.Fatalf("%s: empty table %q", r.ID, tbl.Title)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Header) {
						t.Fatalf("%s: ragged row %v vs header %v", r.ID, row, tbl.Header)
					}
				}
			}
		})
	}
}

// TestFig12QuickShape checks the headline property of the slow-fraction
// sweep at smoke scale: MinatoLoader's advantage peaks in the middle.
func TestFig12QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, _ := ByID("fig12")
	res, err := r.Run(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 3 { // 0%, 50%, 100% in quick mode
		t.Fatalf("rows = %d", len(rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscanf(s, "%f", &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	// Columns: slow_pct, pytorch, pecan, dali, minato.
	ratioAt := func(row []string) float64 { return parse(row[1]) / parse(row[4]) }
	mid := ratioAt(rows[1])
	left := ratioAt(rows[0])
	if mid <= left {
		t.Errorf("mid-range advantage %.2f not above 0%% advantage %.2f", mid, left)
	}
}
