package experiments

import (
	"fmt"

	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/report"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

func init() {
	register("fig10", "Memory-constrained training: 230 GB dataset, 80 GB cap (Fig 10)", runFig10)
}

func runFig10(o Options) (*Result, error) {
	// §5.5: KiTS19 replicated to ≈230 GB, memory capped at 80 GB via
	// cgroups, 10 epochs of 3D-UNet on Config B. Every epoch must re-read
	// from storage; loader quality shows as sustained vs volatile disk
	// reads.
	const gib = int64(1) << 30
	cfg := hardware.ConfigB().WithMemoryLimit(80 * gib)
	replicate := 8
	epochs := 10
	if o.Quick {
		replicate, epochs = 4, 3
	}
	base := workload.ImageSegmentation(o.seed())
	w := base.WithDataset(dataset.Replicate(base.Dataset, replicate)).WithEpochs(epochs)

	t := report.Table{
		Title:  fmt.Sprintf("Memory-constrained: %d×KiTS19, %d epochs, 80 GB cap (Config B)", replicate, epochs),
		Header: []string{"loader", "train_s", "gpu_util", "cpu_util", "disk_read_GB", "cache_hit_rate"},
	}
	for _, name := range []string{"pytorch", "dali", "minato"} {
		f, _ := loaders.ByName(name)
		rep, err := trainer.Simulate(cfg, w, f, trainer.Params{Collect: true})
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", name, err)
		}
		hits := float64(rep.CacheStats.Hits)
		total := hits + float64(rep.CacheStats.Misses)
		hr := 0.0
		if total > 0 {
			hr = hits / total
		}
		t.Rows = append(t.Rows, []string{
			name,
			report.Seconds(rep.TrainTime),
			report.Pct(rep.AvgGPUUtil),
			report.Pct(rep.AvgCPUUtil),
			report.F(float64(rep.DiskBytes)/1e9, 1),
			report.F(hr, 3),
		})
		if err := writeSeries(o, "fig10_"+name, rep, "cpu", "gpu", "disk"); err != nil {
			return nil, err
		}
	}
	res := &Result{ID: "fig10", Title: "Fig 10", Tables: []report.Table{t},
		Notes: []string{
			"paper (authors' testbed): PyTorch ≈650 s / 57% GPU, DALI ≈500 s / 81%, Minato ≈330 s / 82% with stable NVMe-saturating reads",
			"disk-read dips at epoch boundaries are model validation (§5.5)",
		}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "fig10_summary", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}
