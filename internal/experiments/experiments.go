// Package experiments regenerates every table and figure of the paper's
// evaluation (§3, §5, and the artifact appendix), plus ablations of
// MinatoLoader's design choices. Each experiment returns structured tables
// and optionally writes CSVs; cmd/minato-bench drives them by ID.
//
// See DESIGN.md's per-experiment index for the mapping from experiment IDs
// to paper artifacts.
package experiments

import (
	"fmt"
	"sort"

	"github.com/minatoloader/minato/internal/report"
	"github.com/minatoloader/minato/internal/stats"
	"github.com/minatoloader/minato/internal/trainer"
)

// Options configures an experiment run.
type Options struct {
	// Seed drives every random draw; identical seeds reproduce results.
	Seed uint64
	// Quick shrinks run lengths for benchmarks and CI: fewer iterations,
	// fewer sweep points, same shapes.
	Quick bool
	// OutDir, when set, receives CSV files for plotting.
	OutDir string
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Result is an experiment's structured outcome.
type Result struct {
	ID     string
	Title  string
	Tables []report.Table
	Notes  []string
}

// Render returns the result as printable text.
func (r *Result) Render() string {
	out := fmt.Sprintf("### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += t.Render() + "\n"
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Runner is a registered experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Options) (*Result, error)
}

var registry []Runner

func register(id, title string, fn func(Options) (*Result, error)) {
	registry = append(registry, Runner{ID: id, Title: title, Run: fn})
}

// All returns every registered experiment in registration order.
func All() []Runner {
	out := make([]Runner, len(registry))
	copy(out, registry)
	return out
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, r := range registry {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return ids
}

// ByID looks up an experiment.
func ByID(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// --- shared helpers -------------------------------------------------------

// loaderRow renders the standard per-run summary row.
func loaderRow(rep *trainer.Report) []string {
	return []string{
		rep.Loader,
		report.Seconds(rep.TrainTime),
		report.F(rep.Throughput(), 1),
		report.Pct(rep.AvgGPUUtil),
		report.Pct(rep.AvgCPUUtil),
	}
}

var loaderHeader = []string{"loader", "train_s", "tput_MB/s", "gpu_util", "cpu_util"}

// writeSeries persists a report's time series when OutDir is set.
func writeSeries(o Options, name string, rep *trainer.Report, keys ...string) error {
	if o.OutDir == "" || rep.Series == nil {
		return nil
	}
	series := make([]*stats.TimeSeries, 0, len(keys))
	for _, k := range keys {
		if ts := rep.Series[k]; ts != nil {
			series = append(series, ts)
		}
	}
	return report.WriteSeriesCSV(o.OutDir, name, series...)
}
