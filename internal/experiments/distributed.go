package experiments

import (
	"fmt"
	"time"

	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/distributed"
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/report"
	"github.com/minatoloader/minato/internal/workload"
)

func init() {
	register("dist", "Distributed data-parallel training across nodes (§6 extension)", runDist)
}

func runDist(o Options) (*Result, error) {
	iters := 300
	nodeCounts := []int{1, 2, 4}
	if o.Quick {
		iters = 80
		nodeCounts = []int{1, 2}
	}
	w := workload.Speech(o.seed(), 3*time.Second)
	w.Dataset = dataset.Subset(w.Dataset, 20000)
	w = w.WithIterations(iters)

	t := report.Table{
		Title:  fmt.Sprintf("Distributed Speech-3s, %d iterations per rank (Config A nodes)", iters),
		Header: []string{"nodes", "loader", "train_s", "steps", "gpu_util", "allreduce_ms"},
	}
	for _, n := range nodeCounts {
		cfg := distributed.DefaultConfig(n)
		for _, name := range []string{"pytorch", "minato"} {
			f, _ := loaders.ByName(name)
			rep, err := distributed.Run(cfg, w, f)
			if err != nil {
				return nil, fmt.Errorf("dist %d/%s: %w", n, name, err)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), name,
				report.Seconds(rep.TrainTime),
				fmt.Sprint(rep.Steps),
				report.Pct(rep.AvgGPUUtil),
				report.F(rep.AllReduceTime.Seconds()*1000, 1),
			})
		}
	}
	res := &Result{ID: "dist", Title: "Distributed training (§6)", Tables: []report.Table{t},
		Notes: []string{
			"each node runs its own loader over a dataset shard; a per-step barrier applies ring all-reduce cost",
			"MinatoLoader's per-node benefit compounds: one input-stalled rank stalls every rank",
		}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "dist", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}
