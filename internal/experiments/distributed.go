package experiments

import (
	"fmt"
	"time"

	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/distributed"
	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/report"
	"github.com/minatoloader/minato/internal/workload"
)

func init() {
	register("dist", "Distributed data-parallel training across nodes (§6 extension)", runDist)
	register("multinode", "Multi-node failure scenarios: straggler, degraded link, heterogeneous mix", runMultiNode)
}

// distLoaders is the comparison pair every multi-node table runs.
var distLoaders = []string{"pytorch", "minato"}

func distWorkloadFor(o Options, iters int) workload.Workload {
	w := workload.Speech(o.seed(), 3*time.Second)
	w.Dataset = dataset.Subset(w.Dataset, 20000)
	return w.WithIterations(iters)
}

// distRow renders one run as a table row: cluster step time plus the
// per-cause stall attribution the netsim fabric makes measurable.
func distRow(label string, rep *distributed.Report) []string {
	return []string{
		label, rep.Loader,
		report.Seconds(rep.TrainTime),
		fmt.Sprint(rep.Steps),
		report.F(rep.StepTime().Seconds()*1000, 1),
		report.Pct(rep.AvgGPUUtil),
		report.Pct(100 * rep.DataStallShare()),
		report.Pct(100 * rep.BarrierStallShare()),
		report.Pct(100 * rep.NetworkStallShare()),
	}
}

var distHeader = []string{"cluster", "loader", "train_s", "steps", "step_ms",
	"gpu_util", "data_stall", "barrier_stall", "net_stall"}

func runDist(o Options) (*Result, error) {
	iters := 300
	nodeCounts := []int{1, 2, 4}
	if o.Quick {
		iters = 80
		nodeCounts = []int{1, 2}
	}
	w := distWorkloadFor(o, iters)

	t := report.Table{
		Title: fmt.Sprintf("Distributed Speech-3s, %d iterations per rank (Config A nodes, 200 Gb/s fabric, remote store)",
			iters),
		Header: distHeader,
	}
	for _, n := range nodeCounts {
		cfg := distributed.DefaultConfig(n)
		for _, name := range distLoaders {
			f, _ := loaders.ByName(name)
			rep, err := distributed.Run(cfg, w, f)
			if err != nil {
				return nil, fmt.Errorf("dist %d/%s: %w", n, name, err)
			}
			t.Rows = append(t.Rows, distRow(fmt.Sprintf("%d nodes", n), rep))
		}
	}
	res := &Result{ID: "dist", Title: "Distributed training (§6)", Tables: []report.Table{t},
		Notes: []string{
			"each node is a full testbed running its own loader over a deterministic dataset shard",
			"gradient all-reduce is ring-reduce flows on the simulated fabric; cold shard reads fetch from a shared store over the same NICs",
			"net_stall is measured time in the collective, not an analytic constant; one input-stalled rank stalls every rank",
		}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "dist", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runMultiNode exercises the failure and heterogeneity scenarios the
// fabric enables: a core-starved straggler node, a degraded NIC, and a
// mixed Config A + Config B cluster.
func runMultiNode(o Options) (*Result, error) {
	iters := 200
	nodes := 4
	if o.Quick {
		iters = 60
		nodes = 2
	}
	w := distWorkloadFor(o, iters)
	base := distributed.DefaultConfig(nodes)

	scenarios := []struct {
		label string
		cfg   distributed.Config
	}{
		{"balanced", base},
		{"straggler(n1÷8 cores)", base.WithStraggler(1, 8)},
		{"degraded(n1÷8 link)", base.WithDegradedLink(1, 8)},
		{"hetero(A+B mix)", base.WithMix(mixNodes(nodes)...)},
	}

	t := report.Table{
		Title:  fmt.Sprintf("Multi-node scenarios, %d nodes, %d iterations per rank", nodes, iters),
		Header: distHeader,
	}
	for _, sc := range scenarios {
		for _, name := range distLoaders {
			f, _ := loaders.ByName(name)
			rep, err := distributed.Run(sc.cfg, w, f)
			if err != nil {
				return nil, fmt.Errorf("multinode %s/%s: %w", sc.label, name, err)
			}
			t.Rows = append(t.Rows, distRow(sc.label, rep))
		}
	}
	res := &Result{ID: "multinode", Title: "Multi-node scenarios", Tables: []report.Table{t},
		Notes: []string{
			"straggler: one node's preprocessing cores divided — the whole-cluster step pays its input stall through the barrier",
			"degraded: one node's NIC bandwidth divided — gradient flows through it slow every ring phase",
			"hetero: alternating Config A / Config B nodes share one synchronous step",
		}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "multinode", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// mixNodes alternates Config A and Config B single-GPU-count-preserving
// nodes for the heterogeneous scenario.
func mixNodes(n int) []hardware.Config {
	cfgs := make([]hardware.Config, n)
	for i := range cfgs {
		if i%2 == 0 {
			cfgs[i] = hardware.ConfigA()
		} else {
			cfgs[i] = hardware.ConfigB().WithGPUs(hardware.ConfigA().GPUCount)
		}
	}
	return cfgs
}
