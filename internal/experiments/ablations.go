package experiments

import (
	"fmt"
	"time"

	"github.com/minatoloader/minato/internal/core"
	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/report"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

func init() {
	register("abl-timeout", "Ablation: timeout percentile choice (§4.2)", runAblTimeout)
	register("abl-workers", "Ablation: adaptive vs fixed worker pools (§4.3)", runAblWorkers)
	register("abl-resume", "Ablation: resume-from-index vs restart for slow samples (§4.2)", runAblResume)
	register("abl-order", "Ablation: order-preserving mode cost (§6)", runAblOrder)
}

func ablationWorkload(o Options) workload.Workload {
	w := workload.Speech(o.seed(), 3*time.Second)
	if o.Quick {
		return w.WithIterations(150)
	}
	return w.WithIterations(500)
}

func runAblTimeout(o Options) (*Result, error) {
	cfg := hardware.ConfigA()
	w := ablationWorkload(o)
	t := report.Table{
		Title:  "Timeout percentile (Speech-3s)",
		Header: append([]string{"percentile"}, loaderHeader...),
	}
	for _, pct := range []float64{0.50, 0.75, 0.90, 0.99} {
		mc := core.DefaultConfig()
		mc.TimeoutPercentile = pct
		mc.FallbackPercentile = pct // isolate the primary percentile
		mc.MaxSlowFraction = 1.0    // disable fallback
		rep, err := trainer.Simulate(cfg, w, loaders.Minato(mc), trainer.Params{})
		if err != nil {
			return nil, fmt.Errorf("abl-timeout p%v: %w", pct, err)
		}
		t.Rows = append(t.Rows, append([]string{report.F(pct*100, 0)}, loaderRow(rep)...))
	}
	res := &Result{ID: "abl-timeout", Title: "Timeout percentile ablation", Tables: []report.Table{t},
		Notes: []string{
			"the paper argues P75 balances outlier focus against slow-queue pressure; lower percentiles classify more samples slow and waste partial work on re-execution",
		}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "abl_timeout", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func runAblWorkers(o Options) (*Result, error) {
	cfg := hardware.ConfigA()
	w := ablationWorkload(o)
	t := report.Table{
		Title:  "Adaptive vs fixed worker pools (Speech-3s)",
		Header: append([]string{"policy"}, loaderHeader...),
	}
	runOne := func(label string, mc core.Config) error {
		rep, err := trainer.Simulate(cfg, w, loaders.Minato(mc), trainer.Params{})
		if err != nil {
			return fmt.Errorf("abl-workers %s: %w", label, err)
		}
		t.Rows = append(t.Rows, append([]string{label}, loaderRow(rep)...))
		return nil
	}
	if err := runOne("adaptive", core.DefaultConfig()); err != nil {
		return nil, err
	}
	for _, n := range []int{12, 48, 128} {
		mc := core.DefaultConfig()
		mc.DisableAdaptiveWorkers = true
		mc.InitialWorkersPerGPU = n / 4 // Config A has 4 GPUs
		if mc.InitialWorkersPerGPU < 1 {
			mc.InitialWorkersPerGPU = 1
		}
		if err := runOne(fmt.Sprintf("fixed-%d", n), mc); err != nil {
			return nil, err
		}
	}
	res := &Result{ID: "abl-workers", Title: "Worker scheduler ablation", Tables: []report.Table{t},
		Notes: []string{
			"adaptive scaling approaches the best fixed pool without per-workload tuning (§4.3)",
		}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "abl_workers", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func runAblResume(o Options) (*Result, error) {
	cfg := hardware.ConfigA()
	w := ablationWorkload(o)
	t := report.Table{
		Title:  "Slow-sample completion strategy (Speech-3s)",
		Header: append([]string{"strategy"}, loaderHeader...),
	}
	for _, restart := range []bool{false, true} {
		mc := core.DefaultConfig()
		mc.RestartSlowFromScratch = restart
		label := "resume-from-index"
		if restart {
			label = "restart-pipeline"
		}
		rep, err := trainer.Simulate(cfg, w, loaders.Minato(mc), trainer.Params{})
		if err != nil {
			return nil, fmt.Errorf("abl-resume %s: %w", label, err)
		}
		t.Rows = append(t.Rows, append([]string{label}, loaderRow(rep)...))
	}
	res := &Result{ID: "abl-resume", Title: "Resume ablation", Tables: []report.Table{t},
		Notes: []string{
			"Algorithm 1 resumes from the interrupted transform, re-executing only it; restarting repeats all completed transforms as well",
		}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "abl_resume", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func runAblOrder(o Options) (*Result, error) {
	cfg := hardware.ConfigA()
	w := ablationWorkload(o)
	t := report.Table{
		Title:  "Order-preserving mode (Speech-3s)",
		Header: append([]string{"mode"}, loaderHeader...),
	}
	for _, ordered := range []bool{false, true} {
		mc := core.DefaultConfig()
		mc.OrderPreserving = ordered
		label := "reordering (default)"
		if ordered {
			label = "order-preserving (§6)"
		}
		rep, err := trainer.Simulate(cfg, w, loaders.Minato(mc), trainer.Params{})
		if err != nil {
			return nil, fmt.Errorf("abl-order %v: %w", ordered, err)
		}
		t.Rows = append(t.Rows, append([]string{label}, loaderRow(rep)...))
	}
	pt, _ := loaders.ByName("pytorch")
	rep, err := trainer.Simulate(cfg, w, pt, trainer.Params{})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, append([]string{"pytorch (reference)"}, loaderRow(rep)...))
	res := &Result{ID: "abl-order", Title: "Order-preserving ablation", Tables: []report.Table{t},
		Notes: []string{
			"strict ordering reintroduces head-of-line waiting in batch assembly; §6 accepts this for curriculum learning correctness",
		}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "abl_order", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}
