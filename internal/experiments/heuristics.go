package experiments

import (
	"fmt"
	"time"

	"github.com/minatoloader/minato/internal/core"
	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loader/dali"
	"github.com/minatoloader/minato/internal/loader/pytorch"
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/report"
	"github.com/minatoloader/minato/internal/stats"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

func init() {
	register("fig3", "Heuristic load balancers: image size and reordering (Fig 3)", runFig3)
	register("fig4", "Prefetch parameter sweeps (Fig 4)", runFig4)
}

func runFig3(o Options) (*Result, error) {
	cfg := hardware.ConfigA()
	w := scaleWorkload(workload.ObjectDetection(o.seed()), o.Quick)

	// (a) Image-size heuristic: classify slow upfront when the raw sample
	// exceeds the P75 of sizes. For COCO, size does not predict cost
	// (§3.2), so misclassification causes GPU fluctuations.
	var sizes stats.Percentiles
	for i := 0; i < 2000; i++ {
		sizes.Add(float64(w.Dataset.Sample(0, i).RawBytes))
	}
	// The paper's heuristic balancer extends the PyTorch DataLoader's fixed
	// 12-worker setup (§3.2) — only the classification rule changes, so the
	// adaptive scheduler is disabled and the pool stays at 12 workers.
	sizeCfg := core.DefaultConfig()
	sizeCfg.SizeHeuristicThreshold = int64(sizes.Quantile(0.75))
	sizeCfg.LoaderName = "size-heuristic"
	sizeCfg.DisableAdaptiveWorkers = true
	sizeCfg.InitialWorkersPerGPU = 3 // 12 workers on the 4-GPU testbed
	sizeF := loaders.Minato(sizeCfg)

	// (b) Transformation reordering (Pecan's AutoOrder).
	pecanF, _ := loaders.ByName("pecan")
	ptF, _ := loaders.ByName("pytorch")

	t := report.Table{
		Title:  "Heuristic balancers on object detection (Config A)",
		Header: append([]string{"heuristic"}, loaderHeader...),
	}
	for name, f := range map[string]trainer.Factory{
		"a_image_size": sizeF, "b_reordering": pecanF, "baseline_pytorch": ptF,
	} {
		rep, err := trainer.Simulate(cfg, w, f, trainer.Params{Collect: true})
		if err != nil {
			return nil, fmt.Errorf("fig3 %s: %w", name, err)
		}
		t.Rows = append(t.Rows, append([]string{name}, loaderRow(rep)...))
		if err := writeSeries(o, "fig3_"+name, rep, "cpu", "gpu"); err != nil {
			return nil, err
		}
	}
	sortRows(t.Rows)
	res := &Result{ID: "fig3", Title: "Fig 3", Tables: []report.Table{t},
		Notes: []string{"paper: size heuristic GPU ≈64%, reordering GPU ≈67% — both marginal over PyTorch (§3.2)"}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "fig3_summary", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func runFig4(o Options) (*Result, error) {
	cfgA := hardware.ConfigA()

	// (a) PyTorch prefetch_factor sweep (per-workload values from Fig 4a).
	ptSweeps := []struct {
		w       workload.Workload
		factors []int
	}{
		{workload.ImageSegmentation(o.seed()), []int{2, 8, 24}},
		{workload.Speech(o.seed(), 3*time.Second), []int{2, 8, 32, 48}},
		{workload.ObjectDetection(o.seed()), []int{2, 8, 24, 32}},
	}
	ta := report.Table{
		Title:  "PyTorch DataLoader: prefetch_factor vs training time",
		Header: []string{"workload", "prefetch_factor", "train_s"},
	}
	for _, sw := range ptSweeps {
		w := scaleWorkload(sw.w, o.Quick)
		factors := sw.factors
		if o.Quick {
			factors = factors[:2]
		}
		for _, pf := range factors {
			cfg := pytorch.DefaultConfig()
			cfg.PrefetchFactor = pf
			rep, err := trainer.Simulate(cfgA, w, loaders.PyTorch(cfg), trainer.Params{})
			if err != nil {
				return nil, fmt.Errorf("fig4a %s pf=%d: %w", w.Name, pf, err)
			}
			ta.Rows = append(ta.Rows, []string{w.Name, fmt.Sprint(pf), report.Seconds(rep.TrainTime)})
		}
	}

	// (b) DALI prefetch_queue_depth sweep.
	daliSweeps := []struct {
		w      workload.Workload
		depths []int
	}{
		{workload.ImageSegmentation(o.seed()), []int{2, 8, 16}},
		{workload.Speech(o.seed(), 10*time.Second), []int{2, 8, 16, 24}},
		{workload.ObjectDetection(o.seed()), []int{2, 8, 16, 24}},
	}
	tb := report.Table{
		Title:  "DALI: prefetch_queue_depth vs training time",
		Header: []string{"workload", "queue_depth", "train_s"},
	}
	for _, sw := range daliSweeps {
		w := scaleWorkload(sw.w, o.Quick)
		depths := sw.depths
		if o.Quick {
			depths = depths[:2]
		}
		for _, d := range depths {
			cfg := dali.DefaultConfig()
			cfg.QueueDepth = d
			rep, err := trainer.Simulate(cfgA, w, loaders.DALI(cfg), trainer.Params{})
			if err != nil {
				return nil, fmt.Errorf("fig4b %s depth=%d: %w", w.Name, d, err)
			}
			tb.Rows = append(tb.Rows, []string{w.Name, fmt.Sprint(d), report.Seconds(rep.TrainTime)})
		}
	}

	res := &Result{ID: "fig4", Title: "Fig 4", Tables: []report.Table{ta, tb},
		Notes: []string{"Takeaway 4: increasing prefetching does not reduce per-sample transformation cost, so training time stays flat"}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "fig4a_pytorch_prefetch", ta); err != nil {
			return nil, err
		}
		if err := report.WriteTableCSV(o.OutDir, "fig4b_dali_queue", tb); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func sortRows(rows [][]string) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j][0] < rows[j-1][0]; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}
