package experiments

import (
	"fmt"

	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/report"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

func init() {
	register("fig7", "End-to-end throughput and training time, all loaders × workloads (Fig 7)", runFig7)
	register("fig8", "CPU and GPU usage, all loaders × workloads (Fig 8)", runFig8)
	register("fig1b", "PyTorch DataLoader CPU/GPU usage during 3D-UNet training (Fig 1b)", runFig1b)
}

// scaleWorkload shrinks run lengths in Quick mode while preserving shape.
func scaleWorkload(w workload.Workload, quick bool) workload.Workload {
	if !quick {
		return w
	}
	if w.Iterations > 0 {
		return w.WithIterations(w.Iterations / 5)
	}
	if w.Epochs > 5 {
		return w.WithEpochs(w.Epochs / 5)
	}
	return w
}

func runFig7(o Options) (*Result, error) {
	cfg := hardware.ConfigA()
	t := report.Table{
		Title:  "End-to-end training, Config A (4×A100)",
		Header: append([]string{"workload"}, loaderHeader...),
	}
	for _, w := range workload.All(o.seed()) {
		w := scaleWorkload(w, o.Quick)
		for _, f := range loaders.Defaults() {
			if f.Name == "pecan" && w.Name == "img-seg" {
				// §5.2: img-seg transformations are already optimally
				// ordered; Pecan equals PyTorch and the paper omits it.
				continue
			}
			rep, err := trainer.Simulate(cfg, w, f, trainer.Params{Collect: true})
			if err != nil {
				return nil, fmt.Errorf("fig7 %s/%s: %w", w.Name, f.Name, err)
			}
			t.Rows = append(t.Rows, append([]string{w.Name}, loaderRow(rep)...))
			if err := writeSeries(o, fmt.Sprintf("fig7_%s_%s", w.Name, f.Name), rep, "throughput"); err != nil {
				return nil, err
			}
		}
	}
	res := &Result{ID: "fig7", Title: "Fig 7", Tables: []report.Table{t},
		Notes: []string{"throughput time series written as fig7_<workload>_<loader>.csv when -out is set"}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "fig7_summary", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func runFig8(o Options) (*Result, error) {
	cfg := hardware.ConfigA()
	t := report.Table{
		Title:  "Average CPU and GPU usage, Config A (4×A100)",
		Header: []string{"workload", "loader", "gpu_util", "cpu_util"},
	}
	for _, w := range workload.All(o.seed()) {
		w := scaleWorkload(w, o.Quick)
		for _, f := range loaders.Defaults() {
			if f.Name == "pecan" {
				// §5.3: Pecan's utilization mirrors PyTorch's; the paper
				// omits it from this analysis.
				continue
			}
			rep, err := trainer.Simulate(cfg, w, f, trainer.Params{Collect: true})
			if err != nil {
				return nil, fmt.Errorf("fig8 %s/%s: %w", w.Name, f.Name, err)
			}
			t.Rows = append(t.Rows, []string{w.Name, f.Name,
				report.Pct(rep.AvgGPUUtil), report.Pct(rep.AvgCPUUtil)})
			if err := writeSeries(o, fmt.Sprintf("fig8_%s_%s", w.Name, f.Name), rep, "cpu", "gpu"); err != nil {
				return nil, err
			}
		}
	}
	res := &Result{ID: "fig8", Title: "Fig 8", Tables: []report.Table{t}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "fig8_summary", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func runFig1b(o Options) (*Result, error) {
	// §3.3: PyTorch DataLoader, 12 workers, image segmentation. The paper
	// plots a ~90 s window of CPU/GPU usage on the V100 testbed.
	cfg := hardware.ConfigB()
	w := workload.ImageSegmentation(o.seed()).WithEpochs(10)
	if o.Quick {
		w = w.WithEpochs(3)
	}
	f, _ := loaders.ByName("pytorch")
	rep, err := trainer.Simulate(cfg, w, f, trainer.Params{Collect: true})
	if err != nil {
		return nil, err
	}
	t := report.Table{
		Title:  "PyTorch DataLoader during 3D-UNet training (Config B)",
		Header: []string{"metric", "average"},
		Rows: [][]string{
			{"CPU usage", report.Pct(rep.AvgCPUUtil)},
			{"GPU usage", report.Pct(rep.AvgGPUUtil)},
			{"training time (s)", report.Seconds(rep.TrainTime)},
		},
	}
	res := &Result{ID: "fig1b", Title: "Fig 1b", Tables: []report.Table{t},
		Notes: []string{"paper reports CPU ≈9.8%, GPU ≈57.4% on its testbed; CPU/GPU series in fig1b.csv"}}
	if err := writeSeries(o, "fig1b", rep, "cpu", "gpu"); err != nil {
		return nil, err
	}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "fig1b_summary", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}
