package experiments

import (
	"fmt"
	"time"

	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/report"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

func init() {
	register("fig11a", "Accuracy preservation and time-to-accuracy (Fig 11a)", runFig11a)
	register("fig11b", "Distribution of batches by slow-sample count (Fig 11b)", runFig11b)
	register("fig11c", "Proportion of slow samples over iterations (Fig 11c)", runFig11c)
	register("fig12", "Training time vs proportion of slow samples (Fig 12)", runFig12)
}

func runFig11a(o Options) (*Result, error) {
	// The paper trains Mask R-CNN for 45,000 iterations (≈14 h) and
	// 3D-UNet for 500 epochs. We run a 10×-scaled version (identical
	// curve, scaled convergence constant) — the claim under test is that
	// both loaders traverse the same accuracy-vs-iteration curve while
	// MinatoLoader reaches any accuracy level sooner in wall time.
	scale := 10
	if o.Quick {
		scale = 100
	}
	cfg := hardware.ConfigA()

	obj := workload.ObjectDetection(o.seed()).WithIterations(45000 / scale)
	obj.AccTau /= float64(scale)
	img := workload.ImageSegmentation(o.seed()).WithEpochs(500 / scale)
	img.AccTau /= float64(scale)

	t := report.Table{
		Title:  "Accuracy preservation (10×-scaled runs)",
		Header: []string{"workload", "loader", "final_acc", "train_s", "time_to_90pct_acc_s"},
	}
	for _, w := range []workload.Workload{obj, img} {
		for _, name := range []string{"pytorch", "minato"} {
			f, _ := loaders.ByName(name)
			rep, err := trainer.Simulate(cfg, w, f,
				trainer.Params{TrackComposition: true, AccuracyEvery: 10})
			if err != nil {
				return nil, fmt.Errorf("fig11a %s/%s: %w", w.Name, name, err)
			}
			final := 0.0
			tto := 0.0
			if n := len(rep.AccCurve); n > 0 {
				final = rep.AccCurve[n-1].Accuracy
				target := 0.9 * w.AccFinal
				for _, pt := range rep.AccCurve {
					if pt.Accuracy >= target {
						tto = pt.Elapsed.Seconds()
						break
					}
				}
			}
			t.Rows = append(t.Rows, []string{w.Name, name,
				report.F(final, 3), report.Seconds(rep.TrainTime), report.F(tto, 1)})
			if o.OutDir != "" {
				rows := make([][]string, 0, len(rep.AccCurve))
				for _, pt := range rep.AccCurve {
					rows = append(rows, []string{fmt.Sprint(pt.Iter),
						report.F(pt.Elapsed.Seconds(), 1), report.F(pt.Accuracy, 4)})
				}
				if err := report.WriteCSV(o.OutDir, fmt.Sprintf("fig11a_%s_%s", w.Name, name),
					[]string{"iter", "elapsed_s", "accuracy"}, rows); err != nil {
					return nil, err
				}
			}
		}
	}
	res := &Result{ID: "fig11a", Title: "Fig 11a", Tables: []report.Table{t},
		Notes: []string{
			"both loaders reach the same final accuracy; MinatoLoader gets there faster in wall time",
			"paper: Mask R-CNN 5h12m vs 13h55m; 3D-UNet 3h52m vs 8h02m on the authors' testbed",
		}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "fig11a_summary", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// fig11Workloads builds the batch-size-4 variants used by Fig 11b/c.
func fig11Workloads(o Options) []workload.Workload {
	obj := workload.ObjectDetection(o.seed())
	obj.BatchSize = 4
	obj.Iterations = 1500
	img := workload.ImageSegmentation(o.seed())
	img.BatchSize = 4
	img.Epochs = 20
	if o.Quick {
		obj.Iterations = 300
		img.Epochs = 5
	}
	return []workload.Workload{obj, img}
}

func runFig11b(o Options) (*Result, error) {
	cfg := hardware.ConfigA()
	t := report.Table{
		Title:  "Distribution of batches by number of slow samples (batch size 4)",
		Header: []string{"workload", "loader", "0", "1", "2", "3", "4", "avg_slow_prop"},
	}
	for _, w := range fig11Workloads(o) {
		for _, name := range []string{"pytorch", "minato"} {
			f, _ := loaders.ByName(name)
			rep, err := trainer.Simulate(cfg, w, f, trainer.Params{TrackComposition: true})
			if err != nil {
				return nil, fmt.Errorf("fig11b %s/%s: %w", w.Name, name, err)
			}
			row := []string{w.Name, name}
			var total int64
			for _, n := range rep.SlowHist {
				total += n
			}
			for _, n := range rep.SlowHist {
				row = append(row, report.F(float64(n)/float64(total), 3))
			}
			row = append(row, report.F(rep.AvgSlowProportion(), 3))
			t.Rows = append(t.Rows, row)
		}
	}
	res := &Result{ID: "fig11b", Title: "Fig 11b", Tables: []report.Table{t},
		Notes: []string{"similar distributions across loaders: MinatoLoader does not bias batch composition (§5.6)"}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "fig11b", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func runFig11c(o Options) (*Result, error) {
	cfg := hardware.ConfigA()
	t := report.Table{
		Title:  "Slow-sample proportion over training iterations",
		Header: []string{"workload", "loader", "avg_slow_prop", "first_half", "second_half"},
	}
	for _, w := range fig11Workloads(o) {
		for _, name := range []string{"pytorch", "minato"} {
			f, _ := loaders.ByName(name)
			rep, err := trainer.Simulate(cfg, w, f, trainer.Params{TrackComposition: true})
			if err != nil {
				return nil, fmt.Errorf("fig11c %s/%s: %w", w.Name, name, err)
			}
			props := rep.SlowPropByIt
			half := len(props) / 2
			t.Rows = append(t.Rows, []string{w.Name, name,
				report.F(rep.AvgSlowProportion(), 3),
				report.F(mean(props[:half]), 3),
				report.F(mean(props[half:]), 3)})
			if o.OutDir != "" {
				rows := make([][]string, 0, len(props))
				for i, p := range props {
					rows = append(rows, []string{fmt.Sprint(i), report.F(p, 3)})
				}
				if err := report.WriteCSV(o.OutDir, fmt.Sprintf("fig11c_%s_%s", w.Name, name),
					[]string{"iteration", "slow_proportion"}, rows); err != nil {
					return nil, err
				}
			}
		}
	}
	res := &Result{ID: "fig11c", Title: "Fig 11c", Tables: []report.Table{t},
		Notes: []string{
			"slow samples join batches as soon as ready — the proportion stays flat over the run rather than spiking at the end (§5.6)",
			"paper averages: PyTorch 0.15/0.23, Minato 0.17/0.24 for obj-det/img-seg",
		}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "fig11c_summary", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func runFig12(o Options) (*Result, error) {
	// §5.6 "Cluster of slow samples": Speech-3s with HeavyStep applied to
	// a configurable fraction of the dataset. Single GPU so the edge cases
	// are GPU-bound for every loader (see EXPERIMENTS.md discussion).
	cfg := hardware.ConfigA().WithGPUs(1)
	iters := 1000
	if o.Quick {
		iters = 200
	}
	fractions := []float64{0, 0.25, 0.50, 0.75, 1.0}
	if o.Quick {
		fractions = []float64{0, 0.50, 1.0}
	}
	t := report.Table{
		Title:  "Training time (s) vs proportion of slow samples (Speech-3s)",
		Header: []string{"slow_pct", "pytorch", "pecan", "dali", "minato"},
	}
	for _, frac := range fractions {
		w := workload.SpeechSlowFraction(o.seed(), frac).WithIterations(iters)
		row := []string{report.F(frac*100, 0)}
		for _, f := range loaders.Defaults() {
			rep, err := trainer.Simulate(cfg, w, f, trainer.Params{})
			if err != nil {
				return nil, fmt.Errorf("fig12 %.0f%%/%s: %w", frac*100, f.Name, err)
			}
			row = append(row, report.Seconds(rep.TrainTime))
		}
		t.Rows = append(t.Rows, row)
	}
	res := &Result{ID: "fig12", Title: "Fig 12", Tables: []report.Table{t},
		Notes: []string{"largest gains in the intermediate range where per-sample variability exists (§5.6)"}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "fig12", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

var _ = time.Second
