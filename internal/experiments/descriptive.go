package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/report"
	"github.com/minatoloader/minato/internal/stats"
	"github.com/minatoloader/minato/internal/transform"
	"github.com/minatoloader/minato/internal/workload"
)

func init() {
	register("table1", "Preprocessing pipelines per workload (Table 1)", runTable1)
	register("table3", "Training configurations per workload (Table 3)", runTable3)
	register("table2", "Per-sample preprocessing time statistics (Table 2)", runTable2)
	register("fig2", "Per-sample preprocessing time variability (Fig 2)", runFig2)
}

func runTable1(o Options) (*Result, error) {
	t := report.Table{
		Title:  "Preprocessing pipelines",
		Header: []string{"workload", "pipeline"},
	}
	for _, w := range workload.All(o.seed()) {
		t.Rows = append(t.Rows, []string{w.Name, strings.Join(w.Table1Row(), " -> ")})
	}
	res := &Result{ID: "table1", Title: "Table 1", Tables: []report.Table{t}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "table1", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func runTable3(o Options) (*Result, error) {
	t := report.Table{
		Title:  "Training configurations",
		Header: []string{"workload", "model", "epochs", "iterations", "batch_size"},
	}
	for _, w := range workload.All(o.seed()) {
		ep, it := "-", "-"
		if w.Epochs > 0 {
			ep = fmt.Sprint(w.Epochs)
		}
		if w.Iterations > 0 {
			it = fmt.Sprint(w.Iterations)
		}
		t.Rows = append(t.Rows, []string{w.Name, w.Model, ep, it, fmt.Sprint(w.BatchSize)})
	}
	res := &Result{ID: "table3", Title: "Table 3", Tables: []report.Table{t}}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "table3", t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// table2Paper holds the paper's Table 2 for side-by-side comparison (ms).
var table2Paper = map[string]stats.Summary{
	"img-seg":    {Avg: 500, Med: 470, P75: 630, P90: 750, Min: 10, Max: 2230, Std: 197},
	"obj-det":    {Avg: 31, Med: 28, P75: 30, P90: 35, Min: 11, Max: 176, Std: 19},
	"speech-3s":  {Avg: 998, Med: 508, P75: 509, P90: 3008, Min: 502, Max: 3017, Std: 992},
	"speech-10s": {Avg: 2351, Med: 508, P75: 509, P90: 10008, Min: 502, Max: 10014, Std: 3757},
}

func runTable2(o Options) (*Result, error) {
	n := 20000
	if o.Quick {
		n = 4000
	}
	t := report.Table{
		Title:  "Preprocessing time per workload (ms); 'paper' rows are the published Table 2",
		Header: []string{"workload", "source", "avg", "med", "p75", "p90", "min", "max", "std"},
	}
	var csvRows [][]string
	for _, w := range workload.All(o.seed()) {
		count := n
		if w.Dataset.Len() < count {
			count = w.Dataset.Len()
		}
		vals := make([]float64, 0, count)
		for i := 0; i < count; i++ {
			s := w.Dataset.Sample(0, i)
			vals = append(vals, float64(w.Pipeline.TotalCost(s))/float64(time.Millisecond))
		}
		got := stats.Summarize(vals)
		paper := table2Paper[w.Name]
		t.Rows = append(t.Rows,
			summaryRow(w.Name, "measured", got),
			summaryRow(w.Name, "paper", paper))
		csvRows = append(csvRows, summaryRow(w.Name, "measured", got), summaryRow(w.Name, "paper", paper))
	}
	res := &Result{ID: "table2", Title: "Table 2", Tables: []report.Table{t}}
	if o.OutDir != "" {
		if err := report.WriteCSV(o.OutDir, "table2", t.Header, csvRows); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func summaryRow(name, src string, s stats.Summary) []string {
	return []string{name, src,
		report.F(s.Avg, 0), report.F(s.Med, 0), report.F(s.P75, 0), report.F(s.P90, 0),
		report.F(s.Min, 0), report.F(s.Max, 0), report.F(s.Std, 0)}
}

func runFig2(o Options) (*Result, error) {
	const samples = 25
	mk := func(w workload.Workload, ds dataset.Dataset, p *transform.Pipeline) (report.Table, float64) {
		t := report.Table{
			Title:  fmt.Sprintf("Per-sample preprocessing time, %s (%s)", w.Name, w.Model),
			Header: []string{"sample", "time_ms"},
		}
		sum := 0.0
		for i := 0; i < samples; i++ {
			s := ds.Sample(0, i)
			ms := float64(p.TotalCost(s)) / float64(time.Millisecond)
			sum += ms
			t.Rows = append(t.Rows, []string{fmt.Sprint(i), report.F(ms, 1)})
		}
		return t, sum / samples
	}
	img := workload.ImageSegmentation(o.seed())
	obj := workload.ObjectDetection(o.seed())
	tImg, avgImg := mk(img, img.Dataset, img.Pipeline)
	tObj, avgObj := mk(obj, obj.Dataset, obj.Pipeline)
	res := &Result{
		ID: "fig2", Title: "Fig 2: preprocessing time variability",
		Tables: []report.Table{tImg, tObj},
		Notes: []string{
			fmt.Sprintf("img-seg average %.0f ms (paper: ≈500 ms red line)", avgImg),
			fmt.Sprintf("obj-det average %.0f ms (paper: ≈35 ms red line)", avgObj),
		},
	}
	if o.OutDir != "" {
		if err := report.WriteTableCSV(o.OutDir, "fig2a_imgseg", tImg); err != nil {
			return nil, err
		}
		if err := report.WriteTableCSV(o.OutDir, "fig2b_objdet", tObj); err != nil {
			return nil, err
		}
	}
	return res, nil
}
