package trainer_test

import (
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/core"
	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loader/dali"
	"github.com/minatoloader/minato/internal/loader/pecan"
	"github.com/minatoloader/minato/internal/loader/pytorch"
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

// smallSpeech is a scaled-down Speech-3s: enough iterations to exercise
// warmup, classification, and adaptive scaling, small enough for unit tests.
func smallSpeech(iters int) workload.Workload {
	w := workload.Speech(1, 3*time.Second)
	w.Dataset = dataset.Subset(w.Dataset, 2000)
	return w.WithIterations(iters)
}

func smallImgSeg(epochs int) workload.Workload {
	return workload.ImageSegmentation(1).WithEpochs(epochs)
}

func testbedA(gpus int) hardware.Config {
	return hardware.ConfigA().WithGPUs(gpus)
}

func TestPyTorchDeliversBudget(t *testing.T) {
	w := smallSpeech(20)
	rep, err := trainer.Simulate(testbedA(2), w, loaders.PyTorch(pytorch.DefaultConfig()), trainer.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 20 {
		t.Fatalf("batches = %d, want 20", rep.Batches)
	}
	if rep.Samples != 20*24 {
		t.Fatalf("samples = %d", rep.Samples)
	}
	if rep.TrainTime <= 0 {
		t.Fatal("zero train time")
	}
}

func TestMinatoDeliversBudget(t *testing.T) {
	w := smallSpeech(20)
	rep, err := trainer.Simulate(testbedA(2), w, loaders.Minato(core.DefaultConfig()), trainer.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 20 {
		t.Fatalf("batches = %d, want 20", rep.Batches)
	}
}

func TestDALIDeliversBudget(t *testing.T) {
	w := smallSpeech(20)
	rep, err := trainer.Simulate(testbedA(2), w, loaders.DALI(dali.DefaultConfig()), trainer.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 20 {
		t.Fatalf("batches = %d, want 20", rep.Batches)
	}
}

func TestPecanDeliversBudget(t *testing.T) {
	w := smallSpeech(20)
	rep, err := trainer.Simulate(testbedA(2), w, loaders.Pecan(pecan.DefaultConfig()), trainer.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 20 {
		t.Fatalf("batches = %d, want 20", rep.Batches)
	}
}

func TestEpochBasedBudget(t *testing.T) {
	w := smallImgSeg(2) // 2 epochs × 70 batches
	rep, err := trainer.Simulate(testbedA(2), w, loaders.Minato(core.DefaultConfig()), trainer.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(2 * 70); rep.Batches != want {
		t.Fatalf("batches = %d, want %d", rep.Batches, want)
	}
}

// TestMinatoFasterThanPyTorchOnSpeech is the headline claim at unit-test
// scale: with heavy per-sample variability, MinatoLoader beats the PyTorch
// DataLoader substantially.
func TestMinatoFasterThanPyTorchOnSpeech(t *testing.T) {
	w := smallSpeech(60)
	pt, err := trainer.Simulate(testbedA(2), w, loaders.PyTorch(pytorch.DefaultConfig()), trainer.Params{})
	if err != nil {
		t.Fatal(err)
	}
	mn, err := trainer.Simulate(testbedA(2), w, loaders.Minato(core.DefaultConfig()), trainer.Params{})
	if err != nil {
		t.Fatal(err)
	}
	speedup := pt.TrainTime.Seconds() / mn.TrainTime.Seconds()
	t.Logf("pytorch=%.1fs minato=%.1fs speedup=%.2fx (pytorch GPU %.0f%%, minato GPU %.0f%%)",
		pt.TrainTime.Seconds(), mn.TrainTime.Seconds(), speedup, pt.AvgGPUUtil, mn.AvgGPUUtil)
	if speedup < 1.5 {
		t.Fatalf("speedup = %.2fx, want > 1.5x", speedup)
	}
	if mn.AvgGPUUtil <= pt.AvgGPUUtil {
		t.Fatalf("minato GPU util %.0f%% not above pytorch %.0f%%", mn.AvgGPUUtil, pt.AvgGPUUtil)
	}
}

func TestMetricsSeriesCollected(t *testing.T) {
	w := smallSpeech(20)
	rep, err := trainer.Simulate(testbedA(2), w, loaders.Minato(core.DefaultConfig()),
		trainer.Params{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu", "gpu", "disk", "throughput", "minato_workers"} {
		ts, ok := rep.Series[name]
		if !ok || len(ts.Points) == 0 {
			t.Fatalf("series %q missing or empty", name)
		}
	}
}

func TestCompositionTracked(t *testing.T) {
	w := smallSpeech(30)
	rep, err := trainer.Simulate(testbedA(2), w, loaders.Minato(core.DefaultConfig()),
		trainer.Params{TrackComposition: true, AccuracyEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	var hist int64
	for _, n := range rep.SlowHist {
		hist += n
	}
	if hist != rep.Batches {
		t.Fatalf("histogram covers %d batches, want %d", hist, rep.Batches)
	}
	// Speech-3s: 20% of samples are heavy; batches should reflect that on
	// average without deferring slow samples to the end (§5.6).
	if got := rep.AvgSlowProportion(); got < 0.10 || got > 0.35 {
		t.Fatalf("avg slow proportion = %.2f, want ≈0.2", got)
	}
	if len(rep.AccCurve) == 0 {
		t.Fatal("no accuracy points")
	}
}

func TestSampleTraceRecorded(t *testing.T) {
	w := smallSpeech(10)
	rep, err := trainer.Simulate(testbedA(2), w, loaders.Minato(core.DefaultConfig()),
		trainer.Params{TraceSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rep.SampleTraces)) != rep.Samples {
		t.Fatalf("trace has %d entries, want %d", len(rep.SampleTraces), rep.Samples)
	}
	for _, tr := range rep.SampleTraces {
		if tr.PreprocEnd < tr.PreprocStart {
			t.Fatalf("negative preprocessing window: %+v", tr)
		}
		if tr.TrainedAt < tr.PreprocEnd {
			t.Fatalf("sample trained before preprocessing finished: %+v", tr)
		}
		if tr.PreprocCost <= 0 {
			t.Fatalf("zero preprocessing cost: %+v", tr)
		}
	}
	dir := t.TempDir()
	if err := rep.WriteTraceCSV(dir, "trace"); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	w := smallSpeech(15)
	a, err := trainer.Simulate(testbedA(2), w, loaders.PyTorch(pytorch.DefaultConfig()), trainer.Params{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := trainer.Simulate(testbedA(2), w, loaders.PyTorch(pytorch.DefaultConfig()), trainer.Params{})
	if err != nil {
		t.Fatal(err)
	}
	// Virtual time makes results time-accurate; scheduling jitter at equal
	// timestamps allows small variation, but totals must match and times
	// must be close.
	if a.Batches != b.Batches || a.Samples != b.Samples {
		t.Fatalf("run totals differ: %+v vs %+v", a, b)
	}
	ratio := a.TrainTime.Seconds() / b.TrainTime.Seconds()
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("train times differ by >5%%: %v vs %v", a.TrainTime, b.TrainTime)
	}
}
