package trainer_test

import (
	"context"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/core"
	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

// TestTrainingSurvivesDiskDegradation injects an 8× storage slowdown in
// the middle of an image-segmentation run (large reads, so storage
// matters) and checks the session still completes every batch — loaders
// must tolerate transient I/O contention, which §5.3 observes on the
// shared Lustre filesystem.
func TestTrainingSurvivesDiskDegradation(t *testing.T) {
	w := workload.ImageSegmentation(1).WithEpochs(3)
	// Memory-constrained so every epoch re-reads storage: the disk path
	// stays on the critical path for the whole run.
	cfg := hardware.ConfigB().WithGPUs(4).WithMemoryLimit(20 << 30)

	run := func(chaos bool) *trainer.Report {
		k := simtime.NewVirtual()
		var rep *trainer.Report
		var err error
		k.Run(func() {
			tb := hardware.NewTestbed(k, cfg)
			if chaos {
				// Strike early (the loader prefetches aggressively) and
				// keep the disk degraded across most of the run.
				k.Go("chaos", func() {
					_ = k.Sleep(context.Background(), 2*time.Second)
					tb.Disk.SetSlowdown(16)
					_ = k.Sleep(context.Background(), 90*time.Second)
					tb.Disk.SetSlowdown(1)
				})
			}
			rep, err = trainer.Run(k, tb, w, loaders.Minato(core.DefaultConfig()), trainer.Params{})
		})
		k.Drain()
		if err != nil {
			t.Fatalf("run(chaos=%v): %v", chaos, err)
		}
		return rep
	}

	base := run(false)
	degraded := run(true)

	if degraded.Batches != base.Batches {
		t.Fatalf("degraded run delivered %d batches, baseline %d", degraded.Batches, base.Batches)
	}
	// The 8× slowdown over a 40-second window must visibly stretch a run
	// whose storage path is on the critical path.
	if degraded.TrainTime < base.TrainTime+10*time.Second {
		t.Fatalf("degraded run (%v) not clearly slower than baseline (%v)", degraded.TrainTime, base.TrainTime)
	}
	t.Logf("baseline=%.1fs degraded=%.1fs (+%.0f%%)",
		base.TrainTime.Seconds(), degraded.TrainTime.Seconds(),
		100*(degraded.TrainTime.Seconds()/base.TrainTime.Seconds()-1))
}

// TestSlowdownHurtsPyTorchMoreUnderMemoryPressure pins a qualitative
// claim of §5.5 at test scale: with the dataset far larger than the page
// cache, the loader that pipelines storage reads (Minato) absorbs disk
// degradation better than the synchronous baseline.
func TestSlowdownHurtsPyTorchMoreUnderMemoryPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison")
	}
	const gib = int64(1) << 30
	cfg := hardware.ConfigB().WithMemoryLimit(20 * gib) // cache ≪ dataset
	w := workload.ImageSegmentation(1).WithEpochs(2)

	times := map[string]float64{}
	for _, name := range []string{"pytorch", "minato"} {
		f, _ := loaders.ByName(name)
		rep, err := trainer.Simulate(cfg, w, f, trainer.Params{})
		if err != nil {
			t.Fatal(err)
		}
		times[name] = rep.TrainTime.Seconds()
		if rep.CacheStats.Hits > rep.CacheStats.Misses {
			t.Fatalf("%s: cache hits dominate under a 20 GiB cap?", name)
		}
	}
	if times["minato"] >= times["pytorch"] {
		t.Fatalf("minato (%.1fs) not faster than pytorch (%.1fs) under memory pressure",
			times["minato"], times["pytorch"])
	}
}
