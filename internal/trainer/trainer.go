// Package trainer drives end-to-end training sessions: per-GPU consumer
// tasks pull batches from a data loader, pay the host-to-device copy when
// the loader has not prefetched, and occupy their GPU for the workload's
// step cost. The trainer records everything the paper's evaluation reports:
// training time, throughput over time, CPU/GPU utilization, disk reads,
// accuracy-vs-iteration curves, and batch-composition statistics.
package trainer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/minatoloader/minato/internal/chaos"
	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/matcache"
	"github.com/minatoloader/minato/internal/metrics"
	"github.com/minatoloader/minato/internal/report"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/stats"
	"github.com/minatoloader/minato/internal/storage"
	"github.com/minatoloader/minato/internal/trace"
	"github.com/minatoloader/minato/internal/workload"
)

// Factory builds a loader for a session. Loader packages provide adapters.
type Factory struct {
	Name string
	New  func(env *loader.Env, spec loader.Spec) loader.Loader
}

// Params tunes what a session records.
type Params struct {
	// Collect enables time-series sampling (CPU/GPU/disk/throughput).
	Collect bool
	// MetricsInterval is the sampling period (default 1s of virtual time).
	MetricsInterval time.Duration
	// CopyBandwidth is the host-to-device PCIe bandwidth for loaders that
	// do not prefetch to the GPU (default 16 GB/s).
	CopyBandwidth float64
	// TrackComposition enables Fig 11's per-batch slow-sample accounting.
	TrackComposition bool
	// SlowThresholdPercentile classifies samples for composition analysis
	// (default 0.75, matching MinatoLoader's profiler).
	SlowThresholdPercentile float64
	// AccuracyEvery records an accuracy point every N global iterations
	// (default 50).
	AccuracyEvery int
	// TraceSamples records a per-sample timeline (load, preprocessing
	// window, classification, delivery) into Report.SampleTraces — the raw
	// material for pipeline forensics. Costs memory proportional to the
	// sample count.
	TraceSamples bool
	// Trace, when non-nil, records deterministic spans from every layer of
	// the session (storage, caches, workers, devices, consumer steps,
	// chaos) into the given recorder — the input for Report.Trace,
	// Report.CriticalPath, and the Perfetto exporter. Nil disables tracing
	// at zero hot-path cost.
	Trace *trace.Recorder
	// Chaos is an optional fault-injection script replayed against the
	// session: worker stalls, disk brownouts, preemption/resume. Callers
	// validate it for a single-machine run (Script.Validate(0)) before
	// starting; the zero value injects nothing.
	Chaos chaos.Script
}

func (p *Params) fillDefaults() {
	if p.MetricsInterval <= 0 {
		p.MetricsInterval = time.Second
	}
	if p.CopyBandwidth <= 0 {
		p.CopyBandwidth = 16e9
	}
	if p.SlowThresholdPercentile <= 0 {
		p.SlowThresholdPercentile = 0.75
	}
	if p.AccuracyEvery <= 0 {
		p.AccuracyEvery = 50
	}
}

// AccPoint is one accuracy-curve sample (Fig 11a).
type AccPoint struct {
	Iter     int64
	Elapsed  time.Duration
	Accuracy float64
}

// SampleTrace is one sample's pipeline timeline.
type SampleTrace struct {
	Index        int
	Epoch        int
	RawBytes     int64
	LoadedAt     time.Duration
	PreprocStart time.Duration
	PreprocEnd   time.Duration
	PreprocCost  time.Duration
	MarkedSlow   bool
	TimesResumed int
	BatchSeq     int64
	TrainedAt    time.Duration
	GPU          int
}

// Report is the outcome of one training session.
type Report struct {
	Workload string
	Loader   string
	GPUs     int

	TrainTime time.Duration
	Batches   int64
	Samples   int64
	// TrainedBytes is the cumulative processed size trained, the paper's
	// throughput numerator (§5.1).
	TrainedBytes int64

	// Average utilizations in percent, over the whole run.
	AvgGPUUtil float64
	AvgCPUUtil float64

	// Time series when Params.Collect is set: "cpu", "gpu" (percent),
	// "disk" (bytes/s), "throughput" (bytes/s), plus loader-specific
	// gauges (e.g. minato_workers).
	Series map[string]*stats.TimeSeries

	// Composition (Fig 11) when Params.TrackComposition is set.
	SlowThreshold time.Duration
	SlowHist      []int64    // batches by number of slow samples (0..BatchSize)
	SlowPropByIt  []float64  // per-iteration slow proportion, delivery order
	AccCurve      []AccPoint // accuracy curve (Fig 11a)

	CacheStats storage.CacheStats
	DiskBytes  int64
	// MatCacheStats snapshots the materialized preprocessed-sample cache
	// (per-tenant on a shared substrate, whole-cache otherwise); zero when
	// the cache is not enabled.
	MatCacheStats matcache.Stats

	// SampleTraces holds per-sample timelines when Params.TraceSamples is
	// set, in delivery order.
	SampleTraces []SampleTrace

	// StallBreakdown attributes the session's consumer stalls (DataStall;
	// the barrier and network fields stay zero on a single machine), the
	// step-time quantiles, and the absorbed fault windows. When tracing is
	// enabled the critical-path analyzer is the source; otherwise the
	// consumers' stall counters fill it — both are stamped at the same
	// virtual instants.
	report.StallBreakdown
	// PreemptStall is the total time consumers spent parked by Preempt
	// events (across GPUs).
	PreemptStall time.Duration

	// StepHist is the step-interval histogram behind StepP50/StepP99,
	// exportable through WritePrometheus.
	StepHist *stats.LogHist

	// spans memoizes the session's recorded trace; rec is the live
	// recorder it snapshots from on first use.
	spans []trace.Span
	rec   *trace.Recorder
}

// Trace returns the session's recorded spans in canonical order (nil when
// tracing was disabled). The snapshot is taken lazily on first call — a
// traced run that never reads its trace pays nothing for the
// canonicalize-and-sort — and memoized, so read it before resetting the
// sink the session recorded into.
func (r *Report) Trace() []trace.Span {
	if r.spans == nil && r.rec.Enabled() {
		r.spans = r.rec.Snapshot()
	}
	return r.spans
}

// CriticalPath reassembles each delivered batch's latency attribution
// from the recorded trace (nil when tracing was disabled).
func (r *Report) CriticalPath() []trace.BatchPath {
	return trace.CriticalPath(r.Trace())
}

// SetTrace installs a recorded span set (callers outside the trainer
// assemble reports too, e.g. loading sessions).
func (r *Report) SetTrace(spans []trace.Span) { r.spans = spans }

// WriteTraceCSV exports the sample trace for offline analysis.
func (r *Report) WriteTraceCSV(dir, name string) error {
	header := []string{"index", "epoch", "raw_bytes", "loaded_s", "preproc_start_s",
		"preproc_end_s", "preproc_cost_ms", "slow", "resumed", "batch_seq", "trained_s", "gpu"}
	rows := make([][]string, 0, len(r.SampleTraces))
	for _, tr := range r.SampleTraces {
		rows = append(rows, []string{
			fmt.Sprint(tr.Index), fmt.Sprint(tr.Epoch), fmt.Sprint(tr.RawBytes),
			fmt.Sprintf("%.3f", tr.LoadedAt.Seconds()),
			fmt.Sprintf("%.3f", tr.PreprocStart.Seconds()),
			fmt.Sprintf("%.3f", tr.PreprocEnd.Seconds()),
			fmt.Sprintf("%.1f", float64(tr.PreprocCost)/float64(time.Millisecond)),
			fmt.Sprint(tr.MarkedSlow), fmt.Sprint(tr.TimesResumed),
			fmt.Sprint(tr.BatchSeq),
			fmt.Sprintf("%.3f", tr.TrainedAt.Seconds()),
			fmt.Sprint(tr.GPU),
		})
	}
	return report.WriteCSV(dir, name, header, rows)
}

// WritePrometheus exports the session's collected metrics as Prometheus
// text format: one gauge per time series (Params.Collect) and the
// step-interval histogram when SLO tracking ran. Deterministic byte output
// for a deterministic run.
func (r *Report) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(r.Series))
	for name := range r.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	series := make([]metrics.SeriesSnapshot, 0, len(names))
	for _, name := range names {
		series = append(series, metrics.SeriesSnapshot{Name: name, Points: r.Series[name].Points})
	}
	var hists []metrics.HistSnapshot
	if r.StepHist != nil && r.StepHist.N() > 0 {
		hists = append(hists, metrics.HistSnapshot{Name: "step_interval_seconds", Hist: r.StepHist})
	}
	return metrics.WritePrometheus(w, series, hists)
}

// Throughput returns average trained MB/s over the run.
func (r *Report) Throughput() float64 {
	sec := r.TrainTime.Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(r.TrainedBytes) / 1e6 / sec
}

// AvgSlowProportion returns the mean per-batch slow-sample proportion.
func (r *Report) AvgSlowProportion() float64 {
	if len(r.SlowPropByIt) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range r.SlowPropByIt {
		sum += v
	}
	return sum / float64(len(r.SlowPropByIt))
}

// Run executes one training session on an existing testbed. It must be
// called from a task tracked by the runtime (e.g. inside Virtual.Run).
func Run(rt simtime.Runtime, tb *hardware.Testbed, w workload.Workload, f Factory, p Params) (*Report, error) {
	env := &loader.Env{RT: rt, CPU: tb.CPU, GPUs: tb.GPUs, Store: tb.Store,
		WG: simtime.NewWaitGroup(rt), Pool: data.NewPool()}
	return RunEnv(env, tb.Disk, tb.Cache, w, f, p)
}

// RunEnv executes one training session over an existing environment — the
// entry point for clusters, whose sessions share one runtime, CPU, GPU set,
// disk, cache, and pool. The env's WG must be private to this session (it is
// waited on during teardown); disk and cache may be nil when the env has no
// storage statistics to report. Cache statistics in the report are
// attributed to env.Store.Tenant when the store routes a registered tenant,
// so co-running sessions see their own hits, not the cluster total. Like
// Run, it must be called from a task tracked by the runtime.
func RunEnv(env *loader.Env, disk *storage.Disk, cache *storage.PageCache, w workload.Workload, f Factory, p Params) (*Report, error) {
	p.fillDefaults()
	ctx := context.Background()

	rt := env.RT
	wg := env.WG
	if p.Trace != nil {
		// Installed before the loader is built, so its background tasks see
		// the recorder from their first event.
		env.Trace = p.Trace
	}
	if env.Trace != nil && env.Store != nil && env.Store.Trace == nil {
		// A copy, not a mutation: the store value may be shared with
		// co-running sessions on a cluster substrate.
		cp := *env.Store
		cp.Trace, cp.TraceNode = env.Trace, env.TraceNode
		env.Store = &cp
	}
	spec := w.Spec()
	ld := f.New(env, spec)

	// The factory's registered name wins over the loader's self-report, so
	// backends registered under several names (e.g. configuration
	// variants) stay distinguishable in reports.
	loaderName := f.Name
	if loaderName == "" {
		loaderName = ld.Name()
	}
	rep := &Report{
		Workload: w.Name,
		Loader:   loaderName,
		GPUs:     len(env.GPUs),
	}

	var trainedBytes atomic.Int64
	collector := metrics.NewCollector(rt, p.MetricsInterval)
	if p.Collect {
		cpuGauge := env.CPU.UtilizationGauge()
		collector.Register("cpu", func() float64 { return 100 * cpuGauge() })
		gpuGauges := make([]func() float64, len(env.GPUs))
		for i, g := range env.GPUs {
			gpuGauges[i] = g.UtilizationGauge(rt)
		}
		collector.Register("gpu", func() float64 {
			sum := 0.0
			for _, g := range gpuGauges {
				sum += g()
			}
			return 100 * sum / float64(len(gpuGauges))
		})
		if disk != nil {
			collector.Register("disk", disk.ReadRateGauge(rt))
		}
		collector.Register("throughput", metrics.CounterRateGauge(rt, func() float64 {
			return float64(trainedBytes.Load())
		}))
		if ins, ok := ld.(loader.Instrumented); ok {
			ins.RegisterMetrics(collector)
		}
		collector.Start(wg)
	}

	var comp *composition
	if p.TrackComposition {
		comp = newComposition(w, p.SlowThresholdPercentile, spec.BatchSize)
		rep.SlowThreshold = comp.threshold
	}

	startBusyCPU := env.CPU.BusySeconds()
	startBusyGPU := 0.0
	for _, g := range env.GPUs {
		startBusyGPU += g.BusySeconds()
	}
	start := rt.Now()

	if err := ld.Start(ctx); err != nil {
		return nil, err
	}

	cst := StartChaos(rt, env, disk, wg, p.Chaos, len(env.GPUs))

	// Per-GPU consumers.
	consumers := simtime.NewWaitGroup(rt)
	var consumerErr atomic.Value
	var globalIters atomic.Int64
	var lastEnd atomic.Int64
	var dataStall atomic.Int64
	var traceMu sync.Mutex
	tr, tenant, node := env.Trace, env.TraceTenant(), env.TraceNode
	perGPUEpoch := spec.BatchesPerEpoch() / len(env.GPUs)
	for g := range env.GPUs {
		g := g
		consumers.Go("gpu-consumer", func() {
			dev := env.GPUs[g]
			sinceValidation := 0
			for {
				// Preemption gate: park here while the session is paused;
				// a terminal preemption ends the stream with ErrPreempted.
				if err := cst.Gate(ctx); err != nil {
					consumerErr.Store(err)
					return
				}
				waitStart := rt.Now()
				b, err := ld.Next(ctx, g)
				if errors.Is(err, io.EOF) {
					return
				}
				if err != nil {
					consumerErr.Store(err)
					return
				}
				waitEnd := rt.Now()
				dataStall.Add(int64(waitEnd - waitStart))
				tr.Record(trace.Span{Start: waitStart, End: waitEnd, Stage: trace.StageDataWait,
					Tenant: tenant, Node: node, Key: int64(g), Seq: b.Seq})
				stepStart := waitEnd
				if !b.Resident {
					// Synchronous H2D copy (no prefetch overlap).
					copyTime := time.Duration(float64(b.Bytes()) / p.CopyBandwidth * float64(time.Second))
					if err := rt.Sleep(ctx, copyTime); err != nil {
						return
					}
					copyEnd := rt.Now()
					tr.Record(trace.Span{Start: stepStart, End: copyEnd, Stage: trace.StageCopy,
						Tenant: tenant, Node: node, Key: int64(g), Seq: b.Seq, Detail: b.Bytes()})
					stepStart = copyEnd
				}
				if err := dev.Train(ctx, w.GPUStep); err != nil {
					return
				}
				it := globalIters.Add(1)
				atomic.AddInt64(&rep.Batches, 1)
				atomic.AddInt64(&rep.Samples, int64(len(b.Samples)))
				trainedBytes.Add(b.Bytes())
				stepEnd := rt.Now()
				tr.Record(trace.Span{Start: stepStart, End: stepEnd, Stage: trace.StageGPUStep,
					Tenant: tenant, Node: node, Key: int64(g), Seq: b.Seq})
				storeMax(&lastEnd, int64(stepEnd))
				cst.NoteStep(g, stepEnd)

				if comp != nil {
					comp.record(b)
				}
				if it%int64(p.AccuracyEvery) == 0 {
					comp.maybeAcc(rep, w, it, rt.Now()-start)
				}
				if p.TraceSamples {
					now := rt.Now()
					traceMu.Lock()
					for _, s := range b.Samples {
						rep.SampleTraces = append(rep.SampleTraces, SampleTrace{
							Index: s.Index, Epoch: s.Epoch, RawBytes: s.RawBytes,
							LoadedAt: s.LoadedAt, PreprocStart: s.PreprocStart,
							PreprocEnd: s.PreprocEnd, PreprocCost: s.PreprocCost,
							MarkedSlow: s.MarkedSlow, TimesResumed: s.TimesResumed,
							BatchSeq: b.Seq, TrainedAt: now, GPU: g,
						})
					}
					traceMu.Unlock()
				}

				// The consumer owns the batch from Next to here; everything
				// recorded above copies values out, so the samples can go
				// back to the pool for upcoming draws.
				b.Release()

				// Epoch-end validation (img-seg): extra GPU work while
				// loading pauses — the periodic dips of Fig 10.
				if w.ValidationTime > 0 && perGPUEpoch > 0 {
					sinceValidation++
					if sinceValidation >= perGPUEpoch {
						sinceValidation = 0
						if err := dev.Train(ctx, w.ValidationTime); err != nil {
							return
						}
					}
				}
			}
		})
	}

	if err := consumers.Wait(ctx); err != nil {
		return nil, err
	}
	end := time.Duration(lastEnd.Load())
	if end < start {
		end = rt.Now()
	}
	rep.TrainTime = end - start
	rep.TrainedBytes = trainedBytes.Load()

	cst.Stop()
	collector.Stop()
	ld.Stop()
	if err := wg.Wait(ctx); err != nil {
		return nil, err
	}
	cst.Finish(rep)
	// DataStall comes from the consumers' own counter; with tracing on the
	// StageDataWait spans are stamped from the identical instants, so the
	// critical-path analyzer reproduces this value to the nanosecond. The
	// report keeps the recorder and snapshots lazily (Trace).
	rep.DataStall = time.Duration(dataStall.Load())
	rep.rec = tr
	if e := consumerErr.Load(); e != nil {
		return nil, e.(error)
	}

	// Whole-run utilization from device busy accounting.
	dur := rep.TrainTime.Seconds()
	if dur > 0 {
		rep.AvgCPUUtil = 100 * (env.CPU.BusySeconds() - startBusyCPU) / (env.CPU.Capacity() * dur)
		busyGPU := 0.0
		for _, g := range env.GPUs {
			busyGPU += g.BusySeconds()
		}
		rep.AvgGPUUtil = 100 * (busyGPU - startBusyGPU) / (float64(len(env.GPUs)) * dur)
		if rep.AvgGPUUtil > 100 {
			rep.AvgGPUUtil = 100
		}
		if rep.AvgCPUUtil > 100 {
			rep.AvgCPUUtil = 100
		}
	}

	if p.Collect {
		rep.Series = make(map[string]*stats.TimeSeries)
		for _, name := range collector.Names() {
			rep.Series[name] = collector.Series(name)
		}
	}
	if comp != nil {
		rep.SlowHist = comp.hist
		rep.SlowPropByIt = comp.props
	}
	if env.Mat != nil {
		if env.Store != nil && env.Store.Tenant > 0 {
			rep.MatCacheStats = env.Mat.TenantStats(env.Store.Tenant)
		} else {
			rep.MatCacheStats = env.Mat.Stats()
		}
	}
	if cache != nil && env.Store != nil && env.Store.Tenant > 0 {
		// Shared-substrate session: attribute storage traffic to this
		// tenant rather than reporting cluster-wide totals.
		rep.CacheStats = cache.TenantStats(env.Store.Tenant)
		rep.DiskBytes = cache.TenantDiskBytes(env.Store.Tenant)
		return rep, nil
	}
	if cache != nil {
		rep.CacheStats = cache.Stats()
	}
	if disk != nil {
		rep.DiskBytes = disk.BytesRead()
	}
	return rep, nil
}

// Simulate runs a session on a fresh virtual-time kernel and testbed —
// the entry point experiments and benchmarks use.
func Simulate(cfg hardware.Config, w workload.Workload, f Factory, p Params) (*Report, error) {
	k := simtime.NewVirtual()
	var rep *Report
	var err error
	var tb *hardware.Testbed
	k.Run(func() {
		tb = hardware.NewTestbed(k, cfg)
		rep, err = Run(k, tb, w, f, p)
	})
	k.Drain()
	// The testbed dies with this call: hand its cache storage to the pools
	// so the next session starts warm.
	tb.Cache.Recycle()
	return rep, err
}

// ChaosState replays a single-machine fault script against a running
// session and keeps the fault-window bookkeeping for the report. A zero
// script costs one allocation and leaves the consumer fast path with a
// nil-pauser check and a histogram insert per batch. The trainer drives it
// internally; loading sessions (minato.Session.Batches) drive it from the
// facade through StartChaos/Gate/NoteStep/Stop/Finish.
type ChaosState struct {
	rt   simtime.Runtime
	env  *loader.Env
	disk *storage.Disk
	wg   *simtime.WaitGroup

	pauser *chaos.Pauser
	eng    *chaos.Engine

	preemptStall atomic.Int64

	mu         sync.Mutex
	hist       *stats.LogHist
	lastStep   []time.Duration
	faults     []chaos.FaultStat
	open       map[chaos.Kind]int
	recPending int    // fault index awaiting the first post-resume batch
	terminal   []bool // per-Preempt: no Resume scheduled after it
	termIdx    int
}

// StartChaos launches the event replay task (none for an empty script).
// The script must already be validated for a single-machine run
// (Script.Validate(0)); gpus sizes the per-consumer step-interval
// tracking.
func StartChaos(rt simtime.Runtime, env *loader.Env, disk *storage.Disk, wg *simtime.WaitGroup, script chaos.Script, gpus int) *ChaosState {
	c := &ChaosState{
		rt: rt, env: env, disk: disk, wg: wg,
		hist: stats.NewLogHist(), lastStep: make([]time.Duration, gpus),
		open: map[chaos.Kind]int{}, recPending: -1,
	}
	now := rt.Now()
	for i := range c.lastStep {
		c.lastStep[i] = now
	}
	if script.Empty() {
		return c
	}
	evs := script.Sorted()
	for i, ev := range evs {
		if ev.Kind != chaos.Preempt {
			continue
		}
		term := true
		for _, later := range evs[i+1:] {
			if later.Kind == chaos.Resume {
				term = false
				break
			}
		}
		c.terminal = append(c.terminal, term)
	}
	// Disk degradation is pre-installed as a timeline rather than applied
	// live from the engine task: a read racing the scripted instant then
	// sees the factor as a pure function of its own start time, not of
	// same-instant scheduling order. The engine still replays the events
	// for the fault-window bookkeeping.
	if c.disk != nil {
		for _, ev := range evs {
			switch ev.Kind {
			case chaos.DiskDegrade:
				c.disk.ScheduleSlowdown(ev.At, ev.Factor)
			case chaos.DiskRestore:
				c.disk.ScheduleSlowdown(ev.At, 1)
			}
		}
	}
	c.pauser = chaos.NewPauser(rt)
	c.eng = chaos.StartEngine(rt, wg, evs, c.apply)
	return c
}

// apply runs in the engine's task at each event's scripted time.
func (c *ChaosState) apply(ev chaos.Event) {
	now := c.rt.Now()
	switch ev.Kind {
	case chaos.DiskDegrade:
		// The slowdown itself was scheduled at StartChaos; only the fault
		// window is recorded here.
		c.openFault(ev, now)
	case chaos.DiskRestore:
		c.closeFault(chaos.DiskDegrade, now)
	case chaos.WorkerStall:
		c.openFault(ev, now)
		n := int(math.Ceil(ev.Factor * c.env.CPU.Capacity()))
		if n < 1 {
			n = 1
		}
		hogs := simtime.NewWaitGroup(c.rt)
		for i := 0; i < n; i++ {
			hogs.Go("chaos-hog", func() {
				_ = c.env.CPU.Run(context.Background(), ev.Duration)
			})
		}
		c.wg.Go("chaos-hog-closer", func() {
			_ = hogs.Wait(context.Background())
			c.closeFault(chaos.WorkerStall, c.rt.Now())
		})
	case chaos.Preempt:
		term := false
		c.mu.Lock()
		if c.termIdx < len(c.terminal) {
			term = c.terminal[c.termIdx]
			c.termIdx++
		}
		c.mu.Unlock()
		c.openFault(ev, now)
		c.pauser.Pause(term)
	case chaos.Resume:
		c.pauser.Resume()
		c.closeFault(chaos.Preempt, now)
		c.mu.Lock()
		c.faults = append(c.faults, chaos.FaultStat{Event: ev, AppliedAt: now})
		c.recPending = len(c.faults) - 1
		c.mu.Unlock()
		c.traceFault(trace.StageFault, now, now, ev.Kind)
	}
}

func (c *ChaosState) openFault(ev chaos.Event, now time.Duration) {
	c.mu.Lock()
	c.faults = append(c.faults, chaos.FaultStat{Event: ev, AppliedAt: now})
	c.open[ev.Kind] = len(c.faults) - 1
	c.mu.Unlock()
	c.traceFault(trace.StageFault, now, now, ev.Kind)
}

func (c *ChaosState) closeFault(kind chaos.Kind, now time.Duration) {
	var applied time.Duration
	closed := false
	c.mu.Lock()
	if i, ok := c.open[kind]; ok {
		c.faults[i].ClearedAt = now
		applied = c.faults[i].AppliedAt
		closed = true
		if kind == chaos.Preempt {
			// The pause window itself is the stall: every consumer is
			// parked for its full extent.
			c.faults[i].StallDuring = now - c.faults[i].AppliedAt
		}
		delete(c.open, kind)
	}
	c.mu.Unlock()
	if closed {
		c.traceFault(trace.StageFaultWindow, applied, now, kind)
	}
}

// traceFault records a fault span (instant when start == end) on the
// session's recorder; a no-op without tracing.
func (c *ChaosState) traceFault(st trace.Stage, start, end time.Duration, kind chaos.Kind) {
	c.env.Trace.Record(trace.Span{Start: start, End: end, Stage: st,
		Tenant: c.env.TraceTenant(), Node: c.env.TraceNode, Key: int64(kind)})
}

// noteStep records a consumer's batch-completion interval and resolves a
// pending post-resume recovery measurement.
func (c *ChaosState) NoteStep(g int, now time.Duration) {
	c.mu.Lock()
	c.hist.AddDuration(now - c.lastStep[g])
	c.lastStep[g] = now
	if c.recPending >= 0 {
		c.faults[c.recPending].Recovery = now - c.faults[c.recPending].AppliedAt
		c.recPending = -1
	}
	c.mu.Unlock()
}

// Stop halts the replay; pending events are discarded. Call before
// waiting out the session's background tasks, so a script outliving the
// run cannot append trailing fault records.
func (c *ChaosState) Stop() { c.eng.Stop() }

// Gate parks the calling consumer while the session is preempted,
// accumulating the preemption stall; a terminal preemption (no resume
// scheduled) returns ErrPreempted. Consumers call it at every batch
// boundary.
func (c *ChaosState) Gate(ctx context.Context) error {
	st, err := c.pauser.Wait(ctx)
	if st > 0 {
		c.preemptStall.Add(int64(st))
	}
	return err
}

// Finish copies the SLO metrics into the report. Call after the session's
// background tasks (hog closers included) have drained.
func (c *ChaosState) Finish(rep *Report) {
	rep.StepP50 = c.hist.QuantileDuration(0.5)
	rep.StepP99 = c.hist.QuantileDuration(0.99)
	rep.StepHist = c.hist
	rep.PreemptStall = time.Duration(c.preemptStall.Load())
	c.mu.Lock()
	rep.Faults = append([]chaos.FaultStat(nil), c.faults...)
	c.mu.Unlock()
}

// composition tracks Fig 11's batch statistics.
type composition struct {
	threshold time.Duration
	mu        sync.Mutex
	hist      []int64
	props     []float64
}

func newComposition(w workload.Workload, pct float64, batchSize int) *composition {
	return &composition{
		threshold: w.SlowThreshold(pct),
		hist:      make([]int64, batchSize+1),
	}
}

func (c *composition) record(b *data.Batch) {
	slow := 0
	for _, s := range b.Samples {
		if s.PreprocCost > c.threshold {
			slow++
		}
	}
	c.mu.Lock()
	if slow < len(c.hist) {
		c.hist[slow]++
	}
	c.props = append(c.props, float64(slow)/float64(len(b.Samples)))
	c.mu.Unlock()
}

// maybeAcc appends an accuracy point; safe on a nil receiver so call sites
// stay unconditional.
func (c *composition) maybeAcc(rep *Report, w workload.Workload, iter int64, elapsed time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	rep.AccCurve = append(rep.AccCurve, AccPoint{Iter: iter, Elapsed: elapsed, Accuracy: w.Accuracy(iter)})
	c.mu.Unlock()
}

func storeMax(dst *atomic.Int64, v int64) {
	for {
		cur := dst.Load()
		if v <= cur || dst.CompareAndSwap(cur, v) {
			return
		}
	}
}
