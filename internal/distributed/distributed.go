// Package distributed extends the single-server evaluation to the
// multi-node data-parallel setting the paper discusses in §6: each node is
// a full testbed (CPU pool, GPUs, page cache) running its own loader
// instance over a dataset shard, and every training step ends with a
// gradient all-reduce across nodes over a simulated cluster interconnect
// (internal/netsim).
//
// The interconnect is real, not analytic: gradient exchange runs as
// ring-reduce flows on the fabric, and — on a remote-store cluster — cold
// shard reads are fetched from a shared storage server over the same NICs,
// so data traffic and gradient traffic contend exactly where they do on a
// Lustre-over-interconnect testbed (§3's Config A). The paper's claim is
// qualitative — "MinatoLoader retains its preprocessing and batch
// construction benefits" per node — and this package makes it measurable:
// the per-step barrier means a single input-stalled node stalls the whole
// cluster, so loader quality compounds with scale, and the Report
// attributes each node's stall time to its cause (own input, the barrier,
// or the network).
//
// # Fault injection and elastic membership
//
// A Config may carry a chaos.Script. Continuous-substrate events (link,
// disk, worker stalls) are replayed by a chaos.Engine task at their exact
// scripted times. Membership events (NodeCrash/NodeJoin) switch the run
// into elastic mode: they are applied at the first step boundary at or
// after their time, inside the resume barrier's release hook, where every
// consumer in the cluster is parked — a quiescent point, the way an
// elastic agent reconfigures between steps. A membership change stops
// every loader (draining in-flight cache claims), drops the crashed
// node's page cache, re-shards the dataset across the survivors under a
// fresh deterministic permutation draw, and rebuilds the all-reduce ring
// over the live NICs. Consumers of a crashed node keep arriving at both
// step barriers as proxies — the barrier width never changes — but skip
// data, training, and the collective; their parked time is attributed to
// NodeStats.Downtime rather than BarrierStall. Because the script is
// static data and every application point is either an exact virtual time
// or a barrier completion, identical scripts yield bit-identical reports.
package distributed

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/minatoloader/minato/internal/chaos"
	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/dist"
	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/netsim"
	"github.com/minatoloader/minato/internal/report"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/stats"
	"github.com/minatoloader/minato/internal/storage"
	"github.com/minatoloader/minato/internal/trace"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

// shardStream keys the deterministic shard-to-node assignment drawn from
// internal/dist: node i trains shard perm[i] of the epoch-invariant
// n-way split. The constant must stay unique among the repository's
// (seed, stream) draws — 77 is the workload accuracy-noise stream, and
// epoch shuffles live at epoch+1000. Elastic membership view v re-shards
// under stream shardStream+v, so each re-configuration is its own
// deterministic draw.
const shardStream = 4200

// NodeFault names one node and a degradation factor — the element of the
// Stragglers and Degraded slices.
type NodeFault struct {
	Node   int
	Factor float64
}

// Config describes the cluster.
type Config struct {
	// Nodes is the number of servers; ignored when Mix is set.
	Nodes int
	// Node is the per-node hardware (§3's Config A or B).
	Node hardware.Config
	// Mix, when non-empty, gives each node its own hardware — the
	// heterogeneous-cluster scenario. len(Mix) overrides Nodes.
	Mix []hardware.Config

	// GradientBytes is the model gradient each node exchanges per step.
	GradientBytes int64
	// LinkBandwidth is each node's NIC bandwidth in bytes/s per direction.
	LinkBandwidth float64
	// LinkLatency is the per-transfer propagation delay on the fabric.
	LinkLatency time.Duration

	// RemoteStore places the dataset on a shared storage server reached
	// over the fabric (the Lustre configuration): cold reads occupy the
	// server disk and then a network transfer into the reading node's NIC,
	// contending with gradient traffic. When false every node has local
	// storage.
	RemoteStore bool

	// Stragglers divides each listed node's CPU core count by its factor —
	// the input-stalled-node scenario, where underprovisioned preprocessing
	// drags the whole synchronous cluster. Entries with Factor ≤ 1 or an
	// out-of-range node are ignored.
	Stragglers []NodeFault
	// Degraded divides each listed node's NIC bandwidth by its factor in
	// both directions — a flaky cable or oversubscribed leaf switch.
	Degraded []NodeFault

	// StragglerFactor > 1 divides StragglerNode's CPU core count: sugar for
	// one Stragglers entry, kept for callers configuring a single fault.
	StragglerNode   int
	StragglerFactor float64

	// DegradedFactor > 1 divides DegradedNode's NIC bandwidth: sugar for
	// one Degraded entry.
	DegradedNode   int
	DegradedFactor float64

	// Script injects scripted faults during the run (see package chaos).
	// Membership events switch the run into elastic mode.
	Script chaos.Script

	// Trace, when non-nil, records deterministic spans from every layer of
	// the run (loaders, storage, consumer steps, the fabric, faults) into
	// the given recorder. Nil disables tracing at zero hot-path cost.
	Trace *trace.Recorder
}

// DefaultConfig returns a 200 Gb/s-interconnect cluster of Config A nodes
// sharing a remote store, the paper's cluster testbed.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:         nodes,
		Node:          hardware.ConfigA(),
		GradientBytes: 350 << 20, // ResNet50-scale gradients
		LinkBandwidth: 25e9,      // 200 Gb/s
		LinkLatency:   200 * time.Microsecond,
		RemoteStore:   true,
	}
}

// WithStraggler returns a copy of c with node's cores divided by factor.
// Repeated calls accumulate distinct stragglers.
func (c Config) WithStraggler(node int, factor float64) Config {
	c.Stragglers = append(append([]NodeFault(nil), c.Stragglers...), NodeFault{node, factor})
	return c
}

// WithDegradedLink returns a copy of c with node's NIC bandwidth divided
// by factor. Repeated calls accumulate distinct degraded links.
func (c Config) WithDegradedLink(node int, factor float64) Config {
	c.Degraded = append(append([]NodeFault(nil), c.Degraded...), NodeFault{node, factor})
	return c
}

// WithMix returns a copy of c running the given heterogeneous node set.
func (c Config) WithMix(nodes ...hardware.Config) Config {
	c.Mix = nodes
	c.Nodes = len(nodes)
	return c
}

// WithChaos returns a copy of c injecting the given fault script.
func (c Config) WithChaos(s chaos.Script) Config {
	c.Script = s
	return c
}

// stragglerFaults merges the slice and the legacy single-fault fields.
func (c Config) stragglerFaults() []NodeFault {
	fs := append([]NodeFault(nil), c.Stragglers...)
	if c.StragglerFactor > 1 {
		fs = append(fs, NodeFault{c.StragglerNode, c.StragglerFactor})
	}
	return fs
}

// degradedFaults merges the slice and the legacy single-fault fields.
func (c Config) degradedFaults() []NodeFault {
	fs := append([]NodeFault(nil), c.Degraded...)
	if c.DegradedFactor > 1 {
		fs = append(fs, NodeFault{c.DegradedNode, c.DegradedFactor})
	}
	return fs
}

// nodeConfigs resolves the per-node hardware, applying the straggler
// scenario.
func (c Config) nodeConfigs() []hardware.Config {
	var cfgs []hardware.Config
	if len(c.Mix) > 0 {
		cfgs = append(cfgs, c.Mix...)
	} else {
		for i := 0; i < c.Nodes; i++ {
			cfgs = append(cfgs, c.Node)
		}
	}
	for _, s := range c.stragglerFaults() {
		if s.Factor > 1 && s.Node >= 0 && s.Node < len(cfgs) {
			n := &cfgs[s.Node]
			n.Cores = int(float64(n.Cores) / s.Factor)
			if n.Cores < 1 {
				n.Cores = 1
			}
		}
	}
	return cfgs
}

// NodeStats attributes one node's time: where its consumers stalled, what
// it trained, how busy its GPUs were. Stall durations are summed across
// the node's GPU consumers.
type NodeStats struct {
	Node     int
	Hardware string // config name + core count, e.g. "ConfigA/128c"
	GPUs     int
	Samples  int64
	// DataStall is time blocked on the node's own loader — input starvation.
	DataStall time.Duration
	// BarrierStall is time parked at the step barrier waiting for slower
	// ranks: the compounding cost of someone else's input stall.
	BarrierStall time.Duration
	// NetworkStall is time in the gradient all-reduce (flows + phase
	// barriers) — the interconnect's share of the step.
	NetworkStall time.Duration
	// Downtime is time the node's consumers spent crashed out of the
	// membership, idling through proxy rounds — attributed here, not to
	// BarrierStall, so churn cost is separable from straggler cost.
	Downtime time.Duration
	// GPUUtil is the node's average GPU utilization in percent.
	GPUUtil float64
}

// Report is the outcome of a distributed run.
type Report struct {
	Workload string
	Loader   string
	Nodes    int
	// TrainTime is the cluster wall time (all nodes synchronized).
	TrainTime time.Duration
	// Steps is the number of whole-cluster synchronized steps completed.
	Steps int64
	// Samples aggregates all nodes.
	Samples int64
	// AvgGPUUtil averages across every GPU in the cluster.
	AvgGPUUtil float64
	// NetworkBytes is the total traffic the fabric carried: gradient
	// flows plus (on a remote-store cluster) dataset fetches.
	NetworkBytes int64
	// StallBreakdown aggregates the cluster's consumer stalls across all
	// nodes, the synchronized-step-time quantiles, and the applied fault
	// windows. With tracing enabled the critical-path analyzer fills the
	// stall fields from the recorded spans; otherwise they are the PerNode
	// counter sums — both are stamped at the same virtual instants.
	report.StallBreakdown
	// PerNode attributes each node's stalls, in node order.
	PerNode []NodeStats

	// spans is the run's recorded trace when Config.Trace was set.
	spans []trace.Span
}

// Trace returns the run's recorded spans in canonical order (nil when
// tracing was disabled).
func (r *Report) Trace() []trace.Span { return r.spans }

// CriticalPath reassembles each batch round's latency attribution from
// the recorded trace (nil when tracing was disabled).
func (r *Report) CriticalPath() []trace.BatchPath {
	return trace.CriticalPath(r.spans)
}

// SetTrace installs a recorded span set.
func (r *Report) SetTrace(spans []trace.Span) { r.spans = spans }

// StepTime is the whole-cluster synchronized step time — the number the
// per-step barrier makes everyone pay together.
func (r *Report) StepTime() time.Duration {
	if r.Steps == 0 {
		return 0
	}
	return r.TrainTime / time.Duration(r.Steps)
}

// consumerSeconds is the total consumer wall time the stall shares are
// normalized by.
func (r *Report) consumerSeconds() float64 {
	total := 0.0
	for _, n := range r.PerNode {
		total += float64(n.GPUs) * r.TrainTime.Seconds()
	}
	return total
}

func (r *Report) share(sum time.Duration) float64 {
	den := r.consumerSeconds()
	if den <= 0 {
		return 0
	}
	s := sum.Seconds() / den
	if s > 1 {
		s = 1
	}
	return s
}

// NetworkStallShare is the fraction of cluster consumer time spent in
// gradient synchronization over the fabric.
func (r *Report) NetworkStallShare() float64 {
	var sum time.Duration
	for _, n := range r.PerNode {
		sum += n.NetworkStall
	}
	return r.share(sum)
}

// DataStallShare is the fraction of cluster consumer time spent waiting on
// the nodes' own loaders.
func (r *Report) DataStallShare() float64 {
	var sum time.Duration
	for _, n := range r.PerNode {
		sum += n.DataStall
	}
	return r.share(sum)
}

// BarrierStallShare is the fraction of cluster consumer time spent waiting
// at the step barrier for slower ranks.
func (r *Report) BarrierStallShare() float64 {
	var sum time.Duration
	for _, n := range r.PerNode {
		sum += n.BarrierStall
	}
	return r.share(sum)
}

// remoteFetch adapts a fabric path (storage server → node) to the
// storage.RemoteFetcher hook.
type remoteFetch struct {
	fab       *netsim.Fabric
	src, node int
}

func (rf remoteFetch) Fetch(ctx context.Context, n int64) error {
	return rf.fab.Transfer(ctx, rf.src, rf.node, n)
}

// Run executes a distributed data-parallel session on a fresh virtual
// kernel. Every node consumes per-GPU batches from its own loader over its
// shard; after each per-GPU step, nodes synchronize on a global barrier,
// node leaders run the ring all-reduce over the fabric, and everyone
// resumes together — the bulk-synchronous-parallel structure of DDP.
func Run(cfg Config, w workload.Workload, f trainer.Factory) (*Report, error) {
	nodeCfgs := cfg.nodeConfigs()
	if len(nodeCfgs) == 0 {
		return nil, errors.New("distributed: need at least one node")
	}
	if err := cfg.Script.Validate(len(nodeCfgs)); err != nil {
		return nil, err
	}
	k := simtime.NewVirtual()
	rep := &Report{Workload: w.Name, Loader: f.Name, Nodes: len(nodeCfgs)}
	var runErr error
	k.Run(func() {
		runErr = run(k, cfg, nodeCfgs, w, f, rep)
	})
	k.Drain()
	if runErr != nil {
		return nil, runErr
	}
	return rep, nil
}

// nodeState is one node's runtime wiring plus its stall accounting
// (consumers of the node add concurrently).
type nodeState struct {
	tb           *hardware.Testbed
	env          *loader.Env
	samples      atomic.Int64
	dataStall    atomic.Int64
	barrierStall atomic.Int64
	networkStall atomic.Int64
	downtime     atomic.Int64
}

// memberView is one immutable membership configuration: which nodes are
// live, their loaders over the current shard split, and the all-reduce
// ring across their NICs. Consumers load the current view once per round;
// the controller swaps in a new view only at step boundaries, so nobody is
// mid-Next or mid-collective across a change.
type memberView struct {
	id      int
	active  []bool
	loaders []loader.Loader // indexed by node; nil when inactive
	ring    *netsim.Ring
	ranks   []int // node → rank in the ring; -1 when inactive
	done    bool
}

// winKey identifies an open fault window (disk events use node -1: they
// target the storage substrate as a whole).
type winKey struct {
	kind chaos.Kind
	node int
}

type openWin struct {
	idx   int // index into ctrl.faults
	stall time.Duration
}

// ctrl is the run's chaos-and-SLO controller. Its onBoundary hook runs in
// the resume barrier's releasing arriver — single-threaded by construction
// (the next release cannot begin until every consumer re-arrives), so the
// round counter, histogram, and view swaps need no locking. The mutex
// guards only the fault table, which the continuous-event engine task also
// appends to.
type ctrl struct {
	k       *simtime.Virtual
	cfg     Config
	w       workload.Workload
	f       trainer.Factory
	fab     *netsim.Fabric
	wg      *simtime.WaitGroup
	nodes   []*nodeState
	baseBW  []float64
	disks   []*storage.Disk // DiskDegrade targets
	seed    uint64
	elastic bool
	tr      *trace.Recorder

	view atomic.Pointer[memberView]

	// Boundary-hook state (single-threaded: see above).
	pending      []chaos.Event // membership events, sorted
	next         int
	rounds       int64
	target       int64 // elastic mode: rounds to run
	lastBoundary time.Duration
	hist         *stats.LogHist

	mu         sync.Mutex
	faults     []chaos.FaultStat
	open       map[winKey]openWin
	pendingRec map[int]int // node → faults index awaiting first post-join step

	consumeErr atomic.Value
}

// totalStall sums every node's consumer stalls — the snapshot fault
// windows diff to attribute stall to a fault.
func (st *ctrl) totalStall() time.Duration {
	var sum int64
	for _, nd := range st.nodes {
		sum += nd.dataStall.Load() + nd.barrierStall.Load() + nd.networkStall.Load()
	}
	return time.Duration(sum)
}

// openFault records a fault taking effect. Callers hold no locks.
func (st *ctrl) openFault(ev chaos.Event, now time.Duration) {
	key := winKey{ev.Kind, ev.Node}
	if ev.Kind == chaos.DiskDegrade {
		key.node = -1
	}
	st.mu.Lock()
	st.faults = append(st.faults, chaos.FaultStat{Event: ev, AppliedAt: now})
	st.open[key] = openWin{idx: len(st.faults) - 1, stall: st.totalStall()}
	st.mu.Unlock()
	st.tr.Instant(trace.Span{Stage: trace.StageFault, Node: int32(key.node),
		Key: int64(ev.Kind)}, now)
}

// closeFault clears the open window opened by kind on node, attributing
// the stall accumulated in between.
func (st *ctrl) closeFault(kind chaos.Kind, node int, now time.Duration) {
	var applied time.Duration
	closed := false
	st.mu.Lock()
	if w, ok := st.open[winKey{kind, node}]; ok {
		st.faults[w.idx].ClearedAt = now
		st.faults[w.idx].StallDuring = st.totalStall() - w.stall
		applied = st.faults[w.idx].AppliedAt
		closed = true
		delete(st.open, winKey{kind, node})
	}
	st.mu.Unlock()
	if closed {
		st.tr.Record(trace.Span{Start: applied, End: now, Stage: trace.StageFaultWindow,
			Node: int32(node), Key: int64(kind)})
	}
}

// applyContinuous handles the engine-replayed event kinds at their exact
// scripted times.
func (st *ctrl) applyContinuous(ev chaos.Event) {
	now := st.k.Now()
	switch ev.Kind {
	case chaos.LinkDegrade:
		if ev.Node >= 0 && ev.Node < len(st.baseBW) {
			st.fab.SetBandwidth(ev.Node, st.baseBW[ev.Node]/ev.Factor)
			st.openFault(ev, now)
		}
	case chaos.LinkRestore:
		if ev.Node >= 0 && ev.Node < len(st.baseBW) {
			st.fab.SetBandwidth(ev.Node, st.baseBW[ev.Node])
			st.closeFault(chaos.LinkDegrade, ev.Node, now)
		}
	case chaos.DiskDegrade:
		// The slowdown timeline was pre-installed before the run started;
		// only the fault window is recorded here.
		st.openFault(ev, now)
	case chaos.DiskRestore:
		st.closeFault(chaos.DiskDegrade, -1, now)
	case chaos.WorkerStall:
		if ev.Node < 0 || ev.Node >= len(st.nodes) {
			return
		}
		st.openFault(ev, now)
		cpu := st.nodes[ev.Node].tb.CPU
		hogs := int(math.Ceil(ev.Factor * cpu.Capacity()))
		if hogs < 1 {
			hogs = 1
		}
		hogWG := simtime.NewWaitGroup(st.k)
		for h := 0; h < hogs; h++ {
			hogWG.Go("chaos-hog", func() {
				_ = cpu.Run(context.Background(), ev.Duration)
			})
		}
		node := ev.Node
		st.wg.Go("chaos-hog-closer", func() {
			_ = hogWG.Wait(context.Background())
			st.closeFault(chaos.WorkerStall, node, st.k.Now())
		})
	}
}

// onBoundary runs at every completed resume-barrier generation, in the
// releasing arriver, after the barrier reset and before any waiter wakes:
// the one point where every consumer in the cluster is parked. It records
// the step time, closes join-recovery windows, and — in elastic mode —
// ends the run at the round target or applies pending membership events.
func (st *ctrl) onBoundary(uint64) {
	now := st.k.Now()
	st.hist.AddDuration(now - st.lastBoundary)
	st.lastBoundary = now
	st.rounds++
	if len(st.pendingRec) > 0 {
		st.mu.Lock()
		for node, idx := range st.pendingRec {
			st.faults[idx].Recovery = now - st.faults[idx].Event.At
			delete(st.pendingRec, node)
		}
		st.mu.Unlock()
	}
	if !st.elastic {
		return
	}
	v := st.view.Load()
	if v.done {
		return
	}
	if st.rounds >= st.target {
		nv := *v
		nv.done = true
		st.view.Store(&nv)
		return
	}
	changed := false
	active := append([]bool(nil), v.active...)
	for st.next < len(st.pending) && st.pending[st.next].At <= now {
		ev := st.pending[st.next]
		st.next++
		switch ev.Kind {
		case chaos.NodeCrash:
			if active[ev.Node] {
				active[ev.Node] = false
				changed = true
				st.openFault(ev, now)
			}
		case chaos.NodeJoin:
			if !active[ev.Node] {
				active[ev.Node] = true
				changed = true
				st.closeFault(chaos.NodeCrash, ev.Node, now)
				st.mu.Lock()
				st.faults = append(st.faults, chaos.FaultStat{Event: ev, AppliedAt: now})
				st.pendingRec[ev.Node] = len(st.faults) - 1
				st.mu.Unlock()
				st.tr.Instant(trace.Span{Stage: trace.StageFault, Node: int32(ev.Node),
					Key: int64(ev.Kind)}, now)
			}
		}
	}
	if changed {
		st.reshard(v, active, now)
	}
}

// reshard applies a membership change: stop every loader (draining cache
// claims), drop crashed caches, re-split the dataset across the survivors
// under a fresh permutation draw, and rebuild the ring. Runs inside the
// boundary hook, so all consumers are parked.
func (st *ctrl) reshard(v *memberView, active []bool, now time.Duration) {
	for _, ld := range v.loaders {
		if ld != nil {
			ld.Stop()
		}
	}
	var members []int
	for i, a := range active {
		if v.active[i] && !a {
			// A restarted machine comes back with a cold page cache.
			st.nodes[i].tb.Cache.Recycle()
		}
		if a {
			members = append(members, i)
		}
	}
	id := v.id + 1
	if len(members) == 0 {
		st.consumeErr.Store(chaos.ErrNodeLost)
		st.view.Store(&memberView{
			id:     id,
			active: active,
			ranks:  make([]int, len(active)),
			done:   true,
		})
		return
	}
	perm := dist.Permutation(st.seed, shardStream+uint64(id), len(members))
	loaders := make([]loader.Loader, len(active))
	ranks := make([]int, len(active))
	for i := range ranks {
		ranks[i] = -1
	}
	eps := make([]int, len(members))
	remaining := st.target - st.rounds
	for j, node := range members {
		eps[j] = node
		ranks[node] = j
		nd := st.nodes[node]
		shardW := st.w.WithDataset(dataset.Shard(st.w.Dataset, perm[j], len(members)))
		sp := shardW.Spec()
		sp.Iterations = int(remaining) * len(nd.tb.GPUs)
		sp.Epochs = 0
		ld := st.f.New(nd.env, sp)
		if err := ld.Start(context.Background()); err != nil {
			st.consumeErr.Store(err)
			st.view.Store(&memberView{id: id, active: active, ranks: ranks, done: true})
			return
		}
		loaders[node] = ld
	}
	st.view.Store(&memberView{
		id:      id,
		active:  active,
		loaders: loaders,
		ring:    netsim.NewRing(st.k, st.fab, eps),
		ranks:   ranks,
	})
}

func run(k *simtime.Virtual, cfg Config, nodeCfgs []hardware.Config, w workload.Workload, f trainer.Factory, rep *Report) error {
	ctx := context.Background()
	wg := simtime.NewWaitGroup(k)
	n := len(nodeCfgs)

	var memberEvs, contEvs []chaos.Event
	for _, ev := range cfg.Script.Sorted() {
		switch ev.Kind {
		case chaos.NodeCrash, chaos.NodeJoin:
			memberEvs = append(memberEvs, ev)
		default:
			contEvs = append(contEvs, ev)
		}
	}
	elastic := len(memberEvs) > 0

	// Fabric endpoints: one per node, plus the storage server when the
	// dataset is remote.
	endpoints := n
	storeEP := -1
	if cfg.RemoteStore {
		storeEP = n
		endpoints++
	}
	fab := netsim.New(k, netsim.Config{
		Endpoints: endpoints,
		Bandwidth: cfg.LinkBandwidth,
		Latency:   cfg.LinkLatency,
	})
	if cfg.Trace != nil {
		fab.EnableTrace(cfg.Trace)
	}
	// baseBW is each node's configured NIC bandwidth after static
	// degradation — the level LinkRestore returns to.
	baseBW := make([]float64, n)
	for i := range baseBW {
		baseBW[i] = cfg.LinkBandwidth
	}
	for _, d := range cfg.degradedFaults() {
		if d.Factor > 1 && d.Node >= 0 && d.Node < n {
			baseBW[d.Node] /= d.Factor
			fab.SetBandwidth(d.Node, baseBW[d.Node])
		}
	}

	// On a remote-store cluster every node's cold reads share one server
	// disk (the Lustre array) and pay a fabric transfer into their NIC;
	// node-local page caches absorb warm reads before any of that.
	var serverDisk *storage.Disk
	if cfg.RemoteStore {
		serverCfg := cfg.Node
		if serverCfg.StorageBandwidth <= 0 {
			serverCfg = nodeCfgs[0] // Mix-only config: size the server like node 0
		}
		serverDisk = storage.NewDisk(k, serverCfg.StorageName+"-server",
			serverCfg.StorageBandwidth, serverCfg.StorageParallelism)
	}

	// Shard assignment through the deterministic draw family: node i
	// trains shard perm[i], so which node holds which slice is a pure
	// function of the seed.
	spec := w.Spec()
	perm := dist.Permutation(spec.Seed, shardStream, n)

	nodes := make([]*nodeState, n)
	nodeEPs := make([]int, n)
	initLoaders := make([]loader.Loader, n)
	initRanks := make([]int, n)
	initActive := make([]bool, n)
	totalConsumers := 0
	target := int64(math.MaxInt64)
	for i := range nodes {
		tb := hardware.NewTestbed(k, nodeCfgs[i])
		store := tb.Store
		if cfg.RemoteStore {
			store = &storage.Store{Disk: serverDisk, Cache: tb.Cache,
				Remote: remoteFetch{fab: fab, src: storeEP, node: i}}
		}
		if cfg.Trace != nil {
			cp := *store
			cp.Trace, cp.TraceNode = cfg.Trace, int32(i)
			store = &cp
			for _, g := range tb.GPUs {
				g.EnableTrace(cfg.Trace, 0, int32(i))
			}
		}
		shardW := w.WithDataset(dataset.Shard(w.Dataset, perm[i], n))
		env := &loader.Env{RT: k, CPU: tb.CPU, GPUs: tb.GPUs, Store: store, WG: wg,
			Pool: data.NewPool(), Trace: cfg.Trace, TraceNode: int32(i)}
		nodes[i] = &nodeState{tb: tb, env: env}
		sp := shardW.Spec()
		if t := int64(sp.TotalBatches() / len(tb.GPUs)); t < target {
			target = t
		}
		if elastic {
			// Elastic runs are round-budget-driven: every node gets exactly
			// target rounds' worth of batches so the boundary hook, not an
			// EOF race, ends the run.
			sp.Iterations = int(target) * len(tb.GPUs)
			sp.Epochs = 0
		}
		initLoaders[i] = f.New(env, sp)
		nodeEPs[i] = i
		initRanks[i] = i
		initActive[i] = true
		totalConsumers += len(tb.GPUs)
	}
	if elastic && target <= 0 {
		return errors.New("distributed: chaos membership needs at least one full round per node")
	}

	st := &ctrl{
		k: k, cfg: cfg, w: w, f: f, fab: fab, wg: wg, tr: cfg.Trace,
		nodes: nodes, baseBW: baseBW, seed: spec.Seed, elastic: elastic,
		pending: memberEvs, target: target,
		hist: stats.NewLogHist(),
		open: map[winKey]openWin{}, pendingRec: map[int]int{},
	}
	if cfg.RemoteStore {
		st.disks = []*storage.Disk{serverDisk}
	} else {
		for _, nd := range nodes {
			st.disks = append(st.disks, nd.tb.Disk)
		}
	}
	st.view.Store(&memberView{
		active:  initActive,
		loaders: initLoaders,
		ring:    netsim.NewRing(k, fab, nodeEPs),
		ranks:   initRanks,
	})

	// Two cyclic barriers frame the synchronized region of each step: all
	// consumers arrive at `arrive`, node leaders run the collective, and
	// everyone leaves through `resume`; the resume release hook is the
	// run's quiescent point (step accounting, membership changes). A rank
	// exiting early (EOF, error) breaks all of it so the cluster unwinds
	// deterministically. Barrier width never changes — crashed nodes'
	// consumers keep arriving as proxies.
	arrive := simtime.NewBarrier(k, totalConsumers)
	resume := simtime.NewBarrierFunc(k, totalConsumers, st.onBoundary)
	breakAll := func() {
		arrive.Break()
		resume.Break()
		if r := st.view.Load().ring; r != nil {
			r.Break()
		}
	}

	for _, ld := range initLoaders {
		if err := ld.Start(ctx); err != nil {
			return err
		}
	}
	// Disk degradation is pre-installed as a timeline (see
	// storage.ScheduleSlowdown): a read racing the scripted instant
	// resolves by its own start time, not by same-instant scheduling
	// order. The engine replay keeps the fault-window bookkeeping.
	for _, ev := range contEvs {
		switch ev.Kind {
		case chaos.DiskDegrade:
			for _, d := range st.disks {
				d.ScheduleSlowdown(ev.At, ev.Factor)
			}
		case chaos.DiskRestore:
			for _, d := range st.disks {
				d.ScheduleSlowdown(ev.At, 1)
			}
		}
	}
	eng := chaos.StartEngine(k, wg, contEvs, st.applyContinuous)

	start := k.Now()
	st.lastBoundary = start
	var lastEnd atomic.Int64
	consumers := simtime.NewWaitGroup(k)
	for rank, nd := range nodes {
		rank, nd := rank, nd
		for g := range nd.tb.GPUs {
			g := g
			consumers.Go("dist-consumer", func() {
				dev := nd.tb.GPUs[g]
				tr := cfg.Trace
				// Step spans share (Node=rank, Key=GPU, Seq=round): the
				// consumer-local round counter ties a round's anatomy
				// together for the critical-path analyzer, proxy rounds
				// included.
				var round int64
				for {
					v := st.view.Load()
					if v.done {
						return
					}
					act := v.active[rank]
					if act {
						t0 := k.Now()
						b, err := v.loaders[rank].Next(ctx, g)
						if errors.Is(err, io.EOF) {
							// This rank is out of data: release the others.
							breakAll()
							return
						}
						if err != nil {
							st.consumeErr.Store(err)
							breakAll()
							return
						}
						tData := k.Now()
						nd.dataStall.Add(int64(tData - t0))
						tr.Record(trace.Span{Start: t0, End: tData, Stage: trace.StageDataWait,
							Node: int32(rank), Key: int64(g), Seq: round})
						if err := dev.Train(ctx, w.GPUStep); err != nil {
							breakAll()
							return
						}
						tr.Record(trace.Span{Start: tData, End: k.Now(), Stage: trace.StageGPUStep,
							Node: int32(rank), Key: int64(g), Seq: round})
						nd.samples.Add(int64(len(b.Samples)))
						b.Release()
					}

					// Synchronized region: barrier, collective, resume.
					// Crashed ranks pass through as proxies, training and
					// reducing nothing.
					t1 := k.Now()
					if _, err := arrive.Wait(ctx); err != nil {
						return // broken: another rank finished
					}
					t2 := k.Now()
					if act {
						nd.barrierStall.Add(int64(t2 - t1))
						tr.Record(trace.Span{Start: t1, End: t2, Stage: trace.StageBarrierWait,
							Node: int32(rank), Key: int64(g), Seq: round})
						if g == 0 {
							if err := v.ring.AllReduce(ctx, v.ranks[rank], cfg.GradientBytes); err != nil {
								if !errors.Is(err, simtime.ErrBarrierBroken) {
									st.consumeErr.Store(err)
								}
								breakAll()
								return
							}
						}
					}
					if _, err := resume.Wait(ctx); err != nil {
						return
					}
					now := k.Now()
					if act {
						nd.networkStall.Add(int64(now - t2))
						tr.Record(trace.Span{Start: t2, End: now, Stage: trace.StageNetworkWait,
							Node: int32(rank), Key: int64(g), Seq: round})
					} else {
						nd.downtime.Add(int64(now - t1))
						tr.Record(trace.Span{Start: t1, End: now, Stage: trace.StageDowntime,
							Node: int32(rank), Key: int64(g), Seq: round})
					}
					round++
					storeMax(&lastEnd, int64(now))
				}
			})
		}
	}
	if err := consumers.Wait(ctx); err != nil {
		return err
	}
	eng.Stop()
	for _, ld := range st.view.Load().loaders {
		if ld != nil {
			ld.Stop()
		}
	}
	if err := wg.Wait(ctx); err != nil {
		return err
	}
	if e := st.consumeErr.Load(); e != nil {
		return e.(error)
	}

	end := time.Duration(lastEnd.Load())
	if end < start {
		end = k.Now()
	}
	rep.TrainTime = end - start
	rep.Steps = st.rounds
	rep.NetworkBytes = fab.BytesMoved()
	rep.StepP50 = st.hist.QuantileDuration(0.5)
	rep.StepP99 = st.hist.QuantileDuration(0.99)
	rep.Faults = append(rep.Faults, st.faults...)
	if cfg.Trace.Enabled() {
		rep.spans = cfg.Trace.Snapshot()
		// The critical-path analyzer is the source for the aggregate stall
		// fields when tracing is on. The spans are stamped at exactly the
		// instants the PerNode counters integrate, so the two agree to the
		// nanosecond (the counters stay as the cross-check).
		a := trace.Attribute(trace.CriticalPath(rep.spans), nil)
		rep.DataStall = a.DataWait
		rep.BarrierStall = a.BarrierWait
		rep.NetworkStall = a.NetworkWait
	}

	dur := rep.TrainTime.Seconds()
	busyAll, gpuCount := 0.0, 0
	for i, nd := range nodes {
		busy := 0.0
		for _, g := range nd.tb.GPUs {
			busy += g.BusySeconds()
		}
		busyAll += busy
		gpuCount += len(nd.tb.GPUs)
		util := 0.0
		if dur > 0 {
			util = min(100, 100*busy/(float64(len(nd.tb.GPUs))*dur))
		}
		rep.Samples += nd.samples.Load()
		rep.PerNode = append(rep.PerNode, NodeStats{
			Node:         i,
			Hardware:     fmt.Sprintf("%s/%dc", nodeCfgs[i].Name, nodeCfgs[i].Cores),
			GPUs:         len(nd.tb.GPUs),
			Samples:      nd.samples.Load(),
			DataStall:    time.Duration(nd.dataStall.Load()),
			BarrierStall: time.Duration(nd.barrierStall.Load()),
			NetworkStall: time.Duration(nd.networkStall.Load()),
			Downtime:     time.Duration(nd.downtime.Load()),
			GPUUtil:      util,
		})
		nd.tb.Cache.Recycle()
	}
	if !cfg.Trace.Enabled() {
		for _, ns := range rep.PerNode {
			rep.DataStall += ns.DataStall
			rep.BarrierStall += ns.BarrierStall
			rep.NetworkStall += ns.NetworkStall
		}
	}
	if dur > 0 {
		rep.AvgGPUUtil = min(100, 100*busyAll/(float64(gpuCount)*dur))
	}
	return nil
}

func storeMax(dst *atomic.Int64, v int64) {
	for {
		cur := dst.Load()
		if v <= cur || dst.CompareAndSwap(cur, v) {
			return
		}
	}
}

// String summarizes the report.
func (r *Report) String() string {
	return fmt.Sprintf("%s/%s on %d nodes: %.1fs, %d steps (%.0f ms/step), GPU %.1f%%, net stall %.1f%%",
		r.Workload, r.Loader, r.Nodes, r.TrainTime.Seconds(), r.Steps,
		r.StepTime().Seconds()*1000, r.AvgGPUUtil, 100*r.NetworkStallShare())
}
