// Package distributed extends the single-server evaluation to the
// multi-node data-parallel setting the paper discusses in §6: each node is
// a full testbed (CPU pool, GPUs, page cache) running its own loader
// instance over a dataset shard, and every training step ends with a
// gradient all-reduce across nodes over a simulated cluster interconnect
// (internal/netsim).
//
// The interconnect is real, not analytic: gradient exchange runs as
// ring-reduce flows on the fabric, and — on a remote-store cluster — cold
// shard reads are fetched from a shared storage server over the same NICs,
// so data traffic and gradient traffic contend exactly where they do on a
// Lustre-over-interconnect testbed (§3's Config A). The paper's claim is
// qualitative — "MinatoLoader retains its preprocessing and batch
// construction benefits" per node — and this package makes it measurable:
// the per-step barrier means a single input-stalled node stalls the whole
// cluster, so loader quality compounds with scale, and the Report
// attributes each node's stall time to its cause (own input, the barrier,
// or the network).
package distributed

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/dist"
	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/netsim"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/storage"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

// shardStream keys the deterministic shard-to-node assignment drawn from
// internal/dist: node i trains shard perm[i] of the epoch-invariant
// n-way split. The constant must stay unique among the repository's
// (seed, stream) draws — 77 is the workload accuracy-noise stream, and
// epoch shuffles live at epoch+1000.
const shardStream = 4200

// Config describes the cluster.
type Config struct {
	// Nodes is the number of servers; ignored when Mix is set.
	Nodes int
	// Node is the per-node hardware (§3's Config A or B).
	Node hardware.Config
	// Mix, when non-empty, gives each node its own hardware — the
	// heterogeneous-cluster scenario. len(Mix) overrides Nodes.
	Mix []hardware.Config

	// GradientBytes is the model gradient each node exchanges per step.
	GradientBytes int64
	// LinkBandwidth is each node's NIC bandwidth in bytes/s per direction.
	LinkBandwidth float64
	// LinkLatency is the per-transfer propagation delay on the fabric.
	LinkLatency time.Duration

	// RemoteStore places the dataset on a shared storage server reached
	// over the fabric (the Lustre configuration): cold reads occupy the
	// server disk and then a network transfer into the reading node's NIC,
	// contending with gradient traffic. When false every node has local
	// storage.
	RemoteStore bool

	// StragglerFactor > 1 divides StragglerNode's CPU core count — the
	// input-stalled-node scenario, where one underprovisioned node's
	// preprocessing drags the whole synchronous cluster.
	StragglerNode   int
	StragglerFactor float64

	// DegradedFactor > 1 divides DegradedNode's NIC bandwidth in both
	// directions — a flaky cable or oversubscribed leaf switch.
	DegradedNode   int
	DegradedFactor float64
}

// DefaultConfig returns a 200 Gb/s-interconnect cluster of Config A nodes
// sharing a remote store, the paper's cluster testbed.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:         nodes,
		Node:          hardware.ConfigA(),
		GradientBytes: 350 << 20, // ResNet50-scale gradients
		LinkBandwidth: 25e9,      // 200 Gb/s
		LinkLatency:   200 * time.Microsecond,
		RemoteStore:   true,
	}
}

// WithStraggler returns a copy of c with node's cores divided by factor.
func (c Config) WithStraggler(node int, factor float64) Config {
	c.StragglerNode, c.StragglerFactor = node, factor
	return c
}

// WithDegradedLink returns a copy of c with node's NIC bandwidth divided
// by factor.
func (c Config) WithDegradedLink(node int, factor float64) Config {
	c.DegradedNode, c.DegradedFactor = node, factor
	return c
}

// WithMix returns a copy of c running the given heterogeneous node set.
func (c Config) WithMix(nodes ...hardware.Config) Config {
	c.Mix = nodes
	c.Nodes = len(nodes)
	return c
}

// nodeConfigs resolves the per-node hardware, applying the straggler
// scenario.
func (c Config) nodeConfigs() []hardware.Config {
	var cfgs []hardware.Config
	if len(c.Mix) > 0 {
		cfgs = append(cfgs, c.Mix...)
	} else {
		for i := 0; i < c.Nodes; i++ {
			cfgs = append(cfgs, c.Node)
		}
	}
	if c.StragglerFactor > 1 && c.StragglerNode >= 0 && c.StragglerNode < len(cfgs) {
		s := &cfgs[c.StragglerNode]
		s.Cores = int(float64(s.Cores) / c.StragglerFactor)
		if s.Cores < 1 {
			s.Cores = 1
		}
	}
	return cfgs
}

// NodeStats attributes one node's time: where its consumers stalled, what
// it trained, how busy its GPUs were. Stall durations are summed across
// the node's GPU consumers.
type NodeStats struct {
	Node     int
	Hardware string // config name + core count, e.g. "ConfigA/128c"
	GPUs     int
	Samples  int64
	// DataStall is time blocked on the node's own loader — input starvation.
	DataStall time.Duration
	// BarrierStall is time parked at the step barrier waiting for slower
	// ranks: the compounding cost of someone else's input stall.
	BarrierStall time.Duration
	// NetworkStall is time in the gradient all-reduce (flows + phase
	// barriers) — the interconnect's share of the step.
	NetworkStall time.Duration
	// GPUUtil is the node's average GPU utilization in percent.
	GPUUtil float64
}

// Report is the outcome of a distributed run.
type Report struct {
	Workload string
	Loader   string
	Nodes    int
	// TrainTime is the cluster wall time (all nodes synchronized).
	TrainTime time.Duration
	// Steps is the number of whole-cluster synchronized steps completed.
	Steps int64
	// Samples aggregates all nodes.
	Samples int64
	// AvgGPUUtil averages across every GPU in the cluster.
	AvgGPUUtil float64
	// NetworkBytes is the total traffic the fabric carried: gradient
	// flows plus (on a remote-store cluster) dataset fetches.
	NetworkBytes int64
	// PerNode attributes each node's stalls, in node order.
	PerNode []NodeStats
}

// StepTime is the whole-cluster synchronized step time — the number the
// per-step barrier makes everyone pay together.
func (r *Report) StepTime() time.Duration {
	if r.Steps == 0 {
		return 0
	}
	return r.TrainTime / time.Duration(r.Steps)
}

// consumerSeconds is the total consumer wall time the stall shares are
// normalized by.
func (r *Report) consumerSeconds() float64 {
	total := 0.0
	for _, n := range r.PerNode {
		total += float64(n.GPUs) * r.TrainTime.Seconds()
	}
	return total
}

func (r *Report) share(sum time.Duration) float64 {
	den := r.consumerSeconds()
	if den <= 0 {
		return 0
	}
	s := sum.Seconds() / den
	if s > 1 {
		s = 1
	}
	return s
}

// NetworkStallShare is the fraction of cluster consumer time spent in
// gradient synchronization over the fabric.
func (r *Report) NetworkStallShare() float64 {
	var sum time.Duration
	for _, n := range r.PerNode {
		sum += n.NetworkStall
	}
	return r.share(sum)
}

// DataStallShare is the fraction of cluster consumer time spent waiting on
// the nodes' own loaders.
func (r *Report) DataStallShare() float64 {
	var sum time.Duration
	for _, n := range r.PerNode {
		sum += n.DataStall
	}
	return r.share(sum)
}

// BarrierStallShare is the fraction of cluster consumer time spent waiting
// at the step barrier for slower ranks.
func (r *Report) BarrierStallShare() float64 {
	var sum time.Duration
	for _, n := range r.PerNode {
		sum += n.BarrierStall
	}
	return r.share(sum)
}

// remoteFetch adapts a fabric path (storage server → node) to the
// storage.RemoteFetcher hook.
type remoteFetch struct {
	fab       *netsim.Fabric
	src, node int
}

func (rf remoteFetch) Fetch(ctx context.Context, n int64) error {
	return rf.fab.Transfer(ctx, rf.src, rf.node, n)
}

// Run executes a distributed data-parallel session on a fresh virtual
// kernel. Every node consumes per-GPU batches from its own loader over its
// shard; after each per-GPU step, nodes synchronize on a global barrier,
// node leaders run the ring all-reduce over the fabric, and everyone
// resumes together — the bulk-synchronous-parallel structure of DDP.
func Run(cfg Config, w workload.Workload, f trainer.Factory) (*Report, error) {
	nodeCfgs := cfg.nodeConfigs()
	if len(nodeCfgs) == 0 {
		return nil, errors.New("distributed: need at least one node")
	}
	k := simtime.NewVirtual()
	rep := &Report{Workload: w.Name, Loader: f.Name, Nodes: len(nodeCfgs)}
	var runErr error
	k.Run(func() {
		runErr = run(k, cfg, nodeCfgs, w, f, rep)
	})
	k.Drain()
	if runErr != nil {
		return nil, runErr
	}
	return rep, nil
}

// nodeState is one node's runtime wiring plus its stall accounting
// (consumers of the node add concurrently).
type nodeState struct {
	tb           *hardware.Testbed
	ld           loader.Loader
	samples      atomic.Int64
	dataStall    atomic.Int64
	barrierStall atomic.Int64
	networkStall atomic.Int64
}

func run(k *simtime.Virtual, cfg Config, nodeCfgs []hardware.Config, w workload.Workload, f trainer.Factory, rep *Report) error {
	ctx := context.Background()
	wg := simtime.NewWaitGroup(k)
	n := len(nodeCfgs)

	// Fabric endpoints: one per node, plus the storage server when the
	// dataset is remote.
	endpoints := n
	storeEP := -1
	if cfg.RemoteStore {
		storeEP = n
		endpoints++
	}
	fab := netsim.New(k, netsim.Config{
		Endpoints: endpoints,
		Bandwidth: cfg.LinkBandwidth,
		Latency:   cfg.LinkLatency,
	})
	if cfg.DegradedFactor > 1 && cfg.DegradedNode >= 0 && cfg.DegradedNode < n {
		fab.SetBandwidth(cfg.DegradedNode, cfg.LinkBandwidth/cfg.DegradedFactor)
	}

	// On a remote-store cluster every node's cold reads share one server
	// disk (the Lustre array) and pay a fabric transfer into their NIC;
	// node-local page caches absorb warm reads before any of that.
	var serverDisk *storage.Disk
	if cfg.RemoteStore {
		serverCfg := cfg.Node
		if serverCfg.StorageBandwidth <= 0 {
			serverCfg = nodeCfgs[0] // Mix-only config: size the server like node 0
		}
		serverDisk = storage.NewDisk(k, serverCfg.StorageName+"-server",
			serverCfg.StorageBandwidth, serverCfg.StorageParallelism)
	}

	// Shard assignment through the deterministic draw family: node i
	// trains shard perm[i], so which node holds which slice is a pure
	// function of the seed.
	spec := w.Spec()
	perm := dist.Permutation(spec.Seed, shardStream, n)

	nodes := make([]*nodeState, n)
	nodeEPs := make([]int, n)
	totalConsumers := 0
	for i := range nodes {
		tb := hardware.NewTestbed(k, nodeCfgs[i])
		store := tb.Store
		if cfg.RemoteStore {
			store = &storage.Store{Disk: serverDisk, Cache: tb.Cache,
				Remote: remoteFetch{fab: fab, src: storeEP, node: i}}
		}
		shardW := w.WithDataset(dataset.Shard(w.Dataset, perm[i], n))
		env := &loader.Env{RT: k, CPU: tb.CPU, GPUs: tb.GPUs, Store: store, WG: wg,
			Pool: data.NewPool()}
		nodes[i] = &nodeState{tb: tb, ld: f.New(env, shardW.Spec())}
		nodeEPs[i] = i
		totalConsumers += len(tb.GPUs)
	}

	// Two cyclic barriers frame the synchronized region of each step: all
	// consumers arrive at `arrive`, node leaders run the collective, and
	// everyone leaves through `resume`. A rank exiting early (EOF, error)
	// breaks all of it so the cluster unwinds deterministically.
	arrive := simtime.NewBarrier(k, totalConsumers)
	resume := simtime.NewBarrier(k, totalConsumers)
	ring := netsim.NewRing(k, fab, nodeEPs)
	breakAll := func() {
		arrive.Break()
		resume.Break()
		ring.Break()
	}

	for _, nd := range nodes {
		if err := nd.ld.Start(ctx); err != nil {
			return err
		}
	}

	start := k.Now()
	var steps atomic.Int64
	var lastEnd atomic.Int64
	consumers := simtime.NewWaitGroup(k)
	var consumeErr atomic.Value
	for rank, nd := range nodes {
		rank, nd := rank, nd
		for g := range nd.tb.GPUs {
			g := g
			consumers.Go("dist-consumer", func() {
				dev := nd.tb.GPUs[g]
				for {
					t0 := k.Now()
					b, err := nd.ld.Next(ctx, g)
					if errors.Is(err, io.EOF) {
						// This rank is out of data: release the others.
						breakAll()
						return
					}
					if err != nil {
						consumeErr.Store(err)
						breakAll()
						return
					}
					nd.dataStall.Add(int64(k.Now() - t0))
					if err := dev.Train(ctx, w.GPUStep); err != nil {
						breakAll()
						return
					}
					nd.samples.Add(int64(len(b.Samples)))
					b.Release()

					// Synchronized region: barrier, collective, resume.
					t1 := k.Now()
					if _, err := arrive.Wait(ctx); err != nil {
						return // broken: another rank finished
					}
					t2 := k.Now()
					nd.barrierStall.Add(int64(t2 - t1))
					if g == 0 {
						if err := ring.AllReduce(ctx, rank, cfg.GradientBytes); err != nil {
							if !errors.Is(err, simtime.ErrBarrierBroken) {
								consumeErr.Store(err)
							}
							breakAll()
							return
						}
					}
					if _, err := resume.Wait(ctx); err != nil {
						return
					}
					nd.networkStall.Add(int64(k.Now() - t2))
					if rank == 0 && g == 0 {
						steps.Add(1)
					}
					storeMax(&lastEnd, int64(k.Now()))
				}
			})
		}
	}
	if err := consumers.Wait(ctx); err != nil {
		return err
	}
	for _, nd := range nodes {
		nd.ld.Stop()
	}
	if err := wg.Wait(ctx); err != nil {
		return err
	}
	if e := consumeErr.Load(); e != nil {
		return e.(error)
	}

	end := time.Duration(lastEnd.Load())
	if end < start {
		end = k.Now()
	}
	rep.TrainTime = end - start
	rep.Steps = steps.Load()
	rep.NetworkBytes = fab.BytesMoved()

	dur := rep.TrainTime.Seconds()
	busyAll, gpuCount := 0.0, 0
	for i, nd := range nodes {
		busy := 0.0
		for _, g := range nd.tb.GPUs {
			busy += g.BusySeconds()
		}
		busyAll += busy
		gpuCount += len(nd.tb.GPUs)
		util := 0.0
		if dur > 0 {
			util = min(100, 100*busy/(float64(len(nd.tb.GPUs))*dur))
		}
		rep.Samples += nd.samples.Load()
		rep.PerNode = append(rep.PerNode, NodeStats{
			Node:         i,
			Hardware:     fmt.Sprintf("%s/%dc", nodeCfgs[i].Name, nodeCfgs[i].Cores),
			GPUs:         len(nd.tb.GPUs),
			Samples:      nd.samples.Load(),
			DataStall:    time.Duration(nd.dataStall.Load()),
			BarrierStall: time.Duration(nd.barrierStall.Load()),
			NetworkStall: time.Duration(nd.networkStall.Load()),
			GPUUtil:      util,
		})
		nd.tb.Cache.Recycle()
	}
	if dur > 0 {
		rep.AvgGPUUtil = min(100, 100*busyAll/(float64(gpuCount)*dur))
	}
	return nil
}

func storeMax(dst *atomic.Int64, v int64) {
	for {
		cur := dst.Load()
		if v <= cur || dst.CompareAndSwap(cur, v) {
			return
		}
	}
}

// String summarizes the report.
func (r *Report) String() string {
	return fmt.Sprintf("%s/%s on %d nodes: %.1fs, %d steps (%.0f ms/step), GPU %.1f%%, net stall %.1f%%",
		r.Workload, r.Loader, r.Nodes, r.TrainTime.Seconds(), r.Steps,
		r.StepTime().Seconds()*1000, r.AvgGPUUtil, 100*r.NetworkStallShare())
}
