// Package distributed extends the single-server evaluation to the
// multi-node data-parallel setting the paper discusses in §6: each node is
// a full testbed (CPU pool, GPUs, storage) running its own loader instance
// over a dataset shard, and every training step ends with a gradient
// all-reduce across nodes over the cluster interconnect.
//
// The paper's claim is qualitative — "MinatoLoader retains its
// preprocessing and batch construction benefits" per node — and this
// package makes it measurable: the per-step barrier means a single
// input-stalled node stalls the whole cluster, so loader quality compounds
// with scale.
package distributed

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

// Config describes the cluster.
type Config struct {
	// Nodes is the number of servers.
	Nodes int
	// Node is the per-node hardware (§3's Config A or B).
	Node hardware.Config
	// GradientBytes is the model gradient size exchanged per step.
	GradientBytes int64
	// InterconnectBW is the per-node network bandwidth (bytes/s).
	InterconnectBW float64
	// AllReduceLatency is the fixed per-step synchronization latency.
	AllReduceLatency time.Duration
}

// DefaultConfig returns a 200 Gb/s-interconnect cluster of Config A nodes.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:            nodes,
		Node:             hardware.ConfigA(),
		GradientBytes:    350 << 20, // ResNet50-scale gradients
		InterconnectBW:   25e9,
		AllReduceLatency: 2 * time.Millisecond,
	}
}

// allReduceTime models a ring all-reduce: each node sends and receives
// 2·(n−1)/n of the gradient at the interconnect bandwidth.
func (c Config) allReduceTime() time.Duration {
	if c.Nodes <= 1 {
		return 0
	}
	vol := 2 * float64(c.GradientBytes) * float64(c.Nodes-1) / float64(c.Nodes)
	return c.AllReduceLatency + time.Duration(vol/c.InterconnectBW*float64(time.Second))
}

// Report is the outcome of a distributed run.
type Report struct {
	Workload string
	Loader   string
	Nodes    int
	// TrainTime is the cluster wall time (all nodes synchronized).
	TrainTime time.Duration
	// Steps is the number of synchronized steps completed.
	Steps int64
	// Samples aggregates all nodes.
	Samples int64
	// AvgGPUUtil averages across every GPU in the cluster.
	AvgGPUUtil float64
	// AllReduceTime is the per-step synchronization cost applied.
	AllReduceTime time.Duration
}

// Run executes a distributed data-parallel session on a fresh virtual
// kernel. Every node consumes per-GPU batches from its own loader; after
// each per-GPU step, nodes synchronize on a global barrier and pay the
// all-reduce cost — the bulk-synchronous-parallel structure of DDP.
func Run(cfg Config, w workload.Workload, f trainer.Factory) (*Report, error) {
	if cfg.Nodes <= 0 {
		return nil, errors.New("distributed: need at least one node")
	}
	k := simtime.NewVirtual()
	rep := &Report{
		Workload: w.Name, Loader: f.Name, Nodes: cfg.Nodes,
		AllReduceTime: cfg.allReduceTime(),
	}
	var runErr error
	k.Run(func() {
		runErr = run(k, cfg, w, f, rep)
	})
	k.Drain()
	if runErr != nil {
		return nil, runErr
	}
	return rep, nil
}

func run(k *simtime.Virtual, cfg Config, w workload.Workload, f trainer.Factory, rep *Report) error {
	ctx := context.Background()
	wg := simtime.NewWaitGroup(k)

	type node struct {
		tb *hardware.Testbed
		ld loader.Loader
	}
	nodes := make([]*node, cfg.Nodes)
	totalConsumers := 0
	for i := range nodes {
		tb := hardware.NewTestbed(k, cfg.Node)
		shardW := w.WithDataset(dataset.Shard(w.Dataset, i, cfg.Nodes))
		spec := shardW.Spec()
		env := &loader.Env{RT: k, CPU: tb.CPU, GPUs: tb.GPUs, Store: tb.Store, WG: wg,
			Pool: data.NewPool()}
		nodes[i] = &node{tb: tb, ld: f.New(env, spec)}
		totalConsumers += len(tb.GPUs)
	}

	barrier := simtime.NewBarrier(k, totalConsumers)
	syncCost := cfg.allReduceTime()

	for _, n := range nodes {
		if err := n.ld.Start(ctx); err != nil {
			return err
		}
	}

	start := k.Now()
	var steps, samples atomic.Int64
	var lastEnd atomic.Int64
	consumers := simtime.NewWaitGroup(k)
	var consumeErr atomic.Value
	for _, n := range nodes {
		n := n
		for g := range n.tb.GPUs {
			g := g
			consumers.Go("dist-consumer", func() {
				dev := n.tb.GPUs[g]
				for {
					b, err := n.ld.Next(ctx, g)
					if errors.Is(err, io.EOF) {
						// This rank is out of data: release the others.
						barrier.Break()
						return
					}
					if err != nil {
						consumeErr.Store(err)
						barrier.Break()
						return
					}
					if err := dev.Train(ctx, w.GPUStep); err != nil {
						barrier.Break()
						return
					}
					samples.Add(int64(len(b.Samples)))
					b.Release()
					// Gradient synchronization: bulk-synchronous step.
					if _, err := barrier.Wait(ctx); err != nil {
						return // barrier broken: another rank finished
					}
					if syncCost > 0 {
						if err := k.Sleep(ctx, syncCost); err != nil {
							return
						}
					}
					steps.Add(1)
					now := int64(k.Now())
					for {
						cur := lastEnd.Load()
						if now <= cur || lastEnd.CompareAndSwap(cur, now) {
							break
						}
					}
				}
			})
		}
	}
	if err := consumers.Wait(ctx); err != nil {
		return err
	}
	for _, n := range nodes {
		n.ld.Stop()
	}
	if err := wg.Wait(ctx); err != nil {
		return err
	}
	if e := consumeErr.Load(); e != nil {
		return e.(error)
	}

	end := time.Duration(lastEnd.Load())
	if end < start {
		end = k.Now()
	}
	for _, n := range nodes {
		n.tb.Cache.Recycle()
	}
	rep.TrainTime = end - start
	rep.Steps = steps.Load()
	rep.Samples = samples.Load()

	dur := rep.TrainTime.Seconds()
	if dur > 0 {
		busy := 0.0
		count := 0
		for _, n := range nodes {
			for _, g := range n.tb.GPUs {
				busy += g.BusySeconds()
				count++
			}
		}
		rep.AvgGPUUtil = 100 * busy / (float64(count) * dur)
		if rep.AvgGPUUtil > 100 {
			rep.AvgGPUUtil = 100
		}
	}
	return nil
}

// String summarizes the report.
func (r *Report) String() string {
	return fmt.Sprintf("%s/%s on %d nodes: %.1fs, %d steps, GPU %.1f%%",
		r.Workload, r.Loader, r.Nodes, r.TrainTime.Seconds(), r.Steps, r.AvgGPUUtil)
}
