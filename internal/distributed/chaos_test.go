package distributed

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/chaos"
	"github.com/minatoloader/minato/internal/loaders"
)

// The acceptance scenario: node 3 of 8 crashes at t=5s and rejoins at
// t=8s. The run must complete its full round budget, attribute the dead
// node's idle rounds to Downtime, measure a recovery time, and reproduce
// bit-identically.
func TestCrashRejoinElastic(t *testing.T) {
	f, _ := loaders.ByName("minato")
	cfg := smallCluster(8).WithChaos(chaos.CrashNode(3, 5*time.Second, 8*time.Second))
	run := func() *Report {
		rep, err := Run(cfg, distWorkload(15), f)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	if rep.Steps != 15 {
		t.Fatalf("steps = %d, want the full 15-round budget", rep.Steps)
	}
	if rep.PerNode[3].Downtime == 0 {
		t.Fatal("crashed node recorded no downtime")
	}
	for i, n := range rep.PerNode {
		if i != 3 && n.Downtime != 0 {
			t.Fatalf("node %d (never crashed) has downtime %v", i, n.Downtime)
		}
	}
	if len(rep.Faults) != 2 {
		t.Fatalf("faults = %+v, want crash+join", rep.Faults)
	}
	crash, join := rep.Faults[0], rep.Faults[1]
	if crash.Event.Kind != chaos.NodeCrash || join.Event.Kind != chaos.NodeJoin {
		t.Fatalf("fault order = %v, %v", crash.Event, join.Event)
	}
	// Membership changes land at the first step boundary at or after the
	// scripted time, never before it.
	if crash.AppliedAt < 5*time.Second || join.AppliedAt < 8*time.Second {
		t.Fatalf("applied early: crash %v, join %v", crash.AppliedAt, join.AppliedAt)
	}
	if crash.ClearedAt != join.AppliedAt {
		t.Fatalf("crash cleared at %v, join applied at %v", crash.ClearedAt, join.AppliedAt)
	}
	// Recovery: rejoin event to the node's first completed synchronized
	// step. It spans at least the join's boundary-alignment delay.
	if join.Recovery <= 0 {
		t.Fatalf("join recovery = %v, want > 0", join.Recovery)
	}
	if rep.RecoveryTime() != join.Recovery {
		t.Fatalf("RecoveryTime() = %v, want %v", rep.RecoveryTime(), join.Recovery)
	}
	if rep.StepP50 <= 0 || rep.StepP99 < rep.StepP50 {
		t.Fatalf("step quantiles p50=%v p99=%v", rep.StepP50, rep.StepP99)
	}
	// Identical script, identical run: bit-identical report.
	if rep2 := run(); !reflect.DeepEqual(rep, rep2) {
		t.Fatalf("chaos run not deterministic:\n%+v\n%+v", rep, rep2)
	}
}

func TestAllNodesLostReturnsErrNodeLost(t *testing.T) {
	f, _ := loaders.ByName("minato")
	script := chaos.Compose("wipeout",
		chaos.CrashNode(0, time.Second, 0),
		chaos.CrashNode(1, 2*time.Second, 0),
	)
	_, err := Run(smallCluster(2).WithChaos(script), distWorkload(15), f)
	if !errors.Is(err, chaos.ErrNodeLost) {
		t.Fatalf("err = %v, want ErrNodeLost", err)
	}
}

func TestLinkFlapAppliesAtExactTimesAndIsDeterministic(t *testing.T) {
	f, _ := loaders.ByName("minato")
	cfg := smallCluster(2).WithChaos(chaos.FlapLink(1, 2*time.Second, 50, 2*time.Second))
	rep, err := Run(cfg, distWorkload(10), f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Faults) != 1 {
		t.Fatalf("faults = %+v, want one link-degrade window", rep.Faults)
	}
	fs := rep.Faults[0]
	// Continuous events fire at exactly their scripted times.
	if fs.Event.Kind != chaos.LinkDegrade || fs.AppliedAt != 2*time.Second || fs.ClearedAt != 4*time.Second {
		t.Fatalf("window = %+v, want link-degrade [2s, 4s]", fs)
	}
	if fs.StallDuring <= 0 {
		t.Fatalf("50× NIC degradation attributed no stall (%v)", fs.StallDuring)
	}
	rep2, err := Run(cfg, distWorkload(10), f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatal("link-flap run not deterministic")
	}
}

func TestDiskBrownoutAndWorkerStallRecorded(t *testing.T) {
	f, _ := loaders.ByName("minato")
	script := chaos.Compose("mixed",
		chaos.BrownoutDisk(time.Second, 8, 2*time.Second),
		chaos.StallWorkers(0, time.Second, 2, time.Second),
	)
	rep, err := Run(smallCluster(1).WithChaos(script), distWorkload(10), f)
	if err != nil {
		t.Fatal(err)
	}
	var disk, stall *chaos.FaultStat
	for i := range rep.Faults {
		switch rep.Faults[i].Event.Kind {
		case chaos.DiskDegrade:
			disk = &rep.Faults[i]
		case chaos.WorkerStall:
			stall = &rep.Faults[i]
		}
	}
	if disk == nil || stall == nil {
		t.Fatalf("faults = %+v, want disk-degrade and worker-stall", rep.Faults)
	}
	if disk.AppliedAt != time.Second || disk.ClearedAt != 3*time.Second {
		t.Fatalf("disk window = [%v, %v], want [1s, 3s]", disk.AppliedAt, disk.ClearedAt)
	}
	// Hog work completes under processor sharing, so the stall clears at
	// or after its nominal end.
	if stall.ClearedAt < 2*time.Second {
		t.Fatalf("worker stall cleared at %v, before its duration elapsed", stall.ClearedAt)
	}
}

// Multi-straggler and multi-degraded-link configs (the slice form) apply
// per entry and keep the single-fault sugar working.
func TestStragglerAndDegradedSlices(t *testing.T) {
	cfg := smallCluster(4).WithStraggler(1, 4).WithStraggler(2, 2)
	cfgs := cfg.nodeConfigs()
	base := smallCluster(4).Node.Cores
	if cfgs[1].Cores != base/4 || cfgs[2].Cores != base/2 {
		t.Fatalf("straggler cores = %d, %d, want %d, %d", cfgs[1].Cores, cfgs[2].Cores, base/4, base/2)
	}
	if cfgs[0].Cores != base || cfgs[3].Cores != base {
		t.Fatal("non-straggler nodes were modified")
	}
	legacy := smallCluster(4)
	legacy.StragglerNode, legacy.StragglerFactor = 3, 8
	if got := legacy.nodeConfigs()[3].Cores; got != base/8 {
		t.Fatalf("legacy straggler cores = %d, want %d", got, base/8)
	}
	deg := smallCluster(4).WithDegradedLink(0, 2).WithDegradedLink(2, 4)
	if len(deg.degradedFaults()) != 2 {
		t.Fatalf("degraded faults = %+v", deg.degradedFaults())
	}
}
