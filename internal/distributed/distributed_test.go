package distributed

import (
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/workload"
)

func distWorkload(iters int) workload.Workload {
	w := workload.Speech(1, 3*time.Second)
	w.Dataset = dataset.Subset(w.Dataset, 4000)
	return w.WithIterations(iters)
}

func smallCluster(nodes int) Config {
	c := DefaultConfig(nodes)
	c.Node = hardware.ConfigA().WithGPUs(1)
	return c
}

func TestSingleNodeRuns(t *testing.T) {
	f, _ := loaders.ByName("minato")
	rep, err := Run(smallCluster(1), distWorkload(15), f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 15 {
		t.Fatalf("steps = %d, want 15", rep.Steps)
	}
	if rep.AllReduceTime != 0 {
		t.Fatalf("single node should not pay all-reduce: %v", rep.AllReduceTime)
	}
}

func TestTwoNodesSynchronize(t *testing.T) {
	f, _ := loaders.ByName("minato")
	rep, err := Run(smallCluster(2), distWorkload(15), f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 2 {
		t.Fatal("node count")
	}
	// Both ranks run ≈15 iterations each before the first EOF breaks the
	// barrier; steps counts completed synchronized steps from all ranks.
	if rep.Steps < 20 {
		t.Fatalf("steps = %d, want ≈30 synchronized steps", rep.Steps)
	}
	if rep.AllReduceTime <= 0 {
		t.Fatal("no all-reduce cost applied")
	}
}

func TestMinatoRetainsAdvantageAcrossNodes(t *testing.T) {
	// §6: MinatoLoader's benefits persist under data parallelism; with a
	// per-step barrier an input-stalled rank stalls the cluster, so the
	// gap versus PyTorch should not shrink with more nodes.
	w := distWorkload(20)
	pt, _ := loaders.ByName("pytorch")
	mn, _ := loaders.ByName("minato")

	ptRep, err := Run(smallCluster(2), w, pt)
	if err != nil {
		t.Fatal(err)
	}
	mnRep, err := Run(smallCluster(2), w, mn)
	if err != nil {
		t.Fatal(err)
	}
	speedup := ptRep.TrainTime.Seconds() / mnRep.TrainTime.Seconds()
	t.Logf("2 nodes: pytorch=%.1fs minato=%.1fs speedup=%.2fx",
		ptRep.TrainTime.Seconds(), mnRep.TrainTime.Seconds(), speedup)
	if speedup < 1.5 {
		t.Fatalf("distributed speedup = %.2fx, want >1.5x", speedup)
	}
}

func TestAllReduceTimeRingModel(t *testing.T) {
	c := DefaultConfig(4)
	c.GradientBytes = 100e6
	c.InterconnectBW = 10e9
	c.AllReduceLatency = 0
	// ring: 2·(3/4)·100MB / 10GB/s = 15 ms.
	got := c.allReduceTime()
	want := 15 * time.Millisecond
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Fatalf("allReduceTime = %v, want ≈%v", got, want)
	}
}

func TestZeroNodesRejected(t *testing.T) {
	f, _ := loaders.ByName("minato")
	if _, err := Run(Config{Nodes: 0}, distWorkload(5), f); err == nil {
		t.Fatal("no error for zero nodes")
	}
}
