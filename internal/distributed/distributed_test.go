package distributed

import (
	"reflect"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/workload"
)

func distWorkload(iters int) workload.Workload {
	w := workload.Speech(1, 3*time.Second)
	w.Dataset = dataset.Subset(w.Dataset, 4000)
	return w.WithIterations(iters)
}

func smallCluster(nodes int) Config {
	c := DefaultConfig(nodes)
	c.Node = hardware.ConfigA().WithGPUs(1)
	return c
}

func TestSingleNodeRuns(t *testing.T) {
	f, _ := loaders.ByName("minato")
	rep, err := Run(smallCluster(1), distWorkload(15), f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 15 {
		t.Fatalf("steps = %d, want 15", rep.Steps)
	}
	if len(rep.PerNode) != 1 {
		t.Fatalf("PerNode entries = %d, want 1", len(rep.PerNode))
	}
	// A single node runs no ring collective; with a remote store its only
	// fabric traffic is dataset fetches.
	if got := rep.PerNode[0].NetworkStall; got != 0 {
		t.Fatalf("single node paid %v network (all-reduce) stall", got)
	}
	if rep.NetworkBytes == 0 {
		t.Fatal("remote store moved no bytes over the fabric")
	}
}

func TestLocalStoreKeepsFabricQuietOnOneNode(t *testing.T) {
	f, _ := loaders.ByName("minato")
	cfg := smallCluster(1)
	cfg.RemoteStore = false
	rep, err := Run(cfg, distWorkload(10), f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NetworkBytes != 0 {
		t.Fatalf("local-store single node moved %d fabric bytes, want 0", rep.NetworkBytes)
	}
}

func TestTwoNodesSynchronize(t *testing.T) {
	f, _ := loaders.ByName("minato")
	rep, err := Run(smallCluster(2), distWorkload(15), f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 2 {
		t.Fatal("node count")
	}
	// Synchronized cluster steps: ≈15 rounds before the first EOF breaks
	// the barrier.
	if rep.Steps < 10 {
		t.Fatalf("steps = %d, want ≈15 synchronized steps", rep.Steps)
	}
	// Gradient traffic must be real fabric bytes: ≥ steps × ring volume
	// (2·(n−1)/n of the gradient per node per step).
	gradPerStep := 2 * rep.Nodes * int(float64(350<<20)/float64(rep.Nodes)) // 2·(n−1) chunks × n nodes, n=2
	if rep.NetworkBytes < int64(rep.Steps)*int64(gradPerStep)/2 {
		t.Fatalf("NetworkBytes = %d, too low for %d steps of ring traffic", rep.NetworkBytes, rep.Steps)
	}
	for _, ns := range rep.PerNode {
		if ns.NetworkStall <= 0 {
			t.Fatalf("node %d reports no network stall across %d synchronized steps", ns.Node, rep.Steps)
		}
	}
	if rep.NetworkStallShare() <= 0 || rep.NetworkStallShare() >= 1 {
		t.Fatalf("NetworkStallShare = %v, want in (0,1)", rep.NetworkStallShare())
	}
}

func TestRunIsDeterministic(t *testing.T) {
	// Bit-identical multi-node runs: every field of the report — timings,
	// per-node stall attribution, fabric byte counts — must match across
	// two identical-seed runs.
	f, _ := loaders.ByName("minato")
	cfg := smallCluster(2).WithStraggler(1, 4)
	r1, err := Run(cfg, distWorkload(12), f)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, distWorkload(12), f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("nondeterministic multi-node run:\n run1: %+v\n run2: %+v", r1, r2)
	}
}

func TestStragglerStallsTheCluster(t *testing.T) {
	// One core-starved node drags every rank through the barrier: healthy
	// nodes see their stall move into BarrierStall, and cluster step time
	// grows versus the balanced cluster.
	f, _ := loaders.ByName("pytorch")
	w := distWorkload(15)
	base, err := Run(smallCluster(2), w, f)
	if err != nil {
		t.Fatal(err)
	}
	strag, err := Run(smallCluster(2).WithStraggler(1, 16), w, f)
	if err != nil {
		t.Fatal(err)
	}
	if strag.StepTime() <= base.StepTime() {
		t.Fatalf("straggler cluster step %v not slower than balanced %v",
			strag.StepTime(), base.StepTime())
	}
	healthy := strag.PerNode[0]
	if healthy.BarrierStall <= base.PerNode[0].BarrierStall {
		t.Fatalf("healthy node's barrier stall did not grow: %v vs %v",
			healthy.BarrierStall, base.PerNode[0].BarrierStall)
	}
}

func TestMinatoBeatsPyTorchUnderStraggler(t *testing.T) {
	// The acceptance scenario: with one input-stalled node, the per-step
	// barrier makes the whole cluster pay that node's preprocessing — so
	// the loader that hides preprocessing wins on whole-cluster step time.
	w := distWorkload(15)
	cfg := smallCluster(2).WithStraggler(1, 8)
	pt, _ := loaders.ByName("pytorch")
	mn, _ := loaders.ByName("minato")
	ptRep, err := Run(cfg, w, pt)
	if err != nil {
		t.Fatal(err)
	}
	mnRep, err := Run(cfg, w, mn)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(ptRep.StepTime()) / float64(mnRep.StepTime())
	t.Logf("straggler cluster: pytorch %v/step, minato %v/step, speedup %.2fx",
		ptRep.StepTime(), mnRep.StepTime(), speedup)
	if speedup < 1.5 {
		t.Fatalf("straggler step-time speedup = %.2fx, want >1.5x", speedup)
	}
}

func TestMinatoRetainsAdvantageAcrossNodes(t *testing.T) {
	// §6: MinatoLoader's benefits persist under data parallelism; with a
	// per-step barrier an input-stalled rank stalls the cluster, so the
	// gap versus PyTorch should not shrink with more nodes.
	w := distWorkload(20)
	pt, _ := loaders.ByName("pytorch")
	mn, _ := loaders.ByName("minato")

	ptRep, err := Run(smallCluster(2), w, pt)
	if err != nil {
		t.Fatal(err)
	}
	mnRep, err := Run(smallCluster(2), w, mn)
	if err != nil {
		t.Fatal(err)
	}
	speedup := ptRep.TrainTime.Seconds() / mnRep.TrainTime.Seconds()
	t.Logf("2 nodes: pytorch=%.1fs minato=%.1fs speedup=%.2fx",
		ptRep.TrainTime.Seconds(), mnRep.TrainTime.Seconds(), speedup)
	if speedup < 1.5 {
		t.Fatalf("distributed speedup = %.2fx, want >1.5x", speedup)
	}
}

func TestDegradedLinkShowsUpAsNetworkStall(t *testing.T) {
	f, _ := loaders.ByName("minato")
	w := distWorkload(12)
	base, err := Run(smallCluster(2), w, f)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := Run(smallCluster(2).WithDegradedLink(1, 8), w, f)
	if err != nil {
		t.Fatal(err)
	}
	if deg.NetworkStallShare() <= base.NetworkStallShare() {
		t.Fatalf("degraded link did not raise network stall share: %.4f vs %.4f",
			deg.NetworkStallShare(), base.NetworkStallShare())
	}
	if deg.StepTime() <= base.StepTime() {
		t.Fatalf("degraded link did not slow the cluster step: %v vs %v",
			deg.StepTime(), base.StepTime())
	}
}

func TestHeterogeneousMix(t *testing.T) {
	f, _ := loaders.ByName("minato")
	cfg := DefaultConfig(0).WithMix(
		hardware.ConfigA().WithGPUs(1),
		hardware.ConfigB().WithGPUs(1),
	)
	rep, err := Run(cfg, distWorkload(10), f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 2 || len(rep.PerNode) != 2 {
		t.Fatalf("mix run has %d nodes / %d stats, want 2/2", rep.Nodes, len(rep.PerNode))
	}
	if rep.PerNode[0].Hardware == rep.PerNode[1].Hardware {
		t.Fatalf("mix nodes report identical hardware %q", rep.PerNode[0].Hardware)
	}
}

func TestZeroNodesRejected(t *testing.T) {
	f, _ := loaders.ByName("minato")
	if _, err := Run(Config{Nodes: 0}, distWorkload(5), f); err == nil {
		t.Fatal("no error for zero nodes")
	}
}
