package storage

import (
	"testing"

	"github.com/minatoloader/minato/internal/data"
)

// ReserveCapacity carves a second cache layer's budget out of the page
// cache so the two layers never double-count the same simulated memory.
func TestReserveCapacity(t *testing.T) {
	c := NewPageCache(100)
	if got := c.ReserveCapacity(30); got != 30 {
		t.Fatalf("granted %d, want 30", got)
	}
	if got := c.Stats().Capacity; got != 70 {
		t.Fatalf("capacity after reserve = %d, want 70", got)
	}
	// Contents are evicted from the LRU tail until they fit the reduced pool.
	c.Put(data.KeyOf("k", 1), 30)
	c.Put(data.KeyOf("k", 2), 30)
	if got := c.ReserveCapacity(30); got != 30 {
		t.Fatalf("granted %d, want 30", got)
	}
	if c.Get(data.KeyOf("k", 1)) {
		t.Fatal("LRU entry survived a reservation that shrank below contents")
	}
	if !c.Get(data.KeyOf("k", 2)) {
		t.Fatal("MRU entry should have survived")
	}
	s := c.Stats()
	if s.Capacity != 40 || s.Used != 30 || s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReserveCapacityClampsToPool(t *testing.T) {
	c := NewPageCache(100)
	if got := c.ReserveCapacity(250); got != 100 {
		t.Fatalf("granted %d, want the whole pool (100)", got)
	}
	if got := c.Stats().Capacity; got != 0 {
		t.Fatalf("capacity = %d, want 0", got)
	}
	if got := c.ReserveCapacity(10); got != 0 {
		t.Fatalf("reservation from an empty pool granted %d", got)
	}
}

func TestReserveCapacityIgnoresNonPositive(t *testing.T) {
	c := NewPageCache(100)
	if got := c.ReserveCapacity(0); got != 0 {
		t.Fatalf("granted %d for n=0", got)
	}
	if got := c.ReserveCapacity(-5); got != 0 {
		t.Fatalf("granted %d for n<0", got)
	}
	if got := c.Stats().Capacity; got != 100 {
		t.Fatalf("capacity = %d, want untouched 100", got)
	}
}

// Capacity exposes the current (post-carve) capacity so callers can
// validate a reservation before committing to the evicting shrink.
func TestCapacityAccessor(t *testing.T) {
	c := NewPageCache(100)
	if got := c.Capacity(); got != 100 {
		t.Fatalf("capacity = %d, want 100", got)
	}
	c.ReserveCapacity(30)
	if got := c.Capacity(); got != 70 {
		t.Fatalf("capacity after reserve = %d, want 70", got)
	}
}
