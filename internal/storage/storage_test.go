package storage

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/simtime"
)

func TestDiskReadTakesBandwidthTime(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		d := NewDisk(k, "nvme", 1e9, 1) // 1 GB/s
		start := k.Now()
		if err := d.Read(context.Background(), 500e6); err != nil {
			t.Fatal(err)
		}
		if got := (k.Now() - start).Seconds(); math.Abs(got-0.5) > 0.01 {
			t.Fatalf("500MB at 1GB/s took %.3fs, want 0.5s", got)
		}
		if br := d.BytesRead(); math.Abs(float64(br)-500e6) > 1e6 {
			t.Fatalf("BytesRead = %d, want ≈500e6", br)
		}
	})
}

func TestDiskConcurrentReadersShareBandwidth(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		d := NewDisk(k, "nvme", 2e9, 2) // 2 GB/s total, 2 full-speed streams
		wg := simtime.NewWaitGroup(k)
		start := k.Now()
		// 4 concurrent 1 GB reads: total 4 GB at 2 GB/s aggregate = 2s.
		for i := 0; i < 4; i++ {
			wg.Go("reader", func() {
				_ = d.Read(context.Background(), 1e9)
			})
		}
		_ = wg.Wait(context.Background())
		if got := (k.Now() - start).Seconds(); math.Abs(got-2) > 0.05 {
			t.Fatalf("4GB over 2GB/s took %.3fs, want ≈2s", got)
		}
	})
}

func TestPageCacheLRUEviction(t *testing.T) {
	c := NewPageCache(100)
	c.Put(data.KeyOf("k", 1), 40)
	c.Put(data.KeyOf("k", 2), 40)
	if !c.Get(data.KeyOf("k", 1)) || !c.Get(data.KeyOf("k", 2)) {
		t.Fatal("fresh entries missing")
	}
	// "a" is now more recently used than... b was touched after a; touch a
	// again so b is LRU.
	c.Get(data.KeyOf("k", 1))
	c.Put(data.KeyOf("k", 3), 40) // evicts b
	if c.Get(data.KeyOf("k", 2)) {
		t.Fatal("b should have been evicted (LRU)")
	}
	if !c.Get(data.KeyOf("k", 1)) || !c.Get(data.KeyOf("k", 3)) {
		t.Fatal("a/c should remain")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Used != 80 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPageCacheOversizedObjectNotCached(t *testing.T) {
	c := NewPageCache(10)
	c.Put(data.KeyOf("big", 0), 100)
	if c.Get(data.KeyOf("big", 0)) {
		t.Fatal("oversized object cached")
	}
	if c.Stats().Used != 0 {
		t.Fatal("used nonzero")
	}
}

func TestPageCacheDuplicatePut(t *testing.T) {
	c := NewPageCache(100)
	c.Put(data.KeyOf("k", 1), 30)
	c.Put(data.KeyOf("k", 1), 30)
	if got := c.Stats().Used; got != 30 {
		t.Fatalf("Used = %d after duplicate Put, want 30", got)
	}
}

func TestStoreCachesAfterFirstRead(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		disk := NewDisk(k, "nvme", 1e9, 1)
		st := &Store{Disk: disk, Cache: NewPageCache(1 << 30)}
		s := &data.Sample{Key: data.KeyOf("x", 1), RawBytes: 100e6, Bytes: 100e6}

		start := k.Now()
		if err := st.ReadSample(context.Background(), k, s); err != nil {
			t.Fatal(err)
		}
		coldTime := k.Now() - start
		if coldTime < 90*time.Millisecond {
			t.Fatalf("cold read took %v, want ≈100ms", coldTime)
		}

		start = k.Now()
		if err := st.ReadSample(context.Background(), k, s); err != nil {
			t.Fatal(err)
		}
		if warm := k.Now() - start; warm > time.Millisecond {
			t.Fatalf("warm read took %v, want ≈0", warm)
		}
		if hr := st.Cache.HitRate(); math.Abs(hr-0.5) > 0.01 {
			t.Fatalf("hit rate = %.2f, want 0.5", hr)
		}
	})
}

func TestWorkingSetLargerThanCacheThrashes(t *testing.T) {
	// §5.5: dataset ≫ cache ⇒ near-zero hit rate on cyclic (epoch) access.
	k := simtime.NewVirtual()
	k.Run(func() {
		disk := NewDisk(k, "nvme", 100e9, 1)
		st := &Store{Disk: disk, Cache: NewPageCache(50)}
		// 10 samples of 10 bytes = 100 bytes working set, cache 50.
		for epoch := 0; epoch < 3; epoch++ {
			for i := 0; i < 10; i++ {
				s := &data.Sample{Key: data.KeyOf("k", i), RawBytes: 10}
				if err := st.ReadSample(context.Background(), k, s); err != nil {
					t.Fatal(err)
				}
			}
		}
		if hr := st.Cache.HitRate(); hr > 0.05 {
			t.Fatalf("hit rate = %.2f under cyclic thrash, want ≈0", hr)
		}
	})
}

func TestReadRateGauge(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		d := NewDisk(k, "nvme", 1e9, 1)
		g := d.ReadRateGauge(k)
		_ = d.Read(context.Background(), 1e9) // 1s at 1GB/s
		r := g()
		if math.Abs(r-1e9) > 5e7 {
			t.Fatalf("rate = %.2e, want ≈1e9", r)
		}
		_ = k.Sleep(context.Background(), time.Second)
		if r := g(); r > 1e6 {
			t.Fatalf("idle rate = %.2e, want ≈0", r)
		}
	})
}

// Property: cache used never exceeds capacity and never goes negative.
func TestQuickCacheCapacityInvariant(t *testing.T) {
	f := func(ops []struct {
		Key  uint8
		Size uint16
	}) bool {
		c := NewPageCache(1000)
		for _, op := range ops {
			c.Put(data.KeyOf("k", int(op.Key%32)), int64(op.Size))
			s := c.Stats()
			if s.Used < 0 || s.Used > s.Capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// sleepFetcher models the network leg of a remote store: each fetched byte
// costs time at a fixed bandwidth.
type sleepFetcher struct {
	rt    simtime.Runtime
	bw    float64
	bytes int64
}

func (f *sleepFetcher) Fetch(ctx context.Context, n int64) error {
	f.bytes += n
	return f.rt.Sleep(ctx, time.Duration(float64(n)/f.bw*float64(time.Second)))
}

func TestRemoteStorePaysNetworkOnColdReadsOnly(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		disk := NewDisk(k, "lustre", 1e9, 1)
		cache := NewPageCache(1 << 30)
		net := &sleepFetcher{rt: k, bw: 0.5e9}
		st := &Store{Disk: disk, Cache: cache, Remote: net}
		s := &data.Sample{Key: data.KeyOf("remote", 1), RawBytes: 100e6}

		start := k.Now()
		if err := st.ReadSample(context.Background(), k, s); err != nil {
			t.Fatal(err)
		}
		// Cold: 0.1s disk + 0.2s network.
		if got := (k.Now() - start).Seconds(); math.Abs(got-0.3) > 0.01 {
			t.Fatalf("cold remote read took %.3fs, want ≈0.3s", got)
		}
		if net.bytes != s.RawBytes {
			t.Fatalf("fetched %d network bytes, want %d", net.bytes, s.RawBytes)
		}

		start = k.Now()
		if err := st.ReadSample(context.Background(), k, s); err != nil {
			t.Fatal(err)
		}
		// Warm: the node-local page cache absorbs the read entirely.
		if got := k.Now() - start; got != 0 {
			t.Fatalf("warm remote read took %v, want 0", got)
		}
		if net.bytes != s.RawBytes {
			t.Fatal("cache hit paid the network again")
		}
	})
}
