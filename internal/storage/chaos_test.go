package storage

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

func TestSlowdownStretchesReads(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		d := NewDisk(k, "nvme", 1e9, 1)
		start := k.Now()
		_ = d.Read(context.Background(), 100e6) // 0.1s
		d.SetSlowdown(4)
		_ = d.Read(context.Background(), 100e6) // 0.4s
		d.SetSlowdown(1)
		_ = d.Read(context.Background(), 100e6) // 0.1s
		elapsed := (k.Now() - start).Seconds()
		if math.Abs(elapsed-0.6) > 0.02 {
			t.Fatalf("elapsed = %.3fs, want 0.6s", elapsed)
		}
		// Byte accounting counts payload, not degraded time.
		if br := d.BytesRead(); br != 300e6 {
			t.Fatalf("BytesRead = %d, want 300e6", br)
		}
	})
}

func TestSlowdownBelowOneClamped(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		d := NewDisk(k, "nvme", 1e9, 1)
		d.SetSlowdown(0.1) // cannot speed the disk up
		start := k.Now()
		_ = d.Read(context.Background(), 1e9)
		if got := (k.Now() - start).Seconds(); got < 0.99 {
			t.Fatalf("read completed in %.3fs despite clamp", got)
		}
	})
}

func TestDegradationMidStreamDoesNotLoseReads(t *testing.T) {
	// Failure injection: a background task degrades the disk while many
	// readers are in flight; all reads must still complete.
	k := simtime.NewVirtual()
	const readers = 20
	k.Run(func() {
		d := NewDisk(k, "nvme", 10e9, 2)
		wg := simtime.NewWaitGroup(k)
		for i := 0; i < readers; i++ {
			wg.Go("reader", func() {
				for j := 0; j < 5; j++ {
					if err := d.Read(context.Background(), 200e6); err != nil {
						t.Errorf("read: %v", err)
						return
					}
				}
			})
		}
		wg.Go("chaos", func() {
			_ = k.Sleep(context.Background(), 500*time.Millisecond)
			d.SetSlowdown(8)
			_ = k.Sleep(context.Background(), 2*time.Second)
			d.SetSlowdown(1)
		})
		_ = wg.Wait(context.Background())
		if br := d.BytesRead(); br != readers*5*200e6 {
			t.Fatalf("BytesRead = %d, want %d", br, int64(readers*5*200e6))
		}
	})
}
