package storage

import (
	"testing"

	"github.com/minatoloader/minato/internal/data"
)

func TestPageCacheTenantAttribution(t *testing.T) {
	c := NewPageCache(1000)
	a := c.JoinTenant()
	b := c.JoinTenant()
	if a == b || a == 0 || b == 0 {
		t.Fatalf("tenant ids %d/%d", a, b)
	}

	c.PutAs(a, data.KeyOf("k", 1), 100)
	if !c.GetAs(b, data.KeyOf("k", 1)) {
		t.Fatal("tenant b missed an entry tenant a inserted")
	}
	c.GetAs(a, data.KeyOf("k", 2)) // a miss for a

	sa, sb := c.TenantStats(a), c.TenantStats(b)
	if sa.Hits != 0 || sa.Misses != 1 || sa.Used != 100 {
		t.Fatalf("tenant a stats = %+v", sa)
	}
	if sb.Hits != 1 || sb.Misses != 0 || sb.Used != 0 {
		t.Fatalf("tenant b stats = %+v", sb)
	}
	// The global view sums the traffic.
	if g := c.Stats(); g.Hits != 1 || g.Misses != 1 || g.Used != 100 {
		t.Fatalf("global stats = %+v", g)
	}
}

// TestPageCacheTenantPartition verifies the soft capacity partition: with
// two joined tenants, an over-share tenant's entries are evicted before an
// under-share sibling's, even when the sibling's entry is the LRU tail.
func TestPageCacheTenantPartition(t *testing.T) {
	c := NewPageCache(100)
	a := c.JoinTenant()
	b := c.JoinTenant()

	// b inserts first (so its entry sits at the LRU tail), well under its
	// 50-byte share; a then fills the rest of the cache past its share.
	c.PutAs(b, data.KeyOf("b", 0), 20)
	for i := 0; i < 4; i++ {
		c.PutAs(a, data.KeyOf("a", i), 20)
	}
	// Cache full (100 bytes): a holds 80 (over share), b 20 (under). The
	// next insertion by a must evict a's own LRU entry, not b's tail.
	c.PutAs(a, data.KeyOf("a", 99), 20)
	if !c.GetAs(b, data.KeyOf("b", 0)) {
		t.Fatal("under-share tenant's entry was evicted")
	}
	if c.GetAs(a, data.KeyOf("a", 0)) {
		t.Fatal("over-share tenant's LRU entry survived")
	}
	sa := c.TenantStats(a)
	if sa.Evictions != 1 {
		t.Fatalf("tenant a evictions = %d, want 1", sa.Evictions)
	}
}

func TestPageCacheLeaveTenantReusesSlot(t *testing.T) {
	c := NewPageCache(1000)
	a := c.JoinTenant()
	c.PutAs(a, data.KeyOf("k", 1), 10)
	c.LeaveTenant(a)
	// a's entry is still resident, so its slot cannot be reused yet.
	if id := c.JoinTenant(); id == a {
		t.Fatalf("slot %d reused while its bytes were resident", a)
	}
	c.Recycle()
	if id := c.JoinTenant(); id != a {
		t.Fatalf("drained slot not reused: got %d, want %d", id, a)
	}
}

// TestPageCacheRecycleIdempotent covers the cluster-owned teardown path:
// Recycle may run more than once (e.g. Cluster.Close after a redundant
// call) without corrupting the node pool or the cache.
func TestPageCacheRecycleIdempotent(t *testing.T) {
	c := NewPageCache(1000)
	a := c.JoinTenant()
	c.PutAs(a, data.KeyOf("k", 1), 10)
	c.Recycle()
	c.Recycle()
	if s := c.Stats(); s.Used != 0 {
		t.Fatalf("used = %d after recycle", s.Used)
	}
	if ts := c.TenantStats(a); ts.Used != 0 {
		t.Fatalf("tenant used = %d after recycle", ts.Used)
	}
	// Still usable.
	c.Put(data.KeyOf("k", 2), 10)
	if !c.Get(data.KeyOf("k", 2)) {
		t.Fatal("cache unusable after double recycle")
	}
}

func TestStoreWithTenantRoutesTraffic(t *testing.T) {
	c := NewPageCache(1000)
	id := c.JoinTenant()
	st := &Store{Cache: c}
	tenantStore := st.WithTenant(id)
	if st.Tenant != 0 {
		t.Fatal("WithTenant mutated the original store")
	}
	if tenantStore.Cache != c || tenantStore.Tenant != id {
		t.Fatalf("tenant store = %+v", tenantStore)
	}
}
