// Package storage models the persistent-storage path of the training
// pipeline: a bandwidth-shared disk (NVMe or a parallel filesystem) fronted
// by an OS page cache with a byte capacity.
//
// This is the substrate for §5.5's memory-constrained experiment: a 230 GB
// dataset under an 80 GB cgroup cap forces every epoch to hit storage, so
// loader quality shows up as sustained versus volatile disk reads.
package storage

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/device"
	"github.com/minatoloader/minato/internal/simtime"
)

// Disk is a bandwidth-shared storage device. Parallelism is the number of
// concurrent streams that can each sustain full per-stream bandwidth
// (Lustre-like filesystems serve several clients at once; an NVMe drive
// saturates with few).
type Disk struct {
	dev      *device.Device
	streamBW float64 // bytes per second per stream

	mu       sync.Mutex
	slowdown float64 // ≥1; failure-injection multiplier on read time

	bytesRead atomic.Int64
}

// NewDisk returns a disk with the given aggregate bandwidth split across
// `parallelism` full-speed streams.
func NewDisk(rt simtime.Runtime, name string, aggregateBW float64, parallelism float64) *Disk {
	if parallelism < 1 {
		parallelism = 1
	}
	return &Disk{
		dev:      device.New(rt, name, parallelism),
		streamBW: aggregateBW / parallelism,
		slowdown: 1,
	}
}

// Read occupies the disk for n bytes.
func (d *Disk) Read(ctx context.Context, n int64) error {
	if n <= 0 {
		return nil
	}
	d.mu.Lock()
	f := d.slowdown
	d.mu.Unlock()
	if err := d.dev.Run(ctx, time.Duration(float64(n)*f/d.streamBW*float64(time.Second))); err != nil {
		return err
	}
	d.bytesRead.Add(n)
	return nil
}

// SetSlowdown injects a storage degradation: subsequent reads take factor×
// longer (factor ≥ 1; 1 restores full speed). Models transient contention
// on shared filesystems or a failing drive — the I/O interference §5.3
// observes on the Lustre testbed.
func (d *Disk) SetSlowdown(factor float64) {
	if factor < 1 {
		factor = 1
	}
	d.mu.Lock()
	d.slowdown = factor
	d.mu.Unlock()
}

// BytesRead returns the cumulative bytes transferred (completed reads).
func (d *Disk) BytesRead() int64 { return d.bytesRead.Load() }

// AggregateBandwidth returns the disk's maximum total throughput.
func (d *Disk) AggregateBandwidth() float64 {
	return d.streamBW * d.dev.Capacity()
}

// ReadRateGauge returns a sampling function reporting read throughput in
// bytes/second over the window since the previous call.
func (d *Disk) ReadRateGauge(rt simtime.Runtime) func() float64 {
	last := d.BytesRead()
	lastT := rt.Now()
	return func() float64 {
		cur := d.BytesRead()
		now := rt.Now()
		dt := (now - lastT).Seconds()
		var r float64
		if dt > 0 {
			r = float64(cur-last) / dt
		}
		last, lastT = cur, now
		return r
	}
}

// PageCache is a byte-capacity LRU cache keyed by sample storage keys.
type PageCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List // front = most recently used
	index    map[string]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key   string
	bytes int64
}

// NewPageCache returns a cache with the given byte capacity.
func NewPageCache(capacity int64) *PageCache {
	return &PageCache{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[string]*list.Element),
	}
}

// Get reports whether key is cached, marking it most recently used.
func (c *PageCache) Get(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.index[key]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Put inserts key with the given size, evicting least-recently-used entries
// until the cache fits. Objects larger than the whole cache are not cached.
func (c *PageCache) Put(key string, bytes int64) {
	if bytes > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.index[key]; ok {
		c.ll.MoveToFront(e)
		return
	}
	for c.used+bytes > c.capacity {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.index, ent.key)
		c.used -= ent.bytes
		c.evictions++
	}
	c.index[key] = c.ll.PushFront(&cacheEntry{key: key, bytes: bytes})
	c.used += bytes
}

// CacheStats is a snapshot of cache counters.
type CacheStats struct {
	Capacity, Used          int64
	Hits, Misses, Evictions int64
}

// Stats returns a snapshot of cache counters.
func (c *PageCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity: c.capacity, Used: c.used,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *PageCache) HitRate() float64 {
	s := c.Stats()
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Store is the sample-loading path: page cache over disk.
type Store struct {
	Disk  *Disk
	Cache *PageCache // nil disables caching
}

// ReadSample loads a sample's raw bytes, hitting the cache when possible
// and stamping the sample's LoadedAt time.
func (st *Store) ReadSample(ctx context.Context, rt simtime.Runtime, s *data.Sample) error {
	if st.Cache == nil || !st.Cache.Get(s.Key) {
		if err := st.Disk.Read(ctx, s.RawBytes); err != nil {
			return err
		}
		if st.Cache != nil {
			st.Cache.Put(s.Key, s.RawBytes)
		}
	}
	s.LoadedAt = rt.Now()
	return nil
}
