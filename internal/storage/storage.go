// Package storage models the persistent-storage path of the training
// pipeline: a bandwidth-shared disk (NVMe or a parallel filesystem) fronted
// by an OS page cache with a byte capacity.
//
// This is the substrate for §5.5's memory-constrained experiment: a 230 GB
// dataset under an 80 GB cgroup cap forces every epoch to hit storage, so
// loader quality shows up as sustained versus volatile disk reads.
package storage

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/device"
	"github.com/minatoloader/minato/internal/simtime"
)

// Disk is a bandwidth-shared storage device. Parallelism is the number of
// concurrent streams that can each sustain full per-stream bandwidth
// (Lustre-like filesystems serve several clients at once; an NVMe drive
// saturates with few).
type Disk struct {
	dev      *device.Device
	streamBW float64 // bytes per second per stream

	mu       sync.Mutex
	slowdown float64 // ≥1; failure-injection multiplier on read time

	bytesRead atomic.Int64
}

// NewDisk returns a disk with the given aggregate bandwidth split across
// `parallelism` full-speed streams.
func NewDisk(rt simtime.Runtime, name string, aggregateBW float64, parallelism float64) *Disk {
	if parallelism < 1 {
		parallelism = 1
	}
	return &Disk{
		dev:      device.New(rt, name, parallelism),
		streamBW: aggregateBW / parallelism,
		slowdown: 1,
	}
}

// Read occupies the disk for n bytes.
func (d *Disk) Read(ctx context.Context, n int64) error {
	if n <= 0 {
		return nil
	}
	d.mu.Lock()
	f := d.slowdown
	d.mu.Unlock()
	if err := d.dev.Run(ctx, time.Duration(float64(n)*f/d.streamBW*float64(time.Second))); err != nil {
		return err
	}
	d.bytesRead.Add(n)
	return nil
}

// SetSlowdown injects a storage degradation: subsequent reads take factor×
// longer (factor ≥ 1; 1 restores full speed). Models transient contention
// on shared filesystems or a failing drive — the I/O interference §5.3
// observes on the Lustre testbed.
func (d *Disk) SetSlowdown(factor float64) {
	if factor < 1 {
		factor = 1
	}
	d.mu.Lock()
	d.slowdown = factor
	d.mu.Unlock()
}

// BytesRead returns the cumulative bytes transferred (completed reads).
func (d *Disk) BytesRead() int64 { return d.bytesRead.Load() }

// AggregateBandwidth returns the disk's maximum total throughput.
func (d *Disk) AggregateBandwidth() float64 {
	return d.streamBW * d.dev.Capacity()
}

// ReadRateGauge returns a sampling function reporting read throughput in
// bytes/second over the window since the previous call.
func (d *Disk) ReadRateGauge(rt simtime.Runtime) func() float64 {
	last := d.BytesRead()
	lastT := rt.Now()
	return func() float64 {
		cur := d.BytesRead()
		now := rt.Now()
		dt := (now - lastT).Seconds()
		var r float64
		if dt > 0 {
			r = float64(cur-last) / dt
		}
		last, lastT = cur, now
		return r
	}
}

// PageCache is a byte-capacity LRU cache keyed by sample storage keys. The
// LRU list is intrusive (nodes carry their own links) and nodes are
// recycled through a process-wide pool, so cache traffic allocates nothing
// in steady state beyond the index map itself.
type PageCache struct {
	mu         sync.Mutex
	capacity   int64
	used       int64
	head, tail *cacheNode // head = most recently used
	index      map[data.Key]*cacheNode

	hits, misses, evictions int64
}

type cacheNode struct {
	key        data.Key
	bytes      int64
	prev, next *cacheNode
}

var cacheNodePool = sync.Pool{New: func() any { return new(cacheNode) }}

// cacheIndexPool recycles index maps across caches: Go keeps a cleared
// map's buckets allocated, so a session's cache starts with the previous
// session's bucket array instead of growing from scratch.
var cacheIndexPool = sync.Pool{New: func() any { return make(map[data.Key]*cacheNode) }}

// NewPageCache returns a cache with the given byte capacity.
func NewPageCache(capacity int64) *PageCache {
	return &PageCache{
		capacity: capacity,
		index:    cacheIndexPool.Get().(map[data.Key]*cacheNode),
	}
}

// Recycle empties the cache and returns its nodes and index storage to the
// process-wide pools. Owners call it when the cache's session ends; the
// cache itself remains usable (empty) afterwards.
func (c *PageCache) Recycle() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for n := c.head; n != nil; {
		next := n.next
		*n = cacheNode{}
		cacheNodePool.Put(n)
		n = next
	}
	c.head, c.tail = nil, nil
	c.used = 0
	clear(c.index)
	cacheIndexPool.Put(c.index)
	// A small fresh map keeps this cache usable; the warmed buckets go to
	// the next session's cache.
	c.index = make(map[data.Key]*cacheNode)
}

func (c *PageCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *PageCache) pushFront(n *cacheNode) {
	n.prev, n.next = nil, c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// Get reports whether key is cached, marking it most recently used.
func (c *PageCache) Get(key data.Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.index[key]; ok {
		if c.head != n {
			c.unlink(n)
			c.pushFront(n)
		}
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Put inserts key with the given size, evicting least-recently-used entries
// until the cache fits. Objects larger than the whole cache are not cached.
func (c *PageCache) Put(key data.Key, bytes int64) {
	if bytes > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.index[key]; ok {
		if c.head != n {
			c.unlink(n)
			c.pushFront(n)
		}
		return
	}
	for c.used+bytes > c.capacity {
		back := c.tail
		if back == nil {
			break
		}
		c.unlink(back)
		delete(c.index, back.key)
		c.used -= back.bytes
		c.evictions++
		*back = cacheNode{}
		cacheNodePool.Put(back)
	}
	n := cacheNodePool.Get().(*cacheNode)
	n.key, n.bytes = key, bytes
	c.pushFront(n)
	c.index[key] = n
	c.used += bytes
}

// CacheStats is a snapshot of cache counters.
type CacheStats struct {
	Capacity, Used          int64
	Hits, Misses, Evictions int64
}

// Stats returns a snapshot of cache counters.
func (c *PageCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity: c.capacity, Used: c.used,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *PageCache) HitRate() float64 {
	s := c.Stats()
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Store is the sample-loading path: page cache over disk.
type Store struct {
	Disk  *Disk
	Cache *PageCache // nil disables caching
}

// ReadSample loads a sample's raw bytes, hitting the cache when possible
// and stamping the sample's LoadedAt time.
func (st *Store) ReadSample(ctx context.Context, rt simtime.Runtime, s *data.Sample) error {
	if st.Cache == nil || !st.Cache.Get(s.Key) {
		if err := st.Disk.Read(ctx, s.RawBytes); err != nil {
			return err
		}
		if st.Cache != nil {
			st.Cache.Put(s.Key, s.RawBytes)
		}
	}
	s.LoadedAt = rt.Now()
	return nil
}
