// Package storage models the persistent-storage path of the training
// pipeline: a bandwidth-shared disk (NVMe or a parallel filesystem) fronted
// by an OS page cache with a byte capacity.
//
// This is the substrate for §5.5's memory-constrained experiment: a 230 GB
// dataset under an 80 GB cgroup cap forces every epoch to hit storage, so
// loader quality shows up as sustained versus volatile disk reads.
package storage

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/device"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/trace"
)

// Disk is a bandwidth-shared storage device. Parallelism is the number of
// concurrent streams that can each sustain full per-stream bandwidth
// (Lustre-like filesystems serve several clients at once; an NVMe drive
// saturates with few).
type Disk struct {
	rt       simtime.Runtime
	dev      *device.Device
	streamBW float64 // bytes per second per stream

	mu       sync.Mutex
	slowdown float64 // ≥1; failure-injection multiplier on read time
	// sched is a pre-installed degradation timeline, sorted by instant.
	// Once the clock reaches its first point it overrides the live
	// slowdown: the factor a read sees is then a pure function of the
	// read's start time, so a reader racing the scripted transition
	// instant resolves identically no matter which side the scheduler
	// runs first — live SetSlowdown mutation cannot promise that.
	sched []slowdownPoint

	bytesRead atomic.Int64
}

// slowdownPoint is one step of a scheduled degradation timeline.
type slowdownPoint struct {
	at time.Duration
	f  float64
}

// NewDisk returns a disk with the given aggregate bandwidth split across
// `parallelism` full-speed streams.
func NewDisk(rt simtime.Runtime, name string, aggregateBW float64, parallelism float64) *Disk {
	if parallelism < 1 {
		parallelism = 1
	}
	return &Disk{
		rt:       rt,
		dev:      device.New(rt, name, parallelism),
		streamBW: aggregateBW / parallelism,
		slowdown: 1,
	}
}

// Read occupies the disk for n bytes.
func (d *Disk) Read(ctx context.Context, n int64) error {
	if n <= 0 {
		return nil
	}
	d.mu.Lock()
	f := d.slowdown
	if len(d.sched) > 0 {
		now := d.rt.Now()
		for i := len(d.sched) - 1; i >= 0; i-- {
			if d.sched[i].at <= now {
				f = d.sched[i].f
				break
			}
		}
	}
	d.mu.Unlock()
	if err := d.dev.Run(ctx, time.Duration(float64(n)*f/d.streamBW*float64(time.Second))); err != nil {
		return err
	}
	d.bytesRead.Add(n)
	return nil
}

// SetSlowdown injects a storage degradation: subsequent reads take factor×
// longer (factor ≥ 1; 1 restores full speed). Models transient contention
// on shared filesystems or a failing drive — the I/O interference §5.3
// observes on the Lustre testbed.
func (d *Disk) SetSlowdown(factor float64) {
	if factor < 1 {
		factor = 1
	}
	d.mu.Lock()
	d.slowdown = factor
	d.mu.Unlock()
}

// ScheduleSlowdown pre-installs a degradation step: reads starting at or
// after `at` take factor× longer, until a later scheduled point. Install
// the whole timeline before the clock reaches its first point — scripted
// fault injection uses this instead of SetSlowdown so that a read racing
// the transition instant itself still resolves deterministically (the
// factor is a pure function of the read's start time).
func (d *Disk) ScheduleSlowdown(at time.Duration, factor float64) {
	if factor < 1 {
		factor = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	i := len(d.sched)
	for i > 0 && d.sched[i-1].at > at {
		i--
	}
	d.sched = append(d.sched, slowdownPoint{})
	copy(d.sched[i+1:], d.sched[i:])
	d.sched[i] = slowdownPoint{at: at, f: factor}
}

// BytesRead returns the cumulative bytes transferred (completed reads).
func (d *Disk) BytesRead() int64 { return d.bytesRead.Load() }

// AggregateBandwidth returns the disk's maximum total throughput.
func (d *Disk) AggregateBandwidth() float64 {
	return d.streamBW * d.dev.Capacity()
}

// ReadRateGauge returns a sampling function reporting read throughput in
// bytes/second over the window since the previous call.
func (d *Disk) ReadRateGauge(rt simtime.Runtime) func() float64 {
	last := d.BytesRead()
	lastT := rt.Now()
	return func() float64 {
		cur := d.BytesRead()
		now := rt.Now()
		dt := (now - lastT).Seconds()
		var r float64
		if dt > 0 {
			r = float64(cur-last) / dt
		}
		last, lastT = cur, now
		return r
	}
}

// PageCache is a byte-capacity LRU cache keyed by sample storage keys. The
// LRU list is intrusive (nodes carry their own links) and nodes are
// recycled through a process-wide pool, so cache traffic allocates nothing
// in steady state beyond the index map itself.
//
// A cache may be shared by several tenants (concurrent loading sessions of
// one cluster). Tenants register with JoinTenant and route their traffic
// through GetAs/PutAs, which attribute hits, misses, evictions, and resident
// bytes per tenant; TenantStats exposes the attribution. Capacity is softly
// partitioned: while more than one tenant is joined, eviction prefers
// victims from tenants holding more than their equal share of the capacity
// (scanning a bounded window from the LRU tail), so one tenant's working set
// cannot silently evict everyone else's. Tenant 0 is the implicit
// unattributed tenant that plain Get/Put traffic lands on.
type PageCache struct {
	mu         sync.Mutex
	capacity   int64
	used       int64
	head, tail *cacheNode // head = most recently used
	index      map[data.Key]*cacheNode

	hits, misses, evictions int64

	// tenants[id] carries per-tenant attribution; slot 0 is the implicit
	// unattributed tenant and is always considered live.
	tenants     []tenantCounters
	liveTenants int // joined tenants (excluding slot 0)

	// inflight single-flights fetches: while one reader (the leader) is
	// filling a key from disk, concurrent readers of the same key park on
	// waiters instead of issuing redundant reads — the page-lock semantics
	// of a real OS page cache, and the mechanism that lets co-running
	// sessions over one dataset share a single warm-up pass.
	inflight map[data.Key][]*simtime.Waiter
}

// tenantCounters is one tenant's slice of the cache accounting.
type tenantCounters struct {
	live                    bool
	hits, misses, evictions int64
	used                    int64 // resident bytes inserted by this tenant
	diskBytes               int64 // bytes this tenant's leader fetches read from disk
}

// partitionScanDepth bounds how far eviction scans from the LRU tail for an
// over-share victim before falling back to the global LRU tail. Bounded so
// eviction stays O(1)-ish and deterministic.
const partitionScanDepth = 64

type cacheNode struct {
	key        data.Key
	bytes      int64
	tenant     int32
	prev, next *cacheNode
}

var cacheNodePool = sync.Pool{New: func() any { return new(cacheNode) }}

// cacheIndexPool recycles index maps across caches: Go keeps a cleared
// map's buckets allocated, so a session's cache starts with the previous
// session's bucket array instead of growing from scratch.
var cacheIndexPool = sync.Pool{New: func() any { return make(map[data.Key]*cacheNode) }}

// NewPageCache returns a cache with the given byte capacity.
func NewPageCache(capacity int64) *PageCache {
	return &PageCache{
		capacity: capacity,
		index:    cacheIndexPool.Get().(map[data.Key]*cacheNode),
	}
}

// Recycle empties the cache and returns its nodes and index storage to the
// process-wide pools. It is owned by whoever owns the cache's lifetime — a
// Cluster, or trainer.Simulate for its private testbed — never by an
// individual session, which may share the cache with live siblings. Recycle
// is idempotent: an already-empty cache hands nothing to the pools, and the
// cache itself remains usable (empty) afterwards. Tenant hit/miss counters
// survive (they describe traffic, not contents); resident-byte attribution
// is zeroed with the contents.
func (c *PageCache) Recycle() {
	c.mu.Lock()
	defer c.mu.Unlock()
	empty := c.head == nil
	for n := c.head; n != nil; {
		next := n.next
		*n = cacheNode{}
		cacheNodePool.Put(n)
		n = next
	}
	c.head, c.tail = nil, nil
	c.used = 0
	for i := range c.tenants {
		c.tenants[i].used = 0
	}
	if empty && len(c.index) == 0 {
		return // second Recycle: nothing to hand to the pools
	}
	clear(c.index)
	cacheIndexPool.Put(c.index)
	// A small fresh map keeps this cache usable; the warmed buckets go to
	// the next session's cache.
	c.index = make(map[data.Key]*cacheNode)
}

// JoinTenant registers a tenant for attribution and soft partitioning,
// returning its id for GetAs/PutAs/TenantStats. Slots of departed tenants
// whose entries have fully left the cache are reused.
func (c *PageCache) JoinTenant() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.tenants) == 0 {
		c.tenants = append(c.tenants, tenantCounters{live: true}) // slot 0
	}
	c.liveTenants++
	for id := 1; id < len(c.tenants); id++ {
		if !c.tenants[id].live && c.tenants[id].used == 0 {
			c.tenants[id] = tenantCounters{live: true}
			return id
		}
	}
	c.tenants = append(c.tenants, tenantCounters{live: true})
	return len(c.tenants) - 1
}

// LeaveTenant deregisters a tenant. Its resident entries stay cached (they
// may still serve siblings) but its slot is reclaimed once they age out.
func (c *PageCache) LeaveTenant(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id > 0 && id < len(c.tenants) && c.tenants[id].live {
		c.tenants[id].live = false
		c.liveTenants--
	}
}

// TenantStats returns the attribution for one tenant: its hits, misses, and
// evictions-suffered, plus the bytes it currently holds resident. Capacity
// is the whole cache's (the partition is soft).
func (c *PageCache) TenantStats(id int) CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.tenants) {
		return CacheStats{Capacity: c.capacity}
	}
	t := c.tenants[id]
	return CacheStats{
		Capacity: c.capacity, Used: t.used,
		Hits: t.hits, Misses: t.misses, Evictions: t.evictions,
	}
}

func (c *PageCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *PageCache) pushFront(n *cacheNode) {
	n.prev, n.next = nil, c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// Capacity returns the cache's current capacity in bytes, net of any
// ReserveCapacity carve-outs. Callers reserving for a second layer check it
// first so a too-large request can fail before shrinking the cache.
func (c *PageCache) Capacity() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// ReserveCapacity permanently carves n bytes out of the cache's capacity
// for a second cache layer sharing the same physical memory (the cluster's
// materialized-sample cache), so total simulated memory stays constant and
// the split is explicit rather than double-counted. Entries are evicted
// from the LRU tail until the contents fit the reduced capacity. Returns
// the bytes actually granted: min(n, current capacity), so a caller asking
// for more than the pool holds can detect the shortfall and fail loudly.
func (c *PageCache) ReserveCapacity(n int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 {
		return 0
	}
	if n > c.capacity {
		n = c.capacity
	}
	c.capacity -= n
	for c.used > c.capacity && c.tail != nil {
		c.evictLocked(c.tail)
	}
	return n
}

// evictLocked removes a node from the cache, attributing the eviction to
// the node's tenant.
func (c *PageCache) evictLocked(n *cacheNode) {
	c.unlink(n)
	delete(c.index, n.key)
	c.used -= n.bytes
	c.evictions++
	if vt := int(n.tenant); vt >= 0 && vt < len(c.tenants) {
		c.tenants[vt].used -= n.bytes
		c.tenants[vt].evictions++
	}
	*n = cacheNode{}
	cacheNodePool.Put(n)
}

// Get reports whether key is cached, marking it most recently used.
// Unattributed traffic; shared sessions use GetAs.
func (c *PageCache) Get(key data.Key) bool { return c.GetAs(0, key) }

// GetAs is Get with the hit or miss attributed to the given tenant.
func (c *PageCache) GetAs(tenant int, key data.Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.index[key]; ok {
		if c.head != n {
			c.unlink(n)
			c.pushFront(n)
		}
		c.hits++
		if tenant >= 0 && tenant < len(c.tenants) {
			c.tenants[tenant].hits++
		}
		return true
	}
	c.misses++
	if tenant >= 0 && tenant < len(c.tenants) {
		c.tenants[tenant].misses++
	}
	return false
}

// Put inserts key with the given size, evicting least-recently-used entries
// until the cache fits. Objects larger than the whole cache are not cached.
// Unattributed traffic; shared sessions use PutAs.
func (c *PageCache) Put(key data.Key, bytes int64) { c.PutAs(0, key, bytes) }

// GetOrBegin is the single-flight entry point of the read-through path: a
// cached key is a hit; an uncached key with no fetch in flight makes the
// caller the leader (hit=false, waiter=nil — the caller must read the
// object and CompleteFetch or AbortFetch); an uncached key already being
// fetched parks the caller as a follower (waiter non-nil — Wait on it,
// then call GetOrBegin again). Followers are attributed a hit when they
// find the completed fetch on re-check; only the leader pays a miss.
func (c *PageCache) GetOrBegin(tenant int, key data.Key, rt simtime.Runtime) (hit bool, waiter *simtime.Waiter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.index[key]; ok {
		if c.head != n {
			c.unlink(n)
			c.pushFront(n)
		}
		c.hits++
		if tenant >= 0 && tenant < len(c.tenants) {
			c.tenants[tenant].hits++
		}
		return true, nil
	}
	if ws, ok := c.inflight[key]; ok {
		w := rt.NewWaiter()
		c.inflight[key] = append(ws, w)
		return false, w
	}
	if c.inflight == nil {
		c.inflight = make(map[data.Key][]*simtime.Waiter)
	}
	c.inflight[key] = nil
	c.misses++
	if tenant >= 0 && tenant < len(c.tenants) {
		c.tenants[tenant].misses++
	}
	return false, nil
}

// CompleteFetch publishes a leader's fetched object and releases the key's
// followers. The disk bytes the fetch moved are attributed to the leader's
// tenant (see TenantDiskBytes).
func (c *PageCache) CompleteFetch(tenant int, key data.Key, bytes int64) {
	c.mu.Lock()
	if tenant >= 0 && tenant < len(c.tenants) {
		c.tenants[tenant].diskBytes += bytes
	}
	c.putAsLocked(tenant, key, bytes)
	ws := c.inflight[key]
	delete(c.inflight, key)
	c.mu.Unlock()
	for _, w := range ws {
		w.Wake()
	}
}

// TenantDiskBytes returns the disk bytes a tenant's own cache fills have
// read — the per-session answer to "how much disk traffic did I cause" on
// a disk whose global counter mixes every tenant.
func (c *PageCache) TenantDiskBytes(id int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.tenants) {
		return 0
	}
	return c.tenants[id].diskBytes
}

// AbortFetch releases a key's followers without publishing; the next
// reader becomes the new leader.
func (c *PageCache) AbortFetch(key data.Key) {
	c.mu.Lock()
	ws := c.inflight[key]
	delete(c.inflight, key)
	c.mu.Unlock()
	for _, w := range ws {
		w.Wake()
	}
}

// PutAs is Put with the insertion attributed to the given tenant. While
// several tenants are joined, eviction prefers victims belonging to tenants
// over their equal share of the capacity — the inserting tenant's own
// over-share entries first — before falling back to the global LRU tail.
func (c *PageCache) PutAs(tenant int, key data.Key, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putAsLocked(tenant, key, bytes)
}

func (c *PageCache) putAsLocked(tenant int, key data.Key, bytes int64) {
	if bytes > c.capacity {
		return
	}
	if tenant < 0 || tenant >= len(c.tenants) {
		tenant = 0
	}
	if n, ok := c.index[key]; ok {
		if c.head != n {
			c.unlink(n)
			c.pushFront(n)
		}
		return
	}
	for c.used+bytes > c.capacity {
		back := c.victimLocked(tenant)
		if back == nil {
			break
		}
		c.evictLocked(back)
	}
	n := cacheNodePool.Get().(*cacheNode)
	n.key, n.bytes, n.tenant = key, bytes, int32(tenant)
	c.pushFront(n)
	c.index[key] = n
	c.used += bytes
	if len(c.tenants) > 0 {
		c.tenants[tenant].used += bytes
	}
}

// victimLocked picks the next eviction victim for an insertion by tenant.
// Single-tenant caches (the common case) evict the plain LRU tail. With
// multiple joined tenants the scan walks at most partitionScanDepth nodes
// from the tail preferring, in order, the inserting tenant's own entries
// when it is over its equal share, then any over-share tenant's entry; the
// plain tail is the fallback so eviction always makes progress.
func (c *PageCache) victimLocked(tenant int) *cacheNode {
	if c.tail == nil {
		return nil
	}
	if c.liveTenants <= 1 {
		return c.tail
	}
	share := c.capacity / int64(c.liveTenants)
	overSelf := len(c.tenants) > tenant && c.tenants[tenant].used > share
	var anyOver *cacheNode
	n := c.tail
	for i := 0; n != nil && i < partitionScanDepth; i++ {
		vt := int(n.tenant)
		if vt >= 0 && vt < len(c.tenants) && c.tenants[vt].used > share {
			if overSelf && vt == tenant {
				return n
			}
			if anyOver == nil {
				anyOver = n
			}
			if !overSelf {
				return n
			}
		}
		n = n.prev
	}
	if anyOver != nil {
		return anyOver
	}
	return c.tail
}

// CacheStats is a snapshot of cache counters.
type CacheStats struct {
	Capacity, Used          int64
	Hits, Misses, Evictions int64
}

// Stats returns a snapshot of cache counters.
func (c *PageCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity: c.capacity, Used: c.used,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *PageCache) HitRate() float64 {
	s := c.Stats()
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// RemoteFetcher moves n fetched bytes from the storage server to the
// reading node over the cluster interconnect. The multi-node runner
// implements it with a netsim fabric transfer, so cold reads contend with
// gradient traffic on the reading node's NIC; a nil fetcher means storage
// is node-local.
type RemoteFetcher interface {
	Fetch(ctx context.Context, n int64) error
}

// Store is the sample-loading path: page cache over disk. Tenant routes the
// cache traffic for attribution when the cache is shared by several sessions
// (zero — the unattributed tenant — when it is not); each cluster session
// holds its own Store value pointing at the shared disk and cache.
type Store struct {
	Disk   *Disk
	Cache  *PageCache // nil disables caching
	Tenant int
	// Remote, when set, models storage reached over the network: every
	// uncached read pays a fabric transfer (after the disk occupancy) in
	// addition to the disk time — the Lustre-over-interconnect path of §3's
	// Config A, now with real contention.
	Remote RemoteFetcher
	// Trace, when set, records this store's reads as spans: disk occupancy,
	// remote fetches, and the page cache's hit/fill/wait protocol (a
	// follower's wait shares its leader's (Tenant, Key) identity).
	// TraceNode stamps the reading node. Nil disables recording.
	Trace     *trace.Recorder
	TraceNode int32
}

// WithTenant returns a copy of the store routing cache traffic as the given
// tenant.
func (st *Store) WithTenant(id int) *Store {
	cp := *st
	cp.Tenant = id
	return &cp
}

// ReadSample loads a sample's raw bytes, hitting the cache when possible
// and stamping the sample's LoadedAt time. Cache fills are single-flighted:
// the first reader of an uncached key fetches it from disk while concurrent
// readers of the same key — typically sibling sessions warming up over a
// shared dataset — park until the fetch lands and then count a shared hit,
// instead of issuing redundant reads for bytes already on their way.
func (st *Store) ReadSample(ctx context.Context, rt simtime.Runtime, s *data.Sample) error {
	if st.Cache == nil {
		if err := st.fetch(ctx, rt, s); err != nil {
			return err
		}
		s.LoadedAt = rt.Now()
		return nil
	}
	first := true
	for {
		t0 := rt.Now()
		hit, waiter := st.Cache.GetOrBegin(st.Tenant, s.Key, rt)
		if hit {
			if first {
				// A follower finding the published fill on re-check already
				// recorded its wait; only a first-try hit is an instant.
				st.Trace.Instant(st.span(trace.StageCacheHit, t0, t0, s), t0)
			}
			break
		}
		if waiter == nil { // leader: fetch and publish
			if err := st.fetch(ctx, rt, s); err != nil {
				st.Cache.AbortFetch(s.Key)
				return err
			}
			st.Cache.CompleteFetch(st.Tenant, s.Key, s.RawBytes)
			st.Trace.Record(st.span(trace.StageCacheFill, t0, rt.Now(), s))
			break
		}
		if err := waiter.Wait(ctx); err != nil {
			return err
		}
		st.Trace.Record(st.span(trace.StageCacheWait, t0, rt.Now(), s))
		first = false
	}
	s.LoadedAt = rt.Now()
	return nil
}

// span stamps a storage span for sample s: Key is the sample index, Seq
// its global draw order, Detail its raw size — the identity a follower's
// wait shares with its leader's fill.
func (st *Store) span(stage trace.Stage, start, end time.Duration, s *data.Sample) trace.Span {
	return trace.Span{Start: start, End: end, Stage: stage,
		Tenant: int32(st.Tenant), Node: st.TraceNode,
		Key: int64(s.Index), Seq: s.OriginalOrder, Detail: s.RawBytes}
}

// fetch is the uncached read path: the disk occupancy, then — for remote
// storage — the network transfer to the reading node.
func (st *Store) fetch(ctx context.Context, rt simtime.Runtime, s *data.Sample) error {
	t0 := rt.Now()
	if err := st.Disk.Read(ctx, s.RawBytes); err != nil {
		return err
	}
	st.Trace.Record(st.span(trace.StageDiskRead, t0, rt.Now(), s))
	if st.Remote != nil {
		t1 := rt.Now()
		if err := st.Remote.Fetch(ctx, s.RawBytes); err != nil {
			return err
		}
		st.Trace.Record(st.span(trace.StageRemoteFetch, t1, rt.Now(), s))
	}
	return nil
}
