package core

import (
	"math"
	"testing"
	"time"
)

func TestProfilerWarmupIsOptimistic(t *testing.T) {
	p := NewProfiler(ProfilerConfig{WarmupSamples: 10})
	if p.Timeout() != time.Duration(math.MaxInt64) {
		t.Fatal("timeout not infinite before any record")
	}
	for i := 0; i < 9; i++ {
		p.Record(100 * time.Millisecond)
	}
	if p.Timeout() != time.Duration(math.MaxInt64) {
		t.Fatal("timeout set before warmup completed")
	}
	if p.WarmupDone() {
		t.Fatal("warmup reported done early")
	}
	p.Record(100 * time.Millisecond)
	if !p.WarmupDone() {
		t.Fatal("warmup not done after enough records")
	}
	if p.Timeout() == time.Duration(math.MaxInt64) {
		t.Fatal("timeout still infinite after warmup")
	}
}

func TestProfilerComputesP75(t *testing.T) {
	p := NewProfiler(ProfilerConfig{WarmupSamples: 100, RecomputeEvery: 100})
	// 100 values: 1..100 ms. P75 ≈ 75ms.
	for i := 1; i <= 100; i++ {
		p.Record(time.Duration(i) * time.Millisecond)
	}
	got := p.Timeout()
	if got < 70*time.Millisecond || got > 80*time.Millisecond {
		t.Fatalf("timeout = %v, want ≈75ms", got)
	}
}

func TestProfilerFallbackToP90(t *testing.T) {
	p := NewProfiler(ProfilerConfig{
		WarmupSamples: 100, RecomputeEvery: 100,
		TimeoutPercentile: 0.75, FallbackPercentile: 0.90, MaxSlowFraction: 0.40,
	})
	for i := 1; i <= 100; i++ {
		p.Record(time.Duration(i) * time.Millisecond)
	}
	before := p.Timeout()
	// Report >40% slow classifications: the profiler must fall back.
	for i := 0; i < 100; i++ {
		p.Classified(i%2 == 0)
	}
	if !p.FellBack() {
		t.Fatal("no fallback despite 50% slow classifications")
	}
	after := p.Timeout()
	if after <= before {
		t.Fatalf("fallback timeout %v not above P75 %v", after, before)
	}
	if after < 85*time.Millisecond || after > 95*time.Millisecond {
		t.Fatalf("fallback timeout = %v, want ≈90ms", after)
	}
}

func TestProfilerNoFallbackWhenSlowFractionOK(t *testing.T) {
	p := NewProfiler(ProfilerConfig{WarmupSamples: 10, MaxSlowFraction: 0.40})
	for i := 0; i < 20; i++ {
		p.Record(10 * time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		p.Classified(i%5 == 0) // 20% slow
	}
	if p.FellBack() {
		t.Fatal("fallback triggered at 20% slow fraction")
	}
	if got := p.SlowFraction(); got < 0.19 || got > 0.21 {
		t.Fatalf("slow fraction = %v", got)
	}
}

func TestProfilerTracksDrift(t *testing.T) {
	// Continuous re-profiling: when the workload drifts, the sliding
	// window moves the threshold (§4.2).
	p := NewProfiler(ProfilerConfig{WarmupSamples: 32, WindowSize: 64, RecomputeEvery: 16})
	for i := 0; i < 64; i++ {
		p.Record(10 * time.Millisecond)
	}
	early := p.Timeout()
	for i := 0; i < 128; i++ {
		p.Record(500 * time.Millisecond)
	}
	late := p.Timeout()
	if late <= early*10 {
		t.Fatalf("timeout did not track drift: early=%v late=%v", early, late)
	}
}
