package core

import (
	"context"
	"testing"
	"time"
)

// newIdleLoader builds a loader without starting it, so scheduler state
// can be driven directly.
func newIdleLoader(t *testing.T, h *harness) *Loader {
	t.Helper()
	return New(h.env, bimodalSpec(4, 10), DefaultConfig())
}

func TestSchedulerApplyClampsToBounds(t *testing.T) {
	h := newHarness(16, 1)
	h.k.Run(func() {
		l := newIdleLoader(t, h)
		sc := l.sched
		sc.SetTarget(1)
		// Shrinking below 1 clamps.
		sc.apply(context.Background(), -5)
		if got := sc.Target(); got != 1 {
			t.Fatalf("target = %d, want 1 (floor)", got)
		}
		// Growing beyond MaxWorkers clamps (MaxWorkers = 16 cores here).
		sc.SetTarget(15)
		sc.apply(context.Background(), +5)
		if got := sc.Target(); got != 16 {
			t.Fatalf("target = %d, want 16 (cores ceiling)", got)
		}
		l.Stop()
	})
	h.k.Drain()
}

func TestSchedulerGrowSpawnsWorkers(t *testing.T) {
	h := newHarness(16, 1)
	h.k.Run(func() {
		l := newIdleLoader(t, h)
		sc := l.sched
		sc.SetTarget(2)
		sc.apply(context.Background(), +3)
		if got := sc.Target(); got != 5 {
			t.Fatalf("target = %d, want 5", got)
		}
		// Let the spawned workers register.
		_ = h.k.Sleep(context.Background(), 100*time.Millisecond)
		if got := sc.liveWorkers(); got != 3 {
			t.Fatalf("live = %d, want 3 spawned (none existed before)", got)
		}
		l.Stop()
	})
	h.k.Drain()
}

func TestSchedulerShrinkPostsRetireTokens(t *testing.T) {
	h := newHarness(16, 1)
	h.k.Run(func() {
		l := newIdleLoader(t, h)
		sc := l.sched
		sc.SetTarget(8)
		sc.apply(context.Background(), -3)
		if got := sc.Target(); got != 5 {
			t.Fatalf("target = %d, want 5", got)
		}
		if got := sc.retireTokens.Load(); got != 3 {
			t.Fatalf("retire tokens = %d, want 3", got)
		}
		// Regrowing absorbs outstanding retirements before spawning.
		sc.apply(context.Background(), +2)
		if got := sc.retireTokens.Load(); got != 1 {
			t.Fatalf("retire tokens after regrow = %d, want 1", got)
		}
		l.Stop()
	})
	h.k.Drain()
}

func TestSchedulerRetireTokenClaiming(t *testing.T) {
	h := newHarness(16, 1)
	h.k.Run(func() {
		l := newIdleLoader(t, h)
		sc := l.sched
		sc.retireTokens.Store(2)
		claims := 0
		for i := 0; i < 5; i++ {
			if sc.shouldRetire(i) {
				claims++
			}
		}
		if claims != 2 {
			t.Fatalf("claims = %d, want exactly 2 (one per token)", claims)
		}
		l.Stop()
	})
	h.k.Drain()
}

func TestSchedulerZeroDeltaNoChange(t *testing.T) {
	h := newHarness(16, 1)
	h.k.Run(func() {
		l := newIdleLoader(t, h)
		sc := l.sched
		sc.SetTarget(4)
		sc.apply(context.Background(), 0)
		if sc.Target() != 4 || sc.retireTokens.Load() != 0 {
			t.Fatal("zero delta mutated state")
		}
		l.Stop()
	})
	h.k.Drain()
}
