package core

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/device"
	"github.com/minatoloader/minato/internal/gpu"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/storage"
	"github.com/minatoloader/minato/internal/transform"
)

// harness bundles a virtual kernel with a small testbed environment.
type harness struct {
	k   *simtime.Virtual
	env *loader.Env
}

func newHarness(cores float64, gpus int) *harness {
	k := simtime.NewVirtual()
	disk := storage.NewDisk(k, "disk", 10e9, 2)
	return &harness{
		k: k,
		env: &loader.Env{
			RT:    k,
			CPU:   device.New(k, "cpu", cores),
			GPUs:  gpu.Pool(k, gpus, gpu.A100, 40<<30),
			Store: &storage.Store{Disk: disk, Cache: storage.NewPageCache(64 << 30)},
			WG:    simtime.NewWaitGroup(k),
		},
	}
}

// bimodalSpec builds a spec over the speech dataset (20% heavy samples at
// 3s, 80% at ≈0.51s) — the canonical HOL-blocking workload.
func bimodalSpec(batch, iters int) loader.Spec {
	return loader.Spec{
		Dataset:    dataset.Subset(dataset.NewLibriSpeech(1, 5), 3000),
		Pipeline:   transform.SpeechPipeline(3 * time.Second),
		BatchSize:  batch,
		Iterations: iters,
		Seed:       1,
	}
}

// drainAll consumes every batch from all GPU queues and returns them in
// delivery order per GPU.
func drainAll(ctx context.Context, t *testing.T, l *Loader, gpus int) [][]*data.Batch {
	t.Helper()
	out := make([][]*data.Batch, gpus)
	wg := simtime.NewWaitGroup(l.env.RT)
	for g := 0; g < gpus; g++ {
		g := g
		wg.Go("consumer", func() {
			for {
				b, err := l.Next(ctx, g)
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Errorf("Next: %v", err)
					return
				}
				out[g] = append(out[g], b)
			}
		})
	}
	if err := wg.Wait(ctx); err != nil {
		t.Fatalf("consumers: %v", err)
	}
	return out
}

func TestDeliversExactBudget(t *testing.T) {
	h := newHarness(16, 2)
	h.k.Run(func() {
		spec := bimodalSpec(8, 12)
		l := New(h.env, spec, DefaultConfig())
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		batches := drainAll(context.Background(), t, l, 2)
		total := len(batches[0]) + len(batches[1])
		if total != 12 {
			t.Fatalf("delivered %d batches, want 12", total)
		}
		for _, bs := range batches {
			for _, b := range bs {
				if len(b.Samples) != 8 {
					t.Fatalf("batch size %d, want 8", len(b.Samples))
				}
				if !b.Resident {
					t.Fatal("minato batches must be GPU-resident (prefetch stream)")
				}
			}
		}
		l.Stop()
		_ = h.env.WG.Wait(context.Background())
	})
}

func TestHeavySamplesClassifiedSlowAfterWarmup(t *testing.T) {
	h := newHarness(16, 1)
	h.k.Run(func() {
		spec := bimodalSpec(6, 40)
		cfg := DefaultConfig()
		cfg.WarmupSamples = 24
		l := New(h.env, spec, cfg)
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		batches := drainAll(context.Background(), t, l, 1)
		var slowHeavy, slowLight, heavy, light int
		warmup := true
		for _, b := range batches[0] {
			for _, s := range b.Samples {
				// Skip samples processed during the optimistic warmup.
				if warmup {
					if s.MarkedSlow {
						warmup = false
					} else {
						continue
					}
				}
				if s.Features.Heavy {
					heavy++
					if s.MarkedSlow {
						slowHeavy++
					}
				} else {
					light++
					if s.MarkedSlow {
						slowLight++
					}
				}
			}
		}
		if heavy == 0 {
			t.Fatal("no heavy samples observed")
		}
		if slowHeavy < heavy*9/10 {
			t.Errorf("only %d/%d heavy samples classified slow", slowHeavy, heavy)
		}
		// P75 on a 20%-heavy distribution lands inside the light cluster,
		// so the slowest ~5 points of light samples classify slow by
		// design (§4.2 chooses P75 deliberately; the fallback guards
		// against gross skew, not this).
		if slowLight > light*15/100 {
			t.Errorf("%d/%d light samples misclassified slow (>15%%)", slowLight, light)
		}
		l.Stop()
		_ = h.env.WG.Wait(context.Background())
	})
}

func TestSlowSamplesResumeFromRecordedIndex(t *testing.T) {
	h := newHarness(16, 1)
	h.k.Run(func() {
		spec := bimodalSpec(6, 40)
		l := New(h.env, spec, DefaultConfig())
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		batches := drainAll(context.Background(), t, l, 1)
		resumed := 0
		for _, b := range batches[0] {
			for _, s := range b.Samples {
				if !s.MarkedSlow {
					continue
				}
				resumed++
				if s.TimesResumed == 0 {
					t.Fatal("slow sample never resumed")
				}
				// HeavyStep is transform index 6; the timeout fires inside
				// it, so resumption must start there, not at zero.
				if s.ResumedFrom == 0 {
					t.Errorf("slow sample restarted from scratch (ResumedFrom=0)")
				}
				if s.NextTransform != spec.Pipeline.Len() {
					t.Errorf("slow sample incomplete: next=%d", s.NextTransform)
				}
			}
		}
		if resumed == 0 {
			t.Fatal("no slow samples seen")
		}
		l.Stop()
		_ = h.env.WG.Wait(context.Background())
	})
}

// TestNoHeadOfLineBlocking pins the paper's core claim at the loader level:
// batch delivery continues while heavy samples preprocess in background.
func TestNoHeadOfLineBlocking(t *testing.T) {
	h := newHarness(8, 1)
	h.k.Run(func() {
		spec := bimodalSpec(4, 30)
		cfg := DefaultConfig()
		cfg.WarmupSamples = 8
		l := New(h.env, spec, cfg)
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Consume all batches, recording inter-arrival gaps after warmup.
		var gaps []time.Duration
		last := time.Duration(-1)
		for i := 0; i < 30; i++ {
			b, err := l.Next(context.Background(), 0)
			if err != nil {
				t.Fatalf("Next(%d): %v", i, err)
			}
			if i >= 10 { // past warmup
				if last >= 0 {
					gaps = append(gaps, b.CreatedAt-last)
				}
				last = b.CreatedAt
			} else {
				last = b.CreatedAt
			}
		}
		// With 8 workers and ≈0.5s fast samples, fast batches of 4 keep
		// flowing; no gap should approach a heavy sample's 3s cost.
		for _, g := range gaps {
			if g > 2500*time.Millisecond {
				t.Fatalf("delivery gap %v indicates head-of-line blocking", g)
			}
		}
		l.Stop()
		_ = h.env.WG.Wait(context.Background())
	})
}

func TestOrderPreservingModeDeliversInSamplerOrder(t *testing.T) {
	h := newHarness(16, 1)
	h.k.Run(func() {
		spec := bimodalSpec(4, 25)
		cfg := DefaultConfig()
		cfg.OrderPreserving = true
		l := New(h.env, spec, cfg)
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		batches := drainAll(context.Background(), t, l, 1)
		var prev int64 = -1
		for _, b := range batches[0] {
			for _, s := range b.Samples {
				if s.OriginalOrder != prev+1 {
					t.Fatalf("order break: sample %d after %d", s.OriginalOrder, prev)
				}
				prev = s.OriginalOrder
			}
		}
		if prev != 25*4-1 {
			t.Fatalf("last order = %d, want %d", prev, 25*4-1)
		}
		l.Stop()
		_ = h.env.WG.Wait(context.Background())
	})
}

func TestPairedModalityPreserved(t *testing.T) {
	h := newHarness(16, 1)
	h.k.Run(func() {
		spec := bimodalSpec(4, 10)
		l := New(h.env, spec, DefaultConfig())
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		batches := drainAll(context.Background(), t, l, 1)
		for _, b := range batches[0] {
			for _, s := range b.Samples {
				if s.Pair.IsZero() {
					t.Fatal("audio sample lost its paired transcript key")
				}
			}
		}
		l.Stop()
		_ = h.env.WG.Wait(context.Background())
	})
}

func TestAdaptiveWorkersGrowUnderCPUBottleneck(t *testing.T) {
	h := newHarness(64, 2)
	h.k.Run(func() {
		spec := bimodalSpec(8, 60)
		cfg := DefaultConfig()
		cfg.InitialWorkersPerGPU = 2 // start tiny: 4 workers
		l := New(h.env, spec, cfg)
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		start := l.Workers()
		drainAll(context.Background(), t, l, 2)
		// The speech workload saturates 4 workers; the scheduler must have
		// grown the pool well past the initial size at some point.
		grown := l.PeakWorkers()
		if grown <= start {
			t.Fatalf("workers did not grow: start=%d peak=%d", start, grown)
		}
		l.Stop()
		_ = h.env.WG.Wait(context.Background())
	})
}

func TestFixedWorkersWhenAdaptiveDisabled(t *testing.T) {
	h := newHarness(64, 2)
	h.k.Run(func() {
		spec := bimodalSpec(8, 30)
		cfg := DefaultConfig()
		cfg.InitialWorkersPerGPU = 3
		cfg.DisableAdaptiveWorkers = true
		l := New(h.env, spec, cfg)
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		drainAll(context.Background(), t, l, 2)
		if got := l.PeakWorkers(); got != 6 {
			t.Fatalf("peak workers = %d, want fixed 6", got)
		}
		l.Stop()
		_ = h.env.WG.Wait(context.Background())
	})
}

func TestStopMidRunDoesNotHang(t *testing.T) {
	h := newHarness(8, 1)
	h.k.Run(func() {
		spec := bimodalSpec(8, 1000)
		l := New(h.env, spec, DefaultConfig())
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Take a few batches, then stop early.
		for i := 0; i < 3; i++ {
			if _, err := l.Next(context.Background(), 0); err != nil {
				t.Fatal(err)
			}
		}
		l.Stop()
		if err := h.env.WG.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Next(context.Background(), 0); err != io.EOF {
			t.Fatalf("Next after stop = %v, want EOF", err)
		}
	})
}

func TestSizeHeuristicClassifiesBySize(t *testing.T) {
	h := newHarness(16, 1)
	h.k.Run(func() {
		spec := loader.Spec{
			Dataset:    dataset.Subset(dataset.NewCOCO(1), 3000),
			Pipeline:   transform.ObjectDetectionPipeline(),
			BatchSize:  8,
			Iterations: 20,
			Seed:       1,
		}
		cfg := DefaultConfig()
		cfg.SizeHeuristicThreshold = 800 << 10 // 800 KB
		l := New(h.env, spec, cfg)
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		batches := drainAll(context.Background(), t, l, 1)
		for _, b := range batches[0] {
			for _, s := range b.Samples {
				wantSlow := s.RawBytes > 800<<10
				if s.MarkedSlow != wantSlow {
					t.Fatalf("sample size %dKB marked slow=%v", s.RawBytes>>10, s.MarkedSlow)
				}
			}
		}
		l.Stop()
		_ = h.env.WG.Wait(context.Background())
	})
}

// faultyTransform panics for specific sample indices — simulating a buggy
// user-defined transform.
type faultyTransform struct {
	inner transform.Transform
	bad   func(*data.Sample) bool
}

func (f *faultyTransform) Name() string { return f.inner.Name() + "+faulty" }
func (f *faultyTransform) Cost(s *data.Sample) time.Duration {
	if f.bad(s) {
		panic("injected transform fault")
	}
	return f.inner.Cost(s)
}
func (f *faultyTransform) SizeFactor(s *data.Sample) float64 { return f.inner.SizeFactor(s) }
func (f *faultyTransform) Barrier() bool                     { return f.inner.Barrier() }

// TestWorkerSurvivesPanickingTransform: a buggy transform must not take
// down the loader; the bad samples are abandoned, everything else flows,
// and shutdown stays clean.
func TestWorkerSurvivesPanickingTransform(t *testing.T) {
	h := newHarness(8, 1)
	h.k.Run(func() {
		base := transform.SpeechPipeline(3 * time.Second)
		ts := base.Transforms()
		wrapped := make([]transform.Transform, len(ts))
		for i, tr := range ts {
			wrapped[i] = tr
		}
		// Every 50th sample poisons the first transform.
		wrapped[0] = &faultyTransform{inner: ts[0], bad: func(s *data.Sample) bool {
			return s.Index%50 == 0
		}}
		spec := loader.Spec{
			Dataset:    dataset.Subset(dataset.NewLibriSpeech(1, 5), 1000),
			Pipeline:   transform.NewPipeline("faulty", wrapped...),
			BatchSize:  8,
			Iterations: 20,
			Seed:       1,
		}
		l := New(h.env, spec, DefaultConfig())
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		delivered := 0
		for {
			_, err := l.Next(context.Background(), 0)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			delivered++
		}
		// With abandoned samples the final batch budget may be short by a
		// batch, but most of the run must complete and faults be counted.
		if delivered < 18 {
			t.Fatalf("delivered %d batches, want ≥18 despite faults", delivered)
		}
		if l.Faults() == 0 {
			t.Fatal("faults not recorded")
		}
		l.Stop()
		if err := h.env.WG.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRestartFromScratchAblationRedoesWork(t *testing.T) {
	h := newHarness(16, 1)
	h.k.Run(func() {
		spec := bimodalSpec(6, 30)
		cfg := DefaultConfig()
		cfg.RestartSlowFromScratch = true
		l := New(h.env, spec, cfg)
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		batches := drainAll(context.Background(), t, l, 1)
		sawRestart := false
		for _, b := range batches[0] {
			for _, s := range b.Samples {
				if s.MarkedSlow && s.ResumedFrom == 0 {
					sawRestart = true
				}
			}
		}
		if !sawRestart {
			t.Fatal("restart ablation never restarted from index 0")
		}
		l.Stop()
		_ = h.env.WG.Wait(context.Background())
	})
}

// rejectingTransform fails validation for specific samples — the cost-model
// analogue of a corrupt sample that errors (rather than panics) during
// preprocessing.
type rejectingTransform struct {
	transform.Transform
	bad func(*data.Sample) bool
}

func (r *rejectingTransform) Validate(s *data.Sample) error {
	if r.bad(s) {
		return errors.New("corrupt sample")
	}
	return nil
}

// rejectingSpec wraps the speech pipeline so every 50th dataset index fails
// validation with a plain error.
func rejectingSpec(batch, iters int) loader.Spec {
	base := transform.SpeechPipeline(3 * time.Second)
	ts := base.Transforms()
	wrapped := make([]transform.Transform, len(ts))
	copy(wrapped, ts)
	wrapped[0] = &rejectingTransform{Transform: ts[0], bad: func(s *data.Sample) bool {
		return s.Index%50 == 0
	}}
	return loader.Spec{
		Dataset:    dataset.Subset(dataset.NewLibriSpeech(1, 5), 1000),
		Pipeline:   transform.NewPipeline("rejecting", wrapped...),
		BatchSize:  8,
		Iterations: iters,
		Seed:       1,
	}
}

// TestWorkerSurvivesFailingSample: a per-sample error (not a panic) must not
// kill the worker. Before the fix, each error silently retired a worker and
// skewed the termination accounting (emitted > enqueued + abandoned), so the
// session never drained; this test hung.
func TestWorkerSurvivesFailingSample(t *testing.T) {
	h := newHarness(8, 1)
	h.k.Run(func() {
		l := New(h.env, rejectingSpec(8, 20), DefaultConfig())
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		delivered := 0
		for {
			_, err := l.Next(context.Background(), 0)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			delivered++
		}
		if delivered < 18 {
			t.Fatalf("delivered %d batches, want ≥18 despite per-sample errors", delivered)
		}
		if l.Faults() == 0 {
			t.Fatal("per-sample errors not recorded as faults")
		}
		// The claim for any unassemblable tail batch must have been
		// released: the claim counter is an exact account of assembled
		// batches (regression for the leaked-claim bug).
		if got := l.claims.Load(); got != int64(delivered) {
			t.Fatalf("claims = %d, want %d (delivered batches)", got, delivered)
		}
		l.Stop()
		if err := h.env.WG.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
}

// TestOrderPreservingSkipsAbandonedSamples: with strict ordering, an
// abandoned draw must be tombstoned so the order advances past it instead of
// stalling every later sample forever.
func TestOrderPreservingSkipsAbandonedSamples(t *testing.T) {
	h := newHarness(8, 1)
	h.k.Run(func() {
		cfg := DefaultConfig()
		cfg.OrderPreserving = true
		l := New(h.env, rejectingSpec(8, 20), cfg)
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		var prev int64 = -1
		delivered := 0
		for {
			b, err := l.Next(context.Background(), 0)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			delivered++
			for _, s := range b.Samples {
				if s.OriginalOrder <= prev {
					t.Fatalf("order break: %d after %d", s.OriginalOrder, prev)
				}
				prev = s.OriginalOrder
			}
		}
		if delivered < 18 {
			t.Fatalf("delivered %d batches, want ≥18", delivered)
		}
		if l.Faults() == 0 {
			t.Fatal("expected faults")
		}
		l.Stop()
		if err := h.env.WG.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
}

// TestNoPollPacingInSteadyState pins the event-driven contract: idle workers
// and batch constructors block on wakeups, never on PollInterval pacing. A
// pathological PollInterval must therefore change nothing, and no idle wait
// may end on the fallback heartbeat.
func TestNoPollPacingInSteadyState(t *testing.T) {
	elapsed := func(poll time.Duration) (time.Duration, *Loader) {
		h := newHarness(16, 1)
		var l *Loader
		var total time.Duration
		h.k.Run(func() {
			cfg := DefaultConfig()
			cfg.PollInterval = poll
			l = New(h.env, bimodalSpec(8, 20), cfg)
			if err := l.Start(context.Background()); err != nil {
				t.Fatal(err)
			}
			drainAll(context.Background(), t, l, 1)
			total = h.k.Now()
			l.Stop()
			_ = h.env.WG.Wait(context.Background())
		})
		return total, l
	}
	tDefault, l1 := elapsed(10 * time.Millisecond)
	tHuge, l2 := elapsed(10 * time.Minute)
	// A single sleep on the 10-minute interval would blow this bound; the
	// small epsilon only absorbs wall-race scheduling jitter between runs.
	if diff := (tHuge - tDefault).Abs(); diff > 5*time.Second {
		t.Fatalf("PollInterval paced the session: %v (10ms) vs %v (10min)", tDefault, tHuge)
	}
	for i, l := range []*Loader{l1, l2} {
		if l.IdleWaits() == 0 {
			t.Fatalf("loader %d: no event-driven idle waits recorded", i)
		}
		if l.HeartbeatWakes() != 0 {
			t.Fatalf("loader %d: %d idle waits ended on the poll heartbeat, want 0", i, l.HeartbeatWakes())
		}
	}
}

// TestOrderedBufferWakesConsumers unit-tests the ordered buffer's wake
// source: a consumer parked on it wakes when the next-in-order slot fills or
// is skipped, at the exact virtual instant.
func TestOrderedBufferWakesConsumers(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		o := newOrderedBuffer()
		sel := simtime.NewSelector(k)
		wg := simtime.NewWaitGroup(k)
		s0 := &data.Sample{OriginalOrder: 0}
		s2 := &data.Sample{OriginalOrder: 2}
		wg.Go("consumer", func() {
			// Out-of-order arrival (seq 2 before 0) must not wake us early.
			if idx, err := sel.Select(context.Background(), 0, o); err != nil || idx != 0 {
				t.Errorf("Select = %d, %v", idx, err)
			}
			if k.Now() != 2*time.Millisecond {
				t.Errorf("woke at %v, want 2ms (when seq 0 arrived)", k.Now())
			}
			if got := o.takeNext(); got != s0 {
				t.Errorf("takeNext = %v, want seq 0", got)
			}
			// Seq 1 is abandoned: the skip must wake us at 3ms and takeNext
			// must cascade past the tombstone to seq 2.
			if idx, err := sel.Select(context.Background(), 0, o); err != nil || idx != 0 {
				t.Errorf("Select after skip = %d, %v", idx, err)
			}
			if k.Now() != 3*time.Millisecond {
				t.Errorf("woke at %v, want 3ms (when seq 1 was skipped)", k.Now())
			}
			if got := o.takeNext(); got != s2 {
				t.Errorf("takeNext after skip = %v, want seq 2", got)
			}
			if !o.empty() {
				t.Error("buffer should be empty after draining")
			}
		})
		wg.Go("producer", func() {
			_ = k.Sleep(context.Background(), time.Millisecond)
			o.add(s2)
			_ = k.Sleep(context.Background(), time.Millisecond)
			o.add(s0)
			_ = k.Sleep(context.Background(), time.Millisecond)
			o.skip(1)
		})
		_ = wg.Wait(context.Background())
	})
}
