package core

import (
	"math"
	"sort"
	"time"
)

import "testing"

// syntheticCosts mimics the bimodal speech distribution: 80% light samples
// around 0.5s, 20% heavy around 3s, with deterministic jitter.
func syntheticCosts(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		jitter := 0.7 + 0.6*float64(i%97)/96.0
		base := 0.5
		if i%5 == 0 {
			base = 3.0
		}
		out[i] = time.Duration(base * jitter * float64(time.Second))
	}
	return out
}

// BenchmarkProfilerRecord measures the shipping path: O(1) histogram updates
// with an O(buckets) percentile walk every RecomputeEvery records.
func BenchmarkProfilerRecord(b *testing.B) {
	costs := syntheticCosts(4096)
	p := NewProfiler(ProfilerConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Record(costs[i%len(costs)])
	}
}

// sortingProfiler reimplements the pre-histogram design — a float window
// copied and fully sorted on every recompute — as the benchmark baseline.
type sortingProfiler struct {
	window         []float64
	idx            int
	records        int
	warmup, every  int
	pct            float64
	cap            int
	timeoutSeconds float64
}

func (p *sortingProfiler) record(cost time.Duration) {
	if len(p.window) < p.cap {
		p.window = append(p.window, cost.Seconds())
	} else {
		p.window[p.idx] = cost.Seconds()
		p.idx = (p.idx + 1) % p.cap
	}
	p.records++
	if p.records >= p.warmup && p.records%p.every == 0 {
		vals := make([]float64, len(p.window))
		copy(vals, p.window)
		sort.Float64s(vals)
		pos := p.pct * float64(len(vals)-1)
		lo := int(pos)
		v := vals[lo]
		if lo+1 < len(vals) {
			frac := pos - float64(lo)
			v = v*(1-frac) + vals[lo+1]*frac
		}
		p.timeoutSeconds = v
	}
}

// BenchmarkProfilerRecordSortBaseline measures the replaced design for
// comparison; run both with -benchmem to see the allocation difference too.
func BenchmarkProfilerRecordSortBaseline(b *testing.B) {
	costs := syntheticCosts(4096)
	p := &sortingProfiler{warmup: 48, every: 32, pct: 0.75, cap: 2048}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.record(costs[i%len(costs)])
	}
	if p.timeoutSeconds > 0 && math.IsNaN(p.timeoutSeconds) {
		b.Fatal("unreachable; keeps the result live")
	}
}
