package core

import (
	"context"
	"testing"

	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/matcache"
)

// Stopping a warm loader with slow samples still parked in the temp queue
// must abort their matcache leader claims. leadFill parks such samples with
// the claim deliberately unsettled (finishSlow settles it), so an early
// Stop — an iteration budget ending mid-epoch — would otherwise strand the
// keys inflight in the cluster-shared cache, and every co-tenant or later
// session missing on the same (key, signature) would park forever on a fill
// that will never complete.
func TestStopAbortsParkedWarmClaims(t *testing.T) {
	h := newHarness(8, 1)
	h.env.Mat = matcache.New(64 << 30)
	h.k.Run(func() {
		l := New(h.env, bimodalSpec(6, 2), DefaultConfig())
		ctx := context.Background()

		// Reproduce leadFill's slow park by hand: claim leadership for two
		// keys and park their samples, settlement deferred to a finishSlow
		// that will never run because the loader stops first.
		var keys []matcache.Key
		for i := 0; i < 2; i++ {
			s := loader.FillSample(h.env, l.spec, loader.IndexItem{Index: i, Seq: int64(i)})
			s.MarkedSlow = true
			mk := matcache.Key{Obj: s.Key, Sig: l.matSig}
			if _, hit, w := l.mat.GetOrBegin(l.matTenant, mk, h.env.RT); hit || w != nil {
				t.Fatalf("key %v: expected leadership", mk.Obj)
			}
			if err := l.tempQ.Put(ctx, tempItem{s: s}); err != nil {
				t.Fatal(err)
			}
			keys = append(keys, mk)
		}

		l.Stop()

		// Every parked claim must be settled: a fresh miss elects a new
		// leader instead of parking behind the dead fill.
		for _, mk := range keys {
			_, hit, w := l.mat.GetOrBegin(l.matTenant, mk, h.env.RT)
			if w != nil {
				t.Fatalf("key %v still has an orphaned inflight claim after Stop", mk.Obj)
			}
			if hit {
				t.Fatalf("key %v: aborted fill was published as a hit", mk.Obj)
			}
			l.mat.Abort(mk) // settle the probe's own leadership
		}
	})
}
