package core

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/stats"
)

// Scheduler implements the adaptive worker scheduler of §4.3:
//
//	Δ = α·(1 − Q/Qmax) + β·(C − θc)            (Formula 2)
//	workers = min(maxWorkers, max(1, workers + clip(Δ)))  (Formula 1)
//
// Q is a moving average of batch-queue occupancy, C is the utilization of
// the currently allocated workers, and Δ is clipped to a small integer
// range for stability. Empty queues and busy workers grow the pool (a CPU
// bottleneck); full queues and idle workers shrink it (over-provisioning).
type Scheduler struct {
	l   *Loader
	cfg Config

	target       atomic.Int64
	live         atomic.Int64
	peak         atomic.Int64
	retireTokens atomic.Int64

	qAvg *stats.EWMA

	lastBusy    float64
	lastTime    time.Duration
	lastCPUUtil float64
}

// NewScheduler returns a scheduler bound to a loader.
func NewScheduler(l *Loader, cfg Config) *Scheduler {
	return &Scheduler{l: l, cfg: cfg, qAvg: stats.NewEWMA(0.3)}
}

// SetTarget fixes the desired worker count (initialization and tests).
func (sc *Scheduler) SetTarget(n int) { sc.target.Store(int64(n)) }

// Target returns the current desired worker count.
func (sc *Scheduler) Target() int { return int(sc.target.Load()) }

// workerSpawned registers a new worker and returns its id.
func (sc *Scheduler) workerSpawned() int {
	n := sc.live.Add(1)
	for {
		p := sc.peak.Load()
		if n <= p || sc.peak.CompareAndSwap(p, n) {
			break
		}
	}
	return int(n)
}

// peakWorkers returns the pool's high-water mark.
func (sc *Scheduler) peakWorkers() int { return int(sc.peak.Load()) }

// workerExited deregisters a worker.
func (sc *Scheduler) workerExited() { sc.live.Add(-1) }

// liveWorkers returns the current pool size.
func (sc *Scheduler) liveWorkers() int { return int(sc.live.Load()) }

// shouldRetire lets one worker claim an outstanding retirement token.
func (sc *Scheduler) shouldRetire(_ int) bool {
	for {
		t := sc.retireTokens.Load()
		if t <= 0 {
			return false
		}
		if sc.retireTokens.CompareAndSwap(t, t-1) {
			return true
		}
	}
}

// Start launches the scheduling loop.
func (sc *Scheduler) Start(ctx context.Context) {
	sc.lastBusy = sc.l.env.CPU.BusySeconds()
	sc.lastTime = sc.l.env.RT.Now()
	sc.l.env.WG.Go("minato-scheduler", func() {
		// Park on a selector armed on the loader's gate, with the tick
		// interval as the heartbeat, rather than a plain Sleep: Stop pulses
		// the gate, and a gate wake reaches the kernel synchronously. A
		// context cancel would leave this task's interval timer live until
		// the cancellation propagates, and an otherwise-idle kernel can
		// advance the clock to that deadline in the window — a wall-clock
		// race in what must be a deterministic schedule.
		sel := simtime.NewSelector(sc.l.env.RT)
		for {
			if sc.l.stopFlag.Load() {
				return
			}
			next := sc.l.env.RT.Now() + sc.cfg.SchedInterval
			for {
				park := next - sc.l.env.RT.Now()
				if park <= 0 {
					break
				}
				idx, err := sel.Select(ctx, park, sc.l.gate)
				if err != nil {
					return
				}
				if sc.l.stopFlag.Load() || sc.l.srcDone.Load() {
					return
				}
				if idx == simtime.Heartbeat {
					break
				}
			}
			sc.tick(ctx)
		}
	})
}

// tick performs one scheduling decision.
func (sc *Scheduler) tick(ctx context.Context) {
	// Q: moving average of total batch-queue occupancy.
	qLen := 0
	qMax := 0
	for _, q := range sc.l.batchQs {
		qLen += q.Len()
		qMax += q.Cap()
	}
	qAvg := sc.qAvg.Update(float64(qLen))
	qFrac := qAvg / float64(qMax)

	// C: utilization of the allocated workers over the last interval.
	now := sc.l.env.RT.Now()
	busy := sc.l.env.CPU.BusySeconds()
	dt := (now - sc.lastTime).Seconds()
	live := float64(sc.liveWorkers())
	c := sc.lastCPUUtil
	if dt > 0 && live > 0 {
		c = (busy - sc.lastBusy) / (dt * live)
		if c > 1 {
			c = 1
		}
		if c < 0 {
			c = 0
		}
	}
	sc.lastBusy, sc.lastTime, sc.lastCPUUtil = busy, now, c

	delta := sc.cfg.Alpha*(1-qFrac) + sc.cfg.Beta*(c-sc.cfg.CPUThreshold)
	d := int(math.Round(delta))
	if d > sc.cfg.DeltaClip {
		d = sc.cfg.DeltaClip
	}
	if d < -sc.cfg.DeltaClip {
		d = -sc.cfg.DeltaClip
	}
	sc.apply(ctx, d)
}

// apply adjusts the pool toward workers+delta within [1, maxWorkersNow].
// The upper bound is re-read each call: when a cluster governor shrinks this
// tenant's quota (a new tenant joined), the pool retires down to the new
// bound even on a zero delta.
func (sc *Scheduler) apply(ctx context.Context, delta int) {
	cur := sc.Target()
	next := cur + delta
	if next < 1 {
		next = 1
	}
	if max := sc.l.maxWorkersNow(); next > max {
		next = max
	}
	if next == cur {
		return
	}
	sc.SetTarget(next)
	if next > cur {
		// Absorb pending retirements first, then spawn the remainder.
		grow := next - cur
		for grow > 0 {
			t := sc.retireTokens.Load()
			if t <= 0 {
				break
			}
			if sc.retireTokens.CompareAndSwap(t, t-1) {
				grow--
			}
		}
		for i := 0; i < grow; i++ {
			sc.l.spawnWorker(ctx)
		}
		return
	}
	sc.retireTokens.Add(int64(cur - next))
}
