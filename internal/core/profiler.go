package core

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ProfilerConfig controls the timeout profiler (§4.2).
type ProfilerConfig struct {
	TimeoutPercentile  float64 // default threshold: P75
	FallbackPercentile float64 // used when too many samples classify slow: P90
	MaxSlowFraction    float64 // trigger for the fallback
	WarmupSamples      int     // optimistic phase length
	WindowSize         int     // sliding window for continuous re-profiling
	RecomputeEvery     int     // records between threshold recomputations
}

// Profiler maintains the fast/slow classification timeout. During warmup
// every sample is optimistically assumed fast (Timeout returns "infinite");
// once enough preprocessing times have been observed, the timeout is the
// configured percentile over a sliding window, recomputed continuously so
// the threshold tracks workload drift. If the observed slow-classification
// rate exceeds MaxSlowFraction (a skewed distribution), the profiler falls
// back to the higher percentile (§4.2).
type Profiler struct {
	cfg ProfilerConfig

	mu sync.Mutex
	// The sliding window is kept as a histogram over log-spaced buckets:
	// ring holds the bucket of each windowed record, counts the per-bucket
	// population. Recording is O(1) (one bucket in, one out) and a
	// percentile is one O(buckets) walk — no copy, no sort, no allocation,
	// unlike the previous sort of the full window every RecomputeEvery
	// records. Bucket resolution bounds the percentile error to under ~2%
	// relative, tightened further by linear interpolation inside a bucket.
	ring    []uint16 // bucket index per windowed record
	counts  []int32  // histogram over the live window
	n       int      // live records (≤ WindowSize)
	idx     int
	records int

	classifiedSlow  int64
	classifiedTotal int64
	fellBack        bool

	// timeoutNs is read lock-free on the worker hot path.
	timeoutNs atomic.Int64
}

// Histogram geometry: log-spaced buckets covering 100µs .. ~1000s of
// per-sample preprocessing time, clamped at both ends.
const (
	histBuckets = 1024
	histMinSec  = 100e-6
	histMaxSec  = 1000.0
)

var (
	histPerOctave = float64(histBuckets) / math.Log2(histMaxSec/histMinSec)
	// histBounds[i] is the lower bound of bucket i; histBounds[histBuckets]
	// closes the last bucket.
	histBounds = func() [histBuckets + 1]float64 {
		var b [histBuckets + 1]float64
		for i := range b {
			b[i] = histMinSec * math.Exp2(float64(i)/histPerOctave)
		}
		return b
	}()
)

func histBucket(sec float64) int {
	if sec <= histMinSec {
		return 0
	}
	b := int(math.Log2(sec/histMinSec) * histPerOctave)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// NewProfiler returns a profiler with defaults filled in.
func NewProfiler(cfg ProfilerConfig) *Profiler {
	if cfg.TimeoutPercentile <= 0 {
		cfg.TimeoutPercentile = 0.75
	}
	if cfg.FallbackPercentile <= 0 {
		cfg.FallbackPercentile = 0.90
	}
	if cfg.MaxSlowFraction <= 0 {
		cfg.MaxSlowFraction = 0.40
	}
	if cfg.WarmupSamples <= 0 {
		cfg.WarmupSamples = 48
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 2048
	}
	if cfg.RecomputeEvery <= 0 {
		cfg.RecomputeEvery = 32
	}
	p := &Profiler{
		cfg:    cfg,
		ring:   make([]uint16, cfg.WindowSize),
		counts: make([]int32, histBuckets),
	}
	p.timeoutNs.Store(math.MaxInt64)
	return p
}

// Record adds one observed total preprocessing time: one bucket increment,
// and one decrement for the record sliding out of the window.
func (p *Profiler) Record(cost time.Duration) {
	b := uint16(histBucket(cost.Seconds()))
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.n < p.cfg.WindowSize {
		p.ring[p.n] = b
		p.n++
	} else {
		p.counts[p.ring[p.idx]]--
		p.ring[p.idx] = b
		p.idx = (p.idx + 1) % p.cfg.WindowSize
	}
	p.counts[b]++
	p.records++
	if p.records >= p.cfg.WarmupSamples && p.records%p.cfg.RecomputeEvery == 0 {
		p.recomputeLocked()
	} else if p.records == p.cfg.WarmupSamples {
		p.recomputeLocked()
	}
}

// Classified records a fast/slow classification outcome, feeding the
// fallback trigger.
func (p *Profiler) Classified(slow bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.classifiedTotal++
	if slow {
		p.classifiedSlow++
	}
	if !p.fellBack && p.classifiedTotal >= 64 {
		frac := float64(p.classifiedSlow) / float64(p.classifiedTotal)
		if frac > p.cfg.MaxSlowFraction {
			p.fellBack = true
			p.recomputeLocked()
		}
	}
}

func (p *Profiler) recomputeLocked() {
	if p.n == 0 {
		return
	}
	pct := p.cfg.TimeoutPercentile
	if p.fellBack {
		pct = p.cfg.FallbackPercentile
	}
	// Walk the histogram to the bucket containing the fractional rank, then
	// interpolate linearly inside it.
	rank := pct * float64(p.n-1)
	cum := 0
	v := histBounds[histBuckets]
	for b, c := range p.counts {
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c)-1 >= rank {
			within := (rank - float64(cum) + 0.5) / float64(c)
			if within < 0 {
				within = 0
			}
			if within > 1 {
				within = 1
			}
			v = histBounds[b] + (histBounds[b+1]-histBounds[b])*within
			break
		}
		cum += int(c)
	}
	p.timeoutNs.Store(int64(v * float64(time.Second)))
}

// Timeout returns the current classification budget. Before warmup
// completes it is effectively infinite: all samples are optimistically
// fast (§4.2).
func (p *Profiler) Timeout() time.Duration {
	return time.Duration(p.timeoutNs.Load())
}

// WarmupDone reports whether the optimistic phase has ended.
func (p *Profiler) WarmupDone() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.records >= p.cfg.WarmupSamples
}

// FellBack reports whether the fallback percentile is active.
func (p *Profiler) FellBack() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fellBack
}

// SlowFraction returns the observed slow-classification rate.
func (p *Profiler) SlowFraction() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.classifiedTotal == 0 {
		return 0
	}
	return float64(p.classifiedSlow) / float64(p.classifiedTotal)
}
