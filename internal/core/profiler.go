package core

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ProfilerConfig controls the timeout profiler (§4.2).
type ProfilerConfig struct {
	TimeoutPercentile  float64 // default threshold: P75
	FallbackPercentile float64 // used when too many samples classify slow: P90
	MaxSlowFraction    float64 // trigger for the fallback
	WarmupSamples      int     // optimistic phase length
	WindowSize         int     // sliding window for continuous re-profiling
	RecomputeEvery     int     // records between threshold recomputations
}

// Profiler maintains the fast/slow classification timeout. During warmup
// every sample is optimistically assumed fast (Timeout returns "infinite");
// once enough preprocessing times have been observed, the timeout is the
// configured percentile over a sliding window, recomputed continuously so
// the threshold tracks workload drift. If the observed slow-classification
// rate exceeds MaxSlowFraction (a skewed distribution), the profiler falls
// back to the higher percentile (§4.2).
type Profiler struct {
	cfg ProfilerConfig

	mu      sync.Mutex
	window  []float64 // ring buffer of preprocessing times (seconds)
	idx     int
	filled  bool
	records int

	classifiedSlow  int64
	classifiedTotal int64
	fellBack        bool

	// timeoutNs is read lock-free on the worker hot path.
	timeoutNs atomic.Int64
}

// NewProfiler returns a profiler with defaults filled in.
func NewProfiler(cfg ProfilerConfig) *Profiler {
	if cfg.TimeoutPercentile <= 0 {
		cfg.TimeoutPercentile = 0.75
	}
	if cfg.FallbackPercentile <= 0 {
		cfg.FallbackPercentile = 0.90
	}
	if cfg.MaxSlowFraction <= 0 {
		cfg.MaxSlowFraction = 0.40
	}
	if cfg.WarmupSamples <= 0 {
		cfg.WarmupSamples = 48
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 2048
	}
	if cfg.RecomputeEvery <= 0 {
		cfg.RecomputeEvery = 32
	}
	p := &Profiler{cfg: cfg, window: make([]float64, 0, cfg.WindowSize)}
	p.timeoutNs.Store(math.MaxInt64)
	return p
}

// Record adds one observed total preprocessing time.
func (p *Profiler) Record(cost time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.window) < p.cfg.WindowSize {
		p.window = append(p.window, cost.Seconds())
	} else {
		p.window[p.idx] = cost.Seconds()
		p.idx = (p.idx + 1) % p.cfg.WindowSize
		p.filled = true
	}
	p.records++
	if p.records >= p.cfg.WarmupSamples && p.records%p.cfg.RecomputeEvery == 0 {
		p.recomputeLocked()
	} else if p.records == p.cfg.WarmupSamples {
		p.recomputeLocked()
	}
}

// Classified records a fast/slow classification outcome, feeding the
// fallback trigger.
func (p *Profiler) Classified(slow bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.classifiedTotal++
	if slow {
		p.classifiedSlow++
	}
	if !p.fellBack && p.classifiedTotal >= 64 {
		frac := float64(p.classifiedSlow) / float64(p.classifiedTotal)
		if frac > p.cfg.MaxSlowFraction {
			p.fellBack = true
			p.recomputeLocked()
		}
	}
}

func (p *Profiler) recomputeLocked() {
	vals := make([]float64, len(p.window))
	copy(vals, p.window)
	sort.Float64s(vals)
	pct := p.cfg.TimeoutPercentile
	if p.fellBack {
		pct = p.cfg.FallbackPercentile
	}
	pos := pct * float64(len(vals)-1)
	lo := int(pos)
	v := vals[lo]
	if lo+1 < len(vals) {
		frac := pos - float64(lo)
		v = v*(1-frac) + vals[lo+1]*frac
	}
	p.timeoutNs.Store(int64(v * float64(time.Second)))
}

// Timeout returns the current classification budget. Before warmup
// completes it is effectively infinite: all samples are optimistically
// fast (§4.2).
func (p *Profiler) Timeout() time.Duration {
	return time.Duration(p.timeoutNs.Load())
}

// WarmupDone reports whether the optimistic phase has ended.
func (p *Profiler) WarmupDone() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.records >= p.cfg.WarmupSamples
}

// FellBack reports whether the fallback percentile is active.
func (p *Profiler) FellBack() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fellBack
}

// SlowFraction returns the observed slow-classification rate.
func (p *Profiler) SlowFraction() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.classifiedTotal == 0 {
		return 0
	}
	return float64(p.classifiedSlow) / float64(p.classifiedTotal)
}
