// Warm path: MinatoLoader in front of a materialized preprocessed-sample
// cache (internal/matcache). Epoch 1 runs the normal Algorithm 1 path and
// materializes every finished sample; epoch 2+ — and co-tenant sessions
// sharing the cluster's cache — hit the cache and skip both the raw storage
// read and the whole transform pipeline, paying only a memory-bandwidth
// restore. Fills are single-flighted: of all workers (across all tenants)
// racing an uncached key, exactly one preprocesses it.
package core

import (
	"context"
	"errors"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/matcache"
	"github.com/minatoloader/minato/internal/trace"
	"github.com/minatoloader/minato/internal/transform"
)

// processNewWarm is processNew with the cache in front: a hit restores the
// materialized sample, a miss elects this worker leader (or parks it behind
// the current leader) and falls through to the cold path.
func (l *Loader) processNewWarm(ctx context.Context, it loader.IndexItem) error {
	s := loader.FillSample(l.env, l.spec, it)
	mk := matcache.Key{Obj: s.Key, Sig: l.matSig}
	for {
		t0 := l.env.RT.Now()
		e, hit, w := l.mat.GetOrBegin(l.matTenant, mk, l.env.RT)
		if hit {
			l.traceSample(trace.StageMatHit, t0, t0, s)
			return l.restoreHit(ctx, s, e)
		}
		if w == nil {
			break // leader: materialize below
		}
		if err := w.Wait(ctx); err != nil {
			l.env.Pool.Put(s)
			return err
		}
		l.traceSample(trace.StageMatWait, t0, l.env.RT.Now(), s)
	}
	return l.leadFill(ctx, s, mk)
}

// leadFill runs the cold path for a leader-claimed key. The claim must be
// settled on every exit or parked followers deadlock the kernel: Complete
// when the sample finishes fast, carried into finishSlow by a slow park,
// Abort on any error or panic (the deferred abort runs while a panic
// unwinds toward runSample's recover, before any follower could observe a
// stale claim).
func (l *Loader) leadFill(ctx context.Context, s *data.Sample, mk matcache.Key) (err error) {
	settled := false
	defer func() {
		if !settled {
			l.mat.Abort(mk)
		}
	}()
	if rerr := l.env.Store.ReadSample(ctx, l.env.RT, s); rerr != nil {
		l.env.Pool.Put(s)
		return rerr
	}
	s.PreprocStart = l.env.RT.Now()

	// Fig 3a heuristic mode: classify upfront by size, no timeout.
	if l.cfg.SizeHeuristicThreshold > 0 {
		if s.RawBytes > l.cfg.SizeHeuristicThreshold {
			s.MarkedSlow = true
			if perr := l.tempQ.Put(ctx, tempItem{s: s}); perr != nil {
				return perr
			}
			settled = true // finishSlow settles the claim
			return nil
		}
		if aerr := l.spec.Pipeline.Apply(ctx, l.env.CPU, s); aerr != nil {
			l.env.Pool.Put(s)
			return aerr
		}
		s.PreprocEnd = l.env.RT.Now()
		l.traceSample(trace.StageTransform, s.PreprocStart, s.PreprocEnd, s)
		l.profiler.Record(s.PreprocCost)
		l.mat.Complete(l.matTenant, mk, matEntry(s))
		settled = true
		l.traceSample(trace.StageMatFill, s.PreprocStart, s.PreprocEnd, s)
		return l.putFast(ctx, s)
	}

	budget := l.profiler.Timeout()
	err = l.spec.Pipeline.ApplyBudget(ctx, l.env.CPU, s, budget)
	switch {
	case err == nil:
		s.PreprocEnd = l.env.RT.Now()
		l.traceSample(trace.StageTransform, s.PreprocStart, s.PreprocEnd, s)
		l.profiler.Record(s.PreprocCost)
		l.profiler.Classified(false)
		l.mat.Complete(l.matTenant, mk, matEntry(s))
		settled = true
		l.traceSample(trace.StageMatFill, s.PreprocStart, s.PreprocEnd, s)
		return l.putFast(ctx, s)
	case errors.Is(err, transform.ErrInterrupted):
		l.traceSample(trace.StageTransform, s.PreprocStart, l.env.RT.Now(), s)
		s.MarkedSlow = true
		l.profiler.Classified(true)
		if l.cfg.RestartSlowFromScratch {
			// Ablation: discard partial progress (see processNew). The claim
			// follows the key, not the sample instance, so the reset copy
			// still settles it in finishSlow.
			s = l.env.Pool.CloneReset(s)
			s.MarkedSlow = true
		}
		if perr := l.tempQ.Put(ctx, tempItem{s: s}); perr != nil {
			return perr
		}
		settled = true // finishSlow settles the claim
		return nil
	default:
		l.env.Pool.Put(s)
		return err
	}
}

// restoreHit delivers a cache hit: the sample skips the raw read and the
// pipeline, paying only the restore of the materialized tensor. Hits bypass
// the profiler — restore times are not preprocessing times and would drag
// the classification timeout toward zero.
func (l *Loader) restoreHit(ctx context.Context, s *data.Sample, e matcache.Entry) error {
	now := l.env.RT.Now()
	s.LoadedAt = now
	s.PreprocStart = now
	if restore := l.mat.RestoreCost(e.Bytes); restore > 0 {
		if err := l.env.CPU.Run(ctx, restore); err != nil {
			l.env.Pool.Put(s)
			return err
		}
		s.PreprocCost = restore
	}
	s.Bytes = e.Bytes
	s.NextTransform = l.spec.Pipeline.Len()
	s.PreprocEnd = l.env.RT.Now()
	return l.putFast(ctx, s)
}

// matEntry captures the materialized record of a finished sample: its
// post-pipeline size and the preprocessing compute a future hit saves (the
// sample's measured cost, including any budget-interrupt re-execution).
// Only values are copied — the cache never retains the pooled sample.
func matEntry(s *data.Sample) matcache.Entry {
	return matcache.Entry{Bytes: s.Bytes, Cost: s.PreprocCost}
}
