// Package core implements MinatoLoader, the paper's contribution: a
// general-purpose data loader that eliminates head-of-line blocking through
// a dynamic, sample-aware load balancer (§4).
//
// Architecture (Fig 5):
//
//	index stream → preprocessing workers ──fast──▶ fast queue ─┐
//	                    │ timeout t_out                        ├─▶ batch
//	                    └──────▶ temp queue ──background──▶ slow queue
//	                                                           │
//	                        batch constructor (one per GPU) ◀──┘
//	                                  │
//	                        per-GPU batch queues ──▶ Next()
//
// Workers apply the pipeline with a per-sample compute budget t_out
// (Algorithm 1). Samples finishing within budget enter the fast queue;
// samples exceeding it are parked in the temp queue with the index of the
// interrupted transform, and background processing resumes from there
// (re-executing the partial transform). Batch constructors drain the fast
// queue first, then the slow queue, so no sample ever stalls a batch.
//
// The timeout comes from a profiler: during warmup every sample is
// optimistically treated as fast while statistics accumulate; afterwards
// t_out is the 75th percentile of observed preprocessing times, falling
// back to the 90th when too many samples classify slow, and re-profiling
// continues in the background (§4.2).
//
// A worker scheduler adjusts the number of preprocessing workers using the
// paper's Formulas 1–2: queue emptiness and worker busyness raise the
// count; full queues and idle workers lower it (§4.3).
package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/matcache"
	"github.com/minatoloader/minato/internal/metrics"
	"github.com/minatoloader/minato/internal/queue"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/trace"
	"github.com/minatoloader/minato/internal/transform"
)

// Config holds MinatoLoader's tuning knobs with the paper's defaults.
type Config struct {
	// InitialWorkersPerGPU seeds the worker pool (12 per GPU, §4.3/§5.1).
	InitialWorkersPerGPU int
	// MaxWorkers caps the pool; 0 means the CPU core count (§4.3).
	MaxWorkers int
	// QueueCap bounds each queue (100, §5.1).
	QueueCap int

	// Profiler (§4.2).
	TimeoutPercentile  float64 // default 0.75
	FallbackPercentile float64 // default 0.90
	MaxSlowFraction    float64 // fallback trigger, default 0.40
	WarmupSamples      int     // optimistic phase length, default 48

	// Scheduler (Formulas 1–2).
	Alpha, Beta   float64       // sensitivity, default 2 and 2
	CPUThreshold  float64       // θ_c, default 0.7
	DeltaClip     int           // |Δ| bound, default 2
	SchedInterval time.Duration // default 1s

	// PollInterval (10 ms, §4.2) is the fallback heartbeat for idle waits.
	// Workers and batch constructors block on event-driven wakeups (the
	// simtime wait fabric), not on this interval; it only bounds how long a
	// lost wakeup could stall them on a nondeterministic runtime. Under the
	// Virtual runtime it is never armed — a lost wakeup there surfaces as a
	// kernel deadlock, which is a bug to fix, not to paper over.
	PollInterval time.Duration

	// OrderPreserving disables reordering for curriculum/strict-order
	// training (§6): batches follow the sampler's order exactly and the
	// loader behaves like PyTorch DataLoader.
	OrderPreserving bool

	// SizeHeuristicThreshold, when positive, replaces the timeout
	// classifier with an upfront "predict slow if raw size exceeds
	// threshold" rule — the Fig 3a heuristic study. The timeout path is
	// disabled.
	SizeHeuristicThreshold int64

	// DisableAdaptiveWorkers freezes the pool at its initial size
	// (ablation).
	DisableAdaptiveWorkers bool
	// RestartSlowFromScratch re-runs the whole pipeline for timed-out
	// samples instead of resuming from the recorded transform index
	// (ablation of Algorithm 1's resume design).
	RestartSlowFromScratch bool

	// LoaderName overrides the reported name.
	LoaderName string
}

// DefaultConfig returns the paper's configuration (§5.1).
func DefaultConfig() Config {
	return Config{
		InitialWorkersPerGPU: 12,
		QueueCap:             100,
		TimeoutPercentile:    0.75,
		FallbackPercentile:   0.90,
		MaxSlowFraction:      0.40,
		WarmupSamples:        48,
		Alpha:                2, Beta: 2,
		CPUThreshold:  0.7,
		DeltaClip:     2,
		SchedInterval: time.Second,
		PollInterval:  10 * time.Millisecond,
	}
}

func (c *Config) fillDefaults(numGPUs, cores int) {
	d := DefaultConfig()
	if c.InitialWorkersPerGPU <= 0 {
		c.InitialWorkersPerGPU = d.InitialWorkersPerGPU
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = cores
	}
	if c.QueueCap <= 0 {
		c.QueueCap = d.QueueCap
	}
	if c.TimeoutPercentile <= 0 {
		c.TimeoutPercentile = d.TimeoutPercentile
	}
	if c.FallbackPercentile <= 0 {
		c.FallbackPercentile = d.FallbackPercentile
	}
	if c.MaxSlowFraction <= 0 {
		c.MaxSlowFraction = d.MaxSlowFraction
	}
	if c.WarmupSamples <= 0 {
		c.WarmupSamples = d.WarmupSamples
	}
	if c.Alpha == 0 {
		c.Alpha = d.Alpha
	}
	if c.Beta == 0 {
		c.Beta = d.Beta
	}
	if c.CPUThreshold <= 0 {
		c.CPUThreshold = d.CPUThreshold
	}
	if c.DeltaClip <= 0 {
		c.DeltaClip = d.DeltaClip
	}
	if c.SchedInterval <= 0 {
		c.SchedInterval = d.SchedInterval
	}
	if c.PollInterval <= 0 {
		c.PollInterval = d.PollInterval
	}
	_ = numGPUs
}

// tempItem is a timed-out sample parked for background completion,
// carrying the interrupted transform index (Algorithm 1 line 11).
type tempItem struct {
	s *data.Sample
}

// Loader is MinatoLoader.
type Loader struct {
	env  *loader.Env
	spec loader.Spec
	cfg  Config

	idx     *loader.IndexSource
	fastQ   *queue.Queue[*data.Sample]
	slowQ   *queue.Queue[*data.Sample]
	tempQ   *queue.Queue[tempItem]
	batchQs []*queue.Queue[*data.Batch]

	profiler *Profiler
	sched    *Scheduler

	// mat is the cluster's materialized preprocessed-sample cache (nil
	// disables the warm path); matSig keys this loader's entries by its
	// pipeline, matTenant attributes its traffic. See warm.go.
	mat       *matcache.Cache
	matSig    uint64
	matTenant int

	// Accounting for batch-constructor termination: a constructor may
	// exit only when every emitted sample has been consumed or abandoned.
	emitted   atomic.Int64 // samples handed to workers
	enqueued  atomic.Int64 // samples placed into fast or slow queues
	consumed  atomic.Int64 // samples drawn into batches
	abandoned atomic.Int64 // samples lost to preprocessing faults
	faults    atomic.Int64 // fault events (diagnostics)
	srcDone   atomic.Bool  // index stream exhausted

	// gate broadcasts accounting changes that can flip drained() without a
	// queue operation (faults, source exhaustion, worker exits, the final
	// consume), so parked batch constructors re-check instead of polling.
	gate *simtime.Gate
	// heartbeat is the idle-wait fallback: cfg.PollInterval on
	// nondeterministic runtimes, 0 (disabled) under Virtual.
	heartbeat time.Duration

	// idleWaits counts event-driven idle waits begun by workers and batch
	// constructors; heartbeats counts the subset that ended on the fallback
	// heartbeat instead of a wakeup (diagnostics; zero in the default path).
	idleWaits  atomic.Int64
	heartbeats atomic.Int64

	batchSeq atomic.Int64
	// claims assigns batch slots to constructors so the delivery budget is
	// met exactly: without it, two constructors could strand the final
	// samples across two partial batches.
	claims  atomic.Int64
	ordered *orderedBuffer // OrderPreserving mode only

	stopOnce sync.Once
	stopFlag atomic.Bool
	cancel   context.CancelFunc
}

// New returns a MinatoLoader over the given spec.
func New(env *loader.Env, spec loader.Spec, cfg Config) *Loader {
	cfg.fillDefaults(len(env.GPUs), int(env.CPU.Capacity()))
	l := &Loader{
		env: env, spec: spec, cfg: cfg,
		idx:   loader.NewIndexSource(env, spec, 4*spec.BatchSize),
		fastQ: queue.New[*data.Sample](env.RT, "fast", cfg.QueueCap),
		slowQ: queue.New[*data.Sample](env.RT, "slow", cfg.QueueCap),
		tempQ: queue.New[tempItem](env.RT, "temp", cfg.QueueCap),
		gate:  simtime.NewGate(),
	}
	if !simtime.Deterministic(env.RT) {
		l.heartbeat = cfg.PollInterval
	}
	for range env.GPUs {
		l.batchQs = append(l.batchQs,
			queue.New[*data.Batch](env.RT, "batch", cfg.QueueCap))
	}
	l.profiler = NewProfiler(ProfilerConfig{
		TimeoutPercentile:  cfg.TimeoutPercentile,
		FallbackPercentile: cfg.FallbackPercentile,
		MaxSlowFraction:    cfg.MaxSlowFraction,
		WarmupSamples:      cfg.WarmupSamples,
	})
	l.sched = NewScheduler(l, cfg)
	if cfg.OrderPreserving {
		l.ordered = newOrderedBuffer()
	}
	if env.Mat != nil && spec.Pipeline != nil {
		l.mat = env.Mat
		l.matSig = spec.Pipeline.Signature()
		if env.Store != nil {
			l.matTenant = env.Store.Tenant
		}
	}
	return l
}

// Name implements loader.Loader.
func (l *Loader) Name() string {
	if l.cfg.LoaderName != "" {
		return l.cfg.LoaderName
	}
	return "minato"
}

// maxWorkersNow returns the pool's current upper bound: the configured
// MaxWorkers clamped by the environment's worker governor, when one is set.
// Re-read on every scheduling decision so a cluster rebalancing tenant
// quotas takes effect at the next tick.
func (l *Loader) maxWorkersNow() int {
	m := l.cfg.MaxWorkers
	if l.env.Gov != nil {
		if q := l.env.Gov.WorkerQuota(); q < m {
			m = q
		}
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Start implements loader.Loader.
func (l *Loader) Start(ctx context.Context) error {
	ctx, l.cancel = context.WithCancel(ctx)
	l.idx.Start(ctx)

	initial := l.cfg.InitialWorkersPerGPU * len(l.env.GPUs)
	if max := l.maxWorkersNow(); initial > max {
		initial = max
	}
	l.sched.SetTarget(initial)
	for i := 0; i < initial; i++ {
		l.spawnWorker(ctx)
	}
	if !l.cfg.DisableAdaptiveWorkers {
		l.sched.Start(ctx)
	}

	for g := range l.batchQs {
		g := g
		l.env.WG.Go("minato-batcher", func() {
			l.batchConstructor(ctx, g)
		})
	}
	return nil
}

// spawnWorker launches one preprocessing worker. Workers prefer resuming
// timed-out samples (temp queue) over starting new ones, which keeps slow
// samples flowing into upcoming batches instead of deferring them to the
// end (§4.1: "MinatoLoader does not defer these samples to the very end").
//
// An idle worker blocks on "temp queue or index stream has an item" through
// the simtime wait fabric; nothing in the steady state is paced by
// PollInterval. A panic or a per-sample error in loading or a user
// transform is contained to the sample being processed: the sample is
// abandoned (counted, surfaced via Faults) and the worker keeps serving —
// matching the isolation a multiprocessing-based loader gets from worker
// processes.
func (l *Loader) spawnWorker(ctx context.Context) {
	id := l.sched.workerSpawned()
	l.env.WG.Go("minato-worker", func() {
		defer func() {
			l.sched.workerExited()
			// A worker exit can flip drained(); re-check parked constructors.
			l.gate.Pulse()
		}()
		sel := simtime.NewSelector(l.env.RT)
		sources := []simtime.Source{l.tempQ, l.idx.Ready()}
		for {
			if l.stopFlag.Load() || l.sched.shouldRetire(id) {
				// This worker may have just claimed a wakeup for an item it
				// will not consume; re-deliver so a parked peer picks it up
				// instead of stranding it (on stop, Close wakes everyone).
				l.tempQ.Kick()
				l.idx.Out().Kick()
				return
			}
			// Background completion first (slow-task work).
			if item, ok, _ := l.tempQ.TryGet(); ok {
				if !l.runSample(ctx, func() error { return l.finishSlow(ctx, item.s) }, item.s.OriginalOrder) {
					return
				}
				continue
			}
			// New sample.
			it, ok, err := l.idx.Out().TryGet()
			if err != nil { // index stream closed and drained
				if !l.srcDone.Swap(true) {
					l.gate.Pulse()
				}
				// Drain remaining temp items, then exit.
				item, ok2, _ := l.tempQ.TryGet()
				if !ok2 {
					return
				}
				if !l.runSample(ctx, func() error { return l.finishSlow(ctx, item.s) }, item.s.OriginalOrder) {
					return
				}
				continue
			}
			if !ok {
				// Idle: block until the temp queue or the index stream has
				// an item (or either closes).
				l.idleWaits.Add(1)
				src, werr := sel.Select(ctx, l.heartbeat, sources...)
				if werr != nil {
					return
				}
				if src == simtime.Heartbeat {
					l.heartbeats.Add(1)
				}
				continue
			}
			l.emitted.Add(1)
			if !l.runSample(ctx, func() error { return l.processNew(ctx, it) }, it.Seq) {
				return
			}
		}
	})
}

// traceSample records a worker-layer span for sample s; a no-op without
// tracing. StageMatFill spans cover the work performed under the leader
// claim: a slow sample's parked window shows up as the gap between its
// budgeted and resumed transform spans, not as fill time.
func (l *Loader) traceSample(stage trace.Stage, start, end time.Duration, s *data.Sample) {
	if l.env.Trace == nil {
		return
	}
	l.env.Trace.Record(trace.Span{Start: start, End: end, Stage: stage,
		Tenant: l.env.TraceTenant(), Node: l.env.TraceNode,
		Key: int64(s.Index), Seq: s.OriginalOrder, Detail: s.RawBytes})
}

// errSamplePanic marks a recovered transform panic so runSample treats it
// like any other per-sample failure.
var errSamplePanic = errors.New("minato: panic in sample processing")

// runSample executes one sample-processing step, containing panics and
// per-sample errors (a failed load, a corrupt sample rejected by a
// transform) to the sample itself: the sample is abandoned and the worker
// keeps serving. It reports whether the worker should continue; false means
// shutdown (queue closed or context cancelled), where abandoning would be
// wrong — the sample is not lost, the session is ending.
func (l *Loader) runSample(ctx context.Context, fn func() error, seq int64) bool {
	err := l.guard(fn)
	switch {
	case err == nil:
		return true
	case errors.Is(err, queue.ErrClosed),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false
	default:
		l.abandon(seq)
		return true
	}
}

// guard runs fn, converting a panic into errSamplePanic.
func (l *Loader) guard(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errSamplePanic
		}
	}()
	return fn()
}

// abandon records the loss of the sample with the given draw order: the
// abandoned counter keeps the termination accounting consistent so batch
// constructors do not wait for a sample that will never arrive, the ordered
// buffer (if any) skips the hole, and the gate wakes parked constructors to
// re-check drained().
func (l *Loader) abandon(seq int64) {
	l.abandoned.Add(1)
	l.faults.Add(1)
	if l.cfg.OrderPreserving {
		l.ordered.skip(seq)
	}
	l.gate.Pulse()
}

// Faults returns the number of samples abandoned due to failing or
// panicking loads and transforms.
func (l *Loader) Faults() int64 { return l.faults.Load() }

// IdleWaits returns the number of event-driven idle waits workers and batch
// constructors entered (diagnostics).
func (l *Loader) IdleWaits() int64 { return l.idleWaits.Load() }

// HeartbeatWakes returns how many idle waits ended on the PollInterval
// fallback heartbeat instead of an event wakeup. It is zero under the
// Virtual runtime, where the heartbeat is never armed.
func (l *Loader) HeartbeatWakes() int64 { return l.heartbeats.Load() }

// processNew runs the load-balancer path of Algorithm 1 for one sample.
func (l *Loader) processNew(ctx context.Context, it loader.IndexItem) error {
	if l.mat != nil {
		return l.processNewWarm(ctx, it)
	}
	s, err := loader.LoadSample(ctx, l.env, l.spec, it)
	if err != nil {
		return err
	}
	s.PreprocStart = l.env.RT.Now()

	// Fig 3a heuristic mode: classify upfront by size, no timeout.
	if l.cfg.SizeHeuristicThreshold > 0 {
		if s.RawBytes > l.cfg.SizeHeuristicThreshold {
			s.MarkedSlow = true
			return l.tempQ.Put(ctx, tempItem{s: s})
		}
		if err := l.spec.Pipeline.Apply(ctx, l.env.CPU, s); err != nil {
			l.env.Pool.Put(s)
			return err
		}
		s.PreprocEnd = l.env.RT.Now()
		l.traceSample(trace.StageTransform, s.PreprocStart, s.PreprocEnd, s)
		l.profiler.Record(s.PreprocCost)
		return l.putFast(ctx, s)
	}

	budget := l.profiler.Timeout()
	err = l.spec.Pipeline.ApplyBudget(ctx, l.env.CPU, s, budget)
	switch {
	case err == nil:
		s.PreprocEnd = l.env.RT.Now()
		l.traceSample(trace.StageTransform, s.PreprocStart, s.PreprocEnd, s)
		l.profiler.Record(s.PreprocCost)
		l.profiler.Classified(false)
		return l.putFast(ctx, s)
	case errors.Is(err, transform.ErrInterrupted):
		l.traceSample(trace.StageTransform, s.PreprocStart, l.env.RT.Now(), s)
		s.MarkedSlow = true
		l.profiler.Classified(true)
		if l.cfg.RestartSlowFromScratch {
			// Ablation: discard partial progress. The reset copy comes from
			// the pool and the partially-processed instance goes back to it.
			s = l.env.Pool.CloneReset(s)
			s.MarkedSlow = true
		}
		return l.tempQ.Put(ctx, tempItem{s: s})
	default:
		l.env.Pool.Put(s)
		return err
	}
}

// finishSlow completes a timed-out sample from its recorded transform
// index and publishes it to the slow queue (Algorithm 1 lines 14–18).
// With the materialized cache enabled, every parked sample carries a
// leader claim from the warm path: the finished output is published to the
// cache, and any failure (or panic unwinding to runSample) aborts the
// claim so parked co-tenants re-elect a leader instead of deadlocking.
func (l *Loader) finishSlow(ctx context.Context, s *data.Sample) error {
	settled := true
	var mk matcache.Key
	if l.mat != nil {
		mk = matcache.Key{Obj: s.Key, Sig: l.matSig}
		settled = false
		defer func() {
			if !settled {
				l.mat.Abort(mk)
			}
		}()
	}
	s.ResumedFrom = s.NextTransform
	s.TimesResumed++
	resumeStart := l.env.RT.Now()
	if err := l.spec.Pipeline.Apply(ctx, l.env.CPU, s); err != nil {
		l.env.Pool.Put(s)
		return err
	}
	s.PreprocEnd = l.env.RT.Now()
	l.traceSample(trace.StageTransform, resumeStart, s.PreprocEnd, s)
	l.profiler.Record(s.PreprocCost)
	if l.mat != nil {
		l.mat.Complete(l.matTenant, mk, matEntry(s))
		settled = true
		l.traceSample(trace.StageMatFill, resumeStart, s.PreprocEnd, s)
	}
	if l.cfg.OrderPreserving {
		l.ordered.add(s)
		l.enqueued.Add(1)
		return nil
	}
	l.enqueued.Add(1)
	return l.slowQ.Put(ctx, s)
}

func (l *Loader) putFast(ctx context.Context, s *data.Sample) error {
	if l.cfg.OrderPreserving {
		l.ordered.add(s)
		l.enqueued.Add(1)
		return nil
	}
	l.enqueued.Add(1)
	return l.fastQ.Put(ctx, s)
}

// batchConstructor assembles batches for GPU g: fast queue first, slow
// queue second, blocking on the wait fabric when neither has samples
// (Algorithm 1 lines 19–30). Each full batch occupies a claimed slot of the
// delivery budget, so the tail of the sample stream lands in exactly one
// constructor; a slot whose batch cannot be assembled (shutdown or an
// abnormal deficit) is released so the claim counter stays an exact account
// of assembled batches.
func (l *Loader) batchConstructor(ctx context.Context, g int) {
	out := l.batchQs[g]
	defer out.Close()
	total := int64(l.spec.TotalBatches())
	sel := simtime.NewSelector(l.env.RT)
	// Wake sources for an idle constructor, in priority order. The gate
	// carries accounting-only changes (faults, source exhaustion) that could
	// flip drained() without a queue operation.
	var sources []simtime.Source
	if l.cfg.OrderPreserving {
		sources = []simtime.Source{l.ordered, l.gate}
	} else {
		sources = []simtime.Source{l.fastQ, l.slowQ, l.gate}
	}
	for {
		if l.stopFlag.Load() {
			return
		}
		if l.claims.Add(1) > total {
			l.claims.Add(-1)
			return
		}
		b, ok := l.assemble(ctx, g, sel, sources)
		if !ok {
			l.claims.Add(-1)
			return
		}
		if err := out.Put(ctx, b); err != nil {
			b.Release()
			return
		}
	}
}

// assemble gathers one full batch from the fast and slow queues (or the
// ordered buffer). Slow samples are drawn only when the fast queue is empty,
// preserving Algorithm 1's priority: the scan order below runs anew after
// every wakeup, whichever source fired.
func (l *Loader) assemble(ctx context.Context, g int, sel *simtime.Selector, sources []simtime.Source) (*data.Batch, bool) {
	asmStart := l.env.RT.Now()
	// The batch (and the backing array for its samples) comes from the
	// session pool; the consumer returns it with Batch.Release.
	b := l.env.Pool.GetBatch(l.spec.BatchSize)
	for len(b.Samples) < l.spec.BatchSize {
		if l.stopFlag.Load() {
			b.Release()
			return nil, false
		}
		var s *data.Sample
		if l.cfg.OrderPreserving {
			s = l.ordered.takeNext()
		} else if v, ok, _ := l.fastQ.TryGet(); ok {
			s = v
		} else if v, ok, _ := l.slowQ.TryGet(); ok {
			s = v
		}
		if s == nil {
			if l.drained() {
				// Abnormal deficit (upstream failure): give up on the
				// remaining partial batch rather than wait forever.
				b.Release()
				return nil, false
			}
			l.idleWaits.Add(1)
			src, err := sel.Select(ctx, l.heartbeat, sources...)
			if err != nil {
				b.Release()
				return nil, false
			}
			if src == simtime.Heartbeat {
				l.heartbeats.Add(1)
			}
			continue
		}
		l.consumed.Add(1)
		if l.srcDone.Load() && l.consumed.Load() == l.enqueued.Load() {
			// Possibly the final sample of the stream: peers parked on an
			// empty queue must re-check drained().
			l.gate.Pulse()
		}
		b.Samples = append(b.Samples, s)
	}
	b.Seq = l.batchSeq.Add(1) - 1
	b.CreatedAt = l.env.RT.Now()
	// §4.3: a CUDA prefetch stream moves batch i to GPU memory while
	// batch i−1 trains, so delivered batches are resident.
	b.Resident = true
	if l.env.Trace != nil {
		l.env.Trace.Record(trace.Span{Start: asmStart, End: b.CreatedAt,
			Stage: trace.StageAssemble, Tenant: l.env.TraceTenant(),
			Node: l.env.TraceNode, Key: int64(g), Seq: b.Seq,
			Detail: int64(len(b.Samples))})
	}
	return b, true
}

// drained reports that no more samples will ever arrive: the index stream
// ended and everything emitted has been consumed or is in a final queue
// that is empty.
func (l *Loader) drained() bool {
	if !l.srcDone.Load() {
		return false
	}
	if l.sched.liveWorkers() > 0 {
		// Workers may still be finishing in-flight samples.
		return l.enqueued.Load() == l.consumed.Load() && l.allQueuesEmpty() && l.workersIdle()
	}
	return l.enqueued.Load() == l.consumed.Load() && l.allQueuesEmpty()
}

func (l *Loader) allQueuesEmpty() bool {
	if l.cfg.OrderPreserving {
		return l.ordered.empty()
	}
	return l.fastQ.Len() == 0 && l.slowQ.Len() == 0 && l.tempQ.Len() == 0
}

func (l *Loader) workersIdle() bool {
	// All emitted samples accounted for — enqueued or abandoned — so none
	// is in flight inside a worker.
	return l.emitted.Load() == l.enqueued.Load()+l.abandoned.Load()
}

// Next implements loader.Loader: per-GPU batch queues (Algorithm 1 lines
// 31–37; queue Get already blocks, subsuming the sleep-poll loop).
func (l *Loader) Next(ctx context.Context, g int) (*data.Batch, error) {
	b, err := l.batchQs[g].Get(ctx)
	if err != nil {
		return nil, loader.EOFIfClosed(err)
	}
	if l.env.Trace != nil {
		// The batch's stay in the delivery queue, sealed to drawn.
		l.env.Trace.Record(trace.Span{Start: b.CreatedAt, End: l.env.RT.Now(),
			Stage: trace.StageQueueWait, Tenant: l.env.TraceTenant(),
			Node: l.env.TraceNode, Key: int64(g), Seq: b.Seq})
	}
	return b, nil
}

// Stop implements loader.Loader.
func (l *Loader) Stop() {
	l.stopOnce.Do(func() {
		l.stopFlag.Store(true)
		if l.cancel != nil {
			l.cancel()
		}
		l.idx.Out().Close()
		l.fastQ.Close()
		l.slowQ.Close()
		l.tempQ.Close()
		// Each parked slow sample carries an unsettled matcache leader claim
		// (leadFill defers settlement to finishSlow). No worker will resume
		// them now, so drain the queue and abort the claims — otherwise the
		// keys stay inflight in the cluster-shared cache and co-tenant or
		// later sessions park forever on a fill that will never complete. A
		// racing worker that wins an item instead settles it through
		// finishSlow's own Complete/Abort paths.
		for {
			item, ok, _ := l.tempQ.TryGet()
			if !ok {
				break
			}
			if l.mat != nil {
				l.mat.Abort(matcache.Key{Obj: item.s.Key, Sig: l.matSig})
			}
			l.env.Pool.Put(item.s)
		}
		for _, q := range l.batchQs {
			q.Close()
		}
		// Constructors parked on the ordered buffer (which has no close
		// event) re-check stopFlag on the gate pulse.
		l.gate.Pulse()
	})
}

// Timeout exposes the current classification timeout (diagnostics).
func (l *Loader) Timeout() time.Duration { return l.profiler.Timeout() }

// Workers exposes the live worker count (diagnostics).
func (l *Loader) Workers() int { return l.sched.liveWorkers() }

// PeakWorkers exposes the largest pool size reached (diagnostics).
func (l *Loader) PeakWorkers() int { return l.sched.peakWorkers() }

// RegisterMetrics implements loader.Instrumented.
func (l *Loader) RegisterMetrics(c *metrics.Collector) {
	c.Register("minato_workers", func() float64 { return float64(l.sched.liveWorkers()) })
	c.Register("minato_fastq", func() float64 { return float64(l.fastQ.Len()) })
	c.Register("minato_slowq", func() float64 { return float64(l.slowQ.Len()) })
	c.Register("minato_tempq", func() float64 { return float64(l.tempQ.Len()) })
	c.Register("minato_batchq", func() float64 {
		n := 0
		for _, q := range l.batchQs {
			n += q.Len()
		}
		return float64(n)
	})
	c.Register("minato_timeout_ms", func() float64 {
		t := l.profiler.Timeout()
		if t == math.MaxInt64 {
			return -1
		}
		return float64(t) / float64(time.Millisecond)
	})
}

// orderedBuffer supports the order-preserving mode (§6): completed samples
// are released strictly in sampler order. It is a wake source: consumers arm
// a selector on it and are woken when the next-in-order slot fills (or is
// abandoned), so the mode runs without polling. A nil map value is a
// tombstone for an abandoned draw; takeNext skips over tombstones so one
// faulty sample does not stall the order forever.
type orderedBuffer struct {
	mu      sync.Mutex
	pending map[int64]*data.Sample
	next    int64
	live    int // non-tombstone entries
	subs    []orderedSub
}

type orderedSub struct {
	sel *simtime.Selector
	idx int
}

func newOrderedBuffer() *orderedBuffer {
	return &orderedBuffer{pending: make(map[int64]*data.Sample)}
}

func (o *orderedBuffer) add(s *data.Sample) {
	o.mu.Lock()
	o.pending[s.OriginalOrder] = s
	o.live++
	if s.OriginalOrder == o.next {
		o.wakeOneLocked()
	}
	o.mu.Unlock()
}

// skip tombstones an abandoned draw so the order can advance past it.
func (o *orderedBuffer) skip(seq int64) {
	o.mu.Lock()
	if seq >= o.next {
		if _, ok := o.pending[seq]; !ok {
			o.pending[seq] = nil
			if seq == o.next {
				o.wakeOneLocked()
			}
		}
	}
	o.mu.Unlock()
}

// takeNext returns the next-in-order sample if ready, else nil. Tombstones
// in front are consumed along the way.
func (o *orderedBuffer) takeNext() *data.Sample {
	o.mu.Lock()
	defer o.mu.Unlock()
	for {
		s, ok := o.pending[o.next]
		if !ok {
			return nil
		}
		delete(o.pending, o.next)
		o.next++
		if s == nil {
			continue // abandoned draw
		}
		o.live--
		if _, ok := o.pending[o.next]; ok {
			// Another consumer can proceed with the new front.
			o.wakeOneLocked()
		}
		return s
	}
}

func (o *orderedBuffer) empty() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.live == 0
}

// Arm implements simtime.Source: ready when the next-in-order slot exists
// (sample or tombstone — consumers re-scan either way).
func (o *orderedBuffer) Arm(sel *simtime.Selector, idx int) bool {
	o.mu.Lock()
	if _, ok := o.pending[o.next]; ok {
		o.mu.Unlock()
		sel.TryWake(idx)
		return true
	}
	o.subs = append(o.subs, orderedSub{sel: sel, idx: idx})
	o.mu.Unlock()
	return false
}

// Disarm implements simtime.Source.
func (o *orderedBuffer) Disarm(sel *simtime.Selector) {
	o.mu.Lock()
	for i, e := range o.subs {
		if e.sel == sel {
			o.subs = append(o.subs[:i], o.subs[i+1:]...)
			break
		}
	}
	o.mu.Unlock()
}

func (o *orderedBuffer) wakeOneLocked() {
	for len(o.subs) > 0 {
		e := o.subs[0]
		o.subs = o.subs[1:]
		if e.sel.TryWake(e.idx) {
			return
		}
	}
}

var _ simtime.Source = (*orderedBuffer)(nil)
