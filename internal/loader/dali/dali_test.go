package dali

import (
	"context"
	"io"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/device"
	"github.com/minatoloader/minato/internal/gpu"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/storage"
	"github.com/minatoloader/minato/internal/transform"
)

func newEnv(k *simtime.Virtual, gpus int) *loader.Env {
	disk := storage.NewDisk(k, "disk", 10e9, 2)
	return &loader.Env{
		RT:    k,
		CPU:   device.New(k, "cpu", 16),
		GPUs:  gpu.Pool(k, gpus, gpu.A100, 40<<30),
		Store: &storage.Store{Disk: disk, Cache: storage.NewPageCache(64 << 30)},
		WG:    simtime.NewWaitGroup(k),
	}
}

func speechSpec(batch, iters int) loader.Spec {
	return loader.Spec{
		Dataset:    dataset.Subset(dataset.NewLibriSpeech(1, 5), 2000),
		Pipeline:   transform.SpeechPipeline(3 * time.Second),
		BatchSize:  batch,
		Iterations: iters,
		Seed:       1,
	}
}

func TestBatchesAreGPUResident(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		env := newEnv(k, 1)
		l := New(env, speechSpec(4, 6), DefaultConfig())
		_ = l.Start(context.Background())
		n := 0
		for {
			b, err := l.Next(context.Background(), 0)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if !b.Resident {
				t.Fatal("DALI batch not resident: preprocessing runs on the GPU")
			}
			for _, s := range b.Samples {
				if s.NextTransform != l.spec.Pipeline.Len() {
					t.Fatal("sample not fully preprocessed")
				}
			}
			n++
		}
		if n != 6 {
			t.Fatalf("delivered %d, want 6", n)
		}
		l.Stop()
		_ = env.WG.Wait(context.Background())
	})
}

func TestGPUPreprocessingUsesDevice(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		env := newEnv(k, 1)
		l := New(env, speechSpec(4, 5), DefaultConfig())
		_ = l.Start(context.Background())
		for {
			if _, err := l.Next(context.Background(), 0); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		// 20 samples at ≈0.51s CPU-cost each, 10× GPU speedup → ≈1s+ of
		// GPU busy time from preprocessing alone.
		if busy := env.GPUs[0].BusySeconds(); busy < 0.5 {
			t.Fatalf("GPU busy = %.2fs: preprocessing did not run on GPU", busy)
		}
		// CPU does only light ingest work.
		if busy := env.CPU.BusySeconds(); busy > 1 {
			t.Fatalf("CPU busy = %.2fs: transforms leaked onto CPU", busy)
		}
		l.Stop()
		_ = env.WG.Wait(context.Background())
	})
}

func TestMemoryReservedWhileBuffered(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		env := newEnv(k, 1)
		cfg := DefaultConfig()
		cfg.QueueDepth = 4
		l := New(env, speechSpec(4, 20), cfg)
		_ = l.Start(context.Background())
		// Let the pipeline fill its ready queue without consuming.
		_ = k.Sleep(context.Background(), 2*time.Minute)
		if used := env.GPUs[0].MemUsed(); used == 0 {
			t.Fatal("no GPU memory reserved for buffered batches")
		}
		before := env.GPUs[0].MemUsed()
		// Consuming releases memory.
		for i := 0; i < 4; i++ {
			if _, err := l.Next(context.Background(), 0); err != nil {
				t.Fatal(err)
			}
		}
		_ = k.Sleep(context.Background(), time.Second)
		if after := env.GPUs[0].MemUsed(); after >= before+1<<20 {
			t.Fatalf("memory did not release on consumption: %d -> %d", before, after)
		}
		l.Stop()
		_ = env.WG.Wait(context.Background())
	})
}

func TestRoundRobinAcrossGPUs(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		env := newEnv(k, 2)
		l := New(env, speechSpec(4, 10), DefaultConfig())
		_ = l.Start(context.Background())
		counts := make([]int, 2)
		wg := simtime.NewWaitGroup(k)
		for g := 0; g < 2; g++ {
			g := g
			wg.Go("consumer", func() {
				for {
					if _, err := l.Next(context.Background(), g); err != nil {
						return
					}
					counts[g]++
				}
			})
		}
		_ = wg.Wait(context.Background())
		if counts[0]+counts[1] != 10 || counts[0] == 0 || counts[1] == 0 {
			t.Fatalf("distribution = %v, want batches on both GPUs", counts)
		}
		l.Stop()
		_ = env.WG.Wait(context.Background())
	})
}
