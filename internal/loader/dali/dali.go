// Package dali implements the NVIDIA DALI baseline (§2.1, §3.5): raw data
// is loaded from storage on the CPU, but all preprocessing transforms
// execute on the GPU as kernels roughly 10× faster than their CPU
// counterparts (the paper's own calibration, §5.1). Preprocessing and
// training share each GPU's compute, so aggressive preprocessing interferes
// with training — Takeaway 5.
//
// The pipeline per GPU is:
//
//	reader (CPU, parallel I/O) → raw-batch queue (prefetch_queue_depth)
//	→ GPU preprocessing task → ready queue (prefetch_queue_depth) → Next
//
// exec_pipelined/exec_async correspond to the buffered queues and the
// asynchronous GPU preprocessing task. Buffered batches reserve GPU memory,
// so deeper prefetch queues raise memory pressure (§3.4).
package dali

import (
	"context"
	"sync"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/gpu"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/queue"
	"github.com/minatoloader/minato/internal/transform"
)

// Config holds DALI's tuning knobs.
type Config struct {
	// QueueDepth is prefetch_queue_depth (default 2, §5.1).
	QueueDepth int
	// Speedup is the GPU-vs-CPU transform speed ratio (default 10, §5.1).
	Speedup float64
	// IOParallelism bounds concurrent sample loads per raw batch.
	IOParallelism int
}

// DefaultConfig matches the paper's setup.
func DefaultConfig() Config {
	return Config{QueueDepth: 2, Speedup: 10, IOParallelism: 16}
}

// Loader is the DALI baseline.
type Loader struct {
	env  *loader.Env
	spec loader.Spec
	cfg  Config

	idx      *loader.IndexSource
	rawQs    []*queue.Queue[*data.Batch]
	readyQs  []*queue.Queue[*data.Batch]
	ioTasks  *queue.Queue[ioTask]
	ioDone   *queue.Queue[ioResult]
	counter  *loader.DeliveryCounter
	stopOnce sync.Once
	cancel   context.CancelFunc
}

// ioTask is one sample load dispatched to the persistent IO worker pool.
type ioTask struct {
	item loader.IndexItem
	slot int
}

// ioResult reports a completed load back to the reader.
type ioResult struct {
	s    *data.Sample
	slot int
	err  error
}

// New returns a DALI loader over the given spec.
func New(env *loader.Env, spec loader.Spec, cfg Config) *Loader {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2
	}
	if cfg.Speedup <= 0 {
		cfg.Speedup = 10
	}
	if cfg.IOParallelism <= 0 {
		cfg.IOParallelism = 16
	}
	l := &Loader{
		env: env, spec: spec, cfg: cfg,
		idx:     loader.NewIndexSource(env, spec, 4*spec.BatchSize),
		ioTasks: queue.New[ioTask](env.RT, "dali-iotasks", cfg.IOParallelism),
		ioDone:  queue.New[ioResult](env.RT, "dali-iodone", spec.BatchSize),
		counter: loader.NewDeliveryCounter(spec.TotalBatches()),
	}
	for g := range env.GPUs {
		l.rawQs = append(l.rawQs,
			queue.New[*data.Batch](env.RT, "dali-raw", cfg.QueueDepth))
		l.readyQs = append(l.readyQs,
			queue.New[*data.Batch](env.RT, "dali-ready", cfg.QueueDepth))
		_ = g
	}
	return l
}

// Name implements loader.Loader.
func (l *Loader) Name() string { return "dali" }

// Start implements loader.Loader.
func (l *Loader) Start(ctx context.Context) error {
	ctx, l.cancel = context.WithCancel(ctx)
	l.idx.Start(ctx)

	// Persistent IO pool: IOParallelism workers bound concurrent loads.
	for w := 0; w < l.cfg.IOParallelism; w++ {
		l.env.WG.Go("dali-io", func() {
			l.ioWorker(ctx)
		})
	}

	// Reader: assemble raw batches in order, loading samples with bounded
	// parallel I/O, and hand them to GPU pipelines round-robin.
	l.env.WG.Go("dali-reader", func() {
		defer func() {
			l.ioTasks.Close()
			for _, q := range l.rawQs {
				q.Close()
			}
		}()
		var seq int64
		for {
			items := make([]loader.IndexItem, 0, l.spec.BatchSize)
			for len(items) < l.spec.BatchSize {
				it, err := l.idx.Out().Get(ctx)
				if err != nil {
					return
				}
				items = append(items, it)
			}
			b, err := l.loadRaw(ctx, seq, items)
			if err != nil {
				return
			}
			if err := l.rawQs[seq%int64(len(l.rawQs))].Put(ctx, b); err != nil {
				return
			}
			seq++
		}
	})

	// One GPU preprocessing pipeline per device (exec_async).
	for g := range l.env.GPUs {
		g := g
		l.env.WG.Go("dali-gpu-pipe", func() {
			l.gpuPipe(ctx, g)
		})
	}
	return nil
}

// ioWorker is one slot of the persistent IO pool: it loads samples for the
// reader until the task queue closes. A fixed pool of IOParallelism workers
// bounds concurrent loads exactly like the per-batch semaphore it replaced,
// without spawning a goroutine (and a semaphore queue) per sample.
func (l *Loader) ioWorker(ctx context.Context) {
	for {
		t, err := l.ioTasks.Get(ctx)
		if err != nil {
			return
		}
		s, err := loader.LoadSample(ctx, l.env, l.spec, t.item)
		if err == nil {
			// Host-side ingest (decode headers, pin buffers): small CPU
			// cost so DALI shows the paper's light CPU footprint.
			ingest := time.Millisecond +
				time.Duration(float64(s.RawBytes)/(1<<20)*0.2*float64(time.Millisecond))
			err = l.env.CPU.Run(ctx, ingest)
			if err != nil {
				l.env.Pool.Put(s)
				s = nil
			}
		}
		if perr := l.ioDone.Put(context.Background(), ioResult{s: s, slot: t.slot, err: err}); perr != nil {
			l.env.Pool.Put(s)
			return
		}
	}
}

// loadRaw loads a batch's samples through the IO worker pool. The returned
// batch still holds raw (untransformed) samples.
func (l *Loader) loadRaw(ctx context.Context, seq int64, items []loader.IndexItem) (*data.Batch, error) {
	b := l.env.Pool.GetBatch(len(items))
	b.Samples = b.Samples[:len(items)]
	dispatched := 0
	var firstErr error
	for i, it := range items {
		if err := l.ioTasks.Put(ctx, ioTask{item: it, slot: i}); err != nil {
			firstErr = err
			break
		}
		dispatched++
	}
	for n := 0; n < dispatched; n++ {
		r, err := l.ioDone.Get(ctx)
		if err != nil {
			// Shutdown: results for in-flight tasks are unrecoverable here;
			// the pool instances are reclaimed by GC with the session.
			b.Release()
			return nil, err
		}
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		b.Samples[r.slot] = r.s
	}
	if firstErr != nil {
		b.Release()
		return nil, firstErr
	}
	b.Seq, b.CreatedAt = seq, l.env.RT.Now()
	return b, nil
}

// gpuPipe preprocesses raw batches on GPU g and buffers ready batches.
func (l *Loader) gpuPipe(ctx context.Context, g int) {
	dev := l.env.GPUs[g]
	exec := transform.ScaledExecutor{Exec: gpu.Executor{G: dev}, Speedup: l.cfg.Speedup}
	defer l.readyQs[g].Close()
	for {
		b, err := l.rawQs[g].Get(ctx)
		if err != nil {
			return
		}
		for _, s := range b.Samples {
			s.PreprocStart = l.env.RT.Now()
			if err := l.spec.Pipeline.Apply(ctx, exec, s); err != nil {
				b.Release()
				return
			}
			s.PreprocEnd = l.env.RT.Now()
		}
		// Buffered ready batches live in GPU memory until consumed.
		if err := dev.Reserve(b.Bytes()); err != nil {
			// Memory pressure: DALI raises OOM in the real system (§3.4).
			// Our harness surfaces it as a stopped pipeline.
			b.Release()
			return
		}
		b.Resident = true
		b.CreatedAt = l.env.RT.Now()
		if err := l.readyQs[g].Put(ctx, b); err != nil {
			dev.Release(b.Bytes())
			b.Release()
			return
		}
	}
}

// Next implements loader.Loader: per-GPU ready queues.
func (l *Loader) Next(ctx context.Context, g int) (*data.Batch, error) {
	b, err := l.readyQs[g].Get(ctx)
	if err != nil {
		return nil, loader.EOFIfClosed(err)
	}
	l.env.GPUs[g].Release(b.Bytes())
	if l.counter.Deliver() {
		l.Stop()
	}
	return b, nil
}

// Stop implements loader.Loader.
func (l *Loader) Stop() {
	l.stopOnce.Do(func() {
		if l.cancel != nil {
			l.cancel()
		}
		l.idx.Out().Close()
		l.ioTasks.Close()
		l.ioDone.Close()
		for _, q := range l.rawQs {
			q.Close()
		}
		for _, q := range l.readyQs {
			q.Close()
		}
	})
}
