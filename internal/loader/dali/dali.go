// Package dali implements the NVIDIA DALI baseline (§2.1, §3.5): raw data
// is loaded from storage on the CPU, but all preprocessing transforms
// execute on the GPU as kernels roughly 10× faster than their CPU
// counterparts (the paper's own calibration, §5.1). Preprocessing and
// training share each GPU's compute, so aggressive preprocessing interferes
// with training — Takeaway 5.
//
// The pipeline per GPU is:
//
//	reader (CPU, parallel I/O) → raw-batch queue (prefetch_queue_depth)
//	→ GPU preprocessing task → ready queue (prefetch_queue_depth) → Next
//
// exec_pipelined/exec_async correspond to the buffered queues and the
// asynchronous GPU preprocessing task. Buffered batches reserve GPU memory,
// so deeper prefetch queues raise memory pressure (§3.4).
package dali

import (
	"context"
	"sync"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/gpu"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/queue"
	"github.com/minatoloader/minato/internal/transform"
)

// Config holds DALI's tuning knobs.
type Config struct {
	// QueueDepth is prefetch_queue_depth (default 2, §5.1).
	QueueDepth int
	// Speedup is the GPU-vs-CPU transform speed ratio (default 10, §5.1).
	Speedup float64
	// IOParallelism bounds concurrent sample loads per raw batch.
	IOParallelism int
}

// DefaultConfig matches the paper's setup.
func DefaultConfig() Config {
	return Config{QueueDepth: 2, Speedup: 10, IOParallelism: 16}
}

// Loader is the DALI baseline.
type Loader struct {
	env  *loader.Env
	spec loader.Spec
	cfg  Config

	idx      *loader.IndexSource
	rawQs    []*queue.Queue[*data.Batch]
	readyQs  []*queue.Queue[*data.Batch]
	counter  *loader.DeliveryCounter
	stopOnce sync.Once
	cancel   context.CancelFunc
}

// New returns a DALI loader over the given spec.
func New(env *loader.Env, spec loader.Spec, cfg Config) *Loader {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2
	}
	if cfg.Speedup <= 0 {
		cfg.Speedup = 10
	}
	if cfg.IOParallelism <= 0 {
		cfg.IOParallelism = 16
	}
	l := &Loader{
		env: env, spec: spec, cfg: cfg,
		idx:     loader.NewIndexSource(env, spec, 4*spec.BatchSize),
		counter: loader.NewDeliveryCounter(spec.TotalBatches()),
	}
	for g := range env.GPUs {
		l.rawQs = append(l.rawQs,
			queue.New[*data.Batch](env.RT, "dali-raw", cfg.QueueDepth))
		l.readyQs = append(l.readyQs,
			queue.New[*data.Batch](env.RT, "dali-ready", cfg.QueueDepth))
		_ = g
	}
	return l
}

// Name implements loader.Loader.
func (l *Loader) Name() string { return "dali" }

// Start implements loader.Loader.
func (l *Loader) Start(ctx context.Context) error {
	ctx, l.cancel = context.WithCancel(ctx)
	l.idx.Start(ctx)

	// Reader: assemble raw batches in order, loading samples with bounded
	// parallel I/O, and hand them to GPU pipelines round-robin.
	l.env.WG.Go("dali-reader", func() {
		defer func() {
			for _, q := range l.rawQs {
				q.Close()
			}
		}()
		var seq int64
		for {
			items := make([]loader.IndexItem, 0, l.spec.BatchSize)
			for len(items) < l.spec.BatchSize {
				it, err := l.idx.Out().Get(ctx)
				if err != nil {
					return
				}
				items = append(items, it)
			}
			b, err := l.loadRaw(ctx, seq, items)
			if err != nil {
				return
			}
			if err := l.rawQs[seq%int64(len(l.rawQs))].Put(ctx, b); err != nil {
				return
			}
			seq++
		}
	})

	// One GPU preprocessing pipeline per device (exec_async).
	for g := range l.env.GPUs {
		g := g
		l.env.WG.Go("dali-gpu-pipe", func() {
			l.gpuPipe(ctx, g)
		})
	}
	return nil
}

// loadRaw loads a batch's samples with bounded parallelism. The returned
// batch still holds raw (untransformed) samples.
func (l *Loader) loadRaw(ctx context.Context, seq int64, items []loader.IndexItem) (*data.Batch, error) {
	samples := make([]*data.Sample, len(items))
	errs := make([]error, len(items))
	sem := queue.New[struct{}](l.env.RT, "dali-iosem", l.cfg.IOParallelism)
	wg := l.env.WG
	done := queue.New[int](l.env.RT, "dali-iodone", len(items))
	for i, it := range items {
		i, it := i, it
		if err := sem.Put(ctx, struct{}{}); err != nil {
			return nil, err
		}
		wg.Go("dali-io", func() {
			s, err := loader.LoadSample(ctx, l.env, l.spec, it)
			if err == nil {
				// Host-side ingest (decode headers, pin buffers): small CPU
				// cost so DALI shows the paper's light CPU footprint.
				ingest := time.Millisecond +
					time.Duration(float64(s.RawBytes)/(1<<20)*0.2*float64(time.Millisecond))
				err = l.env.CPU.Run(ctx, ingest)
			}
			samples[i], errs[i] = s, err
			_, _, _ = sem.TryGet()
			_ = done.Put(context.Background(), i)
		})
	}
	for range items {
		if _, err := done.Get(ctx); err != nil {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &data.Batch{Samples: samples, Seq: seq, CreatedAt: l.env.RT.Now()}, nil
}

// gpuPipe preprocesses raw batches on GPU g and buffers ready batches.
func (l *Loader) gpuPipe(ctx context.Context, g int) {
	dev := l.env.GPUs[g]
	exec := transform.ScaledExecutor{Exec: gpu.Executor{G: dev}, Speedup: l.cfg.Speedup}
	defer l.readyQs[g].Close()
	for {
		b, err := l.rawQs[g].Get(ctx)
		if err != nil {
			return
		}
		for _, s := range b.Samples {
			s.PreprocStart = l.env.RT.Now()
			if err := l.spec.Pipeline.Apply(ctx, exec, s); err != nil {
				return
			}
			s.PreprocEnd = l.env.RT.Now()
		}
		// Buffered ready batches live in GPU memory until consumed.
		if err := dev.Reserve(b.Bytes()); err != nil {
			// Memory pressure: DALI raises OOM in the real system (§3.4).
			// Our harness surfaces it as a stopped pipeline.
			return
		}
		b.Resident = true
		b.CreatedAt = l.env.RT.Now()
		if err := l.readyQs[g].Put(ctx, b); err != nil {
			dev.Release(b.Bytes())
			return
		}
	}
}

// Next implements loader.Loader: per-GPU ready queues.
func (l *Loader) Next(ctx context.Context, g int) (*data.Batch, error) {
	b, err := l.readyQs[g].Get(ctx)
	if err != nil {
		return nil, loader.EOFIfClosed(err)
	}
	l.env.GPUs[g].Release(b.Bytes())
	if l.counter.Deliver() {
		l.Stop()
	}
	return b, nil
}

// Stop implements loader.Loader.
func (l *Loader) Stop() {
	l.stopOnce.Do(func() {
		if l.cancel != nil {
			l.cancel()
		}
		l.idx.Out().Close()
		for _, q := range l.rawQs {
			q.Close()
		}
		for _, q := range l.readyQs {
			q.Close()
		}
	})
}
