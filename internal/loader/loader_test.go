package loader

import (
	"context"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/queue"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/transform"
)

func testSpec(epochs, iters int) Spec {
	return Spec{
		Dataset:    dataset.Subset(dataset.NewCOCO(1), 100),
		Pipeline:   transform.ObjectDetectionPipeline(),
		BatchSize:  8,
		Epochs:     epochs,
		Iterations: iters,
		Seed:       7,
	}
}

func TestSpecBudgetsEpochMode(t *testing.T) {
	s := testSpec(3, 0)
	if s.BatchesPerEpoch() != 12 { // 100/8
		t.Fatalf("BatchesPerEpoch = %d", s.BatchesPerEpoch())
	}
	if s.TotalBatches() != 36 || s.TotalSamples() != 288 {
		t.Fatalf("totals = %d/%d", s.TotalBatches(), s.TotalSamples())
	}
}

func TestSpecBudgetsIterationMode(t *testing.T) {
	s := testSpec(0, 50)
	if s.TotalBatches() != 50 || s.TotalSamples() != 400 {
		t.Fatalf("totals = %d/%d", s.TotalBatches(), s.TotalSamples())
	}
}

func TestIndexSourceEmitsExactBudgetAndCloses(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		env := &Env{RT: k, WG: simtime.NewWaitGroup(k)}
		spec := testSpec(2, 0)
		is := NewIndexSource(env, spec, 32)
		is.Start(context.Background())
		seen := 0
		var lastSeq int64 = -1
		epochCount := map[int]int{}
		for {
			it, err := is.Out().Get(context.Background())
			if err == queue.ErrClosed {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if it.Seq != lastSeq+1 {
				t.Fatalf("seq %d after %d", it.Seq, lastSeq)
			}
			lastSeq = it.Seq
			epochCount[it.Epoch]++
			seen++
		}
		if seen != spec.TotalSamples() {
			t.Fatalf("emitted %d, want %d", seen, spec.TotalSamples())
		}
		// drop_last: 96 of 100 indices per epoch.
		if epochCount[0] != 96 || epochCount[1] != 96 {
			t.Fatalf("per-epoch counts: %v", epochCount)
		}
		_ = env.WG.Wait(context.Background())
	})
}

func TestIndexSourceShufflesPerEpoch(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		env := &Env{RT: k, WG: simtime.NewWaitGroup(k)}
		spec := testSpec(2, 0)
		is := NewIndexSource(env, spec, 512)
		is.Start(context.Background())
		perEpoch := map[int][]int{}
		for {
			it, err := is.Out().Get(context.Background())
			if err != nil {
				break
			}
			perEpoch[it.Epoch] = append(perEpoch[it.Epoch], it.Index)
		}
		same := true
		for i := range perEpoch[0] {
			if perEpoch[0][i] != perEpoch[1][i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("epochs 0 and 1 used identical order: no reshuffle")
		}
		// No duplicate indices within an epoch.
		seen := map[int]bool{}
		for _, idx := range perEpoch[0] {
			if seen[idx] {
				t.Fatalf("index %d drawn twice in one epoch", idx)
			}
			seen[idx] = true
		}
		_ = env.WG.Wait(context.Background())
	})
}

func TestIterationModeWrapsEpochs(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		env := &Env{RT: k, WG: simtime.NewWaitGroup(k)}
		spec := testSpec(0, 30) // 240 samples over a 96-per-epoch budget
		is := NewIndexSource(env, spec, 512)
		is.Start(context.Background())
		maxEpoch, n := 0, 0
		for {
			it, err := is.Out().Get(context.Background())
			if err != nil {
				break
			}
			if it.Epoch > maxEpoch {
				maxEpoch = it.Epoch
			}
			n++
		}
		if n != 240 {
			t.Fatalf("emitted %d, want 240", n)
		}
		if maxEpoch != 2 {
			t.Fatalf("max epoch = %d, want 2 (240 = 96+96+48)", maxEpoch)
		}
		_ = env.WG.Wait(context.Background())
	})
}

func TestDeliveryCounter(t *testing.T) {
	c := NewDeliveryCounter(3)
	if c.Deliver() || c.Deliver() {
		t.Fatal("done before budget")
	}
	if !c.Deliver() {
		t.Fatal("not done at budget")
	}
	if c.Delivered() != 3 || c.Budget() != 3 {
		t.Fatalf("counter state: %d/%d", c.Delivered(), c.Budget())
	}
}

func TestEOFIfClosed(t *testing.T) {
	if err := EOFIfClosed(queue.ErrClosed); err.Error() != "EOF" {
		t.Fatalf("EOFIfClosed(ErrClosed) = %v", err)
	}
	sentinel := context.DeadlineExceeded
	if err := EOFIfClosed(sentinel); err != sentinel {
		t.Fatalf("EOFIfClosed passthrough = %v", err)
	}
	_ = time.Second
}
