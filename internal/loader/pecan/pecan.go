// Package pecan implements the Pecan baseline (§2.1, §5.1): the PyTorch
// DataLoader extended with Pecan's AutoOrder policy, which reorders each
// sample's transformation pipeline so deflationary transforms run earlier
// and inflationary ones later, within barrier-delimited sections.
//
// The paper reimplemented AutoOrder in PyTorch for a fair comparison and
// did not use AutoPlacement (it targets disaggregated clusters, not the
// single-server setting evaluated here); this package mirrors that choice.
package pecan

import (
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/loader/pytorch"
	"github.com/minatoloader/minato/internal/transform"
)

// Config mirrors the PyTorch knobs; AutoOrder is always on.
type Config struct {
	Workers        int
	PrefetchFactor int
}

// DefaultConfig matches the paper's setup (§5.1).
func DefaultConfig() Config { return Config{Workers: 12, PrefetchFactor: 2} }

// New returns a Pecan loader: PyTorch dispatch/delivery with per-sample
// AutoOrder pipeline rearrangement.
func New(env *loader.Env, spec loader.Spec, cfg Config) *pytorch.Loader {
	return pytorch.New(env, spec, pytorch.Config{
		Workers:        cfg.Workers,
		PrefetchFactor: cfg.PrefetchFactor,
		ReorderPolicy:  transform.AutoOrder,
		LoaderName:     "pecan",
	})
}
