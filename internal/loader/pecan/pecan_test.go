package pecan

import (
	"context"
	"io"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/device"
	"github.com/minatoloader/minato/internal/gpu"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/storage"
	"github.com/minatoloader/minato/internal/transform"
)

func TestPecanDeliversAndIsNamed(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		disk := storage.NewDisk(k, "disk", 10e9, 2)
		env := &loader.Env{
			RT:    k,
			CPU:   device.New(k, "cpu", 16),
			GPUs:  gpu.Pool(k, 1, gpu.A100, 40<<30),
			Store: &storage.Store{Disk: disk, Cache: storage.NewPageCache(64 << 30)},
			WG:    simtime.NewWaitGroup(k),
		}
		spec := loader.Spec{
			Dataset:    dataset.Subset(dataset.NewLibriSpeech(1, 5), 500),
			Pipeline:   transform.SpeechPipeline(3 * time.Second),
			BatchSize:  4,
			Iterations: 10,
			Seed:       1,
		}
		l := New(env, spec, DefaultConfig())
		if l.Name() != "pecan" {
			t.Fatalf("name = %s", l.Name())
		}
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			b, err := l.Next(context.Background(), 0)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range b.Samples {
				if s.NextTransform != spec.Pipeline.Len() {
					t.Fatal("sample not fully preprocessed after AutoOrder")
				}
			}
			n++
		}
		if n != 10 {
			t.Fatalf("delivered %d, want 10", n)
		}
		l.Stop()
		_ = env.WG.Wait(context.Background())
	})
}
