package loader

import (
	"sync"
	"testing"
)

func TestFairShareQuotas(t *testing.T) {
	fs := NewFairShare(16)
	a := fs.Join(1)
	if q := a.WorkerQuota(); q != 16 {
		t.Fatalf("sole tenant quota = %d, want 16", q)
	}
	b := fs.Join(1)
	if qa, qb := a.WorkerQuota(), b.WorkerQuota(); qa != 8 || qb != 8 {
		t.Fatalf("equal-weight quotas = %d/%d, want 8/8", qa, qb)
	}
	c := fs.Join(2)
	if qa, qc := a.WorkerQuota(), c.WorkerQuota(); qa != 4 || qc != 8 {
		t.Fatalf("weighted quotas = %d/%d, want 4/8", qa, qc)
	}
	b.Leave()
	c.Leave()
	if q := a.WorkerQuota(); q != 16 {
		t.Fatalf("quota after siblings left = %d, want 16", q)
	}
	if n := fs.Tenants(); n != 1 {
		t.Fatalf("tenants = %d, want 1", n)
	}
	// Leave is idempotent.
	b.Leave()
	if n := fs.Tenants(); n != 1 {
		t.Fatalf("tenants after double-leave = %d, want 1", n)
	}
}

func TestFairShareFloorsAtOne(t *testing.T) {
	fs := NewFairShare(4)
	shares := make([]*Share, 16)
	for i := range shares {
		shares[i] = fs.Join(1)
	}
	for i, s := range shares {
		if q := s.WorkerQuota(); q != 1 {
			t.Fatalf("oversubscribed quota[%d] = %d, want 1", i, q)
		}
	}
	// Invalid weights are treated as weight 1 rather than corrupting the
	// arbitration.
	s := fs.Join(-3)
	if q := s.WorkerQuota(); q < 1 {
		t.Fatalf("non-positive-weight quota = %d", q)
	}
}

func TestFairShareConcurrent(t *testing.T) {
	fs := NewFairShare(32)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s := fs.Join(float64(j%3 + 1))
				if s.WorkerQuota() < 1 {
					t.Error("quota below 1")
				}
				s.Leave()
			}
		}()
	}
	wg.Wait()
	if n := fs.Tenants(); n != 0 {
		t.Fatalf("tenants = %d after churn, want 0", n)
	}
}
