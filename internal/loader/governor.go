package loader

import (
	"sync"
	"sync/atomic"
)

// WorkerGovernor bounds a loader's preprocessing-worker pool from outside.
// Co-located loaders sharing one CPU device each hold a governor handle; the
// quota is re-read on every scheduling decision, so an owner can rebalance
// capacity while loaders run. A nil governor means "no external bound".
type WorkerGovernor interface {
	// WorkerQuota returns the current maximum worker count for this tenant.
	// Implementations must be safe for concurrent use and cheap to call.
	WorkerQuota() int
}

// FairShare arbitrates a fixed worker capacity (typically the CPU core
// count) across tenants, weighted by priority. Each tenant joins with a
// weight and receives a quota proportional to weight/totalWeight, floored at
// one worker so every tenant always makes progress. Quotas are recomputed on
// every Join and Leave and read lock-free by the per-tenant Share handles,
// so loader schedulers observe rebalancing at their next tick without
// synchronizing with the arbiter.
type FairShare struct {
	capacity int

	mu     sync.Mutex
	total  float64
	shares []*Share
}

// Share is one tenant's handle into a FairShare. It implements
// WorkerGovernor.
type Share struct {
	fs     *FairShare
	weight float64
	quota  atomic.Int64
}

// NewFairShare returns an arbiter over the given worker capacity. Capacity
// below one is clamped to one.
func NewFairShare(capacity int) *FairShare {
	if capacity < 1 {
		capacity = 1
	}
	return &FairShare{capacity: capacity}
}

// Capacity returns the total worker capacity being arbitrated.
func (fs *FairShare) Capacity() int { return fs.capacity }

// Join registers a tenant with the given weight (values ≤ 0 are treated as
// 1) and returns its share handle. All quotas are rebalanced.
func (fs *FairShare) Join(weight float64) *Share {
	if weight <= 0 {
		weight = 1
	}
	s := &Share{fs: fs, weight: weight}
	fs.mu.Lock()
	fs.shares = append(fs.shares, s)
	fs.total += weight
	fs.rebalanceLocked()
	fs.mu.Unlock()
	return s
}

// Leave deregisters the share and rebalances the remaining tenants. Safe to
// call once per Join; further calls are no-ops.
func (s *Share) Leave() {
	fs := s.fs
	if fs == nil {
		return
	}
	fs.mu.Lock()
	for i, e := range fs.shares {
		if e == s {
			fs.shares = append(fs.shares[:i], fs.shares[i+1:]...)
			fs.total -= s.weight
			fs.rebalanceLocked()
			break
		}
	}
	fs.mu.Unlock()
	s.fs = nil
}

// WorkerQuota implements WorkerGovernor: the tenant's current fair share of
// the capacity, at least one.
func (s *Share) WorkerQuota() int {
	q := int(s.quota.Load())
	if q < 1 {
		return 1
	}
	return q
}

// Weight returns the weight the share joined with.
func (s *Share) Weight() float64 { return s.weight }

// Tenants returns the number of currently joined shares.
func (fs *FairShare) Tenants() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.shares)
}

// rebalanceLocked recomputes every share's quota. Called with fs.mu held.
func (fs *FairShare) rebalanceLocked() {
	if fs.total <= 0 {
		return
	}
	for _, s := range fs.shares {
		q := int(float64(fs.capacity) * s.weight / fs.total)
		if q < 1 {
			q = 1
		}
		s.quota.Store(int64(q))
	}
}
