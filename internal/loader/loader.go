// Package loader defines the vocabulary shared by every data loader in this
// repository: the Loader interface the trainer consumes batches through, the
// Spec describing what to load, the Env bundling substrate handles, and the
// shuffled index source all loaders draw sample indices from.
package loader

import (
	"context"
	"errors"
	"io"
	"sync/atomic"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/device"
	"github.com/minatoloader/minato/internal/dist"
	"github.com/minatoloader/minato/internal/gpu"
	"github.com/minatoloader/minato/internal/matcache"
	"github.com/minatoloader/minato/internal/metrics"
	"github.com/minatoloader/minato/internal/queue"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/storage"
	"github.com/minatoloader/minato/internal/trace"
	"github.com/minatoloader/minato/internal/transform"
)

// Loader is the interface every data loader implements. Start launches the
// loader's background tasks; Next returns preprocessed batches for a given
// GPU consumer; Stop initiates shutdown (loaders also stop on their own
// after delivering their budget).
type Loader interface {
	// Name identifies the loader in reports ("pytorch", "dali", "pecan",
	// "minato").
	Name() string
	// Start launches background tasks into the loader's Env.WG group.
	Start(ctx context.Context) error
	// Next returns the next batch for GPU consumer g, or io.EOF after the
	// configured budget has been delivered.
	Next(ctx context.Context, g int) (*data.Batch, error)
	// Stop requests shutdown; pending work is abandoned. Safe to call more
	// than once, and after natural end-of-data.
	Stop()
}

// Instrumented is optionally implemented by loaders exposing internal
// gauges (queue occupancy, worker counts) to the metrics collector.
type Instrumented interface {
	RegisterMetrics(c *metrics.Collector)
}

// Spec describes the data a loader serves.
type Spec struct {
	Dataset   dataset.Dataset
	Pipeline  *transform.Pipeline
	BatchSize int
	// Epochs and Iterations bound the run: if Iterations > 0 it wins,
	// wrapping epochs as needed (Table 3 uses 1000 iterations for obj-det
	// and speech, 50 epochs for img-seg).
	Epochs     int
	Iterations int
	Seed       uint64
	// Skip fast-forwards the run past its first Skip batches: the index
	// source drops that many batches' worth of draws — preserving true
	// epoch numbering, shuffle order, and global sequence — and the
	// delivery budget shrinks to the remainder. This is the restore half
	// of checkpoint/resume: a resumed session consumes exactly the draws
	// its predecessor never delivered.
	Skip int
}

// BatchesPerEpoch returns the number of full batches per epoch (drop-last
// semantics, matching PyTorch's drop_last=True).
func (s Spec) BatchesPerEpoch() int {
	return s.Dataset.Len() / s.BatchSize
}

// TotalBatches returns the delivery budget: the configured bound minus the
// batches a Skip fast-forwards past.
func (s Spec) TotalBatches() int {
	total := s.Iterations
	if total <= 0 {
		e := s.Epochs
		if e <= 0 {
			e = 1
		}
		total = e * s.BatchesPerEpoch()
	}
	total -= s.Skip
	if total < 0 {
		total = 0
	}
	return total
}

// TotalSamples returns the number of sample draws the index source emits.
func (s Spec) TotalSamples() int { return s.TotalBatches() * s.BatchSize }

// Env bundles the simulated hardware a loader runs on.
type Env struct {
	RT    simtime.Runtime
	CPU   *device.Device
	GPUs  []*gpu.GPU
	Store *storage.Store
	// WG tracks loader tasks; sessions wait on it during teardown.
	WG *simtime.WaitGroup
	// Pool recycles samples and batches through the data path (see
	// data.Pool). A nil pool degrades to plain allocation, so hand-built
	// environments keep working; sessions and the trainer always set one.
	Pool *data.Pool
	// Gov, when set, bounds the loader's preprocessing-worker pool from
	// outside — the hook multi-tenant clusters use to arbitrate CPU workers
	// fairly across co-located loaders. A nil governor leaves the loader's
	// own MaxWorkers as the only bound.
	Gov WorkerGovernor
	// Mat, when set, is the cluster's materialized preprocessed-sample
	// cache: loaders that support it (MinatoLoader) check it before
	// dispatching a sample to the pipeline and materialize their outputs
	// into it, so repeat epochs and co-tenant sessions skip preprocessing
	// entirely. Nil disables the warm path.
	Mat *matcache.Cache
	// Trace, when set, records deterministic spans from every layer the
	// loader touches (storage reads, cache fills, worker transforms, queue
	// waits, consumer steps). Nil disables recording: every call is a
	// nil-check no-op, so the hot path stays allocation-free.
	Trace *trace.Recorder
	// TraceNode stamps recorded spans with the owning rank in a multi-node
	// run (0 on a single machine).
	TraceNode int32
}

// TraceTenant returns the tenant id spans from this environment carry: the
// store's registered tenant on a shared substrate, 0 otherwise.
func (e *Env) TraceTenant() int32 {
	if e.Store != nil {
		return int32(e.Store.Tenant)
	}
	return 0
}

// ErrStopped is returned by Next when the loader was stopped before the
// delivery budget completed.
var ErrStopped = errors.New("loader: stopped")

// EOFIfClosed converts a queue-closed error into io.EOF, the contract of
// Loader.Next.
func EOFIfClosed(err error) error {
	if errors.Is(err, queue.ErrClosed) {
		return io.EOF
	}
	return err
}

// IndexItem is one sample draw from the shuffled index stream.
type IndexItem struct {
	Epoch int
	Index int
	Seq   int64 // global draw order
}

// IndexSource emits dataset indices in reshuffled epoch order, exactly
// TotalSamples of them, then closes the output queue. Like the PyTorch
// sampler, indices are drawn in a predetermined random order (§2.1); what
// loaders do with that order is where they differ.
type IndexSource struct {
	Spec Spec
	out  *queue.Queue[IndexItem]
	env  *Env
}

// NewIndexSource returns an index source writing into a queue of the given
// capacity.
func NewIndexSource(env *Env, spec Spec, capacity int) *IndexSource {
	return &IndexSource{
		Spec: spec,
		out:  queue.New[IndexItem](env.RT, "index", capacity),
		env:  env,
	}
}

// Out returns the index queue.
func (is *IndexSource) Out() *queue.Queue[IndexItem] { return is.out }

// Ready exposes the index stream as a wake source for event-driven
// consumers: it fires when an index item is available or the stream has
// closed. Loaders arm a simtime.Selector on it (together with their other
// queues) instead of sleep-polling TryGet.
func (is *IndexSource) Ready() simtime.Source { return is.out }

// Start launches the generator task.
func (is *IndexSource) Start(ctx context.Context) {
	is.env.WG.Go("index-source", func() {
		defer is.out.Close()
		// Skip fast-forwards through the leading draws without emitting
		// them: epoch numbering, shuffle order, and Seq stay those of the
		// uninterrupted run, so a resumed session is indistinguishable
		// downstream from one that delivered the skipped prefix itself.
		skip := int64(is.Spec.Skip) * int64(is.Spec.BatchSize)
		total := int64(is.Spec.TotalSamples()) + skip
		perEpoch := is.Spec.BatchesPerEpoch() * is.Spec.BatchSize
		var seq int64
		for epoch := 0; seq < total; epoch++ {
			// Cached + read-only: every loader of a comparison run draws the
			// same epoch orders, so the shuffles are shared process-wide.
			perm := dist.PermutationCached(is.Spec.Seed, uint64(epoch)+1000, is.Spec.Dataset.Len())
			for i := 0; i < perEpoch && seq < total; i++ {
				if seq >= skip {
					item := IndexItem{Epoch: epoch, Index: perm[i], Seq: seq}
					if err := is.out.Put(ctx, item); err != nil {
						return
					}
				}
				seq++
			}
		}
	})
}

// FillSample draws a pooled sample and fills its descriptor for an index
// item, without paying the storage read — the front half of LoadSample,
// used by cache fast paths that may skip the read entirely. The caller owns
// the returned sample.
func FillSample(env *Env, spec Spec, it IndexItem) *data.Sample {
	s := env.Pool.Get()
	dataset.Fill(spec.Dataset, it.Epoch, it.Index, s)
	s.OriginalOrder = it.Seq
	return s
}

// LoadSample materializes, reads, and stamps a sample for an index item.
// The sample instance is drawn from the environment's pool; the caller owns
// it and must hand it onward (into a batch) or release it back with
// env.Pool.Put. On error no sample is retained.
func LoadSample(ctx context.Context, env *Env, spec Spec, it IndexItem) (*data.Sample, error) {
	s := FillSample(env, spec, it)
	if err := env.Store.ReadSample(ctx, env.RT, s); err != nil {
		env.Pool.Put(s)
		return nil, err
	}
	return s, nil
}

// DeliveryCounter tracks how many batches have been delivered and closes
// over the budget, shared by loader implementations.
type DeliveryCounter struct {
	delivered atomic.Int64
	budget    int64
}

// NewDeliveryCounter returns a counter with the given budget.
func NewDeliveryCounter(budget int) *DeliveryCounter {
	return &DeliveryCounter{budget: int64(budget)}
}

// Deliver increments and reports whether this delivery completed the budget.
func (d *DeliveryCounter) Deliver() (done bool) {
	return d.delivered.Add(1) >= d.budget
}

// Delivered returns the count so far.
func (d *DeliveryCounter) Delivered() int64 { return d.delivered.Load() }

// Budget returns the total budget.
func (d *DeliveryCounter) Budget() int64 { return d.budget }
