package pytorch

import (
	"context"
	"io"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/device"
	"github.com/minatoloader/minato/internal/gpu"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/storage"
	"github.com/minatoloader/minato/internal/transform"
)

func newEnv(k *simtime.Virtual, cores float64) *loader.Env {
	disk := storage.NewDisk(k, "disk", 10e9, 2)
	return &loader.Env{
		RT:    k,
		CPU:   device.New(k, "cpu", cores),
		GPUs:  gpu.Pool(k, 1, gpu.A100, 40<<30),
		Store: &storage.Store{Disk: disk, Cache: storage.NewPageCache(64 << 30)},
		WG:    simtime.NewWaitGroup(k),
	}
}

func speechSpec(batch, iters int) loader.Spec {
	return loader.Spec{
		Dataset:    dataset.Subset(dataset.NewLibriSpeech(1, 5), 2000),
		Pipeline:   transform.SpeechPipeline(3 * time.Second),
		BatchSize:  batch,
		Iterations: iters,
		Seed:       1,
	}
}

func TestInOrderDelivery(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		env := newEnv(k, 16)
		l := New(env, speechSpec(4, 25), DefaultConfig())
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		var prevSeq int64 = -1
		var prevOrder int64 = -1
		for {
			b, err := l.Next(context.Background(), 0)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if b.Seq != prevSeq+1 {
				t.Fatalf("batch seq %d after %d: delivery out of order", b.Seq, prevSeq)
			}
			prevSeq = b.Seq
			for _, s := range b.Samples {
				if s.OriginalOrder != prevOrder+1 {
					t.Fatalf("sample order %d after %d", s.OriginalOrder, prevOrder)
				}
				prevOrder = s.OriginalOrder
			}
		}
		if prevSeq != 24 {
			t.Fatalf("last seq = %d, want 24", prevSeq)
		}
		l.Stop()
		_ = env.WG.Wait(context.Background())
	})
}

// TestHeadOfLineBlocking pins the pathology of Fig 1a: a heavy sample
// delays not only its own batch but every batch behind it in sequence
// order, leaving long delivery gaps.
func TestHeadOfLineBlocking(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		env := newEnv(k, 16)
		cfg := DefaultConfig()
		cfg.Workers = 2 // small pool accentuates the effect
		l := New(env, speechSpec(4, 20), cfg)
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		var arrivals []time.Duration
		for {
			b, err := l.Next(context.Background(), 0)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			_ = b
			arrivals = append(arrivals, k.Now())
		}
		maxGap := time.Duration(0)
		for i := 1; i < len(arrivals); i++ {
			if g := arrivals[i] - arrivals[i-1]; g > maxGap {
				maxGap = g
			}
		}
		// Batches of 4 with 20% heavy samples: some batch serially costs
		// ≥3s, and in-order delivery propagates that to the consumer.
		if maxGap < 2*time.Second {
			t.Fatalf("max delivery gap %v: expected head-of-line stalls ≥2s", maxGap)
		}
		l.Stop()
		_ = env.WG.Wait(context.Background())
	})
}

func TestBatchesNotResident(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		env := newEnv(k, 16)
		l := New(env, speechSpec(4, 3), DefaultConfig())
		_ = l.Start(context.Background())
		b, err := l.Next(context.Background(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if b.Resident {
			t.Fatal("pytorch batches must not be pre-staged on GPU")
		}
		l.Stop()
		_ = env.WG.Wait(context.Background())
	})
}

func TestPrefetchWindowBoundsOutstandingBatches(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		env := newEnv(k, 32)
		cfg := Config{Workers: 2, PrefetchFactor: 2}
		l := New(env, speechSpec(2, 50), cfg)
		if err := l.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Without consuming, let the pipeline run: at most
		// workers × prefetch batches may be prepared ahead.
		_ = k.Sleep(context.Background(), 5*time.Minute)
		if got := l.out.Len(); got > cfg.Workers*cfg.PrefetchFactor {
			t.Fatalf("%d batches buffered, window is %d", got, cfg.Workers*cfg.PrefetchFactor)
		}
		l.Stop()
		_ = env.WG.Wait(context.Background())
	})
}

func TestReorderPolicyApplied(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		env := newEnv(k, 16)
		called := 0
		sigs := map[string]bool{}
		cfg := DefaultConfig()
		cfg.ReorderPolicy = func(ts []transform.Transform, s *data.Sample) []transform.Transform {
			called++
			sig := ""
			for _, tr := range ts {
				sig += string(rune('0' + int(transform.Classify(tr, s))))
			}
			sigs[sig] = true
			return transform.AutoOrder(ts, s)
		}
		cfg.LoaderName = "pecan"
		l := New(env, speechSpec(4, 5), cfg)
		if l.Name() != "pecan" {
			t.Fatalf("name = %s", l.Name())
		}
		_ = l.Start(context.Background())
		delivered := 0
		for {
			if _, err := l.Next(context.Background(), 0); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			delivered++
		}
		if delivered != 5 {
			t.Fatalf("delivered %d batches, want 5", delivered)
		}
		// The policy result is memoized per classification signature
		// (transform.OrderCache): it must run at least once, and exactly
		// once per distinct signature seen — never once per sample.
		if called == 0 {
			t.Fatal("reorder policy never called")
		}
		if called != len(sigs) {
			t.Fatalf("reorder policy called %d times for %d distinct signatures", called, len(sigs))
		}
		l.Stop()
		_ = env.WG.Wait(context.Background())
	})
}

func TestStopEarlyReleasesTasks(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		env := newEnv(k, 16)
		l := New(env, speechSpec(4, 500), DefaultConfig())
		_ = l.Start(context.Background())
		if _, err := l.Next(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		l.Stop()
		if err := env.WG.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
}
