// Package pytorch implements the PyTorch DataLoader baseline (§2.1,
// Fig 1a):
//
//   - the sampler predetermines a random index order and groups consecutive
//     indices into batches;
//   - batch tasks are dispatched round-robin to worker processes, each with
//     a bounded task queue, and the number of outstanding (dispatched but
//     not yet consumed) batches is capped at workers × prefetch_factor,
//     exactly like _tasks_outstanding in the real implementation;
//   - a worker loads and preprocesses the samples of its batch serially;
//   - completed batches are delivered strictly in order, so one slow sample
//     delays its batch, and a slow batch delays every batch behind it —
//     head-of-line blocking (§3.3).
package pytorch

import (
	"context"
	"sort"
	"sync"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/queue"
	"github.com/minatoloader/minato/internal/transform"
)

// Config holds the PyTorch DataLoader tuning knobs the paper sweeps.
type Config struct {
	// Workers is num_workers; the paper uses 12 (§5.1).
	Workers int
	// PrefetchFactor is batches prefetched per worker (default 2).
	PrefetchFactor int
	// ReorderPolicy optionally rearranges the pipeline per sample before
	// preprocessing; Pecan's AutoOrder plugs in here. Nil keeps Table 1
	// order. The policy must depend on the sample only through each
	// transform's volume classification (transform.Classify): results are
	// memoized per classification signature (transform.OrderCache), so the
	// policy runs once per distinct signature, not once per sample.
	ReorderPolicy func(ts []transform.Transform, s *data.Sample) []transform.Transform
	// LoaderName overrides the reported name (used by the pecan wrapper).
	LoaderName string
}

// DefaultConfig returns the paper's baseline configuration (§5.1).
func DefaultConfig() Config {
	return Config{Workers: 12, PrefetchFactor: 2}
}

type batchTask struct {
	seq   int64
	items []loader.IndexItem
}

// Loader is the PyTorch DataLoader baseline.
type Loader struct {
	env  *loader.Env
	spec loader.Spec
	cfg  Config

	idx      *loader.IndexSource
	workerQs []*queue.Queue[batchTask]
	// tokens caps outstanding batches (dispatched − consumed) at
	// workers × prefetch_factor; Next returns a token on consumption.
	tokens *queue.Queue[struct{}]
	out    *queue.Queue[*data.Batch]

	reorder    reorderBuffer
	orderCache transform.OrderCache
	stopOnce   sync.Once
	cancel     context.CancelFunc
}

// New returns a PyTorch DataLoader over the given spec.
func New(env *loader.Env, spec loader.Spec, cfg Config) *Loader {
	if cfg.Workers <= 0 {
		cfg.Workers = 12
	}
	if cfg.PrefetchFactor <= 0 {
		cfg.PrefetchFactor = 2
	}
	window := cfg.Workers * cfg.PrefetchFactor
	l := &Loader{
		env: env, spec: spec, cfg: cfg,
		idx:    loader.NewIndexSource(env, spec, 4*spec.BatchSize),
		tokens: queue.New[struct{}](env.RT, "pytorch-window", window),
		// The out queue only ever holds in-order ready batches; its
		// capacity never gates the pipeline (the token window does), so
		// the reorder flusher can always TryPut without parking.
		out: queue.New[*data.Batch](env.RT, "pytorch-out", spec.TotalBatches()+1),
	}
	l.reorder.pending = make(map[int64]*data.Batch)
	l.reorder.total = int64(spec.TotalBatches())
	l.reorder.out = l.out
	for w := 0; w < cfg.Workers; w++ {
		l.workerQs = append(l.workerQs,
			queue.New[batchTask](env.RT, "pytorch-tasks", cfg.PrefetchFactor))
	}
	return l
}

// Name implements loader.Loader.
func (l *Loader) Name() string {
	if l.cfg.LoaderName != "" {
		return l.cfg.LoaderName
	}
	return "pytorch"
}

// Start implements loader.Loader.
func (l *Loader) Start(ctx context.Context) error {
	ctx, l.cancel = context.WithCancel(ctx)
	l.idx.Start(ctx)

	// Fill the dispatch window.
	for i := 0; i < l.tokens.Cap(); i++ {
		if _, err := l.tokens.TryPut(struct{}{}); err != nil {
			return err
		}
	}

	// Dispatcher: group the index stream into batch tasks, round-robin to
	// workers, gated by the outstanding-batch window.
	l.env.WG.Go("pytorch-dispatch", func() {
		defer func() {
			for _, wq := range l.workerQs {
				wq.Close()
			}
		}()
		var seq int64
		for {
			if _, err := l.tokens.Get(ctx); err != nil {
				return
			}
			items := make([]loader.IndexItem, 0, l.spec.BatchSize)
			for len(items) < l.spec.BatchSize {
				it, err := l.idx.Out().Get(ctx)
				if err != nil {
					return // index stream closed: drop partial batch (drop_last)
				}
				items = append(items, it)
			}
			wq := l.workerQs[seq%int64(len(l.workerQs))]
			if err := wq.Put(ctx, batchTask{seq: seq, items: items}); err != nil {
				return
			}
			seq++
		}
	})

	for w := 0; w < l.cfg.Workers; w++ {
		wq := l.workerQs[w]
		l.env.WG.Go("pytorch-worker", func() {
			for {
				task, err := wq.Get(ctx)
				if err != nil {
					return
				}
				b, err := l.prepare(ctx, task)
				if err != nil {
					return
				}
				l.reorder.deliver(b)
			}
		})
	}
	return nil
}

// prepare loads and preprocesses one batch serially — the per-worker loop
// of Fig 1a.
func (l *Loader) prepare(ctx context.Context, task batchTask) (*data.Batch, error) {
	b := l.env.Pool.GetBatch(len(task.items))
	for _, it := range task.items {
		s, err := loader.LoadSample(ctx, l.env, l.spec, it)
		if err != nil {
			b.Release()
			return nil, err
		}
		s.PreprocStart = l.env.RT.Now()
		p := l.spec.Pipeline
		if l.cfg.ReorderPolicy != nil {
			p = l.reordered(p, s)
		}
		if err := p.Apply(ctx, l.env.CPU, s); err != nil {
			l.env.Pool.Put(s)
			b.Release()
			return nil, err
		}
		s.PreprocEnd = l.env.RT.Now()
		b.Samples = append(b.Samples, s)
	}
	b.Seq, b.CreatedAt = task.seq, l.env.RT.Now()
	return b, nil
}

// reordered resolves the per-sample pipeline rearrangement through a cache
// keyed by the samples' classification signature, so the policy (and the
// pipeline construction behind it) runs once per distinct signature instead
// of once per sample.
func (l *Loader) reordered(p *transform.Pipeline, s *data.Sample) *transform.Pipeline {
	return l.orderCache.Reordered(p, s, l.cfg.ReorderPolicy)
}

// Next implements loader.Loader. All GPU consumers share the single
// in-order output queue (the paper's single-process multi-GPU setting).
func (l *Loader) Next(ctx context.Context, _ int) (*data.Batch, error) {
	b, err := l.out.Get(ctx)
	if err != nil {
		return nil, loader.EOFIfClosed(err)
	}
	// Consumption frees a slot in the dispatch window.
	_, _ = l.tokens.TryPut(struct{}{})
	return b, nil
}

// Stop implements loader.Loader.
func (l *Loader) Stop() {
	l.stopOnce.Do(func() {
		if l.cancel != nil {
			l.cancel()
		}
		l.idx.Out().Close()
		l.tokens.Close()
		for _, wq := range l.workerQs {
			wq.Close()
		}
		l.out.Close()
	})
}

// reorderBuffer delivers batches strictly by sequence number — the
// mechanism that turns one slow batch into a pipeline stall.
type reorderBuffer struct {
	mu      sync.Mutex
	pending map[int64]*data.Batch
	next    int64
	total   int64
	sent    int64
	out     *queue.Queue[*data.Batch]
}

// deliver inserts a completed batch and flushes every consecutive ready
// batch to the output queue. The output queue is sized so TryPut never
// fails while open; the flush therefore never parks while holding the lock.
func (r *reorderBuffer) deliver(b *data.Batch) {
	r.mu.Lock()
	r.pending[b.Seq] = b
	for {
		nb, ok := r.pending[r.next]
		if !ok {
			break
		}
		delete(r.pending, r.next)
		if ok, err := r.out.TryPut(nb); !ok || err != nil {
			r.mu.Unlock()
			nb.Release() // queue closed mid-shutdown: the batch is ours
			return
		}
		r.next++
		r.sent++
	}
	done := r.sent >= r.total
	r.mu.Unlock()
	if done {
		r.out.Close()
	}
}

// PendingSeqs returns the sequence numbers parked in the reorder buffer
// (diagnostics/tests).
func (l *Loader) PendingSeqs() []int64 {
	l.reorder.mu.Lock()
	defer l.reorder.mu.Unlock()
	out := make([]int64, 0, len(l.reorder.pending))
	for s := range l.reorder.pending {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
