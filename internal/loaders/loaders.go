// Package loaders provides trainer factories for every data loader in the
// repository, backed by a name-keyed registry so experiments sweep loaders
// uniformly and new backends plug in without editing this package.
//
// The paper's four systems self-register at init time under their report
// names ("pytorch", "pecan", "dali", "minato"), in the paper's comparison
// order. Downstream backends call Register from their own init functions
// and become resolvable by every -loader flag and by the public
// minato.RegisterLoader / minato.Loaders surface.
package loaders

import (
	"github.com/minatoloader/minato/internal/core"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/loader/dali"
	"github.com/minatoloader/minato/internal/loader/pecan"
	"github.com/minatoloader/minato/internal/loader/pytorch"
	"github.com/minatoloader/minato/internal/registry"
	"github.com/minatoloader/minato/internal/trainer"
)

var reg = registry.New[trainer.Factory]("loader")

func init() {
	// The paper's four systems with their §5.1 configurations, registered
	// in the paper's comparison order.
	Register(PyTorch(pytorch.DefaultConfig()))
	Register(Pecan(pecan.DefaultConfig()))
	Register(DALI(dali.DefaultConfig()))
	Register(Minato(core.DefaultConfig()))
}

// Register adds a loader factory under f.Name. It panics on an empty or
// duplicate name.
func Register(f trainer.Factory) {
	reg.Register(f.Name, f)
}

// ByName returns the registered factory for a loader name.
func ByName(name string) (trainer.Factory, bool) {
	return reg.Lookup(name)
}

// Names returns every registered loader name, sorted.
func Names() []string { return reg.Names() }

// Ordered returns every registered loader name in registration order: the
// paper's comparison order first, then downstream registrations.
func Ordered() []string { return reg.Ordered() }

// PyTorch returns a factory for the PyTorch DataLoader baseline.
func PyTorch(cfg pytorch.Config) trainer.Factory {
	return trainer.Factory{Name: "pytorch", New: func(env *loader.Env, spec loader.Spec) loader.Loader {
		return pytorch.New(env, spec, cfg)
	}}
}

// DALI returns a factory for the DALI baseline.
func DALI(cfg dali.Config) trainer.Factory {
	return trainer.Factory{Name: "dali", New: func(env *loader.Env, spec loader.Spec) loader.Loader {
		return dali.New(env, spec, cfg)
	}}
}

// Pecan returns a factory for the Pecan (AutoOrder) baseline.
func Pecan(cfg pecan.Config) trainer.Factory {
	return trainer.Factory{Name: "pecan", New: func(env *loader.Env, spec loader.Spec) loader.Loader {
		return pecan.New(env, spec, cfg)
	}}
}

// Minato returns a factory for MinatoLoader.
func Minato(cfg core.Config) trainer.Factory {
	return trainer.Factory{Name: "minato", New: func(env *loader.Env, spec loader.Spec) loader.Loader {
		return core.New(env, spec, cfg)
	}}
}

// Defaults returns the paper's four systems with their §5.1 configurations,
// in the paper's comparison order.
func Defaults() []trainer.Factory {
	out := make([]trainer.Factory, 0, 4)
	for _, name := range []string{"pytorch", "pecan", "dali", "minato"} {
		f, _ := reg.Lookup(name)
		out = append(out, f)
	}
	return out
}
