// Package loaders provides trainer factories for every data loader in the
// repository, so experiments can sweep loaders uniformly.
package loaders

import (
	"github.com/minatoloader/minato/internal/core"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/loader/dali"
	"github.com/minatoloader/minato/internal/loader/pecan"
	"github.com/minatoloader/minato/internal/loader/pytorch"
	"github.com/minatoloader/minato/internal/trainer"
)

// PyTorch returns a factory for the PyTorch DataLoader baseline.
func PyTorch(cfg pytorch.Config) trainer.Factory {
	return trainer.Factory{Name: "pytorch", New: func(env *loader.Env, spec loader.Spec) loader.Loader {
		return pytorch.New(env, spec, cfg)
	}}
}

// DALI returns a factory for the DALI baseline.
func DALI(cfg dali.Config) trainer.Factory {
	return trainer.Factory{Name: "dali", New: func(env *loader.Env, spec loader.Spec) loader.Loader {
		return dali.New(env, spec, cfg)
	}}
}

// Pecan returns a factory for the Pecan (AutoOrder) baseline.
func Pecan(cfg pecan.Config) trainer.Factory {
	return trainer.Factory{Name: "pecan", New: func(env *loader.Env, spec loader.Spec) loader.Loader {
		return pecan.New(env, spec, cfg)
	}}
}

// Minato returns a factory for MinatoLoader.
func Minato(cfg core.Config) trainer.Factory {
	return trainer.Factory{Name: "minato", New: func(env *loader.Env, spec loader.Spec) loader.Loader {
		return core.New(env, spec, cfg)
	}}
}

// Defaults returns the paper's four systems with their §5.1 configurations,
// in the paper's comparison order.
func Defaults() []trainer.Factory {
	return []trainer.Factory{
		PyTorch(pytorch.DefaultConfig()),
		Pecan(pecan.DefaultConfig()),
		DALI(dali.DefaultConfig()),
		Minato(core.DefaultConfig()),
	}
}

// ByName returns the default-configured factory for a loader name.
func ByName(name string) (trainer.Factory, bool) {
	for _, f := range Defaults() {
		if f.Name == name {
			return f, true
		}
	}
	return trainer.Factory{}, false
}
