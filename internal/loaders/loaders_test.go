package loaders

import (
	"testing"

	"github.com/minatoloader/minato/internal/core"
	"github.com/minatoloader/minato/internal/loader/dali"
	"github.com/minatoloader/minato/internal/loader/pecan"
	"github.com/minatoloader/minato/internal/loader/pytorch"
)

func TestDefaultsOrderAndNames(t *testing.T) {
	fs := Defaults()
	want := []string{"pytorch", "pecan", "dali", "minato"}
	if len(fs) != len(want) {
		t.Fatalf("factories = %d", len(fs))
	}
	for i, w := range want {
		if fs[i].Name != w {
			t.Fatalf("factory[%d] = %s, want %s", i, fs[i].Name, w)
		}
		if fs[i].New == nil {
			t.Fatalf("factory %s has nil constructor", w)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"pytorch", "pecan", "dali", "minato"} {
		f, ok := ByName(name)
		if !ok || f.Name != name {
			t.Fatalf("ByName(%q) = %v, %v", name, f.Name, ok)
		}
	}
	if _, ok := ByName("tf.data"); ok {
		t.Fatal("unknown loader resolved")
	}
}

func TestCustomConfigsAccepted(t *testing.T) {
	if f := PyTorch(pytorch.Config{Workers: 3}); f.Name != "pytorch" {
		t.Fatal("PyTorch factory")
	}
	if f := DALI(dali.Config{QueueDepth: 5}); f.Name != "dali" {
		t.Fatal("DALI factory")
	}
	if f := Pecan(pecan.Config{Workers: 3}); f.Name != "pecan" {
		t.Fatal("Pecan factory")
	}
	if f := Minato(core.Config{QueueCap: 5}); f.Name != "minato" {
		t.Fatal("Minato factory")
	}
}
