// Package stats provides the streaming statistics used throughout the
// simulator: Welford mean/variance, exact percentile buffers (for the paper's
// Table 2 style summaries), EWMAs (for MinatoLoader's worker scheduler), and
// time series recorders (for the usage/throughput figures).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Welford accumulates count, mean, variance, min and max in one pass.
// The zero value is ready to use.
type Welford struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates x.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Std returns the population standard deviation (0 for n < 2).
func (w *Welford) Std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Percentiles stores observations for exact quantile queries. It keeps every
// value; callers bound the number of observations themselves (profiling runs
// are at most a few hundred thousand samples).
type Percentiles struct {
	vals   []float64
	sorted bool
}

// Add incorporates x.
func (p *Percentiles) Add(x float64) {
	p.vals = append(p.vals, x)
	p.sorted = false
}

// N returns the number of observations.
func (p *Percentiles) N() int { return len(p.vals) }

// Quantile returns the q-th quantile (q in [0,1]) using linear
// interpolation. It returns 0 when empty.
func (p *Percentiles) Quantile(q float64) float64 {
	if len(p.vals) == 0 {
		return 0
	}
	if !p.sorted {
		sort.Float64s(p.vals)
		p.sorted = true
	}
	if q <= 0 {
		return p.vals[0]
	}
	if q >= 1 {
		return p.vals[len(p.vals)-1]
	}
	pos := q * float64(len(p.vals)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return p.vals[lo]
	}
	frac := pos - float64(lo)
	return p.vals[lo]*(1-frac) + p.vals[hi]*frac
}

// Values returns a copy of the observations in insertion-independent
// (sorted) order.
func (p *Percentiles) Values() []float64 {
	out := make([]float64, len(p.vals))
	copy(out, p.vals)
	sort.Float64s(out)
	return out
}

// Summary is a Table 2 style row: preprocessing time statistics.
type Summary struct {
	N                  int
	Avg, Med, P75, P90 float64
	Min, Max, Std      float64
}

// Summarize computes a Summary from raw observations.
func Summarize(vals []float64) Summary {
	var w Welford
	var p Percentiles
	for _, v := range vals {
		w.Add(v)
		p.Add(v)
	}
	return Summary{
		N:   len(vals),
		Avg: w.Mean(), Med: p.Quantile(0.5), P75: p.Quantile(0.75), P90: p.Quantile(0.90),
		Min: w.Min(), Max: w.Max(), Std: w.Std(),
	}
}

// String formats the summary in the paper's Table 2 layout (values assumed
// to be milliseconds).
func (s Summary) String() string {
	return fmt.Sprintf("avg=%.0f med=%.0f p75=%.0f p90=%.0f min-max-std=%.0f–%.0f–%.0f",
		s.Avg, s.Med, s.P75, s.P90, s.Min, s.Max, s.Std)
}

// LogHist is a log-bucketed latency histogram: fixed memory, O(1) inserts,
// and quantiles with bounded relative error — the same bucket geometry the
// loader profiler uses for its per-sample cost window, reused here for SLO
// metrics (p99 step time under churn). Counts commute, so concurrent
// writers adding under a caller-held lock — or a deterministic schedule —
// produce identical quantiles regardless of insertion order.
type LogHist struct {
	counts []int64
	n      int64
	sum    float64
}

// Bucket geometry: logHistBuckets spanning [logHistMin, logHistMax]
// seconds. 100µs..1000s over 1024 buckets gives ~1.6% relative spacing.
const (
	logHistBuckets = 1024
	logHistMin     = 100e-6
	logHistMax     = 1000.0
)

// NewLogHist returns an empty histogram.
func NewLogHist() *LogHist {
	return &LogHist{counts: make([]int64, logHistBuckets)}
}

// logHistBucket maps a duration in seconds to its bucket index.
func logHistBucket(sec float64) int {
	if sec <= logHistMin {
		return 0
	}
	if sec >= logHistMax {
		return logHistBuckets - 1
	}
	frac := math.Log(sec/logHistMin) / math.Log(logHistMax/logHistMin)
	b := int(frac * (logHistBuckets - 1))
	if b < 0 {
		b = 0
	}
	if b >= logHistBuckets {
		b = logHistBuckets - 1
	}
	return b
}

// logHistValue returns the representative (lower-edge) value of bucket b.
func logHistValue(b int) float64 {
	frac := float64(b) / (logHistBuckets - 1)
	return logHistMin * math.Pow(logHistMax/logHistMin, frac)
}

// Add records one observation (a duration in seconds).
func (h *LogHist) Add(sec float64) {
	h.counts[logHistBucket(sec)]++
	h.n++
	h.sum += sec
}

// AddDuration records one observation.
func (h *LogHist) AddDuration(d time.Duration) { h.Add(d.Seconds()) }

// N returns the number of observations.
func (h *LogHist) N() int64 { return h.n }

// Sum returns the total of all observations in seconds.
func (h *LogHist) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// ForEachBucket calls fn for every non-empty bucket, in bucket order, with
// the bucket's upper-edge value in seconds and its (non-cumulative) count.
// Exporters (e.g. the Prometheus text format) build their cumulative view
// from this.
func (h *LogHist) ForEachBucket(fn func(upper float64, count int64)) {
	if h == nil {
		return
	}
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		fn(logHistValue(b+1), c)
	}
}

// Quantile returns the q-th quantile (q in [0,1]) in seconds,
// interpolating within the landing bucket. It returns 0 when empty.
func (h *LogHist) Quantile(q float64) float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	cum := 0.0
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo, hi := logHistValue(b), logHistValue(b+1)
			if b == logHistBuckets-1 {
				hi = lo
			}
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return logHistValue(logHistBuckets - 1)
}

// QuantileDuration is Quantile as a time.Duration.
func (h *LogHist) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q) * float64(time.Second))
}

// EWMA is an exponentially weighted moving average. The zero value with a
// zero alpha is invalid; use NewEWMA.
type EWMA struct {
	alpha float64
	v     float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0,1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Update incorporates x and returns the new value.
func (e *EWMA) Update(x float64) float64 {
	if !e.init {
		e.v = x
		e.init = true
	} else {
		e.v = e.alpha*x + (1-e.alpha)*e.v
	}
	return e.v
}

// Value returns the current average (0 before the first update).
func (e *EWMA) Value() float64 { return e.v }

// Point is one sample of a time series.
type Point struct {
	T time.Duration
	V float64
}

// TimeSeries records (time, value) points, e.g. GPU utilization over a run.
type TimeSeries struct {
	Name   string
	Points []Point
}

// Append adds a point.
func (ts *TimeSeries) Append(t time.Duration, v float64) {
	ts.Points = append(ts.Points, Point{T: t, V: v})
}

// Mean returns the unweighted mean of the recorded values.
func (ts *TimeSeries) Mean() float64 {
	if len(ts.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range ts.Points {
		sum += p.V
	}
	return sum / float64(len(ts.Points))
}

// Max returns the largest recorded value (0 when empty).
func (ts *TimeSeries) Max() float64 {
	m := 0.0
	for i, p := range ts.Points {
		if i == 0 || p.V > m {
			m = p.V
		}
	}
	return m
}

// Downsample returns at most n points, evenly strided, preserving the last
// point. Useful for rendering long runs compactly.
func (ts *TimeSeries) Downsample(n int) []Point {
	if n <= 0 || len(ts.Points) <= n {
		out := make([]Point, len(ts.Points))
		copy(out, ts.Points)
		return out
	}
	out := make([]Point, 0, n)
	stride := float64(len(ts.Points)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, ts.Points[int(math.Round(float64(i)*stride))])
	}
	return out
}
