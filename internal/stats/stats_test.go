package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", w.Std())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Std() != 0 {
		t.Error("empty Welford not zero")
	}
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Std() != 0 || w.Min() != 3.5 || w.Max() != 3.5 {
		t.Error("single-value Welford wrong")
	}
}

func TestPercentilesQuantile(t *testing.T) {
	var p Percentiles
	for i := 1; i <= 100; i++ {
		p.Add(float64(i))
	}
	cases := []struct {
		q, want float64
	}{{0, 1}, {1, 100}, {0.5, 50.5}, {0.75, 75.25}, {0.9, 90.1}}
	for _, c := range cases {
		if got := p.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPercentilesInterleavedAddQuery(t *testing.T) {
	var p Percentiles
	p.Add(10)
	if p.Quantile(0.5) != 10 {
		t.Fatal("median of single value")
	}
	p.Add(20)
	if got := p.Quantile(0.5); got != 15 {
		t.Fatalf("median = %v, want 15", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 20, 30, 40, 50})
	if s.N != 5 || s.Avg != 30 || s.Med != 30 || s.Min != 10 || s.Max != 50 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.5)
	e.Update(0)
	for i := 0; i < 50; i++ {
		e.Update(10)
	}
	if math.Abs(e.Value()-10) > 1e-6 {
		t.Fatalf("EWMA = %v, want ≈10", e.Value())
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	for i := 0; i < 10; i++ {
		ts.Append(time.Duration(i)*time.Second, float64(i))
	}
	if ts.Mean() != 4.5 || ts.Max() != 9 {
		t.Fatalf("Mean/Max = %v/%v", ts.Mean(), ts.Max())
	}
	ds := ts.Downsample(4)
	if len(ds) != 4 || ds[0].V != 0 || ds[3].V != 9 {
		t.Fatalf("Downsample = %v", ds)
	}
	if got := ts.Downsample(100); len(got) != 10 {
		t.Fatalf("Downsample(100) len = %d", len(got))
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		var p Percentiles
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			p.Add(v)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := p.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return p.Quantile(0) <= p.Quantile(1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Welford mean/std match the naive two-pass computation.
func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(raw []int32) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, v := range raw {
			w.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		ss := 0.0
		for _, v := range raw {
			ss += (float64(v) - mean) * (float64(v) - mean)
		}
		std := math.Sqrt(ss / float64(len(raw)))
		scale := math.Max(1, math.Abs(mean))
		return math.Abs(w.Mean()-mean)/scale < 1e-9 && math.Abs(w.Std()-std)/math.Max(1, std) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogHistQuantiles(t *testing.T) {
	h := NewLogHist()
	// 90 fast steps at 10ms, ten slow at 1s: p50 ≈ 10ms, p99 within a
	// bucket of 1s (log-bucket quantiles carry ~2% relative error).
	for i := 0; i < 90; i++ {
		h.Add(0.010)
	}
	for i := 0; i < 10; i++ {
		h.Add(1.0)
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if p50 := h.Quantile(0.5); math.Abs(p50-0.010)/0.010 > 0.05 {
		t.Fatalf("p50 = %v, want ≈10ms", p50)
	}
	if p99 := h.Quantile(0.99); math.Abs(p99-1.0) > 0.05 {
		t.Fatalf("p99 = %v, want ≈1s", p99)
	}
	// Out-of-range observations clamp to the edge buckets.
	h2 := NewLogHist()
	h2.Add(1e-9)
	h2.Add(1e9)
	if h2.Quantile(0) <= 0 || h2.Quantile(1) < 999 {
		t.Fatalf("edge quantiles = %v, %v", h2.Quantile(0), h2.Quantile(1))
	}
	// Insertion order never matters: counts commute.
	a, b := NewLogHist(), NewLogHist()
	vals := []float64{0.5, 0.01, 0.2, 0.01, 3}
	for i, v := range vals {
		a.Add(v)
		b.Add(vals[len(vals)-1-i])
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("order-dependent quantile at q=%g", q)
		}
	}
	// Empty and nil are zero.
	var nilH *LogHist
	if nilH.Quantile(0.99) != 0 || NewLogHist().QuantileDuration(0.5) != 0 {
		t.Fatal("empty/nil quantile not zero")
	}
}
