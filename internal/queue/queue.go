// Package queue provides a bounded, blocking, multi-producer multi-consumer
// FIFO queue built on the simtime runtime. It mirrors the semantics of
// torch.multiprocessing.Queue that MinatoLoader's paper implementation uses
// (§4.4): atomic Put under contention, blocking Get, FIFO ordering.
//
// Close wakes every blocked producer and consumer deterministically, which
// is the primary shutdown mechanism under the virtual-time runtime.
package queue

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

// ErrClosed is returned by Put after Close, and by Get after Close once the
// buffer has drained.
var ErrClosed = errors.New("queue: closed")

// Queue is a bounded blocking FIFO.
type Queue[T any] struct {
	rt   simtime.Runtime
	name string
	cap  int

	mu         sync.Mutex
	buf        []T
	closed     bool
	getWaiters []waiterEntry
	putWaiters []waiterEntry

	// stats
	puts, gets   int64
	maxLen       int
	occIntegral  float64 // ∫ len dt, in item-seconds
	lastOccCheck time.Duration
	created      time.Duration
}

// New returns a queue with the given capacity. Capacity must be positive.
func New[T any](rt simtime.Runtime, name string, capacity int) *Queue[T] {
	if capacity <= 0 {
		panic("queue: capacity must be positive")
	}
	now := rt.Now()
	return &Queue[T]{rt: rt, name: name, cap: capacity, lastOccCheck: now, created: now}
}

// Name returns the queue's diagnostic name.
func (q *Queue[T]) Name() string { return q.name }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return q.cap }

// Len returns the current number of buffered items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

func (q *Queue[T]) accountLocked() {
	now := q.rt.Now()
	q.occIntegral += float64(len(q.buf)) * (now - q.lastOccCheck).Seconds()
	q.lastOccCheck = now
}

// Put appends v, blocking while the queue is full. It returns ErrClosed if
// the queue is or becomes closed, or ctx.Err() on cancellation.
func (q *Queue[T]) Put(ctx context.Context, v T) error {
	q.mu.Lock()
	for {
		if q.closed {
			q.mu.Unlock()
			return ErrClosed
		}
		if len(q.buf) < q.cap {
			q.accountLocked()
			q.buf = append(q.buf, v)
			if len(q.buf) > q.maxLen {
				q.maxLen = len(q.buf)
			}
			q.puts++
			q.wakeOneLocked(&q.getWaiters)
			q.mu.Unlock()
			return nil
		}
		w := q.rt.NewWaiter()
		q.putWaiters = append(q.putWaiters, waiterEntry{w: w})
		q.mu.Unlock()
		if err := w.Wait(ctx); err != nil {
			q.mu.Lock()
			q.removeWaiterLocked(&q.putWaiters, w)
			if len(q.buf) < q.cap {
				// Guard against a lost wakeup: someone may have woken us
				// to fill the free slot we are abandoning.
				q.wakeOneLocked(&q.putWaiters)
			}
			q.mu.Unlock()
			return err
		}
		q.mu.Lock()
	}
}

// TryPut appends v without blocking. It reports whether the item was
// accepted; it returns ErrClosed after Close.
func (q *Queue[T]) TryPut(v T) (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, ErrClosed
	}
	if len(q.buf) >= q.cap {
		return false, nil
	}
	q.accountLocked()
	q.buf = append(q.buf, v)
	if len(q.buf) > q.maxLen {
		q.maxLen = len(q.buf)
	}
	q.puts++
	q.wakeOneLocked(&q.getWaiters)
	return true, nil
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. After Close, Get drains remaining items and then returns ErrClosed.
func (q *Queue[T]) Get(ctx context.Context) (T, error) {
	var zero T
	q.mu.Lock()
	for {
		if len(q.buf) > 0 {
			v := q.popLocked()
			q.mu.Unlock()
			return v, nil
		}
		if q.closed {
			q.mu.Unlock()
			return zero, ErrClosed
		}
		w := q.rt.NewWaiter()
		q.getWaiters = append(q.getWaiters, waiterEntry{w: w})
		q.mu.Unlock()
		if err := w.Wait(ctx); err != nil {
			q.mu.Lock()
			q.removeWaiterLocked(&q.getWaiters, w)
			if len(q.buf) > 0 {
				q.wakeOneLocked(&q.getWaiters)
			}
			q.mu.Unlock()
			return zero, err
		}
		q.mu.Lock()
	}
}

// TryGet removes and returns the oldest item without blocking. ok is false
// when the queue is empty. It returns ErrClosed once closed and drained.
func (q *Queue[T]) TryGet() (v T, ok bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) > 0 {
		return q.popLocked(), true, nil
	}
	if q.closed {
		var zero T
		return zero, false, ErrClosed
	}
	var zero T
	return zero, false, nil
}

func (q *Queue[T]) popLocked() T {
	q.accountLocked()
	v := q.buf[0]
	var zero T
	q.buf[0] = zero
	q.buf = q.buf[1:]
	q.gets++
	q.wakeOneLocked(&q.putWaiters)
	return v
}

// Close marks the queue closed and wakes every blocked producer and
// consumer. Items already buffered remain readable. Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.accountLocked()
	q.closed = true
	gets, puts := q.getWaiters, q.putWaiters
	q.getWaiters, q.putWaiters = nil, nil
	q.mu.Unlock()
	for _, e := range gets {
		e.wake()
	}
	for _, e := range puts {
		e.wake()
	}
}

// waiterEntry is one parked consumer or producer: either a one-shot Waiter
// (blocking Get/Put) or a Selector subscription (Arm) with its result index.
type waiterEntry struct {
	w   *simtime.Waiter
	sel *simtime.Selector
	idx int
}

// wake delivers the wakeup. A false return means the entry could not accept
// it (a Selector already claimed by another source), so the caller must pass
// the wakeup to the next waiter instead of dropping it.
func (e waiterEntry) wake() bool {
	if e.w != nil {
		return e.w.Wake()
	}
	return e.sel.TryWake(e.idx)
}

func (q *Queue[T]) wakeOneLocked(list *[]waiterEntry) {
	for len(*list) > 0 {
		e := (*list)[0]
		*list = (*list)[1:]
		if e.wake() {
			return
		}
	}
}

func (q *Queue[T]) removeWaiterLocked(list *[]waiterEntry, w *simtime.Waiter) {
	for i, e := range *list {
		if e.w == w {
			*list = append((*list)[:i], (*list)[i+1:]...)
			return
		}
	}
}

// Arm implements simtime.Source: it registers sel for a wakeup when the
// queue becomes readable (an item arrives or the queue closes). If the queue
// is already readable, sel is woken immediately and not registered.
func (q *Queue[T]) Arm(sel *simtime.Selector, idx int) bool {
	q.mu.Lock()
	if len(q.buf) > 0 || q.closed {
		q.mu.Unlock()
		sel.TryWake(idx)
		return true
	}
	q.getWaiters = append(q.getWaiters, waiterEntry{sel: sel, idx: idx})
	q.mu.Unlock()
	return false
}

// Disarm implements simtime.Source.
func (q *Queue[T]) Disarm(sel *simtime.Selector) {
	q.mu.Lock()
	for i, e := range q.getWaiters {
		if e.sel == sel {
			q.getWaiters = append(q.getWaiters[:i], q.getWaiters[i+1:]...)
			break
		}
	}
	q.mu.Unlock()
}

// WaitAny blocks until one of the sources is ready — for queues, readable or
// closed — and returns the index of the source that fired (Heartbeat when
// the heartbeat expired first; pass 0 to disable it). It allocates a
// throwaway Selector, so it is a convenience for occasional waits; hot loops
// should hold a Selector and call Select on it directly.
func WaitAny(ctx context.Context, rt simtime.Runtime, heartbeat time.Duration, sources ...simtime.Source) (int, error) {
	return simtime.NewSelector(rt).Select(ctx, heartbeat, sources...)
}

var _ simtime.Source = (*Queue[int])(nil)

// Stats is a snapshot of queue activity.
type Stats struct {
	Name         string
	Puts, Gets   int64
	Len, Cap     int
	MaxLen       int
	AvgOccupancy float64 // time-weighted mean length
}

// Stats returns a snapshot of queue counters.
func (q *Queue[T]) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.accountLocked()
	elapsed := (q.lastOccCheck - q.created).Seconds()
	avg := 0.0
	if elapsed > 0 {
		avg = q.occIntegral / elapsed
	}
	return Stats{
		Name: q.name, Puts: q.puts, Gets: q.gets,
		Len: len(q.buf), Cap: q.cap, MaxLen: q.maxLen, AvgOccupancy: avg,
	}
}
