// Package queue provides a bounded, blocking, multi-producer multi-consumer
// FIFO queue built on the simtime runtime. It mirrors the semantics of
// torch.multiprocessing.Queue that MinatoLoader's paper implementation uses
// (§4.4): atomic Put under contention, blocking Get, FIFO ordering.
//
// Close wakes every blocked producer and consumer deterministically, which
// is the primary shutdown mechanism under the virtual-time runtime.
//
// The implementation is allocation-free in steady state: items live in a
// power-of-two ring buffer sized at construction, parked producers and
// consumers are recorded in ring-backed waiter lists (no append-and-shift
// slice churn), and blocking waits draw reusable Selectors from a pool
// instead of allocating a one-shot Waiter per park. Popped ring slots are
// zeroed so the queue never keeps a vacated element reachable. Len and
// Closed read atomics, so emptiness checks never touch the hot lock.
package queue

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

// ErrClosed is returned by Put after Close, and by Get after Close once the
// buffer has drained.
var ErrClosed = errors.New("queue: closed")

// Queue is a bounded blocking FIFO.
type Queue[T any] struct {
	rt   simtime.Runtime
	name string
	cap  int

	mu         sync.Mutex
	buf        []T // power-of-two ring; len(buf) >= cap
	mask       int
	head       int // index of the oldest buffered item
	getWaiters waitList
	putWaiters waitList

	// size and closed are mutated under mu but read lock-free by Len and
	// Closed — the emptiness checks on the batch-constructor hot path never
	// contend on the queue lock.
	size   atomic.Int64
	closed atomic.Bool

	// occupancy statistics, guarded by mu.
	occIntegral float64 // ∫ len dt, in item-seconds
	lastOcc     time.Duration

	// selPool recycles Selectors across blocking Put/Get parks. Recycling is
	// safe because every TryWake on a queue waiter entry is delivered while
	// holding mu: once an entry has been popped (or removed by its owner)
	// under the lock, no stale reference to its selector remains.
	selPool sync.Pool

	// counters, readable off the lock
	puts, gets atomic.Int64
	maxLen     atomic.Int64
	created    time.Duration
}

// New returns a queue with the given capacity. Capacity must be positive.
// The ring buffer is allocated eagerly (rounded up to a power of two), so
// the queue performs no item-storage allocation after construction.
func New[T any](rt simtime.Runtime, name string, capacity int) *Queue[T] {
	if capacity <= 0 {
		panic("queue: capacity must be positive")
	}
	ring := 1
	for ring < capacity {
		ring <<= 1
	}
	now := rt.Now()
	q := &Queue[T]{
		rt: rt, name: name, cap: capacity,
		buf: make([]T, ring), mask: ring - 1,
		created: now, lastOcc: now,
	}
	q.selPool.New = func() any { return simtime.NewSelector(rt) }
	return q
}

// Name returns the queue's diagnostic name.
func (q *Queue[T]) Name() string { return q.name }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return q.cap }

// Len returns the current number of buffered items without locking.
func (q *Queue[T]) Len() int { return int(q.size.Load()) }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed.Load() }

// account folds the elapsed occupancy (len·dt) into the integral. Callers
// hold mu and pass the length that was current over the elapsed window
// (i.e. before their mutation).
func (q *Queue[T]) account(lenBefore int) {
	now := q.rt.Now()
	last := q.lastOcc
	q.lastOcc = now
	if now > last && lenBefore > 0 {
		q.occIntegral += float64(lenBefore) * (now - last).Seconds()
	}
}

// pushLocked appends v to the ring. The caller holds mu and has verified
// space is available.
func (q *Queue[T]) pushLocked(v T) {
	n := int(q.size.Load())
	q.account(n)
	q.buf[(q.head+n)&q.mask] = v
	q.size.Store(int64(n + 1))
	if int64(n+1) > q.maxLen.Load() {
		q.maxLen.Store(int64(n + 1))
	}
	q.puts.Add(1)
	q.getWaiters.wakeOne()
}

// popLocked removes and returns the oldest item. The caller holds mu and has
// verified the queue is non-empty. The vacated slot is zeroed so the ring
// never keeps a popped element reachable.
func (q *Queue[T]) popLocked() T {
	n := int(q.size.Load())
	q.account(n)
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head = (q.head + 1) & q.mask
	q.size.Store(int64(n - 1))
	q.gets.Add(1)
	q.putWaiters.wakeOne()
	return v
}

// Put appends v, blocking while the queue is full. It returns ErrClosed if
// the queue is or becomes closed, or ctx.Err() on cancellation.
func (q *Queue[T]) Put(ctx context.Context, v T) error {
	q.mu.Lock()
	for {
		if q.closed.Load() {
			q.mu.Unlock()
			return ErrClosed
		}
		if int(q.size.Load()) < q.cap {
			q.pushLocked(v)
			q.mu.Unlock()
			return nil
		}
		if err := q.parkLocked(ctx, &q.putWaiters); err != nil {
			// Guard against a lost wakeup: someone may have woken us to fill
			// the free slot we are abandoning.
			if int(q.size.Load()) < q.cap {
				q.putWaiters.wakeOne()
			}
			q.mu.Unlock()
			return err
		}
	}
}

// TryPut appends v without blocking. It reports whether the item was
// accepted; it returns ErrClosed after Close.
func (q *Queue[T]) TryPut(v T) (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed.Load() {
		return false, ErrClosed
	}
	if int(q.size.Load()) >= q.cap {
		return false, nil
	}
	q.pushLocked(v)
	return true, nil
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. After Close, Get drains remaining items and then returns ErrClosed.
func (q *Queue[T]) Get(ctx context.Context) (T, error) {
	var zero T
	q.mu.Lock()
	for {
		if q.size.Load() > 0 {
			v := q.popLocked()
			q.mu.Unlock()
			return v, nil
		}
		if q.closed.Load() {
			q.mu.Unlock()
			return zero, ErrClosed
		}
		if err := q.parkLocked(ctx, &q.getWaiters); err != nil {
			if q.size.Load() > 0 {
				q.getWaiters.wakeOne()
			}
			q.mu.Unlock()
			return zero, err
		}
	}
}

// TryGet removes and returns the oldest item without blocking. ok is false
// when the queue is empty. It returns ErrClosed once closed and drained.
func (q *Queue[T]) TryGet() (v T, ok bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size.Load() > 0 {
		return q.popLocked(), true, nil
	}
	if q.closed.Load() {
		var zero T
		return zero, false, ErrClosed
	}
	var zero T
	return zero, false, nil
}

// parkLocked parks the caller on list with a pooled selector until a waker
// (or Close) delivers a wakeup, re-acquiring mu before returning. A nil
// return means the caller was woken and must re-check its condition; a
// non-nil return is the context error, with the caller's entry already
// removed from the list.
func (q *Queue[T]) parkLocked(ctx context.Context, list *waitList) error {
	sel := q.selPool.Get().(*simtime.Selector)
	// Reset under mu: every queue-side TryWake also happens under mu, so the
	// cycle boundary is serialized against wakers and the pooled selector
	// can never receive a stale wake from a previous owner.
	sel.Reset()
	list.push(waiterEntry{sel: sel, idx: 0})
	q.mu.Unlock()
	_, err := sel.Wait(ctx, 0)
	q.mu.Lock()
	if err != nil {
		// Cancelled: drop our entry if a waker has not already popped it. In
		// either case no reference can be in flight — wakes are delivered
		// under mu, which we hold — so the selector is safe to recycle.
		list.remove(sel)
	}
	q.selPool.Put(sel)
	return err
}

// Kick re-delivers a consumer wakeup when the queue is non-empty. A waiter
// that claimed a wakeup but decided not to consume (e.g. a worker retiring
// right after being woken) calls it so the item that woke it reaches a
// parked peer instead of being stranded. A spurious kick is safe: the
// woken consumer re-checks and parks again.
func (q *Queue[T]) Kick() {
	q.mu.Lock()
	if q.size.Load() > 0 {
		q.getWaiters.wakeOne()
	}
	q.mu.Unlock()
}

// Close marks the queue closed and wakes every blocked producer and
// consumer. Items already buffered remain readable. Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	if q.closed.Load() {
		q.mu.Unlock()
		return
	}
	q.account(int(q.size.Load()))
	q.closed.Store(true)
	// Wake under the lock: pooled selectors must never see a wake after
	// their entry has been removed from the lists.
	q.getWaiters.wakeAll()
	q.putWaiters.wakeAll()
	q.mu.Unlock()
}

// waiterEntry is one parked consumer or producer: a Selector subscription
// (a pooled selector for blocking Get/Put, or an external Arm registration)
// with its result index.
type waiterEntry struct {
	sel *simtime.Selector
	idx int
}

// waitList is a ring-backed FIFO of waiter entries. Pushes reuse the ring
// in place (growing only by doubling when full), and popped or removed
// slots are zeroed so no Selector stays reachable after its wait ends.
type waitList struct {
	ring []waiterEntry
	head int
	n    int
}

func (l *waitList) push(e waiterEntry) {
	if l.n == len(l.ring) {
		l.grow()
	}
	l.ring[(l.head+l.n)&(len(l.ring)-1)] = e
	l.n++
}

func (l *waitList) grow() {
	size := len(l.ring) * 2
	if size == 0 {
		size = 8
	}
	next := make([]waiterEntry, size)
	for i := 0; i < l.n; i++ {
		next[i] = l.ring[(l.head+i)&(len(l.ring)-1)]
	}
	l.ring, l.head = next, 0
}

func (l *waitList) pop() (waiterEntry, bool) {
	if l.n == 0 {
		return waiterEntry{}, false
	}
	e := l.ring[l.head]
	l.ring[l.head] = waiterEntry{}
	l.head = (l.head + 1) & (len(l.ring) - 1)
	l.n--
	return e, true
}

// wakeOne pops entries until one accepts the wakeup. A refused wake (a
// Selector already claimed by another source) passes to the next waiter so
// the wakeup is never dropped.
func (l *waitList) wakeOne() {
	for {
		e, ok := l.pop()
		if !ok {
			return
		}
		if e.sel.TryWake(e.idx) {
			return
		}
	}
}

// wakeAll delivers a wakeup attempt to every parked entry (shutdown).
func (l *waitList) wakeAll() {
	for {
		e, ok := l.pop()
		if !ok {
			return
		}
		e.sel.TryWake(e.idx)
	}
}

// remove deletes the entry for sel, compacting the ring. It is a no-op when
// sel is not present (already popped by a waker).
func (l *waitList) remove(sel *simtime.Selector) {
	mask := len(l.ring) - 1
	for i := 0; i < l.n; i++ {
		if l.ring[(l.head+i)&mask].sel != sel {
			continue
		}
		for j := i; j < l.n-1; j++ {
			l.ring[(l.head+j)&mask] = l.ring[(l.head+j+1)&mask]
		}
		l.ring[(l.head+l.n-1)&mask] = waiterEntry{}
		l.n--
		return
	}
}

// Arm implements simtime.Source: it registers sel for a wakeup when the
// queue becomes readable (an item arrives or the queue closes). If the queue
// is already readable, sel is woken immediately and not registered.
func (q *Queue[T]) Arm(sel *simtime.Selector, idx int) bool {
	q.mu.Lock()
	if q.size.Load() > 0 || q.closed.Load() {
		q.mu.Unlock()
		sel.TryWake(idx)
		return true
	}
	q.getWaiters.push(waiterEntry{sel: sel, idx: idx})
	q.mu.Unlock()
	return false
}

// Disarm implements simtime.Source.
func (q *Queue[T]) Disarm(sel *simtime.Selector) {
	q.mu.Lock()
	q.getWaiters.remove(sel)
	q.mu.Unlock()
}

// WaitAny blocks until one of the sources is ready — for queues, readable or
// closed — and returns the index of the source that fired (Heartbeat when
// the heartbeat expired first; pass 0 to disable it). It allocates a
// throwaway Selector, so it is a convenience for occasional waits; hot loops
// should hold a Selector and call Select on it directly.
func WaitAny(ctx context.Context, rt simtime.Runtime, heartbeat time.Duration, sources ...simtime.Source) (int, error) {
	return simtime.NewSelector(rt).Select(ctx, heartbeat, sources...)
}

var _ simtime.Source = (*Queue[int])(nil)

// Stats is a snapshot of queue activity.
type Stats struct {
	Name         string
	Puts, Gets   int64
	Len, Cap     int
	MaxLen       int
	AvgOccupancy float64 // time-weighted mean length
}

// Stats returns a snapshot of queue counters. It takes the queue lock
// briefly to fold the tail window into the occupancy integral and read a
// consistent snapshot; the lock-free diagnostic reads are Len and Closed.
func (q *Queue[T]) Stats() Stats {
	q.mu.Lock()
	q.account(int(q.size.Load()))
	elapsed := (q.lastOcc - q.created).Seconds()
	integral := q.occIntegral
	q.mu.Unlock()
	avg := 0.0
	if elapsed > 0 {
		avg = integral / elapsed
	}
	return Stats{
		Name: q.name, Puts: q.puts.Load(), Gets: q.gets.Load(),
		Len: int(q.size.Load()), Cap: q.cap,
		MaxLen: int(q.maxLen.Load()), AvgOccupancy: avg,
	}
}
