// Package queue provides a bounded, blocking, multi-producer multi-consumer
// FIFO queue built on the simtime runtime. It mirrors the semantics of
// torch.multiprocessing.Queue that MinatoLoader's paper implementation uses
// (§4.4): atomic Put under contention, blocking Get, FIFO ordering.
//
// Close wakes every blocked producer and consumer deterministically, which
// is the primary shutdown mechanism under the virtual-time runtime.
package queue

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

// ErrClosed is returned by Put after Close, and by Get after Close once the
// buffer has drained.
var ErrClosed = errors.New("queue: closed")

// Queue is a bounded blocking FIFO.
type Queue[T any] struct {
	rt   simtime.Runtime
	name string
	cap  int

	mu         sync.Mutex
	buf        []T
	closed     bool
	getWaiters []*simtime.Waiter
	putWaiters []*simtime.Waiter

	// stats
	puts, gets   int64
	maxLen       int
	occIntegral  float64 // ∫ len dt, in item-seconds
	lastOccCheck time.Duration
	created      time.Duration
}

// New returns a queue with the given capacity. Capacity must be positive.
func New[T any](rt simtime.Runtime, name string, capacity int) *Queue[T] {
	if capacity <= 0 {
		panic("queue: capacity must be positive")
	}
	now := rt.Now()
	return &Queue[T]{rt: rt, name: name, cap: capacity, lastOccCheck: now, created: now}
}

// Name returns the queue's diagnostic name.
func (q *Queue[T]) Name() string { return q.name }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return q.cap }

// Len returns the current number of buffered items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

func (q *Queue[T]) accountLocked() {
	now := q.rt.Now()
	q.occIntegral += float64(len(q.buf)) * (now - q.lastOccCheck).Seconds()
	q.lastOccCheck = now
}

// Put appends v, blocking while the queue is full. It returns ErrClosed if
// the queue is or becomes closed, or ctx.Err() on cancellation.
func (q *Queue[T]) Put(ctx context.Context, v T) error {
	q.mu.Lock()
	for {
		if q.closed {
			q.mu.Unlock()
			return ErrClosed
		}
		if len(q.buf) < q.cap {
			q.accountLocked()
			q.buf = append(q.buf, v)
			if len(q.buf) > q.maxLen {
				q.maxLen = len(q.buf)
			}
			q.puts++
			q.wakeOneLocked(&q.getWaiters)
			q.mu.Unlock()
			return nil
		}
		w := q.rt.NewWaiter()
		q.putWaiters = append(q.putWaiters, w)
		q.mu.Unlock()
		if err := w.Wait(ctx); err != nil {
			q.mu.Lock()
			q.removeWaiterLocked(&q.putWaiters, w)
			if len(q.buf) < q.cap {
				// Guard against a lost wakeup: someone may have woken us
				// to fill the free slot we are abandoning.
				q.wakeOneLocked(&q.putWaiters)
			}
			q.mu.Unlock()
			return err
		}
		q.mu.Lock()
	}
}

// TryPut appends v without blocking. It reports whether the item was
// accepted; it returns ErrClosed after Close.
func (q *Queue[T]) TryPut(v T) (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, ErrClosed
	}
	if len(q.buf) >= q.cap {
		return false, nil
	}
	q.accountLocked()
	q.buf = append(q.buf, v)
	if len(q.buf) > q.maxLen {
		q.maxLen = len(q.buf)
	}
	q.puts++
	q.wakeOneLocked(&q.getWaiters)
	return true, nil
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. After Close, Get drains remaining items and then returns ErrClosed.
func (q *Queue[T]) Get(ctx context.Context) (T, error) {
	var zero T
	q.mu.Lock()
	for {
		if len(q.buf) > 0 {
			v := q.popLocked()
			q.mu.Unlock()
			return v, nil
		}
		if q.closed {
			q.mu.Unlock()
			return zero, ErrClosed
		}
		w := q.rt.NewWaiter()
		q.getWaiters = append(q.getWaiters, w)
		q.mu.Unlock()
		if err := w.Wait(ctx); err != nil {
			q.mu.Lock()
			q.removeWaiterLocked(&q.getWaiters, w)
			if len(q.buf) > 0 {
				q.wakeOneLocked(&q.getWaiters)
			}
			q.mu.Unlock()
			return zero, err
		}
		q.mu.Lock()
	}
}

// TryGet removes and returns the oldest item without blocking. ok is false
// when the queue is empty. It returns ErrClosed once closed and drained.
func (q *Queue[T]) TryGet() (v T, ok bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) > 0 {
		return q.popLocked(), true, nil
	}
	if q.closed {
		var zero T
		return zero, false, ErrClosed
	}
	var zero T
	return zero, false, nil
}

func (q *Queue[T]) popLocked() T {
	q.accountLocked()
	v := q.buf[0]
	var zero T
	q.buf[0] = zero
	q.buf = q.buf[1:]
	q.gets++
	q.wakeOneLocked(&q.putWaiters)
	return v
}

// Close marks the queue closed and wakes every blocked producer and
// consumer. Items already buffered remain readable. Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.accountLocked()
	q.closed = true
	gets, puts := q.getWaiters, q.putWaiters
	q.getWaiters, q.putWaiters = nil, nil
	q.mu.Unlock()
	for _, w := range gets {
		w.Wake()
	}
	for _, w := range puts {
		w.Wake()
	}
}

func (q *Queue[T]) wakeOneLocked(list *[]*simtime.Waiter) {
	for len(*list) > 0 {
		w := (*list)[0]
		*list = (*list)[1:]
		if w.Wake() {
			return
		}
	}
}

func (q *Queue[T]) removeWaiterLocked(list *[]*simtime.Waiter, w *simtime.Waiter) {
	for i, x := range *list {
		if x == w {
			*list = append((*list)[:i], (*list)[i+1:]...)
			return
		}
	}
}

// Stats is a snapshot of queue activity.
type Stats struct {
	Name         string
	Puts, Gets   int64
	Len, Cap     int
	MaxLen       int
	AvgOccupancy float64 // time-weighted mean length
}

// Stats returns a snapshot of queue counters.
func (q *Queue[T]) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.accountLocked()
	elapsed := (q.lastOccCheck - q.created).Seconds()
	avg := 0.0
	if elapsed > 0 {
		avg = q.occIntegral / elapsed
	}
	return Stats{
		Name: q.name, Puts: q.puts, Gets: q.gets,
		Len: len(q.buf), Cap: q.cap, MaxLen: q.maxLen, AvgOccupancy: avg,
	}
}
