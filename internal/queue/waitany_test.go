package queue

import (
	"context"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

func TestArmReportsReadyOnNonEmptyAndClosed(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		q := New[int](k, "q", 4)
		_ = q.Put(context.Background(), 1)
		sel := simtime.NewSelector(k)
		sel.Reset()
		if !q.Arm(sel, 0) {
			t.Fatal("Arm on a non-empty queue must report ready")
		}
		closed := New[int](k, "closed", 4)
		closed.Close()
		sel2 := simtime.NewSelector(k)
		sel2.Reset()
		if !closed.Arm(sel2, 0) {
			t.Fatal("Arm on a closed queue must report ready")
		}
	})
}

func TestWaitAnyWokenByPut(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		q1 := New[int](k, "q1", 4)
		q2 := New[int](k, "q2", 4)
		wg := simtime.NewWaitGroup(k)
		wg.Go("consumer", func() {
			idx, err := WaitAny(context.Background(), k, 0, q1, q2)
			if err != nil || idx != 1 {
				t.Errorf("WaitAny = %d, %v; want 1, nil", idx, err)
			}
			if k.Now() != 30*time.Millisecond {
				t.Errorf("woke at %v, want exactly 30ms", k.Now())
			}
		})
		wg.Go("producer", func() {
			_ = k.Sleep(context.Background(), 30*time.Millisecond)
			_ = q2.Put(context.Background(), 7)
		})
		_ = wg.Wait(context.Background())
	})
}

func TestWaitAnyPriorityOrder(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		fast := New[int](k, "fast", 4)
		slow := New[int](k, "slow", 4)
		_ = fast.Put(context.Background(), 1)
		_ = slow.Put(context.Background(), 2)
		idx, err := WaitAny(context.Background(), k, 0, fast, slow)
		if err != nil || idx != 0 {
			t.Fatalf("WaitAny = %d, %v; want the fast queue (0) when both ready", idx, err)
		}
	})
}

func TestWaitAnyWokenByClose(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		q := New[int](k, "q", 4)
		wg := simtime.NewWaitGroup(k)
		wg.Go("consumer", func() {
			idx, err := WaitAny(context.Background(), k, 0, q)
			if err != nil || idx != 0 {
				t.Errorf("WaitAny = %d, %v; want 0, nil on close", idx, err)
			}
			if _, _, err := q.TryGet(); err != ErrClosed {
				t.Errorf("TryGet after close = %v, want ErrClosed", err)
			}
		})
		wg.Go("closer", func() {
			_ = k.Sleep(context.Background(), time.Millisecond)
			q.Close()
		})
		_ = wg.Wait(context.Background())
	})
}

// TestWakePassedOnWhenSelectorClaimed pins the no-lost-wakeup property: a
// subscription whose selector was already claimed by another source must not
// swallow a put's wakeup — the queue skips it and wakes the next waiter (a
// blocked Get) instead.
func TestWakePassedOnWhenSelectorClaimed(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		q := New[int](k, "q", 4)
		sel := simtime.NewSelector(k)
		sel.Reset()
		if q.Arm(sel, 5) {
			t.Fatal("empty queue reported ready")
		}
		// Another source claims the selector; its q subscription is now dead
		// but still registered (Disarm has not run yet).
		if !sel.TryWake(99) {
			t.Fatal("claim failed")
		}
		wg := simtime.NewWaitGroup(k)
		wg.Go("getter", func() {
			// First in line behind the dead subscription.
			v, err := q.Get(context.Background())
			if err != nil || v != 42 {
				t.Errorf("Get = %d, %v; want 42, nil", v, err)
			}
		})
		wg.Go("producer", func() {
			_ = k.Sleep(context.Background(), time.Millisecond)
			_ = q.Put(context.Background(), 42)
		})
		_ = wg.Wait(context.Background())
		if idx, err := sel.Wait(context.Background(), 0); err != nil || idx != 99 {
			t.Fatalf("Wait = %d, %v; want the claiming source's index 99", idx, err)
		}
		q.Disarm(sel)
	})
}
