package queue

import (
	"context"
	"testing"

	"github.com/minatoloader/minato/internal/simtime"
)

func BenchmarkUncontendedPutGet(b *testing.B) {
	rt := simtime.NewReal(1)
	q := New[int](rt, "bench", 1024)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.Put(ctx, i); err != nil {
			b.Fatal(err)
		}
		if _, err := q.Get(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTryPutTryGet(b *testing.B) {
	rt := simtime.NewReal(1)
	q := New[int](rt, "bench", 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := q.TryPut(i); !ok {
			b.Fatal("full")
		}
		if _, ok, _ := q.TryGet(); !ok {
			b.Fatal("empty")
		}
	}
}

func BenchmarkProducerConsumerVirtual(b *testing.B) {
	// Measures the virtual-kernel handoff cost: one producer, one
	// consumer, b.N items through a small queue.
	k := simtime.NewVirtual()
	b.ReportAllocs()
	b.ResetTimer()
	k.Run(func() {
		q := New[int](k, "bench", 8)
		wg := simtime.NewWaitGroup(k)
		wg.Go("producer", func() {
			for i := 0; i < b.N; i++ {
				if err := q.Put(context.Background(), i); err != nil {
					return
				}
			}
			q.Close()
		})
		for {
			if _, err := q.Get(context.Background()); err != nil {
				break
			}
		}
		_ = wg.Wait(context.Background())
	})
}
