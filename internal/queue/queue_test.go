package queue

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

func TestFIFOOrder(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		q := New[int](k, "q", 4)
		for i := 0; i < 4; i++ {
			if err := q.Put(context.Background(), i); err != nil {
				t.Fatalf("Put(%d): %v", i, err)
			}
		}
		for i := 0; i < 4; i++ {
			v, err := q.Get(context.Background())
			if err != nil || v != i {
				t.Fatalf("Get = %d,%v want %d,nil", v, err, i)
			}
		}
	})
}

func TestPutBlocksWhenFull(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		q := New[int](k, "q", 1)
		_ = q.Put(context.Background(), 1)
		var putDone atomic.Bool
		wg := simtime.NewWaitGroup(k)
		wg.Go("producer", func() {
			_ = q.Put(context.Background(), 2)
			putDone.Store(true)
		})
		_ = k.Sleep(context.Background(), time.Second)
		if putDone.Load() {
			t.Fatal("Put returned while queue was full")
		}
		if v, _ := q.Get(context.Background()); v != 1 {
			t.Fatalf("Get = %d, want 1", v)
		}
		_ = wg.Wait(context.Background())
		if !putDone.Load() {
			t.Fatal("Put did not complete after space freed")
		}
	})
}

func TestGetBlocksWhenEmptyAndWakesOnPut(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		q := New[string](k, "q", 2)
		wg := simtime.NewWaitGroup(k)
		var got atomic.Value
		wg.Go("consumer", func() {
			v, err := q.Get(context.Background())
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			got.Store(v)
		})
		_ = k.Sleep(context.Background(), 5*time.Second)
		if err := q.Put(context.Background(), "hello"); err != nil {
			t.Fatal(err)
		}
		_ = wg.Wait(context.Background())
		if got.Load() != "hello" {
			t.Fatalf("got %v", got.Load())
		}
	})
}

func TestCloseWakesAllAndDrains(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		q := New[int](k, "q", 8)
		_ = q.Put(context.Background(), 42)
		wg := simtime.NewWaitGroup(k)
		var errs atomic.Int64
		// Two consumers: one gets the item, the other gets ErrClosed.
		var gotItem atomic.Int64
		for i := 0; i < 2; i++ {
			wg.Go("consumer", func() {
				v, err := q.Get(context.Background())
				if err == ErrClosed {
					errs.Add(1)
				} else if err == nil {
					gotItem.Store(int64(v))
				}
			})
		}
		_ = k.Sleep(context.Background(), time.Second)
		q.Close()
		_ = wg.Wait(context.Background())
		if gotItem.Load() != 42 || errs.Load() != 1 {
			t.Fatalf("gotItem=%d errs=%d, want 42,1", gotItem.Load(), errs.Load())
		}
		if err := q.Put(context.Background(), 1); err != ErrClosed {
			t.Fatalf("Put after close = %v, want ErrClosed", err)
		}
		// Idempotent.
		q.Close()
	})
}

func TestTryPutTryGet(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		q := New[int](k, "q", 1)
		if ok, err := q.TryPut(1); !ok || err != nil {
			t.Fatalf("TryPut = %v,%v", ok, err)
		}
		if ok, _ := q.TryPut(2); ok {
			t.Fatal("TryPut succeeded on full queue")
		}
		if v, ok, _ := q.TryGet(); !ok || v != 1 {
			t.Fatalf("TryGet = %d,%v", v, ok)
		}
		if _, ok, _ := q.TryGet(); ok {
			t.Fatal("TryGet succeeded on empty queue")
		}
		q.Close()
		if _, _, err := q.TryGet(); err != ErrClosed {
			t.Fatalf("TryGet after close: %v", err)
		}
		if _, err := q.TryPut(3); err != ErrClosed {
			t.Fatalf("TryPut after close: %v", err)
		}
	})
}

func TestMultiProducerMultiConsumerNoLossNoDup(t *testing.T) {
	k := simtime.NewVirtual()
	const producers, consumers, perProducer = 8, 8, 200
	var mu sync.Mutex
	seen := make(map[int]int)
	k.Run(func() {
		q := New[int](k, "q", 5)
		wg := simtime.NewWaitGroup(k)
		cwg := simtime.NewWaitGroup(k)
		for p := 0; p < producers; p++ {
			p := p
			wg.Go("producer", func() {
				for i := 0; i < perProducer; i++ {
					_ = k.Sleep(context.Background(), time.Duration(1+(p+i)%3)*time.Millisecond)
					if err := q.Put(context.Background(), p*perProducer+i); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				}
			})
		}
		for c := 0; c < consumers; c++ {
			cwg.Go("consumer", func() {
				for {
					v, err := q.Get(context.Background())
					if err == ErrClosed {
						return
					}
					if err != nil {
						t.Errorf("Get: %v", err)
						return
					}
					mu.Lock()
					seen[v]++
					mu.Unlock()
				}
			})
		}
		_ = wg.Wait(context.Background())
		q.Close()
		_ = cwg.Wait(context.Background())
	})
	if len(seen) != producers*perProducer {
		t.Fatalf("saw %d distinct items, want %d", len(seen), producers*perProducer)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("item %d seen %d times", v, n)
		}
	}
}

func TestStatsOccupancy(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		q := New[int](k, "q", 10)
		// Hold 5 items for 10s, then drain and idle for 10s: avg ≈ 2.5.
		for i := 0; i < 5; i++ {
			_ = q.Put(context.Background(), i)
		}
		_ = k.Sleep(context.Background(), 10*time.Second)
		for i := 0; i < 5; i++ {
			_, _ = q.Get(context.Background())
		}
		_ = k.Sleep(context.Background(), 10*time.Second)
		s := q.Stats()
		if s.Puts != 5 || s.Gets != 5 || s.MaxLen != 5 {
			t.Fatalf("stats = %+v", s)
		}
		if s.AvgOccupancy < 2.2 || s.AvgOccupancy > 2.8 {
			t.Fatalf("AvgOccupancy = %.2f, want ≈2.5", s.AvgOccupancy)
		}
	})
}

// TestQuickFIFOPreserved property: for any sequence of puts by a single
// producer, a single consumer sees the same sequence.
func TestQuickFIFOPreserved(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) > 500 {
			vals = vals[:500]
		}
		k := simtime.NewVirtual()
		ok := true
		k.Run(func() {
			q := New[int16](k, "q", 3)
			wg := simtime.NewWaitGroup(k)
			wg.Go("producer", func() {
				for _, v := range vals {
					if err := q.Put(context.Background(), v); err != nil {
						ok = false
						return
					}
				}
				q.Close()
			})
			i := 0
			for {
				v, err := q.Get(context.Background())
				if err == ErrClosed {
					break
				}
				if i >= len(vals) || v != vals[i] {
					ok = false
					break
				}
				i++
			}
			ok = ok && i == len(vals)
			_ = wg.Wait(context.Background())
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestGetZeroesVacatedSlots is the regression test for the vacated-slot
// leak: a popped pointer must not stay reachable from the ring's backing
// array, or the queue pins every element it ever carried until the slot is
// overwritten (if ever).
func TestGetZeroesVacatedSlots(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		q := New[*int](k, "q", 8)
		for i := 0; i < 5; i++ {
			v := i
			_ = q.Put(context.Background(), &v)
		}
		for i := 0; i < 5; i++ {
			if v, err := q.Get(context.Background()); err != nil || *v != i {
				t.Fatalf("Get = %v, %v", v, err)
			}
		}
		q.mu.Lock()
		defer q.mu.Unlock()
		for i, p := range q.buf {
			if p != nil {
				t.Fatalf("ring slot %d still holds %v after pop", i, *p)
			}
		}
	})
}

// TestWaitListDropsWokenSelectors: waiter rings must likewise zero their
// slots, so a selector does not stay reachable from the queue after its
// park ended (the same leak class, for waiters instead of items).
func TestWaitListDropsWokenSelectors(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		q := New[int](k, "q", 1)
		wg := simtime.NewWaitGroup(k)
		var got atomic.Int64
		for i := 0; i < 4; i++ {
			wg.Go("consumer", func() {
				v, err := q.Get(context.Background())
				if err == nil {
					got.Add(int64(v))
				}
			})
		}
		_ = k.Sleep(context.Background(), time.Second) // all four parked
		for i := 0; i < 4; i++ {
			_ = q.Put(context.Background(), 1)
		}
		_ = wg.Wait(context.Background())
		if got.Load() != 4 {
			t.Fatalf("consumers got %d items, want 4", got.Load())
		}
		q.mu.Lock()
		defer q.mu.Unlock()
		if q.getWaiters.n != 0 {
			t.Fatalf("%d waiters still registered", q.getWaiters.n)
		}
		for i, e := range q.getWaiters.ring {
			if e.sel != nil {
				t.Fatalf("waiter ring slot %d still holds a selector", i)
			}
		}
	})
}

// TestBlockingOpsAllocationFree: after warm-up, blocking handoffs through
// the queue must not allocate (pooled selectors, ring-backed waiter lists).
func TestBlockingOpsAllocationFree(t *testing.T) {
	rt := simtime.NewReal(1)
	q := New[int](rt, "q", 4)
	for i := 0; i < 64; i++ { // warm the selector pool and rings
		_, _ = q.TryPut(i)
		_, _, _ = q.TryGet()
	}
	avg := testing.AllocsPerRun(200, func() {
		_, _ = q.TryPut(1)
		_, _, _ = q.TryGet()
	})
	if avg > 0 {
		t.Fatalf("TryPut+TryGet allocates %.1f objects per op, want 0", avg)
	}
}

// TestKickRedeliversStrandedWakeup: a consumer that claims a wakeup but
// decides not to consume (e.g. a retiring worker) calls Kick so the item
// reaches a parked peer instead of being stranded.
func TestKickRedeliversStrandedWakeup(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		q := New[int](k, "q", 4)
		var got atomic.Int64
		wg := simtime.NewWaitGroup(k)
		wg.Go("peer", func() {
			if v, err := q.Get(context.Background()); err == nil {
				got.Add(int64(v))
			}
		})
		_ = k.Sleep(context.Background(), time.Second) // peer parked
		_ = q.Put(context.Background(), 7)
		// Simulate a woken consumer abandoning its claim: the item is
		// buffered, the peer may or may not have been the one woken; Kick
		// must ensure a parked consumer is (re-)woken while items remain.
		q.Kick()
		_ = wg.Wait(context.Background())
		if got.Load() != 7 {
			t.Fatalf("peer got %d, want 7", got.Load())
		}
		q.Kick() // empty queue: must be a no-op, not a spurious wake storm
	})
}
