package report

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/stats"
)

func TestTableRenderAligned(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"name", "value"},
		Rows:   [][]string{{"a", "1"}, {"longer-name", "22"}},
	}
	out := tb.Render()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Header and separator widths line up.
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("separator misaligned:\n%s", out)
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	err := WriteCSV(dir, "x", []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0] != "a" || rows[2][1] != "4" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	dir := t.TempDir()
	a := &stats.TimeSeries{Name: "cpu"}
	b := &stats.TimeSeries{Name: "gpu"}
	for i := 0; i < 3; i++ {
		a.Append(time.Duration(i)*time.Second, float64(i))
		b.Append(time.Duration(i)*time.Second, float64(10*i))
	}
	if err := WriteSeriesCSV(dir, "usage", a, b); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(filepath.Join(dir, "usage.csv"))
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][1] != "cpu" || rows[0][2] != "gpu" {
		t.Fatalf("header = %v", rows[0])
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Fatal("F")
	}
	if Seconds(1500*time.Millisecond) != "1.5" {
		t.Fatal("Seconds")
	}
	if Pct(42.25) != "42.2%" && Pct(42.25) != "42.3%" {
		t.Fatalf("Pct = %s", Pct(42.25))
	}
	if MB(2_500_000) != "2.5" {
		t.Fatalf("MB = %s", MB(2_500_000))
	}
}
