// Package report renders experiment results as aligned text tables and CSV
// files, the formats cmd/minato-bench emits for every reproduced table and
// figure.
package report

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/minatoloader/minato/internal/stats"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render returns the table as aligned text.
func (t Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// WriteCSV writes header+rows to dir/name.csv, creating dir as needed.
func WriteCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

// WriteTableCSV writes a Table to dir/name.csv.
func WriteTableCSV(dir, name string, t Table) error {
	return WriteCSV(dir, name, t.Header, t.Rows)
}

// WriteSeriesCSV writes one or more aligned-by-row time series to
// dir/name.csv with a time column in seconds.
func WriteSeriesCSV(dir, name string, series ...*stats.TimeSeries) error {
	header := []string{"t_seconds"}
	maxLen := 0
	for _, ts := range series {
		header = append(header, ts.Name)
		if len(ts.Points) > maxLen {
			maxLen = len(ts.Points)
		}
	}
	rows := make([][]string, 0, maxLen)
	for i := 0; i < maxLen; i++ {
		row := make([]string, 0, len(header))
		tset := false
		for _, ts := range series {
			if i < len(ts.Points) && !tset {
				row = append(row, F(ts.Points[i].T.Seconds(), 1))
				tset = true
				break
			}
		}
		if !tset {
			row = append(row, "")
		}
		for _, ts := range series {
			if i < len(ts.Points) {
				row = append(row, F(ts.Points[i].V, 2))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	return WriteCSV(dir, name, header, rows)
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Seconds formats a duration as seconds with one decimal.
func Seconds(d time.Duration) string { return fmt.Sprintf("%.1f", d.Seconds()) }

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// MB formats bytes as megabytes.
func MB(b int64) string { return fmt.Sprintf("%.1f", float64(b)/1e6) }
