package report

import (
	"time"

	"github.com/minatoloader/minato/internal/chaos"
)

// StallBreakdown is the shared stall-attribution block embedded by the
// single-session Report and the multi-node Report: where consumer time
// went when it was not training, plus the SLO view of step-time jitter
// and the fault windows the run absorbed. The critical-path analyzer
// (internal/trace) fills exactly this shape from a recorded trace; runs
// without tracing fill it from the consumers' stall counters — the two
// sources are stamped at the same virtual instants and agree to the
// nanosecond.
type StallBreakdown struct {
	// DataStall is total consumer time blocked on the loader — input
	// starvation, the paper's central attribution.
	DataStall time.Duration
	// BarrierStall is total consumer time parked at the step barrier for
	// slower ranks (zero on a single machine).
	BarrierStall time.Duration
	// NetworkStall is total consumer time in gradient synchronization
	// over the fabric (zero on a single machine).
	NetworkStall time.Duration

	// StepP50 and StepP99 are batch-completion interval quantiles from a
	// log-bucketed histogram — a fault that stalls a handful of steps
	// leaves the mean almost untouched and shows up here.
	StepP50 time.Duration
	StepP99 time.Duration

	// Faults records each applied chaos event window, in application
	// order: when it took effect, when it cleared, the stall accumulated
	// while it was open, and the measured recovery.
	Faults []chaos.FaultStat
}

// RecoveryTime returns the largest fault recovery in the breakdown (zero
// when nothing needed recovering).
func (s *StallBreakdown) RecoveryTime() time.Duration {
	var max time.Duration
	for _, f := range s.Faults {
		if f.Recovery > max {
			max = f.Recovery
		}
	}
	return max
}
