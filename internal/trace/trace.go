// Package trace is the simulator's deterministic span recorder: every
// layer (storage, caches, workers, devices, the interconnect, the service
// wire, chaos) stamps what it did and when from the virtual clock, and the
// exporters turn the result into a Perfetto-viewable timeline or a
// per-batch critical-path attribution.
//
// # Determinism
//
// A span's fields are pure functions of the simulation: start and end come
// from simtime.Runtime.Now(), and the identity fields (stage, tenant,
// node, key, seq) come from the simulated entities themselves — never from
// allocation order, goroutine identity, or a shared counter. Tasks reach
// the recorder's mutex in OS-scheduling order, so the *append order* of
// spans is not reproducible, but the *set* of spans is: canonicalizing
// lane labels (Canonicalize) and sorting (Compare) before export yields a
// byte-identical trace across runs, including under -race. This is the
// same invariant the netsim fabric maintains for flows: deterministic in
// virtual time, not "deterministic only if the scheduler cooperates".
//
// The guarantee is exactly as strong as the simulation's own: byte
// identity holds wherever every event is a pure function of virtual time —
// single-consumer sessions, multi-node jobs (each rank owns its loader),
// chaos replays. Two simulator behaviors are weaker than that, and the
// trace inherits them. When one loader runs several batch constructors
// (GPUs > 1), which racing constructor wins each sample during starvation
// is scheduler-dependent, so batch composition — and with it seal-time
// micro-timing at the stream tail — can vary between runs even though
// every stall aggregate is reproducible. Likewise, when several tenants
// contend for a shared disk or worker core at the same virtual instant,
// the service order is scheduler-dependent. Canonicalize removes the one
// nondeterminism tracing would otherwise *add* (lane labels); it cannot —
// and does not try to — make the trace more deterministic than the
// simulation it records.
//
// # Cost
//
// Spans are stored in pooled fixed-size chunks behind one mutex: the
// steady-state record path is a lock, a struct copy, and an index bump —
// no allocation once the chunk pool has warmed. With tracing off the
// recorder pointer is nil and every Record call is a nil-check that the
// compiler can see through, so the headline bench's near-zero-alloc hot
// path is untouched.
package trace

import (
	"sort"
	"sync"
	"time"
)

// Stage identifies which layer produced a span and what it was doing.
type Stage uint8

// The instrumented stages, one block per layer. Values are part of the
// canonical sort order; append new stages at the end of their block's
// numeric range rather than renumbering.
const (
	// Storage: disk occupancy, remote fetches, and the page cache's
	// single-flight protocol (a follower's wait references its leader's
	// fill through the shared (tenant, key) identity).
	StageDiskRead Stage = iota + 1
	StageRemoteFetch
	StageCacheHit  // instant: page-cache hit
	StageCacheFill // leader: miss → fetch → install
	StageCacheWait // follower: parked on the leader's fill

	// Materialized preprocessed-sample cache (matcache).
	StageMatHit  // instant: preprocessing skipped entirely
	StageMatFill // leader: claim → preprocess → Complete
	StageMatWait // follower: parked on the leader's fill

	// Worker pipeline inside the loader core.
	StageTransform // one pipeline execution on a worker
	StageQueueWait // batch parked in the delivery queue until Next
	StageAssemble  // batch construction window (first sample → sealed)

	// Consumer step anatomy. These tile each consumer's step interval:
	// DataWait + Copy + GPUStep (+ BarrierWait + NetworkWait or Downtime
	// in a distributed run) account for the whole batch latency.
	StageDataWait
	StageCopy
	StageGPUStep
	StageBarrierWait
	StageNetworkWait
	StageDowntime

	// Device occupancy (GPU compute under the shared-capacity model).
	StageDeviceRun

	// Interconnect: a flow's lifetime and its rate-change bends.
	StageFlow
	StageFlowRate // instant: flow reshared to Detail bytes/s

	// Service wire: one protocol frame's transfer (Detail = frame kind).
	StageFrame

	// Chaos: an applied fault (instant) and its measured window.
	StageFault
	StageFaultWindow

	stageCount
)

// stageNames is the export vocabulary; indexes match the Stage constants.
var stageNames = [stageCount]string{
	StageDiskRead:    "disk-read",
	StageRemoteFetch: "remote-fetch",
	StageCacheHit:    "cache-hit",
	StageCacheFill:   "cache-fill",
	StageCacheWait:   "cache-wait",
	StageMatHit:      "mat-hit",
	StageMatFill:     "mat-fill",
	StageMatWait:     "mat-wait",
	StageTransform:   "transform",
	StageQueueWait:   "queue-wait",
	StageAssemble:    "assemble",
	StageDataWait:    "data-wait",
	StageCopy:        "h2d-copy",
	StageGPUStep:     "gpu-step",
	StageBarrierWait: "barrier-wait",
	StageNetworkWait: "network-wait",
	StageDowntime:    "downtime",
	StageDeviceRun:   "device-run",
	StageFlow:        "flow",
	StageFlowRate:    "flow-rate",
	StageFrame:       "frame",
	StageFault:       "fault",
	StageFaultWindow: "fault-window",
}

// String returns the stage's export name.
func (s Stage) String() string {
	if s < stageCount && stageNames[s] != "" {
		return stageNames[s]
	}
	return "unknown"
}

// Span is one recorded interval (or instant, when Start == End). The
// identity fields link related spans across layers: a follower's
// StageCacheWait carries the same (Tenant, Key) as its leader's
// StageCacheFill, and a consumer's step spans share (Node, Key, Seq) so
// the critical-path analyzer can reassemble each batch's journey.
type Span struct {
	Start, End time.Duration
	Stage      Stage
	// Tenant is the session's tenant id on a shared substrate (0 when the
	// run has a single tenant).
	Tenant int32
	// Node is the rank in a multi-node run, or the fabric endpoint for
	// netsim/service spans (0 on a single machine).
	Node int32
	// Key is the stage-specific identity: sample index for storage and
	// worker spans, GPU index for step spans, device id for occupancy,
	// link pair for flows, stream id for frames.
	Key int64
	// Seq is the stage-specific sequence: batch sequence for step and
	// assembly spans, flow entry time for interconnect spans, frame
	// sequence on the wire.
	Seq int64
	// Detail is auxiliary payload: bytes moved, a rate in bytes/s, a
	// chaos event kind, a frame kind.
	Detail int64
}

// Compare orders spans canonically: by start, end, stage, then the
// identity fields. Two spans equal under Compare are identical in every
// field, so the canonical order is total over distinct spans and the
// sorted trace is a pure function of the span *set* — recording order
// cannot leak into an export.
func Compare(a, b Span) int {
	switch {
	case a.Start != b.Start:
		return cmpDur(a.Start, b.Start)
	case a.End != b.End:
		return cmpDur(a.End, b.End)
	case a.Stage != b.Stage:
		return int(a.Stage) - int(b.Stage)
	case a.Tenant != b.Tenant:
		return int(a.Tenant - b.Tenant)
	case a.Node != b.Node:
		return int(a.Node - b.Node)
	case a.Key != b.Key:
		return cmpI64(a.Key, b.Key)
	case a.Seq != b.Seq:
		return cmpI64(a.Seq, b.Seq)
	default:
		return cmpI64(a.Detail, b.Detail)
	}
}

func cmpDur(a, b time.Duration) int {
	if a < b {
		return -1
	}
	return 1
}

func cmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// chunkSpans sizes one pooled chunk. 512 spans ≈ 28 KiB — large enough
// that a busy session amortizes the pool round-trip, small enough that an
// idle tenant doesn't pin much.
const chunkSpans = 512

type chunk struct {
	spans [chunkSpans]Span
	n     int
}

// chunkPool recycles chunks across recorders and resets, so repeated
// traced sessions reach a zero-allocation recording steady state.
var chunkPool = sync.Pool{New: func() any { return new(chunk) }}

// Recorder accumulates spans from every layer of a run. A nil *Recorder
// is the disabled state: all methods are no-ops, and the nil check is the
// entire hot-path cost. Safe for concurrent use by tracked tasks.
type Recorder struct {
	mu     sync.Mutex
	chunks []*chunk
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether the recorder is live (non-nil). Call sites with
// pre-span work (e.g. capturing a start time they would not otherwise
// need) gate on it.
func (r *Recorder) Enabled() bool { return r != nil }

// Record appends one span. No-op on a nil recorder.
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	c := r.tail()
	c.spans[c.n] = s
	c.n++
	r.mu.Unlock()
}

// Instant records a zero-length span at t. No-op on a nil recorder.
func (r *Recorder) Instant(s Span, t time.Duration) {
	if r == nil {
		return
	}
	s.Start, s.End = t, t
	r.Record(s)
}

// tail returns the chunk with room for one more span. Caller holds r.mu.
func (r *Recorder) tail() *chunk {
	if n := len(r.chunks); n > 0 {
		if c := r.chunks[n-1]; c.n < chunkSpans {
			return c
		}
	}
	c := chunkPool.Get().(*chunk)
	c.n = 0
	r.chunks = append(r.chunks, c)
	return c
}

// Len returns the number of recorded spans. Zero on a nil recorder.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.chunks {
		n += c.n
	}
	return n
}

// Snapshot returns every recorded span with lane labels canonicalized
// (see Canonicalize) in canonical order. The result is a copy; recording
// may continue. Nil on a nil recorder.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	n := 0
	for _, c := range r.chunks {
		n += c.n
	}
	out := make([]Span, 0, n)
	for _, c := range r.chunks {
		out = append(out, c.spans[:c.n]...)
	}
	r.mu.Unlock()
	Canonicalize(out)
	Sort(out)
	return out
}

// Reset drops every recorded span, returning the chunks to the shared
// pool. No-op on a nil recorder.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	chunks := r.chunks
	r.chunks = nil
	r.mu.Unlock()
	for _, c := range chunks {
		chunkPool.Put(c)
	}
}

// Sort orders spans canonically in place (see Compare).
func Sort(spans []Span) {
	sort.Slice(spans, func(i, j int) bool { return Compare(spans[i], spans[j]) < 0 })
}

// Filter returns the spans keep admits, preserving order.
func Filter(spans []Span, keep func(Span) bool) []Span {
	out := make([]Span, 0, len(spans))
	for _, s := range spans {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}
