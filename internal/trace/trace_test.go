package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"time"
)

func span(start, end int64, st Stage, tenant, node int32, key, seq, detail int64) Span {
	return Span{Start: time.Duration(start), End: time.Duration(end), Stage: st,
		Tenant: tenant, Node: node, Key: key, Seq: seq, Detail: detail}
}

// A trace must be a pure function of the span *set*: recording the same
// spans in any order yields identical snapshots and identical exported
// bytes.
func TestSnapshotOrderIndependent(t *testing.T) {
	base := make([]Span, 0, 3*chunkSpans+17)
	for i := 0; i < cap(base); i++ {
		base = append(base, span(int64(i%97)*1000, int64(i%97)*1000+int64(i%13+1),
			Stage(i%int(stageCount-1)+1), int32(i%4), int32(i%3), int64(i%29), int64(i), int64(i*3)))
	}
	perm := rand.New(rand.NewSource(42)).Perm(len(base))

	r1, r2 := NewRecorder(), NewRecorder()
	for _, s := range base {
		r1.Record(s)
	}
	for _, i := range perm {
		r2.Record(base[i])
	}
	s1, s2 := r1.Snapshot(), r2.Snapshot()
	if len(s1) != len(base) || len(s2) != len(base) {
		t.Fatalf("snapshot lengths %d/%d, want %d", len(s1), len(s2), len(base))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("span %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}

	var b1, b2 bytes.Buffer
	if err := WriteChrome(&b1, s1); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b2, s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("exported bytes differ for the same span set")
	}
}

func TestChromeExportIsValidJSON(t *testing.T) {
	r := NewRecorder()
	r.Record(span(1000, 5000, StageDiskRead, 1, 0, 7, 0, 4096))
	r.Record(span(2000, 2000, StageCacheHit, 1, 0, 7, 0, 0)) // instant
	r.Record(span(0, 9000, StageDataWait, 0, 2, 1, 3, 0))
	r.Record(span(500, 600, StageFault, 0, 1, 0, 0, 2))
	var b bytes.Buffer
	if err := WriteChrome(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(b.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	// 4 spans + metadata (2 per distinct track).
	if len(events) < 4 {
		t.Fatalf("got %d events, want at least 4", len(events))
	}
	sawX, sawI := false, false
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			sawX = true
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
		case "i":
			sawI = true
		}
	}
	if !sawX || !sawI {
		t.Fatalf("want both complete and instant events (X=%v i=%v)", sawX, sawI)
	}
}

// The disabled recorder must cost nothing on the hot path: no allocations,
// ever, for any method.
func TestNilRecorderAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(Span{Start: 1, End: 2, Stage: StageDiskRead, Key: 3})
		r.Instant(Span{Stage: StageCacheHit}, 5)
		if r.Enabled() || r.Len() != 0 || r.Snapshot() != nil {
			t.Fatal("nil recorder misbehaves")
		}
		r.Reset()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f per op, want 0", allocs)
	}
}

// The enabled recorder's steady state must also be allocation-free once
// its chunks have warmed (the <5% overhead budget is wall time, not GC).
func TestWarmRecorderAllocs(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 4*chunkSpans; i++ { // warm the chunk pool
		r.Record(Span{Seq: int64(i)})
	}
	r.Reset()
	i := int64(0)
	allocs := testing.AllocsPerRun(2*chunkSpans, func() {
		r.Record(Span{Seq: i})
		i++
	})
	// Chunk-list growth amortizes to well under one allocation per span.
	if allocs > 0.1 {
		t.Fatalf("warm recorder allocated %.2f per span, want ~0", allocs)
	}
}

func TestCriticalPathTilesLatency(t *testing.T) {
	r := NewRecorder()
	// Batch (node 0, gpu 1, seq 5): wait 0-40, copy 40-50, step 50-100,
	// barrier 100-130, network 130-150.
	r.Record(span(0, 40, StageDataWait, 0, 0, 1, 5, 0))
	r.Record(span(40, 50, StageCopy, 0, 0, 1, 5, 0))
	r.Record(span(50, 100, StageGPUStep, 0, 0, 1, 5, 0))
	r.Record(span(100, 130, StageBarrierWait, 0, 0, 1, 5, 0))
	r.Record(span(130, 150, StageNetworkWait, 0, 0, 1, 5, 0))
	// A second batch with an uninstrumented gap (Other).
	r.Record(span(150, 160, StageDataWait, 0, 0, 1, 6, 0))
	r.Record(span(170, 200, StageGPUStep, 0, 0, 1, 6, 0))
	// Non-step spans must not disturb the paths.
	r.Record(span(0, 1000, StageDiskRead, 0, 0, 99, 0, 0))

	paths := CriticalPath(r.Snapshot())
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	p := paths[0]
	if p.Seq != 5 || p.Latency() != 150 || p.Other != 0 {
		t.Fatalf("path 0: %+v", p)
	}
	if p.DataWait != 40 || p.Copy != 10 || p.GPUStep != 50 || p.BarrierWait != 30 || p.NetworkWait != 20 {
		t.Fatalf("path 0 stages: %+v", p)
	}
	q := paths[1]
	if q.Seq != 6 || q.Latency() != 50 || q.Other != 10 {
		t.Fatalf("path 1: %+v", q)
	}
	sum := q.DataWait + q.Copy + q.GPUStep + q.BarrierWait + q.NetworkWait + q.Downtime + q.Other
	if sum != q.Latency() {
		t.Fatalf("stages sum %v != latency %v", sum, q.Latency())
	}

	a := Attribute(paths, nil)
	if a.Batches != 2 || a.DataWait != 50 || a.GPUStep != 80 || a.Other != 10 {
		t.Fatalf("attribution: %+v", a)
	}
	only5 := Attribute(paths, func(p BatchPath) bool { return p.Seq == 5 })
	if only5.Batches != 1 || only5.NetworkWait != 20 {
		t.Fatalf("filtered attribution: %+v", only5)
	}
}

func TestRecorderResetRecycles(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 3*chunkSpans; i++ {
		r.Record(Span{Seq: int64(i)})
	}
	if r.Len() != 3*chunkSpans {
		t.Fatalf("len %d", r.Len())
	}
	r.Reset()
	if r.Len() != 0 || r.Snapshot() != nil && len(r.Snapshot()) != 0 {
		t.Fatal("reset left spans behind")
	}
	r.Record(Span{Seq: 1})
	if r.Len() != 1 {
		t.Fatal("record after reset failed")
	}
}
