package trace

import "sort"

// Lane canonicalization. Most span identity fields are pure functions of
// the simulation, but one is not: which *lane* serviced a batch when
// several interchangeable peers woke at the same virtual instant. A
// loader's batch constructors race for samples, so whether batch 17 lands
// in consumer queue 0 or queue 2 — and therefore which GPU device runs its
// step — is decided by the Go scheduler, not by virtual time. The peers
// are symmetric, so every *timing* in the trace is unaffected; only the
// lane labels permute between runs (visibly so under -race, which
// perturbs goroutine scheduling).
//
// Canonicalize re-derives those labels from the label-erased span multiset
// itself: per tenant and node, batch journeys are packed onto lanes
// greedily in canonical order (each journey takes the lowest-numbered lane
// that is free for its occupancy interval), and device-occupancy spans are
// packed the same way. The result is a valid lane assignment — journeys
// sharing a lane never overlap, and no more lanes are used than were
// genuinely concurrent — that is a pure function of the span set, making
// the exported trace byte-identical across runs and schedulers.

// laneStage reports whether s's Key is a consumer-lane label subject to
// canonicalization. These stages link to a specific batch via (Tenant,
// Node, Seq) plus the recorded label (see entityKey), so relabeling keeps
// each journey's stages on one lane.
func laneStage(s Stage) bool {
	switch s {
	case StageAssemble, StageQueueWait,
		StageDataWait, StageCopy, StageGPUStep,
		StageBarrierWait, StageNetworkWait, StageDowntime:
		return true
	}
	return false
}

// occStage reports whether s occupies its consumer lane exclusively. The
// packing constraint uses only these: an assemble or queue-wait span
// legitimately overlaps the lane's previous step (the constructor builds
// batch i+1 while batch i trains), so they ride along with their journey
// without constraining it.
func occStage(s Stage) bool {
	switch s {
	case StageDataWait, StageCopy, StageGPUStep,
		StageBarrierWait, StageNetworkWait, StageDowntime:
		return true
	}
	return false
}

// Canonicalize rewrites scheduler-dependent lane labels in place: the Key
// of consumer-stage spans (per batch journey) and the Key and Seq of
// device-occupancy spans. Call it on the full span set of a run — the
// assignment is a pure function of that set. Snapshot applies it
// automatically.
func Canonicalize(spans []Span) {
	canonConsumers(spans)
	canonDevices(spans)
}

type groupKey struct {
	tenant int32
	node   int32
}

// entityKey identifies one batch journey within a (tenant, node) group.
// Seq alone is not enough: a distributed rank with several GPUs consumes
// the same round on every GPU concurrently, so the journeys of one round
// share Seq and differ only in their recorded lane label. Including that
// label keeps concurrent same-seq journeys apart; the label itself is
// still erased by the relabeling below.
type entityKey struct {
	seq int64
	key int64
}

// canonConsumers packs each (tenant, node)'s batch journeys onto lanes.
func canonConsumers(spans []Span) {
	type entity struct {
		seq              int64
		occStart, occEnd int64 // exclusive-occupancy interval, ns
		hasOcc           bool
		spans            []int
		erased           []Span // memoized label-erased sorted spans (tiebreak)
	}
	groups := map[groupKey]map[entityKey]*entity{}
	for i, s := range spans {
		if !laneStage(s.Stage) {
			continue
		}
		g := groupKey{s.Tenant, s.Node}
		ents := groups[g]
		if ents == nil {
			ents = map[entityKey]*entity{}
			groups[g] = ents
		}
		ek := entityKey{s.Seq, s.Key}
		e := ents[ek]
		if e == nil {
			e = &entity{seq: s.Seq}
			ents[ek] = e
		}
		e.spans = append(e.spans, i)
		start, end := int64(s.Start), int64(s.End)
		if occStage(s.Stage) {
			if !e.hasOcc || start < e.occStart {
				e.occStart = start
			}
			if !e.hasOcc || end > e.occEnd {
				e.occEnd = end
			}
			e.hasOcc = true
		} else if !e.hasOcc && end > e.occEnd {
			// Journey never consumed (early stop): a zero-length slot at its
			// last event keeps it packable without claiming lane time.
			e.occStart, e.occEnd = end, end
		}
	}
	// erasedSpans memoizes an entity's spans with the lane label zeroed,
	// canonically sorted — the content fingerprint used to order entities
	// that tie on interval and seq. Two entities that also tie on content
	// are interchangeable: either lane assignment relabels the span set
	// identically, so the unstable order between them cannot leak.
	erasedSpans := func(e *entity) []Span {
		if e.erased == nil {
			e.erased = make([]Span, 0, len(e.spans))
			for _, i := range e.spans {
				s := spans[i]
				s.Key = 0
				e.erased = append(e.erased, s)
			}
			Sort(e.erased)
		}
		return e.erased
	}
	for _, ents := range groups {
		order := make([]*entity, 0, len(ents))
		for _, e := range ents {
			order = append(order, e)
		}
		sort.Slice(order, func(i, j int) bool {
			a, b := order[i], order[j]
			switch {
			case a.occStart != b.occStart:
				return a.occStart < b.occStart
			case a.occEnd != b.occEnd:
				return a.occEnd < b.occEnd
			case a.seq != b.seq:
				return a.seq < b.seq
			default:
				ea, eb := erasedSpans(a), erasedSpans(b)
				if len(ea) != len(eb) {
					return len(ea) < len(eb)
				}
				for k := range ea {
					if c := Compare(ea[k], eb[k]); c != 0 {
						return c < 0
					}
				}
				return false
			}
		})
		var busyUntil []int64
		for _, e := range order {
			lane := -1
			for i, busy := range busyUntil {
				if busy <= e.occStart {
					lane = i
					break
				}
			}
			if lane < 0 {
				lane = len(busyUntil)
				busyUntil = append(busyUntil, 0)
			}
			busyUntil[lane] = e.occEnd
			for _, i := range e.spans {
				spans[i].Key = int64(lane)
			}
		}
	}
}

// canonDevices packs each (tenant, node)'s device-occupancy spans onto
// device lanes and renumbers Seq as the span's position within its lane.
func canonDevices(spans []Span) {
	groups := map[groupKey][]int{}
	for i, s := range spans {
		if s.Stage != StageDeviceRun {
			continue
		}
		g := groupKey{s.Tenant, s.Node}
		groups[g] = append(groups[g], i)
	}
	for _, idxs := range groups {
		sort.Slice(idxs, func(i, j int) bool {
			a, b := spans[idxs[i]], spans[idxs[j]]
			switch {
			case a.Start != b.Start:
				return a.Start < b.Start
			case a.End != b.End:
				return a.End < b.End
			default:
				return a.Detail < b.Detail
			}
		})
		var busyUntil []int64
		var laneSeq []int64
		for _, i := range idxs {
			s := &spans[i]
			lane := -1
			for l, busy := range busyUntil {
				if busy <= int64(s.Start) {
					lane = l
					break
				}
			}
			if lane < 0 {
				lane = len(busyUntil)
				busyUntil = append(busyUntil, 0)
				laneSeq = append(laneSeq, 0)
			}
			busyUntil[lane] = int64(s.End)
			s.Key = int64(lane)
			s.Seq = laneSeq[lane]
			laneSeq[lane]++
		}
	}
}
