package trace

import (
	"sort"
	"time"
)

// Critical-path analysis. Each delivered batch leaves a set of step-stage
// spans sharing (Tenant, Node, Key=GPU, Seq): the consumer's wait on its
// loader, the host-to-device copy, the GPU step, and — in a distributed
// run — the step barrier, the collective, or crashed-rank downtime. The
// analyzer walks the trace backwards from delivery and reassembles each
// batch's journey: where its latency went, stage by stage. Because the
// instrumented spans are stamped at exactly the instants the stall
// counters integrate, the per-stage sums here agree with
// DataStall/BarrierStall/NetworkStall to the nanosecond — the analyzer is
// the counters' replacement, not an approximation of them.

// BatchPath is one delivered batch's latency attribution. The stage
// fields partition [Start, End]: their sum plus Other equals Latency
// exactly.
type BatchPath struct {
	Tenant int32
	Node   int32
	GPU    int64 // consumer index (the step spans' Key)
	Seq    int64 // batch sequence within the consumer's stream

	Start, End time.Duration

	DataWait    time.Duration // blocked on the loader (input starvation)
	Copy        time.Duration // synchronous host-to-device copy
	GPUStep     time.Duration // device occupancy for the train step
	BarrierWait time.Duration // parked at the step barrier for slower ranks
	NetworkWait time.Duration // gradient all-reduce over the fabric
	Downtime    time.Duration // crashed out of the membership (proxy round)
	Other       time.Duration // uninstrumented remainder (validation, gates)
}

// Latency is the batch's whole step interval.
func (p BatchPath) Latency() time.Duration { return p.End - p.Start }

// stepStage reports whether s belongs to the consumer step anatomy.
func stepStage(s Stage) bool {
	switch s {
	case StageDataWait, StageCopy, StageGPUStep, StageBarrierWait, StageNetworkWait, StageDowntime:
		return true
	}
	return false
}

// CriticalPath reassembles per-batch journeys from a trace. Results are
// sorted by (Tenant, Node, GPU, Seq) — a pure function of the span set.
func CriticalPath(spans []Span) []BatchPath {
	type pathKey struct {
		tenant int32
		node   int32
		gpu    int64
		seq    int64
	}
	acc := map[pathKey]*BatchPath{}
	for _, s := range spans {
		if !stepStage(s.Stage) {
			continue
		}
		k := pathKey{s.Tenant, s.Node, s.Key, s.Seq}
		p := acc[k]
		if p == nil {
			p = &BatchPath{Tenant: s.Tenant, Node: s.Node, GPU: s.Key, Seq: s.Seq,
				Start: s.Start, End: s.End}
			acc[k] = p
		}
		if s.Start < p.Start {
			p.Start = s.Start
		}
		if s.End > p.End {
			p.End = s.End
		}
		d := s.End - s.Start
		switch s.Stage {
		case StageDataWait:
			p.DataWait += d
		case StageCopy:
			p.Copy += d
		case StageGPUStep:
			p.GPUStep += d
		case StageBarrierWait:
			p.BarrierWait += d
		case StageNetworkWait:
			p.NetworkWait += d
		case StageDowntime:
			p.Downtime += d
		}
	}
	out := make([]BatchPath, 0, len(acc))
	for _, p := range acc {
		p.Other = p.Latency() -
			(p.DataWait + p.Copy + p.GPUStep + p.BarrierWait + p.NetworkWait + p.Downtime)
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Tenant != b.Tenant:
			return a.Tenant < b.Tenant
		case a.Node != b.Node:
			return a.Node < b.Node
		case a.GPU != b.GPU:
			return a.GPU < b.GPU
		default:
			return a.Seq < b.Seq
		}
	})
	return out
}

// Attribution aggregates a set of batch journeys into per-stage totals —
// the cluster-level view the stall counters report.
type Attribution struct {
	Batches     int
	Latency     time.Duration
	DataWait    time.Duration
	Copy        time.Duration
	GPUStep     time.Duration
	BarrierWait time.Duration
	NetworkWait time.Duration
	Downtime    time.Duration
	Other       time.Duration
}

// Attribute sums the journeys keep admits (nil keep admits all).
func Attribute(paths []BatchPath, keep func(BatchPath) bool) Attribution {
	var a Attribution
	for _, p := range paths {
		if keep != nil && !keep(p) {
			continue
		}
		a.Batches++
		a.Latency += p.Latency()
		a.DataWait += p.DataWait
		a.Copy += p.Copy
		a.GPUStep += p.GPUStep
		a.BarrierWait += p.BarrierWait
		a.NetworkWait += p.NetworkWait
		a.Downtime += p.Downtime
		a.Other += p.Other
	}
	return a
}
