package trace

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// Chrome trace-event export: the "JSON Array Format" that Perfetto and
// chrome://tracing load directly. Each duration span becomes a complete
// event ("ph":"X") and each instant a thread-scoped instant event
// ("ph":"i"); pid/tid place every span on a stable track (one process per
// node, one thread per layer/tenant/device), and metadata events name the
// tracks. Spans are sorted canonically before writing and every number is
// formatted from integers, so the output bytes are a pure function of the
// span set.

// Track layout: tid ranges per layer, offset by the identity that should
// get its own swimlane. The constants only shape the visualization — the
// span fields remain the source of truth in "args".
const (
	tidPipeline = 100  // + tenant: storage/cache/worker stages
	tidConsumer = 1000 // + GPU index: step anatomy
	tidDevice   = 2000 // + device key: occupancy
	tidNet      = 3000 // flows and rate bends
	tidFrame    = 3500 // service protocol frames
	tidChaos    = 9000 // fault instants and windows
)

// trackOf maps a span to its (pid, tid) placement.
func trackOf(s Span) (pid, tid int64) {
	pid = int64(s.Node)
	switch s.Stage {
	case StageDataWait, StageCopy, StageGPUStep, StageBarrierWait, StageNetworkWait, StageDowntime:
		return pid, tidConsumer + s.Key
	case StageDeviceRun:
		return pid, tidDevice + s.Key
	case StageFlow, StageFlowRate:
		return pid, tidNet
	case StageFrame:
		return pid, tidFrame
	case StageFault, StageFaultWindow:
		return pid, tidChaos
	default:
		return pid, tidPipeline + int64(s.Tenant)
	}
}

// trackName names a tid for the metadata events.
func trackName(tid int64) string {
	switch {
	case tid >= tidChaos:
		return "chaos"
	case tid >= tidFrame:
		return "service-wire"
	case tid >= tidNet:
		return "interconnect"
	case tid >= tidDevice:
		return "device " + strconv.FormatInt(tid-tidDevice, 10)
	case tid >= tidConsumer:
		return "consumer gpu" + strconv.FormatInt(tid-tidConsumer, 10)
	default:
		return "pipeline tenant" + strconv.FormatInt(tid-tidPipeline, 10)
	}
}

// WriteChrome writes spans as Chrome trace-event JSON. The spans are
// sorted canonically first, so the same span set always produces the same
// bytes regardless of recording order.
func WriteChrome(w io.Writer, spans []Span) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	Sort(sorted)

	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 256)
	bw.WriteByte('[')

	// Track metadata: name every (pid, tid) pair in use, in sorted order.
	type track struct{ pid, tid int64 }
	seen := map[track]bool{}
	var tracks []track
	for _, s := range sorted {
		pid, tid := trackOf(s)
		t := track{pid, tid}
		if !seen[t] {
			seen[t] = true
			tracks = append(tracks, t)
		}
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	first := true
	for _, t := range tracks {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		buf = buf[:0]
		buf = append(buf, `{"name":"process_name","ph":"M","pid":`...)
		buf = strconv.AppendInt(buf, t.pid, 10)
		buf = append(buf, `,"tid":0,"args":{"name":"node `...)
		buf = strconv.AppendInt(buf, t.pid, 10)
		buf = append(buf, `"}},{"name":"thread_name","ph":"M","pid":`...)
		buf = strconv.AppendInt(buf, t.pid, 10)
		buf = append(buf, `,"tid":`...)
		buf = strconv.AppendInt(buf, t.tid, 10)
		buf = append(buf, `,"args":{"name":"`...)
		buf = append(buf, trackName(t.tid)...)
		buf = append(buf, `"}}`...)
		bw.Write(buf)
	}

	for _, s := range sorted {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		pid, tid := trackOf(s)
		buf = buf[:0]
		buf = append(buf, `{"name":"`...)
		buf = append(buf, s.Stage.String()...)
		buf = append(buf, `","ph":"`...)
		if s.Start == s.End {
			buf = append(buf, `i","s":"t`...)
		} else {
			buf = append(buf, 'X')
		}
		buf = append(buf, `","ts":`...)
		buf = appendMicros(buf, int64(s.Start))
		if s.Start != s.End {
			buf = append(buf, `,"dur":`...)
			buf = appendMicros(buf, int64(s.End-s.Start))
		}
		buf = append(buf, `,"pid":`...)
		buf = strconv.AppendInt(buf, pid, 10)
		buf = append(buf, `,"tid":`...)
		buf = strconv.AppendInt(buf, tid, 10)
		buf = append(buf, `,"args":{"tenant":`...)
		buf = strconv.AppendInt(buf, int64(s.Tenant), 10)
		buf = append(buf, `,"key":`...)
		buf = strconv.AppendInt(buf, s.Key, 10)
		buf = append(buf, `,"seq":`...)
		buf = strconv.AppendInt(buf, s.Seq, 10)
		buf = append(buf, `,"detail":`...)
		buf = strconv.AppendInt(buf, s.Detail, 10)
		buf = append(buf, `}}`...)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	bw.WriteByte(']')
	bw.WriteByte('\n')
	return bw.Flush()
}

// appendMicros formats ns as microseconds with fixed 3-decimal precision
// ("1234.567") — integer arithmetic only, so the bytes are exact.
func appendMicros(buf []byte, ns int64) []byte {
	buf = strconv.AppendInt(buf, ns/1000, 10)
	buf = append(buf, '.')
	frac := ns % 1000
	buf = append(buf, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return buf
}
