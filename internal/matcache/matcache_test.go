package matcache

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/simtime"
)

func key(i int, sig uint64) Key {
	return Key{Obj: data.Key{Space: "test", Index: int64(i)}, Sig: sig}
}

func TestFillAndHit(t *testing.T) {
	rt := simtime.NewVirtual()
	c := New(1 << 20)
	c.JoinTenant(0)

	k := key(1, 42)
	e, hit, w := c.GetOrBegin(0, k, rt)
	if hit || w != nil {
		t.Fatalf("first access: hit=%v waiter=%v, want leader (false, nil)", hit, w)
	}
	_ = e
	c.Complete(0, k, Entry{Bytes: 1000, Cost: 5 * time.Millisecond})

	e, hit, w = c.GetOrBegin(0, k, rt)
	if !hit || w != nil {
		t.Fatalf("second access: hit=%v waiter=%v, want hit", hit, w)
	}
	if e.Bytes != 1000 || e.Cost != 5*time.Millisecond {
		t.Fatalf("entry = %+v, want {1000 5ms}", e)
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 || st.Entries != 1 || st.Used != 1000 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Saved != 5*time.Millisecond {
		t.Fatalf("saved = %v, want 5ms", st.Saved)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	c := New(1 << 20)
	k := key(1, 1)
	if _, ok := c.Peek(k); ok {
		t.Fatal("peek on empty cache reported a hit")
	}
	c.Complete(0, k, Entry{Bytes: 10, Cost: time.Millisecond})
	e, ok := c.Peek(k)
	if !ok || e.Bytes != 10 {
		t.Fatalf("peek = %+v, %v", e, ok)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("peek moved traffic counters: %+v", st)
	}
}

// Cost-aware eviction: the victim is the entry with the least
// preprocessing-seconds saved per byte, ties broken toward the older entry.
func TestCostAwareEviction(t *testing.T) {
	c := New(3000)
	// Three 1000-byte entries with distinct densities.
	c.Complete(0, key(1, 1), Entry{Bytes: 1000, Cost: 9 * time.Millisecond}) // density 9000 ns/B
	c.Complete(0, key(2, 1), Entry{Bytes: 1000, Cost: 1 * time.Millisecond}) // density 1000 ns/B — least valuable
	c.Complete(0, key(3, 1), Entry{Bytes: 1000, Cost: 5 * time.Millisecond}) // density 5000 ns/B
	// Fourth entry overflows capacity: key 2 must go first.
	c.Complete(0, key(4, 1), Entry{Bytes: 1000, Cost: 7 * time.Millisecond})
	if _, ok := c.Peek(key(2, 1)); ok {
		t.Fatal("lowest-density entry survived eviction")
	}
	for _, i := range []int{1, 3, 4} {
		if _, ok := c.Peek(key(i, 1)); !ok {
			t.Fatalf("entry %d was evicted, want key 2 only", i)
		}
	}
	// Fifth entry: key 3 (5ms) is now the least dense.
	c.Complete(0, key(5, 1), Entry{Bytes: 1000, Cost: 8 * time.Millisecond})
	if _, ok := c.Peek(key(3, 1)); ok {
		t.Fatal("second-lowest-density entry survived eviction")
	}
	if st := c.Stats(); st.Evictions != 2 || st.Entries != 3 || st.Used != 3000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionSeqTieBreak(t *testing.T) {
	c := New(2000)
	// Equal densities: insertion order decides, older goes first.
	c.Complete(0, key(1, 1), Entry{Bytes: 1000, Cost: 4 * time.Millisecond})
	c.Complete(0, key(2, 1), Entry{Bytes: 1000, Cost: 4 * time.Millisecond})
	c.Complete(0, key(3, 1), Entry{Bytes: 1000, Cost: 4 * time.Millisecond})
	if _, ok := c.Peek(key(1, 1)); ok {
		t.Fatal("older of two equal-density entries survived")
	}
	if _, ok := c.Peek(key(2, 1)); !ok {
		t.Fatal("newer equal-density entry was evicted")
	}
}

// Eviction order must be identical run to run — replay the same fill
// sequence twice and require the same survivors.
func TestEvictionDeterminism(t *testing.T) {
	run := func() []bool {
		c := New(10_000)
		for i := 0; i < 64; i++ {
			cost := time.Duration((i*7919)%13+1) * time.Millisecond
			c.Complete(0, key(i, 1), Entry{Bytes: int64(500 + (i*31)%700), Cost: cost})
		}
		alive := make([]bool, 64)
		for i := range alive {
			_, alive[i] = c.Peek(key(i, 1))
		}
		return alive
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("eviction nondeterministic: key %d alive=%v then %v", i, a[i], b[i])
		}
	}
}

func TestOversizeEntryNotRetained(t *testing.T) {
	c := New(1000)
	c.Complete(0, key(1, 1), Entry{Bytes: 2000, Cost: time.Second})
	if _, ok := c.Peek(key(1, 1)); ok {
		t.Fatal("entry larger than the whole cache was retained")
	}
	if st := c.Stats(); st.Used != 0 || st.Entries != 0 {
		t.Fatalf("stats after oversize fill = %+v", st)
	}
}

// Single-flight under the virtual kernel: one leader fills, parked followers
// are woken and re-check into hits, with exactly one fill recorded.
func TestSingleFlightVirtual(t *testing.T) {
	rt := simtime.NewVirtual()
	c := New(1 << 20)
	c.JoinTenant(0)
	k := key(7, 9)
	const followers = 4

	var fills, hits atomic.Int64
	rt.Run(func() {
		_, hit, w := c.GetOrBegin(0, k, rt)
		if hit || w != nil {
			t.Errorf("main task should lead: hit=%v w=%v", hit, w)
			return
		}
		for i := 0; i < followers; i++ {
			rt.Go("follower", func() {
				for {
					e, hit, w := c.GetOrBegin(0, k, rt)
					if hit {
						if e.Cost != 3*time.Millisecond {
							t.Errorf("follower got %+v", e)
						}
						hits.Add(1)
						return
					}
					if w == nil {
						t.Error("follower became leader while fill in flight")
						return
					}
					if err := w.Wait(context.Background()); err != nil {
						t.Errorf("wait: %v", err)
						return
					}
				}
			})
		}
		// Let every follower park before publishing.
		if err := rt.Sleep(context.Background(), time.Millisecond); err != nil {
			t.Errorf("sleep: %v", err)
		}
		fills.Add(1)
		c.Complete(0, k, Entry{Bytes: 100, Cost: 3 * time.Millisecond})
	})
	rt.Drain()
	if fills.Load() != 1 || hits.Load() != followers {
		t.Fatalf("fills=%d hits=%d, want 1/%d", fills.Load(), hits.Load(), followers)
	}
	st := c.Stats()
	if st.Fills != 1 || st.Misses != 1 || st.Hits != int64(followers) {
		t.Fatalf("stats = %+v", st)
	}
}

// An aborted fill re-elects a follower as the new leader instead of caching
// a failure or parking followers forever.
func TestAbortReelection(t *testing.T) {
	rt := simtime.NewVirtual()
	c := New(1 << 20)
	k := key(1, 1)
	var refilled atomic.Bool
	rt.Run(func() {
		_, hit, w := c.GetOrBegin(-1, k, rt)
		if hit || w != nil {
			t.Error("expected leadership")
			return
		}
		rt.Go("follower", func() {
			for {
				_, hit, w := c.GetOrBegin(-1, k, rt)
				if hit {
					return
				}
				if w == nil {
					// Re-elected leader after the abort.
					refilled.Store(true)
					c.Complete(-1, k, Entry{Bytes: 1, Cost: time.Microsecond})
					return
				}
				if err := w.Wait(context.Background()); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
			}
		})
		if err := rt.Sleep(context.Background(), time.Millisecond); err != nil {
			t.Errorf("sleep: %v", err)
		}
		c.Abort(k)
	})
	rt.Drain()
	if !refilled.Load() {
		t.Fatal("follower was not re-elected leader after abort")
	}
	if _, ok := c.Peek(k); !ok {
		t.Fatal("re-led fill did not publish")
	}
}

// Hammer the single-flight protocol with real goroutines under -race:
// many tenants warming the same key space must produce exactly one fill
// per key.
func TestSingleFlightHammer(t *testing.T) {
	rt := simtime.NewReal(1)
	c := New(1 << 30)
	const (
		tenants = 8
		keys    = 32
	)
	for id := 0; id < tenants; id++ {
		c.JoinTenant(id)
	}
	fills := make([]atomic.Int64, keys)
	var wg sync.WaitGroup
	for id := 0; id < tenants; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				k := key(i, 1)
				for {
					_, hit, w := c.GetOrBegin(id, k, rt)
					if hit {
						break
					}
					if w == nil {
						fills[i].Add(1)
						c.Complete(id, k, Entry{Bytes: 64, Cost: time.Millisecond})
						break
					}
					if err := w.Wait(context.Background()); err != nil {
						t.Errorf("wait: %v", err)
						return
					}
				}
			}
		}(id)
	}
	wg.Wait()
	for i := range fills {
		if n := fills[i].Load(); n != 1 {
			t.Fatalf("key %d filled %d times, want exactly 1", i, n)
		}
	}
	st := c.Stats()
	if st.Fills != keys || st.Misses != keys {
		t.Fatalf("stats = %+v, want %d fills/misses", st, keys)
	}
	if st.Hits != int64(tenants*keys-keys) {
		t.Fatalf("hits = %d, want %d", st.Hits, tenants*keys-keys)
	}
}

// Regression for the pool generation-counter contract: the cache copies
// values out of live samples, so entries survive sample recycling — and a
// holder that wrongly retains the pooled sample still trips AssertOwned.
func TestEntriesSurviveSampleRecycling(t *testing.T) {
	pool := data.NewPool()
	c := New(1 << 20)

	s := pool.Get()
	s.Key = data.Key{Space: "corpus", Index: 11}
	s.Bytes = 4096
	s.PreprocCost = 2 * time.Millisecond
	gen := s.Generation()

	k := Key{Obj: s.Key, Sig: 77}
	c.Complete(0, k, Entry{Bytes: s.Bytes, Cost: s.PreprocCost})

	// Recycle the sample and clobber its recycled instance: the entry must
	// be unaffected because the cache never retained the pointer.
	pool.Put(s)
	s2 := pool.Get()
	s2.Bytes = 1
	s2.PreprocCost = time.Hour
	defer pool.Put(s2)

	e, ok := c.Peek(k)
	if !ok || e.Bytes != 4096 || e.Cost != 2*time.Millisecond {
		t.Fatalf("entry after recycling = %+v, %v; want {4096 2ms}", e, ok)
	}

	// A buggy cache layer that retained s across Put must still hit the
	// pool's loud use-after-release check.
	defer func() {
		if recover() == nil {
			t.Fatal("AssertOwned did not panic for a sample retained across recycling")
		}
	}()
	s.AssertOwned(gen)
}

func TestTenantAttribution(t *testing.T) {
	rt := simtime.NewVirtual()
	c := New(1 << 20)
	c.JoinTenant(1)
	c.JoinTenant(2)

	k := key(5, 3)
	if _, hit, w := c.GetOrBegin(1, k, rt); hit || w != nil {
		t.Fatal("tenant 1 should lead")
	}
	c.Complete(1, k, Entry{Bytes: 500, Cost: 4 * time.Millisecond})
	if _, hit, _ := c.GetOrBegin(2, k, rt); !hit {
		t.Fatal("tenant 2 should hit")
	}

	t1, t2 := c.TenantStats(1), c.TenantStats(2)
	if t1.Fills != 1 || t1.Misses != 1 || t1.Hits != 0 || t1.Used != 500 {
		t.Fatalf("tenant 1 = %+v", t1)
	}
	if t2.Fills != 0 || t2.Hits != 1 || t2.Saved != 4*time.Millisecond {
		t.Fatalf("tenant 2 = %+v", t2)
	}
	if out := c.TenantStats(9); out.Hits != 0 || out.Capacity != 1<<20 {
		t.Fatalf("out-of-range tenant = %+v", out)
	}
}

// A departing tenant's resident bytes survive; rejoining the id resets
// traffic counters but keeps residency.
func TestTenantChurnKeepsResidency(t *testing.T) {
	rt := simtime.NewVirtual()
	c := New(1 << 20)
	c.JoinTenant(1)
	if _, hit, w := c.GetOrBegin(1, key(1, 1), rt); hit || w != nil {
		t.Fatal("expected leadership")
	}
	c.Complete(1, key(1, 1), Entry{Bytes: 300, Cost: time.Millisecond})
	c.LeaveTenant(1)
	c.JoinTenant(1)
	st := c.TenantStats(1)
	if st.Used != 300 {
		t.Fatalf("residency lost across churn: used = %d", st.Used)
	}
	if st.Fills != 0 || st.Misses != 0 {
		t.Fatalf("traffic counters not reset: %+v", st)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(1 << 20)
	c.Complete(0, key(1, 100), Entry{Bytes: 10, Cost: time.Millisecond})
	c.Complete(0, key(2, 100), Entry{Bytes: 10, Cost: time.Millisecond})
	c.Complete(0, key(1, 200), Entry{Bytes: 10, Cost: time.Millisecond})
	if n := c.Invalidate(100); n != 2 {
		t.Fatalf("invalidated %d entries, want 2", n)
	}
	if _, ok := c.Peek(key(1, 100)); ok {
		t.Fatal("invalidated entry still resident")
	}
	if _, ok := c.Peek(key(1, 200)); !ok {
		t.Fatal("unrelated signature was invalidated")
	}
	st := c.Stats()
	if st.Invalidations != 2 || st.Evictions != 0 || st.Used != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if n := c.Invalidate(100); n != 0 {
		t.Fatalf("second invalidate removed %d entries", n)
	}
}

func TestRecycle(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 3; i++ {
		c.Complete(0, key(i, 1), Entry{Bytes: 100, Cost: time.Millisecond})
	}
	c.Recycle()
	st := c.Stats()
	if st.Used != 0 || st.Entries != 0 {
		t.Fatalf("stats after recycle = %+v", st)
	}
	if st.Fills != 3 {
		t.Fatalf("traffic counters did not survive recycle: %+v", st)
	}
	// The cache remains usable after recycling.
	c.Complete(0, key(9, 1), Entry{Bytes: 50, Cost: time.Millisecond})
	if _, ok := c.Peek(key(9, 1)); !ok {
		t.Fatal("fill after recycle did not publish")
	}
	c.Recycle()
}

func TestRestoreCost(t *testing.T) {
	c := New(1)
	if got := c.RestoreCost(0); got != 0 {
		t.Fatalf("restore cost of 0 bytes = %v", got)
	}
	if got := c.RestoreCost(-5); got != 0 {
		t.Fatalf("restore cost of negative bytes = %v", got)
	}
	// 10 GB/s default bandwidth: 1 GB restores in 100 ms.
	if got := c.RestoreCost(1e9); got != 100*time.Millisecond {
		t.Fatalf("restore cost of 1 GB = %v, want 100ms", got)
	}
}

// Slot reuse across many fill/evict cycles never corrupts entries or
// capacity accounting.
func TestSlotReuse(t *testing.T) {
	c := New(2000)
	for round := 0; round < 50; round++ {
		c.Complete(0, key(round, 1), Entry{Bytes: 1000, Cost: time.Duration(round+1) * time.Millisecond})
	}
	st := c.Stats()
	if st.Used > 2000 {
		t.Fatalf("capacity accounting drifted: used = %d", st.Used)
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	// Rising costs mean the two newest (densest) fills survive.
	for _, i := range []int{48, 49} {
		e, ok := c.Peek(key(i, 1))
		if !ok || e.Cost != time.Duration(i+1)*time.Millisecond {
			t.Fatalf("entry %d = %+v, %v", i, e, ok)
		}
	}
}

// An entry too large to retain is still handed to the fill's parked
// followers: each woken follower redeems exactly one hit from the handoff,
// so single-flight holds for permanently-uncacheable keys instead of
// degenerating to one serial re-fill per follower.
func TestUncacheableEntryHandedToFollowers(t *testing.T) {
	rt := simtime.NewVirtual()
	c := New(1000)
	k := key(1, 1)
	const followers = 3
	var hits, refills atomic.Int64
	rt.Run(func() {
		if _, hit, w := c.GetOrBegin(-1, k, rt); hit || w != nil {
			t.Error("expected leadership")
			return
		}
		for i := 0; i < followers; i++ {
			rt.Go("follower", func() {
				for {
					e, hit, w := c.GetOrBegin(-1, k, rt)
					if hit {
						if e.Bytes != 2000 || e.Cost != time.Second {
							t.Errorf("follower entry = %+v, want {2000 1s}", e)
						}
						hits.Add(1)
						return
					}
					if w == nil {
						refills.Add(1)
						c.Complete(-1, k, Entry{Bytes: 2000, Cost: time.Second})
						return
					}
					if err := w.Wait(context.Background()); err != nil {
						t.Errorf("wait: %v", err)
						return
					}
				}
			})
		}
		// Let every follower park, then publish an entry bigger than the
		// whole cache.
		if err := rt.Sleep(context.Background(), time.Millisecond); err != nil {
			t.Errorf("sleep: %v", err)
		}
		c.Complete(-1, k, Entry{Bytes: 2000, Cost: time.Second})
	})
	rt.Drain()
	if refills.Load() != 0 {
		t.Fatalf("%d followers re-ran the fill, want 0", refills.Load())
	}
	if hits.Load() != followers {
		t.Fatalf("follower hits = %d, want %d", hits.Load(), followers)
	}
	if _, ok := c.Peek(k); ok {
		t.Fatal("uncacheable entry was retained")
	}
	// The handoff is consumed with its followers: a later caller is a plain
	// miss electing a new leader, not a phantom hit.
	if _, hit, w := c.GetOrBegin(-1, k, rt); hit || w != nil {
		t.Fatal("later caller should miss once the handoff is redeemed")
	}
	c.Abort(k)
}

// Recycle clears single-flight claims orphaned by a leader that died
// without settling, waking their waiters so followers re-elect instead of
// parking forever on a dead fill.
func TestRecycleClearsInflightClaims(t *testing.T) {
	rt := simtime.NewVirtual()
	c := New(1 << 20)
	k := key(1, 1)
	var refilled atomic.Bool
	rt.Run(func() {
		// An orphaned leader claim: taken, never settled.
		if _, hit, w := c.GetOrBegin(-1, k, rt); hit || w != nil {
			t.Error("expected leadership")
			return
		}
		rt.Go("follower", func() {
			for {
				_, hit, w := c.GetOrBegin(-1, k, rt)
				if hit {
					return
				}
				if w == nil {
					refilled.Store(true)
					c.Complete(-1, k, Entry{Bytes: 1, Cost: time.Microsecond})
					return
				}
				if err := w.Wait(context.Background()); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
			}
		})
		if err := rt.Sleep(context.Background(), time.Millisecond); err != nil {
			t.Errorf("sleep: %v", err)
		}
		c.Recycle()
	})
	rt.Drain()
	if !refilled.Load() {
		t.Fatal("follower was not re-elected after Recycle cleared the claim")
	}
}

// A fill completing with an out-of-range tenant id (tenant-slot churn
// between claim and completion) carries no attribution instead of crediting
// tenant 0 with a stranger's bytes.
func TestOutOfRangeTenantNotFoldedIntoTenantZero(t *testing.T) {
	c := New(1 << 20)
	c.JoinTenant(0)
	c.Complete(99, key(1, 1), Entry{Bytes: 500, Cost: time.Millisecond})
	if st := c.TenantStats(0); st.Used != 0 || st.Fills != 0 {
		t.Fatalf("tenant 0 credited with an out-of-range fill: %+v", st)
	}
	if st := c.Stats(); st.Used != 500 || st.Fills != 1 {
		t.Fatalf("whole-cache stats = %+v", st)
	}
	// Removing the unattributed entry leaves tenant counters untouched too.
	if n := c.Invalidate(1); n != 1 {
		t.Fatalf("invalidated %d entries, want 1", n)
	}
	if st := c.TenantStats(0); st.Used != 0 || st.Evictions != 0 {
		t.Fatalf("tenant 0 charged for an unattributed removal: %+v", st)
	}
}
