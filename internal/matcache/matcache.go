// Package matcache is a materialized cache of preprocessed samples: the
// transform-output layer that sits between the page cache and the workers
// in the cache hierarchy (disk → page cache → materialized cache → workers).
//
// MinatoLoader's thesis is that preprocessing, not storage, dominates input
// pipelines — so once a sample's pipeline has run, the biggest remaining win
// is to never run it again. The cache keys entries by (storage key, pipeline
// signature): epoch 1 materializes worker outputs as it goes, epoch 2+ and
// co-tenant sessions sharing the cluster hit the cache and skip both the raw
// read and the whole transform pipeline, paying only a memory-bandwidth
// restore. This is the FFCV model of persisting preprocessed tensors,
// scoped to a shared in-memory layer.
//
// Fills are single-flighted with the same leader/follower waiter protocol as
// storage.PageCache, so N tenants warming the same shard materialize each
// entry exactly once. Eviction is Seneca-style cost-aware: the victim is the
// entry with the least preprocessing-seconds saved per byte (the measured
// pipeline cost the entry's hits avoid, over the bytes it occupies), with
// insertion order as the deterministic tie-break. Invalidation is structural:
// the pipeline signature is part of the key, so a changed pipeline simply
// misses, and stale entries age out by their now-unearned density (Invalidate
// drops a signature's entries eagerly when the caller knows it is dead).
//
// Entries live in compact binary regions — fixed-width records packed into
// pooled chunks — standing in for the preprocessed tensor bytes a real
// system would persist; capacity accounting is in simulated tensor bytes.
// The cache never retains the pooled *data.Sample that produced an entry:
// fills copy the few fields that matter out of the live sample, so sample
// recycling (and the pool's generation-counter panics) stay sound.
package matcache

import (
	"encoding/binary"
	"sort"
	"sync"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/simtime"
)

// Key identifies one materialized entry: a stored object under a specific
// preprocessing pipeline (transform.Pipeline.Signature).
type Key struct {
	Obj data.Key
	Sig uint64
}

// Entry is the materialized result of preprocessing one sample: the
// post-pipeline tensor size and the full-speed compute a hit saves.
type Entry struct {
	Bytes int64
	Cost  time.Duration
}

// DefaultRestoreBandwidth is the memory bandwidth charged for restoring a
// materialized tensor to a worker (bytes/second). Restores are memcpy-class
// work, ~3 orders of magnitude cheaper than the preprocessing they replace.
const DefaultRestoreBandwidth = 10e9

// Record layout inside a region chunk: two little-endian 64-bit words
// (tensor bytes, pipeline cost in ns) per slot.
const (
	recordSize      = 16
	recordsPerChunk = 4096
)

// chunk is one pooled region: a packed record buffer plus the per-slot
// metadata (key, liveness, attribution) the index and evictor need.
type chunk struct {
	buf  [recordsPerChunk * recordSize]byte
	meta [recordsPerChunk]slotMeta
}

type slotMeta struct {
	key    Key
	seq    uint32 // insertion sequence; stale heap items carry an older seq
	tenant int32
	live   bool
}

var chunkPool = sync.Pool{New: func() any { return new(chunk) }}

// heapItem is one candidate victim: density is preprocessing-ns saved per
// byte (lower = less valuable = evicted sooner), seq breaks ties toward the
// older entry and detects staleness after slot reuse.
type heapItem struct {
	density float64
	seq     uint32
	slot    int32
}

// tenantCounters is one tenant's slice of the cache accounting.
type tenantCounters struct {
	live                         bool
	hits, misses, fills, evicted int64
	used                         int64 // resident tensor bytes this tenant filled
	savedNs                      int64 // preprocessing ns this tenant's hits skipped
}

// Cache is the materialized-sample cache. It is safe for concurrent use;
// under the virtual runtime all operations are deterministic, including
// eviction order. The zero value is not usable — construct with New.
type Cache struct {
	mu        sync.Mutex
	capacity  int64
	used      int64
	restoreBW float64

	chunks []*chunk
	free   []int32 // recycled record slots, LIFO
	index  map[Key]int32
	heap   []heapItem // min-heap by (density, seq), lazy-deleted
	seq    uint32

	hits, misses, fills, evictions, invalidations int64
	savedNs                                       int64

	tenants []tenantCounters

	// inflight single-flights fills, exactly like the page cache's fetch
	// protocol: the leader materializes while followers park on waiters.
	inflight map[Key][]*simtime.Waiter

	// handoff holds completed entries too large to retain, reserved for the
	// followers parked on the fill that produced them: each woken follower
	// redeems one reference on its re-check, so single-flight holds even for
	// permanently-uncacheable keys instead of degenerating to one serial
	// re-fill per follower.
	handoff map[Key]*handoffEntry
}

type handoffEntry struct {
	e    Entry
	refs int
}

// New returns a cache with the given capacity in simulated tensor bytes and
// the default restore bandwidth.
func New(capacity int64) *Cache {
	return &Cache{
		capacity:  capacity,
		restoreBW: DefaultRestoreBandwidth,
		index:     make(map[Key]int32),
	}
}

// RestoreCost returns the CPU occupancy of restoring a materialized tensor
// of the given size to a worker.
func (c *Cache) RestoreCost(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / c.restoreBW * float64(time.Second))
}

// JoinTenant registers a tenant id for attribution. Ids are assigned by the
// cluster (shared with the page cache's tenant ids), so matcache takes the
// id rather than allocating one; rejoining a departed slot resets its
// counters.
func (c *Cache) JoinTenant(id int) {
	if id < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.tenants) <= id {
		c.tenants = append(c.tenants, tenantCounters{})
	}
	if !c.tenants[id].live {
		used := c.tenants[id].used // resident entries survive tenant churn
		c.tenants[id] = tenantCounters{live: true, used: used}
	}
}

// LeaveTenant deregisters a tenant. Its entries stay resident — they keep
// serving siblings and future sessions — and its slot's counters freeze
// until the id is reused.
func (c *Cache) LeaveTenant(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id >= 0 && id < len(c.tenants) {
		c.tenants[id].live = false
	}
}

// GetOrBegin is the single-flight warm path: a cached key returns its entry
// as a hit; an uncached key with no fill in flight makes the caller the
// leader (hit=false, waiter=nil — run the pipeline, then Complete or Abort);
// an uncached key already being filled parks the caller as a follower
// (waiter non-nil — Wait, then call GetOrBegin again). Followers are
// attributed a hit on re-check; only the leader pays a miss.
func (c *Cache) GetOrBegin(tenant int, key Key, rt simtime.Runtime) (Entry, bool, *simtime.Waiter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if slot, ok := c.index[key]; ok {
		e := c.decode(slot)
		c.hitLocked(tenant, e)
		return e, true, nil
	}
	if h, ok := c.handoff[key]; ok {
		h.refs--
		if h.refs <= 0 {
			delete(c.handoff, key)
		}
		c.hitLocked(tenant, h.e)
		return h.e, true, nil
	}
	if ws, ok := c.inflight[key]; ok {
		w := rt.NewWaiter()
		c.inflight[key] = append(ws, w)
		return Entry{}, false, w
	}
	if c.inflight == nil {
		c.inflight = make(map[Key][]*simtime.Waiter)
	}
	c.inflight[key] = nil
	c.misses++
	if tenant >= 0 && tenant < len(c.tenants) {
		c.tenants[tenant].misses++
	}
	return Entry{}, false, nil
}

// hitLocked attributes one hit and the preprocessing time it saved.
func (c *Cache) hitLocked(tenant int, e Entry) {
	c.hits++
	c.savedNs += int64(e.Cost)
	if tenant >= 0 && tenant < len(c.tenants) {
		c.tenants[tenant].hits++
		c.tenants[tenant].savedNs += int64(e.Cost)
	}
}

// Peek reports whether key is materialized, without counting a hit or
// touching single-flight state.
func (c *Cache) Peek(key Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, ok := c.index[key]
	if !ok {
		return Entry{}, false
	}
	return c.decode(slot), true
}

// Complete publishes a leader's materialized entry and releases the key's
// followers. The fill is attributed to the leader's tenant. Entries larger
// than the whole cache are not retained, but the key's parked followers
// still receive the completed entry as a hit on their re-check (via a
// per-follower handoff reservation), so such keys are filled once per
// co-arriving cohort, not once per follower.
func (c *Cache) Complete(tenant int, key Key, e Entry) {
	c.mu.Lock()
	c.fills++
	if tenant >= 0 && tenant < len(c.tenants) {
		c.tenants[tenant].fills++
	}
	c.insertLocked(tenant, key, e)
	ws := c.inflight[key]
	delete(c.inflight, key)
	if _, retained := c.index[key]; !retained && len(ws) > 0 {
		if c.handoff == nil {
			c.handoff = make(map[Key]*handoffEntry)
		}
		c.handoff[key] = &handoffEntry{e: e, refs: len(ws)}
	}
	c.mu.Unlock()
	for _, w := range ws {
		w.Wake()
	}
}

// Abort releases a key's followers without publishing; the next caller
// becomes the new leader. Leaders must Abort on every failure path
// (including panics) or followers would park forever.
func (c *Cache) Abort(key Key) {
	c.mu.Lock()
	ws := c.inflight[key]
	delete(c.inflight, key)
	c.mu.Unlock()
	for _, w := range ws {
		w.Wake()
	}
}

// Invalidate eagerly drops every entry materialized under the given
// pipeline signature, returning how many were removed. Callers use it when
// a pipeline is known dead (signature-keyed misses already isolate changed
// pipelines; this just frees the bytes sooner than cost-aware aging would).
func (c *Cache) Invalidate(sig uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, slot := range c.index {
		if key.Sig != sig {
			continue
		}
		c.removeLocked(key, slot, false)
		n++
	}
	for key := range c.handoff {
		if key.Sig == sig {
			delete(c.handoff, key)
		}
	}
	c.invalidations += int64(n)
	return n
}

// Recycle empties the cache and returns its region chunks to the
// process-wide pool. Owned by whoever owns the cache's lifetime (a Cluster),
// never an individual session. Traffic counters survive; residency is
// zeroed with the contents. Single-flight claims orphaned by sessions that
// died without settling are cleared too, their waiters woken so nobody
// parks forever on a fill that will never complete.
func (c *Cache) Recycle() {
	c.mu.Lock()
	for _, ch := range c.chunks {
		*ch = chunk{}
		chunkPool.Put(ch)
	}
	c.chunks = nil
	c.free = c.free[:0]
	c.heap = c.heap[:0]
	c.used = 0
	for i := range c.tenants {
		c.tenants[i].used = 0
	}
	clear(c.index)
	clear(c.handoff)
	// Wake abandoned followers in key order so recycling stays deterministic
	// even with claims outstanding.
	keys := make([]Key, 0, len(c.inflight))
	for key := range c.inflight {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Obj.Space != b.Obj.Space {
			return a.Obj.Space < b.Obj.Space
		}
		if a.Obj.Index != b.Obj.Index {
			return a.Obj.Index < b.Obj.Index
		}
		return a.Sig < b.Sig
	})
	var wake []*simtime.Waiter
	for _, key := range keys {
		wake = append(wake, c.inflight[key]...)
	}
	clear(c.inflight)
	c.mu.Unlock()
	for _, w := range wake {
		w.Wake()
	}
}

// Stats is a snapshot of materialized-cache counters (whole-cache or
// per-tenant, depending on where it came from). Saved is the preprocessing
// compute that hits skipped — the cache's whole reason to exist.
type Stats struct {
	Capacity, Used int64
	Entries        int64
	Hits, Misses   int64
	Fills          int64
	Evictions      int64
	Invalidations  int64
	Saved          time.Duration
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of whole-cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Capacity: c.capacity, Used: c.used, Entries: int64(len(c.index)),
		Hits: c.hits, Misses: c.misses, Fills: c.fills,
		Evictions: c.evictions, Invalidations: c.invalidations,
		Saved: time.Duration(c.savedNs),
	}
}

// TenantStats returns one tenant's attribution: its hits, misses, fills,
// evictions-suffered, resident bytes it filled, and the preprocessing time
// its hits saved. Capacity is the whole cache's (the pool is shared).
func (c *Cache) TenantStats(id int) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.tenants) {
		return Stats{Capacity: c.capacity}
	}
	t := c.tenants[id]
	return Stats{
		Capacity: c.capacity, Used: t.used,
		Hits: t.hits, Misses: t.misses, Fills: t.fills,
		Evictions: t.evicted, Saved: time.Duration(t.savedNs),
	}
}

// --- internals (callers hold c.mu) ---

func (c *Cache) decode(slot int32) Entry {
	buf := c.chunks[slot/recordsPerChunk].buf[(slot%recordsPerChunk)*recordSize:]
	return Entry{
		Bytes: int64(binary.LittleEndian.Uint64(buf)),
		Cost:  time.Duration(binary.LittleEndian.Uint64(buf[8:])),
	}
}

func (c *Cache) insertLocked(tenant int, key Key, e Entry) {
	if e.Bytes > c.capacity || c.capacity <= 0 {
		return
	}
	if _, ok := c.index[key]; ok {
		return // already materialized (re-led fill after an abort race)
	}
	if e.Bytes < 0 {
		e.Bytes = 0
	}
	if e.Cost < 0 {
		e.Cost = 0
	}
	slot := c.allocSlot()
	ch, i := c.chunks[slot/recordsPerChunk], slot%recordsPerChunk
	binary.LittleEndian.PutUint64(ch.buf[i*recordSize:], uint64(e.Bytes))
	binary.LittleEndian.PutUint64(ch.buf[i*recordSize+8:], uint64(e.Cost))
	c.seq++
	// Out-of-range ids (a fill completing after tenant-slot churn) carry no
	// attribution: -1 keeps the bytes out of some other tenant's counters.
	if tenant < 0 || tenant >= len(c.tenants) {
		tenant = -1
	}
	ch.meta[i] = slotMeta{key: key, seq: c.seq, tenant: int32(tenant), live: true}
	c.index[key] = slot
	c.used += e.Bytes
	if tenant >= 0 {
		c.tenants[tenant].used += e.Bytes
	}
	density := float64(e.Cost)
	if e.Bytes > 0 {
		density /= float64(e.Bytes)
	}
	c.heapPush(heapItem{density: density, seq: c.seq, slot: slot})
	for c.used > c.capacity {
		victim, ok := c.popVictimLocked()
		if !ok {
			break
		}
		c.removeLocked(victim.key, c.index[victim.key], true)
	}
}

// popVictimLocked pops heap items until one still describes a live slot.
func (c *Cache) popVictimLocked() (slotMeta, bool) {
	for len(c.heap) > 0 {
		it := c.heapPop()
		m := &c.chunks[it.slot/recordsPerChunk].meta[it.slot%recordsPerChunk]
		if m.live && m.seq == it.seq {
			return *m, true
		}
	}
	return slotMeta{}, false
}

// removeLocked drops a live entry: frees its slot, returns its bytes, and —
// for cost-aware eviction — attributes the loss to the tenant that filled
// it. The stale heap item (if any) is lazily skipped later.
func (c *Cache) removeLocked(key Key, slot int32, evicted bool) {
	m := &c.chunks[slot/recordsPerChunk].meta[slot%recordsPerChunk]
	e := c.decode(slot)
	c.used -= e.Bytes
	if vt := int(m.tenant); vt >= 0 && vt < len(c.tenants) {
		c.tenants[vt].used -= e.Bytes
		if evicted {
			c.tenants[vt].evicted++
		}
	}
	if evicted {
		c.evictions++
	}
	m.live = false
	delete(c.index, key)
	c.free = append(c.free, slot)
}

func (c *Cache) allocSlot() int32 {
	if n := len(c.free); n > 0 {
		s := c.free[n-1]
		c.free = c.free[:n-1]
		return s
	}
	ci := int32(len(c.chunks))
	c.chunks = append(c.chunks, chunkPool.Get().(*chunk))
	// Hand out this chunk's slots in ascending order: push the free list in
	// reverse so the LIFO pops low indices first.
	base := ci * recordsPerChunk
	for i := int32(recordsPerChunk - 1); i >= 1; i-- {
		c.free = append(c.free, base+i)
	}
	return base
}

// heapPush/heapPop implement a plain binary min-heap ordered by (density,
// seq) — strictly deterministic victim order.
func (it heapItem) less(other heapItem) bool {
	if it.density != other.density {
		return it.density < other.density
	}
	return it.seq < other.seq
}

func (c *Cache) heapPush(it heapItem) {
	c.heap = append(c.heap, it)
	i := len(c.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !c.heap[i].less(c.heap[parent]) {
			break
		}
		c.heap[i], c.heap[parent] = c.heap[parent], c.heap[i]
		i = parent
	}
}

func (c *Cache) heapPop() heapItem {
	top := c.heap[0]
	last := len(c.heap) - 1
	c.heap[0] = c.heap[last]
	c.heap = c.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(c.heap) && c.heap[l].less(c.heap[small]) {
			small = l
		}
		if r < len(c.heap) && c.heap[r].less(c.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		c.heap[i], c.heap[small] = c.heap[small], c.heap[i]
		i = small
	}
	return top
}
