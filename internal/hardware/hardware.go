// Package hardware assembles the paper's two testbeds (§3) from the
// simulated substrates:
//
//	Config A: 2×64-core AMD EPYC (128 cores), 512 GB RAM, 4×A100-40GB,
//	          shared Lustre filesystem over a 200 Gb/s interconnect.
//	Config B: 2×40-core Intel Xeon (80 cores), 512 GB RAM, 8×V100-32GB,
//	          7 GB/s local NVMe SSD.
package hardware

import (
	"github.com/minatoloader/minato/internal/device"
	"github.com/minatoloader/minato/internal/gpu"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/storage"
)

const (
	gib = int64(1) << 30
)

// Config describes a testbed.
type Config struct {
	Name     string
	Cores    int
	MemBytes int64

	GPUCount    int
	GPUArch     gpu.Arch
	GPUMemBytes int64

	// Storage: aggregate bandwidth and how many concurrent streams reach
	// full per-stream speed.
	StorageName        string
	StorageBandwidth   float64
	StorageParallelism float64
}

// ConfigA is the paper's A100 server (§3).
func ConfigA() Config {
	return Config{
		Name: "ConfigA", Cores: 128, MemBytes: 512 * gib,
		GPUCount: 4, GPUArch: gpu.A100, GPUMemBytes: 40 * gib,
		StorageName: "lustre", StorageBandwidth: 20e9, StorageParallelism: 4,
	}
}

// ConfigB is the paper's V100 server (§3).
func ConfigB() Config {
	return Config{
		Name: "ConfigB", Cores: 80, MemBytes: 512 * gib,
		GPUCount: 8, GPUArch: gpu.V100, GPUMemBytes: 32 * gib,
		StorageName: "nvme", StorageBandwidth: 7e9, StorageParallelism: 2,
	}
}

// WithGPUs returns a copy of c with a different GPU count (the Fig 9
// scalability sweeps).
func (c Config) WithGPUs(n int) Config {
	c.GPUCount = n
	return c
}

// WithMemoryLimit returns a copy of c with a cgroup-style memory cap
// (§5.5).
func (c Config) WithMemoryLimit(bytes int64) Config {
	c.MemBytes = bytes
	return c
}

// Testbed is an instantiated machine.
type Testbed struct {
	Cfg   Config
	RT    simtime.Runtime
	CPU   *device.Device
	GPUs  []*gpu.GPU
	Disk  *storage.Disk
	Cache *storage.PageCache
	Store *storage.Store
}

// NewTestbed builds the devices for a config. The page cache receives the
// machine's memory minus a fixed working-set reservation, mirroring how the
// OS page cache shrinks under a cgroup limit.
func NewTestbed(rt simtime.Runtime, cfg Config) *Testbed {
	const workingSet = 16 * gib
	cacheBytes := cfg.MemBytes - workingSet
	if cacheBytes < gib {
		cacheBytes = gib
	}
	disk := storage.NewDisk(rt, cfg.StorageName, cfg.StorageBandwidth, cfg.StorageParallelism)
	cache := storage.NewPageCache(cacheBytes)
	return &Testbed{
		Cfg:   cfg,
		RT:    rt,
		CPU:   device.New(rt, "cpu", float64(cfg.Cores)),
		GPUs:  gpu.Pool(rt, cfg.GPUCount, cfg.GPUArch, cfg.GPUMemBytes),
		Disk:  disk,
		Cache: cache,
		Store: &storage.Store{Disk: disk, Cache: cache},
	}
}
