package hardware

import (
	"testing"

	"github.com/minatoloader/minato/internal/gpu"
	"github.com/minatoloader/minato/internal/simtime"
)

func TestConfigAMatchesPaper(t *testing.T) {
	c := ConfigA()
	if c.Cores != 128 {
		t.Errorf("cores = %d, want 128 (2×64-core EPYC)", c.Cores)
	}
	if c.GPUCount != 4 || c.GPUArch != gpu.A100 {
		t.Errorf("GPUs = %d×%s, want 4×A100", c.GPUCount, c.GPUArch.Name)
	}
	if c.MemBytes != 512<<30 {
		t.Errorf("mem = %d", c.MemBytes)
	}
}

func TestConfigBMatchesPaper(t *testing.T) {
	c := ConfigB()
	if c.Cores != 80 {
		t.Errorf("cores = %d, want 80 (2×40-core Xeon)", c.Cores)
	}
	if c.GPUCount != 8 || c.GPUArch != gpu.V100 {
		t.Errorf("GPUs = %d×%s, want 8×V100", c.GPUCount, c.GPUArch.Name)
	}
	if c.StorageBandwidth != 7e9 {
		t.Errorf("NVMe bandwidth = %v, want 7 GB/s", c.StorageBandwidth)
	}
}

func TestWithGPUsAndMemoryLimit(t *testing.T) {
	c := ConfigA().WithGPUs(2).WithMemoryLimit(80 << 30)
	if c.GPUCount != 2 || c.MemBytes != 80<<30 {
		t.Fatalf("overrides failed: %+v", c)
	}
	// Original unchanged (value semantics).
	if ConfigA().GPUCount != 4 {
		t.Fatal("ConfigA mutated")
	}
}

func TestNewTestbedWiresDevices(t *testing.T) {
	k := simtime.NewVirtual()
	tb := NewTestbed(k, ConfigB().WithGPUs(3))
	if len(tb.GPUs) != 3 {
		t.Fatalf("GPUs = %d", len(tb.GPUs))
	}
	if tb.CPU.Capacity() != 80 {
		t.Fatalf("CPU capacity = %v", tb.CPU.Capacity())
	}
	if tb.Store == nil || tb.Store.Cache != tb.Cache || tb.Store.Disk != tb.Disk {
		t.Fatal("store not wired to cache/disk")
	}
	// Page cache gets memory minus working set.
	if got := tb.Cache.Stats().Capacity; got != (512-16)<<30 {
		t.Fatalf("cache capacity = %d", got)
	}
}

func TestTinyMemoryLimitClampsCache(t *testing.T) {
	k := simtime.NewVirtual()
	tb := NewTestbed(k, ConfigB().WithMemoryLimit(1<<30))
	if got := tb.Cache.Stats().Capacity; got != 1<<30 {
		t.Fatalf("cache capacity = %d, want 1 GiB floor", got)
	}
}
