package registry

import (
	"testing"
)

func TestRegisterLookupNames(t *testing.T) {
	r := New[int]("thing")
	r.Register("b", 2)
	r.Register("a", 1)
	if v, ok := r.Lookup("a"); !ok || v != 1 {
		t.Fatalf("Lookup(a) = %d, %v", v, ok)
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) succeeded")
	}
	if got := r.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names() = %v, want sorted [a b]", got)
	}
	if got := r.Ordered(); got[0] != "b" || got[1] != "a" {
		t.Fatalf("Ordered() = %v, want registration order [b a]", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len() = %d", r.Len())
	}
}

func TestDuplicatePanics(t *testing.T) {
	r := New[string]("thing")
	r.Register("x", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	r.Register("x", "second")
}

func TestEmptyNamePanics(t *testing.T) {
	r := New[string]("thing")
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name Register did not panic")
		}
	}()
	r.Register("", "anonymous")
}

func TestNamesIsACopy(t *testing.T) {
	r := New[int]("thing")
	r.Register("a", 1)
	names := r.Names()
	names[0] = "mutated"
	if got := r.Names(); got[0] != "a" {
		t.Fatalf("Names() leaked internal state: %v", got)
	}
}
