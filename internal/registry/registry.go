// Package registry provides the generic named-plugin registry behind the
// public API's loader and workload registration: a concurrency-safe map
// from name to implementation that remembers registration order, so
// enumeration can present entries the way the paper lists them while
// lookup stays by name.
//
// Each pluggable vocabulary (data loaders, workloads) owns one Registry
// instance next to its types; the registry itself is dependency-free so it
// cannot create import cycles between the packages that populate it.
package registry

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is a named collection of T. The zero value is not usable; use
// New.
type Registry[T any] struct {
	kind string

	mu     sync.RWMutex
	byName map[string]T
	order  []string
}

// New returns an empty registry. kind names the entry type in panic
// messages ("loader", "workload").
func New[T any](kind string) *Registry[T] {
	return &Registry[T]{kind: kind, byName: make(map[string]T)}
}

// Register adds v under name. It panics on an empty name or a duplicate:
// registration happens at init time (or in deliberate test setup), where a
// collision is a programming error that must not be silently resolved by
// load order.
func (r *Registry[T]) Register(name string, v T) {
	if name == "" {
		panic(fmt.Sprintf("registry: empty %s name", r.kind))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("registry: duplicate %s %q", r.kind, name))
	}
	r.byName[name] = v
	r.order = append(r.order, name)
}

// Lookup returns the entry registered under name.
func (r *Registry[T]) Lookup(name string) (T, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.byName[name]
	return v, ok
}

// Names returns every registered name, sorted.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	sort.Strings(names)
	return names
}

// Ordered returns every registered name in registration order — the order
// built-ins present themselves (e.g. the paper's comparison order).
func (r *Registry[T]) Ordered() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	return names
}

// Len returns the number of registered entries.
func (r *Registry[T]) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}
