package workload

import (
	"testing"
	"time"
)

func TestTable3Configs(t *testing.T) {
	ws := All(1)
	if len(ws) != 4 {
		t.Fatalf("workloads = %d", len(ws))
	}
	img, obj, s3, s10 := ws[0], ws[1], ws[2], ws[3]
	if img.BatchSize != 3 || img.Epochs != 50 {
		t.Errorf("img-seg config = %+v, want batch 3, 50 epochs", img)
	}
	if obj.BatchSize != 48 || obj.Iterations != 1000 {
		t.Errorf("obj-det config wrong: %+v", obj)
	}
	if s3.BatchSize != 24 || s3.Iterations != 1000 || s10.BatchSize != 24 {
		t.Errorf("speech configs wrong")
	}
	if s3.Name != "speech-3s" || s10.Name != "speech-10s" {
		t.Errorf("names: %s, %s", s3.Name, s10.Name)
	}
}

func TestSpecBudgets(t *testing.T) {
	img := ImageSegmentation(1)
	spec := img.Spec()
	if got := spec.BatchesPerEpoch(); got != 70 {
		t.Errorf("img-seg batches/epoch = %d, want 70 (210/3)", got)
	}
	if got := spec.TotalBatches(); got != 3500 {
		t.Errorf("img-seg total = %d, want 3500", got)
	}
	obj := ObjectDetection(1).Spec()
	if obj.TotalBatches() != 1000 || obj.TotalSamples() != 48000 {
		t.Errorf("obj-det budget: %d/%d", obj.TotalBatches(), obj.TotalSamples())
	}
}

func TestAccuracyCurveShape(t *testing.T) {
	w := ObjectDetection(1)
	a0 := w.Accuracy(0)
	aMid := w.Accuracy(15000)
	aEnd := w.Accuracy(45000)
	if a0 > 0.01 {
		t.Errorf("Accuracy(0) = %v", a0)
	}
	if aMid <= a0 || aEnd <= aMid {
		t.Errorf("accuracy not increasing: %v %v %v", a0, aMid, aEnd)
	}
	// Converges near the final value (paper: ≈6% bbox_mAP at 45k iters).
	if aEnd < 0.05 || aEnd > 0.07 {
		t.Errorf("Accuracy(45000) = %v, want ≈0.06", aEnd)
	}
}

func TestSlowThresholdSeparatesSpeechHeavies(t *testing.T) {
	w := Speech(1, 3*time.Second)
	th := w.SlowThreshold(0.75)
	// 80% of samples cost ≈0.51s; heavy ones ≈3s. P75 sits in between.
	if th < 480*time.Millisecond || th > 600*time.Millisecond {
		t.Fatalf("threshold = %v, want ≈0.51s", th)
	}
}

func TestSlowFractionVariant(t *testing.T) {
	w := SpeechSlowFraction(1, 0.5)
	heavy := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if w.Dataset.Sample(0, i).Features.Heavy {
			heavy++
		}
	}
	if f := float64(heavy) / n; f < 0.45 || f > 0.55 {
		t.Fatalf("heavy fraction = %.2f, want ≈0.5", f)
	}
}

func TestWithHelpers(t *testing.T) {
	w := ImageSegmentation(1).WithEpochs(10)
	if w.Epochs != 10 || w.Iterations != 0 {
		t.Fatal("WithEpochs wrong")
	}
	w = w.WithIterations(77)
	if w.Spec().TotalBatches() != 77 {
		t.Fatal("WithIterations wrong")
	}
}

func TestPairedModalities(t *testing.T) {
	if !Speech(1, 3*time.Second).PairedModalities() {
		t.Error("speech should be paired (audio-text)")
	}
	if ImageSegmentation(1).PairedModalities() {
		t.Error("img-seg should not be paired")
	}
}

func TestTable1Rows(t *testing.T) {
	rows := ImageSegmentation(1).Table1Row()
	want := []string{"RandomCrop", "RandomFlip", "RandomBrightness", "GaussianNoise", "Cast"}
	if len(rows) != len(want) {
		t.Fatalf("pipeline = %v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("pipeline = %v, want %v", rows, want)
		}
	}
}
