// Workload registration: the paper's evaluation tasks self-register here
// under their report names, and downstream packages add new training tasks
// the same way — making every -workload flag and the public
// minato.RegisterWorkload / minato.Workloads surface extensible without
// editing this package.
package workload

import (
	"time"

	"github.com/minatoloader/minato/internal/registry"
)

// Constructor builds a workload from a seed. Registered workloads are
// constructors rather than values so every run can re-derive its dataset
// and accuracy noise from the session seed.
type Constructor func(seed uint64) Workload

var reg = registry.New[Constructor]("workload")

func init() {
	// The paper's four evaluation workloads (Table 3), in evaluation order.
	Register("img-seg", ImageSegmentation)
	Register("obj-det", ObjectDetection)
	Register("speech-3s", func(seed uint64) Workload { return Speech(seed, 3*time.Second) })
	Register("speech-10s", func(seed uint64) Workload { return Speech(seed, 10*time.Second) })
}

// Register adds a workload constructor under name. It panics on an empty
// or duplicate name.
func Register(name string, fn Constructor) {
	reg.Register(name, fn)
}

// ByName builds the workload registered under name with the given seed.
func ByName(name string, seed uint64) (Workload, bool) {
	fn, ok := reg.Lookup(name)
	if !ok {
		return Workload{}, false
	}
	return fn(seed), true
}

// Names returns every registered workload name, sorted.
func Names() []string { return reg.Names() }

// Ordered returns every registered workload name in registration order:
// the paper's evaluation order first, then downstream registrations.
func Ordered() []string { return reg.Ordered() }
