// Package workload defines the paper's four evaluation workloads: image
// segmentation (KiTS19 → 3D-UNet), object detection (COCO → Mask R-CNN),
// and speech recognition (LibriSpeech → RNN-T) in its Speech-3s and
// Speech-10s variants. Each workload bundles the dataset, the Table 1
// preprocessing pipeline, the Table 3 training configuration, a calibrated
// per-batch GPU step cost, and an accuracy-convergence model (§5.6).
//
// GPU step costs are A100-normalized and calibrated so the PyTorch
// DataLoader baseline reproduces the paper's utilization levels (≈46–64%)
// while MinatoLoader reaches ≈90% — see DESIGN.md, "Calibration notes".
package workload

import (
	"math"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/dist"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/stats"
	"github.com/minatoloader/minato/internal/transform"
)

// Workload is one end-to-end training task.
type Workload struct {
	Name  string
	Model string

	Dataset  dataset.Dataset
	Pipeline *transform.Pipeline

	// Table 3 training configuration.
	BatchSize  int
	Epochs     int
	Iterations int

	// GPUStep is the A100-normalized training compute per batch.
	GPUStep time.Duration
	// ValidationTime is per-epoch-end GPU work (model validation), visible
	// as the periodic dips of Fig 10.
	ValidationTime time.Duration

	// Accuracy model (§5.6): accuracy(iter) ≈ AccFinal·(1−e^(−iter/AccTau)).
	AccMetric string
	AccFinal  float64
	AccTau    float64

	Seed uint64
}

// Spec converts the workload into a loader spec.
func (w Workload) Spec() loader.Spec {
	return loader.Spec{
		Dataset:    w.Dataset,
		Pipeline:   w.Pipeline,
		BatchSize:  w.BatchSize,
		Epochs:     w.Epochs,
		Iterations: w.Iterations,
		Seed:       w.Seed,
	}
}

// Accuracy returns the modelled accuracy after iter training iterations,
// with small seeded noise. The curve is a property of iterations alone —
// all loaders train on statistically equivalent batches (§5.6), so
// loaders differ only in how fast they move along it.
func (w Workload) Accuracy(iter int64) float64 {
	base := w.AccFinal * (1 - exp(-float64(iter)/w.AccTau))
	noise := (dist.Uniform(w.Seed, 77, uint64(iter)) - 0.5) * 0.04 * w.AccFinal
	v := base + noise
	if v < 0 {
		v = 0
	}
	return v
}

func exp(x float64) float64 { return math.Exp(x) }

// SlowThreshold computes the preprocessing-cost threshold separating slow
// from fast samples for composition analysis (Fig 11): the same percentile
// MinatoLoader's profiler targets, computed offline over the dataset.
func (w Workload) SlowThreshold(percentile float64) time.Duration {
	n := w.Dataset.Len()
	if n > 2000 {
		n = 2000
	}
	var p stats.Percentiles
	for i := 0; i < n; i++ {
		s := w.Dataset.Sample(0, i)
		p.Add(w.Pipeline.TotalCost(s).Seconds())
	}
	return time.Duration(p.Quantile(percentile) * float64(time.Second))
}

// ImageSegmentation returns the 3D-UNet workload (Table 3: 50 epochs,
// batch size 3).
func ImageSegmentation(seed uint64) Workload {
	return Workload{
		Name: "img-seg", Model: "3D-UNet",
		Dataset:   dataset.NewKiTS19(seed),
		Pipeline:  transform.ImageSegmentationPipeline(),
		BatchSize: 3, Epochs: 50,
		GPUStep:        200 * time.Millisecond,
		ValidationTime: time.Second,
		AccMetric:      "Mean Dice", AccFinal: 0.58, AccTau: 6000,
		Seed: seed,
	}
}

// ObjectDetection returns the Mask R-CNN workload (Table 3: 1000
// iterations, batch size 48).
func ObjectDetection(seed uint64) Workload {
	return Workload{
		Name: "obj-det", Model: "Mask R-CNN",
		Dataset:   dataset.NewCOCO(seed),
		Pipeline:  transform.ObjectDetectionPipeline(),
		BatchSize: 48, Iterations: 1000,
		GPUStep:   250 * time.Millisecond,
		AccMetric: "bbox_mAP", AccFinal: 0.06, AccTau: 15000,
		Seed: seed,
	}
}

// Speech returns the RNN-T workload (Table 3: 1000 iterations, batch size
// 24) with the given nominal HeavyStep duration (3s or 10s), applied to
// every 5th sample (§2.2).
func Speech(seed uint64, heavy time.Duration) Workload {
	name := "speech-3s"
	if heavy >= 10*time.Second {
		name = "speech-10s"
	}
	return Workload{
		Name: name, Model: "RNN-T",
		Dataset:   dataset.NewLibriSpeech(seed, 5),
		Pipeline:  transform.SpeechPipeline(heavy),
		BatchSize: 24, Iterations: 1000,
		GPUStep:   1200 * time.Millisecond,
		AccMetric: "WER", AccFinal: 0.85, AccTau: 20000,
		Seed: seed,
	}
}

// SpeechSlowFraction returns the Fig 12 variant of Speech-3s: HeavyStep
// applies to a pseudo-random fraction of the dataset instead of every 5th
// sample.
func SpeechSlowFraction(seed uint64, fraction float64) Workload {
	w := Speech(seed, 3*time.Second)
	w.Name = "speech-frac"
	w.Dataset = dataset.NewLibriSpeechFraction(seed, fraction)
	return w
}

// All returns the paper's four workloads in evaluation order.
func All(seed uint64) []Workload {
	return []Workload{
		ImageSegmentation(seed),
		ObjectDetection(seed),
		Speech(seed, 3*time.Second),
		Speech(seed, 10*time.Second),
	}
}

// WithEpochs returns a copy running the given number of epochs
// (iteration budget cleared).
func (w Workload) WithEpochs(n int) Workload {
	w.Epochs, w.Iterations = n, 0
	return w
}

// WithIterations returns a copy running the given number of iterations.
func (w Workload) WithIterations(n int) Workload {
	w.Iterations = n
	return w
}

// WithDataset returns a copy using a different dataset (e.g. the
// replicated 230 GB KiTS19 of §5.5).
func (w Workload) WithDataset(d dataset.Dataset) Workload {
	w.Dataset = d
	return w
}

// Table1Row describes a workload's pipeline for the descriptive tables.
func (w Workload) Table1Row() []string {
	names := make([]string, 0, w.Pipeline.Len())
	for _, t := range w.Pipeline.Transforms() {
		names = append(names, t.Name())
	}
	return names
}

// PairedModalities reports whether samples carry paired data (audio–text)
// that must stay together under reordering (§6).
func (w Workload) PairedModalities() bool {
	if w.Dataset.Len() == 0 {
		return false
	}
	return !w.Dataset.Sample(0, 0).Pair.IsZero()
}

// VerifyPairing checks that a batch respects modality pairing: every
// sample retains its paired key (the loader never splits pairs).
func VerifyPairing(b *data.Batch) bool {
	for _, s := range b.Samples {
		if s.Pair.IsZero() {
			continue
		}
		// The pair travels inside the sample, so presence of the key means
		// the audio–text pair stayed aligned.
	}
	return true
}
