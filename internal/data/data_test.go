package data

import (
	"testing"
	"time"
)

func TestCloneResetsPreprocessingState(t *testing.T) {
	s := &Sample{
		Index: 3, Key: KeyOf("k", 3), RawBytes: 100, Bytes: 55,
		NextTransform: 2, PreprocCost: time.Second,
		Features: Features{Complexity: 0.5, Heavy: true},
	}
	c := s.Clone()
	if c.Bytes != 100 || c.NextTransform != 0 || c.PreprocCost != 0 {
		t.Fatalf("clone state not reset: %+v", c)
	}
	if c.Index != 3 || c.Key != KeyOf("k", 3) || !c.Features.Heavy {
		t.Fatalf("clone lost identity: %+v", c)
	}
	c.Bytes = 1
	if s.Bytes != 55 {
		t.Fatal("clone aliases original")
	}
}

func TestBatchAccessors(t *testing.T) {
	b := &Batch{Samples: []*Sample{
		{Bytes: 10, MarkedSlow: true},
		{Bytes: 20},
		{Bytes: 30, MarkedSlow: true},
	}}
	if b.Bytes() != 60 {
		t.Fatalf("Bytes = %d", b.Bytes())
	}
	if b.Size() != 3 {
		t.Fatalf("Size = %d", b.Size())
	}
	if b.SlowCount() != 2 {
		t.Fatalf("SlowCount = %d", b.SlowCount())
	}
}

func TestSampleString(t *testing.T) {
	s := &Sample{Index: 7, Epoch: 2, Key: KeyOf("d", 7), RawBytes: 64 << 20}
	if got := s.String(); got == "" {
		t.Fatal("empty String()")
	}
}
