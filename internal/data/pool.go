package data

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Sample ownership states (Sample.state, accessed atomically).
const (
	stateUntracked uint32 = iota // built outside any pool; lifecycle unchecked
	stateLive                    // owned by a pipeline stage
	stateFree                    // sitting in the pool awaiting reuse
)

// Pool recycles samples and batches through the data path so the steady
// state allocates nothing: the index stream draws epoch instances from the
// pool instead of the heap, and consumers return delivered batches with
// Batch.Release once trained on.
//
// Ownership protocol: Get hands out a live sample owned by the caller;
// ownership travels with the sample through queues and batches; Put (or
// Batch.Release, which Puts every sample) ends it. The pool recognizes
// misuse loudly: Put on a free sample panics (double release), and holders
// that cache Generation can detect recycling with AssertOwned
// (use-after-release). A nil *Pool is valid and degrades to plain heap
// allocation with no lifecycle checks.
//
// Pools are safe for concurrent use. The backing freelists are global
// sync.Pools, so recycled instances flow across sessions within a process —
// a fresh Pool per session still reaches steady-state reuse immediately.
type Pool struct {
	gets     atomic.Int64 // samples handed out
	reuses   atomic.Int64 // subset of gets served by recycling
	puts     atomic.Int64 // samples returned
	livePeak atomic.Int64 // high-water mark of outstanding samples
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

var samplePool = sync.Pool{New: func() any { return new(Sample) }}
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// Get returns a zeroed sample owned by the caller. On a nil pool it simply
// allocates.
func (p *Pool) Get() *Sample {
	if p == nil {
		return &Sample{}
	}
	s := samplePool.Get().(*Sample)
	switch st := atomic.LoadUint32(&s.state); st {
	case stateUntracked: // fresh allocation from the sync.Pool's New
		atomic.StoreUint32(&s.state, stateLive)
	case stateFree:
		if !atomic.CompareAndSwapUint32(&s.state, stateFree, stateLive) {
			panic("data: pool freelist handed out a sample that changed state")
		}
		p.reuses.Add(1)
	default:
		panic(fmt.Sprintf("data: pool freelist holds a live sample (%v)", s))
	}
	gen := s.gen
	*s = Sample{}
	s.state, s.gen = stateLive, gen
	n := p.gets.Add(1) - p.puts.Load()
	for {
		cur := p.livePeak.Load()
		if n <= cur || p.livePeak.CompareAndSwap(cur, n) {
			break
		}
	}
	return s
}

// Put returns a sample to the pool, ending the caller's ownership. Putting
// a sample that is already free panics — that is a double release, and the
// first releaser's recycled instance would otherwise be corrupted. Samples
// built outside a pool (state untracked) and nil samples are ignored, as is
// every Put on a nil pool.
func (p *Pool) Put(s *Sample) {
	if p == nil || s == nil {
		return
	}
	switch st := atomic.LoadUint32(&s.state); st {
	case stateUntracked:
		return
	case stateFree:
		panic(fmt.Sprintf("data: double release of %v (generation %d)", s, s.gen))
	case stateLive:
		// gen advances before the state flips to free, so a holder that
		// snapshotted the old generation fails AssertOwned either way.
		s.gen++
		if !atomic.CompareAndSwapUint32(&s.state, stateLive, stateFree) {
			panic(fmt.Sprintf("data: concurrent double release of %v", s))
		}
		p.puts.Add(1)
		samplePool.Put(s)
	default:
		panic(fmt.Sprintf("data: sample in impossible state %d", st))
	}
}

// CloneReset returns a pooled copy of s with preprocessing state reset, as
// if freshly loaded, and releases s — the restart-from-scratch ablation's
// replacement for Clone, which leaked the original instance.
func (p *Pool) CloneReset(s *Sample) *Sample {
	c := p.Get()
	c.CopyFrom(s)
	c.Bytes = s.RawBytes
	c.NextTransform = 0
	c.PreprocCost = 0
	p.Put(s)
	return c
}

// Generation returns the sample's recycle count. A holder that must detect
// use-after-release snapshots it at acquisition and checks with AssertOwned.
func (s *Sample) Generation() uint32 { return s.gen }

// AssertOwned panics when the sample has been released (or released and
// recycled) since the holder snapshotted gen — the loud use-after-release
// check of the pool lifecycle.
func (s *Sample) AssertOwned(gen uint32) {
	if atomic.LoadUint32(&s.state) != stateLive || s.gen != gen {
		panic(fmt.Sprintf(
			"data: use after release: sample %v is at generation %d/state %d, holder expected live generation %d",
			s, s.gen, atomic.LoadUint32(&s.state), gen))
	}
}

// GetBatch returns an empty batch bound to p whose Samples backing array
// has at least the given capacity. On a nil pool it allocates a plain,
// lifecycle-unchecked batch.
func (p *Pool) GetBatch(capacity int) *Batch {
	if p == nil {
		return &Batch{Samples: make([]*Sample, 0, capacity)}
	}
	b := batchPool.Get().(*Batch)
	samples := b.Samples
	if cap(samples) < capacity {
		samples = make([]*Sample, 0, capacity)
	}
	// Field-wise reset: the packed state is atomic and must transition to
	// "next generation, live" rather than be clobbered by a struct copy.
	b.Samples = samples[:0]
	b.Seq, b.CreatedAt, b.Resident = 0, 0, false
	b.pool = p
	b.state.Store(uint64(uint32(b.state.Load()>>1)+1) << 1)
	return b
}

// putBatch recycles a released batch, keeping its backing array.
func (p *Pool) putBatch(b *Batch) { batchPool.Put(b) }

// PoolStats is a snapshot of pool activity.
type PoolStats struct {
	Gets, Reuses, Puts int64
	// LivePeak is the high-water mark of samples simultaneously outstanding
	// — the pool's answer to "how much memory does the steady state need".
	LivePeak int64
}

// Stats returns a snapshot of pool counters (zero for a nil pool).
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{
		Gets: p.gets.Load(), Reuses: p.reuses.Load(),
		Puts: p.puts.Load(), LivePeak: p.livePeak.Load(),
	}
}
