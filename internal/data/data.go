// Package data defines the vocabulary types flowing through every loader:
// samples and batches. A Sample carries the observable properties a real
// data loader would see (sizes, keys) plus hidden per-sample features that
// drive the synthetic cost models — the loaders themselves never read the
// hidden features, mirroring the paper's observation (§3.2) that
// preprocessing cost is not predictable from observable attributes alone.
//
// Samples and batches have an explicit ownership lifecycle (see Pool): the
// loader that draws a sample owns it until the sample is delivered inside a
// batch, the consumer owns the batch until it calls Batch.Release, and
// Release recycles every sample for the next draw. The pool's generation
// counter turns use-after-release and double-release into loud panics
// instead of silent data corruption.
package data

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Key identifies a stored object — a sample's bytes on storage, or a paired
// modality — without allocating: it is a comparable value of a constant
// namespace string and an index, so constructing one per sample draw costs
// nothing, unlike the formatted string keys it replaced.
type Key struct {
	// Space is the namespace: the dataset name, a replica namespace, or a
	// modality prefix ("librispeech/txt"). Implementations keep it constant
	// per dataset so Key construction never allocates.
	Space string
	// Index is the object's index within the space.
	Index int64
}

// IsZero reports whether k is the zero key (no object).
func (k Key) IsZero() bool { return k == Key{} }

// String renders the key for diagnostics.
func (k Key) String() string { return fmt.Sprintf("%s/%d", k.Space, k.Index) }

// KeyOf builds a key. Convenience for tests and custom datasets.
func KeyOf(space string, index int) Key { return Key{Space: space, Index: int64(index)} }

// Features are hidden per-sample properties that determine preprocessing
// cost. They model input heterogeneity (resolution, sparsity, compression)
// and randomized augmentation triggers (§3.1). Loaders must not read them.
type Features struct {
	// Complexity in [0,1] drives cost variability uncorrelated with size.
	Complexity float64
	// AugmentDraw in [0,1) selects randomized-augmentation cost tiers.
	AugmentDraw float64
	// Heavy marks samples subject to the speech HeavyStep transformation.
	Heavy bool
}

// Sample is one training example moving through the pipeline.
type Sample struct {
	// Index identifies the sample within its dataset.
	Index int
	// Epoch is the training epoch this instance was drawn for.
	Epoch int
	// Key is the storage/cache key (stable across epochs).
	Key Key
	// RawBytes is the on-storage size; Bytes is the current in-memory size
	// and changes as transforms inflate or deflate the sample.
	RawBytes, Bytes int64
	// Features are hidden cost-model inputs (see Features).
	Features Features
	// Pair links paired modalities (e.g. audio–text); the zero key means
	// unpaired. Loaders must keep paired samples together (§6).
	Pair Key

	// NextTransform is the pipeline resume index: Algorithm 1 records the
	// transformation in progress when a sample times out, and background
	// workers resume (re-executing that transform) from here.
	NextTransform int

	// Bookkeeping stamped by loaders (virtual time).
	LoadedAt      time.Duration
	PreprocStart  time.Duration
	PreprocEnd    time.Duration
	PreprocCost   time.Duration // accumulated full-speed compute consumed
	MarkedSlow    bool          // flagged slow by a load balancer
	ResumedFrom   int           // transform index a slow sample resumed from
	TimesResumed  int
	DeliveredSeq  int64 // order of delivery to training
	OriginalOrder int64 // order the sampler drew the index in

	// Pool bookkeeping (see Pool). state is accessed atomically; gen counts
	// recycles so stale holders can be detected.
	state uint32
	gen   uint32
}

// Clone returns a freshly allocated copy of s with preprocessing state
// reset, as if freshly loaded. The clone is untracked by any pool; inside
// loader data paths prefer Pool.CloneReset, which recycles s.
func (s *Sample) Clone() *Sample {
	c := &Sample{}
	c.CopyFrom(s)
	c.Bytes = s.RawBytes
	c.NextTransform = 0
	c.PreprocCost = 0
	return c
}

// CopyFrom copies every payload field of src into s, preserving s's pool
// identity (ownership state and generation).
func (s *Sample) CopyFrom(src *Sample) {
	state, gen := s.state, s.gen
	*s = *src
	s.state, s.gen = state, gen
}

// String implements fmt.Stringer for diagnostics.
func (s *Sample) String() string {
	return fmt.Sprintf("sample{#%d ep%d %s raw=%dMB}", s.Index, s.Epoch, s.Key, s.RawBytes>>20)
}

// Batch is a set of preprocessed samples ready for training.
//
// Ownership: a batch assembled from a Pool must be returned to it with
// Release when the consumer is done with the samples; after Release the
// batch and every sample in it are recycled and must not be touched.
// Batches built without a pool (plain struct literals) ignore Release.
type Batch struct {
	Samples   []*Sample
	Seq       int64         // construction order
	CreatedAt time.Duration // when batch construction completed
	// Resident marks batches already in GPU memory: DALI preprocesses on
	// the device, and MinatoLoader prefetches batches over a CUDA stream
	// ahead of training (§4.3), so the trainer skips the H2D copy.
	Resident bool

	pool *Pool
	// state packs (generation << 1) | releasedBit into one atomic word, so
	// release claims are CAS transitions: a holder racing a concurrent
	// release-and-recycle can never free another incarnation's samples.
	// The generation survives recycling and only ever grows.
	state atomic.Uint64
}

const batchReleasedBit = 1

// Generation returns the batch's recycle count. Holders that might race a
// consumer's own Release (the session iterator releases the previously
// yielded batch on the next step) snapshot it at delivery and release with
// ReleaseIfOwned, so a batch the holder no longer owns is left alone
// instead of freeing another owner's samples.
func (b *Batch) Generation() uint32 { return uint32(b.state.Load() >> 1) }

func (b *Batch) isReleased() bool { return b.state.Load()&batchReleasedBit != 0 }

// ReleaseIfOwned releases the batch only when it is still the same live
// incarnation the holder snapshotted — nobody released (and possibly
// recycled) it since. It reports whether the release happened. The claim
// is a single CAS on the packed state, so it is safe even against a
// concurrent recycle of the batch by another owner.
func (b *Batch) ReleaseIfOwned(gen uint32) bool {
	if b == nil || !b.state.CompareAndSwap(uint64(gen)<<1, uint64(gen)<<1|batchReleasedBit) {
		return false
	}
	b.recycle()
	return true
}

// Release returns the batch and all its samples to the pool that assembled
// it. It panics on double release; it is a no-op for non-pooled batches and
// nil receivers, so consumers can call it unconditionally.
func (b *Batch) Release() {
	if b == nil {
		return
	}
	for {
		cur := b.state.Load()
		if cur&batchReleasedBit != 0 {
			panic(fmt.Sprintf("data: batch %d released twice", b.Seq))
		}
		if b.state.CompareAndSwap(cur, cur|batchReleasedBit) {
			break
		}
	}
	b.recycle()
}

// recycle returns the samples and the batch to the pool. The caller has
// already claimed the released bit, so it runs exactly once per
// incarnation.
func (b *Batch) recycle() {
	p := b.pool
	if p == nil {
		return // non-pooled batch: the released bit still arms the checks
	}
	b.pool = nil
	for i, s := range b.Samples {
		p.Put(s)
		b.Samples[i] = nil
	}
	b.Samples = b.Samples[:0]
	p.putBatch(b)
}

// Bytes returns the total processed size of the batch.
func (b *Batch) Bytes() int64 {
	b.mustLive("Bytes")
	var n int64
	for _, s := range b.Samples {
		n += s.Bytes
	}
	return n
}

// Size returns the number of samples.
func (b *Batch) Size() int {
	b.mustLive("Size")
	return len(b.Samples)
}

// SlowCount returns how many samples in the batch were flagged slow.
func (b *Batch) SlowCount() int {
	b.mustLive("SlowCount")
	n := 0
	for _, s := range b.Samples {
		if s.MarkedSlow {
			n++
		}
	}
	return n
}

func (b *Batch) mustLive(op string) {
	if b.isReleased() {
		panic(fmt.Sprintf("data: batch %d used after Release (%s)", b.Seq, op))
	}
}
