// Package data defines the vocabulary types flowing through every loader:
// samples and batches. A Sample carries the observable properties a real
// data loader would see (sizes, keys) plus hidden per-sample features that
// drive the synthetic cost models — the loaders themselves never read the
// hidden features, mirroring the paper's observation (§3.2) that
// preprocessing cost is not predictable from observable attributes alone.
package data

import (
	"fmt"
	"time"
)

// Features are hidden per-sample properties that determine preprocessing
// cost. They model input heterogeneity (resolution, sparsity, compression)
// and randomized augmentation triggers (§3.1). Loaders must not read them.
type Features struct {
	// Complexity in [0,1] drives cost variability uncorrelated with size.
	Complexity float64
	// AugmentDraw in [0,1) selects randomized-augmentation cost tiers.
	AugmentDraw float64
	// Heavy marks samples subject to the speech HeavyStep transformation.
	Heavy bool
}

// Sample is one training example moving through the pipeline.
type Sample struct {
	// Index identifies the sample within its dataset.
	Index int
	// Epoch is the training epoch this instance was drawn for.
	Epoch int
	// Key is the storage/cache key (stable across epochs).
	Key string
	// RawBytes is the on-storage size; Bytes is the current in-memory size
	// and changes as transforms inflate or deflate the sample.
	RawBytes, Bytes int64
	// Features are hidden cost-model inputs (see Features).
	Features Features
	// PairKey links paired modalities (e.g. audio–text); loaders must keep
	// paired samples together (§6).
	PairKey string

	// NextTransform is the pipeline resume index: Algorithm 1 records the
	// transformation in progress when a sample times out, and background
	// workers resume (re-executing that transform) from here.
	NextTransform int

	// Bookkeeping stamped by loaders (virtual time).
	LoadedAt      time.Duration
	PreprocStart  time.Duration
	PreprocEnd    time.Duration
	PreprocCost   time.Duration // accumulated full-speed compute consumed
	MarkedSlow    bool          // flagged slow by a load balancer
	ResumedFrom   int           // transform index a slow sample resumed from
	TimesResumed  int
	DeliveredSeq  int64 // order of delivery to training
	OriginalOrder int64 // order the sampler drew the index in
}

// Clone returns a copy of s with preprocessing state reset, as if freshly
// loaded. Used when a pipeline must restart from scratch.
func (s *Sample) Clone() *Sample {
	c := *s
	c.Bytes = s.RawBytes
	c.NextTransform = 0
	c.PreprocCost = 0
	return &c
}

// String implements fmt.Stringer for diagnostics.
func (s *Sample) String() string {
	return fmt.Sprintf("sample{#%d ep%d %s raw=%dMB}", s.Index, s.Epoch, s.Key, s.RawBytes>>20)
}

// Batch is a set of preprocessed samples ready for training.
type Batch struct {
	Samples   []*Sample
	Seq       int64         // construction order
	CreatedAt time.Duration // when batch construction completed
	// Resident marks batches already in GPU memory: DALI preprocesses on
	// the device, and MinatoLoader prefetches batches over a CUDA stream
	// ahead of training (§4.3), so the trainer skips the H2D copy.
	Resident bool
}

// Bytes returns the total processed size of the batch.
func (b *Batch) Bytes() int64 {
	var n int64
	for _, s := range b.Samples {
		n += s.Bytes
	}
	return n
}

// Size returns the number of samples.
func (b *Batch) Size() int { return len(b.Samples) }

// SlowCount returns how many samples in the batch were flagged slow.
func (b *Batch) SlowCount() int {
	n := 0
	for _, s := range b.Samples {
		if s.MarkedSlow {
			n++
		}
	}
	return n
}
