package data

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkPoolSharedContention measures the sample pool under the
// multi-tenant cluster's access pattern: many sessions concurrently
// drawing, filling, and releasing samples through one shared Pool. The
// freelists are global sync.Pools, so the interesting number is how
// get/put throughput holds up as tenant goroutines are added.
func BenchmarkPoolSharedContention(b *testing.B) {
	for _, tenants := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			p := NewPool()
			b.ReportAllocs()
			var wg sync.WaitGroup
			per := b.N / tenants
			b.ResetTimer()
			for t := 0; t < tenants; t++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						s := p.Get()
						s.RawBytes, s.Bytes = 1<<16, 1<<16
						p.Put(s)
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkPoolBatchLifecycle measures the batch path of the same shared
// lifecycle: assemble a pooled batch of pooled samples, then release it,
// concurrently across tenant goroutines.
func BenchmarkPoolBatchLifecycle(b *testing.B) {
	const batchSize = 32
	p := NewPool()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			batch := p.GetBatch(batchSize)
			for i := 0; i < batchSize; i++ {
				batch.Samples = append(batch.Samples, p.Get())
			}
			batch.Release()
		}
	})
}
