package data

import (
	"sync"
	"testing"
)

func TestPoolRecyclesSamples(t *testing.T) {
	p := NewPool()
	s := p.Get()
	s.Index = 7
	gen := s.Generation()
	p.Put(s)
	s2 := p.Get()
	if s2.Index != 0 || s2.NextTransform != 0 {
		t.Fatalf("recycled sample not reset: %+v", s2)
	}
	if s2 == s && s2.Generation() == gen {
		t.Fatal("recycled instance kept its generation")
	}
	st := p.Stats()
	if st.Gets != 2 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	p := NewPool()
	s := p.Get()
	p.Put(s)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	p.Put(s)
}

func TestPoolUseAfterReleasePanics(t *testing.T) {
	p := NewPool()
	s := p.Get()
	gen := s.Generation()
	s.AssertOwned(gen) // valid while live
	p.Put(s)
	defer func() {
		if recover() == nil {
			t.Fatal("use after release did not panic")
		}
	}()
	s.AssertOwned(gen)
}

func TestBatchDoubleReleasePanics(t *testing.T) {
	p := NewPool()
	b := p.GetBatch(4)
	b.Samples = append(b.Samples, p.Get())
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double batch release did not panic")
		}
	}()
	b.Release()
}

func TestBatchUseAfterReleasePanics(t *testing.T) {
	p := NewPool()
	b := p.GetBatch(1)
	b.Samples = append(b.Samples, p.Get())
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes on a released batch did not panic")
		}
	}()
	_ = b.Bytes()
}

func TestUntrackedSamplesIgnoredByPut(t *testing.T) {
	p := NewPool()
	p.Put(&Sample{}) // plain literal: no lifecycle, no panic
	p.Put(nil)
	var nilPool *Pool
	s := nilPool.Get()
	if s == nil {
		t.Fatal("nil pool must still allocate")
	}
	nilPool.Put(s)
	if b := nilPool.GetBatch(3); cap(b.Samples) < 3 {
		t.Fatal("nil pool batch capacity")
	}
}

func TestCloneResetRecyclesOriginal(t *testing.T) {
	p := NewPool()
	s := p.Get()
	s.RawBytes, s.Bytes = 100, 55
	s.NextTransform, s.PreprocCost = 2, 42
	s.Index = 9
	c := p.CloneReset(s)
	if c.Bytes != 100 || c.NextTransform != 0 || c.PreprocCost != 0 || c.Index != 9 {
		t.Fatalf("CloneReset state: %+v", c)
	}
	// The original must have gone back to the pool: releasing it again is a
	// double release.
	defer func() {
		if recover() == nil {
			t.Fatal("original not released by CloneReset")
		}
	}()
	p.Put(s)
}

// TestPoolLifecycleHammer drives the put/recycle cycle from many goroutines
// under -race: samples flow get → hand off through a channel → release,
// with batches assembled and released concurrently. The correctness bar is
// that no panic fires and the pool's accounting balances — the generation
// counter must stay quiet for a well-behaved pipeline even at full
// contention.
func TestPoolLifecycleHammer(t *testing.T) {
	p := NewPool()
	const (
		producers = 8
		consumers = 8
		perProd   = 2000
		batchSize = 16
	)
	ch := make(chan *Sample, 64)
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perProd; j++ {
				s := p.Get()
				s.Index = id*perProd + j
				s.AssertOwned(s.Generation())
				ch <- s
			}
		}(i)
	}
	var consumed sync.WaitGroup
	for i := 0; i < consumers; i++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			b := p.GetBatch(batchSize)
			for s := range ch {
				s.AssertOwned(s.Generation())
				b.Samples = append(b.Samples, s)
				if len(b.Samples) == batchSize {
					b.Release()
					b = p.GetBatch(batchSize)
				}
			}
			b.Release()
		}()
	}
	wg.Wait()
	close(ch)
	consumed.Wait()
	st := p.Stats()
	if st.Gets-st.Puts != 0 {
		t.Fatalf("unbalanced lifecycle: %+v", st)
	}
	if st.Gets < producers*perProd {
		t.Fatalf("gets = %d, want ≥ %d", st.Gets, producers*perProd)
	}
	if st.Reuses == 0 {
		t.Fatal("hammer never recycled a sample")
	}
}

func TestReleaseIfOwnedGuardsStaleHolders(t *testing.T) {
	p := NewPool()
	b := p.GetBatch(2)
	b.Samples = append(b.Samples, p.Get())
	gen := b.Generation()
	if !b.ReleaseIfOwned(gen) {
		t.Fatal("owner's guarded release refused")
	}
	// The consumer released first (directly); a stale holder's guarded
	// release must now be a no-op, not a second free.
	if b.ReleaseIfOwned(gen) {
		t.Fatal("stale holder released an already-released batch")
	}
	// Recycled incarnation: generation advanced, stale guard still a no-op.
	b2 := p.GetBatch(2)
	if b2 == b && b2.ReleaseIfOwned(gen) {
		t.Fatal("stale holder released a recycled batch")
	}
	if b2.Generation() == gen && b2 == b {
		t.Fatal("recycling did not advance the batch generation")
	}
}
