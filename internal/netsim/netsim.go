// Package netsim models the cluster interconnect: NICs and links with
// bandwidth fair-sharing and latency, on the same event-driven wait fabric
// (simtime.Selector) that device occupancy uses. It is the substrate for
// true multi-node runs, where gradient all-reduce traffic and remote
// dataset fetches contend for the same NICs — the regime the single-server
// evaluation cannot see.
//
// Topology: every endpoint (a training node, or the storage server) owns a
// full-duplex NIC attached to a non-blocking switch, so the contention
// points are the 2·E unidirectional NIC links (egress and ingress per
// endpoint); the switch core is never the bottleneck, matching a
// fat-tree-style cluster fabric. A Flow from src to dst occupies src's
// egress and dst's ingress for its byte count, after a fixed propagation
// latency.
//
// Sharing: concurrent flows receive max-min fair rates, computed by
// water-filling over the links each flow crosses — the classic fluid
// approximation of per-flow fair queueing (TCP-like long flows on a shared
// fabric). Rates change only at flow entry/exit and explicit bandwidth
// changes, all of which are kernel-visible events; each in-flight flow
// parks on a pooled Selector with an exact completion deadline and is woken
// to re-integrate when its rate changes. No polling, and under the virtual
// runtime every transfer completes at a deterministic instant — identical
// seeds reproduce multi-node runs bit-for-bit.
package netsim

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

// Config sizes a fabric.
type Config struct {
	// Endpoints is the number of NIC-owning endpoints (training nodes plus
	// any storage servers).
	Endpoints int
	// Bandwidth is each NIC's full-duplex bandwidth in bytes/s per
	// direction (200 Gb/s ≈ 25e9, the paper's cluster interconnect).
	Bandwidth float64
	// Latency is the fixed per-transfer propagation delay.
	Latency time.Duration
}

// Fabric is the simulated interconnect. All methods are safe for
// concurrent use by tracked tasks.
type Fabric struct {
	rt      simtime.Runtime
	latency time.Duration

	mu    sync.Mutex
	links []link // 2 per endpoint: egress = 2e, ingress = 2e+1
	flows []*flow
	lastT time.Duration
	// residuals is water-filling scratch (one slot per link), kept on the
	// fabric so resharing allocates nothing.
	residuals []residual

	bytesMoved int64
	flowsDone  int64

	// pool recycles flow records (and their selectors) across Transfer
	// calls: the steady-state transfer path allocates nothing.
	pool sync.Pool
}

// link is one unidirectional NIC attachment.
type link struct {
	bw float64 // current bandwidth, bytes/s
	n  int     // flows crossing this link
	// busyIntegral accumulates ∫ (used-bandwidth / bw) dt in full-bandwidth
	// seconds, converted at the bandwidth in force when the traffic moved —
	// so a later SetBandwidth cannot retroactively rescale history.
	// Utilization over a window is Δbusy/Δt.
	busyIntegral float64
}

// flow is one in-flight transfer.
type flow struct {
	egress, ingress int     // link indices
	remaining       float64 // bytes left
	rate            float64 // current max-min fair rate, bytes/s
	prevRate        float64 // rate before the current reshare pass
	sel             *simtime.Selector
	parked          bool // holds an armed deadline for the current rate
}

// residual is per-link water-filling state: capacity and flow count not
// yet claimed by fixed flows.
type residual struct {
	cap float64
	n   int
}

// unfixedRate marks a flow not yet assigned by the current water-filling
// pass.
const unfixedRate = -1

// New returns a fabric with cfg.Endpoints NICs. Endpoints and Bandwidth
// must be positive.
func New(rt simtime.Runtime, cfg Config) *Fabric {
	if cfg.Endpoints <= 0 {
		panic("netsim: need at least one endpoint")
	}
	if cfg.Bandwidth <= 0 {
		panic("netsim: bandwidth must be positive")
	}
	f := &Fabric{
		rt:        rt,
		latency:   cfg.Latency,
		links:     make([]link, 2*cfg.Endpoints),
		residuals: make([]residual, 2*cfg.Endpoints),
		lastT:     rt.Now(),
	}
	for i := range f.links {
		f.links[i].bw = cfg.Bandwidth
	}
	return f
}

// Endpoints returns the number of NIC-owning endpoints.
func (f *Fabric) Endpoints() int { return len(f.links) / 2 }

// SetBandwidth rescales one endpoint's NIC to bw bytes/s in both
// directions — the degraded-link failure injection. In-flight flows are
// re-shared immediately.
func (f *Fabric) SetBandwidth(endpoint int, bw float64) {
	if bw <= 0 {
		panic("netsim: bandwidth must be positive")
	}
	f.mu.Lock()
	f.advanceLocked()
	f.links[2*endpoint].bw = bw
	f.links[2*endpoint+1].bw = bw
	f.reshareLocked()
	f.mu.Unlock()
}

// BytesMoved returns the cumulative bytes delivered by completed and
// in-progress transfers (integrated, not counted at completion).
func (f *Fabric) BytesMoved() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advanceLocked()
	return f.bytesMoved
}

// FlowsCompleted returns how many transfers have retired (finished or
// cancelled mid-flight).
func (f *Fabric) FlowsCompleted() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flowsDone
}

// LinkBusySeconds returns a NIC direction's cumulative transfer work in
// full-bandwidth seconds (dir 0 = egress, 1 = ingress): utilization over a
// window is Δbusy/Δt.
func (f *Fabric) LinkBusySeconds(endpoint, dir int) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advanceLocked()
	return f.links[2*endpoint+dir].busyIntegral
}

// Transfer moves n bytes from endpoint src to endpoint dst, occupying
// src's egress and dst's ingress NIC links. It blocks (in virtual time)
// for the propagation latency plus the fair-shared transfer time, and
// returns ctx.Err() if cancelled mid-flight. Loopback transfers (src ==
// dst) pay only the latency: node-local traffic never crosses the NIC.
func (f *Fabric) Transfer(ctx context.Context, src, dst int, n int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if src < 0 || src >= f.Endpoints() || dst < 0 || dst >= f.Endpoints() {
		return fmt.Errorf("netsim: transfer %d→%d outside fabric of %d endpoints", src, dst, f.Endpoints())
	}
	if f.latency > 0 {
		if err := f.rt.Sleep(ctx, f.latency); err != nil {
			return err
		}
	}
	if n <= 0 || src == dst {
		return nil
	}

	fl, _ := f.pool.Get().(*flow)
	if fl == nil {
		fl = &flow{sel: simtime.NewSelector(f.rt)}
	}
	fl.egress, fl.ingress = 2*src, 2*dst+1
	fl.remaining = float64(n)

	f.mu.Lock()
	f.advanceLocked()
	f.links[fl.egress].n++
	f.links[fl.ingress].n++
	f.flows = append(f.flows, fl)
	f.reshareLocked()

	for {
		if fl.remaining <= 1e-6 {
			f.exitLocked(fl)
			f.pool.Put(fl)
			return nil
		}
		// Exact completion deadline at the current rate. A rate drop while
		// parked only makes this deadline early — the flow re-integrates
		// and re-parks for the remainder; a rate rise wakes it through
		// reshareLocked. Reset under f.mu so wakes are serialized with the
		// cycle boundary.
		deadline := time.Duration(fl.remaining/fl.rate*float64(time.Second)) + time.Nanosecond
		fl.parked = true
		fl.sel.Reset()
		f.mu.Unlock()

		_, err := fl.sel.Wait(ctx, deadline)
		f.mu.Lock()
		fl.parked = false
		f.advanceLocked()
		if err != nil {
			f.exitLocked(fl)
			f.pool.Put(fl)
			return err
		}
	}
}

// exitLocked removes fl from the fabric and re-shares the survivors.
// Unlocks f.mu.
func (f *Fabric) exitLocked(fl *flow) {
	f.links[fl.egress].n--
	f.links[fl.ingress].n--
	for i, e := range f.flows {
		if e == fl {
			last := len(f.flows) - 1
			f.flows[i] = f.flows[last]
			f.flows[last] = nil
			f.flows = f.flows[:last]
			break
		}
	}
	f.flowsDone++
	f.reshareLocked()
	f.mu.Unlock()
}

// advanceLocked integrates every in-flight flow's progress (and each
// link's carried bytes) up to now. Rates are constant between events, so
// the integration is exact.
func (f *Fabric) advanceLocked() {
	now := f.rt.Now()
	dt := (now - f.lastT).Seconds()
	f.lastT = now
	if dt <= 0 || len(f.flows) == 0 {
		return
	}
	for _, fl := range f.flows {
		moved := fl.rate * dt
		if moved > fl.remaining {
			moved = fl.remaining
		}
		fl.remaining -= moved
		f.bytesMoved += int64(moved)
		eg, in := &f.links[fl.egress], &f.links[fl.ingress]
		eg.busyIntegral += moved / eg.bw
		in.busyIntegral += moved / in.bw
	}
}

// reshareLocked recomputes max-min fair rates by water-filling: repeatedly
// find the most-constrained link (smallest per-flow fair share among its
// unfixed flows), fix its flows at that share, subtract their bandwidth,
// and continue until every flow has a rate. Links are scanned in index
// order, so the result is deterministic. Flows whose armed deadline became
// stale (rate rose, or the flow was fixed by a different bottleneck than
// last time) are woken to re-park; a rate drop is left to the armed
// deadline, which fires early and re-integrates exactly.
func (f *Fabric) reshareLocked() {
	if len(f.flows) == 0 {
		return
	}
	res := f.residuals
	for i := range f.links {
		res[i] = residual{cap: f.links[i].bw, n: f.links[i].n}
	}
	unfixed := len(f.flows)
	for _, fl := range f.flows {
		fl.prevRate = fl.rate
		fl.rate = unfixedRate
	}
	for unfixed > 0 {
		// The tightest link's fair share bounds every flow through it.
		share := math.Inf(1)
		for i := range res {
			if res[i].n > 0 {
				if s := res[i].cap / float64(res[i].n); s < share {
					share = s
				}
			}
		}
		// Fix every flow crossing a bottleneck link at that share. Fixing
		// by value (not by one chosen link) handles several links tying in
		// a single deterministic pass.
		for _, fl := range f.flows {
			if fl.rate != unfixedRate {
				continue
			}
			eg, in := &res[fl.egress], &res[fl.ingress]
			if eg.cap/float64(eg.n) <= share+1e-9 || in.cap/float64(in.n) <= share+1e-9 {
				fl.rate = share
				eg.cap -= share
				eg.n--
				in.cap -= share
				in.n--
				unfixed--
			}
		}
	}
	for _, fl := range f.flows {
		if fl.parked && fl.rate > fl.prevRate {
			// The armed deadline is now too late; wake the flow to re-park
			// at the higher rate. A rate drop is left alone — the armed
			// deadline fires early and the flow re-integrates exactly. A
			// claim that loses the race (the flow is concurrently completing
			// or cancelling) is safely refused by the selector.
			fl.sel.TryWake(0)
			fl.parked = false
		}
	}
}
