// Package netsim models the cluster interconnect: NICs and links with
// bandwidth fair-sharing and latency, on the same event-driven wait fabric
// (simtime.Selector) that device occupancy uses. It is the substrate for
// true multi-node runs, where gradient all-reduce traffic and remote
// dataset fetches contend for the same NICs — the regime the single-server
// evaluation cannot see.
//
// Topology: every endpoint (a training node, or the storage server) owns a
// full-duplex NIC attached to a non-blocking switch, so the contention
// points are the 2·E unidirectional NIC links (egress and ingress per
// endpoint); the switch core is never the bottleneck, matching a
// fat-tree-style cluster fabric. A Flow from src to dst occupies src's
// egress and dst's ingress for its byte count, after a fixed propagation
// latency.
//
// Sharing: concurrent flows receive max-min fair rates, computed by
// water-filling over the links each flow crosses — the classic fluid
// approximation of per-flow fair queueing (TCP-like long flows on a shared
// fabric). Rates change only at flow entry/exit and explicit bandwidth
// changes, all of which are kernel-visible events; each in-flight flow
// parks on a pooled Selector with an exact completion deadline and is woken
// to re-integrate when its rate changes. No polling, and under the virtual
// runtime every transfer completes at a deterministic instant — identical
// seeds reproduce multi-node runs bit-for-bit.
package netsim

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/trace"
)

// Config sizes a fabric.
type Config struct {
	// Endpoints is the number of NIC-owning endpoints (training nodes plus
	// any storage servers).
	Endpoints int
	// Bandwidth is each NIC's full-duplex bandwidth in bytes/s per
	// direction (200 Gb/s ≈ 25e9, the paper's cluster interconnect).
	Bandwidth float64
	// Latency is the fixed per-transfer propagation delay.
	Latency time.Duration
}

// Fabric is the simulated interconnect. All methods are safe for
// concurrent use by tracked tasks.
type Fabric struct {
	rt      simtime.Runtime
	latency time.Duration

	mu    sync.Mutex
	links []link // 2 per endpoint: egress = 2e, ingress = 2e+1
	flows []*flow
	lastT time.Duration
	// anchorT is the last reshare instant: link busy integrals advance
	// analytically from their anchors at the carried rate-sum fixed then.
	anchorT time.Duration
	// residuals is water-filling scratch (one slot per link), kept on the
	// fabric so resharing allocates nothing.
	residuals []residual

	// doneBytes counts bytes delivered by retired flows exactly (a
	// completed flow contributes its full size as an integer, a cancelled
	// one its analytic partial progress); in-flight progress is added
	// analytically at query time. Nothing is accumulated per wake segment,
	// so the counter cannot pick up truncation jitter from scheduling-
	// dependent intermediate wakes.
	doneBytes int64
	flowsDone int64

	// pool recycles flow records (and their selectors) across Transfer
	// calls: the steady-state transfer path allocates nothing.
	pool sync.Pool

	// tr, when set, records flow-lifetime spans (StageFlow, on retirement)
	// and rate-change instants (StageFlowRate). Rate instants are recorded
	// at settlement — the first advance across real elapsed time — never
	// from mid-instant transients, so the span set is independent of the
	// order same-instant membership events reached the mutex.
	tr *trace.Recorder
}

// link is one unidirectional NIC attachment.
type link struct {
	bw float64 // current bandwidth, bytes/s
	n  int     // flows crossing this link
	// busyIntegral accumulates ∫ (used-bandwidth / bw) dt in full-bandwidth
	// seconds, converted at the bandwidth in force when the traffic moved —
	// so a later SetBandwidth cannot retroactively rescale history.
	// Utilization over a window is Δbusy/Δt. It is anchored at the last
	// reshare (anchorB at Fabric.anchorT, advancing at rateSum/bw) and
	// recomputed analytically, never per wake segment.
	busyIntegral float64
	anchorB      float64
	rateSum      float64 // total rate of flows crossing this link
}

// flow is one in-flight transfer. Progress is anchored at the last rate
// change: remaining is recomputed analytically from (anchorRem, anchorT,
// rate) and the completion instant is the absolute finishAt stamped when
// the rate was assigned. Anchors move only at reshare points — canonical
// kernel events — never at spurious wakes, so a flow's trajectory is a
// pure function of the fabric's event history and two runs of the same
// script produce bit-identical completion times and byte counts no matter
// how the OS schedules the tasks in between.
type flow struct {
	egress, ingress int           // link indices
	size            int64         // original transfer size
	startT          time.Duration // entry time (sort key)
	remaining       float64       // bytes left as of Fabric.lastT
	rate            float64       // current max-min fair rate, bytes/s
	prevRate        float64       // rate before the current reshare pass
	anchorRem       float64       // remaining at the last rate change
	anchorT         time.Duration // time of the last rate change
	finishAt        time.Duration // absolute completion deadline at rate
	sel             *simtime.Selector
	parked          bool // holds an armed deadline for the current rate
	// settledRate is the rate last recorded as a StageFlowRate instant;
	// -1 until the flow's first settlement. Comparing against it (rather
	// than flagging changes inside reshareLocked) skips transients that
	// bend back within one instant — whose occurrence depends on event
	// order — so the recorded set stays deterministic.
	settledRate float64
}

// flowLess is the canonical flow order: link pair, then entry time, then
// size. Flows equal under this key are fully interchangeable — same links,
// same start, same size means identical rate and progress trajectories —
// so the order among them cannot affect any observable. Keeping f.flows
// sorted by this key makes every iteration (water-filling fixes, progress
// integration) independent of the order tasks happened to reach the
// fabric's mutex, which is the difference between "deterministic in
// virtual time" and "deterministic only if the scheduler cooperates".
func flowLess(a, b *flow) bool {
	if a.egress != b.egress {
		return a.egress < b.egress
	}
	if a.ingress != b.ingress {
		return a.ingress < b.ingress
	}
	if a.startT != b.startT {
		return a.startT < b.startT
	}
	return a.size < b.size
}

// residual is per-link water-filling state: capacity and flow count not
// yet claimed by fixed flows.
type residual struct {
	cap float64
	n   int
}

// unfixedRate marks a flow not yet assigned by the current water-filling
// pass.
const unfixedRate = -1

// New returns a fabric with cfg.Endpoints NICs. Endpoints and Bandwidth
// must be positive.
func New(rt simtime.Runtime, cfg Config) *Fabric {
	if cfg.Endpoints <= 0 {
		panic("netsim: need at least one endpoint")
	}
	if cfg.Bandwidth <= 0 {
		panic("netsim: bandwidth must be positive")
	}
	f := &Fabric{
		rt:        rt,
		latency:   cfg.Latency,
		links:     make([]link, 2*cfg.Endpoints),
		residuals: make([]residual, 2*cfg.Endpoints),
		lastT:     rt.Now(),
		anchorT:   rt.Now(),
	}
	for i := range f.links {
		f.links[i].bw = cfg.Bandwidth
	}
	return f
}

// Endpoints returns the number of NIC-owning endpoints.
func (f *Fabric) Endpoints() int { return len(f.links) / 2 }

// EnableTrace attaches a span recorder: each retiring flow records a
// StageFlow span (Node = source endpoint, Key = destination endpoint,
// Detail = bytes delivered) and each settled rate change a StageFlowRate
// instant (Detail = bytes/s). Call before traffic starts.
func (f *Fabric) EnableTrace(r *trace.Recorder) {
	f.mu.Lock()
	f.tr = r
	f.mu.Unlock()
}

// MinBandwidth is the floor SetBandwidth clamps to, in bytes/s. A zero or
// negative bandwidth would divide the water-filling rate computation by
// zero; clamping instead of panicking lets failure scripts express a full
// link outage (traffic crawls at 1 B/s — effectively parked — and resumes
// when the link is restored).
const MinBandwidth = 1.0

// SetBandwidth rescales one endpoint's NIC to bw bytes/s in both
// directions — the degraded-link failure injection. In-flight flows are
// re-shared immediately. Values below MinBandwidth (including zero and
// negative: a scripted full link failure) are clamped to MinBandwidth.
func (f *Fabric) SetBandwidth(endpoint int, bw float64) {
	if bw < MinBandwidth || bw != bw {
		bw = MinBandwidth
	}
	f.mu.Lock()
	f.advanceLocked()
	f.links[2*endpoint].bw = bw
	f.links[2*endpoint+1].bw = bw
	f.reshareLocked()
	f.mu.Unlock()
}

// BytesMoved returns the cumulative bytes delivered by completed and
// in-progress transfers (in-flight progress included analytically).
func (f *Fabric) BytesMoved() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advanceLocked()
	total := f.doneBytes
	for _, fl := range f.flows {
		total += fl.size - int64(fl.remaining)
	}
	return total
}

// FlowsCompleted returns how many transfers have retired (finished or
// cancelled mid-flight).
func (f *Fabric) FlowsCompleted() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flowsDone
}

// LinkBusySeconds returns a NIC direction's cumulative transfer work in
// full-bandwidth seconds (dir 0 = egress, 1 = ingress): utilization over a
// window is Δbusy/Δt.
func (f *Fabric) LinkBusySeconds(endpoint, dir int) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advanceLocked()
	return f.links[2*endpoint+dir].busyIntegral
}

// Transfer moves n bytes from endpoint src to endpoint dst, occupying
// src's egress and dst's ingress NIC links. It blocks (in virtual time)
// for the propagation latency plus the fair-shared transfer time, and
// returns ctx.Err() if cancelled mid-flight. Loopback transfers (src ==
// dst) pay only the latency: node-local traffic never crosses the NIC.
func (f *Fabric) Transfer(ctx context.Context, src, dst int, n int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if src < 0 || src >= f.Endpoints() || dst < 0 || dst >= f.Endpoints() {
		return fmt.Errorf("netsim: transfer %d→%d outside fabric of %d endpoints", src, dst, f.Endpoints())
	}
	if f.latency > 0 {
		if err := f.rt.Sleep(ctx, f.latency); err != nil {
			return err
		}
	}
	if n <= 0 || src == dst {
		return nil
	}

	fl, _ := f.pool.Get().(*flow)
	if fl == nil {
		fl = &flow{sel: simtime.NewSelector(f.rt)}
	}
	fl.egress, fl.ingress = 2*src, 2*dst+1
	fl.size = n
	fl.remaining = float64(n)
	fl.rate = 0
	fl.settledRate = -1
	fl.finishAt = math.MaxInt64

	f.mu.Lock()
	f.advanceLocked()
	fl.startT = f.lastT
	fl.anchorRem = fl.remaining
	fl.anchorT = f.lastT
	f.links[fl.egress].n++
	f.links[fl.ingress].n++
	f.insertFlowLocked(fl)
	f.reshareLocked()

	for {
		if fl.remaining <= 1e-6 {
			f.exitLocked(fl)
			f.pool.Put(fl)
			return nil
		}
		// Park until the absolute completion instant stamped at the last
		// rate change. A rate drop while parked only makes this deadline
		// early — the flow re-integrates and re-parks for the remainder; a
		// rate rise wakes it through reshareLocked. Reset under f.mu so
		// wakes are serialized with the cycle boundary.
		deadline := fl.finishAt - f.lastT
		if deadline <= 0 {
			deadline = time.Nanosecond
		}
		fl.parked = true
		fl.sel.Reset()
		f.mu.Unlock()

		_, err := fl.sel.Wait(ctx, deadline)
		f.mu.Lock()
		fl.parked = false
		f.advanceLocked()
		if err != nil {
			f.exitLocked(fl)
			f.pool.Put(fl)
			return err
		}
	}
}

// insertFlowLocked places fl at its canonical position so f.flows stays
// sorted under flowLess regardless of mutex-acquisition order.
func (f *Fabric) insertFlowLocked(fl *flow) {
	i := len(f.flows)
	for j, e := range f.flows {
		if flowLess(fl, e) {
			i = j
			break
		}
	}
	f.flows = append(f.flows, nil)
	copy(f.flows[i+1:], f.flows[i:])
	f.flows[i] = fl
}

// exitLocked removes fl from the fabric (preserving the canonical order of
// the survivors) and re-shares them. Unlocks f.mu.
func (f *Fabric) exitLocked(fl *flow) {
	f.tr.Record(trace.Span{Start: fl.startT, End: f.lastT, Stage: trace.StageFlow,
		Node: int32(fl.egress / 2), Key: int64(fl.ingress / 2),
		Detail: fl.size - int64(fl.remaining)})
	f.doneBytes += fl.size - int64(fl.remaining)
	f.links[fl.egress].n--
	f.links[fl.ingress].n--
	for i, e := range f.flows {
		if e == fl {
			copy(f.flows[i:], f.flows[i+1:])
			last := len(f.flows) - 1
			f.flows[last] = nil
			f.flows = f.flows[:last]
			break
		}
	}
	f.flowsDone++
	f.reshareLocked()
	f.mu.Unlock()
}

// advanceLocked integrates every in-flight flow's progress (and each
// link's carried bytes) up to now. Progress is recomputed analytically
// from the flow's rate-change anchor rather than accumulated per segment,
// so the value of remaining at any instant — and therefore every
// completion time — does not depend on how many intermediate wakes
// happened to observe the flow along the way.
func (f *Fabric) advanceLocked() {
	now := f.rt.Now()
	if now <= f.lastT {
		return
	}
	if f.tr.Enabled() {
		// Rates assigned at lastT persisted across real elapsed time: they
		// are settled, record the ones that moved. Flows iterate in
		// canonical order, so the recorded set is schedule-independent.
		for _, fl := range f.flows {
			if fl.rate != fl.settledRate {
				f.tr.Instant(trace.Span{Stage: trace.StageFlowRate,
					Node: int32(fl.egress / 2), Key: int64(fl.ingress / 2),
					Detail: int64(fl.rate)}, f.lastT)
				fl.settledRate = fl.rate
			}
		}
	}
	el := (now - f.anchorT).Seconds()
	for i := range f.links {
		if ln := &f.links[i]; ln.rateSum > 0 {
			ln.busyIntegral = ln.anchorB + ln.rateSum/ln.bw*el
		}
	}
	for _, fl := range f.flows {
		if now >= fl.finishAt {
			fl.remaining = 0
			continue
		}
		rem := fl.anchorRem - fl.rate*(now-fl.anchorT).Seconds()
		if rem < 0 {
			rem = 0
		}
		fl.remaining = rem
	}
	f.lastT = now
}

// reshareLocked recomputes max-min fair rates by water-filling: repeatedly
// find the most-constrained link (smallest per-flow fair share among its
// unfixed flows), fix its flows at that share, subtract their bandwidth,
// and continue until every flow has a rate. Links are scanned in index
// order and flows in their canonical sorted order, so the result —
// including the float rounding of the residual-capacity updates — is
// deterministic. Each flow whose rate changed is re-anchored here: its
// progress and absolute completion instant are restamped from the new
// rate, making reshare points the only places a flow's trajectory can
// bend. Flows whose armed deadline became stale (rate rose) are woken to
// re-park; a rate drop is left to the armed deadline, which fires early
// and re-integrates exactly.
func (f *Fabric) reshareLocked() {
	for i := range f.links {
		f.links[i].anchorB = f.links[i].busyIntegral
		f.links[i].rateSum = 0
	}
	f.anchorT = f.lastT
	if len(f.flows) == 0 {
		return
	}
	res := f.residuals
	for i := range f.links {
		res[i] = residual{cap: f.links[i].bw, n: f.links[i].n}
	}
	unfixed := len(f.flows)
	for _, fl := range f.flows {
		fl.prevRate = fl.rate
		fl.rate = unfixedRate
	}
	for unfixed > 0 {
		// The tightest link's fair share bounds every flow through it.
		share := math.Inf(1)
		for i := range res {
			if res[i].n > 0 {
				if s := res[i].cap / float64(res[i].n); s < share {
					share = s
				}
			}
		}
		// Fix every flow crossing a bottleneck link at that share. Fixing
		// by value (not by one chosen link) handles several links tying in
		// a single deterministic pass.
		for _, fl := range f.flows {
			if fl.rate != unfixedRate {
				continue
			}
			eg, in := &res[fl.egress], &res[fl.ingress]
			if eg.cap/float64(eg.n) <= share+1e-9 || in.cap/float64(in.n) <= share+1e-9 {
				fl.rate = share
				eg.cap -= share
				eg.n--
				in.cap -= share
				in.n--
				unfixed--
			}
		}
	}
	now := f.lastT
	for _, fl := range f.flows {
		f.links[fl.egress].rateSum += fl.rate
		f.links[fl.ingress].rateSum += fl.rate
		if fl.rate != fl.prevRate {
			// Rate changes are the canonical anchor points: progress and
			// the absolute completion instant are restamped here and
			// nowhere else, so both are pure functions of the fabric's
			// event history.
			fl.anchorRem = fl.remaining
			fl.anchorT = now
			fl.finishAt = now + time.Duration(fl.anchorRem/fl.rate*float64(time.Second)) + time.Nanosecond
		}
		if fl.parked && fl.rate > fl.prevRate {
			// The armed deadline is now too late; wake the flow to re-park
			// at the higher rate. A rate drop is left alone — the armed
			// deadline fires early and the flow re-integrates exactly. A
			// claim that loses the race (the flow is concurrently completing
			// or cancelling) is safely refused by the selector.
			fl.sel.TryWake(0)
			fl.parked = false
		}
	}
}
