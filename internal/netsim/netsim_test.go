package netsim

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/dist"
	"github.com/minatoloader/minato/internal/simtime"
)

// testFabric returns a fabric of n endpoints at 1 GB/s per NIC direction
// with no latency, so transfer times read directly in seconds per GB.
func testFabric(k simtime.Runtime, n int) *Fabric {
	return New(k, Config{Endpoints: n, Bandwidth: 1e9})
}

func TestSingleFlowRunsAtLineRate(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		f := testFabric(k, 2)
		start := k.Now()
		if err := f.Transfer(context.Background(), 0, 1, 2e9); err != nil {
			t.Fatal(err)
		}
		elapsed := (k.Now() - start).Seconds()
		if math.Abs(elapsed-2) > 0.01 {
			t.Fatalf("2 GB at 1 GB/s took %.3fs, want ≈2s", elapsed)
		}
		if got := f.BytesMoved(); math.Abs(float64(got)-2e9) > 1e6 {
			t.Fatalf("BytesMoved = %d, want ≈2e9", got)
		}
	})
}

func TestLatencyAppliesPerTransfer(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		f := New(k, Config{Endpoints: 2, Bandwidth: 1e9, Latency: 250 * time.Millisecond})
		start := k.Now()
		if err := f.Transfer(context.Background(), 0, 1, 1e9); err != nil {
			t.Fatal(err)
		}
		elapsed := (k.Now() - start).Seconds()
		if math.Abs(elapsed-1.25) > 0.01 {
			t.Fatalf("elapsed = %.3fs, want ≈1.25s (0.25 latency + 1 transfer)", elapsed)
		}
		// Loopback pays latency only: node-local traffic never crosses the NIC.
		start = k.Now()
		if err := f.Transfer(context.Background(), 1, 1, 8e9); err != nil {
			t.Fatal(err)
		}
		if elapsed := (k.Now() - start).Seconds(); math.Abs(elapsed-0.25) > 0.01 {
			t.Fatalf("loopback took %.3fs, want ≈0.25s", elapsed)
		}
	})
}

func TestSharedEgressFairShares(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		f := testFabric(k, 3)
		wg := simtime.NewWaitGroup(k)
		start := k.Now()
		// Two 1 GB flows out of endpoint 0 to distinct destinations: the
		// shared egress halves each rate; both finish at t=2s.
		for dst := 1; dst <= 2; dst++ {
			dst := dst
			wg.Go("flow", func() {
				_ = f.Transfer(context.Background(), 0, dst, 1e9)
			})
		}
		_ = wg.Wait(context.Background())
		elapsed := (k.Now() - start).Seconds()
		if math.Abs(elapsed-2) > 0.01 {
			t.Fatalf("two flows on one egress took %.3fs, want ≈2s", elapsed)
		}
	})
}

func TestLateFlowSlowsInFlightTransfer(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		f := testFabric(k, 3)
		wg := simtime.NewWaitGroup(k)
		var first, second atomic.Int64
		wg.Go("first", func() {
			_ = f.Transfer(context.Background(), 0, 1, 2e9)
			first.Store(int64(k.Now()))
		})
		wg.Go("second", func() {
			_ = k.Sleep(context.Background(), time.Second)
			_ = f.Transfer(context.Background(), 0, 2, 2e9)
			second.Store(int64(k.Now()))
		})
		_ = wg.Wait(context.Background())
		// First: 1s alone (1 GB done) + remaining 1 GB at 0.5 GB/s → t=3s.
		// Second: 2 GB from t=1, 1 GB by t=3 shared, then alone → t=4s.
		if got := time.Duration(first.Load()).Seconds(); math.Abs(got-3) > 0.02 {
			t.Errorf("first finished at %.3fs, want ≈3s", got)
		}
		if got := time.Duration(second.Load()).Seconds(); math.Abs(got-4) > 0.02 {
			t.Errorf("second finished at %.3fs, want ≈4s", got)
		}
	})
}

func TestMaxMinWaterFilling(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		// Degrade endpoint 2's NIC to 0.5 GB/s. Flows: A 0→1, B 0→2, C 3→2.
		// B and C share the degraded ingress (0.25 GB/s each); A then gets
		// the residual 0.75 GB/s of egress 0 — strictly more than the naive
		// equal split, which is the max-min property under test.
		f := testFabric(k, 4)
		f.SetBandwidth(2, 0.5e9)
		wg := simtime.NewWaitGroup(k)
		var aDone atomic.Int64
		wg.Go("A", func() {
			_ = f.Transfer(context.Background(), 0, 1, 1.5e9)
			aDone.Store(int64(k.Now()))
		})
		wg.Go("B", func() { _ = f.Transfer(context.Background(), 0, 2, 1e9) })
		wg.Go("C", func() { _ = f.Transfer(context.Background(), 3, 2, 1e9) })
		_ = wg.Wait(context.Background())
		// A: 1.5 GB at 0.75 GB/s → 2s (B and C are still mid-flight then).
		if got := time.Duration(aDone.Load()).Seconds(); math.Abs(got-2) > 0.02 {
			t.Fatalf("A finished at %.3fs, want ≈2s (0.75 GB/s residual share)", got)
		}
	})
}

func TestSetBandwidthMidFlight(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		f := testFabric(k, 2)
		wg := simtime.NewWaitGroup(k)
		var done atomic.Int64
		wg.Go("flow", func() {
			_ = f.Transfer(context.Background(), 0, 1, 2e9)
			done.Store(int64(k.Now()))
		})
		wg.Go("degrade", func() {
			_ = k.Sleep(context.Background(), time.Second)
			f.SetBandwidth(1, 0.25e9) // degraded link: 4× slower ingress
		})
		_ = wg.Wait(context.Background())
		// 1 GB moved in the first second, the remaining 1 GB at 0.25 GB/s:
		// finish at t = 1 + 4 = 5s.
		if got := time.Duration(done.Load()).Seconds(); math.Abs(got-5) > 0.02 {
			t.Fatalf("flow finished at %.3fs, want ≈5s after mid-flight degradation", got)
		}
	})
}

func TestSetBandwidthClampsToFloor(t *testing.T) {
	// A scripted full link failure passes bw=0 (and a buggy script might
	// pass negative or NaN): instead of dividing the water-filling rates
	// by zero, the NIC clamps to MinBandwidth. In-flight traffic crawls at
	// the floor and completes normally once the link is restored.
	k := simtime.NewVirtual()
	k.Run(func() {
		f := testFabric(k, 2)
		wg := simtime.NewWaitGroup(k)
		var done atomic.Int64
		wg.Go("flow", func() {
			_ = f.Transfer(context.Background(), 0, 1, 2e9)
			done.Store(int64(k.Now()))
		})
		wg.Go("outage", func() {
			_ = k.Sleep(context.Background(), time.Second)
			for _, bw := range []float64{0, -5, math.NaN()} {
				f.SetBandwidth(1, bw) // must not panic or wedge the rates
			}
			_ = k.Sleep(context.Background(), 2*time.Second)
			f.SetBandwidth(1, 1e9)
		})
		_ = wg.Wait(context.Background())
		// 1 GB moved before the outage; ~2s dead (a few bytes at 1 B/s);
		// the remaining ~1 GB at 1 GB/s after restore: finish ≈ t=4s.
		if got := time.Duration(done.Load()).Seconds(); math.Abs(got-4) > 0.02 {
			t.Fatalf("flow finished at %.3fs, want ≈4s around a full outage", got)
		}
	})
}

func TestRingAllReduceVolumeAndTiming(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		const n = 4
		f := testFabric(k, n)
		ring := NewRing(k, f, []int{0, 1, 2, 3})
		wg := simtime.NewWaitGroup(k)
		start := k.Now()
		for rank := 0; rank < n; rank++ {
			rank := rank
			wg.Go("rank", func() {
				if err := ring.AllReduce(context.Background(), rank, 1e9); err != nil {
					t.Error(err)
				}
			})
		}
		_ = wg.Wait(context.Background())
		// Each phase moves one 0.25 GB chunk per NIC pair with no
		// contention (each egress and ingress carries exactly one flow):
		// 2·(n−1) = 6 phases × 0.25s = 1.5s — the analytic ring time
		// 2·bytes·(n−1)/n / bw, now produced by actual flows.
		elapsed := (k.Now() - start).Seconds()
		if math.Abs(elapsed-1.5) > 0.02 {
			t.Fatalf("4-node ring all-reduce of 1 GB took %.3fs, want ≈1.5s", elapsed)
		}
		moved := float64(f.BytesMoved())
		if math.Abs(moved-6e9) > 0.05e9 { // 4 ranks × 6 chunks × 0.25 GB
			t.Fatalf("BytesMoved = %.0f, want ≈6e9", moved)
		}
	})
}

func TestRingSingleMemberIsNoOp(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		f := testFabric(k, 1)
		ring := NewRing(k, f, []int{0})
		if err := ring.AllReduce(context.Background(), 0, 1e9); err != nil {
			t.Fatal(err)
		}
		if k.Now() != 0 {
			t.Fatal("single-member all-reduce advanced time")
		}
	})
}

func TestTransferCancellation(t *testing.T) {
	// Pre-cancelled context: refused before any occupancy.
	k := simtime.NewVirtual()
	k.Run(func() {
		f := testFabric(k, 2)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := f.Transfer(ctx, 0, 1, 1e9); err != context.Canceled {
			t.Fatalf("pre-cancelled transfer returned %v, want context.Canceled", err)
		}
	})

	// Mid-flight cancellation under the wall-clock runtime (under Virtual,
	// cancellation is best-effort by design — simulation shutdown uses
	// kernel-visible events like barrier breaks instead).
	r := simtime.NewReal(1e4)
	f := New(r, Config{Endpoints: 2, Bandwidth: 1e9})
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	if err := f.Transfer(ctx, 0, 1, 1e12); err != context.Canceled {
		t.Fatalf("cancelled transfer returned %v, want context.Canceled", err)
	}
	// The fabric must be clean for subsequent traffic.
	if err := f.Transfer(context.Background(), 0, 1, 1e6); err != nil {
		t.Fatal(err)
	}
	if n := f.FlowsCompleted(); n != 2 {
		t.Fatalf("FlowsCompleted = %d, want 2 (cancelled flows still exit)", n)
	}
}

func TestFabricDeterminism(t *testing.T) {
	// Two identical-seed runs of a contended transfer storm must finish at
	// the same virtual instant with identical byte accounting.
	run := func() (time.Duration, int64, float64) {
		k := simtime.NewVirtual()
		var end time.Duration
		var moved int64
		var busy float64
		k.Run(func() {
			f := New(k, Config{Endpoints: 5, Bandwidth: 1e9, Latency: time.Millisecond})
			wg := simtime.NewWaitGroup(k)
			for i := 0; i < 40; i++ {
				i := i
				wg.Go("flow", func() {
					src := int(dist.Uniform(7, 1, uint64(i)) * 5)
					dst := int(dist.Uniform(7, 2, uint64(i)) * 5)
					bytes := int64(dist.Uniform(7, 3, uint64(i)) * 5e8)
					delay := time.Duration(dist.Uniform(7, 4, uint64(i)) * float64(time.Second))
					_ = k.Sleep(context.Background(), delay)
					_ = f.Transfer(context.Background(), src, dst, bytes)
				})
			}
			_ = wg.Wait(context.Background())
			end = k.Now()
			moved = f.BytesMoved()
			busy = f.LinkBusySeconds(0, 0)
		})
		return end, moved, busy
	}
	e1, m1, b1 := run()
	e2, m2, b2 := run()
	if e1 != e2 || m1 != m2 || b1 != b2 {
		t.Fatalf("nondeterministic fabric: run1=(%v,%d,%v) run2=(%v,%d,%v)", e1, m1, b1, e2, m2, b2)
	}
}

func TestConservationUnderContention(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		f := testFabric(k, 3)
		wg := simtime.NewWaitGroup(k)
		const flows = 24
		var want int64
		var mu sync.Mutex
		for i := 0; i < flows; i++ {
			i := i
			bytes := int64(1e8 * float64(1+i%5))
			mu.Lock()
			want += bytes
			mu.Unlock()
			wg.Go("flow", func() {
				_ = k.Sleep(context.Background(), time.Duration(i)*100*time.Millisecond)
				_ = f.Transfer(context.Background(), i%3, (i+1)%3, bytes)
			})
		}
		_ = wg.Wait(context.Background())
		if got := f.BytesMoved(); math.Abs(float64(got-want)) > 1e-3*float64(want) {
			t.Fatalf("BytesMoved = %d, want ≈%d", got, want)
		}
		if got := f.FlowsCompleted(); got != flows {
			t.Fatalf("FlowsCompleted = %d, want %d", got, flows)
		}
	})
}

// TestRaceHammer exercises concurrent flows, bandwidth churn, and
// cancellations under the wall-clock runtime; run with -race.
func TestRaceHammer(t *testing.T) {
	r := simtime.NewReal(1e6)
	f := New(r, Config{Endpoints: 4, Bandwidth: 1e9, Latency: time.Microsecond})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = f.Transfer(ctx, (g+i)%4, (g+i+1+i%3)%4, int64(1e6*(1+i%7)))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			f.SetBandwidth(i%4, 1e9/float64(1+i%3))
			time.Sleep(time.Millisecond)
		}
	}()
	time.AfterFunc(250*time.Millisecond, cancel)
	wg.Wait()
	_ = f.BytesMoved()
}

func TestLinkBusySecondsSurvivesBandwidthChange(t *testing.T) {
	// Busy time is converted at the bandwidth in force when the traffic
	// moved: degrading a saturated link afterwards must not inflate its
	// recorded history past wall time.
	k := simtime.NewVirtual()
	k.Run(func() {
		f := testFabric(k, 2)
		if err := f.Transfer(context.Background(), 0, 1, 2e9); err != nil {
			t.Fatal(err)
		}
		f.SetBandwidth(1, 0.25e9)
		busy := f.LinkBusySeconds(1, 1)
		if math.Abs(busy-2) > 0.01 {
			t.Fatalf("ingress busy = %.3fs after degradation, want ≈2s (1 GB/s era traffic)", busy)
		}
	})
}
