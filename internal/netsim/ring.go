package netsim

import (
	"context"

	"github.com/minatoloader/minato/internal/simtime"
)

// Ring performs bandwidth-faithful ring all-reduce over a fabric: the
// gradient is split into one chunk per member, and in each of the
// 2·(n−1) phases every member sends its current chunk to its ring
// successor — the reduce-scatter + all-gather schedule of NCCL-style
// collectives. Per member this moves 2·bytes·(n−1)/n over its NIC, the
// same volume the closed-form ring model charges, but as real flows:
// transfers contend with whatever else crosses the NICs (remote dataset
// fetches, a degraded link), and a slow phase anywhere delays every
// member, because phases are data-dependent.
//
// One Ring is shared by all members and reused across steps. Members must
// enter AllReduce together (the caller synchronizes steps with its own
// barrier); a member that fails mid-collective breaks the phase barrier so
// the others unwind instead of waiting forever.
type Ring struct {
	f       *Fabric
	members []int
	phase   *simtime.Barrier
}

// NewRing returns a ring over the given fabric endpoints. Rings of one
// member are legal and reduce to a no-op.
func NewRing(rt simtime.Runtime, f *Fabric, members []int) *Ring {
	r := &Ring{f: f, members: members}
	if len(members) > 1 {
		r.phase = simtime.NewBarrier(rt, len(members))
	}
	return r
}

// AllReduce runs one collective for the member at the given rank, moving a
// gradient of the given byte size. Every member must call it once per
// step. The error is ctx.Err() on cancellation, or ErrBarrierBroken when
// another member failed mid-collective.
func (r *Ring) AllReduce(ctx context.Context, rank int, bytes int64) error {
	n := len(r.members)
	if n <= 1 || bytes <= 0 {
		return nil
	}
	chunk := bytes / int64(n)
	if chunk <= 0 {
		chunk = 1
	}
	src := r.members[rank]
	dst := r.members[(rank+1)%n]
	for phase := 0; phase < 2*(n-1); phase++ {
		if err := r.f.Transfer(ctx, src, dst, chunk); err != nil {
			r.phase.Break()
			return err
		}
		if _, err := r.phase.Wait(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Break releases members parked in the collective; used when a rank exits
// early (end of its shard) while siblings are mid-phase.
func (r *Ring) Break() {
	if r.phase != nil {
		r.phase.Break()
	}
}
