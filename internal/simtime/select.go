package simtime

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the event-driven wait fabric: a Selector parks a task
// until one of several wake sources fires, replacing sleep-poll loops in the
// data path. Under Virtual the first source to fire in virtual time claims
// the selector, which makes wake ordering deterministic; readiness at arm
// time is checked in source order, so callers encode priorities (fast queue
// before slow queue) by argument position.

// Heartbeat is returned by Selector.Wait/Select when the wait ended because
// the deadline (the fallback heartbeat) expired rather than a source firing.
const Heartbeat = -1

// Source is a wake source a Selector can be armed on. Queues, gates, and
// other blocking structures implement it.
//
// Arm registers s for a single wakeup with the given result index. If the
// source is already ready, implementations call s.TryWake(idx) instead of
// registering and return true so the caller stops arming further sources.
// Disarm removes a registration; it must be a no-op when s is not
// registered (already woken and popped, or never added).
type Source interface {
	Arm(s *Selector, idx int) bool
	Disarm(s *Selector)
}

// Selector is a reusable multi-source wait primitive: the runtime-aware
// analogue of a select statement over wake sources. One goroutine owns a
// Selector; each cycle it Resets, arms the selector on its sources, and
// parks in Wait. The first TryWake claims the cycle — later TryWake calls
// return false so the caller passes the wakeup to another waiter instead of
// losing it.
//
// Under Virtual, a positive deadline parks the task on a kernel timer, so
// timeouts are deterministic virtual-time events. Under Real (and any other
// nondeterministic runtime) the deadline is a wall-clock timer scaled like
// Real.Sleep.
type Selector struct {
	k     *Virtual // nil on nondeterministic runtimes
	scale float64  // wall-clock compression for deadline waits when k == nil

	ch chan int
	// state transitions are guarded by k.mu under Virtual (so wake credit
	// accounting is atomic with the claim) and by CAS alone under Real.
	state  atomic.Int32
	parked bool   // guarded by k.mu
	t      *timer // armed deadline; guarded by k.mu
}

const (
	selIdle int32 = iota
	selArmed
	selWoken
	selExpired
)

// NewSelector returns a selector bound to rt.
func NewSelector(rt Runtime) *Selector {
	s := &Selector{ch: make(chan int, 1), scale: 1}
	switch r := rt.(type) {
	case *Virtual:
		s.k = r
	case *Real:
		s.scale = r.scale
	}
	return s
}

// Deterministic reports whether rt is the deterministic virtual kernel. The
// loader hot paths use it to decide whether the fallback heartbeat is worth
// arming: under Virtual a lost wakeup surfaces as a loud kernel deadlock, so
// the heartbeat would only add events; under a wall-clock runtime it is the
// recovery mechanism for a silent hang.
func Deterministic(rt Runtime) bool {
	_, ok := rt.(*Virtual)
	return ok
}

// Reset begins a new wait cycle, discarding a wake delivered since the last
// Wait returned (a waker may claim the selector while its owner is between
// cycles — e.g. a device rate change right as the entry is inserted; the
// owner re-checks its condition before waiting, so the wake's information is
// not lost). Callers that publish the selector to wakers through their own
// lock (as Device does) must Reset under that lock so wakes are serialized
// against the cycle boundary.
//
// The drain must happen BEFORE the state store. Gate.Pulse delivers TryWake
// outside its lock from a snapshot taken after the subscription was
// deregistered, so a delayed waker is not serialized with this reset.
// Draining first means such a waker is either refused (stale pre-reset
// state) or claims the fresh cycle with its send intact; with the opposite
// order it could claim the fresh cycle and have its send eaten, leaving
// state woken with an empty channel — the next Wait would block forever.
// (Queues, by contrast, deliver every waiter-entry TryWake — including
// Close's — while holding the queue lock; their pooled park selectors
// depend on that in-lock delivery, see queue.parkLocked.)
func (s *Selector) Reset() {
	select {
	case <-s.ch:
	default:
	}
	s.state.Store(selIdle)
}

// TryWake claims the selector's current cycle and delivers idx as the wait
// result. It reports whether the wakeup was delivered: false means another
// source (or a timeout/cancellation) already claimed the cycle, so the
// caller should wake someone else instead.
func (s *Selector) TryWake(idx int) bool {
	if s.k != nil {
		k := s.k
		k.mu.Lock()
		if st := s.state.Load(); st != selIdle && st != selArmed {
			k.mu.Unlock()
			return false
		}
		s.state.Store(selWoken)
		if s.parked {
			s.parked = false
			if s.t != nil {
				s.t.dead = true
				s.t = nil
			}
			k.runnable++
		}
		k.mu.Unlock()
		s.ch <- idx
		return true
	}
	for {
		st := s.state.Load()
		if st != selIdle && st != selArmed {
			return false
		}
		if s.state.CompareAndSwap(st, selWoken) {
			s.ch <- idx
			return true
		}
	}
}

// fireSelectorLocked delivers a deadline expiry to t.sel. Called with k.mu
// held from the advance loop; a dead timer never reaches here, so the cycle
// is necessarily still armed.
func (k *Virtual) fireSelectorLocked(t *timer) {
	s := t.sel
	if st := s.state.Load(); st != selIdle && st != selArmed {
		// Unreachable by construction (claims mark the timer dead under
		// k.mu), but kept as a safe fallback: the claimer owns the cleanup.
		return
	}
	s.state.Store(selWoken)
	s.parked = false
	s.t = nil
	t.fired = true
	k.runnable++
	s.ch <- Heartbeat
	// The owner never saw this timer; the kernel recycles it.
	putTimer(t)
}

// Wait parks the calling task until TryWake, the deadline (if positive), or
// ctx cancellation. It returns the index passed to TryWake, or Heartbeat
// when the deadline expired. The caller must have Reset the selector for
// this cycle; sources armed for the cycle must be disarmed by the caller
// afterwards (Select does both).
func (s *Selector) Wait(ctx context.Context, deadline time.Duration) (int, error) {
	if s.k != nil {
		return s.waitVirtual(ctx, deadline)
	}
	if !s.state.CompareAndSwap(selIdle, selArmed) {
		if s.state.Load() == selWoken {
			return <-s.ch, nil
		}
		return 0, fmt.Errorf("simtime: Selector.Wait without Reset")
	}
	var timerC <-chan time.Time
	if deadline > 0 {
		tm := time.NewTimer(time.Duration(float64(deadline) / s.scale))
		defer tm.Stop()
		timerC = tm.C
	}
	select {
	case idx := <-s.ch:
		return idx, nil
	case <-timerC:
		if s.state.CompareAndSwap(selArmed, selExpired) {
			return Heartbeat, nil
		}
		return <-s.ch, nil // a wake won the race; deliver it
	case <-ctx.Done():
		if s.state.CompareAndSwap(selArmed, selExpired) {
			return 0, ctx.Err()
		}
		return <-s.ch, nil
	}
}

func (s *Selector) waitVirtual(ctx context.Context, deadline time.Duration) (int, error) {
	k := s.k
	k.mu.Lock()
	switch s.state.Load() {
	case selWoken:
		k.mu.Unlock()
		return <-s.ch, nil
	case selIdle:
		s.state.Store(selArmed)
		s.parked = true
		if deadline > 0 {
			t := getTimer()
			t.sel = s
			k.scheduleLocked(t, k.now.Load()+deadline)
			s.t = t
		}
		k.runnable--
		k.maybeAdvanceLocked()
		k.mu.Unlock()
	default:
		k.mu.Unlock()
		return 0, fmt.Errorf("simtime: Selector.Wait without Reset")
	}
	select {
	case idx := <-s.ch:
		return idx, nil
	case <-ctx.Done():
		k.mu.Lock()
		if s.state.Load() == selWoken {
			// A wake (or the deadline) raced cancellation and won; deliver
			// it so the wakeup is not lost.
			k.mu.Unlock()
			return <-s.ch, nil
		}
		s.state.Store(selExpired)
		if s.parked {
			s.parked = false
			if s.t != nil {
				s.t.dead = true
				s.t = nil
			}
			k.runnable++
		}
		k.mu.Unlock()
		return 0, ctx.Err()
	}
}

// Select arms the selector on each source in order, parks until one fires
// (or the heartbeat expires, or ctx is cancelled), then disarms. It returns
// the index of the source that fired, or Heartbeat. Readiness is checked in
// argument order at arm time, so earlier sources take priority when several
// are ready — deterministic under Virtual.
func (s *Selector) Select(ctx context.Context, heartbeat time.Duration, sources ...Source) (int, error) {
	s.Reset()
	armed := len(sources)
	for i, src := range sources {
		if src.Arm(s, i) {
			armed = i + 1
			break
		}
	}
	idx, err := s.Wait(ctx, heartbeat)
	for _, src := range sources[:armed] {
		src.Disarm(s)
	}
	return idx, err
}

// Gate is a broadcast wake source for condition changes that are not queue
// operations (accounting flips, shutdown). Pulse wakes every armed selector.
// It is level-correct across the check-then-arm race: each Pulse advances a
// version, and Arm fires immediately when a pulse happened since the
// selector last armed — so "check condition, arm gate, park" never misses a
// pulse delivered between the check and the arm.
type Gate struct {
	mu      sync.Mutex
	version uint64
	seen    map[*Selector]uint64
	subs    []gateSub
}

type gateSub struct {
	sel *Selector
	idx int
}

// NewGate returns an empty gate.
func NewGate() *Gate {
	return &Gate{seen: make(map[*Selector]uint64)}
}

// gateSeenLimit bounds the per-selector pulse memory: beyond it, Pulse
// drops the whole map rather than letting transient selectors (e.g.
// throwaway WaitAny selectors armed on a gate) accumulate forever. A
// dropped entry costs its selector at most one spurious wake at its next
// Arm — consumers re-check their condition, so that is safe.
const gateSeenLimit = 1024

// Pulse wakes every armed selector and advances the gate version.
func (g *Gate) Pulse() {
	g.mu.Lock()
	g.version++
	subs := g.subs
	g.subs = nil
	if len(g.seen) > gateSeenLimit {
		clear(g.seen)
	}
	for _, e := range subs {
		g.seen[e.sel] = g.version
	}
	g.mu.Unlock()
	for _, e := range subs {
		e.sel.TryWake(e.idx)
	}
}

// Arm implements Source.
func (g *Gate) Arm(s *Selector, idx int) bool {
	g.mu.Lock()
	if g.seen[s] != g.version {
		g.seen[s] = g.version
		g.mu.Unlock()
		s.TryWake(idx)
		return true
	}
	g.subs = append(g.subs, gateSub{sel: s, idx: idx})
	g.mu.Unlock()
	return false
}

// Disarm implements Source.
func (g *Gate) Disarm(s *Selector) {
	g.mu.Lock()
	for i, e := range g.subs {
		if e.sel == s {
			g.subs = append(g.subs[:i], g.subs[i+1:]...)
			break
		}
	}
	g.mu.Unlock()
}

var _ Source = (*Gate)(nil)
