package simtime

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestBarrierReleasesAllTogether(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		b := NewBarrier(k, 3)
		wg := NewWaitGroup(k)
		var releases [3]int64
		for i := 0; i < 3; i++ {
			i := i
			wg.Go("p", func() {
				_ = k.Sleep(context.Background(), time.Duration(i+1)*time.Second)
				if _, err := b.Wait(context.Background()); err != nil {
					t.Errorf("Wait: %v", err)
				}
				releases[i] = int64(k.Now())
			})
		}
		_ = wg.Wait(context.Background())
		// All released when the last (3s) participant arrived.
		for i, r := range releases {
			if time.Duration(r) != 3*time.Second {
				t.Errorf("participant %d released at %v, want 3s", i, time.Duration(r))
			}
		}
	})
}

func TestBarrierIsCyclic(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		b := NewBarrier(k, 2)
		wg := NewWaitGroup(k)
		var rounds atomic.Int64
		for i := 0; i < 2; i++ {
			wg.Go("p", func() {
				for r := 0; r < 5; r++ {
					gen, err := b.Wait(context.Background())
					if err != nil {
						t.Errorf("Wait: %v", err)
						return
					}
					if gen != uint64(r) {
						t.Errorf("generation = %d, want %d", gen, r)
						return
					}
					rounds.Add(1)
				}
			})
		}
		_ = wg.Wait(context.Background())
		if rounds.Load() != 10 {
			t.Fatalf("rounds = %d", rounds.Load())
		}
	})
}

func TestBarrierBreakReleasesWaiters(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		b := NewBarrier(k, 3)
		wg := NewWaitGroup(k)
		var broken atomic.Int64
		for i := 0; i < 2; i++ {
			wg.Go("p", func() {
				if _, err := b.Wait(context.Background()); err == ErrBarrierBroken {
					broken.Add(1)
				}
			})
		}
		_ = k.Sleep(context.Background(), time.Second)
		b.Break()
		_ = wg.Wait(context.Background())
		if broken.Load() != 2 {
			t.Fatalf("broken waiters = %d, want 2", broken.Load())
		}
		// Subsequent waits fail immediately.
		if _, err := b.Wait(context.Background()); err != ErrBarrierBroken {
			t.Fatalf("Wait after break = %v", err)
		}
	})
}

func TestBarrierFuncRunsBeforeWaitersWake(t *testing.T) {
	// The release hook must observe a quiescent round: it runs in the last
	// arriver after the barrier resets, and every other participant must
	// see its effects when it wakes.
	k := NewVirtual()
	k.Run(func() {
		var rounds atomic.Int64
		var gens []uint64
		shared := 0
		b := NewBarrierFunc(k, 3, func(gen uint64) {
			gens = append(gens, gen)
			shared++
			rounds.Add(1)
		})
		wg := NewWaitGroup(k)
		for i := 0; i < 3; i++ {
			i := i
			wg.Go("p", func() {
				for round := 1; round <= 2; round++ {
					_ = k.Sleep(context.Background(), time.Duration(i+1)*time.Second)
					if _, err := b.Wait(context.Background()); err != nil {
						t.Errorf("Wait: %v", err)
						return
					}
					if got := int(rounds.Load()); got != round {
						t.Errorf("woke in round %d with hook count %d", round, got)
					}
					if shared != round {
						t.Errorf("round %d: hook effect not visible (shared=%d)", round, shared)
					}
				}
			})
		}
		_ = wg.Wait(context.Background())
		if len(gens) != 2 || gens[0] != 0 || gens[1] != 1 {
			t.Fatalf("hook generations = %v, want [0 1]", gens)
		}
	})
}
