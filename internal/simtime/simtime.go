// Package simtime provides the runtime abstraction that every component of
// this repository blocks through: sleeping, queue waits, and device
// occupancy all go through a Runtime.
//
// Two implementations exist. Virtual is a deterministic discrete-event
// kernel: virtual time advances only when every tracked task is parked, so a
// simulated multi-thousand-second training run executes in milliseconds of
// wall time with exact timing (no OS timer-resolution skew). Real wraps the
// wall clock with a scale factor and is what a downstream user embeds in an
// actual application.
//
// The contract for tasks running under Virtual: any blocking must happen via
// Sleep, Waiter.Wait, Selector.Wait/Select, or WaitGroup.Wait. Blocking on
// ordinary Go primitives (unbuffered channels, sync.WaitGroup, ...) from a
// tracked task stalls the kernel, because the kernel believes the task is
// runnable and refuses to advance time.
//
// Context cancellation under Virtual is best-effort: a cancelled Sleep or
// Wait returns promptly in wall time, but the kernel may have advanced
// virtual time to the abandoned deadline if no other task was runnable.
// Simulation code therefore coordinates shutdown deterministically through
// kernel-visible events — queue Close, stop flags checked at operation
// boundaries, and finite compute sleeps that always drain on their own.
package simtime

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Runtime is the clock and scheduler abstraction used by all pipeline
// components.
type Runtime interface {
	// Now returns the elapsed (virtual or scaled real) time since the
	// runtime was created.
	Now() time.Duration
	// Sleep pauses the calling task for d of simulated time, or until ctx
	// is done, whichever comes first. It returns ctx.Err() when interrupted.
	Sleep(ctx context.Context, d time.Duration) error
	// Go spawns a tracked task. Under Virtual, time cannot advance while
	// any tracked task is runnable.
	Go(name string, fn func())
	// NewWaiter returns a parking primitive for building blocking
	// structures (queues, semaphores) on top of the runtime.
	NewWaiter() *Waiter
}

// Waiter is a one-shot parking primitive. A task calls Wait to park; another
// task calls Wake to unpark it. A Waiter may be woken before Wait is called,
// in which case Wait returns immediately. Waiters are not reusable.
type Waiter struct {
	k  *Virtual // nil for the real runtime
	ch chan struct{}

	mu     sync.Mutex
	state  waitState
	parked bool
}

type waitState int

const (
	waitIdle waitState = iota
	waitWaiting
	waitWoken
	waitCancelled
)

// Wake unparks the waiter. It reports whether the wakeup was delivered:
// false means the waiter had already been cancelled (its Wait returned with
// a context error), so the caller should wake someone else instead.
func (w *Waiter) Wake() bool {
	w.mu.Lock()
	switch w.state {
	case waitIdle:
		w.state = waitWoken
		close(w.ch)
		w.mu.Unlock()
		return true
	case waitWaiting:
		w.state = waitWoken
		close(w.ch)
		parked := w.parked
		w.mu.Unlock()
		if parked && w.k != nil {
			w.k.unparked()
		}
		return true
	case waitWoken:
		w.mu.Unlock()
		return true
	default: // cancelled
		w.mu.Unlock()
		return false
	}
}

// Wait parks the calling task until Wake or ctx cancellation.
func (w *Waiter) Wait(ctx context.Context) error {
	w.mu.Lock()
	switch w.state {
	case waitWoken:
		w.mu.Unlock()
		return nil
	case waitIdle:
		w.state = waitWaiting
		w.parked = true
	default:
		w.mu.Unlock()
		return fmt.Errorf("simtime: Wait called twice on the same Waiter")
	}
	w.mu.Unlock()

	if w.k != nil {
		w.k.parkedNow()
	}

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		w.mu.Lock()
		if w.state == waitWoken {
			// Wake raced with cancellation and won; treat as woken so the
			// wakeup is not lost.
			w.mu.Unlock()
			return nil
		}
		w.state = waitCancelled
		w.mu.Unlock()
		if w.k != nil {
			w.k.unparked()
		}
		return ctx.Err()
	}
}

// ---------------------------------------------------------------------------
// Virtual runtime
// ---------------------------------------------------------------------------

// Virtual is a deterministic discrete-event runtime. Time advances to the
// earliest pending timer whenever all tracked tasks are parked.
type Virtual struct {
	mu sync.Mutex
	// now is written only under mu but read lock-free by Now: the kernel
	// advances time only while every tracked task is parked, so a running
	// task can never observe a concurrent advance — the atomic read returns
	// exactly what a mutex-guarded read would, without the global lock
	// traffic (Now is called on every queue, device, and profiler
	// operation).
	now      atomicDuration
	runnable int
	tasks    int
	// daemons counts live daemon tasks (see GoDaemon): tasks that may park
	// indefinitely waiting for external requests. A kernel whose parked
	// tasks are all daemons is idle, not deadlocked.
	daemons int
	timers  timerHeap
	// byDeadline maps a pending deadline to its heap node, so timers sharing
	// a deadline chain off a single node: scheduling them is O(1) and firing
	// them needs one heap pop for the whole batch.
	byDeadline map[time.Duration]*timer
	idle       chan struct{} // closed when tasks hits zero; replaced on Go
}

// NewVirtual returns a virtual runtime starting at time zero.
func NewVirtual() *Virtual {
	return &Virtual{
		idle:       closedChan(),
		byDeadline: make(map[time.Duration]*timer),
	}
}

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// Now returns the current virtual time, lock-free.
func (k *Virtual) Now() time.Duration {
	return k.now.Load()
}

// Go spawns fn as a tracked task.
func (k *Virtual) Go(name string, fn func()) {
	k.spawn(name, fn, false)
}

// GoDaemon spawns fn as a tracked daemon task. Daemons schedule exactly
// like ordinary tasks, but a kernel left with nothing runnable, no pending
// timers, and only daemons parked is considered idle rather than
// deadlocked — the shape of a network server waiting on its inbox after
// every client has exited. Daemon tasks still count toward Drain; whoever
// spawns one owns shutting it down (e.g. by closing the queue it parks on).
func (k *Virtual) GoDaemon(name string, fn func()) {
	k.spawn(name, fn, true)
}

func (k *Virtual) spawn(name string, fn func(), daemon bool) {
	k.mu.Lock()
	if k.tasks == 0 {
		k.idle = make(chan struct{})
	}
	k.tasks++
	k.runnable++
	if daemon {
		k.daemons++
	}
	k.mu.Unlock()
	go func() {
		defer k.taskDone(daemon)
		fn()
	}()
	_ = name
}

func (k *Virtual) taskDone(daemon bool) {
	k.mu.Lock()
	k.tasks--
	k.runnable--
	if daemon {
		k.daemons--
	}
	if k.tasks == 0 {
		close(k.idle)
	} else {
		k.maybeAdvanceLocked()
	}
	k.mu.Unlock()
}

// GoDaemon spawns fn as a daemon task when rt is the Virtual kernel (see
// Virtual.GoDaemon) and as an ordinary task otherwise — wall-clock
// runtimes have no deadlock detection to exempt a server task from.
func GoDaemon(rt Runtime, name string, fn func()) {
	if v, ok := rt.(*Virtual); ok {
		v.GoDaemon(name, fn)
		return
	}
	rt.Go(name, fn)
}

// Run executes fn as a tracked task and blocks the (untracked) caller until
// it returns. It is the entry point for driving a simulation from a test or
// a main function.
func (k *Virtual) Run(fn func()) {
	done := make(chan struct{})
	k.Go("run", func() {
		defer close(done)
		fn()
	})
	<-done
}

// Drain blocks the (untracked) caller until every tracked task has exited.
// Callers typically cancel the session context first so parked tasks wake
// and unwind.
func (k *Virtual) Drain() {
	k.mu.Lock()
	idle := k.idle
	k.mu.Unlock()
	<-idle
}

// Tasks returns the number of live tracked tasks.
func (k *Virtual) Tasks() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.tasks
}

// Sleep pauses the calling task for d of virtual time.
func (k *Virtual) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := getTimer()
	k.mu.Lock()
	k.scheduleLocked(t, k.now.Load()+d)
	k.runnable--
	k.maybeAdvanceLocked()
	k.mu.Unlock()

	select {
	case <-t.ch:
		putTimer(t)
		return nil
	case <-ctx.Done():
		k.mu.Lock()
		if !t.fired {
			// The kernel still owns the timer; it is discarded (and pooled)
			// when its deadline is reached.
			t.dead = true
			k.runnable++
			k.mu.Unlock()
			return ctx.Err()
		}
		k.mu.Unlock()
		// Fired concurrently with cancellation: consume the wake so the
		// timer is fully settled, then recycle it.
		<-t.ch
		putTimer(t)
		return ctx.Err()
	}
}

// scheduleLocked registers t to fire at the given deadline. Timers sharing a
// deadline chain off the first one scheduled (the only one in the heap), in
// FIFO order, so same-deadline batches cost one heap operation total.
func (k *Virtual) scheduleLocked(t *timer, deadline time.Duration) {
	t.deadline = deadline
	if head, ok := k.byDeadline[deadline]; ok {
		if head.tail == nil {
			head.next, head.tail = t, t
		} else {
			head.tail.next, head.tail = t, t
		}
		return
	}
	heap.Push(&k.timers, t)
	k.byDeadline[deadline] = t
}

// NewWaiter returns a kernel-aware parking primitive.
func (k *Virtual) NewWaiter() *Waiter {
	return &Waiter{k: k, ch: make(chan struct{})}
}

func (k *Virtual) parkedNow() {
	k.mu.Lock()
	k.runnable--
	k.maybeAdvanceLocked()
	k.mu.Unlock()
}

func (k *Virtual) unparked() {
	k.mu.Lock()
	k.runnable++
	k.mu.Unlock()
}

// maybeAdvanceLocked advances virtual time to the next timer deadline while
// no task is runnable. Called with k.mu held.
func (k *Virtual) maybeAdvanceLocked() {
	stallPolls := 0
	for k.runnable == 0 && k.tasks > 0 {
		if len(k.timers) == 0 {
			if k.tasks == k.daemons {
				// Every parked task is a daemon waiting for external
				// requests: the kernel is idle, not deadlocked. Time holds
				// until a new task spawns or a cross-thread wake arrives.
				return
			}
			// No task is runnable and nothing is scheduled to wake one.
			// This is either a genuine deadlock or a transient window:
			// context cancellation wakes parked tasks through ordinary
			// channels, so their kernel accounting lags by a few
			// instructions. Poll briefly on the wall clock before
			// declaring deadlock.
			if stallPolls < maxStallPolls {
				stallPolls++
				k.mu.Unlock()
				time.Sleep(stallPollInterval)
				k.mu.Lock()
				continue
			}
			panic(fmt.Sprintf(
				"simtime: deadlock at t=%v: %d tasks alive, none runnable, no pending timers",
				k.now.Load(), k.tasks))
		}
		stallPolls = 0
		head := heap.Pop(&k.timers).(*timer)
		delete(k.byDeadline, head.deadline)
		// Advance time only when the batch has a live timer, so deadlines
		// abandoned by cancelled sleeps never move the clock.
		live := false
		for t := head; t != nil; t = t.next {
			if !t.dead {
				live = true
				break
			}
		}
		if live {
			k.now.Store(head.deadline)
		}
		for t := head; t != nil; {
			next := t.next
			switch {
			case t.dead:
				// Abandoned by a cancelled sleep or a claimed selector; the
				// kernel is its last owner.
				putTimer(t)
			case t.sel != nil:
				k.fireSelectorLocked(t)
			default:
				t.fired = true
				k.runnable++
				// Buffered and drained exactly once per cycle, so the send
				// cannot block. The sleeper owns t once the value lands.
				t.ch <- struct{}{}
			}
			t = next
		}
	}
}

const (
	// stallPollInterval and maxStallPolls bound how long the kernel waits
	// for in-flight wakeups (e.g. from context cancellation) before
	// declaring a deadlock. Total grace period: ~2s of wall time.
	stallPollInterval = 200 * time.Microsecond
	maxStallPolls     = 10000
)

// atomicDuration is a time.Duration with atomic load/store.
type atomicDuration struct{ v atomic.Int64 }

func (d *atomicDuration) Load() time.Duration   { return time.Duration(d.v.Load()) }
func (d *atomicDuration) Store(t time.Duration) { d.v.Store(int64(t)) }

// timer is a pending kernel deadline. ch is the wake channel for plain
// sleeps; sel is set instead for selector deadline-parks (see select.go).
// next/tail chain timers that share a deadline off the single heap node.
type timer struct {
	deadline time.Duration
	ch       chan struct{}
	sel      *Selector
	fired    bool
	dead     bool
	next     *timer
	tail     *timer
}

// timerPool recycles timers (and their wake channels) across sleeps: the
// kernel fast path allocates nothing in steady state.
var timerPool = sync.Pool{New: func() any {
	return &timer{ch: make(chan struct{}, 1)}
}}

func getTimer() *timer {
	t := timerPool.Get().(*timer)
	t.fired, t.dead = false, false
	t.sel = nil
	t.next, t.tail = nil, nil
	return t
}

func putTimer(t *timer) {
	// Drop a stale wake left by the rare fire/cancel race so the next user
	// of this timer does not wake instantly.
	select {
	case <-t.ch:
	default:
	}
	timerPool.Put(t)
}

// timerHeap orders heap nodes by deadline. Deadlines are unique in the heap
// (same-deadline timers chain off one node), so no tiebreak is needed.
type timerHeap []*timer

func (h timerHeap) Len() int           { return len(h) }
func (h timerHeap) Less(i, j int) bool { return h[i].deadline < h[j].deadline }
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)        { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// ---------------------------------------------------------------------------
// Real runtime
// ---------------------------------------------------------------------------

// Real is a wall-clock runtime. Scale compresses simulated time: with
// Scale=100, a simulated second passes in 10ms of wall time. Scale=1 is
// real time.
type Real struct {
	start time.Time
	scale float64
}

// NewReal returns a wall-clock runtime with the given compression factor.
// scale values below 1 are clamped to 1.
func NewReal(scale float64) *Real {
	if scale < 1 {
		scale = 1
	}
	return &Real{start: time.Now(), scale: scale}
}

// Now returns scaled elapsed wall time.
func (r *Real) Now() time.Duration {
	return time.Duration(float64(time.Since(r.start)) * r.scale)
}

// Sleep pauses for d of simulated time (d/scale of wall time).
func (r *Real) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(time.Duration(float64(d) / r.scale))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Go spawns fn as an ordinary goroutine.
func (r *Real) Go(name string, fn func()) {
	_ = name
	go fn()
}

// NewWaiter returns a channel-backed parking primitive.
func (r *Real) NewWaiter() *Waiter {
	return &Waiter{ch: make(chan struct{})}
}

var (
	_ Runtime = (*Virtual)(nil)
	_ Runtime = (*Real)(nil)
)
