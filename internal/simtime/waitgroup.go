package simtime

import (
	"context"
	"sync"
)

// WaitGroup is a runtime-aware counterpart of sync.WaitGroup. Tracked tasks
// under the Virtual runtime must not block on sync.WaitGroup (the kernel
// would believe them runnable); they use this type instead.
type WaitGroup struct {
	rt Runtime

	mu      sync.Mutex
	n       int
	waiters []*Waiter
}

// NewWaitGroup returns a WaitGroup bound to rt.
func NewWaitGroup(rt Runtime) *WaitGroup {
	return &WaitGroup{rt: rt}
}

// Add adds delta to the counter. It panics if the counter goes negative.
func (wg *WaitGroup) Add(delta int) {
	wg.mu.Lock()
	wg.n += delta
	if wg.n < 0 {
		wg.mu.Unlock()
		panic("simtime: negative WaitGroup counter")
	}
	var toWake []*Waiter
	if wg.n == 0 {
		toWake = wg.waiters
		wg.waiters = nil
	}
	wg.mu.Unlock()
	for _, w := range toWake {
		w.Wake()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Go spawns fn as a tracked task accounted for by the group.
func (wg *WaitGroup) Go(name string, fn func()) {
	wg.Add(1)
	wg.rt.Go(name, func() {
		defer wg.Done()
		fn()
	})
}

// Wait blocks until the counter reaches zero or ctx is done.
func (wg *WaitGroup) Wait(ctx context.Context) error {
	wg.mu.Lock()
	if wg.n == 0 {
		wg.mu.Unlock()
		return nil
	}
	w := wg.rt.NewWaiter()
	wg.waiters = append(wg.waiters, w)
	wg.mu.Unlock()
	return w.Wait(ctx)
}
