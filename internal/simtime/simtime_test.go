package simtime

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestVirtualSleepAdvancesTime(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		if err := k.Sleep(context.Background(), 5*time.Second); err != nil {
			t.Errorf("Sleep: %v", err)
		}
		if got := k.Now(); got != 5*time.Second {
			t.Errorf("Now() = %v, want 5s", got)
		}
	})
}

func TestVirtualSleepIsInstantInWallTime(t *testing.T) {
	k := NewVirtual()
	start := time.Now()
	k.Run(func() {
		for i := 0; i < 1000; i++ {
			_ = k.Sleep(context.Background(), time.Hour)
		}
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("1000 virtual hours took %v of wall time", elapsed)
	}
	if got := k.Now(); got != 1000*time.Hour {
		t.Fatalf("Now() = %v, want 1000h", got)
	}
}

func TestVirtualConcurrentSleepersOrdering(t *testing.T) {
	k := NewVirtual()
	var mu sync.Mutex
	var order []int
	k.Run(func() {
		wg := NewWaitGroup(k)
		for _, d := range []struct {
			id int
			d  time.Duration
		}{{3, 30 * time.Millisecond}, {1, 10 * time.Millisecond}, {2, 20 * time.Millisecond}} {
			d := d
			wg.Go("sleeper", func() {
				_ = k.Sleep(context.Background(), d.d)
				mu.Lock()
				order = append(order, d.id)
				mu.Unlock()
			})
		}
		if err := wg.Wait(context.Background()); err != nil {
			t.Errorf("Wait: %v", err)
		}
	})
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wake order = %v, want [1 2 3]", order)
	}
}

func TestVirtualSleepCancellationDoesNotHang(t *testing.T) {
	// Under the Virtual runtime, context cancellation is best-effort: the
	// sleep returns promptly in wall time, either via the cancellation path
	// or by the kernel advancing virtual time to the timer deadline (no
	// other task was runnable). Deterministic teardown in simulation code
	// uses queue Close and stop flags instead of contexts. This test pins
	// the "returns promptly, no wall-time hang" property.
	k := NewVirtual()
	k.Run(func() {
		ctx, cancel := context.WithCancel(context.Background())
		wg := NewWaitGroup(k)
		wg.Go("sleeper", func() {
			_ = k.Sleep(ctx, time.Hour)
		})
		_ = k.Sleep(context.Background(), time.Second)
		cancel()
		if err := wg.Wait(context.Background()); err != nil {
			t.Errorf("Wait: %v", err)
		}
	})
}

func TestVirtualSleepPreCancelledContext(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := k.Sleep(ctx, time.Hour); err != context.Canceled {
			t.Errorf("Sleep = %v, want Canceled", err)
		}
		if got := k.Now(); got != 0 {
			t.Errorf("Now() = %v, want 0", got)
		}
	})
}

func TestWaiterWakeBeforeWait(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		w := k.NewWaiter()
		if !w.Wake() {
			t.Error("Wake returned false")
		}
		if err := w.Wait(context.Background()); err != nil {
			t.Errorf("Wait after Wake: %v", err)
		}
	})
}

func TestWaiterWakeWhileParked(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		w := k.NewWaiter()
		wg := NewWaitGroup(k)
		var woke atomic.Bool
		wg.Go("waiter", func() {
			if err := w.Wait(context.Background()); err == nil {
				woke.Store(true)
			}
		})
		_ = k.Sleep(context.Background(), time.Second)
		if !w.Wake() {
			t.Error("Wake returned false for parked waiter")
		}
		_ = wg.Wait(context.Background())
		if !woke.Load() {
			t.Error("parked waiter did not wake")
		}
	})
}

func TestWaiterCancelledWakeReturnsFalse(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		ctx, cancel := context.WithCancel(context.Background())
		w := k.NewWaiter()
		wg := NewWaitGroup(k)
		wg.Go("waiter", func() {
			if err := w.Wait(ctx); err != context.Canceled {
				t.Errorf("Wait = %v, want Canceled", err)
			}
		})
		_ = k.Sleep(context.Background(), time.Second)
		cancel()
		_ = wg.Wait(context.Background())
		if w.Wake() {
			t.Error("Wake on cancelled waiter returned true")
		}
	})
}

func TestWaitGroupWaitsForAll(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		wg := NewWaitGroup(k)
		var n atomic.Int64
		for i := 1; i <= 10; i++ {
			i := i
			wg.Go("w", func() {
				_ = k.Sleep(context.Background(), time.Duration(i)*time.Second)
				n.Add(1)
			})
		}
		if err := wg.Wait(context.Background()); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if n.Load() != 10 {
			t.Errorf("completed = %d, want 10", n.Load())
		}
		if got := k.Now(); got != 10*time.Second {
			t.Errorf("Now() = %v, want 10s", got)
		}
	})
}

func TestRealRuntimeScale(t *testing.T) {
	r := NewReal(1000) // 1 simulated second = 1ms wall
	start := time.Now()
	if err := r.Sleep(context.Background(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	if wall > 500*time.Millisecond {
		t.Errorf("scaled sleep took %v of wall time", wall)
	}
	if now := r.Now(); now < 2*time.Second {
		t.Errorf("Now() = %v, want >= 2s", now)
	}
}

func TestVirtualManyTasksThroughput(t *testing.T) {
	k := NewVirtual()
	var total atomic.Int64
	k.Run(func() {
		wg := NewWaitGroup(k)
		for i := 0; i < 50; i++ {
			wg.Go("worker", func() {
				for j := 0; j < 100; j++ {
					_ = k.Sleep(context.Background(), time.Millisecond)
					total.Add(1)
				}
			})
		}
		_ = wg.Wait(context.Background())
	})
	if total.Load() != 5000 {
		t.Fatalf("total = %d, want 5000", total.Load())
	}
	if got := k.Now(); got != 100*time.Millisecond {
		t.Fatalf("Now() = %v, want 100ms (tasks sleep in parallel)", got)
	}
}
