package simtime

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSource is a minimal level-triggered wake source for selector tests.
type fakeSource struct {
	mu    sync.Mutex
	ready bool
	subs  []fakeSub
}

type fakeSub struct {
	s   *Selector
	idx int
}

func (f *fakeSource) Arm(s *Selector, idx int) bool {
	f.mu.Lock()
	if f.ready {
		f.mu.Unlock()
		s.TryWake(idx)
		return true
	}
	f.subs = append(f.subs, fakeSub{s, idx})
	f.mu.Unlock()
	return false
}

func (f *fakeSource) Disarm(s *Selector) {
	f.mu.Lock()
	for i, e := range f.subs {
		if e.s == s {
			f.subs = append(f.subs[:i], f.subs[i+1:]...)
			break
		}
	}
	f.mu.Unlock()
}

// fire marks the source ready and wakes one armed selector.
func (f *fakeSource) fire() {
	f.mu.Lock()
	f.ready = true
	subs := f.subs
	f.subs = nil
	f.mu.Unlock()
	for _, e := range subs {
		if e.s.TryWake(e.idx) {
			return
		}
	}
}

func TestSelectReturnsFirstReadySource(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		a := &fakeSource{ready: true}
		b := &fakeSource{ready: true}
		sel := NewSelector(k)
		start := k.Now()
		idx, err := sel.Select(context.Background(), 0, a, b)
		if err != nil || idx != 0 {
			t.Fatalf("Select = %d, %v; want 0, nil (priority order)", idx, err)
		}
		if k.Now() != start {
			t.Fatal("ready Select advanced virtual time")
		}
	})
}

func TestSelectWokenBySourceAtSameVirtualInstant(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		src := &fakeSource{}
		other := &fakeSource{}
		var wokeAt time.Duration
		wg := NewWaitGroup(k)
		wg.Go("waiter", func() {
			sel := NewSelector(k)
			idx, err := sel.Select(context.Background(), 0, other, src)
			if err != nil || idx != 1 {
				t.Errorf("Select = %d, %v; want 1, nil", idx, err)
			}
			wokeAt = k.Now()
		})
		wg.Go("waker", func() {
			_ = k.Sleep(context.Background(), 25*time.Millisecond)
			src.fire()
		})
		_ = wg.Wait(context.Background())
		if wokeAt != 25*time.Millisecond {
			t.Fatalf("woke at %v, want exactly 25ms (event time, not poll granularity)", wokeAt)
		}
	})
}

func TestSelectHeartbeatIsDeterministicUnderVirtual(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		src := &fakeSource{}
		sel := NewSelector(k)
		start := k.Now()
		idx, err := sel.Select(context.Background(), 50*time.Millisecond, src)
		if err != nil || idx != Heartbeat {
			t.Fatalf("Select = %d, %v; want Heartbeat, nil", idx, err)
		}
		if got := k.Now() - start; got != 50*time.Millisecond {
			t.Fatalf("heartbeat fired after %v, want exactly 50ms", got)
		}
	})
}

func TestSelectSourceBeatsLaterHeartbeat(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		src := &fakeSource{}
		wg := NewWaitGroup(k)
		wg.Go("waiter", func() {
			sel := NewSelector(k)
			idx, err := sel.Select(context.Background(), time.Second, src)
			if err != nil || idx != 0 {
				t.Errorf("Select = %d, %v; want 0, nil", idx, err)
			}
			if k.Now() != 10*time.Millisecond {
				t.Errorf("woke at %v, want 10ms", k.Now())
			}
		})
		wg.Go("waker", func() {
			_ = k.Sleep(context.Background(), 10*time.Millisecond)
			src.fire()
		})
		_ = wg.Wait(context.Background())
	})
}

func TestTryWakeClaimsOnce(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		sel := NewSelector(k)
		sel.Reset()
		if !sel.TryWake(3) {
			t.Fatal("first TryWake should claim")
		}
		if sel.TryWake(4) {
			t.Fatal("second TryWake must fail so the wakeup is passed on")
		}
		idx, err := sel.Wait(context.Background(), 0)
		if err != nil || idx != 3 {
			t.Fatalf("Wait = %d, %v; want 3, nil", idx, err)
		}
	})
}

func TestSelectCancellation(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		src := &fakeSource{}
		ctx, cancel := context.WithCancel(context.Background())
		wg := NewWaitGroup(k)
		wg.Go("waiter", func() {
			sel := NewSelector(k)
			if _, err := sel.Select(ctx, 0, src); err != context.Canceled {
				t.Errorf("Select err = %v, want context.Canceled", err)
			}
			if sel.TryWake(0) {
				t.Error("TryWake after cancellation must report undelivered")
			}
		})
		wg.Go("canceller", func() {
			_ = k.Sleep(context.Background(), time.Millisecond)
			cancel()
		})
		_ = wg.Wait(context.Background())
	})
}

func TestSelectorReuseAcrossCycles(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		src := &fakeSource{}
		sel := NewSelector(k)
		for cycle := 0; cycle < 5; cycle++ {
			src.mu.Lock()
			src.ready = true
			src.mu.Unlock()
			idx, err := sel.Select(context.Background(), 0, src)
			if err != nil || idx != 0 {
				t.Fatalf("cycle %d: Select = %d, %v", cycle, idx, err)
			}
			src.mu.Lock()
			src.ready = false
			src.mu.Unlock()
			if idx, err := sel.Select(context.Background(), 5*time.Millisecond, src); err != nil || idx != Heartbeat {
				t.Fatalf("cycle %d: heartbeat Select = %d, %v", cycle, idx, err)
			}
		}
	})
}

func TestSelectorHeartbeatOnRealRuntime(t *testing.T) {
	r := NewReal(1000) // 1s simulated = 1ms wall
	sel := NewSelector(r)
	sel.Reset()
	idx, err := sel.Wait(context.Background(), time.Second)
	if err != nil || idx != Heartbeat {
		t.Fatalf("Wait = %d, %v; want Heartbeat, nil", idx, err)
	}
}

func TestGatePulseWakesAllArmed(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		g := NewGate()
		wg := NewWaitGroup(k)
		for i := 0; i < 3; i++ {
			wg.Go("waiter", func() {
				sel := NewSelector(k)
				if idx, err := sel.Select(context.Background(), 0, g); err != nil || idx != 0 {
					t.Errorf("Select = %d, %v; want 0, nil", idx, err)
				}
			})
		}
		wg.Go("pulser", func() {
			_ = k.Sleep(context.Background(), time.Millisecond)
			g.Pulse()
		})
		_ = wg.Wait(context.Background())
	})
}

// TestGateClosesCheckThenArmRace pins the property the loader's drain
// accounting relies on: a pulse delivered between a condition check and the
// subsequent Arm is not lost — Arm fires immediately because the gate
// version advanced since this selector last armed.
func TestGateClosesCheckThenArmRace(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		g := NewGate()
		sel := NewSelector(k)
		// Establish a baseline cycle so the selector has seen version 0.
		g.Arm(sel, 0)
		g.Disarm(sel)
		// The condition check would happen here; the pulse lands after it.
		g.Pulse()
		start := k.Now()
		idx, err := sel.Select(context.Background(), 0, g)
		if err != nil || idx != 0 {
			t.Fatalf("Select = %d, %v; want immediate wake from missed pulse", idx, err)
		}
		if k.Now() != start {
			t.Fatal("missed-pulse recovery advanced virtual time")
		}
	})
}

// TestGatePulseRacesSelectorReuse hammers the unserialized window between a
// Pulse's out-of-lock TryWake and the owner's next Reset: a delayed wake
// must either be refused or claim the fresh cycle with its send intact.
// (With Reset storing idle before draining, a delayed wake could claim the
// new cycle and have its send swallowed, hanging the owner forever — this
// test then times out.)
func TestGatePulseRacesSelectorReuse(t *testing.T) {
	k := NewVirtual()
	k.Run(func() {
		g := NewGate()
		var done atomic.Bool
		wg := NewWaitGroup(k)
		wg.Go("owner", func() {
			defer done.Store(true)
			sel := NewSelector(k)
			for i := 0; i < 2000; i++ {
				if idx, err := sel.Select(context.Background(), 0, g); err != nil || idx != 0 {
					t.Errorf("cycle %d: Select = %d, %v", i, idx, err)
					return
				}
			}
		})
		wg.Go("pulser", func() {
			for !done.Load() {
				g.Pulse()
				runtime.Gosched() // keep the owner scheduled on small GOMAXPROCS
			}
		})
		_ = wg.Wait(context.Background())
	})
}
