package simtime

import (
	"context"
	"sync"
)

// Barrier is a runtime-aware cyclic barrier for n participants: the n-th
// arrival releases everyone and the barrier resets for the next round.
// Distributed data-parallel training uses it as the per-step gradient
// synchronization point.
type Barrier struct {
	rt        Runtime
	n         int
	onRelease func(gen uint64)

	mu      sync.Mutex
	arrived int
	gen     uint64
	waiters []*Waiter
	broken  bool
}

// NewBarrier returns a barrier for n participants (n must be positive).
func NewBarrier(rt Runtime, n int) *Barrier {
	if n <= 0 {
		panic("simtime: barrier size must be positive")
	}
	return &Barrier{rt: rt, n: n}
}

// NewBarrierFunc returns a barrier whose fn runs once per completed round,
// in the releasing (last-arriving) participant, after the barrier has reset
// for the next round but before any waiter wakes. Every participant is
// parked or releasing at that instant, so fn observes — and may mutate —
// shared state with no participant mid-step: the hook distributed training
// uses to apply membership changes (node crash/rejoin) at a quiescent
// point. fn receives the generation that completed. It must not call Wait
// on the same barrier.
func NewBarrierFunc(rt Runtime, n int, fn func(gen uint64)) *Barrier {
	b := NewBarrier(rt, n)
	b.onRelease = fn
	return b
}

// Wait blocks until all n participants have arrived. It returns the round
// generation that completed. If the barrier is broken (a participant left),
// Wait returns ErrBarrierBroken immediately for all current and future
// callers.
func (b *Barrier) Wait(ctx context.Context) (uint64, error) {
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		return 0, ErrBarrierBroken
	}
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		ws := b.waiters
		b.waiters = nil
		b.mu.Unlock()
		if b.onRelease != nil {
			b.onRelease(gen)
		}
		for _, w := range ws {
			w.Wake()
		}
		return gen, nil
	}
	w := b.rt.NewWaiter()
	b.waiters = append(b.waiters, w)
	b.mu.Unlock()
	if err := w.Wait(ctx); err != nil {
		return 0, err
	}
	// Report broken only if this waiter's generation never completed
	// (release advances gen before waking). A waiter woken by a normal
	// release must return success even when a participant breaks the
	// barrier immediately afterwards — otherwise whether the last completed
	// round counts would depend on goroutine scheduling, not virtual time.
	b.mu.Lock()
	broken := b.broken && b.gen == gen
	b.mu.Unlock()
	if broken {
		return 0, ErrBarrierBroken
	}
	return gen, nil
}

// Break releases all waiters with ErrBarrierBroken; used when a
// participant exits early (end of its shard).
func (b *Barrier) Break() {
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		return
	}
	b.broken = true
	ws := b.waiters
	b.waiters = nil
	b.mu.Unlock()
	for _, w := range ws {
		w.Wake()
	}
}

// ErrBarrierBroken is returned by Wait after Break.
var ErrBarrierBroken = barrierBrokenError{}

type barrierBrokenError struct{}

func (barrierBrokenError) Error() string { return "simtime: barrier broken" }
