package simtime

import (
	"context"
	"testing"
	"time"
)

func BenchmarkVirtualSleep(b *testing.B) {
	k := NewVirtual()
	b.ReportAllocs()
	b.ResetTimer()
	k.Run(func() {
		for i := 0; i < b.N; i++ {
			_ = k.Sleep(context.Background(), time.Second)
		}
	})
}

func BenchmarkVirtualParallelSleepers(b *testing.B) {
	k := NewVirtual()
	b.ReportAllocs()
	b.ResetTimer()
	k.Run(func() {
		wg := NewWaitGroup(k)
		per := b.N/32 + 1
		for w := 0; w < 32; w++ {
			wg.Go("sleeper", func() {
				for i := 0; i < per; i++ {
					_ = k.Sleep(context.Background(), time.Millisecond)
				}
			})
		}
		_ = wg.Wait(context.Background())
	})
}

func BenchmarkWaiterWakeWait(b *testing.B) {
	k := NewVirtual()
	b.ReportAllocs()
	b.ResetTimer()
	k.Run(func() {
		for i := 0; i < b.N; i++ {
			w := k.NewWaiter()
			w.Wake()
			_ = w.Wait(context.Background())
		}
	})
}

// BenchmarkSelectorWakeWait measures one full selector cycle: reset, claim,
// wait — the hot path of event-driven queue waits and device parks.
func BenchmarkSelectorWakeWait(b *testing.B) {
	k := NewVirtual()
	b.ReportAllocs()
	b.ResetTimer()
	k.Run(func() {
		sel := NewSelector(k)
		for i := 0; i < b.N; i++ {
			sel.Reset()
			sel.TryWake(0)
			_, _ = sel.Wait(context.Background(), 0)
		}
	})
}

// BenchmarkVirtualSameDeadlineSleepers exercises the same-deadline chain:
// many tasks sleeping to one deadline fire with a single heap pop.
func BenchmarkVirtualSameDeadlineSleepers(b *testing.B) {
	k := NewVirtual()
	b.ReportAllocs()
	b.ResetTimer()
	k.Run(func() {
		wg := NewWaitGroup(k)
		per := b.N/32 + 1
		for w := 0; w < 32; w++ {
			wg.Go("sleeper", func() {
				for i := 0; i < per; i++ {
					_ = k.Sleep(context.Background(), time.Second)
				}
			})
		}
		_ = wg.Wait(context.Background())
	})
}
