// Package metrics provides the periodic resource sampler behind the paper's
// usage figures (CPU%, GPU%, disk read rate, throughput over time). A
// Collector runs as a tracked task under the simtime runtime, sampling
// registered gauges at a fixed virtual-time interval — the analogue of the
// paper's nvidia-smi/dstat monitoring (§5.1).
package metrics

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/stats"
)

// Collector samples gauges periodically into time series.
type Collector struct {
	rt       simtime.Runtime
	interval time.Duration

	mu     sync.Mutex
	gauges []gauge
	series map[string]*stats.TimeSeries

	stopped atomic.Bool
}

type gauge struct {
	name string
	fn   func() float64
}

// NewCollector returns a collector sampling every interval of virtual time.
func NewCollector(rt simtime.Runtime, interval time.Duration) *Collector {
	return &Collector{rt: rt, interval: interval, series: make(map[string]*stats.TimeSeries)}
}

// Register adds a gauge. The function is called from the collector task
// only, so stateful window gauges (e.g. Device.UtilizationGauge) are safe.
// Registering after Stop returns an error: the sampling task has already
// exited, so the gauge would silently never be sampled.
func (c *Collector) Register(name string, fn func() float64) error {
	if c.stopped.Load() {
		return fmt.Errorf("metrics: Register(%q) after Stop: the sampling task has exited", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gauges = append(c.gauges, gauge{name: name, fn: fn})
	c.series[name] = &stats.TimeSeries{Name: name}
	return nil
}

// Start launches the sampling task in wg. The task exits at the first tick
// after Stop is called.
func (c *Collector) Start(wg *simtime.WaitGroup) {
	wg.Go("metrics-collector", func() {
		for {
			if c.stopped.Load() {
				return
			}
			if err := c.rt.Sleep(context.Background(), c.interval); err != nil {
				return
			}
			if c.stopped.Load() {
				return
			}
			c.sample()
		}
	})
}

func (c *Collector) sample() {
	now := c.rt.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, g := range c.gauges {
		c.series[g.name].Append(now, g.fn())
	}
}

// Stop ends sampling after the current tick.
func (c *Collector) Stop() { c.stopped.Store(true) }

// Series returns the recorded time series for a gauge name (nil if
// unknown). The returned series must not be mutated while sampling runs.
func (c *Collector) Series(name string) *stats.TimeSeries {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.series[name]
}

// Names returns the registered gauge names.
func (c *Collector) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.gauges))
	for _, g := range c.gauges {
		out = append(out, g.name)
	}
	return out
}

// SeriesSnapshot is one gauge's recorded points, copied out of the
// collector.
type SeriesSnapshot struct {
	Name   string
	Points []stats.Point
}

// Snapshot copies every recorded series under a single lock acquisition,
// in registration order — a consistent cut across gauges, where repeated
// Series/Names calls could interleave with a sampling tick.
func (c *Collector) Snapshot() []SeriesSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SeriesSnapshot, 0, len(c.gauges))
	for _, g := range c.gauges {
		ts := c.series[g.name]
		pts := make([]stats.Point, len(ts.Points))
		copy(pts, ts.Points)
		out = append(out, SeriesSnapshot{Name: g.name, Points: pts})
	}
	return out
}

// CounterRateGauge builds a gauge reporting the rate of change of a
// monotonic counter (per second of virtual time) over the sampling window.
func CounterRateGauge(rt simtime.Runtime, counter func() float64) func() float64 {
	last := counter()
	lastT := rt.Now()
	return func() float64 {
		cur := counter()
		now := rt.Now()
		dt := (now - lastT).Seconds()
		var r float64
		if dt > 0 {
			r = (cur - last) / dt
		}
		last, lastT = cur, now
		return r
	}
}
