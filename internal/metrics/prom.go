package metrics

import (
	"bufio"
	"io"
	"strconv"
	"strings"

	"github.com/minatoloader/minato/internal/stats"
)

// Prometheus text-format export: the Collector's gauges become gauge
// metrics (last sampled value), and log-bucket histograms (step-time SLO
// views) become histogram metrics with cumulative buckets. Everything is
// emitted in a caller-controlled deterministic order with integer-exact
// counts, so a snapshot of a deterministic run is itself reproducible.

// HistSnapshot names a histogram for export.
type HistSnapshot struct {
	Name string
	Hist *stats.LogHist
}

// promName sanitizes a series name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("minato_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the series snapshot and histograms in the
// Prometheus text exposition format. Series order is preserved (Snapshot
// returns registration order); each gauge reports its most recent sample.
func WritePrometheus(w io.Writer, series []SeriesSnapshot, hists []HistSnapshot) error {
	bw := bufio.NewWriter(w)
	for _, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		name := promName(s.Name)
		last := s.Points[len(s.Points)-1]
		bw.WriteString("# TYPE " + name + " gauge\n")
		bw.WriteString(name + " " + promFloat(last.V) + "\n")
		bw.WriteString("# TYPE " + name + "_samples_total counter\n")
		bw.WriteString(name + "_samples_total " + strconv.Itoa(len(s.Points)) + "\n")
	}
	for _, h := range hists {
		if h.Hist == nil || h.Hist.N() == 0 {
			continue
		}
		name := promName(h.Name)
		bw.WriteString("# TYPE " + name + " histogram\n")
		cum := int64(0)
		h.Hist.ForEachBucket(func(upper float64, count int64) {
			cum += count
			bw.WriteString(name + `_bucket{le="` + promFloat(upper) + `"} ` +
				strconv.FormatInt(cum, 10) + "\n")
		})
		bw.WriteString(name + `_bucket{le="+Inf"} ` + strconv.FormatInt(h.Hist.N(), 10) + "\n")
		bw.WriteString(name + "_sum " + promFloat(h.Hist.Sum()) + "\n")
		bw.WriteString(name + "_count " + strconv.FormatInt(h.Hist.N(), 10) + "\n")
	}
	return bw.Flush()
}
