package metrics

import (
	"strings"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/stats"
)

func TestWritePrometheus(t *testing.T) {
	series := []SeriesSnapshot{
		{Name: "gpu", Points: []stats.Point{{T: time.Second, V: 50}, {T: 2 * time.Second, V: 92.5}}},
		{Name: "empty"},
		{Name: "minato workers!", Points: []stats.Point{{T: time.Second, V: 3}}},
	}
	h := stats.NewLogHist()
	h.Add(0.001)
	h.Add(0.001)
	h.Add(0.5)
	hists := []HistSnapshot{{Name: "step_seconds", Hist: h}, {Name: "idle", Hist: stats.NewLogHist()}}

	var b strings.Builder
	if err := WritePrometheus(&b, series, hists); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE minato_gpu gauge\nminato_gpu 92.5\n",
		"minato_gpu_samples_total 2\n",
		"minato_minato_workers_ 3\n",
		"# TYPE minato_step_seconds histogram\n",
		`minato_step_seconds_bucket{le="+Inf"} 3`,
		"minato_step_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "minato_empty") || strings.Contains(out, "minato_idle") {
		t.Fatalf("empty series/hist exported:\n%s", out)
	}
	// Cumulative buckets must be nondecreasing and end at the count.
	if !strings.Contains(out, "minato_step_seconds_sum 0.502") {
		t.Fatalf("histogram sum wrong:\n%s", out)
	}
	// Deterministic: a second write produces identical bytes.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, series, hists); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("export not deterministic")
	}
}
