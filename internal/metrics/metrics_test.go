package metrics

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

func TestCollectorSamplesAtInterval(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		c := NewCollector(k, time.Second)
		n := 0.0
		c.Register("counter", func() float64 { n++; return n })
		wg := simtime.NewWaitGroup(k)
		c.Start(wg)
		_ = k.Sleep(context.Background(), 10500*time.Millisecond)
		c.Stop()
		_ = wg.Wait(context.Background())
		ts := c.Series("counter")
		if len(ts.Points) < 9 || len(ts.Points) > 11 {
			t.Fatalf("points = %d, want ≈10", len(ts.Points))
		}
		// Samples are 1s apart in virtual time.
		for i := 1; i < len(ts.Points); i++ {
			if d := ts.Points[i].T - ts.Points[i-1].T; d != time.Second {
				t.Fatalf("gap = %v, want 1s", d)
			}
		}
	})
}

func TestCollectorStopEndsTask(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		c := NewCollector(k, time.Second)
		c.Register("g", func() float64 { return 1 })
		wg := simtime.NewWaitGroup(k)
		c.Start(wg)
		c.Stop()
		if err := wg.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCounterRateGauge(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		total := 0.0
		g := CounterRateGauge(k, func() float64 { return total })
		total = 100
		_ = k.Sleep(context.Background(), 10*time.Second)
		if r := g(); math.Abs(r-10) > 0.1 {
			t.Fatalf("rate = %.2f, want 10/s", r)
		}
		_ = k.Sleep(context.Background(), 5*time.Second)
		if r := g(); r != 0 {
			t.Fatalf("idle rate = %.2f, want 0", r)
		}
	})
}

func TestRegisterAfterStopErrors(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		c := NewCollector(k, time.Second)
		if err := c.Register("ok", func() float64 { return 1 }); err != nil {
			t.Fatalf("live Register: %v", err)
		}
		wg := simtime.NewWaitGroup(k)
		c.Start(wg)
		c.Stop()
		_ = wg.Wait(context.Background())
		if err := c.Register("late", func() float64 { return 2 }); err == nil {
			t.Fatal("Register after Stop succeeded; the gauge would never be sampled")
		}
		for _, n := range c.Names() {
			if n == "late" {
				t.Fatal("rejected gauge still registered")
			}
		}
	})
}

func TestSnapshotConsistentCut(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		c := NewCollector(k, time.Second)
		n := 0.0
		// Both gauges report the same monotonic counter; a consistent cut
		// must show every series with the same number of points.
		c.Register("a", func() float64 { n++; return n })
		c.Register("b", func() float64 { return n })
		wg := simtime.NewWaitGroup(k)
		c.Start(wg)
		_ = k.Sleep(context.Background(), 5500*time.Millisecond)
		snap := c.Snapshot()
		if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
			t.Fatalf("snapshot shape: %+v", snap)
		}
		if len(snap[0].Points) != len(snap[1].Points) {
			t.Fatalf("torn snapshot: %d vs %d points", len(snap[0].Points), len(snap[1].Points))
		}
		if len(snap[0].Points) == 0 {
			t.Fatal("no samples recorded")
		}
		// The copies must be detached from the live series.
		snap[0].Points[0].V = -1
		if c.Series("a").Points[0].V == -1 {
			t.Fatal("snapshot aliases the live series")
		}
		c.Stop()
		_ = wg.Wait(context.Background())
	})
}

func TestNamesAndUnknownSeries(t *testing.T) {
	k := simtime.NewVirtual()
	c := NewCollector(k, time.Second)
	c.Register("a", func() float64 { return 0 })
	c.Register("b", func() float64 { return 0 })
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if c.Series("zzz") != nil {
		t.Fatal("unknown series not nil")
	}
}
