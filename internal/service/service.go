// Package service implements the disaggregated preprocessing tier: a
// batch-framed request/response protocol spoken between training clients
// and preprocessing servers over the netsim fabric, deterministically on
// the virtual clock.
//
// The wire model is deliberately simple — every message is one Frame, and
// a Frame costs its WireBytes on the sender's egress NIC and the
// receiver's ingress NIC, contending with every other flow on the fabric
// (gradient all-reduce, remote-storage reads). Determinism comes from the
// substrate: transfers complete at analytic, schedule-independent virtual
// instants, and every protocol state machine is commutative under
// same-instant frame reordering (per-stream state only, sequence-numbered
// batches, idempotent duplicate release).
//
// Protocol sketch:
//
//	client                          server
//	  OPEN(name, token, window) ─▶  auth → quota → capacity → open stream
//	  ◀─ OPEN_REPLY(id, window, total)
//	  REQ(seq) ×window ──────────▶  bounded grant queue (backpressure)
//	  ◀─ BATCH(seq) ...             one in-order pump per stream
//	  CANCEL(seq) ───────────────▶  withdraw an unsent grant (hedging)
//	  CLOSE ─────────────────────▶  teardown, then exactly one
//	  ◀─ END(code)                  END after server-side cleanup
//
// The client keeps a bounded number of REQs outstanding (its prefetch
// window, capped by the server's send window), reorders arriving batches
// by sequence number, and optionally hedges the head-of-line sequence
// against a replica server after a fixed delay — first response wins, the
// loser's grant is cancelled, and a too-late duplicate is received and
// released (never leaked).
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/netsim"
	"github.com/minatoloader/minato/internal/queue"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/trace"
)

// Typed protocol errors. The root package re-exports these in its error
// taxonomy; clients receive them from Open/Recv, servers' openers return
// them to select the rejection code sent on the wire.
var (
	// ErrUnauthorized rejects an OPEN whose token the server does not
	// recognize.
	ErrUnauthorized = errors.New("minato: unauthorized")
	// ErrQuotaExceeded rejects an OPEN whose token is at its concurrent-
	// stream quota.
	ErrQuotaExceeded = errors.New("minato: tenant quota exceeded")
	// ErrServerOverloaded rejects an OPEN arriving while the server (or
	// its backing cluster) is at stream capacity, and kills streams whose
	// clients violate the granted send window. Clients retry with backoff.
	ErrServerOverloaded = errors.New("minato: server overloaded")
	// ErrUnknownStream rejects an OPEN for a name the server does not
	// publish, and REQs against stream ids the server does not know.
	ErrUnknownStream = errors.New("minato: unknown stream")
)

// Op enumerates frame types.
type Op uint8

const (
	// OpOpen asks the server to open a batch stream (Spec carries what).
	OpOpen Op = iota
	// OpOpenReply answers an OpOpen: Code, and on success the stream id,
	// granted send window, and total batch count.
	OpOpenReply
	// OpReq requests batch Seq of a stream — one REQ per batch, bounded by
	// the granted window.
	OpReq
	// OpBatch delivers batch Seq (the frame owns Batch until received).
	OpBatch
	// OpEnd is the server's final frame for a stream: end of data, a kill,
	// or the acknowledgement of an OpClose — sent exactly once, after all
	// server-side stream state is torn down.
	OpEnd
	// OpCancel withdraws an unsent grant (hedging: the other replica won).
	OpCancel
	// OpClose asks the server to tear the stream down.
	OpClose
)

// Code classifies OpOpenReply and OpEnd frames.
type Code uint8

const (
	// CodeOK accepts an open or acknowledges a close.
	CodeOK Code = iota
	// CodeEOF ends a stream that delivered its full budget.
	CodeEOF
	// CodeUnauthorized, CodeQuotaExceeded, CodeOverloaded, and
	// CodeUnknownStream carry the typed rejections.
	CodeUnauthorized
	CodeQuotaExceeded
	CodeOverloaded
	CodeUnknownStream
	// CodeError reports a server-side stream failure.
	CodeError
)

// ErrFromCode maps a rejection code to its typed error.
func ErrFromCode(c Code) error {
	switch c {
	case CodeUnauthorized:
		return ErrUnauthorized
	case CodeQuotaExceeded:
		return ErrQuotaExceeded
	case CodeOverloaded:
		return ErrServerOverloaded
	case CodeUnknownStream:
		return ErrUnknownStream
	default:
		return fmt.Errorf("minato: stream failed (code %d)", c)
	}
}

// StreamSpec is what an OPEN asks for: a published dataset × pipeline by
// name, the client's auth token, and the stream shape.
type StreamSpec struct {
	Name       string
	Token      string
	BatchSize  int
	Iterations int
	Epochs     int
	Seed       uint64
	// Window is the client's requested prefetch depth; the server grants
	// min(Window, its own send window).
	Window int
}

// frameHeaderBytes is the fixed wire cost of any frame (op, ids, seq,
// code, window/total fields).
const frameHeaderBytes = 64

// Frame is one protocol message.
type Frame struct {
	Op     Op
	From   int // sender endpoint
	Stream uint64
	Seq    int
	Code   Code
	Spec   StreamSpec // OpOpen only
	Window int        // OpOpenReply: granted send window
	Total  int        // OpOpenReply: the stream's batch budget
	// Batch is the payload of an OpBatch; the frame owns it in flight.
	Batch *data.Batch
	// Bytes is the batch payload's wire size, computed while the batch is
	// alive (Batch.Bytes panics after release).
	Bytes int64
}

// WireBytes is the frame's cost on the fabric.
func (fr *Frame) WireBytes() int64 {
	n := int64(frameHeaderBytes)
	switch fr.Op {
	case OpOpen:
		n += int64(len(fr.Spec.Name) + len(fr.Spec.Token))
	case OpBatch:
		n += fr.Bytes
	}
	return n
}

// BatchWireBytes is the wire size of a batch payload: sample payload bytes
// plus a 32-byte per-sample framing record. Compute it while the batch is
// alive.
func BatchWireBytes(b *data.Batch) int64 {
	return b.Bytes() + 32*int64(b.Size())
}

// Config sizes a service network.
type Config struct {
	// Endpoints bounds how many NIC-owning parties (servers + clients) the
	// network hosts. Default 64.
	Endpoints int
	// Bandwidth is each NIC's full-duplex bandwidth in bytes/s per
	// direction. Default 25e9 (200 Gb/s, the paper's interconnect).
	Bandwidth float64
	// Latency is the fixed per-frame propagation delay. Default 200µs.
	Latency time.Duration
	// InboxDepth bounds each endpoint's receive queue. Default 256.
	InboxDepth int
}

func (c *Config) fill() {
	if c.Endpoints <= 0 {
		c.Endpoints = 64
	}
	if c.Bandwidth <= 0 {
		c.Bandwidth = 25e9
	}
	if c.Latency == 0 {
		c.Latency = 200 * time.Microsecond
	}
	if c.InboxDepth <= 0 {
		c.InboxDepth = 256
	}
}

// Net is the service fabric: a netsim interconnect plus one frame inbox
// per allocated endpoint, and the fleet registry mapping server indices to
// endpoints (chaos scripts target servers by fleet index).
type Net struct {
	rt  simtime.Runtime
	fab *netsim.Fabric
	cfg Config

	mu      sync.Mutex
	next    int
	inboxes []*queue.Queue[Frame]
	servers []int // fleet index → endpoint

	// tr, when set, records one StageFrame span per delivered frame: wire
	// time plus receiver backpressure, sender in Node, destination in Key,
	// the frame's Op in Detail.
	tr *trace.Recorder
}

// NewNet builds a service fabric on rt.
func NewNet(rt simtime.Runtime, cfg Config) *Net {
	cfg.fill()
	return &Net{
		rt: rt,
		fab: netsim.New(rt, netsim.Config{
			Endpoints: cfg.Endpoints,
			Bandwidth: cfg.Bandwidth,
			Latency:   cfg.Latency,
		}),
		cfg:     cfg,
		inboxes: make([]*queue.Queue[Frame], cfg.Endpoints),
	}
}

// Runtime returns the clock the network runs on.
func (n *Net) Runtime() simtime.Runtime { return n.rt }

// EnableTrace attaches a span recorder to the service network: every
// delivered frame records a StageFrame span, and the underlying fabric
// records flow lifetimes and rate changes. Call before traffic starts.
func (n *Net) EnableTrace(r *trace.Recorder) {
	n.mu.Lock()
	n.tr = r
	n.mu.Unlock()
	n.fab.EnableTrace(r)
}

// Bandwidth returns the configured per-NIC baseline bandwidth.
func (n *Net) Bandwidth() float64 { return n.cfg.Bandwidth }

// AllocEndpoint attaches a new party to the fabric and returns its
// endpoint id, or an error when the configured endpoint budget is spent.
func (n *Net) AllocEndpoint() (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.next >= n.cfg.Endpoints {
		return 0, fmt.Errorf("service: endpoint budget %d exhausted", n.cfg.Endpoints)
	}
	ep := n.next
	n.next++
	n.inboxes[ep] = queue.New[Frame](n.rt, fmt.Sprintf("svc-inbox-%d", ep), n.cfg.InboxDepth)
	return ep, nil
}

// Inbox returns the endpoint's receive queue.
func (n *Net) Inbox(ep int) *queue.Queue[Frame] {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inboxes[ep]
}

// RegisterServer records ep as the next member of the server fleet and
// returns its fleet index.
func (n *Net) RegisterServer(ep int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.servers = append(n.servers, ep)
	return len(n.servers) - 1
}

// ServerCount returns how many servers have registered.
func (n *Net) ServerCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.servers)
}

// ServerEndpoint returns the endpoint of fleet member i.
func (n *Net) ServerEndpoint(i int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.servers[i]
}

// SetBandwidth changes an endpoint's NIC bandwidth mid-run (chaos link
// degradation); the fabric clamps to its MinBandwidth floor.
func (n *Net) SetBandwidth(ep int, bw float64) { n.fab.SetBandwidth(ep, bw) }

// BytesMoved and FlowsCompleted expose the fabric's deterministic traffic
// totals for reports and determinism fingerprints.
func (n *Net) BytesMoved() int64     { return n.fab.BytesMoved() }
func (n *Net) FlowsCompleted() int64 { return n.fab.FlowsCompleted() }

// Send transfers fr from fr.From to dst over the fabric — blocking the
// calling task for the propagation latency plus the fair-shared transfer
// time — then delivers it into dst's inbox (blocking while the inbox is
// full: receiver backpressure reaches the sender). Must run on a tracked
// task.
func (n *Net) Send(ctx context.Context, dst int, fr Frame) error {
	t0 := n.rt.Now()
	if err := n.fab.Transfer(ctx, fr.From, dst, fr.WireBytes()); err != nil {
		return err
	}
	inbox := n.Inbox(dst)
	if inbox == nil {
		return fmt.Errorf("service: send to unallocated endpoint %d", dst)
	}
	if err := inbox.Put(ctx, fr); err != nil {
		return fmt.Errorf("service: endpoint %d inbox: %w", dst, err)
	}
	n.mu.Lock()
	tr := n.tr
	n.mu.Unlock()
	tr.Record(trace.Span{Start: t0, End: n.rt.Now(), Stage: trace.StageFrame,
		Node: int32(fr.From), Key: int64(dst), Seq: int64(fr.Seq), Detail: int64(fr.Op)})
	return nil
}
