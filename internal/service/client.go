package service

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/queue"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/stats"
)

// ClientConfig shapes a client's consumption of one stream.
type ClientConfig struct {
	// Window is the prefetch depth: how many REQs the client keeps
	// outstanding (capped by the server's granted send window). Default 4.
	Window int
	// HedgeDelay arms hedged requests: when the head-of-line batch has
	// been outstanding longer than this, the client opens a stream on the
	// replica server and re-requests the sequence there — first response
	// wins, the loser is cancelled. Zero disables hedging.
	HedgeDelay time.Duration
	// Retries bounds OPEN retries after CodeOverloaded rejections; Backoff
	// is the base delay, doubled per attempt (default 10ms).
	Retries int
	Backoff time.Duration
}

// remote is the client's view of one server it holds a stream on.
type remote struct {
	ep      int
	stream  uint64
	window  int
	opened  bool
	endSeen bool
	endCode Code
	out     int // outstanding REQs
	reqOpen map[int]bool
}

// Client consumes one batch stream over the service fabric. All protocol
// methods (Recv, Close) must be driven by a single tracked task; Stats is
// safe from any goroutine.
type Client struct {
	net   *Net
	rt    simtime.Runtime
	ep    int
	inbox *queue.Queue[Frame]
	spec  StreamSpec
	cfg   ClientConfig
	sel   *simtime.Selector

	primary       remote
	replica       remote
	hasReplica    bool
	hedgeDisabled bool

	total   int
	next    int // next sequence to deliver
	issued  int // primary REQ high-water
	reorder map[int]*data.Batch
	reqAt   map[int]time.Duration
	hedged  map[int]bool
	err     error
	started time.Duration
	lastAt  time.Duration

	mu        sync.Mutex
	delivered int
	waits     *stats.LogHist // Recv block time per delivered batch
	steps     *stats.LogHist // inter-delivery interval
	nHedges   int64
	nDups     int64
	nRetry    int64
	maxOut    int
}

// Open allocates a client endpoint on n, opens a stream on the primary
// server, and returns the connected client. replicaEP < 0 disables
// hedging; otherwise the replica stream is opened lazily at the first
// hedge. Must run on a tracked task (it blocks in virtual time for the
// handshake, including retry/backoff on ErrServerOverloaded).
func Open(ctx context.Context, n *Net, primaryEP, replicaEP int, spec StreamSpec, cfg ClientConfig) (*Client, error) {
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 10 * time.Millisecond
	}
	ep, err := n.AllocEndpoint()
	if err != nil {
		return nil, err
	}
	spec.Window = cfg.Window
	c := &Client{
		net:        n,
		rt:         n.Runtime(),
		ep:         ep,
		inbox:      n.Inbox(ep),
		spec:       spec,
		cfg:        cfg,
		sel:        simtime.NewSelector(n.Runtime()),
		primary:    remote{ep: primaryEP},
		replica:    remote{ep: replicaEP},
		hasReplica: replicaEP >= 0 && cfg.HedgeDelay > 0,
		reorder:    make(map[int]*data.Batch),
		reqAt:      make(map[int]time.Duration),
		hedged:     make(map[int]bool),
	}
	if err := c.openStream(ctx, &c.primary); err != nil {
		return nil, err
	}
	c.started = c.rt.Now()
	c.lastAt = c.started
	c.mu.Lock()
	c.waits, c.steps = stats.NewLogHist(), stats.NewLogHist()
	c.mu.Unlock()
	return c, nil
}

// openStream runs the OPEN handshake against r, retrying overload
// rejections with exponential backoff.
func (c *Client) openStream(ctx context.Context, r *remote) error {
	backoff := c.cfg.Backoff
	for attempt := 0; ; attempt++ {
		if err := c.net.Send(ctx, r.ep, Frame{Op: OpOpen, From: c.ep, Spec: c.spec}); err != nil {
			return err
		}
		rep, err := c.awaitOpenReply(ctx)
		if err != nil {
			return err
		}
		switch rep.Code {
		case CodeOK:
			r.opened = true
			r.stream = rep.Stream
			r.window = rep.Window
			r.reqOpen = make(map[int]bool)
			if c.total == 0 {
				c.total = rep.Total
			}
			return nil
		case CodeOverloaded:
			if attempt >= c.cfg.Retries {
				return ErrServerOverloaded
			}
			c.mu.Lock()
			c.nRetry++
			c.mu.Unlock()
			if err := c.rt.Sleep(ctx, backoff); err != nil {
				return err
			}
			backoff *= 2
		default:
			return ErrFromCode(rep.Code)
		}
	}
}

// awaitOpenReply reads frames until the OPEN_REPLY arrives, handling any
// interleaved stream traffic (a replica open happens mid-stream: primary
// batches keep arriving and must be absorbed, not dropped).
func (c *Client) awaitOpenReply(ctx context.Context) (Frame, error) {
	for {
		fr, err := c.inbox.Get(ctx)
		if err != nil {
			return Frame{}, err
		}
		if fr.Op == OpOpenReply {
			return fr, nil
		}
		c.handle(ctx, fr)
	}
}

// Total returns the stream's batch budget.
func (c *Client) Total() int { return c.total }

// sideOf maps a sender endpoint to the client's remote record.
func (c *Client) sideOf(ep int) *remote {
	switch {
	case c.primary.opened && ep == c.primary.ep:
		return &c.primary
	case c.replica.opened && ep == c.replica.ep:
		return &c.replica
	}
	return nil
}

func (c *Client) otherSide(ep int) *remote {
	if ep == c.primary.ep {
		if c.replica.opened {
			return &c.replica
		}
		return nil
	}
	if c.primary.opened {
		return &c.primary
	}
	return nil
}

// topUp keeps the prefetch pipeline full: REQs to the primary until the
// window is spent or the budget issued.
func (c *Client) topUp(ctx context.Context) error {
	for c.issued < c.total && c.issued < c.next+c.primary.window && c.primary.out < c.primary.window {
		seq := c.issued
		if err := c.net.Send(ctx, c.primary.ep, Frame{Op: OpReq, From: c.ep, Stream: c.primary.stream, Seq: seq}); err != nil {
			return err
		}
		c.primary.reqOpen[seq] = true
		c.primary.out++
		c.noteOutstanding()
		c.reqAt[seq] = c.rt.Now()
		c.issued++
	}
	return nil
}

func (c *Client) noteOutstanding() {
	out := c.primary.out + c.replica.out
	c.mu.Lock()
	if out > c.maxOut {
		c.maxOut = out
	}
	c.mu.Unlock()
}

// canHedge reports whether the head-of-line sequence is eligible for a
// hedged request.
func (c *Client) canHedge() bool {
	if !c.hasReplica || c.hedgeDisabled || c.hedged[c.next] {
		return false
	}
	if _, requested := c.reqAt[c.next]; !requested {
		return false
	}
	return !c.replica.opened || c.replica.out < c.replica.window
}

// fireHedge opens the replica stream if needed and re-requests the
// head-of-line sequence there.
func (c *Client) fireHedge(ctx context.Context) {
	seq := c.next
	c.hedged[seq] = true
	if !c.replica.opened {
		if err := c.openStream(ctx, &c.replica); err != nil {
			// A replica that rejects the open (overloaded, unauthorized,
			// unpublished stream) disables hedging; the primary stream
			// carries on alone.
			c.hedgeDisabled = true
			return
		}
	}
	if c.replica.out >= c.replica.window {
		return
	}
	if err := c.net.Send(ctx, c.replica.ep, Frame{Op: OpReq, From: c.ep, Stream: c.replica.stream, Seq: seq}); err != nil {
		return
	}
	c.replica.reqOpen[seq] = true
	c.replica.out++
	c.noteOutstanding()
	c.mu.Lock()
	c.nHedges++
	c.mu.Unlock()
}

// handle applies one incoming frame to the protocol state. Same-instant
// frame reorderings commute: batches are keyed by sequence, duplicates
// are released idempotently, and END is per-server state.
func (c *Client) handle(ctx context.Context, fr Frame) {
	switch fr.Op {
	case OpBatch:
		side := c.sideOf(fr.From)
		if side != nil && side.reqOpen[fr.Seq] {
			delete(side.reqOpen, fr.Seq)
			side.out--
		}
		if fr.Seq < c.next || c.reorder[fr.Seq] != nil {
			// A hedge loser's (or cancelled-too-late) duplicate.
			fr.Batch.Release()
			c.mu.Lock()
			c.nDups++
			c.mu.Unlock()
			return
		}
		c.reorder[fr.Seq] = fr.Batch
		if c.hedged[fr.Seq] {
			// First response wins: withdraw the loser's grant. The credit
			// comes back immediately; if the loser's batch is already in
			// flight it arrives as a duplicate and is released above.
			if loser := c.otherSide(fr.From); loser != nil && loser.reqOpen[fr.Seq] {
				delete(loser.reqOpen, fr.Seq)
				loser.out--
				_ = c.net.Send(ctx, loser.ep, Frame{Op: OpCancel, From: c.ep, Stream: loser.stream, Seq: fr.Seq})
			}
			delete(c.hedged, fr.Seq)
		}
	case OpEnd:
		side := c.sideOf(fr.From)
		if side == nil {
			return
		}
		side.endSeen = true
		side.endCode = fr.Code
		if fr.Code != CodeEOF && fr.Code != CodeOK && c.err == nil {
			c.err = ErrFromCode(fr.Code)
		}
	}
}

// Recv returns the next batch in order, or io.EOF after the stream's
// budget. It keeps the prefetch window full, parks on the inbox between
// arrivals, and fires hedged requests when the head of line stalls past
// HedgeDelay. The caller owns the returned batch.
func (c *Client) Recv(ctx context.Context) (*data.Batch, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.next >= c.total {
		return nil, io.EOF
	}
	if err := c.topUp(ctx); err != nil {
		return nil, err
	}
	waitStart := c.rt.Now()
	for {
		if c.err != nil {
			return nil, c.err
		}
		if b, ok := c.reorder[c.next]; ok {
			seq := c.next
			delete(c.reorder, seq)
			delete(c.reqAt, seq)
			delete(c.hedged, seq)
			c.next++
			now := c.rt.Now()
			c.mu.Lock()
			c.delivered++
			c.waits.AddDuration(now - waitStart)
			c.steps.AddDuration(now - c.lastAt)
			c.mu.Unlock()
			c.lastAt = now
			if err := c.topUp(ctx); err != nil {
				b.Release()
				return nil, err
			}
			return b, nil
		}
		var park time.Duration // 0 = no deadline
		if c.canHedge() {
			park = c.reqAt[c.next] + c.cfg.HedgeDelay - c.rt.Now()
			if park <= 0 {
				c.fireHedge(ctx)
				continue
			}
		}
		idx, err := c.sel.Select(ctx, park, c.inbox)
		if err != nil {
			return nil, err
		}
		if idx == simtime.Heartbeat {
			c.fireHedge(ctx)
			continue
		}
		fr, ok, err := c.inbox.TryGet()
		if err != nil {
			return nil, err
		}
		if ok {
			c.handle(ctx, fr)
		}
	}
}

// Close tears the client's streams down: a CLOSE to every server not yet
// ended, then the inbox drains until each has sent its END — at which
// point all server-side state for this client is gone. Undelivered
// batches (reordered ahead, or in flight at close) are released back to
// the pool. Must run on a tracked task; idempotent.
func (c *Client) Close(ctx context.Context) error {
	for _, r := range []*remote{&c.primary, &c.replica} {
		if r.opened && !r.endSeen {
			if err := c.net.Send(ctx, r.ep, Frame{Op: OpClose, From: c.ep, Stream: r.stream}); err != nil {
				r.endSeen = true // cannot reach the server; stop waiting on it
			}
		}
	}
	for (c.primary.opened && !c.primary.endSeen) || (c.replica.opened && !c.replica.endSeen) {
		fr, err := c.inbox.Get(ctx)
		if err != nil {
			break
		}
		if fr.Op == OpBatch {
			fr.Batch.Release()
			continue
		}
		c.handle(ctx, fr)
	}
	// Release leftovers in sequence order so pool traffic is deterministic.
	seqs := make([]int, 0, len(c.reorder))
	for seq := range c.reorder {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		c.reorder[seq].Release()
		delete(c.reorder, seq)
	}
	return nil
}

// ClientStats is a snapshot of one client's stream consumption.
type ClientStats struct {
	// Delivered counts batches handed to the consumer; Total the budget.
	Delivered int
	Total     int
	// WaitP50/WaitP99 are quantiles of the per-batch Recv block time (the
	// batch-wait SLO); StepP50/StepP99 of the inter-delivery interval.
	WaitP50, WaitP99 time.Duration
	StepP50, StepP99 time.Duration
	// Hedges counts hedged requests fired; Duplicates hedge (or stale)
	// batches received twice and released; Retries overloaded OPENs
	// retried.
	Hedges     int64
	Duplicates int64
	Retries    int64
	// MaxOutstanding is the high-water of simultaneously outstanding REQs
	// across both servers — bounded by the granted windows.
	MaxOutstanding int
}

func (cs ClientStats) String() string {
	return fmt.Sprintf("delivered %d/%d, wait p99 %v, hedges %d, dups %d",
		cs.Delivered, cs.Total, cs.WaitP99, cs.Hedges, cs.Duplicates)
}

// Stats returns a live snapshot; safe from any goroutine.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ClientStats{
		Delivered:      c.delivered,
		Total:          c.total,
		Hedges:         c.nHedges,
		Duplicates:     c.nDups,
		Retries:        c.nRetry,
		MaxOutstanding: c.maxOut,
	}
	if c.waits != nil {
		st.WaitP50 = c.waits.QuantileDuration(0.50)
		st.WaitP99 = c.waits.QuantileDuration(0.99)
	}
	if c.steps != nil {
		st.StepP50 = c.steps.QuantileDuration(0.50)
		st.StepP99 = c.steps.QuantileDuration(0.99)
	}
	return st
}
