package service

import (
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/simtime"
)

// fakeStream is an in-order batch source with a fixed per-batch production
// cost in virtual time.
type fakeStream struct {
	rt        simtime.Runtime
	pool      *data.Pool
	total     int
	batchSize int
	cost      time.Duration
	made      int
	closed    bool
}

func (f *fakeStream) Next(ctx context.Context) (*data.Batch, error) {
	if f.made >= f.total {
		return nil, io.EOF
	}
	if f.cost > 0 {
		if err := f.rt.Sleep(ctx, f.cost); err != nil {
			return nil, err
		}
	}
	b := f.pool.GetBatch(f.batchSize)
	for i := 0; i < f.batchSize; i++ {
		s := f.pool.Get()
		s.Index = f.made*f.batchSize + i
		s.RawBytes, s.Bytes = 1<<20, 1<<20
		b.Samples = append(b.Samples, s)
	}
	f.made++
	return b, nil
}

func (f *fakeStream) Total() int { return f.total }
func (f *fakeStream) Close()     { f.closed = true }

// fakeOpener publishes a single stream name ("train") backed by fakeStreams.
type fakeOpener struct {
	rt        simtime.Runtime
	pool      *data.Pool
	total     int
	batchSize int
	cost      time.Duration

	mu      sync.Mutex
	streams []*fakeStream
}

func (o *fakeOpener) OpenStream(spec StreamSpec, weight float64) (Stream, error) {
	if spec.Name != "train" {
		return nil, ErrUnknownStream
	}
	st := &fakeStream{rt: o.rt, pool: o.pool, total: o.total, batchSize: o.batchSize, cost: o.cost}
	o.mu.Lock()
	o.streams = append(o.streams, st)
	o.mu.Unlock()
	return st, nil
}

type testRig struct {
	v    *simtime.Virtual
	net  *Net
	pool *data.Pool
}

func newRig(t *testing.T, cfg Config) *testRig {
	t.Helper()
	v := simtime.NewVirtual()
	return &testRig{v: v, net: NewNet(v, cfg), pool: data.NewPool()}
}

// startServer allocates an endpoint, registers it with the fleet, and
// starts a server on it.
func (r *testRig) startServer(t *testing.T, scfg ServerConfig, op Opener) *Server {
	t.Helper()
	ep, err := r.net.AllocEndpoint()
	if err != nil {
		t.Fatalf("AllocEndpoint: %v", err)
	}
	r.net.RegisterServer(ep)
	srv := NewServer(r.net, ep, scfg, op)
	srv.Start()
	return srv
}

func (r *testRig) poolBalanced(t *testing.T) {
	t.Helper()
	ps := r.pool.Stats()
	if ps.Gets != ps.Puts {
		t.Fatalf("pool leak: gets=%d puts=%d", ps.Gets, ps.Puts)
	}
}

// consume drains a client's full stream, releasing every batch, and closes
// it. Must run on a tracked task.
func consume(ctx context.Context, t *testing.T, c *Client, perBatch time.Duration) int {
	t.Helper()
	n := 0
	for {
		b, err := c.Recv(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Errorf("Recv: %v", err)
			break
		}
		b.Release()
		n++
		if perBatch > 0 {
			_ = c.net.rt.Sleep(ctx, perBatch)
		}
	}
	if err := c.Close(ctx); err != nil {
		t.Errorf("Close: %v", err)
	}
	return n
}

func TestServeDeliveryInOrder(t *testing.T) {
	r := newRig(t, Config{Endpoints: 4})
	op := &fakeOpener{rt: r.v, pool: r.pool, total: 12, batchSize: 4, cost: time.Millisecond}
	srv := r.startServer(t, ServerConfig{}, op)

	r.v.Run(func() {
		ctx := context.Background()
		c, err := Open(ctx, r.net, srv.Endpoint(), -1, StreamSpec{Name: "train"}, ClientConfig{Window: 4})
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if c.Total() != 12 {
			t.Errorf("Total = %d, want 12", c.Total())
		}
		if got := consume(ctx, t, c, 0); got != 12 {
			t.Errorf("delivered %d batches, want 12", got)
		}
		st := c.Stats()
		if st.Delivered != 12 || st.Hedges != 0 || st.Duplicates != 0 {
			t.Errorf("client stats = %+v", st)
		}
		if st.MaxOutstanding > 4 {
			t.Errorf("MaxOutstanding = %d exceeds window 4", st.MaxOutstanding)
		}
	})
	if err := srv.Close(); err != nil {
		t.Fatalf("server Close: %v", err)
	}
	r.poolBalanced(t)
	if op.streams[0].closed != true {
		t.Fatalf("backend stream not closed")
	}
	ss := srv.Stats()
	if ss.BatchesSent != 12 || ss.StreamsTotal != 1 || ss.StreamsActive != 0 {
		t.Fatalf("server stats = %+v", ss)
	}
}

func TestAdmissionRejections(t *testing.T) {
	r := newRig(t, Config{Endpoints: 8})
	op := &fakeOpener{rt: r.v, pool: r.pool, total: 4, batchSize: 2, cost: time.Millisecond}
	srv := r.startServer(t, ServerConfig{
		Tokens:     map[string]TokenQuota{"alice": {MaxStreams: 1}, "bob": {}},
		MaxStreams: 2,
	}, op)

	r.v.Run(func() {
		ctx := context.Background()
		if _, err := Open(ctx, r.net, srv.Endpoint(), -1,
			FrameSpec("train", "mallory"), ClientConfig{}); !errors.Is(err, ErrUnauthorized) {
			t.Errorf("bad token: err = %v, want ErrUnauthorized", err)
		}
		// Before the capacity slots fill: unknown names come from the opener.
		if _, err := Open(ctx, r.net, srv.Endpoint(), -1,
			FrameSpec("nosuch", "bob"), ClientConfig{}); !errors.Is(err, ErrUnknownStream) {
			t.Errorf("unknown stream: err = %v, want ErrUnknownStream", err)
		}
		alice, err := Open(ctx, r.net, srv.Endpoint(), -1, FrameSpec("train", "alice"), ClientConfig{})
		if err != nil {
			t.Errorf("alice open: %v", err)
			return
		}
		if _, err := Open(ctx, r.net, srv.Endpoint(), -1,
			FrameSpec("train", "alice"), ClientConfig{}); !errors.Is(err, ErrQuotaExceeded) {
			t.Errorf("quota: err = %v, want ErrQuotaExceeded", err)
		}
		bob, err := Open(ctx, r.net, srv.Endpoint(), -1, FrameSpec("train", "bob"), ClientConfig{})
		if err != nil {
			t.Errorf("bob open: %v", err)
			return
		}
		// Server-wide MaxStreams = 2, both slots held.
		if _, err := Open(ctx, r.net, srv.Endpoint(), -1,
			FrameSpec("train", "bob"), ClientConfig{}); !errors.Is(err, ErrServerOverloaded) {
			t.Errorf("capacity: err = %v, want ErrServerOverloaded", err)
		}
		consume(ctx, t, alice, 0)
		consume(ctx, t, bob, 0)
	})
	if err := srv.Close(); err != nil {
		t.Fatalf("server Close: %v", err)
	}
	ss := srv.Stats()
	if ss.RejectedUnauthorized != 1 || ss.RejectedQuota != 1 || ss.RejectedOverloaded != 1 || ss.RejectedUnknown != 1 {
		t.Fatalf("rejection counters = %+v", ss)
	}
	r.poolBalanced(t)
}

// FrameSpec is a test shorthand.
func FrameSpec(name, token string) StreamSpec { return StreamSpec{Name: name, Token: token} }

func TestOverloadRetryBackoff(t *testing.T) {
	r := newRig(t, Config{Endpoints: 8})
	op := &fakeOpener{rt: r.v, pool: r.pool, total: 2, batchSize: 2, cost: time.Millisecond}
	srv := r.startServer(t, ServerConfig{MaxStreams: 1}, op)

	r.v.Run(func() {
		ctx := context.Background()
		holder, err := Open(ctx, r.net, srv.Endpoint(), -1, StreamSpec{Name: "train"}, ClientConfig{})
		if err != nil {
			t.Errorf("holder open: %v", err)
			return
		}
		// No retries: immediate typed failure.
		if _, err := Open(ctx, r.net, srv.Endpoint(), -1, StreamSpec{Name: "train"},
			ClientConfig{Retries: 0}); !errors.Is(err, ErrServerOverloaded) {
			t.Errorf("no-retry open: err = %v, want ErrServerOverloaded", err)
		}
		// Two retries with 10ms base backoff: fails after >= 10+20ms of
		// virtual backoff while the slot stays held.
		before := r.v.Now()
		c, err := Open(ctx, r.net, srv.Endpoint(), -1, StreamSpec{Name: "train"},
			ClientConfig{Retries: 2, Backoff: 10 * time.Millisecond})
		if !errors.Is(err, ErrServerOverloaded) {
			t.Errorf("retry open: err = %v, want ErrServerOverloaded", err)
		}
		if waited := r.v.Now() - before; waited < 30*time.Millisecond {
			t.Errorf("retries waited %v of virtual time, want >= 30ms", waited)
		}
		_ = c
		consume(ctx, t, holder, 0)
		// Slot free again: open succeeds.
		c2, err := Open(ctx, r.net, srv.Endpoint(), -1, StreamSpec{Name: "train"}, ClientConfig{})
		if err != nil {
			t.Errorf("post-release open: %v", err)
			return
		}
		if got := consume(ctx, t, c2, 0); got != 2 {
			t.Errorf("post-release delivered %d, want 2", got)
		}
	})
	if err := srv.Close(); err != nil {
		t.Fatalf("server Close: %v", err)
	}
	r.poolBalanced(t)
}

// TestWindowViolationKill drives raw frames past the granted send window
// and expects the server to kill the stream with CodeOverloaded.
func TestWindowViolationKill(t *testing.T) {
	r := newRig(t, Config{Endpoints: 4})
	op := &fakeOpener{rt: r.v, pool: r.pool, total: 16, batchSize: 2, cost: 10 * time.Millisecond}
	srv := r.startServer(t, ServerConfig{SendWindow: 2}, op)

	r.v.Run(func() {
		ctx := context.Background()
		ep, err := r.net.AllocEndpoint()
		if err != nil {
			t.Errorf("AllocEndpoint: %v", err)
			return
		}
		inbox := r.net.Inbox(ep)
		if err := r.net.Send(ctx, srv.Endpoint(), Frame{Op: OpOpen, From: ep, Spec: StreamSpec{Name: "train"}}); err != nil {
			t.Errorf("open send: %v", err)
			return
		}
		rep, err := inbox.Get(ctx)
		if err != nil || rep.Code != CodeOK {
			t.Errorf("open reply = %+v, %v", rep, err)
			return
		}
		if rep.Window != 2 {
			t.Errorf("granted window = %d, want 2", rep.Window)
		}
		// The pump needs 10ms per batch; three quick REQs exceed pending=2.
		for seq := 0; seq < 3; seq++ {
			if err := r.net.Send(ctx, srv.Endpoint(), Frame{Op: OpReq, From: ep, Stream: rep.Stream, Seq: seq}); err != nil {
				t.Errorf("req %d: %v", seq, err)
				return
			}
		}
		for {
			fr, err := inbox.Get(ctx)
			if err != nil {
				t.Errorf("inbox: %v", err)
				return
			}
			if fr.Op == OpBatch {
				fr.Batch.Release()
				continue
			}
			if fr.Op == OpEnd {
				if fr.Code != CodeOverloaded {
					t.Errorf("END code = %d, want CodeOverloaded", fr.Code)
				}
				return
			}
		}
	})
	if err := srv.Close(); err != nil {
		t.Fatalf("server Close: %v", err)
	}
	r.poolBalanced(t)
	if ss := srv.Stats(); ss.StreamsActive != 0 || ss.MaxPending > 2 {
		t.Fatalf("server stats after kill = %+v", ss)
	}
}

func TestReqUnknownStream(t *testing.T) {
	r := newRig(t, Config{Endpoints: 4})
	op := &fakeOpener{rt: r.v, pool: r.pool, total: 1, batchSize: 1, cost: 0}
	srv := r.startServer(t, ServerConfig{}, op)

	r.v.Run(func() {
		ctx := context.Background()
		ep, _ := r.net.AllocEndpoint()
		if err := r.net.Send(ctx, srv.Endpoint(), Frame{Op: OpReq, From: ep, Stream: 424242, Seq: 0}); err != nil {
			t.Errorf("req send: %v", err)
			return
		}
		fr, err := r.net.Inbox(ep).Get(ctx)
		if err != nil || fr.Op != OpEnd || fr.Code != CodeUnknownStream {
			t.Errorf("reply = %+v, %v; want END CodeUnknownStream", fr, err)
		}
	})
	if err := srv.Close(); err != nil {
		t.Fatalf("server Close: %v", err)
	}
}

// hedgeScenario runs one degraded-primary + fast-replica client and
// returns its stats plus a determinism fingerprint.
type hedgeResult struct {
	delivered int
	hedges    int64
	dups      int64
	waitP99   time.Duration
	now       time.Duration
	bytes     int64
	flows     int64
}

func runHedgeScenario(t *testing.T, hedge time.Duration) hedgeResult {
	t.Helper()
	r := newRig(t, Config{Endpoints: 8})
	slow := &fakeOpener{rt: r.v, pool: r.pool, total: 8, batchSize: 2, cost: 40 * time.Millisecond}
	fast := &fakeOpener{rt: r.v, pool: r.pool, total: 8, batchSize: 2, cost: time.Millisecond}
	primary := r.startServer(t, ServerConfig{}, slow)
	replica := r.startServer(t, ServerConfig{}, fast)

	var res hedgeResult
	r.v.Run(func() {
		ctx := context.Background()
		c, err := Open(ctx, r.net, primary.Endpoint(), replica.Endpoint(), StreamSpec{Name: "train"},
			ClientConfig{Window: 2, HedgeDelay: hedge})
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		res.delivered = consume(ctx, t, c, 0)
		st := c.Stats()
		res.hedges, res.dups, res.waitP99 = st.Hedges, st.Duplicates, st.WaitP99
	})
	if err := primary.Close(); err != nil {
		t.Fatalf("primary Close: %v", err)
	}
	if err := replica.Close(); err != nil {
		t.Fatalf("replica Close: %v", err)
	}
	r.poolBalanced(t)
	res.now = r.v.Now()
	res.bytes = r.net.BytesMoved()
	res.flows = r.net.FlowsCompleted()
	return res
}

func TestHedgeOneWinnerNoLeak(t *testing.T) {
	res := runHedgeScenario(t, 5*time.Millisecond)
	if res.delivered != 8 {
		t.Fatalf("delivered %d, want 8", res.delivered)
	}
	if res.hedges == 0 {
		t.Fatalf("expected hedged requests against the degraded primary, got none")
	}
}

func TestHedgeReducesTailLatency(t *testing.T) {
	hedged := runHedgeScenario(t, 5*time.Millisecond)
	unhedged := runHedgeScenario(t, 0)
	if unhedged.hedges != 0 {
		t.Fatalf("unhedged run fired %d hedges", unhedged.hedges)
	}
	if hedged.waitP99 >= unhedged.waitP99 {
		t.Fatalf("hedged p99 %v not below unhedged p99 %v", hedged.waitP99, unhedged.waitP99)
	}
}

func TestHedgeDeterministic(t *testing.T) {
	a := runHedgeScenario(t, 5*time.Millisecond)
	b := runHedgeScenario(t, 5*time.Millisecond)
	if a != b {
		t.Fatalf("hedge scenario not bit-identical:\n  run1 = %+v\n  run2 = %+v", a, b)
	}
}

func TestBackpressureBoundedWindow(t *testing.T) {
	r := newRig(t, Config{Endpoints: 4})
	op := &fakeOpener{rt: r.v, pool: r.pool, total: 10, batchSize: 2, cost: time.Millisecond}
	srv := r.startServer(t, ServerConfig{SendWindow: 3}, op)

	r.v.Run(func() {
		ctx := context.Background()
		// The client asks for a deep window; the server grants only 3. A
		// slow consumer makes the producer run ahead as far as it is allowed.
		c, err := Open(ctx, r.net, srv.Endpoint(), -1, StreamSpec{Name: "train"}, ClientConfig{Window: 8})
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if got := consume(ctx, t, c, 5*time.Millisecond); got != 10 {
			t.Errorf("delivered %d, want 10", got)
		}
		if st := c.Stats(); st.MaxOutstanding > 3 {
			t.Errorf("MaxOutstanding = %d exceeds granted window 3", st.MaxOutstanding)
		}
	})
	if err := srv.Close(); err != nil {
		t.Fatalf("server Close: %v", err)
	}
	if ss := srv.Stats(); ss.MaxPending > 3 {
		t.Fatalf("server MaxPending = %d exceeds send window 3", ss.MaxPending)
	}
	r.poolBalanced(t)
}

// TestConcurrentClientsHammer runs many clients against one server in one
// kernel — the -race exercise for dispatch/pump/client interleavings.
func TestConcurrentClientsHammer(t *testing.T) {
	const clients = 8
	r := newRig(t, Config{Endpoints: clients + 2})
	op := &fakeOpener{rt: r.v, pool: r.pool, total: 6, batchSize: 2, cost: 2 * time.Millisecond}
	srv := r.startServer(t, ServerConfig{SendWindow: 4}, op)

	delivered := make([]int, clients)
	r.v.Run(func() {
		ctx := context.Background()
		wg := simtime.NewWaitGroup(r.v)
		for i := 0; i < clients; i++ {
			i := i
			wg.Go("hammer-client", func() {
				c, err := Open(ctx, r.net, srv.Endpoint(), -1, StreamSpec{Name: "train"}, ClientConfig{Window: 3})
				if err != nil {
					t.Errorf("client %d open: %v", i, err)
					return
				}
				delivered[i] = consume(ctx, t, c, time.Duration(i)*time.Millisecond)
			})
		}
		if err := wg.Wait(ctx); err != nil {
			t.Errorf("wait: %v", err)
		}
	})
	if err := srv.Close(); err != nil {
		t.Fatalf("server Close: %v", err)
	}
	for i, n := range delivered {
		if n != 6 {
			t.Fatalf("client %d delivered %d, want 6", i, n)
		}
	}
	if ss := srv.Stats(); ss.StreamsTotal != clients || ss.BatchesSent != clients*6 {
		t.Fatalf("server stats = %+v", ss)
	}
	r.poolBalanced(t)
}
