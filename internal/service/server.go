package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/queue"
	"github.com/minatoloader/minato/internal/simtime"
)

// Opener is the server's backend: it turns an accepted OPEN into a batch
// stream. The root package adapts a multi-tenant Cluster into an Opener —
// admission control, fair-share weights, and the materialized cache all
// live behind this seam. OpenStream returns the typed errors of this
// package (wrapped is fine) to select the rejection code sent on the
// wire; any other error maps to CodeError.
type Opener interface {
	OpenStream(spec StreamSpec, weight float64) (Stream, error)
}

// Stream is one opened batch source: Next produces batches in order
// (io.EOF after Total), Close tears the backend down. A stream is driven
// by exactly one server pump task.
type Stream interface {
	Next(ctx context.Context) (*data.Batch, error)
	Total() int
	Close()
}

// TokenQuota is one auth token's entitlement.
type TokenQuota struct {
	// MaxStreams caps the token's concurrent streams (0 = unlimited).
	MaxStreams int
	// Weight is the fair-share priority the token's streams carry into the
	// cluster's worker arbitration (0 = 1).
	Weight float64
}

// ServerConfig shapes a server's multi-tenant front end.
type ServerConfig struct {
	// Tokens is the auth table: nil means an open server (any token,
	// including empty, is accepted at weight 1); non-nil rejects unknown
	// tokens with CodeUnauthorized and enforces per-token quotas with
	// CodeQuotaExceeded.
	Tokens map[string]TokenQuota
	// SendWindow bounds batches granted-but-undelivered per stream; a
	// client REQ beyond it is a protocol violation and kills the stream
	// with CodeOverloaded. Default 8.
	SendWindow int
	// MaxStreams caps concurrent streams server-wide; beyond it OPENs are
	// rejected with CodeOverloaded (clients retry with backoff).
	// 0 = unlimited.
	MaxStreams int
}

// Server is one preprocessing server: a dispatch task draining its
// endpoint's inbox, plus one pump task per open stream.
type Server struct {
	net    *Net
	rt     simtime.Runtime
	ep     int
	cfg    ServerConfig
	opener Opener
	wg     *simtime.WaitGroup
	inbox  *queue.Queue[Frame]

	mu        sync.Mutex
	closed    bool
	streams   map[uint64]*srvStream
	opens     map[int]uint64 // per-client stream counter (id allocation)
	tokenLoad map[string]int
	maxPend   int // high-water of any retired stream's pending count

	streamsTotal  atomic.Int64
	rejAuth       atomic.Int64
	rejQuota      atomic.Int64
	rejOverload   atomic.Int64
	rejUnknown    atomic.Int64
	batchesSent   atomic.Int64
	bytesSent     atomic.Int64
	cancelsHonour atomic.Int64
	fastForwards  atomic.Int64
}

// srvStream is the server half of one open stream.
type srvStream struct {
	id     uint64
	client int
	token  string
	src    Stream
	grants *queue.Queue[int]
	window int

	mu sync.Mutex
	// granted holds sequences the client has requested and not yet been
	// answered for (by a batch, a cancel, or teardown). Its size is the
	// stream's live window debt: a REQ arriving while len(granted) is at
	// the window is a protocol violation. A CANCEL removes its sequence
	// immediately — mirroring the client, which restores its send credit
	// the moment it cancels the hedge loser — even though the grant stays
	// queued until the pump drains and skips it.
	granted   map[int]bool
	maxPend   int
	cancelled map[int]bool
	closing   bool
	killCode  Code

	produced int // pump-owned: next sequence the source will yield
}

// NewServer attaches a server to endpoint ep of n (the endpoint must have
// been allocated by n.AllocEndpoint).
func NewServer(n *Net, ep int, cfg ServerConfig, opener Opener) *Server {
	if cfg.SendWindow <= 0 {
		cfg.SendWindow = 8
	}
	return &Server{
		net:       n,
		rt:        n.Runtime(),
		ep:        ep,
		cfg:       cfg,
		opener:    opener,
		wg:        simtime.NewWaitGroup(n.Runtime()),
		inbox:     n.Inbox(ep),
		streams:   make(map[uint64]*srvStream),
		opens:     make(map[int]uint64),
		tokenLoad: make(map[string]int),
	}
}

// Start launches the dispatch task. Server tasks are kernel daemons: they
// park indefinitely waiting for client frames without counting as
// deadlocked once every client task has exited.
func (s *Server) Start() {
	s.goDaemon(fmt.Sprintf("svc-server-%d", s.ep), s.dispatch)
}

func (s *Server) goDaemon(name string, fn func()) {
	s.wg.Add(1)
	simtime.GoDaemon(s.rt, name, func() {
		defer s.wg.Done()
		fn()
	})
}

// Endpoint returns the server's fabric endpoint.
func (s *Server) Endpoint() int { return s.ep }

// dispatch drains the inbox, serializing control-plane work (opens,
// grants, cancels, closes). Reply sends block the dispatch task for their
// transfer time — the modeled cost of the server's control plane.
func (s *Server) dispatch() {
	ctx := context.Background()
	for {
		fr, err := s.inbox.Get(ctx)
		if err != nil {
			return // inbox closed: server shut down
		}
		if s.isClosed() {
			continue // drain silently during shutdown
		}
		switch fr.Op {
		case OpOpen:
			s.handleOpen(ctx, fr)
		case OpReq:
			s.handleReq(ctx, fr)
		case OpCancel:
			s.handleCancel(fr)
		case OpClose:
			s.handleClose(fr)
		}
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) reply(ctx context.Context, to int, fr Frame) {
	fr.Op, fr.From = OpOpenReply, s.ep
	_ = s.net.Send(ctx, to, fr)
}

// handleOpen runs the admission path: auth token → token quota →
// server-wide capacity → backend open.
func (s *Server) handleOpen(ctx context.Context, fr Frame) {
	spec := fr.Spec
	weight := 1.0
	if s.cfg.Tokens != nil {
		q, ok := s.cfg.Tokens[spec.Token]
		if !ok {
			s.rejAuth.Add(1)
			s.reply(ctx, fr.From, Frame{Code: CodeUnauthorized})
			return
		}
		if q.Weight > 0 {
			weight = q.Weight
		}
		if q.MaxStreams > 0 {
			s.mu.Lock()
			over := s.tokenLoad[spec.Token] >= q.MaxStreams
			s.mu.Unlock()
			if over {
				s.rejQuota.Add(1)
				s.reply(ctx, fr.From, Frame{Code: CodeQuotaExceeded})
				return
			}
		}
	}
	if s.cfg.MaxStreams > 0 {
		s.mu.Lock()
		over := len(s.streams) >= s.cfg.MaxStreams
		s.mu.Unlock()
		if over {
			s.rejOverload.Add(1)
			s.reply(ctx, fr.From, Frame{Code: CodeOverloaded})
			return
		}
	}

	src, err := s.opener.OpenStream(spec, weight)
	if err != nil {
		code := CodeError
		switch {
		case errors.Is(err, ErrUnknownStream):
			s.rejUnknown.Add(1)
			code = CodeUnknownStream
		case errors.Is(err, ErrServerOverloaded):
			s.rejOverload.Add(1)
			code = CodeOverloaded
		case errors.Is(err, ErrQuotaExceeded):
			s.rejQuota.Add(1)
			code = CodeQuotaExceeded
		case errors.Is(err, ErrUnauthorized):
			s.rejAuth.Add(1)
			code = CodeUnauthorized
		}
		s.reply(ctx, fr.From, Frame{Code: code})
		return
	}

	window := s.cfg.SendWindow
	if spec.Window > 0 && spec.Window < window {
		window = spec.Window
	}
	// The grant queue must absorb every sequence the stream can ever carry:
	// cancelled grants stay queued until the pump drains them, so live
	// window debt (≤ window) plus cancelled residue can exceed the window —
	// and a blocking Put here would stall the dispatch task for every
	// client.
	depth := window + src.Total()
	if depth < 1 {
		depth = 1
	}
	s.mu.Lock()
	s.opens[fr.From]++
	id := uint64(fr.From)<<16 | (s.opens[fr.From] & 0xffff)
	st := &srvStream{
		id:        id,
		client:    fr.From,
		token:     spec.Token,
		src:       src,
		grants:    queue.New[int](s.rt, fmt.Sprintf("svc-grants-%d-%d", s.ep, id), depth),
		window:    window,
		granted:   make(map[int]bool),
		cancelled: make(map[int]bool),
	}
	s.streams[id] = st
	s.tokenLoad[spec.Token]++
	s.mu.Unlock()
	s.streamsTotal.Add(1)

	s.reply(ctx, fr.From, Frame{Stream: id, Code: CodeOK, Window: window, Total: src.Total()})
	s.goDaemon(fmt.Sprintf("svc-pump-%d-%d", s.ep, id), func() { s.pump(st) })
}

func (s *Server) lookup(id uint64) *srvStream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[id]
}

// handleReq grants one batch request, enforcing the send window: a REQ
// that would exceed it is a protocol violation and kills the stream.
func (s *Server) handleReq(ctx context.Context, fr Frame) {
	st := s.lookup(fr.Stream)
	if st == nil {
		_ = s.net.Send(ctx, fr.From, Frame{Op: OpEnd, From: s.ep, Stream: fr.Stream, Code: CodeUnknownStream})
		return
	}
	st.mu.Lock()
	if st.closing {
		st.mu.Unlock()
		return
	}
	if len(st.granted) >= st.window {
		st.closing = true
		st.killCode = CodeOverloaded
		st.mu.Unlock()
		st.grants.Close()
		return
	}
	st.granted[fr.Seq] = true
	if len(st.granted) > st.maxPend {
		st.maxPend = len(st.granted)
	}
	st.mu.Unlock()
	// Capacity covers the whole stream, so this never blocks.
	_ = st.grants.Put(ctx, fr.Seq)
}

// handleCancel withdraws a grant: the sequence leaves the window debt
// immediately (the client has already restored its credit) and the pump
// skips it when the queue drains. If the pump already answered the
// sequence the cancel is a no-op — the batch is in flight and the client
// releases the duplicate.
func (s *Server) handleCancel(fr Frame) {
	st := s.lookup(fr.Stream)
	if st == nil {
		return
	}
	st.mu.Lock()
	if st.granted[fr.Seq] {
		delete(st.granted, fr.Seq)
		st.cancelled[fr.Seq] = true
	}
	st.mu.Unlock()
}

// handleClose starts stream teardown; the pump drains and sends the END.
func (s *Server) handleClose(fr Frame) {
	st := s.lookup(fr.Stream)
	if st == nil {
		return // already ended (e.g. EOF raced the close) — END was sent
	}
	st.mu.Lock()
	st.closing = true
	st.mu.Unlock()
	st.grants.Close()
}

// release settles a sequence's window debt after the pump answers it (or
// abandons it). A cancel that raced mid-production already settled it; the
// double delete is a no-op.
func (st *srvStream) release(seq int) {
	st.mu.Lock()
	delete(st.granted, seq)
	delete(st.cancelled, seq)
	st.mu.Unlock()
}

// pump serves one stream: take a grant, produce the batch (fast-forwarding
// the in-order source past hedge-cancelled sequences), send it. On exit it
// tears the backend stream down, deregisters, and only then sends the
// stream's single END frame — a client that has seen END knows every
// server-side resource of the stream is gone.
func (s *Server) pump(st *srvStream) {
	ctx := context.Background()
	code := CodeEOF
	for {
		seq, err := st.grants.Get(ctx)
		if err != nil {
			st.mu.Lock()
			if st.killCode != 0 {
				code = st.killCode
			} else {
				code = CodeOK // acknowledged close
			}
			st.mu.Unlock()
			break
		}
		st.mu.Lock()
		if st.closing {
			// Drained after close: the grant is abandoned.
			delete(st.granted, seq)
			st.mu.Unlock()
			continue
		}
		if st.cancelled[seq] {
			// The cancel already settled the window debt.
			delete(st.cancelled, seq)
			st.mu.Unlock()
			s.cancelsHonour.Add(1)
			continue
		}
		stale := seq < st.produced
		st.mu.Unlock()
		if stale {
			st.release(seq)
			continue
		}
		var b *data.Batch
		var perr error
		for st.produced <= seq {
			nb, err := st.src.Next(ctx)
			if err != nil {
				perr = err
				break
			}
			if st.produced < seq {
				// A hedge loser's sequence: the in-order source must still
				// advance past it, but nobody wants the batch.
				nb.Release()
				s.fastForwards.Add(1)
			} else {
				b = nb
			}
			st.produced++
		}
		if perr != nil {
			st.release(seq)
			if errors.Is(perr, io.EOF) {
				code = CodeEOF
			} else {
				code = CodeError
			}
			break
		}
		payload := BatchWireBytes(b)
		fr := Frame{Op: OpBatch, From: s.ep, Stream: st.id, Seq: seq, Batch: b, Bytes: payload}
		if err := s.net.Send(ctx, st.client, fr); err != nil {
			b.Release()
			st.release(seq)
			code = CodeError
			break
		}
		s.batchesSent.Add(1)
		s.bytesSent.Add(payload + frameHeaderBytes)
		st.release(seq)
	}

	st.src.Close()
	s.deregister(st)
	_ = s.net.Send(ctx, st.client, Frame{Op: OpEnd, From: s.ep, Stream: st.id, Seq: st.produced, Code: code})
}

func (s *Server) deregister(st *srvStream) {
	st.grants.Close()
	s.mu.Lock()
	delete(s.streams, st.id)
	s.tokenLoad[st.token]--
	st.mu.Lock()
	if st.maxPend > s.maxPend {
		s.maxPend = st.maxPend
	}
	st.mu.Unlock()
	s.mu.Unlock()
}

// Close shuts the server down: the inbox closes (dispatch exits after
// draining), every live stream is torn down (pumps send their ENDs), and
// Close blocks until all server tasks finish. Clients should close first —
// a final END to a client that never drains its inbox can park a pump
// until the inbox has space.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	streams := make([]*srvStream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.mu.Unlock()
	for _, st := range streams {
		st.mu.Lock()
		st.closing = true
		st.mu.Unlock()
		st.grants.Close()
	}
	s.inbox.Close()
	return s.wg.Wait(context.Background())
}

// Stats is a snapshot of the server's front end.
type Stats struct {
	// StreamsTotal counts accepted streams over the server's lifetime;
	// StreamsActive the currently open ones.
	StreamsTotal  int64
	StreamsActive int
	// The rejection counters, by typed cause.
	RejectedUnauthorized int64
	RejectedQuota        int64
	RejectedOverloaded   int64
	RejectedUnknown      int64
	// BatchesSent and BytesSent count deliveries (bytes include frame
	// overhead).
	BatchesSent int64
	BytesSent   int64
	// MaxPending is the high-water of any stream's granted-but-undelivered
	// count — never above the configured send window.
	MaxPending int
	// CancelsHonored counts hedge cancellations that withdrew a grant
	// before its batch was produced; FastForwards counts batches produced
	// and discarded to advance an in-order source past a lost sequence.
	CancelsHonored int64
	FastForwards   int64
}

// Stats returns a live snapshot; safe from any goroutine.
func (s *Server) Stats() Stats {
	st := Stats{
		StreamsTotal:         s.streamsTotal.Load(),
		RejectedUnauthorized: s.rejAuth.Load(),
		RejectedQuota:        s.rejQuota.Load(),
		RejectedOverloaded:   s.rejOverload.Load(),
		RejectedUnknown:      s.rejUnknown.Load(),
		BatchesSent:          s.batchesSent.Load(),
		BytesSent:            s.bytesSent.Load(),
		CancelsHonored:       s.cancelsHonour.Load(),
		FastForwards:         s.fastForwards.Load(),
	}
	s.mu.Lock()
	st.StreamsActive = len(s.streams)
	st.MaxPending = s.maxPend
	for _, live := range s.streams {
		live.mu.Lock()
		if live.maxPend > st.MaxPending {
			st.MaxPending = live.maxPend
		}
		live.mu.Unlock()
	}
	s.mu.Unlock()
	return st
}
