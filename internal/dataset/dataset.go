// Package dataset provides synthetic datasets standing in for the paper's
// evaluation data (§2.2): KiTS19 (3D medical volumes, 29 GB), COCO (2D
// images, 58 GB) and LibriSpeech (audio, 228 GB).
//
// Every per-sample property is a pure function of (seed, index) via
// package dist, so datasets need no memory proportional to their size and
// draws are reproducible. Size distributions are calibrated to the ranges
// and averages the paper reports; hidden complexity features reproduce the
// observed cost variability (Table 2) through the transform cost models.
package dataset

import (
	"fmt"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/dist"
)

// Dataset enumerates samples. Implementations are immutable and safe for
// concurrent use.
type Dataset interface {
	// Name identifies the dataset in reports.
	Name() string
	// Len returns the number of samples.
	Len() int
	// Sample materializes a fresh Sample instance for index i in the given
	// epoch. Each call returns a new mutable value.
	Sample(epoch, i int) *data.Sample
}

// Filler is optionally implemented by datasets that can materialize a
// sample into caller-provided storage — the allocation-free path pooled
// loaders use. FillSample must set every field it would set on a fresh
// Sample; the destination arrives zeroed.
type Filler interface {
	FillSample(epoch, i int, s *data.Sample)
}

// Fill materializes sample (epoch, i) of d into s, using the dataset's
// in-place path when available and falling back to copying a freshly
// allocated sample otherwise. s's pool identity is preserved either way.
func Fill(d Dataset, epoch, i int, s *data.Sample) {
	if f, ok := d.(Filler); ok {
		f.FillSample(epoch, i, s)
		return
	}
	s.CopyFrom(d.Sample(epoch, i))
}

// Streams used for per-index draws; each dataset also mixes in its own seed.
const (
	streamSize = iota + 1
	streamComplexity
	streamAugment
)

// Synthetic is a dataset whose sample sizes come from a clamped
// distribution.
type Synthetic struct {
	name      string
	pairSpace string // paired-modality key namespace; "" = unpaired
	seed      uint64
	n         int
	sizeFn    func(seed uint64, i int) int64
	heavyFn   func(seed uint64, i int) bool
}

// Name implements Dataset.
func (d *Synthetic) Name() string { return d.name }

// Len implements Dataset.
func (d *Synthetic) Len() int { return d.n }

// Sample implements Dataset.
func (d *Synthetic) Sample(epoch, i int) *data.Sample {
	s := &data.Sample{}
	d.FillSample(epoch, i, s)
	return s
}

// FillSample implements Filler: all per-sample properties are pure draws,
// so materialization writes straight into s with no allocation.
func (d *Synthetic) FillSample(epoch, i int, s *data.Sample) {
	if i < 0 || i >= d.n {
		panic(fmt.Sprintf("dataset %s: index %d out of range [0,%d)", d.name, i, d.n))
	}
	raw := d.sizeFn(d.seed, i)
	s.Index = i
	s.Epoch = epoch
	s.Key = data.Key{Space: d.name, Index: int64(i)}
	s.RawBytes, s.Bytes = raw, raw
	s.Features = data.Features{
		Complexity:  dist.Uniform(d.seed, streamComplexity, uint64(i)),
		AugmentDraw: dist.Uniform(d.seed, streamAugment, uint64(i)),
	}
	if d.heavyFn != nil {
		s.Features.Heavy = d.heavyFn(d.seed, i)
	}
	if d.pairSpace != "" {
		s.Pair = data.Key{Space: d.pairSpace, Index: int64(i)}
	}
}

const (
	// KiB/MiB sizes for readability.
	kib = int64(1) << 10
	mib = int64(1) << 20
)

// NewKiTS19 models the KiTS19 kidney-tumor CT dataset: 210 training cases,
// 30–375 MB per volume, ≈136 MB average (≈29 GB total). Sizes are lognormal
// around a 120 MB median, clamped to the paper's observed range.
func NewKiTS19(seed uint64) *Synthetic {
	return &Synthetic{
		name: "kits19",
		seed: seed ^ 0xA1,
		n:    210,
		sizeFn: func(sd uint64, i int) int64 {
			mb := dist.Clamp(dist.LogNormalMedian(sd, streamSize, uint64(i), 120, 0.40), 30, 375)
			return int64(mb * float64(mib))
		},
	}
}

// NewCOCO models the COCO 2017 train split: 118,287 images of 0.1–1 MB
// (≈0.8 MB average). The distribution is skewed toward the top of the range
// as the paper's averages imply.
func NewCOCO(seed uint64) *Synthetic {
	return &Synthetic{
		name: "coco",
		seed: seed ^ 0xB2,
		n:    118287,
		sizeFn: func(sd uint64, i int) int64 {
			mb := dist.NormalClamped(sd, streamSize, uint64(i), 0.82, 0.15, 0.1, 1.0)
			return int64(mb * float64(mib))
		},
	}
}

// NewLibriSpeech models the LibriSpeech 960h corpus: ~281k utterances of
// 0.06–0.34 MB (≈0.2 MB average). heavyEvery marks every n-th sample as
// subject to the HeavyStep transformation (§2.2: every 5th sample); use
// NewLibriSpeechFraction for the Fig 12 sweep.
func NewLibriSpeech(seed uint64, heavyEvery int) *Synthetic {
	d := newLibriSpeechBase(seed)
	if heavyEvery > 0 {
		d.heavyFn = func(_ uint64, i int) bool { return i%heavyEvery == heavyEvery-1 }
	}
	return d
}

// NewLibriSpeechFraction marks a deterministic pseudo-random fraction of
// samples heavy (Fig 12's 0–100% sweep).
func NewLibriSpeechFraction(seed uint64, heavyFraction float64) *Synthetic {
	d := newLibriSpeechBase(seed)
	if heavyFraction > 0 {
		d.heavyFn = func(sd uint64, i int) bool {
			return dist.Uniform(sd, streamAugment+100, uint64(i)) < heavyFraction
		}
	}
	return d
}

func newLibriSpeechBase(seed uint64) *Synthetic {
	return &Synthetic{
		name: "librispeech",
		seed: seed ^ 0xC3,
		n:    281241,
		sizeFn: func(sd uint64, i int) int64 {
			mb := dist.NormalClamped(sd, streamSize, uint64(i), 0.2, 0.05, 0.06, 0.34)
			return int64(mb * float64(mib))
		},
		// Audio–text pairs: each utterance carries its transcript (§6).
		pairSpace: "librispeech/txt",
	}
}

// Subset restricts a dataset to its first n samples. Used to bound
// experiment sizes without changing per-sample draws.
func Subset(d Dataset, n int) Dataset {
	if n >= d.Len() {
		return d
	}
	return &subset{d: d, n: n}
}

type subset struct {
	d Dataset
	n int
}

func (s *subset) Name() string { return s.d.Name() }
func (s *subset) Len() int     { return s.n }
func (s *subset) Sample(epoch, i int) *data.Sample {
	sm := &data.Sample{}
	s.FillSample(epoch, i, sm)
	return sm
}

func (s *subset) FillSample(epoch, i int, sm *data.Sample) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("dataset %s[:%d]: index %d out of range", s.d.Name(), s.n, i))
	}
	Fill(s.d, epoch, i, sm)
}

// Replicate enlarges a dataset by a factor, giving each replica a distinct
// storage key so page-cache behaviour matches a physically replicated
// dataset (§5.5 builds a 230 GB dataset by replicating KiTS19).
func Replicate(d Dataset, factor int) Dataset {
	if factor <= 1 {
		return d
	}
	return &replicated{d: d, factor: factor,
		name: fmt.Sprintf("%s-x%d", d.Name(), factor)}
}

type replicated struct {
	d      Dataset
	factor int
	name   string
}

func (r *replicated) Name() string { return r.name }
func (r *replicated) Len() int     { return r.d.Len() * r.factor }
func (r *replicated) Sample(epoch, i int) *data.Sample {
	s := &data.Sample{}
	r.FillSample(epoch, i, s)
	return s
}

// FillSample materializes the base sample and rekeys it into the replica
// namespace: the replica-global index keeps every replica's storage key
// distinct without formatting a string per draw.
func (r *replicated) FillSample(epoch, i int, s *data.Sample) {
	base := i % r.d.Len()
	Fill(r.d, epoch, base, s)
	s.Index = i
	s.Key = data.Key{Space: r.name, Index: int64(i)}
}

// Shard returns the i-th of n strided shards of a dataset — the per-node
// split used for distributed data-parallel training (§6). Shard i sees
// samples i, i+n, i+2n, ...
func Shard(d Dataset, i, n int) Dataset {
	if n <= 1 {
		return d
	}
	if i < 0 || i >= n {
		panic(fmt.Sprintf("dataset: shard %d of %d out of range", i, n))
	}
	return &shard{d: d, i: i, n: n,
		name: fmt.Sprintf("%s-shard%d/%d", d.Name(), i, n)}
}

type shard struct {
	d    Dataset
	i, n int
	name string
}

func (s *shard) Name() string { return s.name }
func (s *shard) Len() int {
	l := s.d.Len() / s.n
	if s.i < s.d.Len()%s.n {
		l++
	}
	return l
}
func (s *shard) Sample(epoch, i int) *data.Sample {
	sm := &data.Sample{}
	s.FillSample(epoch, i, sm)
	return sm
}

func (s *shard) FillSample(epoch, i int, sm *data.Sample) {
	if i < 0 || i >= s.Len() {
		panic(fmt.Sprintf("dataset %s: index %d out of range", s.name, i))
	}
	Fill(s.d, epoch, s.i+i*s.n, sm)
	sm.Index = i
}

// TotalBytes sums raw sample sizes (materializing each sample once).
// Intended for reporting, not hot paths.
func TotalBytes(d Dataset) int64 {
	var total int64
	var s data.Sample
	for i := 0; i < d.Len(); i++ {
		Fill(d, 0, i, &s)
		total += s.RawBytes
	}
	return total
}
