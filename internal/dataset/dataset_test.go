package dataset

import (
	"testing"
	"testing/quick"

	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/stats"
)

func TestKiTS19Shape(t *testing.T) {
	d := NewKiTS19(1)
	if d.Len() != 210 {
		t.Fatalf("Len = %d, want 210", d.Len())
	}
	var w stats.Welford
	for i := 0; i < d.Len(); i++ {
		s := d.Sample(0, i)
		mb := float64(s.RawBytes) / (1 << 20)
		if mb < 30 || mb > 375 {
			t.Fatalf("sample %d size %.1f MB out of [30,375]", i, mb)
		}
		w.Add(mb)
	}
	if w.Mean() < 110 || w.Mean() > 160 {
		t.Errorf("mean size = %.1f MB, want ≈136", w.Mean())
	}
	// Total ≈ 29 GB.
	total := float64(TotalBytes(d)) / (1 << 30)
	if total < 22 || total > 35 {
		t.Errorf("total = %.1f GB, want ≈29", total)
	}
}

func TestCOCOShape(t *testing.T) {
	d := NewCOCO(1)
	if d.Len() != 118287 {
		t.Fatalf("Len = %d", d.Len())
	}
	var w stats.Welford
	for i := 0; i < 20000; i++ {
		s := d.Sample(0, i)
		mb := float64(s.RawBytes) / (1 << 20)
		if mb < 0.1 || mb > 1.0 {
			t.Fatalf("sample %d size %.2f MB out of [0.1,1]", i, mb)
		}
		w.Add(mb)
	}
	if w.Mean() < 0.7 || w.Mean() > 0.9 {
		t.Errorf("mean = %.2f MB, want ≈0.8", w.Mean())
	}
}

func TestLibriSpeechShapeAndPairs(t *testing.T) {
	d := NewLibriSpeech(1, 5)
	var heavy int
	const n = 10000
	for i := 0; i < n; i++ {
		s := d.Sample(0, i)
		mb := float64(s.RawBytes) / (1 << 20)
		if mb < 0.0599 || mb > 0.3401 {
			t.Fatalf("sample %d size %.3f MB out of range", i, mb)
		}
		if s.Pair.IsZero() {
			t.Fatal("speech sample missing paired transcript key")
		}
		if s.Features.Heavy {
			heavy++
		}
	}
	if heavy != n/5 {
		t.Errorf("heavy = %d, want exactly %d (every 5th)", heavy, n/5)
	}
}

func TestLibriSpeechFraction(t *testing.T) {
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		d := NewLibriSpeechFraction(1, frac)
		heavy := 0
		const n = 10000
		for i := 0; i < n; i++ {
			if d.Sample(0, i).Features.Heavy {
				heavy++
			}
		}
		got := float64(heavy) / n
		if got < frac-0.02 || got > frac+0.02 {
			t.Errorf("fraction %.2f: got %.3f heavy", frac, got)
		}
	}
}

func TestSampleDeterministicAcrossCallsAndEpochs(t *testing.T) {
	d := NewKiTS19(7)
	a := d.Sample(0, 42)
	b := d.Sample(3, 42)
	if a.RawBytes != b.RawBytes || a.Features != b.Features || a.Key != b.Key {
		t.Fatal("sample properties differ across epochs")
	}
	if b.Epoch != 3 {
		t.Fatal("epoch not stamped")
	}
	// Fresh instances: mutating one must not affect the other.
	a.Bytes = 1
	if d.Sample(0, 42).Bytes == 1 {
		t.Fatal("Sample returned shared state")
	}
}

func TestSeedChangesDraws(t *testing.T) {
	a := NewKiTS19(1).Sample(0, 0)
	b := NewKiTS19(2).Sample(0, 0)
	if a.RawBytes == b.RawBytes && a.Features.Complexity == b.Features.Complexity {
		t.Fatal("different seeds produced identical sample")
	}
}

func TestSubset(t *testing.T) {
	d := Subset(NewCOCO(1), 100)
	if d.Len() != 100 {
		t.Fatalf("Len = %d", d.Len())
	}
	if got := Subset(NewKiTS19(1), 10000).Len(); got != 210 {
		t.Fatalf("oversized subset Len = %d, want 210", got)
	}
}

func TestReplicateDistinctKeysSameContent(t *testing.T) {
	base := NewKiTS19(1)
	r := Replicate(base, 8)
	if r.Len() != 210*8 {
		t.Fatalf("Len = %d", r.Len())
	}
	s0 := r.Sample(0, 5)
	s1 := r.Sample(0, 5+210)
	if s0.Key == s1.Key {
		t.Fatal("replicas share cache keys")
	}
	if s0.RawBytes != s1.RawBytes {
		t.Fatal("replicas differ in content size")
	}
	if s1.Index != 5+210 {
		t.Fatalf("replica index = %d", s1.Index)
	}
	// ≈230 GB as in §5.5.
	gb := float64(TotalBytes(r)) / (1 << 30)
	if gb < 180 || gb > 280 {
		t.Errorf("replicated total = %.0f GB, want ≈230", gb)
	}
}

func TestShardPartitionsDataset(t *testing.T) {
	base := NewKiTS19(1)
	const n = 4
	seen := map[data.Key]int{}
	total := 0
	for i := 0; i < n; i++ {
		sh := Shard(base, i, n)
		total += sh.Len()
		for j := 0; j < sh.Len(); j++ {
			seen[sh.Sample(0, j).Key]++
		}
	}
	if total != base.Len() {
		t.Fatalf("shards cover %d samples, want %d", total, base.Len())
	}
	if len(seen) != base.Len() {
		t.Fatalf("distinct keys = %d, want %d (no overlap)", len(seen), base.Len())
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %s in %d shards", k, c)
		}
	}
	// Shard of 1 is identity.
	if Shard(base, 0, 1) != Dataset(base) {
		t.Fatal("Shard(_,0,1) should return the dataset unchanged")
	}
	// Local indices are re-based.
	if got := Shard(base, 2, n).Sample(0, 3).Index; got != 3 {
		t.Fatalf("shard-local index = %d, want 3", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range index")
		}
	}()
	NewKiTS19(1).Sample(0, 210)
}

// Property: sizes always within declared bounds for arbitrary seeds.
func TestQuickSizesBounded(t *testing.T) {
	f := func(seed uint64, idx uint16) bool {
		i := int(idx) % 210
		s := NewKiTS19(seed).Sample(0, i)
		mbv := float64(s.RawBytes) / (1 << 20)
		return mbv >= 30 && mbv <= 375
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
