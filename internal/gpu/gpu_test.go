package gpu

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

func TestArchSpeedScalesTrainTime(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		a := New(k, 0, A100, 40<<30)
		v := New(k, 1, V100, 32<<30)
		start := k.Now()
		_ = a.Train(context.Background(), time.Second)
		aTime := k.Now() - start
		start = k.Now()
		_ = v.Train(context.Background(), time.Second)
		vTime := k.Now() - start
		if math.Abs(aTime.Seconds()-1) > 0.01 {
			t.Errorf("A100 step = %v, want 1s", aTime)
		}
		if math.Abs(vTime.Seconds()-2) > 0.01 {
			t.Errorf("V100 step = %v, want 2s (half speed)", vTime)
		}
	})
}

func TestPreprocessContendsWithTraining(t *testing.T) {
	// Takeaway 5: concurrent preprocessing slows training. Two concurrent
	// 1.3s tasks on stream capacity 1.3 → each runs at 0.65 → 2s total.
	k := simtime.NewVirtual()
	k.Run(func() {
		g := New(k, 0, A100, 40<<30)
		wg := simtime.NewWaitGroup(k)
		start := k.Now()
		wg.Go("train", func() { _ = g.Train(context.Background(), 1300*time.Millisecond) })
		wg.Go("preproc", func() { _ = g.Preprocess(context.Background(), 1300*time.Millisecond) })
		_ = wg.Wait(context.Background())
		elapsed := (k.Now() - start).Seconds()
		if math.Abs(elapsed-2.0) > 0.05 {
			t.Fatalf("overlapped tasks took %.3fs, want ≈2s (contention)", elapsed)
		}
		// Serial would have been 2.6s: overlap helps but is not free.
	})
}

func TestMemoryReservation(t *testing.T) {
	k := simtime.NewVirtual()
	g := New(k, 0, A100, 100)
	if err := g.Reserve(60); err != nil {
		t.Fatal(err)
	}
	if err := g.Reserve(60); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	g.Release(30)
	if err := g.Reserve(60); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if g.MemUsed() != 90 || g.MemPeak() != 90 {
		t.Fatalf("used=%d peak=%d", g.MemUsed(), g.MemPeak())
	}
	g.Release(1000)
	if g.MemUsed() != 0 {
		t.Fatal("negative memory")
	}
}

func TestUtilizationGauge(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		g := New(k, 0, A100, 40<<30)
		gauge := g.UtilizationGauge(k)
		// Train 1s then idle 1s: windows read ≈100% then ≈0%.
		_ = g.Train(context.Background(), time.Second)
		if u := gauge(); u < 0.95 {
			t.Errorf("busy window utilization = %.2f, want ≈1", u)
		}
		_ = k.Sleep(context.Background(), time.Second)
		if u := gauge(); u > 0.05 {
			t.Errorf("idle window utilization = %.2f, want ≈0", u)
		}
	})
}

func TestPool(t *testing.T) {
	k := simtime.NewVirtual()
	gs := Pool(k, 4, V100, 32<<30)
	if len(gs) != 4 {
		t.Fatalf("len = %d", len(gs))
	}
	for i, g := range gs {
		if g.ID != i || g.Arch != V100 {
			t.Fatalf("gpu %d misconfigured: %+v", i, g)
		}
	}
}
