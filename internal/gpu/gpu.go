// Package gpu models training accelerators on top of the shared-capacity
// device abstraction. A GPU executes train steps, (for DALI) preprocessing
// kernels, and host-to-device copies. Its compute device has capacity
// slightly above 1: two concurrent CUDA streams make some progress in
// parallel but contend for SMs, reproducing §3.5's observation that GPU
// preprocessing interferes with training (Takeaway 5).
package gpu

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/minatoloader/minato/internal/device"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/trace"
)

// Arch describes a GPU architecture. Speed is relative to an A100: work
// durations are specified in A100-seconds and divided by Speed.
type Arch struct {
	Name  string
	Speed float64
}

// The two architectures of the paper's testbeds (§3).
var (
	A100 = Arch{Name: "A100", Speed: 1.0}
	V100 = Arch{Name: "V100", Speed: 0.50}
)

// streamCapacity models imperfect overlap of concurrent CUDA streams:
// two streams progress at 0.65× each rather than 0.5× (some overlap
// benefit) or 1× (no contention).
const streamCapacity = 1.3

// ErrOutOfMemory is returned when a reservation exceeds GPU memory.
var ErrOutOfMemory = errors.New("gpu: out of memory")

// GPU is one simulated accelerator.
type GPU struct {
	ID   int
	Arch Arch

	compute *device.Device

	mu       sync.Mutex
	memCap   int64
	memUsed  int64
	memPeak  int64
	trainSec float64 // cumulative A100-normalized train work
}

// New returns a GPU with the given architecture and memory capacity.
func New(rt simtime.Runtime, id int, arch Arch, memBytes int64) *GPU {
	return &GPU{
		ID: id, Arch: arch,
		compute: device.New(rt, fmt.Sprintf("gpu%d-%s", id, arch.Name), streamCapacity),
		memCap:  memBytes,
	}
}

// EnableTrace records a StageDeviceRun occupancy span for every kernel
// (train step, preprocessing, copy) this GPU executes. Key is the GPU ID.
func (g *GPU) EnableTrace(r *trace.Recorder, tenant, node int32) {
	g.compute.EnableTrace(r, tenant, node, int64(g.ID))
}

// Train occupies the GPU for an A100-normalized work duration.
func (g *GPU) Train(ctx context.Context, work time.Duration) error {
	g.mu.Lock()
	g.trainSec += work.Seconds()
	g.mu.Unlock()
	return g.compute.Run(ctx, g.scale(work))
}

// Preprocess occupies the GPU with preprocessing kernels (DALI's offload
// path). It contends with Train through the shared stream capacity.
func (g *GPU) Preprocess(ctx context.Context, work time.Duration) error {
	return g.compute.Run(ctx, g.scale(work))
}

func (g *GPU) scale(work time.Duration) time.Duration {
	return time.Duration(float64(work) / g.Arch.Speed)
}

// Executor adapts the GPU's preprocessing path to transform.Executor.
type Executor struct{ G *GPU }

// Run implements transform.Executor.
func (e Executor) Run(ctx context.Context, work time.Duration) error {
	return e.G.Preprocess(ctx, work)
}

// Reserve claims GPU memory (prefetch buffers, preprocessing workspace).
func (g *GPU) Reserve(bytes int64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.memUsed+bytes > g.memCap {
		return fmt.Errorf("%w: used %d + %d > cap %d", ErrOutOfMemory, g.memUsed, bytes, g.memCap)
	}
	g.memUsed += bytes
	if g.memUsed > g.memPeak {
		g.memPeak = g.memUsed
	}
	return nil
}

// Release frees GPU memory.
func (g *GPU) Release(bytes int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.memUsed -= bytes
	if g.memUsed < 0 {
		g.memUsed = 0
	}
}

// MemUsed returns current reserved memory.
func (g *GPU) MemUsed() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.memUsed
}

// MemPeak returns the high-water mark of reserved memory.
func (g *GPU) MemPeak() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.memPeak
}

// BusySeconds exposes cumulative compute busy time (for utilization).
func (g *GPU) BusySeconds() float64 { return g.compute.BusySeconds() }

// UtilizationGauge returns a window-utilization sampling function in [0,1].
// Utilization is measured against a single full-speed stream (matching
// nvidia-smi's notion), so a GPU running one kernel back-to-back reads
// 100%.
func (g *GPU) UtilizationGauge(rt simtime.Runtime) func() float64 {
	lastBusy := g.BusySeconds()
	lastT := rt.Now()
	return func() float64 {
		busy := g.BusySeconds()
		now := rt.Now()
		dt := (now - lastT).Seconds()
		var u float64
		if dt > 0 {
			u = (busy - lastBusy) / dt
		}
		lastBusy, lastT = busy, now
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		return u
	}
}

// Pool creates n GPUs of the same architecture.
func Pool(rt simtime.Runtime, n int, arch Arch, memBytes int64) []*GPU {
	gs := make([]*GPU, n)
	for i := range gs {
		gs[i] = New(rt, i, arch, memBytes)
	}
	return gs
}
