package chaos

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		script Script
		nodes  int
		ok     bool
	}{
		{"empty", Script{}, 0, true},
		{"crash-rejoin", CrashNode(3, 5*time.Second, 8*time.Second), 8, true},
		{"crash-forever", CrashNode(0, time.Second, 0), 4, true},
		{"crash-single-machine", CrashNode(0, time.Second, 0), 0, false},
		{"crash-out-of-range", CrashNode(8, time.Second, 0), 8, false},
		{"double-crash", Compose("", CrashNode(1, time.Second, 0), CrashNode(1, 2*time.Second, 0)), 4, false},
		{"join-without-crash", Script{Events: []Event{{At: time.Second, Kind: NodeJoin, Node: 1}}}, 4, false},
		{"join-before-crash-sorted", Script{Events: []Event{
			{At: 2 * time.Second, Kind: NodeCrash, Node: 1},
			{At: time.Second, Kind: NodeJoin, Node: 1},
		}}, 4, false},
		{"negative-time", Script{Events: []Event{{At: -time.Second, Kind: DiskDegrade, Factor: 2}}}, 0, false},
		{"link-flap", FlapLink(1, time.Second, 8, time.Second), 4, true},
		{"link-factor-below-one", Script{Events: []Event{{At: 0, Kind: LinkDegrade, Node: 0, Factor: 0.5}}}, 2, false},
		{"disk-on-single-machine", BrownoutDisk(time.Second, 8, time.Second), 0, true},
		{"stall-needs-duration", Script{Events: []Event{{Kind: WorkerStall, Factor: 2}}}, 0, false},
		{"preempt-resume", PreemptFor(time.Second, time.Second), 0, true},
		{"preempt-forever", PreemptFor(time.Second, 0), 0, true},
		{"preempt-multinode", PreemptFor(time.Second, time.Second), 4, false},
		{"double-preempt", Compose("", PreemptFor(time.Second, 0), PreemptFor(2*time.Second, 0)), 0, false},
		{"resume-alone", Script{Events: []Event{{At: time.Second, Kind: Resume}}}, 0, false},
	}
	for _, tc := range cases {
		err := tc.script.Validate(tc.nodes)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestSortedIsStableAndNonMutating(t *testing.T) {
	s := Script{Events: []Event{
		{At: 2 * time.Second, Kind: DiskRestore},
		{At: time.Second, Kind: DiskDegrade, Factor: 2},
		{At: time.Second, Kind: LinkDegrade, Node: 1, Factor: 4},
	}}
	got := s.Sorted()
	if got[0].Kind != DiskDegrade || got[1].Kind != LinkDegrade || got[2].Kind != DiskRestore {
		t.Fatalf("sorted order wrong: %v", got)
	}
	if s.Events[0].Kind != DiskRestore {
		t.Fatal("Sorted mutated the script")
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"node-crash", "link-flap", "disk-brownout", "worker-stall", "preempt-resume", "churn-storm"} {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("builtin scenario %q missing", name)
		}
		if s.Empty() {
			t.Fatalf("scenario %q is empty", name)
		}
		if s.Name == "" {
			t.Fatalf("scenario %q has no name", name)
		}
	}
	if _, ok := ByName("no-such-scenario"); ok {
		t.Fatal("unknown scenario resolved")
	}
	// The acceptance scenario is exactly "node 3 crashes at 5s, rejoins at 8s".
	s, _ := ByName("node-crash")
	want := []Event{
		{At: 5 * time.Second, Kind: NodeCrash, Node: 3},
		{At: 8 * time.Second, Kind: NodeJoin, Node: 3},
	}
	if len(s.Events) != 2 || s.Events[0] != want[0] || s.Events[1] != want[1] {
		t.Fatalf("node-crash scenario = %v, want %v", s.Events, want)
	}
}

func TestEngineAppliesAtEventTimes(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		wg := simtime.NewWaitGroup(k)
		var applied []Event
		var times []time.Duration
		s := Compose("",
			BrownoutDisk(time.Second, 2, 2*time.Second),
			StallWorkers(0, 2*time.Second, 2, time.Second),
		)
		StartEngine(k, wg, s.Sorted(), func(ev Event) {
			applied = append(applied, ev)
			times = append(times, k.Now())
		})
		_ = wg.Wait(context.Background())
		wantKinds := []Kind{DiskDegrade, WorkerStall, DiskRestore}
		wantTimes := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
		if len(applied) != len(wantKinds) {
			t.Fatalf("applied %d events, want %d", len(applied), len(wantKinds))
		}
		for i := range applied {
			if applied[i].Kind != wantKinds[i] || times[i] != wantTimes[i] {
				t.Errorf("event %d: %v at %v, want %v at %v", i, applied[i].Kind, times[i], wantKinds[i], wantTimes[i])
			}
		}
	})
}

func TestEngineStopDropsPendingEvents(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		wg := simtime.NewWaitGroup(k)
		var applied int
		eng := StartEngine(k, wg, BrownoutDisk(time.Second, 2, time.Hour).Sorted(), func(Event) {
			applied++
		})
		_ = k.Sleep(context.Background(), 2*time.Second)
		eng.Stop()
		_ = wg.Wait(context.Background())
		if applied != 1 {
			t.Fatalf("applied %d events, want 1 (restore dropped by Stop)", applied)
		}
	})
	var nilEng *Engine
	nilEng.Stop() // must not panic
}

func TestPauserBlocksAndResumes(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		p := NewPauser(k)
		wg := simtime.NewWaitGroup(k)
		var stalled time.Duration
		wg.Go("consumer", func() {
			_ = k.Sleep(context.Background(), time.Second)
			var err error
			stalled, err = p.Wait(context.Background())
			if err != nil {
				t.Errorf("Wait: %v", err)
			}
		})
		wg.Go("chaos", func() {
			p.Pause(false)
			_ = k.Sleep(context.Background(), 3*time.Second)
			p.Resume()
		})
		_ = wg.Wait(context.Background())
		if stalled != 2*time.Second {
			t.Fatalf("stalled %v, want 2s", stalled)
		}
	})
}

func TestPauserTerminalReturnsErrPreempted(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		p := NewPauser(k)
		wg := simtime.NewWaitGroup(k)
		wg.Go("consumer", func() {
			// Parked on a resumable pause that turns terminal.
			_ = k.Sleep(context.Background(), 500*time.Millisecond)
			_, err := p.Wait(context.Background())
			if !errors.Is(err, ErrPreempted) {
				t.Errorf("Wait = %v, want ErrPreempted", err)
			}
		})
		wg.Go("chaos", func() {
			p.Pause(false)
			_ = k.Sleep(context.Background(), time.Second)
			p.Pause(true)
		})
		_ = wg.Wait(context.Background())
		// Late arrivals fail immediately.
		if _, err := p.Wait(context.Background()); !errors.Is(err, ErrPreempted) {
			t.Fatalf("late Wait = %v, want ErrPreempted", err)
		}
	})
	var nilP *Pauser
	if _, err := nilP.Wait(context.Background()); err != nil {
		t.Fatalf("nil pauser Wait = %v", err)
	}
}
