package chaos

import (
	"sort"
	"sync"
	"time"
)

// The scenario registry mirrors the loader and workload registries: named
// Script builders, so an experiment or CLI flag selects a failure
// scenario by one string and compositions stay one-liners.

var (
	regMu    sync.RWMutex
	registry = map[string]func() Script{}
)

// Register adds (or replaces) a named scenario builder.
func Register(name string, build func() Script) {
	regMu.Lock()
	registry[name] = build
	regMu.Unlock()
}

// ByName builds a registered scenario.
func ByName(name string) (Script, bool) {
	regMu.RLock()
	build, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Script{}, false
	}
	s := build()
	if s.Name == "" {
		s.Name = name
	}
	return s, true
}

// Names lists the registered scenarios, sorted.
func Names() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	regMu.RUnlock()
	sort.Strings(names)
	return names
}

// Built-in scenarios. Multi-node ones target low ranks so they fit any
// cluster of ≥ 4 nodes; times suit runs of tens of seconds of virtual
// time (a few hundred iterations).
func init() {
	// The acceptance scenario: node 3 crashes at t=5s and rejoins at t=8s.
	Register("node-crash", func() Script {
		return CrashNode(3, 5*time.Second, 8*time.Second)
	})
	Register("link-flap", func() Script {
		return FlapLink(1, 2*time.Second, 8, 2*time.Second)
	})
	Register("disk-brownout", func() Script {
		return BrownoutDisk(2*time.Second, 8, 3*time.Second)
	})
	Register("worker-stall", func() Script {
		return StallWorkers(0, 2*time.Second, 2, 2*time.Second)
	})
	Register("preempt-resume", func() Script {
		return PreemptFor(2*time.Second, 2*time.Second)
	})
	// Everything at once: the "8-node hetero mix + straggler + link flap
	// at t=2s + node 3 crash at t=5s" churn storm (pair it with a
	// Topology carrying the hetero mix and stragglers).
	Register("churn-storm", func() Script {
		return Compose("churn-storm",
			FlapLink(1, 2*time.Second, 8, 2*time.Second),
			CrashNode(3, 5*time.Second, 8*time.Second),
			BrownoutDisk(6*time.Second, 4, 2*time.Second),
		)
	})
}
