// Package chaos is a deterministic fault-injection engine for the
// simulated training substrate: a Script of timestamped events — node
// crashes and rejoins, NIC degradation, disk-read slowdowns, CPU worker
// stalls, session preemption — scheduled on the simtime.Virtual clock and
// applied to a running session or multi-node job. Because the clock is
// discrete-event and the script is static data, an identical script
// against an identical run produces bit-identical reports: chaos here is
// reproducible by construction, which is what makes recovery-time and
// p99-step-time SLOs assertable in tests.
//
// Events divide into two application styles. Continuous-substrate events
// (link, disk, worker, preempt) take effect at exactly Event.At, applied
// by an Engine task parked on the virtual clock. Membership events
// (NodeCrash/NodeJoin) cannot safely fire mid-step — a synchronous
// data-parallel cluster has no consistent state there — so the distributed
// runner applies them at the first step boundary at or after Event.At,
// the way an elastic agent (TorchElastic-style) reconfigures between
// steps.
package chaos

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// ErrPreempted is the session-preempted sentinel: a script paused the
// session with no resume scheduled. Re-exported as minato.ErrPreempted.
var ErrPreempted = errors.New("minato: session preempted")

// ErrNodeLost is the no-survivors sentinel: a script crashed the last
// live node of a multi-node job. Re-exported as minato.ErrNodeLost.
var ErrNodeLost = errors.New("minato: all nodes lost")

// Kind enumerates fault-event types.
type Kind int

const (
	// NodeCrash removes Node from a multi-node job at the first step
	// boundary at or after At: its consumers stop training, its loader is
	// torn down (draining claims), its page cache is dropped (a restarted
	// machine comes back cold), and the survivors re-shard the dataset.
	NodeCrash Kind = iota
	// NodeJoin returns a crashed Node at the first step boundary at or
	// after At; the cluster re-shards across the enlarged membership and
	// the report records the node's recovery time (rejoin event to its
	// first completed synchronized step).
	NodeJoin
	// LinkDegrade divides Node's NIC bandwidth by Factor at At — a flaky
	// cable or oversubscribed leaf switch. Factor = +Inf expresses a full
	// outage (the fabric clamps to its documented floor).
	LinkDegrade
	// LinkRestore returns Node's NIC to its configured bandwidth.
	LinkRestore
	// DiskDegrade multiplies storage read times by Factor at At — the
	// shared-filesystem brownout of §5.3. On a remote-store multi-node
	// cluster it hits the storage server; with local stores, every node.
	DiskDegrade
	// DiskRestore returns the disk to full speed.
	DiskRestore
	// WorkerStall occupies roughly Factor× the CPU pool's cores with hog
	// work for Duration — a co-located job stealing preprocessing cores.
	// On a multi-node job it targets Node's CPU pool.
	WorkerStall
	// Preempt pauses a session's training consumers at the next batch
	// boundary (single-machine sessions only). With a later Resume the
	// session continues and the pause is attributed as preemption stall;
	// with none, the session halts with ErrPreempted — checkpoint it and
	// minato.Resume to continue warm.
	Preempt
	// Resume unpauses a preempted session.
	Resume
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case NodeJoin:
		return "node-join"
	case LinkDegrade:
		return "link-degrade"
	case LinkRestore:
		return "link-restore"
	case DiskDegrade:
		return "disk-degrade"
	case DiskRestore:
		return "disk-restore"
	case WorkerStall:
		return "worker-stall"
	case Preempt:
		return "preempt"
	case Resume:
		return "resume"
	default:
		return fmt.Sprintf("chaos.Kind(%d)", int(k))
	}
}

// Event is one scripted fault.
type Event struct {
	// At is the virtual time the event fires (membership events apply at
	// the first step boundary at or after At).
	At time.Duration
	// Kind selects the fault.
	Kind Kind
	// Node targets a multi-node rank (NodeCrash/NodeJoin/LinkDegrade/
	// LinkRestore/WorkerStall). Single-machine events leave it 0.
	Node int
	// Factor is the degradation multiplier (≥ 1) for LinkDegrade,
	// DiskDegrade, and WorkerStall.
	Factor float64
	// Duration bounds a WorkerStall's hog work.
	Duration time.Duration
}

// String formats the event compactly.
func (e Event) String() string {
	s := fmt.Sprintf("%s@%v", e.Kind, e.At)
	switch e.Kind {
	case NodeCrash, NodeJoin, LinkRestore:
		s += fmt.Sprintf(" node=%d", e.Node)
	case LinkDegrade, WorkerStall:
		s += fmt.Sprintf(" node=%d ×%g", e.Node, e.Factor)
	case DiskDegrade:
		s += fmt.Sprintf(" ×%g", e.Factor)
	}
	if e.Duration > 0 {
		s += fmt.Sprintf(" for=%v", e.Duration)
	}
	return s
}

// Script is a named, composable fault schedule. The zero value injects
// nothing.
type Script struct {
	Name   string
	Events []Event
}

// Empty reports whether the script injects nothing.
func (s Script) Empty() bool { return len(s.Events) == 0 }

// Sorted returns the events ordered by At (stable: equal times keep
// script order), leaving s untouched.
func (s Script) Sorted() []Event {
	evs := make([]Event, len(s.Events))
	copy(evs, s.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// HasMembershipEvents reports whether the script crashes or rejoins nodes
// — the events that switch a multi-node run into elastic membership mode.
func (s Script) HasMembershipEvents() bool {
	for _, ev := range s.Events {
		if ev.Kind == NodeCrash || ev.Kind == NodeJoin {
			return true
		}
	}
	return false
}

// Compose merges scripts into one named schedule; overlapping times keep
// argument order (stable sort at run time).
func Compose(name string, scripts ...Script) Script {
	out := Script{Name: name}
	for _, s := range scripts {
		out.Events = append(out.Events, s.Events...)
	}
	return out
}

// Shift returns a copy of s with every event delayed by d.
func Shift(s Script, d time.Duration) Script {
	evs := make([]Event, len(s.Events))
	for i, ev := range s.Events {
		ev.At += d
		evs[i] = ev
	}
	return Script{Name: s.Name, Events: evs}
}

// Validate checks the script against a run shape: nodes > 0 is a
// multi-node job with that many ranks; nodes == 0 a single-machine
// session. It verifies per-kind fields, node bounds, and pairing
// (join-after-crash per node, resume-after-preempt), and returns a
// descriptive error on the first violation. A crash schedule that leaves
// zero live nodes is legal here — the runner detects it at the step
// boundary where it actually happens and unwinds with ErrNodeLost.
func (s Script) Validate(nodes int) error {
	multi := nodes > 0
	crashed := map[int]bool{}
	paused := false
	for _, ev := range s.Sorted() {
		if ev.At < 0 {
			return fmt.Errorf("%v: negative time", ev)
		}
		switch ev.Kind {
		case NodeCrash, NodeJoin, LinkDegrade, LinkRestore:
			if !multi {
				return fmt.Errorf("%v: node/link events need a multi-node run", ev)
			}
			if ev.Node < 0 || ev.Node >= nodes {
				return fmt.Errorf("%v: node outside cluster of %d", ev, nodes)
			}
		case WorkerStall:
			if multi && (ev.Node < 0 || ev.Node >= nodes) {
				return fmt.Errorf("%v: node outside cluster of %d", ev, nodes)
			}
			if ev.Duration <= 0 {
				return fmt.Errorf("%v: needs a positive Duration", ev)
			}
		case DiskDegrade, DiskRestore:
			// Targets the storage substrate as a whole; no node bound.
		case Preempt, Resume:
			if multi {
				return fmt.Errorf("%v: preemption applies to single-machine sessions; crash nodes instead", ev)
			}
		default:
			return fmt.Errorf("%v: unknown kind", ev)
		}
		switch ev.Kind {
		case LinkDegrade, DiskDegrade, WorkerStall:
			if !(ev.Factor >= 1) || math.IsNaN(ev.Factor) {
				return fmt.Errorf("%v: factor must be ≥ 1", ev)
			}
		}
		switch ev.Kind {
		case NodeCrash:
			if crashed[ev.Node] {
				return fmt.Errorf("%v: node already crashed", ev)
			}
			crashed[ev.Node] = true
		case NodeJoin:
			if !crashed[ev.Node] {
				return fmt.Errorf("%v: node is not crashed", ev)
			}
			crashed[ev.Node] = false
		case Preempt:
			if paused {
				return fmt.Errorf("%v: session already preempted", ev)
			}
			paused = true
		case Resume:
			if !paused {
				return fmt.Errorf("%v: session is not preempted", ev)
			}
			paused = false
		}
	}
	return nil
}

// FaultStat is one applied fault in a report: when it took effect, when
// its counterpart cleared it (zero if never), the measured recovery time
// (NodeJoin: rejoin event to the node's first completed synchronized
// step; Resume: resume event to the next delivered batch), and the
// consumer stall the run accumulated while the fault was active — the
// per-fault attribution of churn cost.
type FaultStat struct {
	Event       Event
	AppliedAt   time.Duration
	ClearedAt   time.Duration
	Recovery    time.Duration
	StallDuring time.Duration
}

// Builders for the common one-fault scripts; compose them with Compose.

// CrashNode crashes node at `at` and rejoins it at `rejoin` (rejoin ≤ at
// means the node never returns).
func CrashNode(node int, at, rejoin time.Duration) Script {
	s := Script{
		Name:   fmt.Sprintf("crash-node-%d", node),
		Events: []Event{{At: at, Kind: NodeCrash, Node: node}},
	}
	if rejoin > at {
		s.Events = append(s.Events, Event{At: rejoin, Kind: NodeJoin, Node: node})
	}
	return s
}

// FlapLink degrades node's NIC by factor at `at` and restores it after
// duration.
func FlapLink(node int, at time.Duration, factor float64, duration time.Duration) Script {
	return Script{
		Name: fmt.Sprintf("link-flap-%d", node),
		Events: []Event{
			{At: at, Kind: LinkDegrade, Node: node, Factor: factor},
			{At: at + duration, Kind: LinkRestore, Node: node},
		},
	}
}

// BrownoutDisk slows storage reads by factor at `at` and restores them
// after duration.
func BrownoutDisk(at time.Duration, factor float64, duration time.Duration) Script {
	return Script{
		Name: "disk-brownout",
		Events: []Event{
			{At: at, Kind: DiskDegrade, Factor: factor},
			{At: at + duration, Kind: DiskRestore},
		},
	}
}

// StallWorkers occupies ~factor× of node's CPU cores with hog work for
// duration, starting at `at`.
func StallWorkers(node int, at time.Duration, factor float64, duration time.Duration) Script {
	return Script{
		Name: "worker-stall",
		Events: []Event{
			{At: at, Kind: WorkerStall, Node: node, Factor: factor, Duration: duration},
		},
	}
}

// PreemptFor pauses the session at `at` and resumes it after duration; a
// zero duration preempts permanently (the session ends with
// ErrPreempted).
func PreemptFor(at, duration time.Duration) Script {
	s := Script{Name: "preempt", Events: []Event{{At: at, Kind: Preempt}}}
	if duration > 0 {
		s.Events = append(s.Events, Event{At: at + duration, Kind: Resume})
	}
	return s
}
