package chaos

import (
	"context"
	"sync"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

// Engine replays a list of timed events against a running session: one
// tracked task parks on the virtual clock until each event's At and hands
// it to the caller's apply function. Events are applied strictly in time
// order (stable for ties) by that single task, so the injection schedule
// is deterministic. Membership events in a multi-node run are not driven
// by an Engine — the step barrier applies them at quiescent points; see
// the package comment.
type Engine struct {
	mu      sync.Mutex
	stopped bool
	cancel  context.CancelFunc
}

// StartEngine launches the replay task on wg (no-op returning nil when
// events is empty). apply runs in the engine's task at each event time;
// after Stop it is never called again.
func StartEngine(rt simtime.Runtime, wg *simtime.WaitGroup, events []Event, apply func(Event)) *Engine {
	if len(events) == 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{cancel: cancel}
	wg.Go("chaos-engine", func() {
		for _, ev := range events {
			if d := ev.At - rt.Now(); d > 0 {
				if err := rt.Sleep(ctx, d); err != nil {
					return
				}
			}
			e.mu.Lock()
			dead := e.stopped
			if !dead {
				apply(ev)
			}
			e.mu.Unlock()
			if dead {
				return
			}
		}
	})
	return e
}

// Stop ends the replay: pending events are discarded and apply is never
// invoked again. Safe on a nil engine and idempotent. Callers stop the
// engine when the run's consumers finish, before waiting out background
// tasks, so a script outliving the run cannot append trailing fault
// records.
func (e *Engine) Stop() {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.stopped = true
	e.mu.Unlock()
	e.cancel()
}

// Pauser gates training consumers for session preemption: consumers call
// Wait at each batch boundary and park while the session is preempted.
// Pause with terminal=true (no resume scheduled in the script) releases
// waiters with ErrPreempted instead of parking them forever.
type Pauser struct {
	rt simtime.Runtime

	mu       sync.Mutex
	paused   bool
	terminal bool
	waiters  []*simtime.Waiter
}

// NewPauser returns an unpaused gate.
func NewPauser(rt simtime.Runtime) *Pauser {
	return &Pauser{rt: rt}
}

// Pause preempts the session; terminal marks a preemption with no
// scheduled resume. Parked waiters of a terminal pause wake immediately
// with ErrPreempted.
func (p *Pauser) Pause(terminal bool) {
	p.mu.Lock()
	p.paused, p.terminal = true, terminal
	var ws []*simtime.Waiter
	if terminal {
		ws = p.waiters
		p.waiters = nil
	}
	p.mu.Unlock()
	for _, w := range ws {
		w.Wake()
	}
}

// Resume releases every parked consumer.
func (p *Pauser) Resume() {
	p.mu.Lock()
	p.paused, p.terminal = false, false
	ws := p.waiters
	p.waiters = nil
	p.mu.Unlock()
	for _, w := range ws {
		w.Wake()
	}
}

// Wait parks until the session is not preempted and returns the time
// spent parked. A terminal preemption returns ErrPreempted (with the
// stall accumulated so far); a ctx error passes through. Safe on a nil
// pauser, which never pauses.
func (p *Pauser) Wait(ctx context.Context) (time.Duration, error) {
	if p == nil {
		return 0, nil
	}
	var stalled time.Duration
	for {
		p.mu.Lock()
		if !p.paused {
			p.mu.Unlock()
			return stalled, nil
		}
		if p.terminal {
			p.mu.Unlock()
			return stalled, ErrPreempted
		}
		w := p.rt.NewWaiter()
		p.waiters = append(p.waiters, w)
		p.mu.Unlock()
		t0 := p.rt.Now()
		err := w.Wait(ctx)
		stalled += p.rt.Now() - t0
		if err != nil {
			return stalled, err
		}
	}
}
