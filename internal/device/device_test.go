package device

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

func TestUncontendedRunsAtFullSpeed(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		d := New(k, "cpu", 4)
		start := k.Now()
		if err := d.Run(context.Background(), 10*time.Second); err != nil {
			t.Fatal(err)
		}
		elapsed := k.Now() - start
		if elapsed < 10*time.Second || elapsed > 10*time.Second+time.Millisecond {
			t.Fatalf("elapsed = %v, want ≈10s", elapsed)
		}
	})
}

func TestParallelWithinCapacity(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		d := New(k, "cpu", 4)
		wg := simtime.NewWaitGroup(k)
		start := k.Now()
		for i := 0; i < 4; i++ {
			wg.Go("task", func() {
				_ = d.Run(context.Background(), 10*time.Second)
			})
		}
		_ = wg.Wait(context.Background())
		elapsed := (k.Now() - start).Seconds()
		if elapsed < 10 || elapsed > 10.01 {
			t.Fatalf("4 tasks on 4 cores took %.3fs, want ≈10s", elapsed)
		}
	})
}

func TestOversubscriptionSharesFairly(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		d := New(k, "cpu", 2)
		wg := simtime.NewWaitGroup(k)
		start := k.Now()
		// 4 tasks of 10s work on 2 cores: total work 40 core-seconds,
		// aggregate throughput 2/s, all finish together at t=20s.
		for i := 0; i < 4; i++ {
			wg.Go("task", func() {
				_ = d.Run(context.Background(), 10*time.Second)
			})
		}
		_ = wg.Wait(context.Background())
		elapsed := (k.Now() - start).Seconds()
		if math.Abs(elapsed-20) > 0.1 {
			t.Fatalf("elapsed = %.3fs, want ≈20s", elapsed)
		}
	})
}

func TestLateArrivalSlowsInFlightTask(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		d := New(k, "disk", 1)
		wg := simtime.NewWaitGroup(k)
		var firstDone, secondDone atomic.Int64
		wg.Go("first", func() {
			_ = d.Run(context.Background(), 10*time.Second)
			firstDone.Store(int64(k.Now()))
		})
		wg.Go("second", func() {
			_ = k.Sleep(context.Background(), 5*time.Second)
			_ = d.Run(context.Background(), 10*time.Second)
			secondDone.Store(int64(k.Now()))
		})
		_ = wg.Wait(context.Background())
		// First: 5s alone (5s work done) + shares until its remaining 5s
		// work completes at rate 1/2 → finishes at t = 5 + 10 = 15s.
		// Second: arrives t=5, shares 10s at rate 1/2 → 5s work done at
		// t=15, then alone for remaining 5s → finishes t=20s.
		f := time.Duration(firstDone.Load()).Seconds()
		s := time.Duration(secondDone.Load()).Seconds()
		if math.Abs(f-15) > 0.1 {
			t.Errorf("first finished at %.2fs, want ≈15s", f)
		}
		if math.Abs(s-20) > 0.1 {
			t.Errorf("second finished at %.2fs, want ≈20s", s)
		}
	})
}

func TestFractionalCapacityStreams(t *testing.T) {
	// GPU with capacity 1.3: two concurrent streams each run at 0.65.
	k := simtime.NewVirtual()
	k.Run(func() {
		d := New(k, "gpu", 1.3)
		wg := simtime.NewWaitGroup(k)
		start := k.Now()
		for i := 0; i < 2; i++ {
			wg.Go("stream", func() {
				_ = d.Run(context.Background(), 13*time.Second)
			})
		}
		_ = wg.Wait(context.Background())
		elapsed := (k.Now() - start).Seconds()
		if math.Abs(elapsed-20) > 0.1 {
			t.Fatalf("elapsed = %.3fs, want ≈20s (13/0.65)", elapsed)
		}
	})
}

func TestBusyAccountingAndUtilization(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		d := New(k, "cpu", 2)
		gauge := d.UtilizationGauge()
		// One task of 10s on a 2-core device, then 10s idle.
		_ = d.Run(context.Background(), 10*time.Second)
		u1 := gauge()
		if math.Abs(u1-0.5) > 0.01 {
			t.Errorf("utilization during single-task phase = %.3f, want ≈0.5", u1)
		}
		_ = k.Sleep(context.Background(), 10*time.Second)
		u2 := gauge()
		if u2 > 0.01 {
			t.Errorf("utilization while idle = %.3f, want ≈0", u2)
		}
		if busy := d.BusySeconds(); math.Abs(busy-10) > 0.01 {
			t.Errorf("BusySeconds = %.3f, want ≈10", busy)
		}
	})
}

func TestZeroWorkReturnsImmediately(t *testing.T) {
	k := simtime.NewVirtual()
	k.Run(func() {
		d := New(k, "cpu", 1)
		start := k.Now()
		if err := d.Run(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		if k.Now() != start {
			t.Fatal("zero work advanced time")
		}
	})
}

func TestManyTasksTotalWorkConserved(t *testing.T) {
	k := simtime.NewVirtual()
	const n = 30
	k.Run(func() {
		d := New(k, "cpu", 3)
		wg := simtime.NewWaitGroup(k)
		for i := 0; i < n; i++ {
			i := i
			wg.Go("task", func() {
				_ = k.Sleep(context.Background(), time.Duration(i)*250*time.Millisecond)
				_ = d.Run(context.Background(), time.Duration(1+i%5)*time.Second)
			})
		}
		_ = wg.Wait(context.Background())
		// Total work: sum over i of (1 + i%5) seconds.
		want := 0.0
		for i := 0; i < n; i++ {
			want += float64(1 + i%5)
		}
		if busy := d.BusySeconds(); math.Abs(busy-want) > 0.05*want {
			t.Fatalf("BusySeconds = %.2f, want ≈%.2f", busy, want)
		}
	})
}
