// Package device models shared-capacity hardware: CPU core pools, GPU
// compute (with concurrent streams), and disk bandwidth.
//
// A Device has a capacity C of parallel units. k concurrent tasks each
// progress at rate min(1, C/k): with k ≤ C every task runs at full speed;
// beyond that the device is fair-shared. This single abstraction covers the
// three substrates the paper's evaluation depends on:
//
//   - CPU pool: C = number of cores; oversubscribed preprocessing workers
//     slow each other down (what MinatoLoader's worker scheduler must avoid).
//   - GPU: C slightly above 1 models concurrent CUDA streams — DALI's
//     GPU-side preprocessing overlaps training imperfectly, reproducing the
//     resource contention of §3.5 (Takeaway 5).
//   - Disk: C = 1, task work = bytes/bandwidth; concurrent readers share
//     bandwidth fairly (§5.5).
//
// Progress accounting is exact piecewise integration: whenever the device's
// per-task rate changes, every in-flight task re-computes its remaining work
// and reschedules its completion alarm.
package device

import (
	"context"
	"sync"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

// Device is a shared-capacity resource.
type Device struct {
	rt   simtime.Runtime
	name string
	cap  float64

	mu      sync.Mutex
	entries map[*entry]struct{}
	rate    float64 // current per-task progress rate

	// pool recycles entries (and their selectors) across Run calls: the
	// occupancy fast path allocates nothing in steady state.
	pool sync.Pool

	// busyIntegral accumulates ∫ min(k, cap) dt in unit-seconds: the total
	// amount of work the device has performed. Utilization over a window is
	// Δbusy / (cap · Δt).
	busyIntegral float64
	lastAccount  time.Duration
}

type entry struct {
	remaining float64 // seconds of work at full rate
	rate      float64 // rate while parked
	parkedAt  time.Duration
	sel       *simtime.Selector
}

// New returns a device with the given parallel capacity (must be positive).
func New(rt simtime.Runtime, name string, capacity float64) *Device {
	if capacity <= 0 {
		panic("device: capacity must be positive")
	}
	return &Device{
		rt: rt, name: name, cap: capacity,
		entries: make(map[*entry]struct{}),
		rate:    1, lastAccount: rt.Now(),
	}
}

// Name returns the device's diagnostic name.
func (d *Device) Name() string { return d.name }

// Capacity returns the device's parallel capacity.
func (d *Device) Capacity() float64 { return d.cap }

// Active returns the number of in-flight tasks.
func (d *Device) Active() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// Run occupies the device for `work` of full-speed compute time. Under
// contention the wall (virtual) time taken is proportionally longer. It
// returns ctx.Err() if cancelled mid-run (best-effort under the virtual
// runtime; see simtime docs).
func (d *Device) Run(ctx context.Context, work time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if work <= 0 {
		return nil
	}
	e, _ := d.pool.Get().(*entry)
	if e == nil {
		e = &entry{sel: simtime.NewSelector(d.rt)}
	}
	e.remaining = work.Seconds()
	d.mu.Lock()
	d.accountLocked()
	d.entries[e] = struct{}{}
	d.rebalanceLocked()

	for {
		e.rate = d.rate
		e.parkedAt = d.rt.Now()
		eta := time.Duration(e.remaining/e.rate*float64(time.Second)) + time.Nanosecond
		// Reset under d.mu: rebalance wakes (TryWake) are attributed to this
		// cycle from here on. The deadline park replaces the old per-park
		// alarm goroutine; rate changes still wake the task early.
		e.sel.Reset()
		d.mu.Unlock()

		_, err := e.sel.Wait(ctx, eta)
		d.mu.Lock()
		now := d.rt.Now()
		e.remaining -= (now - e.parkedAt).Seconds() * e.rate
		if err != nil || e.remaining <= 1e-9 {
			d.accountLocked()
			delete(d.entries, e)
			d.rebalanceLocked()
			d.mu.Unlock()
			d.pool.Put(e)
			return err
		}
		// Deadline recomputation or rate-change wake: loop with updated
		// remaining work.
	}
}

// rebalanceLocked recomputes the shared rate after a membership change and
// wakes in-flight tasks if their rate changed.
func (d *Device) rebalanceLocked() {
	k := len(d.entries)
	newRate := 1.0
	if float64(k) > d.cap {
		newRate = d.cap / float64(k)
	}
	if newRate == d.rate {
		return
	}
	d.rate = newRate
	for e := range d.entries {
		e.sel.TryWake(0)
	}
}

// accountLocked integrates busy time up to now.
func (d *Device) accountLocked() {
	now := d.rt.Now()
	k := float64(len(d.entries))
	if k > d.cap {
		k = d.cap
	}
	d.busyIntegral += k * (now - d.lastAccount).Seconds()
	d.lastAccount = now
}

// BusySeconds returns the cumulative full-speed work performed, in
// unit-seconds. Utilization over a window is Δbusy / (capacity · Δt).
func (d *Device) BusySeconds() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.accountLocked()
	return d.busyIntegral
}

// UtilizationGauge returns a sampling function computing utilization in
// [0,1] over the window since the previous call. Suitable for a metrics
// collector. Not safe for use from multiple goroutines.
func (d *Device) UtilizationGauge() func() float64 {
	lastBusy := d.BusySeconds()
	lastT := d.rt.Now()
	return func() float64 {
		busy := d.BusySeconds()
		now := d.rt.Now()
		dt := (now - lastT).Seconds()
		var u float64
		if dt > 0 {
			u = (busy - lastBusy) / (d.cap * dt)
		}
		lastBusy, lastT = busy, now
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		return u
	}
}
