// Package device models shared-capacity hardware: CPU core pools, GPU
// compute (with concurrent streams), and disk bandwidth.
//
// A Device has a capacity C of parallel units. k concurrent tasks each
// progress at rate min(1, C/k): with k ≤ C every task runs at full speed;
// beyond that the device is fair-shared. This single abstraction covers the
// three substrates the paper's evaluation depends on:
//
//   - CPU pool: C = number of cores; oversubscribed preprocessing workers
//     slow each other down (what MinatoLoader's worker scheduler must avoid).
//   - GPU: C slightly above 1 models concurrent CUDA streams — DALI's
//     GPU-side preprocessing overlaps training imperfectly, reproducing the
//     resource contention of §3.5 (Takeaway 5).
//   - Disk: C = 1, task work = bytes/bandwidth; concurrent readers share
//     bandwidth fairly (§5.5).
//
// Progress accounting is exact piecewise integration over a shared progress
// integral (see Device): rate changes are integrated once, device-wide, and
// only the next-to-finish task keeps a completion alarm armed.
package device

import (
	"container/heap"
	"context"
	"sync"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/trace"
)

// Device is a shared-capacity resource.
//
// Progress is tracked with a shared integral (generalized processor
// sharing): every in-flight task advances at the common rate min(1, C/k),
// so a task entering with `work` seconds of compute completes when the
// device's progress integral reaches entry-progress + work. Completion
// order is therefore the order of completion targets — only the task with
// the earliest target needs a kernel timer; everyone else parks
// deadline-free and is woken when it becomes the front or the device
// empties toward it. A membership change (a task entering or leaving)
// costs O(log k) heap work and at most two wakes, where the previous
// per-entry accounting broadcast a wake to all k occupants on every rate
// change — quadratic exactly when a multi-tenant cold rush piles hundreds
// of readers onto a parallelism-4 disk.
type Device struct {
	rt   simtime.Runtime
	name string
	cap  float64

	mu       sync.Mutex
	entries  entryHeap // min-heap by completion target
	rate     float64   // current per-task progress rate
	progress float64   // ∫ rate dt, in full-speed seconds, as of lastT
	lastT    time.Duration

	// Both integrals are anchored and recomputed analytically, never
	// accumulated per wake segment: progress(t) = anchorP + rate·(t−anchorPT).
	// Re-anchoring is DEFERRED to the next advance across real elapsed time:
	// membership events at one instant only update d.rate (and bump the
	// epoch when its value moves), and advanceLocked settles the anchor at
	// lastT before integrating past it. Deferral is what makes the integrals
	// order-independent within an instant: an enter and an exit coinciding
	// at time T leave the same settled rate no matter which the kernel
	// processes first, so the anchor state — and the float rounding of every
	// later completion stamp — is a pure function of the settled event
	// history. (Re-anchoring eagerly per change nets "moved twice" on one
	// order and "never moved" on the other for a transient 1 → C/(C+1) → 1
	// blip, and ns-scale rounding then depends on same-instant scheduling.)
	// Completion instants are stamped from the settled anchor — or, while
	// a change awaits settlement, from (lastT, progress), which is exactly
	// where the anchor will settle — so re-stamping is bitwise idempotent:
	// a spurious wake, or an early fire from a transiently-stamped
	// deadline, recomputes the identical instant no matter when it runs.
	anchorP    float64
	anchorPT   time.Duration
	anchorRate float64 // rate in effect since anchorPT
	anchorB    float64
	anchorBT   time.Duration
	anchorK    float64 // effective occupancy min(k, cap) since anchorBT
	rateEpoch  uint64

	// pool recycles entries (and their selectors) across Run calls: the
	// occupancy fast path allocates nothing in steady state.
	pool sync.Pool

	// busyIntegral accumulates ∫ min(k, cap) dt in unit-seconds: the total
	// amount of work the device has performed, as of lastT. Utilization
	// over a window is Δbusy / (cap · Δt).
	busyIntegral float64

	// tr, when set, records one StageDeviceRun span per completed Run —
	// occupancy as wall (virtual) intervals, work as Detail. Set before
	// tasks arrive; never cleared.
	tr       *trace.Recorder
	trTenant int32
	trNode   int32
	trKey    int64
}

// invalidEpoch marks an entry with no stamped completion instant.
const invalidEpoch = ^uint64(0)

type entry struct {
	target float64       // progress value at which this task completes
	finish time.Duration // absolute completion instant, per rate epoch
	epoch  uint64        // rate epoch finish was stamped under
	idx    int           // heap index, -1 when not in the heap
	// timed records that the task parked with its own completion timer —
	// every occupant of an uncontended device does, so the kernel's
	// same-deadline chaining batches them and no wake traffic is needed.
	// Under contention only the front is timed and later finishers ride
	// the completion cascade.
	timed bool
	sel   *simtime.Selector
}

// New returns a device with the given parallel capacity (must be positive).
func New(rt simtime.Runtime, name string, capacity float64) *Device {
	if capacity <= 0 {
		panic("device: capacity must be positive")
	}
	return &Device{
		rt: rt, name: name, cap: capacity,
		rate: 1, anchorRate: 1,
		lastT: rt.Now(), anchorPT: rt.Now(), anchorBT: rt.Now(),
	}
}

// Name returns the device's diagnostic name.
func (d *Device) Name() string { return d.name }

// EnableTrace attaches a span recorder: every completed Run records a
// StageDeviceRun span covering its occupancy interval, with the requested
// full-speed work in Detail. Call before tasks start; the identity triple
// (tenant, node, key) distinguishes devices sharing one recorder.
func (d *Device) EnableTrace(r *trace.Recorder, tenant, node int32, key int64) {
	d.mu.Lock()
	d.tr, d.trTenant, d.trNode, d.trKey = r, tenant, node, key
	d.mu.Unlock()
}

// Capacity returns the device's parallel capacity.
func (d *Device) Capacity() float64 { return d.cap }

// Active returns the number of in-flight tasks.
func (d *Device) Active() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// Run occupies the device for `work` of full-speed compute time. Under
// contention the wall (virtual) time taken is proportionally longer. It
// returns ctx.Err() if cancelled mid-run (best-effort under the virtual
// runtime; see simtime docs).
func (d *Device) Run(ctx context.Context, work time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if work <= 0 {
		return nil
	}
	t0 := d.rt.Now()
	e, _ := d.pool.Get().(*entry)
	if e == nil {
		e = &entry{sel: simtime.NewSelector(d.rt)}
	}
	d.mu.Lock()
	tr, trT, trN, trK := d.tr, d.trTenant, d.trNode, d.trKey
	d.advanceLocked()
	e.target = d.progress + work.Seconds()
	e.epoch = invalidEpoch
	heap.Push(&d.entries, e)
	// Entering needs no wake: this task arms its own deadline below, and a
	// rate drop only makes the current front's armed deadline early — it
	// will fire, re-integrate, and re-park for the remainder, which is
	// exact either way.
	d.setRateLocked()

	for {
		if d.progress >= e.target-1e-9 {
			d.exitLocked(e)
			d.pool.Put(e)
			tr.Record(trace.Span{Start: t0, End: d.rt.Now(), Stage: trace.StageDeviceRun,
				Tenant: trT, Node: trN, Key: trK, Detail: int64(work)})
			return nil
		}
		var deadline time.Duration
		if d.rate == 1 || d.entries[0] == e {
			// Uncontended tasks and the front hold exact completion
			// timers, armed at the absolute finish instant stamped once
			// per rate epoch from the epoch's anchor — so the instant (and
			// its float rounding) is the same no matter when or how often
			// the entry parks. A rate drop while parked only makes an
			// armed deadline early — the task re-integrates and re-parks,
			// which stays exact; a rate rise is handled by exitLocked
			// waking the timed entries.
			if e.epoch != d.rateEpoch {
				if d.rate == d.anchorRate {
					// Settled: stamp from the anchor, so the instant (and
					// its rounding) is independent of when the entry parks
					// or re-parks.
					e.finish = d.anchorPT + time.Duration((e.target-d.anchorP)/d.rate*float64(time.Second)) + time.Nanosecond
				} else {
					// A rate change at lastT awaits settlement: progress is
					// exact as of lastT and the new rate applies beyond it.
					// Settlement moves the anchor to exactly (progress,
					// lastT), so this stamp and later anchor-based ones
					// agree bit-for-bit.
					e.finish = d.lastT + time.Duration((e.target-d.progress)/d.rate*float64(time.Second)) + time.Nanosecond
				}
				e.epoch = d.rateEpoch
			}
			deadline = e.finish - d.lastT
			if deadline <= 0 {
				deadline = time.Nanosecond
			}
			e.timed = true
		} else {
			e.timed = false
		}
		// Reset under d.mu: membership wakes (TryWake) are attributed to
		// this cycle from here on.
		e.sel.Reset()
		d.mu.Unlock()

		_, err := e.sel.Wait(ctx, deadline)
		d.mu.Lock()
		d.advanceLocked()
		if err != nil {
			d.exitLocked(e)
			d.pool.Put(e)
			return err
		}
		// Completion, promotion to the front, or a rate change: loop and
		// re-evaluate.
	}
}

// exitLocked removes e from the heap and wakes whoever's deadline basis
// changed. A rate rise invalidates every armed (timed) deadline — they are
// now too late — so the timed entries are woken to re-arm; that only
// happens while the device is draining out of contention, and only entries
// that armed before contention are timed. Otherwise, the only task that
// can need attention is the new front after the old front left, and only
// when it parked deadline-free. The common uncontended exit — everyone
// holding an exact timer at an unchanged rate — disturbs nobody. Unlocks
// d.mu.
func (d *Device) exitLocked(e *entry) {
	wasFront := len(d.entries) > 0 && d.entries[0] == e
	if e.idx >= 0 {
		heap.Remove(&d.entries, e.idx)
	}
	oldRate := d.rate
	d.setRateLocked()
	switch {
	case len(d.entries) == 0:
	case d.rate > oldRate:
		for _, en := range d.entries {
			if en.timed {
				en.sel.TryWake(0)
			}
		}
		if front := d.entries[0]; !front.timed {
			front.sel.TryWake(0)
		}
	case wasFront:
		if front := d.entries[0]; !front.timed {
			front.sel.TryWake(0)
		}
	}
	d.mu.Unlock()
}

// setRateLocked recomputes the shared per-task rate for the current
// occupancy. It mutates only the rate (and the epoch, when the value
// moved): anchor settlement is deferred to the next advance across real
// elapsed time, so same-instant event ordering cannot perturb the
// integrals — see the field comment. Callers must have run advanceLocked
// in the same critical section so progress and busy time are current.
func (d *Device) setRateLocked() {
	r := 1.0
	if k := len(d.entries); float64(k) > d.cap {
		r = d.cap / float64(k)
	}
	if r != d.rate {
		d.rate = r
		d.rateEpoch++
	}
}

// advanceLocked brings progress and busy time up to now, analytically from
// the anchors. Rate changes made at lastT are settled first — the anchors
// move to lastT exactly when a differing rate is about to apply across
// (lastT, now], using only settled values, never transient mid-instant
// ones.
func (d *Device) advanceLocked() {
	now := d.rt.Now()
	if now <= d.lastT {
		return
	}
	if d.rate != d.anchorRate {
		// progress already equals anchorP + anchorRate·(lastT − anchorPT):
		// the previous advance computed exactly that expression.
		d.anchorP = d.progress
		d.anchorPT = d.lastT
		d.anchorRate = d.rate
	}
	k := float64(len(d.entries))
	if k > d.cap {
		k = d.cap
	}
	if k != d.anchorK {
		d.anchorB = d.busyIntegral
		d.anchorBT = d.lastT
		d.anchorK = k
	}
	d.progress = d.anchorP + d.anchorRate*(now-d.anchorPT).Seconds()
	d.busyIntegral = d.anchorB + d.anchorK*(now-d.anchorBT).Seconds()
	d.lastT = now
}

// accountLocked integrates busy time up to now (progress included, so the
// two integrals share one clock).
func (d *Device) accountLocked() { d.advanceLocked() }

// entryHeap is a min-heap of entries by completion target.
type entryHeap []*entry

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return h[i].target < h[j].target }
func (h entryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx, h[j].idx = i, j }
func (h *entryHeap) Push(x any)        { e := x.(*entry); e.idx = len(*h); *h = append(*h, e) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// BusySeconds returns the cumulative full-speed work performed, in
// unit-seconds. Utilization over a window is Δbusy / (capacity · Δt).
func (d *Device) BusySeconds() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.accountLocked()
	return d.busyIntegral
}

// UtilizationGauge returns a sampling function computing utilization in
// [0,1] over the window since the previous call. Suitable for a metrics
// collector. Not safe for use from multiple goroutines.
func (d *Device) UtilizationGauge() func() float64 {
	lastBusy := d.BusySeconds()
	lastT := d.rt.Now()
	return func() float64 {
		busy := d.BusySeconds()
		now := d.rt.Now()
		dt := (now - lastT).Seconds()
		var u float64
		if dt > 0 {
			u = (busy - lastBusy) / (d.cap * dt)
		}
		lastBusy, lastT = busy, now
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		return u
	}
}
