// Package device models shared-capacity hardware: CPU core pools, GPU
// compute (with concurrent streams), and disk bandwidth.
//
// A Device has a capacity C of parallel units. k concurrent tasks each
// progress at rate min(1, C/k): with k ≤ C every task runs at full speed;
// beyond that the device is fair-shared. This single abstraction covers the
// three substrates the paper's evaluation depends on:
//
//   - CPU pool: C = number of cores; oversubscribed preprocessing workers
//     slow each other down (what MinatoLoader's worker scheduler must avoid).
//   - GPU: C slightly above 1 models concurrent CUDA streams — DALI's
//     GPU-side preprocessing overlaps training imperfectly, reproducing the
//     resource contention of §3.5 (Takeaway 5).
//   - Disk: C = 1, task work = bytes/bandwidth; concurrent readers share
//     bandwidth fairly (§5.5).
//
// Progress accounting is exact piecewise integration over a shared progress
// integral (see Device): rate changes are integrated once, device-wide, and
// only the next-to-finish task keeps a completion alarm armed.
package device

import (
	"container/heap"
	"context"
	"sync"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

// Device is a shared-capacity resource.
//
// Progress is tracked with a shared integral (generalized processor
// sharing): every in-flight task advances at the common rate min(1, C/k),
// so a task entering with `work` seconds of compute completes when the
// device's progress integral reaches entry-progress + work. Completion
// order is therefore the order of completion targets — only the task with
// the earliest target needs a kernel timer; everyone else parks
// deadline-free and is woken when it becomes the front or the device
// empties toward it. A membership change (a task entering or leaving)
// costs O(log k) heap work and at most two wakes, where the previous
// per-entry accounting broadcast a wake to all k occupants on every rate
// change — quadratic exactly when a multi-tenant cold rush piles hundreds
// of readers onto a parallelism-4 disk.
type Device struct {
	rt   simtime.Runtime
	name string
	cap  float64

	mu       sync.Mutex
	entries  entryHeap // min-heap by completion target
	rate     float64   // current per-task progress rate
	progress float64   // ∫ rate dt, in full-speed seconds
	lastT    time.Duration

	// pool recycles entries (and their selectors) across Run calls: the
	// occupancy fast path allocates nothing in steady state.
	pool sync.Pool

	// busyIntegral accumulates ∫ min(k, cap) dt in unit-seconds: the total
	// amount of work the device has performed. Utilization over a window is
	// Δbusy / (cap · Δt).
	busyIntegral float64
	lastAccount  time.Duration
}

type entry struct {
	target float64 // progress value at which this task completes
	idx    int     // heap index, -1 when not in the heap
	// timed records that the task parked with its own completion timer —
	// every occupant of an uncontended device does, so the kernel's
	// same-deadline chaining batches them and no wake traffic is needed.
	// Under contention only the front is timed and later finishers ride
	// the completion cascade.
	timed bool
	sel   *simtime.Selector
}

// New returns a device with the given parallel capacity (must be positive).
func New(rt simtime.Runtime, name string, capacity float64) *Device {
	if capacity <= 0 {
		panic("device: capacity must be positive")
	}
	return &Device{
		rt: rt, name: name, cap: capacity,
		rate: 1, lastT: rt.Now(), lastAccount: rt.Now(),
	}
}

// Name returns the device's diagnostic name.
func (d *Device) Name() string { return d.name }

// Capacity returns the device's parallel capacity.
func (d *Device) Capacity() float64 { return d.cap }

// Active returns the number of in-flight tasks.
func (d *Device) Active() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// Run occupies the device for `work` of full-speed compute time. Under
// contention the wall (virtual) time taken is proportionally longer. It
// returns ctx.Err() if cancelled mid-run (best-effort under the virtual
// runtime; see simtime docs).
func (d *Device) Run(ctx context.Context, work time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if work <= 0 {
		return nil
	}
	e, _ := d.pool.Get().(*entry)
	if e == nil {
		e = &entry{sel: simtime.NewSelector(d.rt)}
	}
	d.mu.Lock()
	d.advanceLocked()
	e.target = d.progress + work.Seconds()
	heap.Push(&d.entries, e)
	// Entering needs no wake: this task arms its own deadline below, and a
	// rate drop only makes the current front's armed deadline early — it
	// will fire, re-integrate, and re-park for the remainder, which is
	// exact either way.
	d.setRateLocked()

	for {
		if d.progress >= e.target-1e-9 {
			d.exitLocked(e)
			d.pool.Put(e)
			return nil
		}
		var deadline time.Duration
		if d.rate == 1 || d.entries[0] == e {
			// Uncontended tasks and the front hold exact completion
			// timers. A rate drop while parked only makes an armed
			// deadline early — the task re-integrates and re-parks, which
			// stays exact; a rate rise is handled by exitLocked waking the
			// timed entries.
			deadline = time.Duration((e.target-d.progress)/d.rate*float64(time.Second)) + time.Nanosecond
			e.timed = true
		} else {
			e.timed = false
		}
		// Reset under d.mu: membership wakes (TryWake) are attributed to
		// this cycle from here on.
		e.sel.Reset()
		d.mu.Unlock()

		_, err := e.sel.Wait(ctx, deadline)
		d.mu.Lock()
		d.advanceLocked()
		if err != nil {
			d.exitLocked(e)
			d.pool.Put(e)
			return err
		}
		// Completion, promotion to the front, or a rate change: loop and
		// re-evaluate.
	}
}

// exitLocked removes e from the heap and wakes whoever's deadline basis
// changed. A rate rise invalidates every armed (timed) deadline — they are
// now too late — so the timed entries are woken to re-arm; that only
// happens while the device is draining out of contention, and only entries
// that armed before contention are timed. Otherwise, the only task that
// can need attention is the new front after the old front left, and only
// when it parked deadline-free. The common uncontended exit — everyone
// holding an exact timer at an unchanged rate — disturbs nobody. Unlocks
// d.mu.
func (d *Device) exitLocked(e *entry) {
	wasFront := len(d.entries) > 0 && d.entries[0] == e
	if e.idx >= 0 {
		heap.Remove(&d.entries, e.idx)
	}
	oldRate := d.rate
	d.setRateLocked()
	switch {
	case len(d.entries) == 0:
	case d.rate > oldRate:
		for _, en := range d.entries {
			if en.timed {
				en.sel.TryWake(0)
			}
		}
		if front := d.entries[0]; !front.timed {
			front.sel.TryWake(0)
		}
	case wasFront:
		if front := d.entries[0]; !front.timed {
			front.sel.TryWake(0)
		}
	}
	d.mu.Unlock()
}

// setRateLocked recomputes the shared per-task rate for the current
// occupancy.
func (d *Device) setRateLocked() {
	k := len(d.entries)
	d.rate = 1.0
	if float64(k) > d.cap {
		d.rate = d.cap / float64(k)
	}
}

// advanceLocked integrates progress and busy time up to now.
func (d *Device) advanceLocked() {
	now := d.rt.Now()
	if dt := (now - d.lastT).Seconds(); dt > 0 {
		d.progress += d.rate * dt
	}
	d.lastT = now
	k := float64(len(d.entries))
	if k > d.cap {
		k = d.cap
	}
	d.busyIntegral += k * (now - d.lastAccount).Seconds()
	d.lastAccount = now
}

// accountLocked integrates busy time up to now (progress included, so the
// two integrals share one clock).
func (d *Device) accountLocked() { d.advanceLocked() }

// entryHeap is a min-heap of entries by completion target.
type entryHeap []*entry

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return h[i].target < h[j].target }
func (h entryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx, h[j].idx = i, j }
func (h *entryHeap) Push(x any)        { e := x.(*entry); e.idx = len(*h); *h = append(*h, e) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// BusySeconds returns the cumulative full-speed work performed, in
// unit-seconds. Utilization over a window is Δbusy / (capacity · Δt).
func (d *Device) BusySeconds() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.accountLocked()
	return d.busyIntegral
}

// UtilizationGauge returns a sampling function computing utilization in
// [0,1] over the window since the previous call. Suitable for a metrics
// collector. Not safe for use from multiple goroutines.
func (d *Device) UtilizationGauge() func() float64 {
	lastBusy := d.BusySeconds()
	lastT := d.rt.Now()
	return func() float64 {
		busy := d.BusySeconds()
		now := d.rt.Now()
		dt := (now - lastT).Seconds()
		var u float64
		if dt > 0 {
			u = (busy - lastBusy) / (d.cap * dt)
		}
		lastBusy, lastT = busy, now
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		return u
	}
}
