package device

import (
	"context"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

func BenchmarkRunUncontended(b *testing.B) {
	k := simtime.NewVirtual()
	b.ReportAllocs()
	b.ResetTimer()
	k.Run(func() {
		d := New(k, "cpu", 8)
		for i := 0; i < b.N; i++ {
			if err := d.Run(context.Background(), time.Millisecond); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRunContended(b *testing.B) {
	// 16 tasks on 4 capacity: every membership change rebalances.
	k := simtime.NewVirtual()
	b.ReportAllocs()
	b.ResetTimer()
	k.Run(func() {
		d := New(k, "cpu", 4)
		wg := simtime.NewWaitGroup(k)
		per := b.N/16 + 1
		for w := 0; w < 16; w++ {
			wg.Go("task", func() {
				for i := 0; i < per; i++ {
					if err := d.Run(context.Background(), time.Millisecond); err != nil {
						return
					}
				}
			})
		}
		_ = wg.Wait(context.Background())
	})
}
