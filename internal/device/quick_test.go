package device

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/minatoloader/minato/internal/simtime"
)

// Property: total work performed equals total work submitted, and no task
// finishes before work/1-speed time, regardless of arrival pattern and
// capacity.
func TestQuickWorkConservation(t *testing.T) {
	type task struct {
		StartMs uint16 // arrival offset
		WorkMs  uint16 // work amount
	}
	f := func(capRaw uint8, tasksRaw []task) bool {
		capacity := float64(capRaw%7) + 0.5 // 0.5 .. 6.5
		tasks := tasksRaw
		if len(tasks) > 12 {
			tasks = tasks[:12]
		}
		if len(tasks) == 0 {
			return true
		}
		k := simtime.NewVirtual()
		ok := true
		var wantWork float64
		k.Run(func() {
			d := New(k, "dev", capacity)
			wg := simtime.NewWaitGroup(k)
			for _, tk := range tasks {
				tk := tk
				work := time.Duration(tk.WorkMs%500+1) * time.Millisecond
				wantWork += work.Seconds()
				start := time.Duration(tk.StartMs%200) * time.Millisecond
				wg.Go("task", func() {
					_ = k.Sleep(context.Background(), start)
					began := k.Now()
					if err := d.Run(context.Background(), work); err != nil {
						ok = false
						return
					}
					// A task can never run faster than full speed.
					if elapsed := k.Now() - began; elapsed < work-time.Millisecond {
						ok = false
					}
				})
			}
			_ = wg.Wait(context.Background())
			if busy := d.BusySeconds(); math.Abs(busy-wantWork) > 0.02*wantWork+0.001 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: aggregate completion time is bounded below by total work /
// capacity (the device cannot exceed its capacity).
func TestQuickCapacityBound(t *testing.T) {
	f := func(nRaw, workRaw uint8) bool {
		n := int(nRaw%10) + 1
		work := time.Duration(workRaw%100+1) * time.Millisecond
		capacity := 2.0
		k := simtime.NewVirtual()
		ok := true
		k.Run(func() {
			d := New(k, "dev", capacity)
			wg := simtime.NewWaitGroup(k)
			start := k.Now()
			for i := 0; i < n; i++ {
				wg.Go("task", func() {
					_ = d.Run(context.Background(), work)
				})
			}
			_ = wg.Wait(context.Background())
			elapsed := (k.Now() - start).Seconds()
			lower := float64(n) * work.Seconds() / capacity
			if n <= 2 {
				lower = work.Seconds()
			}
			if elapsed < lower-0.001 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
