package minato

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestQuickstartRunsEndToEnd asserts that the quickstart example — the v2
// API's living documentation — builds and runs to completion on the
// virtual runtime.
func TestQuickstartRunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-run smoke test in -short mode")
	}
	out, err := exec.Command("go", "run", "./examples/quickstart").CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./examples/quickstart: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "all 32 batches delivered") {
		t.Fatalf("quickstart did not deliver its batch budget:\n%s", out)
	}
}

// TestMultitenantRunsEndToEnd asserts the multitenant example — 16
// concurrent sessions on one Cluster — runs to completion and verifies its
// own determinism check (two runs, bit-identical per-tenant reports).
func TestMultitenantRunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-run smoke test in -short mode")
	}
	out, err := exec.Command("go", "run", "./examples/multitenant").CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./examples/multitenant: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "bit-identical (deterministic)") {
		t.Fatalf("multitenant determinism check failed:\n%s", out)
	}
}

// TestDisaggregatedRunsEndToEnd asserts the disaggregated example — two
// preprocessing servers feeding four remote clients (one hedged) over the
// service fabric — runs to completion and verifies its own determinism
// check (two runs, bit-identical client/server/fabric fingerprints).
func TestDisaggregatedRunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-run smoke test in -short mode")
	}
	out, err := exec.Command("go", "run", "./examples/disaggregated").CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./examples/disaggregated: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "bit-identical (deterministic)") {
		t.Fatalf("disaggregated determinism check failed:\n%s", out)
	}
	if !strings.Contains(string(out), "unauthorized dial rejected") {
		t.Fatalf("disaggregated auth-rejection line missing:\n%s", out)
	}
}

// TestMultinodeRunsEndToEnd asserts the multinode example — a 4-node
// straggler cluster over the netsim fabric — runs to completion and
// verifies its own determinism checks (two runs with bit-identical
// reports, and a traced rerun pair with bit-identical Chrome exports).
func TestMultinodeRunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-run smoke test in -short mode")
	}
	traceOut := filepath.Join(t.TempDir(), "trace.json")
	out, err := exec.Command("go", "run", "./examples/multinode", "-out", traceOut).CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./examples/multinode: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "bit-identical (deterministic)") {
		t.Fatalf("multinode determinism check failed:\n%s", out)
	}
	if !strings.Contains(string(out), "speedup under a straggler") {
		t.Fatalf("multinode speedup line missing:\n%s", out)
	}
	if !strings.Contains(string(out), "bit-identical across runs") {
		t.Fatalf("multinode trace determinism line missing:\n%s", out)
	}
	if fi, err := os.Stat(traceOut); err != nil || fi.Size() == 0 {
		t.Fatalf("multinode trace export missing or empty: %v", err)
	}
}
