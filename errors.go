package minato

import (
	"errors"

	"github.com/minatoloader/minato/internal/chaos"
	"github.com/minatoloader/minato/internal/service"
)

// Error taxonomy. Every error the public API returns for misuse is one of
// the following, so callers can branch without string matching:
//
//   - *ConfigError — an option conflict or invalid option value at Open,
//     Train, TrainWorkload, NewCluster, Cluster.Open, or Cluster.Train.
//     Matchable with errors.As; Option names the offending With* option.
//   - ErrSessionConsumed — Batches ranged a second time. A session streams
//     its batch budget exactly once.
//   - ErrSessionClosed — Batches called after Close.
//   - ErrClusterSaturated — Cluster.Open/Train under WithMaxSessions with
//     the AdmitReject policy while every session slot is taken.
//   - ErrClusterClosed — an operation on a closed Cluster, including opens
//     that were queued (AdmitQueue) when the cluster shut down.
//   - ErrPreempted — a WithChaos script preempted the session and schedules
//     no resume: the stream/training run halts at the next step boundary.
//     Checkpoint the session and Resume it to continue warm.
//   - ErrNodeLost — a TrainMultiNode chaos script crashed the last live
//     node, leaving the cluster unable to make progress (a crash with a
//     scheduled rejoin keeps the run alive; losing everyone does not).
//   - ErrUnauthorized — a Dial presented a token a token-gated server
//     (Serve + WithToken) does not recognize.
//   - ErrQuotaExceeded — a Dial's token is at its concurrent-stream quota
//     on the server.
//   - ErrServerOverloaded — a served cluster rejected a Dial at stream
//     capacity (WithServerMaxStreams, or the backing cluster saturated);
//     WithDialRetry retries with backoff before surfacing it. Also ends a
//     remote stream whose client violates the granted send window.
//
// Runtime errors (a cancelled context, a failing loader) pass through
// unwrapped: they are the underlying error, not a member of this taxonomy.

// ConfigError reports an invalid or conflicting functional option. It is
// returned (wrapped in nothing) by every configuration entry point, so
//
//	var ce *minato.ConfigError
//	if errors.As(err, &ce) { log.Fatalf("bad %s: %s", ce.Option, ce.Reason) }
//
// distinguishes caller bugs from runtime failures.
type ConfigError struct {
	// Option is the name of the offending option ("WithBatchSize",
	// "WithHardware/WithEnv" for a conflicting pair, ...).
	Option string
	// Reason says what is wrong with it.
	Reason string
}

func (e *ConfigError) Error() string {
	return "minato: invalid " + e.Option + ": " + e.Reason
}

// ErrSessionConsumed is returned when Batches is ranged over a second
// time: a session streams its batch budget exactly once.
var ErrSessionConsumed = errors.New("minato: session batches already consumed")

// ErrSessionClosed is returned when Batches is called after Close.
var ErrSessionClosed = errors.New("minato: session closed")

// ErrClusterSaturated is returned by Cluster.Open and Cluster.Train when
// the cluster is at WithMaxSessions capacity and admission policy is
// AdmitReject (the default).
var ErrClusterSaturated = errors.New("minato: cluster saturated")

// ErrClusterClosed is returned for operations on a closed Cluster,
// including queued opens released by Close.
var ErrClusterClosed = errors.New("minato: cluster closed")

// ErrPreempted is returned when a WithChaos script preempts a session with
// no resume scheduled: Batches yields it once and ends the stream; Train
// returns it as the session error. The session's progress survives —
// Checkpoint then Resume continues against the still-warm caches.
var ErrPreempted = chaos.ErrPreempted

// ErrNodeLost is returned by TrainMultiNode when a chaos script crashes
// the last live node: a synchronous data-parallel cluster with no
// survivors cannot complete a step, so the run unwinds instead of
// spinning. Crash events that leave at least one node active are handled
// elastically and are not errors.
var ErrNodeLost = chaos.ErrNodeLost

// ErrUnauthorized is returned by Dial when a token-gated preprocessing
// server does not recognize the presented auth token (WithAuthToken).
var ErrUnauthorized = service.ErrUnauthorized

// ErrQuotaExceeded is returned by Dial when the presented token is
// already at its concurrent-stream quota (WithToken's TokenQuota).
var ErrQuotaExceeded = service.ErrQuotaExceeded

// ErrServerOverloaded is returned by Dial when the preprocessing server
// (or its backing cluster) is at stream capacity — retried with backoff
// under WithDialRetry before surfacing — and by a remote stream the
// server killed for violating its granted send window.
var ErrServerOverloaded = service.ErrServerOverloaded

// configErr builds a *ConfigError.
func configErr(option, reason string) error {
	return &ConfigError{Option: option, Reason: reason}
}
