package minato

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMultiNodeCrashRejoinScenario is the ISSUE's acceptance scenario at
// the public surface: an 8-node run with the registered "node-crash"
// scenario (node 3 crashes at t=5s, rejoins at t=8s) completes its full
// budget, measures a recovery time, and reproduces bit-identically.
func TestMultiNodeCrashRejoinScenario(t *testing.T) {
	run := func() *MultiNodeReport {
		rep, err := TrainMultiNodeWorkload(mnWorkload(15),
			WithNodes(8), WithGPUs(1), WithChaosScenario("node-crash"))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	if rep.Steps != 15 {
		t.Fatalf("steps = %d, want the full 15-round budget", rep.Steps)
	}
	if rep.PerNode[3].Downtime == 0 {
		t.Fatal("crashed node recorded no downtime")
	}
	if len(rep.Faults) != 2 {
		t.Fatalf("faults = %+v, want crash+join", rep.Faults)
	}
	if rep.Faults[0].Event.Kind != ChaosNodeCrash || rep.Faults[1].Event.Kind != ChaosNodeJoin {
		t.Fatalf("fault kinds = %v, %v", rep.Faults[0].Event, rep.Faults[1].Event)
	}
	if rep.RecoveryTime() <= 0 {
		t.Fatalf("RecoveryTime() = %v, want > 0", rep.RecoveryTime())
	}
	if rep.StepP50 <= 0 || rep.StepP99 < rep.StepP50 {
		t.Fatalf("step quantiles p50=%v p99=%v", rep.StepP50, rep.StepP99)
	}
	if rep2 := run(); !reflect.DeepEqual(rep, rep2) {
		t.Fatalf("chaos scenario not deterministic:\n%+v\n%+v", rep, rep2)
	}
}

// A composed single-machine script (disk brownout + worker stall) is
// recorded as fault windows with exact application times, and the run
// stays bit-deterministic.
func TestTrainChaosFaultWindows(t *testing.T) {
	script := ComposeChaos("mixed",
		BrownoutDisk(5*time.Second, 8, 10*time.Second),
		StallWorkers(0, 5*time.Second, 2, 5*time.Second),
	)
	run := func() *Report {
		rep, err := TrainWorkload(mnWorkload(30), WithGPUs(1), WithChaos(script))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	if rep.Batches != 30 {
		t.Fatalf("delivered %d batches under chaos, want 30", rep.Batches)
	}
	var disk, stall *FaultStat
	for i := range rep.Faults {
		switch rep.Faults[i].Event.Kind {
		case ChaosDiskDegrade:
			disk = &rep.Faults[i]
		case ChaosWorkerStall:
			stall = &rep.Faults[i]
		}
	}
	if disk == nil || stall == nil {
		t.Fatalf("faults = %+v, want disk-degrade and worker-stall windows", rep.Faults)
	}
	// Continuous events apply at exactly their scripted times.
	if disk.AppliedAt != 5*time.Second || disk.ClearedAt != 15*time.Second {
		t.Fatalf("disk window = [%v, %v], want [5s, 15s]", disk.AppliedAt, disk.ClearedAt)
	}
	if rep.StepP50 <= 0 || rep.StepP99 < rep.StepP50 {
		t.Fatalf("step quantiles p50=%v p99=%v", rep.StepP50, rep.StepP99)
	}
	if rep2 := run(); !reflect.DeepEqual(rep, rep2) {
		t.Fatal("single-machine chaos run not deterministic")
	}
	// The baseline (no chaos) is strictly faster and records no faults —
	// the injection path costs nothing when the script is empty.
	base, err := TrainWorkload(mnWorkload(30), WithGPUs(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Faults) != 0 || base.PreemptStall != 0 {
		t.Fatalf("no-chaos run carries fault state: %+v", base.Faults)
	}
	if rep.TrainTime <= base.TrainTime {
		t.Fatalf("chaotic run (%v) not slower than baseline (%v)", rep.TrainTime, base.TrainTime)
	}
}

// A preempt/resume pair parks the consumers for the window, attributes the
// stall, and measures recovery (resume to the next delivered batch).
func TestTrainPreemptResume(t *testing.T) {
	base, err := TrainWorkload(mnWorkload(20), WithGPUs(1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := TrainWorkload(mnWorkload(20), WithGPUs(1),
		WithChaos(PreemptFor(5*time.Second, 4*time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != base.Batches {
		t.Fatalf("preempted run delivered %d batches, baseline %d", rep.Batches, base.Batches)
	}
	if rep.PreemptStall <= 0 {
		t.Fatal("no preemption stall attributed")
	}
	if rep.RecoveryTime() <= 0 {
		t.Fatalf("RecoveryTime() = %v, want > 0 after resume", rep.RecoveryTime())
	}
	// The 4-second pause stretches the run by at least most of its window.
	if rep.TrainTime < base.TrainTime+3*time.Second {
		t.Fatalf("preempted run (%v) not clearly slower than baseline (%v)", rep.TrainTime, base.TrainTime)
	}
}

// A terminal preemption (no resume scheduled) ends the run with
// ErrPreempted.
func TestTrainTerminalPreempt(t *testing.T) {
	_, err := TrainWorkload(mnWorkload(20), WithGPUs(1),
		WithChaos(PreemptFor(5*time.Second, 0)))
	if !errors.Is(err, ErrPreempted) {
		t.Fatalf("err = %v, want ErrPreempted", err)
	}
}

// TestCheckpointResumeContinuesExactly drives the full preempt → checkpoint
// → restore cycle through the streaming API: a terminally preempted session
// ends with ErrPreempted mid-budget, its checkpoint records exact
// epoch/step progress, and the resumed session delivers precisely the
// remaining draws — the two runs' sample sequences concatenate to the
// uninterrupted run's, and the restore records a measured recovery time.
func TestCheckpointResumeContinuesExactly(t *testing.T) {
	const total, batch = 40, 8
	open := func(opts ...Option) *Session {
		t.Helper()
		all := append([]Option{
			WithPipeline(flatPipeline(2 * time.Millisecond)),
			WithBatchSize(batch),
			WithIterations(total),
			WithLoader("pytorch"), // strict delivery order: sample-exact restore
		}, opts...)
		sess, err := Open(sessionDataset{n: 256}, all...)
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}

	// The uninterrupted run's sample order is the reference.
	var want []int64
	full := open()
	for b, err := range full.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range b.Samples {
			want = append(want, s.OriginalOrder)
		}
	}
	if _, err := full.Close(); err != nil {
		t.Fatal(err)
	}

	// Preempt terminally mid-stream.
	sess := open(WithChaos(PreemptFor(40*time.Millisecond, 0)))
	var got []int64
	var streamErr error
	n1 := 0
	for b, err := range sess.Batches(context.Background()) {
		if err != nil {
			streamErr = err
			break
		}
		n1++
		for _, s := range b.Samples {
			got = append(got, s.OriginalOrder)
		}
	}
	if !errors.Is(streamErr, ErrPreempted) {
		t.Fatalf("stream error = %v, want ErrPreempted", streamErr)
	}
	if n1 == 0 || n1 >= total {
		t.Fatalf("preemption landed at batch %d of %d, want mid-stream", n1, total)
	}

	ck, err := sess.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Close(); !errors.Is(err, ErrPreempted) {
		t.Fatalf("Close error = %v, want ErrPreempted", err)
	}
	bpe := 256 / batch
	if ck.Batches() != n1 || ck.Remaining() != total-n1 {
		t.Fatalf("checkpoint progress %d/%d remaining, want %d/%d",
			ck.Batches(), ck.Remaining(), n1, total-n1)
	}
	if ck.Epoch() != n1/bpe || ck.Step() != n1%bpe {
		t.Fatalf("checkpoint at epoch %d step %d, want %d/%d",
			ck.Epoch(), ck.Step(), n1/bpe, n1%bpe)
	}

	resumed, err := Resume(ck)
	if err != nil {
		t.Fatal(err)
	}
	n2 := 0
	for b, err := range resumed.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		n2++
		for _, s := range b.Samples {
			got = append(got, s.OriginalOrder)
		}
	}
	if n1+n2 != total {
		t.Fatalf("batch counts %d + %d do not sum to the original budget %d", n1, n2, total)
	}
	rep, err := resumed.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecoveryTime() <= 0 {
		t.Fatalf("resumed report RecoveryTime() = %v, want > 0", rep.RecoveryTime())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored stream is not the uninterrupted stream: %d vs %d draws", len(got), len(want))
	}
	// The checkpoint is consumed.
	if _, err := Resume(ck); err == nil || !strings.Contains(err.Error(), "consumed") {
		t.Fatalf("second Resume = %v, want already-consumed error", err)
	}
}

// A checkpoint taken on a materialized-cache session restores against the
// still-warm cache: the resumed session's repeat draws hit instead of
// refilling.
func TestCheckpointKeepsCachesWarm(t *testing.T) {
	sess, err := Open(sessionDataset{n: 64},
		WithPipeline(flatPipeline(2*time.Millisecond)),
		WithBatchSize(8),
		WithEpochs(3),
		WithMaterializedCache(32<<20),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Stream past the first epoch so every sample is materialized, then
	// break out (abandoning the rest) and checkpoint.
	n := 0
	for _, err := range sess.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n == 10 {
			break
		}
	}
	ck, err := sess.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if ck.MatCache().Entries == 0 {
		t.Fatal("checkpoint sees no warm materialized entries")
	}
	resumed, err := Resume(ck)
	if err != nil {
		t.Fatal(err)
	}
	rep := drain(t, resumed)
	if rep.Batches != int64(ck.Remaining()) {
		t.Fatalf("resumed session delivered %d batches, want %d", rep.Batches, ck.Remaining())
	}
	// Epochs 2 and 3 of the resumed stream re-draw materialized samples.
	if rep.MatCacheStats.Hits == 0 {
		t.Fatal("resumed session never hit the warm cache")
	}
}

// Resume pins the stream identity: options that would change what is
// delivered are rejected, tenancy options are accepted.
func TestResumePinsStreamIdentity(t *testing.T) {
	mkCheckpoint := func() *Checkpoint {
		t.Helper()
		sess, err := Open(sessionDataset{n: 64},
			WithPipeline(flatPipeline(time.Millisecond)),
			WithBatchSize(8), WithIterations(16))
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, err := range sess.Batches(context.Background()) {
			if err != nil {
				t.Fatal(err)
			}
			if n++; n == 4 {
				break
			}
		}
		ck, err := sess.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		return ck
	}

	ck := mkCheckpoint()
	defer ck.Close()
	rejected := []struct {
		name string
		opt  Option
	}{
		{"pipeline", WithPipeline(flatPipeline(time.Millisecond))},
		{"batch size", WithBatchSize(16)},
		{"loader", WithLoader("pytorch")},
		{"iterations", WithIterations(5)},
		{"epochs", WithEpochs(2)},
		{"seed", WithSeed(2)},
	}
	for _, tc := range rejected {
		if _, err := Resume(ck, tc.opt); err == nil || !strings.Contains(err.Error(), "pinned") {
			t.Fatalf("Resume with %s = %v, want pinned-by-checkpoint error", tc.name, err)
		}
		var ce *ConfigError
		if _, err := Resume(ck, tc.opt); !errors.As(err, &ce) {
			t.Fatalf("Resume with %s is not a *ConfigError: %v", tc.name, err)
		}
	}
	if _, err := Resume(nil); err == nil || !strings.Contains(err.Error(), "nil checkpoint") {
		t.Fatalf("Resume(nil) = %v", err)
	}

	// A failed Resume does not consume the checkpoint; a successful one may
	// carry a new chaos script and priority.
	resumed, err := Resume(ck, WithPriority(2), WithChaos(BrownoutDisk(time.Millisecond, 4, time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	if rep := drain(t, resumed); rep.Batches != 12 {
		t.Fatalf("resumed %d batches, want 12", rep.Batches)
	}

	// A fully delivered session has nothing to resume.
	done, err := Open(sessionDataset{n: 64}, WithBatchSize(8), WithIterations(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range done.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
	}
	ck2, err := done.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := done.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(ck2); err == nil || !strings.Contains(err.Error(), "no remaining budget") {
		t.Fatalf("Resume of a completed session = %v, want no-remaining-budget error", err)
	}
	if err := ck2.Close(); err != nil {
		t.Fatal(err)
	}
}

// Chaos misconfiguration is a *ConfigError at configuration time, never a
// silent no-op.
func TestChaosConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
		want string
	}{
		{"unknown scenario", func() error {
			_, err := Train("speech-3s", WithIterations(5), WithChaosScenario("nope"))
			return err
		}, "unknown scenario"},
		{"script and scenario", func() error {
			_, err := Train("speech-3s", WithIterations(5),
				WithChaos(BrownoutDisk(time.Second, 2, time.Second)), WithChaosScenario("disk-brownout"))
			return err
		}, "mutually exclusive"},
		{"node events on a single machine", func() error {
			_, err := Train("speech-3s", WithIterations(5),
				WithChaos(CrashNode(0, time.Second, 2*time.Second)))
			return err
		}, "multi-node"},
		{"preempt on a multi-node job", func() error {
			_, err := TrainMultiNodeWorkload(mnWorkload(5), WithNodes(2),
				WithChaos(PreemptFor(time.Second, time.Second)))
			return err
		}, "preemption"},
		{"node outside the cluster", func() error {
			_, err := TrainMultiNodeWorkload(mnWorkload(5), WithNodes(2),
				WithChaos(CrashNode(7, time.Second, 2*time.Second)))
			return err
		}, "outside cluster"},
		{"stall without duration", func() error {
			_, err := Train("speech-3s", WithIterations(5),
				WithChaos(StallWorkers(0, time.Second, 2, 0)))
			return err
		}, "Duration"},
		{"chaos on Open", func() error {
			_, err := Open(sessionDataset{n: 64},
				WithChaos(FlapLink(0, time.Second, 2, time.Second)))
			return err
		}, "multi-node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("misconfigured chaos accepted")
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a *ConfigError", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// The scenario registry round-trips custom entries like the loader and
// workload registries do.
func TestChaosScenarioRegistry(t *testing.T) {
	RegisterChaosScenario("test-blip", func() ChaosScript {
		return BrownoutDisk(time.Second, 2, time.Second)
	})
	s, ok := ChaosScenarioByName("test-blip")
	if !ok || len(s.Events) != 2 {
		t.Fatalf("registered scenario not returned: %+v ok=%v", s, ok)
	}
	found := false
	for _, n := range ChaosScenarios() {
		if n == "test-blip" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ChaosScenarios() = %v, missing test-blip", ChaosScenarios())
	}
	for _, builtin := range []string{"node-crash", "link-flap", "disk-brownout", "worker-stall", "preempt-resume", "churn-storm"} {
		if _, ok := ChaosScenarioByName(builtin); !ok {
			t.Fatalf("built-in scenario %q not registered", builtin)
		}
	}
}

// TestClusterChaosHammer is the -race satellite: 16 tenants share one
// materialized cache while staggered chaos scripts preempt/resume their
// sessions and brown out the disk. Every tenant must still deliver its full
// budget (a stranded single-flight fill claim would park a waiter forever),
// and the cache must stay serviceable afterwards.
func TestClusterChaosHammer(t *testing.T) {
	const tenants = 16
	cl, err := NewCluster(
		WithEnv(EnvConfig{Cores: 16}),
		WithMaxSessions(tenants),
		WithMaterializedCache(32<<20),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		script := ShiftChaos(ComposeChaos(fmt.Sprintf("churn-%d", i),
			PreemptFor(2*time.Millisecond, 2*time.Millisecond),
			BrownoutDisk(time.Millisecond, 4, 3*time.Millisecond),
		), time.Duration(i)*time.Millisecond)
		sess, err := cl.Open(namedDataset{space: "chaos-hammer", n: 64},
			WithPipeline(flatPipeline(time.Millisecond)),
			WithBatchSize(8),
			WithIterations(12),
			WithChaos(script),
		)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, sess *Session) {
			defer wg.Done()
			n := 0
			for _, err := range sess.Batches(context.Background()) {
				if err != nil {
					t.Errorf("tenant %d: %v", i, err)
					return
				}
				n++
			}
			if n != 12 {
				t.Errorf("tenant %d delivered %d batches under churn, want 12", i, n)
				return
			}
			if _, err := sess.Close(); err != nil {
				t.Errorf("tenant %d close: %v", i, err)
			}
		}(i, sess)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// No stranded fill claims: a fresh tenant over the same key space must
	// stream entirely from the warm cache without blocking on a dead
	// leader's claim.
	after := drain(t, openTenant(t, cl, "chaos-hammer", 64,
		WithBatchSize(8), WithIterations(8)))
	if after.Batches != 8 {
		t.Fatalf("post-churn tenant delivered %d batches, want 8", after.Batches)
	}
	if after.MatCacheStats.Hits == 0 {
		t.Fatal("post-churn tenant found no warm cache entries")
	}
}

// Multi-straggler and multi-degraded-link topologies (the slice form)
// validate their entries and keep the single-fault sugar working.
func TestTopologyFaultSlices(t *testing.T) {
	rep, err := TrainMultiNodeWorkload(mnWorkload(8),
		WithTopology(Topology{
			Nodes:      4,
			Stragglers: []NodeFault{{Node: 1, Factor: 4}, {Node: 2, Factor: 2}},
			Degraded:   []NodeFault{{Node: 3, Factor: 8}},
		}),
		WithGPUs(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 4 || rep.Steps != 8 {
		t.Fatalf("report = %d nodes / %d steps, want 4/8", rep.Nodes, rep.Steps)
	}
	bad := []struct {
		name string
		topo Topology
		want string
	}{
		{"straggler factor", Topology{Nodes: 2, Stragglers: []NodeFault{{Node: 0, Factor: 0.5}}}, "must be ≥ 1"},
		{"straggler bounds", Topology{Nodes: 2, Stragglers: []NodeFault{{Node: 5, Factor: 2}}}, "outside cluster"},
		{"degraded factor", Topology{Nodes: 2, Degraded: []NodeFault{{Node: 0, Factor: -1}}}, "must be ≥ 1"},
		{"degraded bounds", Topology{Nodes: 2, Degraded: []NodeFault{{Node: -1, Factor: 2}}}, "outside cluster"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := TrainMultiNodeWorkload(mnWorkload(5), WithTopology(tc.topo))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}
