package minato

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWarmEpochSpeedup is the tentpole acceptance criterion: with the
// materialized cache enabled, epoch 2 of the same session skips the whole
// transform pipeline and must deliver at least 2× faster than epoch 1 in
// virtual time.
func TestWarmEpochSpeedup(t *testing.T) {
	sess, err := Open(sessionDataset{n: 256},
		WithPipeline(flatPipeline(2*time.Millisecond)),
		WithBatchSize(8),
		WithEpochs(2),
		WithMaterializedCache(64<<20),
	)
	if err != nil {
		t.Fatal(err)
	}
	perEpoch := 256 / 8
	var t1, t2 time.Duration
	n := 0
	for _, err := range sess.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		// Read the clock at the epoch boundaries, while the consumer task is
		// still live — after the iterator exhausts, session teardown lets
		// virtual time run ahead to the loader's idle timers.
		switch n {
		case perEpoch:
			t1 = sess.env.RT.Now()
		case 2 * perEpoch:
			t2 = sess.env.RT.Now()
		}
	}
	if n != 2*perEpoch {
		t.Fatalf("delivered %d batches, want %d", n, 2*perEpoch)
	}
	warm := t2 - t1
	if warm <= 0 || t1 <= 0 {
		t.Fatalf("epoch times degenerate: t1=%v warm=%v", t1, warm)
	}
	if speedup := float64(t1) / float64(warm); speedup < 2 {
		t.Fatalf("warm epoch speedup = %.2fx (cold %v, warm %v), want >= 2x",
			speedup, t1, warm)
	}

	rep, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	mc := rep.MatCacheStats
	if mc.Fills != 256 {
		t.Fatalf("fills = %d, want 256 (one per sample)", mc.Fills)
	}
	if mc.Hits != 256 {
		t.Fatalf("hits = %d, want 256 (the whole second epoch)", mc.Hits)
	}
	if mc.Saved <= 0 {
		t.Fatalf("cache reports no preprocessing saved: %+v", mc)
	}
}

// Cache-enabled runs must stay run-to-run deterministic: identical sessions
// produce bit-identical reports, including the cache counters and times.
func TestWarmDeterminism(t *testing.T) {
	run := func() Report {
		sess, err := Open(sessionDataset{n: 128},
			WithPipeline(flatPipeline(2*time.Millisecond)),
			WithBatchSize(8),
			WithEpochs(3),
			WithMaterializedCache(8<<20),
		)
		if err != nil {
			t.Fatal(err)
		}
		for _, err := range sess.Batches(context.Background()) {
			if err != nil {
				t.Fatal(err)
			}
		}
		rep, err := sess.Close()
		if err != nil {
			t.Fatal(err)
		}
		return *rep
	}
	a, b := run(), run()
	if a.TrainTime != b.TrainTime || a.Batches != b.Batches || a.Samples != b.Samples {
		t.Fatalf("warm runs diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.MatCacheStats != b.MatCacheStats {
		t.Fatalf("cache counters diverged:\n%+v\nvs\n%+v", a.MatCacheStats, b.MatCacheStats)
	}
}

// TestClusterWarmSingleFlight is the satellite acceptance test: N tenants
// warming the same shard concurrently materialize every entry exactly once
// — total fills equal unique keys, everyone else hits. Runs under -race in
// CI via the root package race job.
func TestClusterWarmSingleFlight(t *testing.T) {
	const (
		tenants = 8
		samples = 64
	)
	cl, err := NewCluster(
		WithEnv(EnvConfig{Cores: 8}),
		WithMaxSessions(tenants),
		WithMaterializedCache(32<<20),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sessions := make([]*Session, tenants)
	for i := range sessions {
		sessions[i] = openTenant(t, cl, "warm-shard", samples,
			WithEpochs(1), WithIterations(0))
	}
	var wg sync.WaitGroup
	reps := make([]*Report, tenants)
	for i, sess := range sessions {
		i, sess := i, sess
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, err := range sess.Batches(context.Background()) {
				if err != nil {
					t.Error(err)
					return
				}
			}
			rep, err := sess.Close()
			if err != nil {
				t.Error(err)
				return
			}
			reps[i] = rep
		}()
	}
	wg.Wait()

	mc := cl.Stats().MatCache
	if mc.Fills != samples {
		t.Fatalf("fills = %d, want exactly %d (one per unique key)", mc.Fills, samples)
	}
	if mc.Misses != samples {
		t.Fatalf("misses = %d, want %d (only leaders pay misses)", mc.Misses, samples)
	}
	if want := int64(tenants*samples - samples); mc.Hits != want {
		t.Fatalf("hits = %d, want %d", mc.Hits, want)
	}
	// Per-tenant attribution sums back to the cluster totals.
	var fills, hits int64
	for i, rep := range reps {
		if rep == nil {
			t.Fatalf("tenant %d produced no report", i)
		}
		fills += rep.MatCacheStats.Fills
		hits += rep.MatCacheStats.Hits
	}
	if fills != mc.Fills || hits != mc.Hits {
		t.Fatalf("tenant attribution does not sum: fills %d/%d, hits %d/%d",
			fills, mc.Fills, hits, mc.Hits)
	}
}

// A second session on the same cluster after the first finishes warms
// entirely from the materialized cache: zero fills, zero pipeline work.
func TestClusterWarmCoTenant(t *testing.T) {
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 4}), WithMaterializedCache(16<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	cold := drain(t, openTenant(t, cl, "cotenant", 64, WithEpochs(1), WithIterations(0)))
	if cold.MatCacheStats.Fills != 64 || cold.MatCacheStats.Hits != 0 {
		t.Fatalf("cold tenant: %+v", cold.MatCacheStats)
	}
	warm := drain(t, openTenant(t, cl, "cotenant", 64, WithEpochs(1), WithIterations(0)))
	if warm.MatCacheStats.Hits != 64 || warm.MatCacheStats.Fills != 0 {
		t.Fatalf("warm tenant: %+v", warm.MatCacheStats)
	}
	if warm.MatCacheStats.Saved <= 0 {
		t.Fatalf("warm tenant saved nothing: %+v", warm.MatCacheStats)
	}
	// The warm tenant never touched disk either: restores replace the read.
	if warm.DiskBytes != 0 {
		t.Fatalf("warm tenant charged %d disk bytes, want 0", warm.DiskBytes)
	}
}

// Changing the pipeline invalidates structurally: a different signature
// misses the cache instead of restoring stale tensors.
func TestWarmPipelineChangeMisses(t *testing.T) {
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 4}), WithMaterializedCache(16<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	a := drain(t, openTenant(t, cl, "sigchange", 32, WithEpochs(1), WithIterations(0)))
	if a.MatCacheStats.Fills != 32 {
		t.Fatalf("cold tenant: %+v", a.MatCacheStats)
	}
	// Same keys, semantically different pipeline.
	other := NewPipeline("flat",
		NewTransform("other-step", func(*Sample) time.Duration { return time.Millisecond }, nil))
	sess, err := cl.Open(namedDataset{space: "sigchange", n: 32},
		WithPipeline(other), WithBatchSize(8), WithEpochs(1))
	if err != nil {
		t.Fatal(err)
	}
	b := drain(t, sess)
	if b.MatCacheStats.Hits != 0 {
		t.Fatalf("changed pipeline hit stale entries: %+v", b.MatCacheStats)
	}
	if b.MatCacheStats.Fills != 32 {
		t.Fatalf("changed pipeline did not refill: %+v", b.MatCacheStats)
	}
}

// Baseline loaders ignore the materialized cache entirely — it serves the
// MinatoLoader backend only.
func TestWarmBaselineIgnoresCache(t *testing.T) {
	sess, err := Open(sessionDataset{n: 64},
		WithPipeline(flatPipeline(time.Millisecond)),
		WithBatchSize(8),
		WithEpochs(2),
		WithLoader("pytorch"),
		WithMaterializedCache(16<<20),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep := drain(t, sess)
	if rep.MatCacheStats.Fills != 0 || rep.MatCacheStats.Hits != 0 {
		t.Fatalf("baseline loader touched the materialized cache: %+v", rep.MatCacheStats)
	}
}

func TestWarmConfigErrors(t *testing.T) {
	t.Run("cluster-owned", func(t *testing.T) {
		cl, err := NewCluster(WithEnv(EnvConfig{Cores: 2}))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		_, err = cl.Open(sessionDataset{n: 64},
			WithPipeline(flatPipeline(time.Millisecond)),
			WithMaterializedCache(1<<20))
		var ce *ConfigError
		if !errors.As(err, &ce) || !strings.Contains(err.Error(), "cluster-owned") {
			t.Fatalf("err = %v, want cluster-owned ConfigError", err)
		}
	})
	t.Run("negative", func(t *testing.T) {
		_, err := Open(sessionDataset{n: 64}, WithMaterializedCache(-1))
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want ConfigError", err)
		}
	})
	t.Run("negative-cluster", func(t *testing.T) {
		_, err := NewCluster(WithMaterializedCache(-1))
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want ConfigError", err)
		}
	})
	t.Run("exceeds-page-cache", func(t *testing.T) {
		_, err := NewCluster(
			WithEnv(EnvConfig{Cores: 2, CacheBytes: 1 << 20}),
			WithMaterializedCache(2<<20))
		var ce *ConfigError
		if !errors.As(err, &ce) || !strings.Contains(err.Error(), "exceeds the page cache") {
			t.Fatalf("err = %v, want capacity ConfigError", err)
		}
	})
}

// Enabling the cache carves its capacity out of the page cache, so total
// simulated memory stays constant.
func TestWarmCapacityCarvedFromPageCache(t *testing.T) {
	cl, err := NewCluster(
		WithEnv(EnvConfig{Cores: 2, CacheBytes: 8 << 20}),
		WithMaterializedCache(3<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st := cl.Stats()
	if got := st.Cache.Capacity; got != 5<<20 {
		t.Fatalf("page cache capacity = %d, want %d", got, 5<<20)
	}
	if got := st.MatCache.Capacity; got != 3<<20 {
		t.Fatalf("materialized cache capacity = %d, want %d", got, 3<<20)
	}
}

// Live session stats expose the tenant's slice of the materialized cache.
func TestWarmSessionStatsLive(t *testing.T) {
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 4}), WithMaterializedCache(16<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sess := openTenant(t, cl, fmt.Sprintf("live-%d", 0), 64, WithEpochs(1), WithIterations(0))
	for _, err := range sess.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := sess.Stats().MatCache.Fills; got == 0 {
		t.Fatal("live session stats report no materialized fills")
	}
	rep, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Stats().MatCache.Fills; got != rep.MatCacheStats.Fills {
		t.Fatalf("frozen stats %d != report %d", got, rep.MatCacheStats.Fills)
	}
}
