package minato

import (
	"io"

	"github.com/minatoloader/minato/internal/trace"
)

// Tracing vocabulary, re-exported from internal/trace.
type (
	// TraceSpan is one recorded interval (or instant, when Start == End) of
	// the simulation: a disk read, a cache fill, a transform execution, a
	// training step, a network flow, a fault window. Every field is stamped
	// from the virtual clock, so a run's span set is bit-identical across
	// repetitions wherever the simulation itself is event-deterministic
	// (single-consumer sessions and multi-node jobs; see the internal trace
	// package's determinism notes for the exact boundary).
	TraceSpan = trace.Span
	// TraceStage classifies a TraceSpan (disk read, transform, GPU step…).
	TraceStage = trace.Stage
	// BatchPath is one delivered batch's critical-path decomposition: where
	// the wall time between two deliveries went (waiting on data, copying,
	// the GPU step, the all-reduce barrier, the network, downtime).
	BatchPath = trace.BatchPath
	// TraceAttribution aggregates BatchPaths into totals per category.
	TraceAttribution = trace.Attribution
)

// The trace stages, re-exported for filtering TraceSink.Spans. See the
// internal trace package for each stage's exact semantics.
const (
	TraceStageDiskRead    = trace.StageDiskRead
	TraceStageRemoteFetch = trace.StageRemoteFetch
	TraceStageCacheHit    = trace.StageCacheHit
	TraceStageCacheFill   = trace.StageCacheFill
	TraceStageCacheWait   = trace.StageCacheWait
	TraceStageMatHit      = trace.StageMatHit
	TraceStageMatFill     = trace.StageMatFill
	TraceStageMatWait     = trace.StageMatWait
	TraceStageTransform   = trace.StageTransform
	TraceStageQueueWait   = trace.StageQueueWait
	TraceStageAssemble    = trace.StageAssemble
	TraceStageDataWait    = trace.StageDataWait
	TraceStageCopy        = trace.StageCopy
	TraceStageGPUStep     = trace.StageGPUStep
	TraceStageBarrierWait = trace.StageBarrierWait
	TraceStageNetworkWait = trace.StageNetworkWait
	TraceStageDowntime    = trace.StageDowntime
	TraceStageDeviceRun   = trace.StageDeviceRun
	TraceStageFlow        = trace.StageFlow
	TraceStageFlowRate    = trace.StageFlowRate
	TraceStageFrame       = trace.StageFrame
	TraceStageFault       = trace.StageFault
	TraceStageFaultWindow = trace.StageFaultWindow
)

// TraceSink collects the spans of traced runs. Create one with
// NewTraceSink, attach it with WithTracing, and read it after (or during)
// the run:
//
//	sink := minato.NewTraceSink()
//	rep, err := minato.Train("speech-3s", minato.WithTracing(sink))
//	_ = sink.WriteChrome(f) // load f in Perfetto / chrome://tracing
//
// A sink is safe for concurrent use and may be shared across runs (spans
// accumulate until Reset). The zero *TraceSink (nil) is a valid "tracing
// off" sink: every method no-ops, and the instrumented hot paths skip all
// recording — the disabled fast path costs one nil check and zero
// allocations.
type TraceSink struct {
	rec *trace.Recorder
}

// NewTraceSink returns an empty sink ready for WithTracing.
func NewTraceSink() *TraceSink { return &TraceSink{rec: trace.NewRecorder()} }

// recorder unwraps the sink for the internal layers; nil-safe.
func (s *TraceSink) recorder() *trace.Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// Len returns how many spans the sink holds.
func (s *TraceSink) Len() int { return s.recorder().Len() }

// Spans returns the recorded spans in canonical order (sorted by start
// time, then end, stage, tenant, node, key, sequence). The slice is a
// snapshot: later recording does not disturb it.
func (s *TraceSink) Spans() []TraceSpan { return s.recorder().Snapshot() }

// CriticalPath walks the recorded step spans into per-batch journey
// decompositions — one BatchPath per delivered batch (and per crashed-node
// proxy round on elastic multi-node runs), in canonical order.
func (s *TraceSink) CriticalPath() []BatchPath {
	return trace.CriticalPath(s.recorder().Snapshot())
}

// Attribute sums BatchPaths into category totals. A nil keep includes
// every path; otherwise only paths keep returns true for are counted.
func (s *TraceSink) Attribute(keep func(BatchPath) bool) TraceAttribution {
	return trace.Attribute(s.CriticalPath(), keep)
}

// WriteChrome exports the sink's spans as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. The output bytes are a
// pure function of the span set: two deterministic runs export identical
// files.
func (s *TraceSink) WriteChrome(w io.Writer) error {
	return trace.WriteChrome(w, s.recorder().Snapshot())
}

// Reset discards the recorded spans, recycling the sink's buffers for the
// next run.
func (s *TraceSink) Reset() { s.recorder().Reset() }

// TracingOption is WithTracing's type: accepted by the session entry points
// (Open, Train, TrainMultiNode — where it traces the implicit cluster), by
// NewCluster (tracing is cluster-owned on an explicit cluster, like the
// other substrate options), and by Serve (tracing the service fabric's
// frames and flows).
type TracingOption interface {
	SharedOption
	ServeOption
}

type tracingOption struct{ r *trace.Recorder }

func (o tracingOption) applySession(s *sessionOptions) { s.trace = o.r }
func (o tracingOption) applyCluster(c *clusterOptions) { c.trace = o.r }
func (o tracingOption) applyServe(s *serveOptions)     { s.trace = o.r }

// WithTracing records every layer of the run into sink: storage reads and
// remote fetches, page-cache and materialized-cache hit/miss/fill, worker
// transform executions, queue wait, batch assembly, GPU kernel occupancy
// and training steps, interconnect flow lifetimes and rate changes,
// service protocol frames, and chaos fault windows. See TraceSink for
// consuming the result.
//
// Tracing is substrate-owned: pass it to NewCluster (or a standalone
// Open/Train/TrainMultiNode, which configures the implicit cluster) and to
// Serve for the service fabric. Sessions of an explicit cluster cannot
// carry it. A nil sink disables tracing (the default).
func WithTracing(sink *TraceSink) TracingOption {
	return tracingOption{r: sink.recorder()}
}
