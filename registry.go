package minato

import (
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/workload"
)

// WorkloadConstructor builds a workload from a session seed. Registered
// workloads are constructors so every run re-derives its dataset and
// accuracy noise from the seed it is given.
type WorkloadConstructor = workload.Constructor

// RegisterLoader adds a loader backend under name, making it resolvable by
// WithLoader, LoaderByName, and every -loader flag. The factory's Name is
// set to the registered name. It panics on an empty or duplicate name —
// registration is an init-time act where collisions are programming
// errors. The paper's four systems ("pytorch", "pecan", "dali", "minato")
// are pre-registered.
func RegisterLoader(name string, f Factory) {
	f.Name = name
	loaders.Register(f)
}

// RegisterWorkload adds a workload under name, making it resolvable by
// Train, WorkloadByName, and every -workload flag. It panics on an empty
// or duplicate name. The paper's four workloads ("img-seg", "obj-det",
// "speech-3s", "speech-10s") are pre-registered.
func RegisterWorkload(name string, fn WorkloadConstructor) {
	workload.Register(name, fn)
}

// Loaders returns every registered loader name, sorted.
func Loaders() []string { return loaders.Names() }

// Workloads returns every registered workload name, sorted.
func Workloads() []string { return workload.Names() }

// LoaderByName returns the registered factory for a loader name.
func LoaderByName(name string) (Factory, bool) { return loaders.ByName(name) }

// WorkloadByName builds the workload registered under name with the given
// seed.
func WorkloadByName(name string, seed uint64) (Workload, bool) {
	return workload.ByName(name, seed)
}
