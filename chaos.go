package minato

import (
	"fmt"
	"strings"
	"time"

	"github.com/minatoloader/minato/internal/chaos"
)

// Chaos engineering. A ChaosScript is a deterministic schedule of faults —
// node crashes and rejoins, NIC degradation, disk brownouts, CPU worker
// stalls, session preemption — replayed against a training session or
// multi-node job on the virtual clock. Because the clock is discrete-event
// and the script is static data, an identical script against an identical
// run reproduces the report bit-for-bit: recovery times and p99 step times
// are assertable, not flaky.
//
// Attach a script with WithChaos (or a registered scenario by name with
// WithChaosScenario) to Train, TrainWorkload, Cluster.Train, TrainMultiNode,
// Open, or Cluster.Open:
//
//	rep, err := minato.TrainMultiNode("speech-3s",
//	    minato.WithNodes(8),
//	    minato.WithChaos(minato.CrashNode(3, 5*time.Second, 8*time.Second)),
//	)
//	// rep.RecoveryTime(), rep.StepP99, rep.Faults, rep.PerNode[3].Downtime
//
// Single-machine sessions accept disk, worker-stall, and preempt/resume
// events; multi-node jobs accept node, link, disk, and worker-stall events.
// Scripts are validated against the run shape at configuration time, so a
// mismatched script is a *ConfigError, not a silent no-op.

type (
	// ChaosScript is a named, composable fault schedule; the zero value
	// injects nothing. Build one from events directly, from the builders
	// (CrashNode, FlapLink, BrownoutDisk, StallWorkers, PreemptFor), or by
	// ComposeChaos.
	ChaosScript = chaos.Script
	// ChaosEvent is one scripted fault.
	ChaosEvent = chaos.Event
	// ChaosKind enumerates fault-event types (ChaosNodeCrash ... ChaosResume).
	ChaosKind = chaos.Kind
	// FaultStat is one applied fault window in a Report or MultiNodeReport:
	// when it took effect, when it cleared, the measured recovery time, and
	// the stall attributed to it.
	FaultStat = chaos.FaultStat
)

// The fault kinds. See the chaos package for exact semantics; the short
// version: membership events (crash/join) apply at step boundaries of a
// multi-node job, everything else at exactly Event.At.
const (
	ChaosNodeCrash   = chaos.NodeCrash
	ChaosNodeJoin    = chaos.NodeJoin
	ChaosLinkDegrade = chaos.LinkDegrade
	ChaosLinkRestore = chaos.LinkRestore
	ChaosDiskDegrade = chaos.DiskDegrade
	ChaosDiskRestore = chaos.DiskRestore
	ChaosWorkerStall = chaos.WorkerStall
	ChaosPreempt     = chaos.Preempt
	ChaosResume      = chaos.Resume
)

// Builders for the common one-fault scripts; compose them with ComposeChaos.

// CrashNode crashes node at `at` and rejoins it at `rejoin` (rejoin ≤ at
// means the node never returns). TrainMultiNode only.
func CrashNode(node int, at, rejoin time.Duration) ChaosScript {
	return chaos.CrashNode(node, at, rejoin)
}

// FlapLink degrades node's NIC bandwidth by factor at `at` and restores it
// after duration. TrainMultiNode only.
func FlapLink(node int, at time.Duration, factor float64, duration time.Duration) ChaosScript {
	return chaos.FlapLink(node, at, factor, duration)
}

// BrownoutDisk slows storage reads by factor at `at` and restores them
// after duration — the shared-filesystem brownout.
func BrownoutDisk(at time.Duration, factor float64, duration time.Duration) ChaosScript {
	return chaos.BrownoutDisk(at, factor, duration)
}

// StallWorkers occupies ~factor× of node's CPU cores with hog work for
// duration, starting at `at` — a co-located job stealing preprocessing
// cores. Single-machine sessions use node 0.
func StallWorkers(node int, at time.Duration, factor float64, duration time.Duration) ChaosScript {
	return chaos.StallWorkers(node, at, factor, duration)
}

// PreemptFor pauses the session's consumers at `at` and resumes them after
// duration; a zero duration preempts permanently and the session ends with
// ErrPreempted (checkpoint it and Resume to continue warm). Single-machine
// sessions only.
func PreemptFor(at, duration time.Duration) ChaosScript {
	return chaos.PreemptFor(at, duration)
}

// ComposeChaos merges scripts into one named schedule; overlapping times
// keep argument order.
func ComposeChaos(name string, scripts ...ChaosScript) ChaosScript {
	return chaos.Compose(name, scripts...)
}

// ShiftChaos returns a copy of s with every event delayed by d — for
// staggering one scenario across tenants or runs.
func ShiftChaos(s ChaosScript, d time.Duration) ChaosScript {
	return chaos.Shift(s, d)
}

// RegisterChaosScenario adds (or replaces) a named scenario builder, the
// way RegisterLoader and RegisterWorkload extend their registries. Built-in
// scenarios: node-crash, link-flap, disk-brownout, worker-stall,
// preempt-resume, churn-storm.
func RegisterChaosScenario(name string, build func() ChaosScript) {
	chaos.Register(name, build)
}

// ChaosScenarioByName builds a registered scenario.
func ChaosScenarioByName(name string) (ChaosScript, bool) {
	return chaos.ByName(name)
}

// ChaosScenarios lists the registered scenario names, sorted.
func ChaosScenarios() []string {
	return chaos.Names()
}

// ChaosOption is the type of WithChaos and WithChaosScenario: a fault
// script attaches to a training session or multi-node job (as an Option)
// or to a preprocessing server (as a ServeOption).
type ChaosOption interface {
	Option
	ServeOption
}

type chaosOption struct {
	session func(*sessionOptions)
	serve   func(*serveOptions)
}

func (o chaosOption) applySession(s *sessionOptions) { o.session(s) }
func (o chaosOption) applyServe(s *serveOptions)     { o.serve(s) }

// WithChaos injects the given fault script into the session, multi-node
// job, or preprocessing server. The script is validated against the run
// shape: single-machine entry points (Open, Train, Cluster.Open,
// Cluster.Train) accept disk, worker-stall, and preempt/resume events;
// TrainMultiNode accepts node, link, disk, and worker-stall events; Serve
// accepts link events (targeting servers by fleet index) and disk events.
// Identical scripts against identical runs reproduce reports bit-for-bit.
func WithChaos(s ChaosScript) ChaosOption {
	return chaosOption{
		session: func(o *sessionOptions) { sc := s; o.chaos = &sc },
		serve:   func(o *serveOptions) { sc := s; o.chaos = &sc },
	}
}

// WithChaosScenario injects a registered fault scenario by name — the
// one-line form of WithChaos for scripts in the scenario registry
// (RegisterChaosScenario).
func WithChaosScenario(name string) ChaosOption {
	return chaosOption{
		session: func(o *sessionOptions) { o.chaosName = name },
		serve:   func(o *serveOptions) { o.chaosName = name },
	}
}

// resolveChaos resolves the chaos options into a validated script for a
// run shape: nodes > 0 is a multi-node job with that many ranks, nodes == 0
// a single-machine session. The zero script passes through untouched.
func (o *sessionOptions) resolveChaos(nodes int) (chaos.Script, error) {
	if o.chaos != nil && o.chaosName != "" {
		return chaos.Script{}, configErr("WithChaos/WithChaosScenario", "mutually exclusive")
	}
	var s chaos.Script
	opt := "WithChaos"
	switch {
	case o.chaos != nil:
		s = *o.chaos
	case o.chaosName != "":
		opt = "WithChaosScenario"
		var ok bool
		s, ok = chaos.ByName(o.chaosName)
		if !ok {
			return chaos.Script{}, configErr(opt, fmt.Sprintf("unknown scenario %q (registered: %s)",
				o.chaosName, strings.Join(chaos.Names(), ", ")))
		}
	default:
		return chaos.Script{}, nil
	}
	if err := s.Validate(nodes); err != nil {
		return chaos.Script{}, configErr(opt, err.Error())
	}
	return s, nil
}
