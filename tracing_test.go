package minato

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// runTraced16TenantChaos runs the 16-tenant chaos scenario on one traced
// cluster: concurrent tenant sessions, each under a disk brownout, drained
// from independent goroutines. It returns the recorded spans.
func runTraced16TenantChaos(t *testing.T) []TraceSpan {
	t.Helper()
	sink := NewTraceSink()
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 16, GPUs: 1}), WithTracing(sink))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const tenants = 16
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		sess := openTenant(t, cl, fmt.Sprintf("tenant-%d", i), 256,
			WithSeed(uint64(i+1)),
			WithChaos(BrownoutDisk(time.Millisecond, 4, 2*time.Millisecond)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, err := range sess.Batches(context.Background()) {
				if err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := sess.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	return sink.Spans()
}

// TestTrace16TenantChaos checks the tracer under contention at the
// acceptance scale: 16 concurrent chaos-faulted tenants on one shared
// substrate, every layer recording into one sink. Within-run invariants —
// per-tenant span accounting and well-formed export — must hold exactly.
// (Cross-run byte-identity is asserted on the multinode and single-consumer
// scenarios below: with several tenants contending for the shared disk and
// cores, which same-instant request is served first is scheduler-dependent
// in the simulator itself, so the multi-tenant span set is reproducible
// only at the aggregate level the reports already pin.)
func TestTrace16TenantChaos(t *testing.T) {
	spans := runTraced16TenantChaos(t)
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	assembled := map[int32]int{}
	drawn := map[int32]int{}
	sourced := map[int32]bool{}
	for _, s := range spans {
		switch s.Stage {
		case TraceStageAssemble:
			assembled[s.Tenant]++
		case TraceStageQueueWait:
			drawn[s.Tenant]++
		case TraceStageDiskRead, TraceStageCacheFill, TraceStageCacheHit:
			sourced[s.Tenant] = true
		}
		if s.End < s.Start {
			t.Fatalf("span ends before it starts: %+v", s)
		}
	}
	for i := int32(1); i <= 16; i++ {
		if assembled[i] != 6 || drawn[i] != 6 {
			t.Fatalf("tenant %d: %d assembled / %d drawn spans, want 6/6",
				i, assembled[i], drawn[i])
		}
		if !sourced[i] {
			t.Fatalf("tenant %d: no storage spans", i)
		}
	}
}

// TestTraceDeterministicMultiNodeChaos proves the tentpole's determinism
// claim: two full 16-node chaos runs export byte-identical Chrome JSON.
// The CI race job runs this same test under -race, covering the third leg.
func TestTraceDeterministicMultiNodeChaos(t *testing.T) {
	run := func() []byte {
		sink := NewTraceSink()
		_, err := TrainMultiNode("speech-3s", WithLoader("minato"), WithNodes(16),
			WithGPUs(1), WithIterations(48), WithSeed(5),
			WithChaosScenario("link-flap"), WithTracing(sink))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sink.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty trace export")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("trace export differs across identical runs: %d vs %d bytes", len(a), len(b))
	}
}

// TestTraceDeterministicSingleMachine proves byte-identity for a
// single-consumer training session — the configuration where every event
// in the simulation is a pure function of virtual time.
func TestTraceDeterministicSingleMachine(t *testing.T) {
	run := func() []byte {
		sink := NewTraceSink()
		_, err := Train("speech-3s", WithLoader("minato"), WithGPUs(1),
			WithIterations(30), WithSeed(11), WithTracing(sink))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sink.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty trace export")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("trace export differs across identical runs: %d vs %d bytes", len(a), len(b))
	}
}

// TestTraceCriticalPathMatchesDataStall checks the analyzer against the
// counter it replaces: on a traced single-machine run, the per-batch
// DataWait attribution sums to Report.DataStall exactly, and every
// journey's stage components tile its latency.
func TestTraceCriticalPathMatchesDataStall(t *testing.T) {
	sink := NewTraceSink()
	rep, err := Train("speech-3s", WithLoader("minato"), WithIterations(40),
		WithSeed(7), WithTracing(sink))
	if err != nil {
		t.Fatal(err)
	}
	paths := sink.CriticalPath()
	if len(paths) == 0 {
		t.Fatal("no batch paths in trace")
	}
	var dataWait time.Duration
	for _, p := range paths {
		dataWait += p.DataWait
		sum := p.DataWait + p.Copy + p.GPUStep + p.BarrierWait +
			p.NetworkWait + p.Downtime + p.Other
		if sum != p.Latency() {
			t.Fatalf("journey (gpu %d, seq %d): components sum %v != latency %v",
				p.GPU, p.Seq, sum, p.Latency())
		}
		if p.DataWait < 0 || p.Copy < 0 || p.GPUStep < 0 || p.BarrierWait < 0 ||
			p.NetworkWait < 0 || p.Downtime < 0 {
			t.Fatalf("journey (gpu %d, seq %d): negative stage component: %+v", p.GPU, p.Seq, p)
		}
	}
	if dataWait != rep.DataStall {
		t.Fatalf("analyzer DataWait %v != Report.DataStall %v", dataWait, rep.DataStall)
	}
	attr := sink.Attribute(nil)
	if attr.Batches != len(paths) || attr.DataWait != dataWait {
		t.Fatalf("Attribute mismatch: %+v vs %d paths / %v data wait", attr, len(paths), dataWait)
	}
}

// TestTraceMultiNodeAgreesWithCounters runs a traced elastic multi-node job
// under link chaos and checks the analyzer's cluster totals against the
// report's stall counters — the cross-check the tentpole requires before
// the analyzer can source DataStall/BarrierStall/NetworkStall.
func TestTraceMultiNodeAgreesWithCounters(t *testing.T) {
	sink := NewTraceSink()
	rep, err := TrainMultiNode("speech-3s", WithLoader("minato"), WithNodes(4),
		WithGPUs(1), WithIterations(30), WithSeed(3),
		WithChaosScenario("link-flap"), WithTracing(sink))
	if err != nil {
		t.Fatal(err)
	}
	attr := sink.Attribute(nil)
	if attr.Batches == 0 {
		t.Fatal("no batch paths in multi-node trace")
	}
	if attr.DataWait != rep.DataStall {
		t.Fatalf("analyzer DataWait %v != DataStall %v", attr.DataWait, rep.DataStall)
	}
	if attr.BarrierWait != rep.BarrierStall {
		t.Fatalf("analyzer BarrierWait %v != BarrierStall %v", attr.BarrierWait, rep.BarrierStall)
	}
	if attr.NetworkWait != rep.NetworkStall {
		t.Fatalf("analyzer NetworkWait %v != NetworkStall %v", attr.NetworkWait, rep.NetworkStall)
	}
}

// TestNilTraceSink pins the tracing-off contract: a nil sink is valid
// everywhere — every method no-ops, WithTracing(nil) trains normally, and
// the export is a well-formed empty trace.
func TestNilTraceSink(t *testing.T) {
	var sink *TraceSink
	if sink.Len() != 0 || len(sink.Spans()) != 0 || len(sink.CriticalPath()) != 0 {
		t.Fatal("nil sink not empty")
	}
	var buf bytes.Buffer
	if err := sink.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("nil sink export wrote nothing")
	}
	sink.Reset()
	rep, err := Train("speech-3s", WithLoader("minato"), WithIterations(5), WithTracing(sink))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches == 0 {
		t.Fatal("no batches with nil trace sink")
	}
}

// TestTracingClusterOwned pins WithTracing's ownership: sessions of an
// explicit cluster must not carry their own sink.
func TestTracingClusterOwned(t *testing.T) {
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Open(namedDataset{space: "t", n: 32},
		WithPipeline(flatPipeline(time.Millisecond)), WithBatchSize(8),
		WithIterations(2), WithTracing(NewTraceSink()))
	if err == nil {
		t.Fatal("cluster session accepted WithTracing; want cluster-owned error")
	}
}
